GO ?= go

.PHONY: build test race bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# check runs the full gate: vet, build, race tests and a one-iteration
# smoke run of the parallel query benchmark.
check:
	sh scripts/check.sh

GO ?= go

.PHONY: build test race bench bench-ingest bench-chaos bench-stampede bench-analytics bench-fig5sharded bench-timetravel bench-tablesscale torture chaos fuzz check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# bench-ingest measures the fast ingest path (serial vs grouped vs
# pipeline, local and over dbnet) and records BENCH_tables.json.
bench-ingest:
	$(GO) run ./cmd/hedc-bench -exp tables -json .

# bench-chaos runs every network fault schedule as an experiment and
# records availability under chaos in BENCH_chaos.json.
bench-chaos:
	$(GO) run ./cmd/hedc-bench -exp chaos -json .

# bench-stampede runs the flare-alert stampede A/B (fixed semaphore +
# naive retries vs adaptive limiter + brownout ladder + hint-honoring
# clients under the same open-loop 10x spike) and records
# BENCH_stampede.json.
bench-stampede:
	$(GO) run ./cmd/hedc-bench -exp stampede -json .

# bench-analytics measures vectorized columnar scans against the
# row-at-a-time baseline on 1.2M synthetic events and records
# BENCH_analytics.json.
bench-analytics:
	$(GO) run ./cmd/hedc-bench -exp analytics -json .

# bench-timetravel measures as-of reads over the lake's commit journal
# (open + read latency by commit depth, the compaction/GC win, and a
# commit-replay oracle check) and records BENCH_lake.json.
bench-timetravel:
	$(GO) run ./cmd/hedc-bench -exp timetravel -json .

# bench-tablesscale measures the processing farm under concurrent mixed
# load (farm-size sweep, preemption and speculation A/B tails, epoch-keyed
# memoization with its bit-identity oracle) and records
# BENCH_tablesscale.json.
bench-tablesscale:
	$(GO) run ./cmd/hedc-bench -exp tablesscale -json .

# bench-fig5sharded measures the N-shard x M-replica cell against the
# single-shard Figure 5 ceiling and records BENCH_fig5sharded.json. The
# sweep hard-fails unless every scatter-gather result is bit-identical
# to a single-node oracle.
bench-fig5sharded:
	$(GO) run ./cmd/hedc-bench -exp fig5sharded -json .

# torture enumerates every crash site of the scripted workload under the
# race detector (see internal/torture).
torture:
	$(GO) test -race -count=1 -v ./internal/torture/

# chaos enumerates every network fault schedule against a live
# gateway+replicas+DB cell under the race detector (see internal/chaos).
# CHAOSTIME=2s holds each fault under workload for at least that long.
chaos:
	$(GO) test -race -count=1 -v ./internal/chaos/

# fuzz runs each WAL, dbnet wire, columnar segment, shard map/merge and
# lake journal fuzz target for 30s.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeWalOp$$' -fuzztime 30s ./internal/minidb/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeValue$$' -fuzztime 30s ./internal/minidb/
	$(GO) test -run '^$$' -fuzz '^FuzzReadWal$$' -fuzztime 30s ./internal/minidb/
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrame$$' -fuzztime 30s ./internal/dbnet/
	$(GO) test -run '^$$' -fuzz '^FuzzDispatch$$' -fuzztime 30s ./internal/dbnet/
	$(GO) test -run '^$$' -fuzz '^FuzzParseResponse$$' -fuzztime 30s ./internal/dbnet/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSegment$$' -fuzztime 30s ./internal/colseg/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeShardMap$$' -fuzztime 30s ./internal/shard/
	$(GO) test -run '^$$' -fuzz '^FuzzMergeReplies$$' -fuzztime 30s ./internal/shard/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeJournal$$' -fuzztime 30s ./internal/lake/

# check runs the full gate: vet, build, race tests (torture harness
# included), a one-iteration smoke run of the parallel query benchmark, and
# short fuzz runs.
check:
	sh scripts/check.sh

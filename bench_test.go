package hedc

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations DESIGN.md calls out and real-code-path microbenchmarks.
// `go test -bench=. -benchmem` regenerates everything; cmd/hedc-bench
// prints the same data as paper-style tables.

import (
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"testing"

	"repro/internal/analysis"
	"repro/internal/archive"
	"repro/internal/bench"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

// --- Figure 4: browse throughput vs number of clients (single node) ---

func BenchmarkFigure4(b *testing.B) {
	p := bench.DefaultBrowseParams()
	var pts []bench.BrowsePoint
	for i := 0; i < b.N; i++ {
		pts = bench.Figure4(p, nil)
	}
	b.ReportMetric(pts[0].RequestsPerSec, "peak-req/s")
	b.ReportMetric(pts[len(pts)-1].RequestsPerSec, "96cl-req/s")
	b.ReportMetric(pts[0].DBQueriesPS, "peak-dbq/s")
}

// --- Figure 5: browse throughput vs number of middle-tier nodes ---

func BenchmarkFigure5(b *testing.B) {
	p := bench.DefaultBrowseParams()
	var pts []bench.BrowsePoint
	for i := 0; i < b.N; i++ {
		pts = bench.Figure5(p, nil)
	}
	b.ReportMetric(pts[0].RequestsPerSec, "1node-req/s")
	b.ReportMetric(pts[len(pts)-1].RequestsPerSec, "5node-req/s")
	b.ReportMetric(pts[len(pts)-1].DBQueriesPS, "5node-dbq/s")
}

// --- Table 1: processing performance (imaging and histogram series) ---

func BenchmarkTable1Imaging(b *testing.B) {
	p := bench.DefaultProcessingParams()
	var pts []bench.ProcPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Table1(p, bench.ImagingWorkload())
	}
	for _, pt := range pts {
		b.ReportMetric(pt.DurationS, pt.Config.Label+"-s")
	}
}

func BenchmarkTable1Histogram(b *testing.B) {
	p := bench.DefaultProcessingParams()
	var pts []bench.ProcPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Table1(p, bench.HistogramWorkload())
	}
	for _, pt := range pts {
		b.ReportMetric(pt.DurationS, pt.Config.Label+"-s")
	}
}

// --- Fast-ingest path: the data preparation behind Tables 1-3 ---

// BenchmarkIngest measures loading raw units through the real engine in the
// three ingest configurations (serial LoadUnit, group-committed concurrent
// LoadUnit, batched pipeline LoadUnits), locally and over dbnet. The
// headline number is units/s; the pipeline is the fast path the ISSUE's
// acceptance targets (>=3x local, >=2x dbnet vs serial).
func BenchmarkIngest(b *testing.B) {
	p := bench.IngestParams{Day: 11, DayLength: 3600, UnitSeconds: 300, Workers: 8}
	units := bench.IngestUnits(p)
	for _, engine := range []string{"local", "dbnet"} {
		for _, mode := range []string{"serial", "grouped", "pipeline"} {
			b.Run(engine+"/"+mode, func(b *testing.B) {
				var last bench.IngestResult
				for i := 0; i < b.N; i++ {
					r, err := bench.IngestCell(engine, mode, p, units)
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.UnitsPerSec, "units/s")
				b.ReportMetric(last.PhotonsPerSec, "photons/s")
			})
		}
	}
}

// --- Tables 2 and 3: workload characteristics (deterministic) ---

func BenchmarkTable2Characteristics(b *testing.B) {
	var c bench.Characteristics
	for i := 0; i < b.N; i++ {
		c = bench.WorkloadCharacteristics(bench.ImagingWorkload())
	}
	b.ReportMetric(float64(c.Queries), "queries")
	b.ReportMetric(float64(c.Edits), "edits")
	b.ReportMetric(c.InputMB, "inputMB")
}

func BenchmarkTable3Characteristics(b *testing.B) {
	var c bench.Characteristics
	for i := 0; i < b.N; i++ {
		c = bench.WorkloadCharacteristics(bench.HistogramWorkload())
	}
	b.ReportMetric(float64(c.Queries), "queries")
	b.ReportMetric(float64(c.Edits), "edits")
	b.ReportMetric(c.OutputMB, "outputMB")
}

// --- §3.4: approximated analysis (real codec + real analysis) ---

func BenchmarkApproximated(b *testing.B) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 4242, DayLength: 3600, BackgroundRate: 60, Flares: 2, Bursts: 0,
	})
	params := analysis.Params{
		Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 256, EnergyBins: 32,
	}
	view := wavelet.BuildView(day.Photons, 0, 3600,
		telemetry.EnergyMin, telemetry.EnergyMax, 256, 32, 0.05)

	b.Run("full-raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := analysis.Run(params, day.Photons); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(day.Photons)*18), "raw-bytes")
	})
	b.Run("approximated-view", func(b *testing.B) {
		p := params
		p.ApproxFrac = 0.05
		for i := 0; i < b.N; i++ {
			if _, err := analysis.RunOnView(p, view); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(view.Enc.CompressedSize()), "view-bytes")
	})
}

// --- Ablation: LOBs vs file system (§4.2) ---

func BenchmarkAblationLOBvsFile(b *testing.B) {
	payload := make([]byte, 256<<10) // one derived image
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	b.Run("lob-in-database", func(b *testing.B) {
		db, err := minidb.Open("", &minidb.Schema{
			Name: "lobs",
			Columns: []minidb.Column{
				{Name: "id", Type: minidb.IntType},
				{Name: "data", Type: minidb.BytesType},
			},
			PrimaryKey: "id",
		})
		if err != nil {
			b.Fatal(err)
		}
		const stored = 32
		for i := 0; i < stored; i++ {
			if _, err := db.Insert("lobs", minidb.Row{minidb.I(int64(i)), minidb.Bs(payload)}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(minidb.Query{
				Table: "lobs",
				Where: []minidb.Pred{{Col: "id", Op: minidb.OpEq, Val: minidb.I(int64(i % stored))}},
			})
			if err != nil || len(res.Rows) != 1 {
				b.Fatal(err)
			}
			if len(res.Rows[0][1].Bytes()) != len(payload) {
				b.Fatal("short lob")
			}
		}
	})

	b.Run("file-in-archive", func(b *testing.B) {
		arch, err := archive.New("bench", archive.Disk, b.TempDir(), 0)
		if err != nil {
			b.Fatal(err)
		}
		const stored = 32
		for i := 0; i < stored; i++ {
			if err := arch.Store(fmt.Sprintf("img/%d.gif", i), payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, err := arch.Read(fmt.Sprintf("img/%d.gif", i%stored))
			if err != nil || len(data) != len(payload) {
				b.Fatal(err)
			}
		}
	})

	// What the separation really protects (§4.2): database manageability.
	// With LOBs inside, every checkpoint/backup drags the bulk data along;
	// with file references, the database stays small and recovery fast.
	lobSchema := &minidb.Schema{
		Name: "lobs",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "data", Type: minidb.BytesType},
		},
		PrimaryKey: "id",
	}
	refSchema := &minidb.Schema{
		Name: "refs",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "path", Type: minidb.StringType},
		},
		PrimaryKey: "id",
	}
	b.Run("lob-checkpoint", func(b *testing.B) {
		db, err := minidb.Open(b.TempDir(), lobSchema)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 32; i++ {
			if _, err := db.Insert("lobs", minidb.Row{minidb.I(int64(i)), minidb.Bs(payload)}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(32*len(payload)), "snapshot-payload-bytes")
	})
	b.Run("file-ref-checkpoint", func(b *testing.B) {
		db, err := minidb.Open(b.TempDir(), refSchema)
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		for i := 0; i < 32; i++ {
			if _, err := db.Insert("refs", minidb.Row{
				minidb.I(int64(i)), minidb.S(fmt.Sprintf("img/%d.gif", i)),
			}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchDM builds a DM with one stored item for the name-mapping and
// pooling ablations.
func benchDM(b *testing.B) (*dm.DM, string) {
	b.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		b.Fatal(err)
	}
	arch, err := archive.New("disk-0", archive.Disk, b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	d, err := dm.Open(dm.Options{
		MetaDB: db, DefaultArchive: "disk-0", Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.RegisterArchive(arch, "/a"); err != nil {
		b.Fatal(err)
	}
	if err := d.Bootstrap("secret"); err != nil {
		b.Fatal(err)
	}
	itemID := "item-bench"
	if err := d.StoreItemFiles(itemID, dm.ImportUser, true, []dm.StoredFile{
		{Suffix: ".gif", Format: "gif", Data: []byte("GIF89a....")},
	}); err != nil {
		b.Fatal(err)
	}
	return d, itemID
}

// --- Ablation: dynamic name mapping (§4.3) ---

func BenchmarkAblationNameMapping(b *testing.B) {
	d, itemID := benchDM(b)
	b.Run("dynamic-two-queries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Resolve(itemID, schema.NameFile); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The baseline a static scheme would use: one indexed point query.
	b.Run("static-single-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.MetaDB().Query(minidb.Query{
				Table: schema.TableLocEntries,
				Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(itemID)}},
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: session caching (§5.3) ---

func BenchmarkAblationPooling(b *testing.B) {
	d, _ := benchDM(b)
	sess, err := d.Authenticate(dm.ImportUser, "secret", "127.0.0.1", dm.SessionHLE)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cached-session-lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := d.SessionFor(sess.Token, "127.0.0.1"); got == nil {
				b.Fatal("cache miss")
			}
		}
	})
	b.Run("full-authentication", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Authenticate(dm.ImportUser, "secret", "127.0.0.1", dm.SessionHLE); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Real-path microbenchmarks ---

func BenchmarkMinidbIndexedQuery(b *testing.B) {
	db, err := minidb.Open("", &minidb.Schema{
		Name: "t",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "k", Type: minidb.StringType},
		},
		PrimaryKey: "id",
		Indexes:    []string{"k"},
	})
	if err != nil {
		b.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 100_000; i++ {
		if _, err := tx.Insert("t", minidb.Row{
			minidb.I(int64(i)), minidb.S(fmt.Sprintf("k%05d", i%1000)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(minidb.Query{
			Table: "t",
			Where: []minidb.Pred{{Col: "k", Op: minidb.OpEq, Val: minidb.S(fmt.Sprintf("k%05d", i%1000))}},
		})
		if err != nil || len(res.Rows) != 100 {
			b.Fatalf("rows=%d err=%v", len(res.Rows), err)
		}
	}
}

// BenchmarkQueryParallel measures the lock-free read path under
// GOMAXPROCS-way parallelism with a writer committing batches the whole
// time. Before snapshot reads, every query serialized behind a global
// RWMutex and stalled for the duration of each commit; now readers run
// against the last published snapshot and never block. Compare -cpu=1,2,4
// runs: per-op time should hold roughly flat as parallelism grows.
func BenchmarkQueryParallel(b *testing.B) {
	db, err := minidb.Open("", &minidb.Schema{
		Name: "t",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "k", Type: minidb.StringType},
			{Name: "v", Type: minidb.IntType},
		},
		PrimaryKey: "id",
		Indexes:    []string{"k"},
	})
	if err != nil {
		b.Fatal(err)
	}
	const seed = 50_000
	tx := db.Begin()
	for i := 0; i < seed; i++ {
		if _, err := tx.Insert("t", minidb.Row{
			minidb.I(int64(i)), minidb.S(fmt.Sprintf("k%04d", i%500)), minidb.I(int64(i * 7)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}

	// Background ingest: keep committing while the readers run.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		id := int64(seed)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := db.Begin()
			for j := 0; j < 50; j++ {
				if _, err := tx.Insert("t", minidb.Row{
					minidb.I(id), minidb.S(fmt.Sprintf("k%04d", id%500)), minidb.I(id * 7),
				}); err != nil {
					tx.Rollback()
					return
				}
				id++
			}
			if tx.Commit() != nil {
				return
			}
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			switch i % 3 {
			case 0: // indexed point lookup
				res, err := db.Query(minidb.Query{
					Table: "t",
					Where: []minidb.Pred{{Col: "k", Op: minidb.OpEq,
						Val: minidb.S(fmt.Sprintf("k%04d", i%500))}},
				})
				if err != nil || len(res.Rows) == 0 {
					b.Fatalf("rows=%d err=%v", len(res.Rows), err)
				}
			case 1: // count through the index
				res, err := db.Query(minidb.Query{
					Table: "t", Count: true,
					Where: []minidb.Pred{{Col: "k", Op: minidb.OpEq,
						Val: minidb.S(fmt.Sprintf("k%04d", i%500))}},
				})
				if err != nil || res.Count == 0 {
					b.Fatal(err)
				}
			default: // ordered browse page
				res, err := db.Query(minidb.Query{
					Table:   "t",
					Where:   []minidb.Pred{{Col: "k", Op: minidb.OpPrefix, Val: minidb.S("k00")}},
					OrderBy: []minidb.Order{{Col: "v", Desc: true}},
					Limit:   20,
					Project: []string{"id", "v"},
				})
				if err != nil || len(res.Rows) == 0 {
					b.Fatal(err)
				}
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
	st := db.Stats()
	b.ReportMetric(float64(st.SnapshotPublishes), "commits-during-run")
}

func BenchmarkWaveletEncodeDecode(b *testing.B) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 9, DayLength: 3600, BackgroundRate: 30, Flares: 1, Bursts: 0,
	})
	b.Run("build-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wavelet.BuildView(day.Photons, 0, 3600, 3, 20000, 256, 32, 0.1)
		}
	})
	v := wavelet.BuildView(day.Photons, 0, 3600, 3, 20000, 256, 32, 0.1)
	b.Run("decode-lightcurve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			v.Lightcurve(1)
		}
	})
}

func BenchmarkImagingBackProjection(b *testing.B) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 3, DayLength: 600, BackgroundRate: 10, Flares: 1, Bursts: 0,
	})
	params := analysis.Params{
		Type: schema.AnaImaging, TStart: 0, TStop: 600, ImageSize: 32, PixelSize: 64,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Run(params, day.Photons); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(day.Photons)), "photons")
}

func BenchmarkBrowsePageRealSystem(b *testing.B) {
	// The real §7.2 request anatomy: a full HLE page through the actual
	// web tier, DM, query engine and name mapping.
	repo, err := Open(Config{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	reports, err := repo.LoadDay(1, MissionConfig{
		Seed: 17, DayLength: 1200, BackgroundRate: 4, Flares: 1, Bursts: 0,
	}, 1200)
	if err != nil || len(reports) == 0 || reports[0].Events == 0 {
		b.Fatalf("load: %v", err)
	}
	hleID := reports[0].HLEs[0]
	ts := httptest.NewServer(repo.Handler())
	defer ts.Close()

	before := repo.Node().MetaDB.Stats().Queries
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(ts.URL + "/hle?id=" + hleID)
		if err != nil {
			b.Fatal(err)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || n == 0 {
			b.Fatalf("status %d, %d bytes", resp.StatusCode, n)
		}
	}
	b.StopTimer()
	queries := repo.Node().MetaDB.Stats().Queries - before
	b.ReportMetric(float64(queries)/float64(b.N), "dbq/page")
}

func BenchmarkEndToEndAnalysis(b *testing.B) {
	repo, err := Open(Config{DataDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer repo.Close()
	reports, err := repo.LoadDay(1, MissionConfig{
		Seed: 23, DayLength: 1200, BackgroundRate: 4, Flares: 1, Bursts: 0,
	}, 1200)
	if err != nil || len(reports) == 0 || reports[0].Events == 0 {
		b.Fatalf("load: %v", err)
	}
	sess, err := repo.ImportSession()
	if err != nil {
		b.Fatal(err)
	}
	hleID := reports[0].HLEs[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repo.Analyze(sess, Histogram, hleID, map[string]interface{}{
			"energy_bins": 24,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: materialized count views (§6.3) ---

func BenchmarkAblationMatview(b *testing.B) {
	db, err := minidb.Open("", &minidb.Schema{
		Name: "members",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "catalog", Type: minidb.StringType},
		},
		PrimaryKey: "id",
		Indexes:    []string{"catalog"},
	})
	if err != nil {
		b.Fatal(err)
	}
	const catalogs = 20
	tx := db.Begin()
	for i := 0; i < 50_000; i++ {
		if _, err := tx.Insert("members", minidb.Row{
			minidb.I(int64(i)), minidb.S(fmt.Sprintf("cat-%02d", i%catalogs)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateCountView("by-catalog", "members", "catalog"); err != nil {
		b.Fatal(err)
	}

	b.Run("count-query-per-catalog", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := db.Query(minidb.Query{
				Table: "members", Count: true,
				Where: []minidb.Pred{{Col: "catalog", Op: minidb.OpEq,
					Val: minidb.S(fmt.Sprintf("cat-%02d", i%catalogs))}},
			})
			if err != nil || res.Count != 2500 {
				b.Fatalf("count=%d err=%v", res.Count, err)
			}
		}
	})
	b.Run("materialized-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := db.ViewCount("by-catalog", minidb.S(fmt.Sprintf("cat-%02d", i%catalogs)))
			if err != nil || n != 2500 {
				b.Fatalf("count=%d err=%v", n, err)
			}
		}
	})
}

// Command hedc-bench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout.
//
// Usage:
//
//	hedc-bench                  # run everything
//	hedc-bench -exp fig4        # one experiment: fig4, fig5, table1,
//	                            # table2, table3, approx
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/schema"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig4|fig5|table1|table2|table3|approx")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	if run("fig4") {
		any = true
		pts := bench.Figure4(bench.DefaultBrowseParams(), nil)
		fmt.Println(bench.FormatBrowse("Figure 4 — browse throughput vs clients (1 middle-tier node)", pts))
		fmt.Printf("paper: ~17 req/s peak at 16 clients, ~3 req/s at 96\n\n")
	}
	if run("fig5") {
		any = true
		pts := bench.Figure5(bench.DefaultBrowseParams(), nil)
		fmt.Println(bench.FormatBrowse("Figure 5 — browse throughput vs middle-tier nodes (96 clients)", pts))
		fmt.Printf("paper: 3 req/s at 1 node rising to 18 req/s (~120 DB queries/s) at 5 nodes\n\n")
	}
	if run("table1") {
		any = true
		p := bench.DefaultProcessingParams()
		fmt.Println(bench.FormatTable1(bench.Table1(p, bench.ImagingWorkload())))
		fmt.Printf("paper: 6027 / 3117 / 2059 / 1380 s\n\n")
		fmt.Println(bench.FormatTable1(bench.Table1(p, bench.HistogramWorkload())))
		fmt.Printf("paper: 960 / 655 / 841 / 821 / 438 s\n\n")
	}
	if run("table2") {
		any = true
		fmt.Println(bench.FormatCharacteristics(bench.WorkloadCharacteristics(bench.ImagingWorkload()), 2))
	}
	if run("table3") {
		any = true
		fmt.Println(bench.FormatCharacteristics(bench.WorkloadCharacteristics(bench.HistogramWorkload()), 3))
	}
	if run("approx") {
		any = true
		r, err := bench.RunApprox(300_000, schema.AnaLightcurve, 0.05)
		if err != nil {
			fmt.Fprintln(os.Stderr, "approx:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatApprox(r))
		ri, err := bench.RunApproxImaging(60_000, 0.1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "approx imaging:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatApprox(ri))
		fmt.Printf("paper (§3.4): approximation shortens holistic response time by >= 10x\n")
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// Command hedc-bench regenerates every table and figure of the paper's
// evaluation and prints them in the paper's layout.
//
// Usage:
//
//	hedc-bench                  # run everything
//	hedc-bench -exp fig4        # one experiment: fig4, fig5, fig5live,
//	                            # table1, table2, table3, approx, engine, chaos
//	hedc-bench -json out/       # also write BENCH_fig4.json, BENCH_fig5.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/bench"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig4|fig5|fig5live|fig5sharded|table1|table2|table3|tables|tablesscale|approx|engine|chaos|stampede|analytics|timetravel")
	jsonDir := flag.String("json", "", "directory to write BENCH_fig4.json / BENCH_fig5.json / BENCH_fig5sharded.json / BENCH_tables.json / BENCH_tablesscale.json / BENCH_chaos.json / BENCH_stampede.json / BENCH_analytics.json / BENCH_lake.json into (empty: no JSON)")
	flag.Parse()

	run := func(name string) bool { return *exp == "all" || *exp == name }
	any := false

	var fig4Pts, fig5Pts []bench.BrowsePoint
	var livePts []bench.LivePoint
	var shardedRes *bench.ShardedResult
	var ingestRes []bench.IngestResult
	var chaosRes *bench.ChaosResult
	var stampedeRes *bench.StampedeResult
	var anaRes *bench.AnalyticsResult
	var ttRes *bench.TimeTravelResult
	var farmRes *bench.TablesScaleResult

	if run("fig4") {
		any = true
		fig4Pts = bench.Figure4(bench.DefaultBrowseParams(), nil)
		fmt.Println(bench.FormatBrowse("Figure 4 — browse throughput vs clients (1 middle-tier node)", fig4Pts))
		fmt.Printf("paper: ~17 req/s peak at 16 clients, ~3 req/s at 96\n\n")
	}
	if run("fig5") || run("fig5live") {
		any = true
		fig5Pts = bench.Figure5(bench.DefaultBrowseParams(), nil)
		fmt.Println(bench.FormatBrowse("Figure 5 — browse throughput vs middle-tier nodes (96 clients)", fig5Pts))
		fmt.Printf("paper: 3 req/s at 1 node rising to 18 req/s (~120 DB queries/s) at 5 nodes\n\n")
	}
	if run("fig5live") {
		any = true
		var err error
		livePts, err = bench.Figure5Live(bench.DefaultLiveParams(), log.New(os.Stderr, "", 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5live:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatLive("Figure 5 (live) — measured gateway+replicas vs simulated curve", livePts, fig5Pts))
		fmt.Printf("live: real clients through a real gateway over real replicas sharing one networked DB\n\n")
	}
	if run("fig5sharded") {
		any = true
		var err error
		shardedRes, err = bench.Figure5Sharded(bench.DefaultShardedParams(), log.New(os.Stderr, "", 0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fig5sharded:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatSharded("Figure 5 (sharded) — measured cell with the metadata tier partitioned across shards", shardedRes))
		fmt.Printf("with >=2 shards the single-DB ceiling lifts: aggregate req/s keeps\n")
		fmt.Printf("climbing past 5 replicas where the 1-shard curve goes flat\n\n")
	}
	if run("table1") {
		any = true
		p := bench.DefaultProcessingParams()
		fmt.Println(bench.FormatTable1(bench.Table1(p, bench.ImagingWorkload())))
		fmt.Printf("paper: 6027 / 3117 / 2059 / 1380 s\n\n")
		fmt.Println(bench.FormatTable1(bench.Table1(p, bench.HistogramWorkload())))
		fmt.Printf("paper: 960 / 655 / 841 / 821 / 438 s\n\n")
	}
	if run("table2") {
		any = true
		fmt.Println(bench.FormatCharacteristics(bench.WorkloadCharacteristics(bench.ImagingWorkload()), 2))
	}
	if run("table3") {
		any = true
		fmt.Println(bench.FormatCharacteristics(bench.WorkloadCharacteristics(bench.HistogramWorkload()), 3))
	}
	if run("tables") {
		any = true
		var err error
		ingestRes, err = bench.RunIngest(bench.DefaultIngestParams(), log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tables:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatIngest(ingestRes))
		fmt.Printf("measured fast-ingest path behind Tables 1-3's data preparation:\n")
		fmt.Printf("group-committed WAL, batched wire writes, parallel unit pipeline\n\n")
	}
	if run("tablesscale") {
		any = true
		var err error
		farmRes, err = bench.RunTablesScale(bench.DefaultTablesScaleParams(), log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tablesscale:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTablesScale(farmRes))
		fmt.Printf("measured processing farm behind Table 1's workloads at today's scale:\n")
		fmt.Printf("work stealing + preemption bound the interactive tail, the epoch-keyed\n")
		fmt.Printf("result cache makes unchanged re-analysis free, hedging rides out a\n")
		fmt.Printf("wedged interpreter\n\n")
	}
	if run("approx") {
		any = true
		r, err := bench.RunApprox(300_000, schema.AnaLightcurve, 0.05)
		if err != nil {
			fmt.Fprintln(os.Stderr, "approx:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatApprox(r))
		ri, err := bench.RunApproxImaging(60_000, 0.1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "approx imaging:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatApprox(ri))
		fmt.Printf("paper (§3.4): approximation shortens holistic response time by >= 10x\n")
	}
	if run("engine") {
		any = true
		if err := runEngine(); err != nil {
			fmt.Fprintln(os.Stderr, "engine:", err)
			os.Exit(1)
		}
	}
	if run("chaos") {
		any = true
		var err error
		chaosRes, err = bench.RunChaos(log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatChaos(chaosRes))
		fmt.Printf("every schedule held the invariants: bounded latency, no duplicate\n")
		fmt.Printf("effects, typed failures only, convergence after heal\n\n")
	}
	if run("stampede") {
		any = true
		var err error
		stampedeRes, err = bench.RunStampede(log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stampede:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatStampede(stampedeRes))
		fmt.Printf("the same 10x open-loop spike: the fixed semaphore collapses into a\n")
		fmt.Printf("retry storm while the adaptive limiter sheds typed hints, serves the\n")
		fmt.Printf("crowd commit-behind, and stands back down when it leaves\n\n")
	}
	if run("analytics") {
		any = true
		var err error
		anaRes, err = bench.RunAnalytics(bench.DefaultAnalyticsParams(), log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analytics:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatAnalytics(anaRes))
		fmt.Printf("columnar segments + zone maps turn full-archive statistics (the\n")
		fmt.Printf("histogram workload's recalibration scans) into sub-scan work\n\n")
	}
	if run("timetravel") {
		any = true
		var err error
		ttRes, err = bench.RunTimeTravel(bench.DefaultTimeTravelParams(), log.New(os.Stderr, "", 0).Printf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "timetravel:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatTimeTravel(ttRes))
		fmt.Printf("as-of reads replay the journal prefix at open, then cost the same as\n")
		fmt.Printf("head reads; the anchor pin kept every commit openable across the rewrite\n\n")
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if *jsonDir != "" {
		if err := writeBenchJSON(*jsonDir, fig4Pts, fig5Pts, livePts, shardedRes, ingestRes, chaosRes, stampedeRes, anaRes, ttRes, farmRes); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
	}
}

// writeBenchJSON persists whatever figure data this invocation produced
// as machine-readable files, so plots and regression checks don't have
// to scrape the human tables. Figure 5 carries both curves: the
// simulated sweep and, when fig5live ran, the measured one.
func writeBenchJSON(dir string, fig4, fig5 []bench.BrowsePoint, live []bench.LivePoint, shardedRes *bench.ShardedResult, ingest []bench.IngestResult, chaosRes *bench.ChaosResult, stampedeRes *bench.StampedeResult, anaRes *bench.AnalyticsResult, ttRes *bench.TimeTravelResult, farmRes *bench.TablesScaleResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, v any) error {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		return nil
	}
	if fig4 != nil {
		err := write("BENCH_fig4.json", map[string]any{
			"figure": "fig4", "axis": "clients", "simulated": fig4,
		})
		if err != nil {
			return err
		}
	}
	if fig5 != nil || live != nil {
		payload := map[string]any{"figure": "fig5", "axis": "nodes"}
		if fig5 != nil {
			payload["simulated"] = fig5
		}
		if live != nil {
			payload["live"] = live
		}
		if err := write("BENCH_fig5.json", payload); err != nil {
			return err
		}
	}
	if shardedRes != nil {
		err := write("BENCH_fig5sharded.json", map[string]any{
			"figure": "fig5sharded", "axis": "nodes",
			"note": "measured N-shard x M-replica cell; every scatter-gather result proven bit-identical to a single-node oracle before and after each sweep",
			"live": shardedRes,
		})
		if err != nil {
			return err
		}
	}
	if ingest != nil {
		err := write("BENCH_tables.json", map[string]any{
			"experiment": "ingest", "note": "fast-ingest path behind Tables 1-3 data preparation",
			"results": ingest,
		})
		if err != nil {
			return err
		}
	}
	if chaosRes != nil {
		err := write("BENCH_chaos.json", map[string]any{
			"experiment": "chaos",
			"note":       "availability under enumerated network faults; db_loss_degraded records stale-cache browse + fail-fast writes with the database partitioned away",
			"results":    chaosRes,
		})
		if err != nil {
			return err
		}
	}
	if stampedeRes != nil {
		err := write("BENCH_stampede.json", map[string]any{
			"experiment": "stampede",
			"note":       "open-loop 10x flare-alert browse spike against a live cell: fixed admission semaphore + naive-retry clients vs adaptive limiter + brownout ladder + hint-honoring clients; goodput = requests answered within the 2s SLO",
			"results":    stampedeRes,
		})
		if err != nil {
			return err
		}
	}
	if anaRes != nil {
		err := write("BENCH_analytics.json", map[string]any{
			"experiment": "analytics",
			"note":       "vectorized columnar scans vs row-at-a-time over synthetic events; results bit-identical between paths",
			"results":    anaRes,
		})
		if err != nil {
			return err
		}
	}
	if farmRes != nil {
		err := write("BENCH_tablesscale.json", map[string]any{
			"experiment": "tablesscale",
			"note":       "measured processing farm: mixed interactive/bulk load vs farm size, preemption and speculation A/B tails, epoch-keyed memoization with every cached delivery verified bit-identical to an uncached oracle",
			"results":    farmRes,
		})
		if err != nil {
			return err
		}
	}
	if ttRes != nil {
		err := write("BENCH_lake.json", map[string]any{
			"experiment": "timetravel",
			"note":       "as-of read latency by commit depth over the lake's commit journal, plus the compaction/GC win; every view verified bit-identical against a commit-replay oracle",
			"results":    ttRes,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// runEngine is the one experiment that exercises the real storage engine
// rather than the discrete-event simulation: GOMAXPROCS reader goroutines
// browse and count through the DM while one writer keeps committing new
// events. It reports the snapshot and cache counters that make the
// concurrency behaviour observable: every commit publishes an immutable
// table snapshot (reads never block on it), and repeated identical counts
// between commits are served from the DM's epoch-keyed cache.
func runEngine() error {
	const runFor = 2 * time.Second
	tmp, err := os.MkdirTemp("", "hedc-engine")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	db, err := dmOpenEngine(tmp)
	if err != nil {
		return err
	}
	d := db.dm
	sci, err := d.Authenticate("bench", "pw", "127.0.0.1", dm.SessionHLE)
	if err != nil {
		return err
	}
	for i := 0; i < 500; i++ {
		if _, err := d.CreateHLE(sci, &schema.HLE{
			KindHint: "flare", Day: int64(i % 30), TStart: float64(i), TStop: float64(i + 1),
			Version: 1, CalibVersion: 1,
		}); err != nil {
			return err
		}
	}

	readers := runtime.GOMAXPROCS(0)
	var reads atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	meta0 := d.MetaDB().Stats()
	hits0 := d.Stats().QueryCacheHits.Load()
	misses0 := d.Stats().QueryCacheMisses.Load()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; !stop.Load(); i++ {
				if i%2 == 0 {
					if _, err := d.CountHLEs(sci, dm.HLEFilter{Kind: "flare", Day: int64(i % 30), HasDay: true}); err != nil {
						return
					}
				} else {
					if _, err := d.QueryHLEs(sci, dm.HLEFilter{Kind: "flare", Limit: 20}); err != nil {
						return
					}
				}
				reads.Add(1)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			if _, err := d.CreateHLE(sci, &schema.HLE{
				KindHint: "flare", Day: int64(i % 30), TStart: float64(1000 + i),
				TStop: float64(1001 + i), Version: 1, CalibVersion: 1,
			}); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond) // ingest cadence, not a tight loop
		}
	}()
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	meta := d.MetaDB().Stats()
	hits := d.Stats().QueryCacheHits.Load() - hits0
	misses := d.Stats().QueryCacheMisses.Load() - misses0
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = 100 * float64(hits) / float64(hits+misses)
	}
	fmt.Printf("Engine — snapshot reads + epoch-keyed DM cache (%d readers, 1 writer, %v)\n", readers, runFor)
	fmt.Printf("  %-28s %10d\n", "reads served", reads.Load())
	fmt.Printf("  %-28s %10.0f\n", "reads/sec", float64(reads.Load())/runFor.Seconds())
	fmt.Printf("  %-28s %10d\n", "commits (snapshots published)", meta.SnapshotPublishes-meta0.SnapshotPublishes)
	fmt.Printf("  %-28s %10d\n", "engine queries", meta.Queries-meta0.Queries)
	fmt.Printf("  %-28s %10d / %d (%.1f%% hit rate)\n", "DM query cache hits/misses", hits, misses, hitRate)
	fmt.Printf("reads proceed against published snapshots while the writer commits;\n")
	fmt.Printf("identical counts between commits never reach the engine\n\n")
	return nil
}

type engineHandles struct {
	dm *dm.DM
}

func dmOpenEngine(dir string) (*engineHandles, error) {
	mdb, err := minidb.Open("", schema.AllSchemas()...) // in-memory: no disk I/O in the numbers
	if err != nil {
		return nil, err
	}
	arch, err := archive.New("disk-0", archive.Disk, dir, 0)
	if err != nil {
		return nil, err
	}
	d, err := dm.Open(dm.Options{
		Node: "bench-engine", MetaDB: mdb, DefaultArchive: "disk-0",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		return nil, err
	}
	if err := d.RegisterArchive(arch, "/a"); err != nil {
		return nil, err
	}
	if err := d.Bootstrap("secret"); err != nil {
		return nil, err
	}
	if err := d.CreateUser("bench", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		return nil, err
	}
	return &engineHandles{dm: d}, nil
}

// Command hedc-load generates synthetic RHESSI mission days and ingests
// them into a repository: raw units are archived as gzip-FITS, wavelet
// views are pre-computed, and detection programs populate the catalogs.
//
//	hedc-load -data /var/hedc -days 3 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	hedc "repro"
)

func main() {
	var (
		data    = flag.String("data", "./hedc-data", "data directory")
		days    = flag.Int("days", 1, "mission days to generate and load")
		first   = flag.Int("first-day", 1, "first day number")
		seed    = flag.Int64("seed", 2002, "telemetry seed")
		dayLen  = flag.Float64("day-length", 7200, "seconds of observation per day")
		bg      = flag.Float64("background", 5, "background photon rate [1/s]")
		flares  = flag.Int("flares", -1, "flares per day (-1 = Poisson)")
		bursts  = flag.Int("bursts", -1, "gamma-ray bursts per day (-1 = Poisson)")
		saa     = flag.Bool("saa", true, "include South Atlantic Anomaly transits")
		unitSec = flag.Float64("unit-seconds", 0, "raw unit window (0 = day/4)")
	)
	flag.Parse()

	repo, err := hedc.Open(hedc.Config{DataDir: *data})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	var totalUnits, totalEvents, totalPhotons int
	var totalBytes int64
	for d := *first; d < *first+*days; d++ {
		reports, err := repo.LoadDay(d, hedc.MissionConfig{
			Seed: *seed, DayLength: *dayLen, BackgroundRate: *bg,
			Flares: *flares, Bursts: *bursts, IncludeSAA: *saa,
		}, *unitSec)
		if err != nil {
			log.Fatalf("day %d: %v", d, err)
		}
		for _, r := range reports {
			totalUnits++
			totalEvents += r.Events
			totalPhotons += r.Photons
			totalBytes += r.RawBytes
			fmt.Printf("loaded %-14s %8d photons %7.1f KB %2d views %2d events\n",
				r.UnitID, r.Photons, float64(r.RawBytes)/1024, r.Views, r.Events)
		}
	}
	if err := repo.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d units, %d photons, %.1f MB raw, %d catalog events\n",
		totalUnits, totalPhotons, float64(totalBytes)/(1<<20), totalEvents)
	if totalEvents == 0 {
		fmt.Fprintln(os.Stderr, "warning: no events detected; raise -flares or -background")
	}
}

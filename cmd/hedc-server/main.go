// Command hedc-server runs one HEDC process. Five modes:
//
//	-mode repo         (default) a full standalone node: web interface at /,
//	                   DM RPC at /dm/ for remote DMs, StreamCorders and peers
//	-mode db           serve the shared metadata database over the dbnet wire
//	                   protocol, with the calibrated ops/sec ceiling
//	-mode replica      a middle-tier replica: a full DM dialing a -db-addr
//	                   database, serving /dm/ and /healthz
//	-mode shard-router serve a sharded metadata tier as one dbnet endpoint:
//	                   dials every -shard-addrs database, routes point ops
//	                   to the owning shard and scatter-gathers the rest
//	-mode gateway      the cluster front door: load-balances /dm/ across
//	                   -replicas with health checks, circuit breakers and
//	                   failover; serves the web UI and /stats over the cluster
//
// A shared-database cluster on one machine:
//
//	hedc-server -mode db -addr 127.0.0.1:7000 -data /var/hedc-db
//	hedc-server -mode replica -addr 127.0.0.1:8081 -db-addr 127.0.0.1:7000 -node r1
//	hedc-server -mode replica -addr 127.0.0.1:8082 -db-addr 127.0.0.1:7000 -node r2
//	hedc-server -mode gateway -addr 127.0.0.1:8080 \
//	    -replicas http://127.0.0.1:8081/dm/,http://127.0.0.1:8082/dm/
//
// A sharded metadata tier replaces the single -mode db process with N
// shard databases plus a router; replicas dial the router unchanged:
//
//	hedc-server -mode db -addr 127.0.0.1:7001 -data /var/hedc-shard0
//	hedc-server -mode db -addr 127.0.0.1:7002 -data /var/hedc-shard1
//	hedc-server -mode shard-router -addr 127.0.0.1:7000 -data /var/hedc-router \
//	    -shard-addrs 127.0.0.1:7001,127.0.0.1:7002
//
// Every mode shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests drain, and state is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	hedc "repro"
	"repro/internal/cluster"
	"repro/internal/colseg"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/overload"
	"repro/internal/schema"
	"repro/internal/shard"
	"repro/internal/web"
)

func main() {
	var (
		mode       = flag.String("mode", "repo", "process role: repo|db|replica|shard-router|gateway")
		data       = flag.String("data", "./hedc-data", "data directory (database + archives)")
		addr       = flag.String("addr", ":8081", "listen address (HTTP, or TCP in db mode)")
		node       = flag.String("node", "hedc-0", "node name")
		loadDays   = flag.Int("load-days", 0, "generate and ingest this many synthetic mission days at startup (repo mode)")
		seed       = flag.Int64("seed", 2002, "telemetry seed")
		dayLen     = flag.Float64("day-length", 7200, "seconds of observation per synthetic day")
		partDom    = flag.Bool("partition", false, "put the domain schema on a separate database instance (repo mode)")
		importPw   = flag.String("import-password", "import", "password of the system import account")
		dbAddr     = flag.String("db-addr", "", "dbnet address of the shared metadata database (replica mode)")
		shardAddrs = flag.String("shard-addrs", "", "comma-separated dbnet addresses of the shard databases, index = shard id (shard-router mode)")
		dbMaxOps   = flag.Float64("db-max-ops", 0, "database ops/sec ceiling, 0 = unlimited (db mode)")
		replicas   = flag.String("replicas", "", "comma-separated replica /dm/ base URLs (gateway mode)")
		adaptive   = flag.Bool("adaptive", false, "adaptive admission control: latency-gradient concurrency limit + brownout ladder (gateway mode)")
		bootPw     = flag.String("bootstrap-password", "", "bootstrap the shared database with this admin password if empty (db mode)")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof on this address (e.g. 127.0.0.1:6060; empty: disabled)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling is opt-in and listens on its own address, so no production
	// mode ever exposes pprof on the service port. Started before the mode
	// switch: every role (repo, db, replica, gateway) gets it.
	if *pprofAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("pprof: serving /debug/pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	var err error
	switch *mode {
	case "repo":
		err = runRepo(ctx, repoConfig{
			data: *data, addr: *addr, node: *node, loadDays: *loadDays,
			seed: *seed, dayLen: *dayLen, partDom: *partDom, importPw: *importPw,
		})
	case "db":
		err = runDB(ctx, *data, *addr, *dbMaxOps, *bootPw)
	case "replica":
		err = runReplica(ctx, *addr, *dbAddr, *node)
	case "shard-router":
		err = runShardRouter(ctx, *data, *addr, *shardAddrs)
	case "gateway":
		err = runGateway(ctx, *addr, *replicas, *adaptive)
	default:
		err = fmt.Errorf("unknown -mode %q (repo|db|replica|shard-router|gateway)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

type repoConfig struct {
	data, addr, node, importPw string
	loadDays                   int
	seed                       int64
	dayLen                     float64
	partDom                    bool
}

func runRepo(ctx context.Context, cfg repoConfig) error {
	repo, err := hedc.Open(hedc.Config{
		DataDir:         cfg.data,
		Node:            cfg.node,
		ImportPassword:  cfg.importPw,
		URLRoot:         "http://localhost" + cfg.addr,
		PartitionDomain: cfg.partDom,
		Logger:          log.New(os.Stderr, "hedc ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	for d := 1; d <= cfg.loadDays; d++ {
		reports, err := repo.LoadDay(d, hedc.MissionConfig{
			Seed: cfg.seed, DayLength: cfg.dayLen, BackgroundRate: 5, Flares: -1, Bursts: -1,
		}, 0)
		if err != nil {
			return fmt.Errorf("load day %d: %w", d, err)
		}
		var events int
		for _, r := range reports {
			events += r.Events
		}
		log.Printf("day %d: %d units, %d events", d, len(reports), events)
	}
	if err := repo.Checkpoint(); err != nil {
		return err
	}
	stopMaintenance := repo.Node().StartMaintenance(time.Minute)
	defer stopMaintenance()

	fmt.Printf("HEDC node %s serving on %s (data in %s)\n", cfg.node, cfg.addr, cfg.data)
	fmt.Printf("  web UI:  http://localhost%s/\n", cfg.addr)
	fmt.Printf("  DM RPC:  http://localhost%s/dm/\n", cfg.addr)
	return serveHTTP(ctx, cfg.addr, repo.Handler())
}

// runDB serves one minidb over the dbnet wire protocol — the shared
// database that every replica dials.
func runDB(ctx context.Context, data, addr string, maxOps float64, bootPw string) error {
	dir := filepath.Join(data, "metadb")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	db, err := minidb.Open(dir, schema.AllSchemas()...)
	if err != nil {
		return err
	}
	defer db.Close()
	if bootPw != "" {
		// A fresh database needs accounts before replicas can serve
		// logins; bootstrap through a throwaway DM if none exist yet.
		d, err := dm.Open(dm.Options{Node: "db-bootstrap", MetaDB: db,
			Logger: log.New(os.Stderr, "boot ", 0)})
		if err != nil {
			return err
		}
		if err := d.Bootstrap(bootPw); err != nil {
			return err
		}
	}

	// Columnar segments live next to the database they shadow; replicas
	// ship analytics queries here over the wire instead of pulling rows.
	segs, err := colseg.Open(colseg.Options{
		DB:     db,
		Dir:    filepath.Join(data, "colseg"),
		Tables: []string{schema.TableEvents},
	})
	if err != nil {
		return err
	}
	if err := segs.RefreshAll(); err != nil {
		log.Printf("colseg: initial refresh: %v", err)
	}
	go func() {
		ticker := time.NewTicker(30 * time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if err := segs.RefreshAll(); err != nil {
					log.Printf("colseg: refresh: %v", err)
				}
			}
		}
	}()

	srv, err := dbnet.Listen(addr, dbnet.Options{
		DB: db, MaxOpsPerSec: maxOps, Analytics: segs,
		Logger: log.New(os.Stderr, "dbnet ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	fmt.Printf("HEDC metadata database serving dbnet on %s (data in %s)\n", srv.Addr(), dir)
	<-ctx.Done()
	log.Printf("dbnet: shutting down")
	return srv.Close()
}

// runReplica runs one middle-tier node: a full DM whose metadata engine
// is a dbnet client dialing the shared database.
func runReplica(ctx context.Context, addr, dbAddr, name string) error {
	if dbAddr == "" {
		return fmt.Errorf("replica mode requires -db-addr")
	}
	cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: dbAddr})
	if err != nil {
		return err
	}
	defer cl.Close()
	rep, err := cluster.StartReplica(cluster.ReplicaOptions{
		Name: name, DB: cl, Addr: addr,
		Logger: log.New(os.Stderr, name+" ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	fmt.Printf("HEDC replica %s serving on %s (database at %s)\n", name, rep.Addr(), dbAddr)
	fmt.Printf("  DM RPC:  %s\n", rep.URL())
	fmt.Printf("  health:  %s\n", rep.HealthURL())
	<-ctx.Done()
	log.Printf("%s: shutting down", name)
	rep.Stop()
	return nil
}

// runShardRouter serves a sharded metadata tier behind the same dbnet
// protocol a single -mode db process speaks. It dials each shard
// database, loads (or lays out and persists) the hash-slot shard map
// under -data, and serves the router: replicas dial it exactly as they
// would a single shared database, and never learn the catalog is
// partitioned.
func runShardRouter(ctx context.Context, data, addr, shardList string) error {
	var addrs []string
	for _, a := range strings.Split(shardList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("shard-router mode requires -shard-addrs addr,addr,...")
	}
	dir := filepath.Join(data, "shardmap")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	engines := make(map[int]minidb.Engine, len(addrs))
	defer func() {
		for _, e := range engines {
			if cl, isClient := e.(*dbnet.Client); isClient {
				cl.Close()
			}
		}
	}()
	for sid, a := range addrs {
		cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: a})
		if err != nil {
			return fmt.Errorf("dial shard %d at %s: %w", sid, a, err)
		}
		engines[sid] = cl
	}
	router, err := shard.NewRouter(shard.Options{
		Shards: engines,
		Dir:    dir,
		Logger: log.New(os.Stderr, "shard ", log.LstdFlags),
	})
	if err != nil {
		return err
	}
	// The router owns the clients now; Close them exactly once through it.
	engines = nil

	// The router is both the engine and the analytics runner: point ops
	// route to the owning shard, scatter ops fan out and merge.
	srv, err := dbnet.Listen(addr, dbnet.Options{
		DB: router, Analytics: router,
		Logger: log.New(os.Stderr, "dbnet ", log.LstdFlags),
	})
	if err != nil {
		router.Close()
		return err
	}
	st := router.Status()
	fmt.Printf("HEDC shard router serving dbnet on %s over %d shards (map v%d in %s)\n",
		srv.Addr(), len(addrs), st.MapVersion, dir)
	<-ctx.Done()
	st = router.Status()
	log.Printf("shard-router: shutdown: map=v%d single-shard=%d scatter=%d fanout-calls=%d shard-failures=%d splits=%d",
		st.MapVersion, st.SingleShard, st.Scatter, st.FanoutCalls, st.ShardFailures, st.Splits)
	err = srv.Close()
	router.Close()
	return err
}

// runGateway fronts a set of replicas with the cluster gateway:
// health-checked, cache-affine load balancing with failover, exposed as
// the same /dm/ protocol the replicas speak.
func runGateway(ctx context.Context, addr, replicaList string, adaptive bool) error {
	opts := cluster.GatewayOptions{
		Logger: log.New(os.Stderr, "gateway ", log.LstdFlags),
	}
	if adaptive {
		// Zero-value configs take the package defaults; the flag just
		// flips admission from the fixed semaphore to the AIMD limiter
		// and starts the brownout ladder.
		opts.AdaptiveLimit = &overload.Config{}
		opts.Brownout = &overload.LadderConfig{}
	}
	gw := cluster.NewGateway(opts)
	defer gw.Close()
	n := 0
	for _, u := range strings.Split(replicaList, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		n++
		gw.AddReplica(fmt.Sprintf("replica-%d", n), dm.NewRemote(u, nil))
	}
	if n == 0 {
		return fmt.Errorf("gateway mode requires -replicas url,url,...")
	}

	mux := dm.NewServer(gw, "/dm/").Mux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		healthy := 0
		for _, m := range gw.Members() {
			if m.Healthy {
				healthy++
			}
		}
		if healthy == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, `{"members":%d,"healthy":%d}`+"\n", n, healthy)
	})
	// The gateway is a dm.API like any other, so the whole presentation
	// tier runs over the cluster; /stats adds the per-replica health,
	// circuit and retry-budget view.
	mux.Handle("/", web.New(web.Config{API: gw, Cluster: gw, Node: "gateway"}).Handler())
	fmt.Printf("HEDC gateway serving on %s over %d replicas\n", addr, n)
	err := serveHTTP(ctx, addr, mux)
	logGatewayStatus(gw)
	return err
}

// logGatewayStatus prints the resilience counters on shutdown, so an
// operator reading the logs of a finished run sees what the cluster
// absorbed: load shed, failovers, circuit opens, degraded serves.
func logGatewayStatus(gw *cluster.Gateway) {
	st := gw.Status()
	log.Printf("gateway: shutdown: shed=%d failovers=%d retries-denied=%d retry-tokens=%.1f/%d degraded-serves=%d demotions=%d writes-failed-fast=%d write-epoch=%d stale-entries=%d",
		st.Shed, st.Failovers, st.RetriesDenied, st.RetryTokens, st.RetryBurst,
		st.DegradedServes, st.SessionDemotions, st.WritesFailedFast, st.WriteEpoch, st.StaleEntries)
	for _, m := range st.Members {
		log.Printf("gateway: replica %s: healthy=%v circuit=%s fails=%d opens=%d served=%d failed=%d",
			m.Name, m.Healthy, m.Circuit, m.CircuitFails, m.CircuitOpens, m.Served, m.Failed)
	}
}

// serveHTTP runs an HTTP server until ctx is cancelled, then drains
// in-flight requests before returning.
func serveHTTP(ctx context.Context, addr string, h http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down, draining in-flight requests")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return srv.Close()
	}
	return nil
}

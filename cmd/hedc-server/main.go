// Command hedc-server runs a full HEDC node: web interface at /, DM RPC at
// /dm/ for remote DMs, StreamCorders and peers.
//
//	hedc-server -data /var/hedc -addr :8081 -load-days 2
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	hedc "repro"
)

func main() {
	var (
		data     = flag.String("data", "./hedc-data", "data directory (database + archives)")
		addr     = flag.String("addr", ":8081", "HTTP listen address")
		node     = flag.String("node", "hedc-0", "node name")
		loadDays = flag.Int("load-days", 0, "generate and ingest this many synthetic mission days at startup")
		seed     = flag.Int64("seed", 2002, "telemetry seed")
		dayLen   = flag.Float64("day-length", 7200, "seconds of observation per synthetic day")
		partDom  = flag.Bool("partition", false, "put the domain schema on a separate database instance")
		importPw = flag.String("import-password", "import", "password of the system import account")
	)
	flag.Parse()

	repo, err := hedc.Open(hedc.Config{
		DataDir:         *data,
		Node:            *node,
		ImportPassword:  *importPw,
		URLRoot:         "http://localhost" + *addr,
		PartitionDomain: *partDom,
		Logger:          log.New(os.Stderr, "hedc ", log.LstdFlags),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	for d := 1; d <= *loadDays; d++ {
		reports, err := repo.LoadDay(d, hedc.MissionConfig{
			Seed: *seed, DayLength: *dayLen, BackgroundRate: 5, Flares: -1, Bursts: -1,
		}, 0)
		if err != nil {
			log.Fatalf("load day %d: %v", d, err)
		}
		var events int
		for _, r := range reports {
			events += r.Events
		}
		log.Printf("day %d: %d units, %d events", d, len(reports), events)
	}
	if err := repo.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	stopMaintenance := repo.Node().StartMaintenance(time.Minute)
	defer stopMaintenance()

	fmt.Printf("HEDC node %s serving on %s (data in %s)\n", *node, *addr, *data)
	fmt.Printf("  web UI:  http://localhost%s/\n", *addr)
	fmt.Printf("  DM RPC:  http://localhost%s/dm/\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, repo.Handler()))
}

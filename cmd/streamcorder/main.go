// Command streamcorder is the fat-client CLI: browse a remote HEDC node,
// fetch and cache data objects, clone catalogs into a local repository,
// and refine wavelet views progressively — all against the DM RPC surface
// a server (or a peer StreamCorder) exposes at /dm/.
//
//	streamcorder -server http://localhost:8081 catalogs
//	streamcorder -server http://localhost:8081 events cat-extended
//	streamcorder -server http://localhost:8081 -v2 clone cat-extended
//	streamcorder -server http://localhost:8081 fetch item-00000001
//	streamcorder -server http://localhost:8081 progressive item-00000002
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dm"
	"repro/internal/streamcorder"
)

func main() {
	var (
		server = flag.String("server", "http://localhost:8081", "HEDC server base URL")
		dir    = flag.String("dir", "./streamcorder-cache", "cache / clone directory")
		v2     = flag.Bool("v2", false, "use the V2 cache (local DM + database clone)")
		user   = flag.String("user", "", "log in as this user")
		pass   = flag.String("password", "", "password for -user")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "commands: catalogs | events <catalog> | analyses <hle> | fetch <item> | modules <item> | clone <catalog> | progressive <view-item>")
		os.Exit(2)
	}

	strategy := streamcorder.CacheV1
	if *v2 {
		strategy = streamcorder.CacheV2
	}
	c, err := streamcorder.New(streamcorder.Options{
		API:      dm.NewRemote(*server+"/dm/", nil),
		Strategy: strategy,
		Dir:      *dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *v2 {
		if err := c.InitClone("clone"); err != nil {
			log.Fatal(err)
		}
	}
	if *user != "" {
		if err := c.Login(*user, *pass); err != nil {
			log.Fatal(err)
		}
	}

	switch args[0] {
	case "catalogs":
		cats, err := c.ListCatalogs()
		if err != nil {
			log.Fatal(err)
		}
		for _, cat := range cats {
			fmt.Printf("%-16s %-20s %-10s %4d events  %s\n",
				cat.ID, cat.Name, cat.Kind, cat.Members, cat.Description)
		}
	case "events":
		requireArg(args, 2)
		events, err := c.QueryHLEs(dm.HLEFilter{Catalog: args[1], Limit: 50})
		if err != nil {
			log.Fatal(err)
		}
		for _, h := range events {
			fmt.Printf("%-14s %-16s t=[%8.1f,%8.1f]s peak=%8.1f/s sig=%5.1f\n",
				h.ID, h.KindHint, h.TStart, h.TStop, h.PeakRate, h.Significance)
		}
	case "analyses":
		requireArg(args, 2)
		anas, err := c.AnalysesForHLE(args[1])
		if err != nil {
			log.Fatal(err)
		}
		for _, a := range anas {
			fmt.Printf("%-14s %-12s %-10s photons=%d item=%s\n",
				a.ID, a.Type, a.Status, a.NPhotons, a.ItemID)
		}
	case "fetch":
		requireArg(args, 2)
		item, err := c.FetchItem(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d bytes, format %s (cache hits %d, misses %d)\n",
			item.ItemID, len(item.Bytes), item.Format,
			c.Stats().CacheHits.Load(), c.Stats().CacheMisses.Load())
	case "modules":
		requireArg(args, 2)
		out, err := c.RunModules(args[1])
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range out {
			fmt.Println(line)
		}
	case "clone":
		requireArg(args, 2)
		if !*v2 {
			log.Fatal("clone requires -v2")
		}
		hles, anas, err := c.CloneCatalog(args[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cloned %d events and %d analyses into %s\n", hles, anas, *dir)
	case "progressive":
		requireArg(args, 2)
		curves, err := c.ProgressiveLightcurve(args[1], 64, []float64{0.05, 0.25, 1.0})
		if err != nil {
			log.Fatal(err)
		}
		for i, frac := range []float64{0.05, 0.25, 1.0} {
			var total float64
			for _, x := range curves[i] {
				total += x
			}
			fmt.Printf("frac %.2f: %d bins, %.0f total counts\n", frac, len(curves[i]), total)
		}
	default:
		log.Fatalf("unknown command %q", args[0])
	}
}

func requireArg(args []string, n int) {
	if len(args) < n {
		log.Fatalf("command %s needs %d argument(s)", args[0], n-1)
	}
}

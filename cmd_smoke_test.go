package hedc

// Smoke tests for the executables: build each command and drive the
// non-server ones end to end. Skipped in -short mode (they shell out to
// the Go toolchain).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildCmd(t *testing.T, name, binDir string) string {
	t.Helper()
	bin := filepath.Join(binDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCommandsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke tests skipped in short mode")
	}
	binDir := t.TempDir()
	dataDir := t.TempDir()

	// hedc-load ingests a synthetic day into a fresh repository.
	load := buildCmd(t, "hedc-load", binDir)
	out, err := exec.Command(load,
		"-data", dataDir, "-days", "1", "-day-length", "1200",
		"-background", "4", "-flares", "1", "-bursts", "0", "-saa=false",
		"-unit-seconds", "1200").CombinedOutput()
	if err != nil {
		t.Fatalf("hedc-load: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "catalog events") {
		t.Fatalf("hedc-load output:\n%s", out)
	}

	// A second invocation appends a day to the same store (persistence).
	out, err = exec.Command(load,
		"-data", dataDir, "-days", "1", "-first-day", "2", "-day-length", "1200",
		"-background", "4", "-flares", "1", "-bursts", "0", "-saa=false",
		"-unit-seconds", "1200").CombinedOutput()
	if err != nil {
		t.Fatalf("hedc-load day 2: %v\n%s", err, out)
	}

	// hedc-bench regenerates the deterministic tables instantly.
	bench := buildCmd(t, "hedc-bench", binDir)
	out, err = exec.Command(bench, "-exp", "table2").CombinedOutput()
	if err != nil {
		t.Fatalf("hedc-bench: %v\n%s", err, out)
	}
	for _, want := range []string{"Requests      100", "Queries       300", "Edits         200"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("hedc-bench table2 missing %q:\n%s", want, out)
		}
	}
	out, err = exec.Command(bench, "-exp", "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("hedc-bench table1: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "S+C/2+1") {
		t.Fatalf("hedc-bench table1 output:\n%s", out)
	}

	// The remaining commands at least build.
	buildCmd(t, "hedc-server", binDir)
	buildCmd(t, "streamcorder", binDir)
}

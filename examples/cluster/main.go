// Cluster demonstrates §5.4's transparent extension "to a cluster-based
// system with multiple Web servers, processing servers, and a distributed
// database": a primary HEDC node owns the data; two extra web front-ends
// run on separate "nodes" and redirect every DM call to the primary over
// HTTP. Browsers cannot tell which node served them — the architecture
// behind Figure 5's scaling experiment.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	hedc "repro"
	"repro/internal/dm"
	"repro/internal/web"
)

func main() {
	dir, err := os.MkdirTemp("", "hedc-cluster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The primary node: database, archives, DM, PL.
	repo, err := hedc.Open(hedc.Config{DataDir: dir, Node: "primary"})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()
	if _, err := repo.LoadDay(1, hedc.MissionConfig{
		Seed: 5, DayLength: 2400, BackgroundRate: 5, Flares: 2, Bursts: 0,
	}, 0); err != nil {
		log.Fatal(err)
	}
	primary := httptest.NewServer(repo.Handler())
	defer primary.Close()
	fmt.Printf("primary node serving web + DM RPC at %s\n", primary.URL)

	// Two additional middle-tier web nodes. Their DM API is a Remote that
	// ships every call to the primary — the §5.4 redirection feature that
	// Figure 5 scales with.
	var extraURLs []string
	for i := 1; i <= 2; i++ {
		remote := dm.NewRemote(primary.URL+"/dm/", nil)
		node := web.New(web.Config{API: remote, Node: fmt.Sprintf("web-%d", i)})
		ts := httptest.NewServer(node.Handler())
		defer ts.Close()
		extraURLs = append(extraURLs, ts.URL)
		fmt.Printf("web node %d serving at %s (redirecting DM calls to primary)\n", i, ts.URL)
	}

	// The same catalog page from every node: clients are spread evenly, as
	// in the §7 experiments, and see identical data.
	urls := append([]string{primary.URL}, extraURLs...)
	for i, base := range urls {
		resp, err := http.Get(base + "/catalog?id=" + hedc.ExtendedCatalog)
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		events := strings.Count(string(body), "/hle?id=")
		nodeTag := "?"
		if idx := strings.Index(string(body), "node "); idx >= 0 {
			nodeTag = strings.Fields(string(body)[idx:])[1]
		}
		fmt.Printf("node %d (%s): catalog page lists %d events, rendered by %q\n",
			i, base, events, nodeTag)
	}

	// The primary counts the redirected calls the extra nodes shipped in.
	stats := repo.Node().DM.Stats()
	fmt.Printf("\nprimary served %d redirected DM calls for the extra web nodes\n",
		stats.RedirectsIn.Load())
	if stats.RedirectsIn.Load() == 0 {
		log.Fatal("redirection did not happen")
	}
}

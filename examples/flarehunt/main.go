// Flarehunt is the paper's motivating workload (§2.2, §6.1): a scientist
// browses the standard catalog for solar flares, runs the three standard
// analyses (imaging, lightcurve, spectrogram) over the most significant
// one — first approximated for interactive exploration, then exact — and
// shares the results with the community by publishing them.
package main

import (
	"fmt"
	"log"
	"os"

	hedc "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "hedc-flarehunt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	repo, err := hedc.Open(hedc.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// Two observation days with busy flare activity.
	for d := 1; d <= 2; d++ {
		if _, err := repo.LoadDay(d, hedc.MissionConfig{
			Seed: 7, DayLength: 3600, BackgroundRate: 5, Flares: 3, Bursts: 0,
		}, 0); err != nil {
			log.Fatal(err)
		}
	}

	// A scientist account with analysis rights.
	if err := repo.CreateUser("ella", "hunt2", hedc.GroupScientist,
		hedc.RightBrowse, hedc.RightDownload, hedc.RightAnalyze, hedc.RightUpload); err != nil {
		log.Fatal(err)
	}
	sess, err := repo.Login("ella", "hunt2")
	if err != nil {
		log.Fatal(err)
	}

	// Hunt: flares from the standard catalog, most significant first.
	flares, err := repo.Events(sess, hedc.Filter{Catalog: hedc.StandardCatalog, Kind: "flare"})
	if err != nil {
		log.Fatal(err)
	}
	if len(flares) == 0 {
		log.Fatal("no flares in the standard catalog")
	}
	best := flares[0]
	for _, f := range flares {
		if f.Significance > best.Significance {
			best = f
		}
	}
	fmt.Printf("hunting %d flares; brightest: %s (%.1f sigma, t=[%.0f, %.0f]s)\n",
		len(flares), best.ID, best.Significance, best.TStart, best.TStop)

	// Interactive pass: approximated lightcurve from the wavelet views —
	// the §3.4 order-of-magnitude shortcut.
	quickID, err := repo.Analyze(sess, hedc.Lightcurve, best.ID, map[string]interface{}{
		"use_view": true, "approx_frac": 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	quick, _ := repo.GetAnalysis(sess, quickID)
	fmt.Printf("approximated lightcurve %s: peak %.0f (from %.0f%% of coefficients)\n",
		quick.ID, quick.PeakValue, quick.ApproxFrac*100)

	// The event looks real: run the exact standard trio.
	for _, anaType := range []string{hedc.Lightcurve, hedc.Spectrogram, hedc.Imaging} {
		params := map[string]interface{}{}
		if anaType == hedc.Imaging {
			params["image_size"] = 32
			params["pixel_size"] = 64.0
		}
		// The §3.5 redundant-work check: reuse a committed result if one
		// already exists before burning processing time.
		id, err := repo.Analyze(sess, anaType, best.ID, params)
		if err != nil {
			log.Fatal(err)
		}
		ana, _ := repo.GetAnalysis(sess, id)
		switch anaType {
		case hedc.Imaging:
			fmt.Printf("%-12s %s: source at (%.0f, %.0f) arcsec\n", anaType, id, ana.PeakX, ana.PeakY)
		default:
			fmt.Printf("%-12s %s: %d photons, total %.0f\n", anaType, id, ana.NPhotons, ana.ResultTotal)
		}
		// Share with the community (§3.5: precomputed analyses spare
		// everyone else the work).
		if err := repo.Publish(sess, "ana", id); err != nil {
			log.Fatal(err)
		}
	}

	// Another scientist finds the work already done.
	if err := repo.CreateUser("marc", "pw", hedc.GroupScientist,
		hedc.RightBrowse, hedc.RightAnalyze); err != nil {
		log.Fatal(err)
	}
	marc, err := repo.Login("marc", "pw")
	if err != nil {
		log.Fatal(err)
	}
	shared, err := repo.Analyses(marc, best.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmarc sees %d shared analyses on %s without recomputing anything\n",
		len(shared), best.ID)
}

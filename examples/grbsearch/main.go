// Grbsearch demonstrates the paper's "open system" argument (§3.2): RHESSI
// is a solar instrument, but its detectors also see non-solar gamma-ray
// bursts. A "solar flare only" repository could never answer this
// question; HEDC can, because it stores events, not types — users define
// their own event semantics over the raw data and build their own
// catalogs.
package main

import (
	"fmt"
	"log"
	"os"

	hedc "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "hedc-grb-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	repo, err := hedc.Open(hedc.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	if _, err := repo.LoadDay(1, hedc.MissionConfig{
		Seed: 5, DayLength: 5400, BackgroundRate: 4, Flares: 1, Bursts: 2,
	}, 0); err != nil {
		log.Fatal(err)
	}

	if err := repo.CreateUser("grbhunter", "pw", hedc.GroupScientist,
		hedc.RightBrowse, hedc.RightDownload, hedc.RightAnalyze, hedc.RightUpload); err != nil {
		log.Fatal(err)
	}
	sess, err := repo.Login("grbhunter", "pw")
	if err != nil {
		log.Fatal(err)
	}

	// The extended catalog's detection programs already flag candidate
	// bursts heuristically — short, spectrally hard excursions.
	candidates, err := repo.Events(sess, hedc.Filter{
		Catalog: hedc.ExtendedCatalog, Kind: "gamma-ray-burst",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detection programs flagged %d burst candidates\n", len(candidates))

	// The scientist applies her OWN criteria over all catalog events —
	// no schema change, no new "type": just a different reading of the
	// same tuples (§3.3: "there are only events").
	all, err := repo.Events(sess, hedc.Filter{Catalog: hedc.ExtendedCatalog})
	if err != nil {
		log.Fatal(err)
	}
	var myBursts []*hedc.Event
	for _, e := range all {
		dur := e.TStop - e.TStart
		if dur > 0 && dur <= 120 && e.Significance >= 5 && e.KindHint != "quiet-period" {
			myBursts = append(myBursts, e)
		}
	}
	fmt.Printf("user-defined criteria (short + significant) match %d events\n", len(myBursts))
	if len(myBursts) == 0 {
		log.Fatal("no burst candidates for this seed")
	}

	// For each candidate, a hard-band histogram distinguishes bursts
	// (flat, hard spectra: a large fraction of photons above 100 keV)
	// from flares (steep, soft spectra: almost none).
	var confirmed []*hedc.Event
	for _, e := range myBursts {
		anaID, err := repo.Analyze(sess, hedc.Histogram, e.ID, map[string]interface{}{
			"emin": 100.0, "emax": 20000.0, "energy_bins": 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		ana, _ := repo.GetAnalysis(sess, anaID)
		hardness := float64(ana.NPhotons) / float64(e.TotalCounts+1)
		verdict := "probably solar"
		if hardness > 0.05 {
			verdict = "NON-SOLAR burst candidate"
			confirmed = append(confirmed, e)
		}
		fmt.Printf("  %-14s hard/total = %4d/%5d (%.1f%%) -> %s\n",
			e.ID, ana.NPhotons, e.TotalCounts, hardness*100, verdict)
	}

	// Events that survive go into the scientist's own burst catalog —
	// exactly how HEDC lets research that the designers never anticipated
	// organize itself.
	node := repo.Node()
	catID, err := node.DM.CreateCatalog(sess, "grb-candidates", "private",
		"user-defined gamma-ray burst search", false)
	if err != nil {
		log.Fatal(err)
	}
	if len(confirmed) == 0 {
		confirmed = myBursts // keep the weaker candidates for follow-up
	}
	for _, e := range confirmed {
		if err := node.DM.AddToCatalog(sess, catID, e.ID); err != nil {
			log.Fatal(err)
		}
	}
	mine, err := repo.Events(sess, hedc.Filter{Catalog: catID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersonal catalog %s now holds %d burst candidates\n", catID, len(mine))
}

// Quickstart: open a repository, ingest one synthetic mission day, browse
// the catalogs that the detection programs populated, run one analysis and
// read back its image.
package main

import (
	"fmt"
	"log"
	"os"

	hedc "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "hedc-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open a repository (database + archives + middle tier).
	repo, err := hedc.Open(hedc.Config{DataDir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// 2. Ingest one synthetic mission day: telemetry is generated, packaged
	// into gzip-FITS raw units, archived, pre-processed into wavelet views,
	// and combed for events.
	reports, err := repo.LoadDay(1, hedc.MissionConfig{
		Seed: 42, DayLength: 3600, BackgroundRate: 5, Flares: 2, Bursts: 1,
	}, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("loaded %s: %d photons, %d views, %d events\n",
			r.UnitID, r.Photons, r.Views, r.Events)
	}

	// 3. Browse the extended catalog (visible without any account).
	events, err := repo.Events(nil, hedc.Filter{Catalog: hedc.ExtendedCatalog})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextended catalog holds %d events:\n", len(events))
	for _, e := range events {
		fmt.Printf("  %-14s %-16s t=[%.0f, %.0f]s significance=%.1f\n",
			e.ID, e.KindHint, e.TStart, e.TStop, e.Significance)
	}
	if len(events) == 0 {
		log.Fatal("no events detected — unexpected for this seed")
	}

	// 4. Run a lightcurve analysis on the first event (processing requires
	// an account; the import account works out of the box).
	sess, err := repo.ImportSession()
	if err != nil {
		log.Fatal(err)
	}
	anaID, err := repo.Analyze(sess, hedc.Lightcurve, events[0].ID, map[string]interface{}{
		"time_bins": 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	ana, err := repo.GetAnalysis(sess, anaID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nanalysis %s: %d photons, peak %.0f counts at t=%.0fs\n",
		ana.ID, ana.NPhotons, ana.PeakValue, ana.PeakX)

	// 5. The result is a real GIF, resolvable through name mapping.
	img, err := repo.ReadItem(sess, ana.ItemID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result image: %d bytes (%q...)\n", len(img), img[:3])
}

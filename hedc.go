// Package hedc is a reproduction of the RHESSI Experimental Data Center
// (HEDC) described in "Scientific Data Repositories: Designing for a Moving
// Target" (Stolte, von Praun, Alonso, Gross — SIGMOD 2003): a scientific
// data warehouse that separates metadata (in an embedded relational
// database) from bulk data (in file archives), and revolves around a
// scalable middle tier of Data Management and Processing Logic components.
//
// A Repository is a full HEDC node. Typical use:
//
//	repo, err := hedc.Open(hedc.Config{DataDir: "/var/hedc"})
//	...
//	repo.LoadDay(1, hedc.MissionConfig{Seed: 42}, 0)  // ingest telemetry
//	sess, _ := repo.ImportSession()
//	events, _ := repo.Events(sess, hedc.Filter{Catalog: hedc.ExtendedCatalog})
//	anaID, _ := repo.Analyze(sess, hedc.Lightcurve, events[0].ID, nil)
//	http.ListenAndServe(":8080", repo.Handler())     // web UI + DM RPC
//
// The subpackages under internal/ implement every substrate from scratch:
// the minidb relational engine, the FITS-style container format, the
// synthetic RHESSI telemetry generator, the Haar wavelet codec behind
// approximated analysis, file archives with name mapping, the DM and PL
// middle-tier components, the web presentation tier, the StreamCorder fat
// client and the synoptic remote search.
package hedc

import (
	"context"
	"net/http"

	"repro/internal/core"
	"repro/internal/dm"
	"repro/internal/schema"
	"repro/internal/synoptic"
	"repro/internal/telemetry"
)

// Re-exported configuration and entity types. The aliases keep the public
// surface in one import while the implementation stays in internal
// packages.
type (
	// Config configures a Repository (see core.Config for field docs).
	Config = core.Config
	// MissionConfig parameterizes synthetic telemetry generation.
	MissionConfig = telemetry.Config
	// Session is an authenticated user context.
	Session = dm.Session
	// Filter narrows event queries.
	Filter = dm.HLEFilter
	// Event is a high level event (HLE) tuple.
	Event = schema.HLE
	// Analysis is an analysis (ANA) tuple.
	Analysis = schema.ANA
	// Catalog is a named event grouping.
	Catalog = dm.Catalog
	// LoadReport summarizes one ingested raw-data unit.
	LoadReport = dm.LoadReport
	// RemoteArchive is a synoptic-search endpoint.
	RemoteArchive = synoptic.Endpoint
	// PhoenixConfig parameterizes Phoenix-2 spectrogram generation.
	PhoenixConfig = telemetry.PhoenixConfig
	// PhoenixReport summarizes one spectrogram load.
	PhoenixReport = dm.PhoenixReport
)

// Analysis types shipped with the system.
const (
	Imaging     = schema.AnaImaging
	Lightcurve  = schema.AnaLightcurve
	Spectrogram = schema.AnaSpectrogram
	Histogram   = schema.AnaHistogram
)

// Well-known catalogs and accounts.
const (
	StandardCatalog = dm.StandardCat
	ExtendedCatalog = dm.ExtendedCat
	PhoenixCatalog  = dm.PhoenixCat
	ImportUser      = dm.ImportUser
)

// User groups and rights for CreateUser.
const (
	GroupAdmin     = dm.GroupAdmin
	GroupScientist = dm.GroupScientist
	RightBrowse    = dm.RightBrowse
	RightDownload  = dm.RightDownload
	RightAnalyze   = dm.RightAnalyze
	RightUpload    = dm.RightUpload
)

// Repository is a running HEDC node: resource management (database +
// archives), application logic (DM + PL) and presentation (web handler).
type Repository struct {
	node *core.Node
}

// Open starts a repository rooted at cfg.DataDir.
func Open(cfg Config) (*Repository, error) {
	n, err := core.Start(cfg)
	if err != nil {
		return nil, err
	}
	return &Repository{node: n}, nil
}

// Close shuts the repository down, flushing the databases.
func (r *Repository) Close() error { return r.node.Close() }

// Checkpoint snapshots the databases and truncates the redo logs.
func (r *Repository) Checkpoint() error { return r.node.Checkpoint() }

// Node exposes the underlying assembly for advanced wiring (cluster
// configurations, custom strategies, direct DM access).
func (r *Repository) Node() *core.Node { return r.node }

// Handler serves the web interface at / and the DM RPC surface at /dm/.
func (r *Repository) Handler() http.Handler { return r.node.Handler() }

// LoadDay generates one synthetic mission day and ingests its raw units.
func (r *Repository) LoadDay(day int, mission MissionConfig, unitSeconds float64) ([]*LoadReport, error) {
	return r.node.LoadDay(day, mission, unitSeconds)
}

// LoadPhoenix ingests one Phoenix-2 radio spectrogram — the second data
// source (§2.2), with its own file format, absorbed by the same generic
// machinery.
func (r *Repository) LoadPhoenix(day, seq int, cfg PhoenixConfig) (*PhoenixReport, error) {
	return r.node.DM.LoadPhoenix(telemetry.GeneratePhoenix(day, seq, cfg))
}

// CreateUser registers an account.
func (r *Repository) CreateUser(user, password, group string, rights ...string) error {
	return r.node.DM.CreateUser(user, password, group, rights...)
}

// Login authenticates a user.
func (r *Repository) Login(user, password string) (*Session, error) {
	return r.node.Login(user, password)
}

// ImportSession logs in the system import account.
func (r *Repository) ImportSession() (*Session, error) { return r.node.ImportSession() }

// Catalogs lists the catalogs visible to the session.
func (r *Repository) Catalogs(s *Session) ([]*Catalog, error) {
	return r.node.DM.ListCatalogs(s)
}

// Events queries high level events.
func (r *Repository) Events(s *Session, f Filter) ([]*Event, error) {
	return r.node.DM.QueryHLEs(s, f)
}

// Event fetches one event by id.
func (r *Repository) Event(s *Session, id string) (*Event, error) {
	return r.node.DM.GetHLE(s, id)
}

// CreateEvent records a user-defined event — HEDC's open data model lets
// users "build their own catalogs of relevant data using any information
// available in the raw data" (§3.3).
func (r *Repository) CreateEvent(s *Session, e *Event) (string, error) {
	return r.node.DM.CreateHLE(s, e)
}

// Analyses lists the analyses attached to an event.
func (r *Repository) Analyses(s *Session, hleID string) ([]*Analysis, error) {
	return r.node.DM.AnalysesForHLE(s, hleID)
}

// GetAnalysis fetches one analysis by id.
func (r *Repository) GetAnalysis(s *Session, id string) (*Analysis, error) {
	return r.node.DM.GetANA(s, id)
}

// FindExistingAnalysis returns a committed analysis with matching
// parameters, if one is visible — the §3.5 redundant-work check.
func (r *Repository) FindExistingAnalysis(s *Session, spec *Analysis) (*Analysis, error) {
	return r.node.DM.FindExistingAnalysis(s, spec)
}

// Analyze runs one analysis to completion and returns the committed id.
// params may carry tstart/tstop/emin/emax/time_bins/energy_bins/image_size/
// pixel_size/approx_frac/use_view; the event's window is the default.
func (r *Repository) Analyze(s *Session, anaType, hleID string, params map[string]interface{}) (string, error) {
	return r.node.Analyze(s, anaType, hleID, params)
}

// Publish makes an event ("hle") or analysis ("ana") visible to all users.
func (r *Repository) Publish(s *Session, kind, id string) error {
	return r.node.DM.Publish(s, kind, id)
}

// ReadItem returns the file bytes behind an item reference (an analysis
// image, a raw unit, a wavelet view), resolved through name mapping.
func (r *Repository) ReadItem(s *Session, itemID string) ([]byte, error) {
	data, _, err := r.node.DM.ReadItem(s, itemID)
	return data, err
}

// Recalibrate bumps a raw unit's calibration version, flagging dependent
// events (§3.1 versioning).
func (r *Repository) Recalibrate(unitID, reason string) (int64, error) {
	return r.node.DM.Recalibrate(unitID, reason)
}

// StaleAnalyses lists committed analyses computed against outdated
// calibrations — the recomputation work-list.
func (r *Repository) StaleAnalyses(s *Session) ([]*Analysis, error) {
	return r.node.DM.StaleAnalyses(s)
}

// SynopticSearch queries the configured remote archives in parallel for
// observations correlated with [t0, t1].
func (r *Repository) SynopticSearch(ctx context.Context, t0, t1 float64) *synoptic.Report {
	return r.node.Synoptic.Search(ctx, t0, t1)
}

package hedc

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/synoptic"
)

func openRepo(t *testing.T) *Repository {
	t.Helper()
	repo, err := Open(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	return repo
}

func loadSmallDay(t *testing.T, repo *Repository) []*LoadReport {
	t.Helper()
	reports, err := repo.LoadDay(1, MissionConfig{
		Seed: 7, DayLength: 1200, BackgroundRate: 4, Flares: 1, Bursts: 0,
	}, 1200)
	if err != nil {
		t.Fatal(err)
	}
	return reports
}

func TestPublicAPIWorkflow(t *testing.T) {
	repo := openRepo(t)
	reports := loadSmallDay(t, repo)
	if len(reports) == 0 || reports[0].Events == 0 {
		t.Fatalf("reports = %+v", reports)
	}

	sess, err := repo.ImportSession()
	if err != nil {
		t.Fatal(err)
	}
	cats, err := repo.Catalogs(sess)
	if err != nil || len(cats) != 2 {
		t.Fatalf("catalogs = %v %v", cats, err)
	}
	events, err := repo.Events(sess, Filter{Catalog: ExtendedCatalog})
	if err != nil || len(events) == 0 {
		t.Fatalf("events = %v %v", events, err)
	}
	anaID, err := repo.Analyze(sess, Lightcurve, events[0].ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := repo.GetAnalysis(sess, anaID)
	if err != nil || ana.NPhotons == 0 {
		t.Fatalf("analysis = %+v %v", ana, err)
	}
	img, err := repo.ReadItem(sess, ana.ItemID)
	if err != nil || len(img) == 0 {
		t.Fatalf("image = %d bytes, %v", len(img), err)
	}
	// Redundant-work check through the facade.
	found, err := repo.FindExistingAnalysis(sess, ana)
	if err != nil || found == nil {
		t.Fatalf("existing = %v %v", found, err)
	}
	// Versioning through the facade.
	v, err := repo.Recalibrate(events[0].UnitID, "test recalibration")
	if err != nil || v != 2 {
		t.Fatalf("recalibrate = %d %v", v, err)
	}
	stale, err := repo.StaleAnalyses(sess)
	if err != nil || len(stale) == 0 {
		t.Fatalf("stale = %v %v", stale, err)
	}
}

func TestUserManagementAndACL(t *testing.T) {
	repo := openRepo(t)
	loadSmallDay(t, repo)
	if err := repo.CreateUser("zara", "pw", GroupScientist,
		RightBrowse, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}
	sess, err := repo.Login("zara", "pw")
	if err != nil {
		t.Fatal(err)
	}
	id, err := repo.CreateEvent(sess, &Event{
		KindHint: "my-own-kind", TStart: 10, TStop: 20, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Private until published.
	if _, err := repo.Event(nil, id); err == nil {
		t.Fatal("anonymous read of private event")
	}
	if err := repo.Publish(sess, "hle", id); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Event(nil, id); err != nil {
		t.Fatal(err)
	}
}

func TestSynopticSearchThroughFacade(t *testing.T) {
	arch := httptest.NewServer(&synoptic.ArchiveServer{Name: "soho", Entries: []synoptic.Entry{
		{Title: "EIT image", Time: 42, URL: "http://x"},
	}})
	defer arch.Close()
	repo, err := Open(Config{
		DataDir:          t.TempDir(),
		SynopticArchives: []RemoteArchive{{Name: "soho", URL: arch.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	rep := repo.SynopticSearch(context.Background(), 0, 100)
	if len(rep.Entries) != 1 || rep.Entries[0].Archive != "soho" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestPhoenixThroughFacade(t *testing.T) {
	repo := openRepo(t)
	rep, err := repo.LoadPhoenix(1, 0, PhoenixConfig{Seed: 17, Bursts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bursts == 0 {
		t.Fatal("no radio bursts")
	}
	events, err := repo.Events(nil, Filter{Catalog: PhoenixCatalog})
	if err != nil || len(events) != rep.Bursts {
		t.Fatalf("phoenix events = %d %v", len(events), err)
	}
	data, err := repo.ReadItem(nil, events[0].ItemID)
	if err != nil || len(data) == 0 {
		t.Fatalf("spectrogram = %d bytes %v", len(data), err)
	}
}

// Package analysis implements the data-analysis routines that HEDC runs
// through its IDL servers: imaging, lightcurves, spectroscopy — "all of
// which generate pictoral content" (§2.2) — plus the histogram analysis of
// the §8 processing evaluation, and the event-detection programs that comb
// freshly loaded raw data for the extended catalog.
//
// These are real computations over real photon streams, not stubs. Imaging
// reconstructs source positions by back-projecting the rotation-modulated
// count stream (the same class of computation RHESSI's software performs);
// its cost is dominated by photons × pixels, making it the CPU-intensive
// analysis of Table 1. Every routine renders a real GIF.
package analysis

import (
	"fmt"
	"math"

	"repro/internal/fits"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

// Params selects and configures one analysis run.
type Params struct {
	Type       string  // schema.AnaImaging, AnaLightcurve, AnaSpectrogram, AnaHistogram
	TStart     float64 // observation window [s since mission epoch]
	TStop      float64
	EMin       float64 // energy window [keV]; zero values default to the instrument range
	EMax       float64
	TimeBins   int     // lightcurve/spectrogram resolution (default 128)
	EnergyBins int     // spectrogram/histogram resolution (default 32)
	ImageSize  int     // imaging pixels per axis (default 64)
	PixelSize  float64 // imaging arcsec per pixel (default 8)
	CenterX    float64 // imaging field center [arcsec]
	CenterY    float64
	// ApproxFrac < 1 runs the analysis on approximated data: imaging
	// subsamples the photon stream; binned analyses use that fraction of
	// wavelet coefficients when a view is supplied (§6.3).
	ApproxFrac float64
}

func (p *Params) defaults() error {
	switch p.Type {
	case schema.AnaImaging, schema.AnaLightcurve, schema.AnaSpectrogram, schema.AnaHistogram:
	default:
		return fmt.Errorf("analysis: unknown analysis type %q", p.Type)
	}
	if p.TStop <= p.TStart {
		return fmt.Errorf("analysis: empty time window [%v, %v]", p.TStart, p.TStop)
	}
	if p.EMin <= 0 {
		p.EMin = telemetry.EnergyMin
	}
	if p.EMax <= 0 {
		p.EMax = telemetry.EnergyMax
	}
	if p.EMax <= p.EMin {
		return fmt.Errorf("analysis: empty energy window [%v, %v]", p.EMin, p.EMax)
	}
	if p.TimeBins <= 0 {
		p.TimeBins = 128
	}
	if p.EnergyBins <= 0 {
		p.EnergyBins = 32
	}
	if p.ImageSize <= 0 {
		p.ImageSize = 64
	}
	if p.PixelSize <= 0 {
		p.PixelSize = 8
	}
	if p.ApproxFrac <= 0 || p.ApproxFrac > 1 {
		p.ApproxFrac = 1
	}
	return nil
}

// Result is the outcome of one analysis: the numeric grid, summary
// statistics, and the rendered picture.
type Result struct {
	Type      string
	Grid      [][]float64 // row-major; 1 row for 1-D results
	PeakX     float64     // imaging: arcsec; 1-D: x of the peak bin
	PeakY     float64
	PeakValue float64
	Total     float64
	Min       float64
	Max       float64
	Mean      float64
	NPhotons  int64  // photons consumed
	GIF       []byte // rendered image
	Log       []string
}

// Run executes the analysis over a raw photon stream.
func Run(p Params, photons []fits.Photon) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	selected := selectPhotons(p, photons)
	res := &Result{Type: p.Type, NPhotons: int64(len(selected))}
	res.logf("analysis=%s window=[%.1f,%.1f]s energy=[%.1f,%.1f]keV photons=%d frac=%.3f",
		p.Type, p.TStart, p.TStop, p.EMin, p.EMax, len(selected), p.ApproxFrac)

	switch p.Type {
	case schema.AnaImaging:
		runImaging(p, selected, res)
	case schema.AnaLightcurve:
		runLightcurve(p, selected, res)
	case schema.AnaSpectrogram:
		runSpectrogram(p, selected, res)
	case schema.AnaHistogram:
		runHistogram(p, selected, res)
	}
	res.summarize()
	var err error
	res.GIF, err = render(p.Type, res.Grid)
	if err != nil {
		return nil, err
	}
	res.logf("result total=%.1f peak=%.2f gif=%dB", res.Total, res.PeakValue, len(res.GIF))
	return res, nil
}

// RunOnView executes a binned analysis over a wavelet-compressed view,
// reading only ApproxFrac of the coefficients. Imaging needs per-photon
// detector phases and cannot run on a count view.
func RunOnView(p Params, v *wavelet.View) (*Result, error) {
	if err := p.defaults(); err != nil {
		return nil, err
	}
	if p.Type == schema.AnaImaging {
		return nil, fmt.Errorf("analysis: imaging cannot run on a count view")
	}
	res := &Result{Type: p.Type, NPhotons: v.Total}
	res.logf("analysis=%s on view [%g,%g]s x [%g,%g]keV frac=%.3f",
		p.Type, v.TStart, v.TStop, v.EMin, v.EMax, p.ApproxFrac)
	counts := v.Counts(p.ApproxFrac)
	switch p.Type {
	case schema.AnaLightcurve:
		lc := make([]float64, v.TimeBins)
		for _, row := range counts {
			for i, x := range row {
				lc[i] += x
			}
		}
		res.Grid = [][]float64{lc}
	case schema.AnaHistogram, schema.AnaSpectrogram:
		res.Grid = counts
		if p.Type == schema.AnaHistogram {
			sp := make([]float64, v.EnergyBins)
			for i, row := range counts {
				for _, x := range row {
					sp[i] += x
				}
			}
			res.Grid = [][]float64{sp}
		}
	}
	res.summarize()
	var err error
	res.GIF, err = render(p.Type, res.Grid)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (r *Result) logf(format string, args ...interface{}) {
	r.Log = append(r.Log, fmt.Sprintf(format, args...))
}

// selectPhotons filters the stream to the parameter window, subsampling for
// approximated runs.
func selectPhotons(p Params, photons []fits.Photon) []fits.Photon {
	var out []fits.Photon
	stride := 1
	if p.ApproxFrac < 1 {
		stride = int(math.Round(1 / p.ApproxFrac))
		if stride < 1 {
			stride = 1
		}
	}
	n := 0
	for _, ph := range photons {
		if ph.Time < p.TStart || ph.Time >= p.TStop || ph.Energy < p.EMin || ph.Energy >= p.EMax {
			continue
		}
		if n%stride == 0 {
			out = append(out, ph)
		}
		n++
	}
	return out
}

// runImaging back-projects the modulated photon stream onto a sky grid.
// Each photon votes for the sky positions consistent with its collimator's
// transmission at its arrival time. The per-pixel expectation of that vote
// over a full spin is the Bessel term J0(k·r) (r = distance from the
// rotation axis); subtracting it removes the DC artifact at the axis and
// the unmodulated-background bias, leaving a map peaked at the source.
// O(photons × pixels): the CPU-intensive analysis of Table 1.
func runImaging(p Params, photons []fits.Photon, res *Result) {
	size := p.ImageSize
	grid := make([][]float64, size)
	for y := range grid {
		grid[y] = make([]float64, size)
	}
	half := float64(size) / 2

	// Precompute the flat-field expectation per detector: J0(k_d * r).
	flat := make([][]float64, telemetry.Detectors)
	used := make([]bool, telemetry.Detectors)
	for _, ph := range photons {
		used[ph.Detector] = true
	}
	for d := 0; d < telemetry.Detectors; d++ {
		if !used[d] {
			continue
		}
		k := 2 * math.Pi / telemetry.DetectorPitch(d)
		phase := telemetry.DetectorPhase(d)
		f := make([]float64, size*size)
		for yi := 0; yi < size; yi++ {
			sky := p.CenterY + (float64(yi)-half)*p.PixelSize
			for xi := 0; xi < size; xi++ {
				skyX := p.CenterX + (float64(xi)-half)*p.PixelSize
				r := math.Hypot(skyX, sky)
				// E over a spin of cos(k·ξ(t)+φ) = cos(φ)·J0(k·r).
				f[yi*size+xi] = math.Cos(phase) * math.J0(k*r)
			}
		}
		flat[d] = f
	}

	for _, ph := range photons {
		theta := 2 * math.Pi * ph.Time / telemetry.SpinPeriod
		cosT, sinT := math.Cos(theta), math.Sin(theta)
		pitch := telemetry.DetectorPitch(int(ph.Detector))
		k := 2 * math.Pi / pitch
		phase := telemetry.DetectorPhase(int(ph.Detector))
		f := flat[ph.Detector]
		for yi := 0; yi < size; yi++ {
			sky := p.CenterY + (float64(yi)-half)*p.PixelSize
			base := sky * sinT
			row := grid[yi]
			for xi := 0; xi < size; xi++ {
				skyX := p.CenterX + (float64(xi)-half)*p.PixelSize
				xi2 := skyX*cosT + base
				row[xi] += math.Cos(k*xi2+phase) - f[yi*size+xi]
			}
		}
	}
	// Clamp negative back-projection artifacts; locate the peak.
	best, bx, by := math.Inf(-1), 0, 0
	for yi := range grid {
		for xi := range grid[yi] {
			if grid[yi][xi] < 0 {
				grid[yi][xi] = 0
			}
			if grid[yi][xi] > best {
				best, bx, by = grid[yi][xi], xi, yi
			}
		}
	}
	res.Grid = grid
	res.PeakX = p.CenterX + (float64(bx)-half)*p.PixelSize
	res.PeakY = p.CenterY + (float64(by)-half)*p.PixelSize
	res.PeakValue = best
	res.logf("imaging %dx%d px at %.1f arcsec/px: peak at (%.1f, %.1f)",
		p.ImageSize, p.ImageSize, p.PixelSize, res.PeakX, res.PeakY)
}

func runLightcurve(p Params, photons []fits.Photon, res *Result) {
	lc := make([]float64, p.TimeBins)
	dt := (p.TStop - p.TStart) / float64(p.TimeBins)
	for _, ph := range photons {
		bin := int((ph.Time - p.TStart) / dt)
		if bin >= p.TimeBins {
			bin = p.TimeBins - 1
		}
		lc[bin]++
	}
	// Approximated runs see 1/frac of the photons; rescale to rates.
	if p.ApproxFrac < 1 {
		for i := range lc {
			lc[i] /= p.ApproxFrac
		}
	}
	res.Grid = [][]float64{lc}
	peak, at := 0.0, 0
	for i, x := range lc {
		if x > peak {
			peak, at = x, i
		}
	}
	res.PeakValue = peak
	res.PeakX = p.TStart + (float64(at)+0.5)*dt
	res.logf("lightcurve %d bins of %.2fs: peak %.0f counts at t=%.1fs", p.TimeBins, dt, peak, res.PeakX)
}

func runSpectrogram(p Params, photons []fits.Photon, res *Result) {
	grid := make([][]float64, p.EnergyBins)
	for i := range grid {
		grid[i] = make([]float64, p.TimeBins)
	}
	dt := (p.TStop - p.TStart) / float64(p.TimeBins)
	logLo, logHi := math.Log(p.EMin), math.Log(p.EMax)
	for _, ph := range photons {
		tb := int((ph.Time - p.TStart) / dt)
		if tb >= p.TimeBins {
			tb = p.TimeBins - 1
		}
		eb := int(float64(p.EnergyBins) * (math.Log(ph.Energy) - logLo) / (logHi - logLo))
		if eb >= p.EnergyBins {
			eb = p.EnergyBins - 1
		}
		if eb < 0 {
			eb = 0
		}
		grid[eb][tb]++
	}
	if p.ApproxFrac < 1 {
		for _, row := range grid {
			for i := range row {
				row[i] /= p.ApproxFrac
			}
		}
	}
	res.Grid = grid
	res.logf("spectrogram %dx%d bins", p.EnergyBins, p.TimeBins)
}

func runHistogram(p Params, photons []fits.Photon, res *Result) {
	h := make([]float64, p.EnergyBins)
	logLo, logHi := math.Log(p.EMin), math.Log(p.EMax)
	for _, ph := range photons {
		eb := int(float64(p.EnergyBins) * (math.Log(ph.Energy) - logLo) / (logHi - logLo))
		if eb >= p.EnergyBins {
			eb = p.EnergyBins - 1
		}
		if eb < 0 {
			eb = 0
		}
		h[eb]++
	}
	if p.ApproxFrac < 1 {
		for i := range h {
			h[i] /= p.ApproxFrac
		}
	}
	res.Grid = [][]float64{h}
	peak, at := 0.0, 0
	for i, x := range h {
		if x > peak {
			peak, at = x, i
		}
	}
	res.PeakValue = peak
	res.PeakX = math.Exp(logLo + (float64(at)+0.5)*(logHi-logLo)/float64(p.EnergyBins))
	res.logf("histogram %d log-energy bins: peak %.0f at %.1f keV", p.EnergyBins, peak, res.PeakX)
}

// summarize fills the scalar statistics from the grid.
func (r *Result) summarize() {
	first := true
	var n int
	for _, row := range r.Grid {
		for _, x := range row {
			if first {
				r.Min, r.Max = x, x
				first = false
			}
			if x < r.Min {
				r.Min = x
			}
			if x > r.Max {
				r.Max = x
			}
			r.Total += x
			n++
		}
	}
	if n > 0 {
		r.Mean = r.Total / float64(n)
	}
	if r.PeakValue == 0 {
		r.PeakValue = r.Max
	}
}

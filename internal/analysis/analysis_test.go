package analysis

import (
	"bytes"
	"image/gif"
	"math"
	"testing"

	"repro/internal/fits"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

func flareDay(t *testing.T, seed int64) (*telemetry.Day, telemetry.Event) {
	t.Helper()
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: seed, DayLength: 3600, BackgroundRate: 3, Flares: 1, Bursts: 0,
	})
	for _, e := range day.Events {
		if e.Kind == telemetry.Flare {
			return day, e
		}
	}
	t.Fatal("no flare generated")
	return nil, telemetry.Event{}
}

func TestLightcurvePeaksAtFlare(t *testing.T) {
	day, flare := flareDay(t, 101)
	res, err := Run(Params{
		Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 180,
	}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakX < flare.Start-60 || res.PeakX > flare.End()+60 {
		t.Fatalf("lightcurve peak at %.0fs, flare spans %.0f..%.0f", res.PeakX, flare.Start, flare.End())
	}
	if res.NPhotons == 0 || res.Total == 0 {
		t.Fatal("empty lightcurve")
	}
	if len(res.GIF) == 0 {
		t.Fatal("no GIF rendered")
	}
}

func TestImagingRecoversSourcePosition(t *testing.T) {
	day, flare := flareDay(t, 202)
	res, err := Run(Params{
		Type:   schema.AnaImaging,
		TStart: flare.Start, TStop: flare.End(),
		ImageSize: 48, PixelSize: 48, // ±1150 arcsec field, coarse pixels
		CenterX: 0, CenterY: 0,
	}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	// Back-projection should localize the source within ~2 pixels.
	tol := 2 * 48.0
	if math.Abs(res.PeakX-flare.X) > tol || math.Abs(res.PeakY-flare.Y) > tol {
		t.Fatalf("imaging peak (%.0f, %.0f), true source (%.0f, %.0f)",
			res.PeakX, res.PeakY, flare.X, flare.Y)
	}
}

func TestSpectrogramShape(t *testing.T) {
	day, _ := flareDay(t, 303)
	res, err := Run(Params{
		Type: schema.AnaSpectrogram, TStart: 0, TStop: 3600,
		TimeBins: 64, EnergyBins: 16,
	}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 16 || len(res.Grid[0]) != 64 {
		t.Fatalf("grid %dx%d", len(res.Grid), len(res.Grid[0]))
	}
	if res.Total != float64(res.NPhotons) {
		t.Fatalf("total %v != photons %d", res.Total, res.NPhotons)
	}
}

func TestHistogramSoftSpectrum(t *testing.T) {
	day, _ := flareDay(t, 404)
	res, err := Run(Params{
		Type: schema.AnaHistogram, TStart: 0, TStop: 3600, EnergyBins: 24,
	}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	// Power-law spectra put the histogram peak at low energies.
	if res.PeakX > 30 {
		t.Fatalf("histogram peak at %.1f keV, expected soft", res.PeakX)
	}
	h := res.Grid[0]
	if h[0] <= h[len(h)-1] {
		t.Fatal("spectrum should fall with energy")
	}
}

func TestApproximatedLightcurveTracksFull(t *testing.T) {
	day, _ := flareDay(t, 505)
	full, err := Run(Params{Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 90}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := Run(Params{Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 90, ApproxFrac: 0.1}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	if approx.NPhotons >= full.NPhotons/5 {
		t.Fatalf("approx consumed %d photons, full %d: not subsampled", approx.NPhotons, full.NPhotons)
	}
	// Rescaled approximate totals should be within 25% of the full run.
	if math.Abs(approx.Total-full.Total) > 0.25*full.Total {
		t.Fatalf("approx total %v vs full %v", approx.Total, full.Total)
	}
	// Peak location should agree to within a few bins.
	if math.Abs(approx.PeakX-full.PeakX) > 200 {
		t.Fatalf("approx peak %v vs full %v", approx.PeakX, full.PeakX)
	}
}

func TestRunOnViewMatchesRawBinned(t *testing.T) {
	day, _ := flareDay(t, 606)
	v := wavelet.BuildView(day.Photons, 0, 3600, 3, 20000, 64, 16, 1)
	onView, err := RunOnView(Params{
		Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 64, EnergyBins: 16,
	}, v)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Run(Params{
		Type: schema.AnaLightcurve, TStart: 0, TStop: 3600, TimeBins: 64,
	}, day.Photons)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(onView.Total-raw.Total) > 0.02*raw.Total+1 {
		t.Fatalf("view total %v vs raw %v", onView.Total, raw.Total)
	}
	if _, err := RunOnView(Params{Type: schema.AnaImaging, TStart: 0, TStop: 1}, v); err == nil {
		t.Fatal("imaging on view accepted")
	}
}

func TestGIFsAreValid(t *testing.T) {
	day, _ := flareDay(t, 707)
	for _, typ := range []string{schema.AnaImaging, schema.AnaLightcurve, schema.AnaSpectrogram, schema.AnaHistogram} {
		p := Params{Type: typ, TStart: 0, TStop: 600, ImageSize: 16, PixelSize: 64}
		res, err := Run(p, day.Photons)
		if err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		img, err := gif.Decode(bytes.NewReader(res.GIF))
		if err != nil {
			t.Fatalf("%s: invalid GIF: %v", typ, err)
		}
		b := img.Bounds()
		if b.Dx() < 16 || b.Dy() < 16 {
			t.Fatalf("%s: image %dx%d too small", typ, b.Dx(), b.Dy())
		}
	}
}

func TestParamValidation(t *testing.T) {
	if _, err := Run(Params{Type: "nope", TStart: 0, TStop: 1}, nil); err == nil {
		t.Fatal("unknown type accepted")
	}
	if _, err := Run(Params{Type: schema.AnaLightcurve, TStart: 5, TStop: 5}, nil); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := Run(Params{Type: schema.AnaLightcurve, TStart: 0, TStop: 1, EMin: 50, EMax: 10}, nil); err == nil {
		t.Fatal("inverted energy window accepted")
	}
}

func TestEmptyWindowProducesEmptyResult(t *testing.T) {
	res, err := Run(Params{Type: schema.AnaLightcurve, TStart: 100000, TStop: 100100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.NPhotons != 0 || res.Total != 0 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.GIF) == 0 {
		t.Fatal("even empty results render a picture")
	}
}

func TestDetectEventsFindsFlare(t *testing.T) {
	day, flare := flareDay(t, 808)
	dets := DetectEvents(day.Photons, 0, 3600, DetectConfig{})
	found := false
	for _, d := range dets {
		if d.KindHint == "flare" && d.TStart <= flare.Start+60 && d.TStop >= flare.Start {
			found = true
			if d.Significance < 4 {
				t.Fatalf("weak detection: %+v", d)
			}
		}
	}
	if !found {
		t.Fatalf("flare at %.0f..%.0f not detected; detections: %+v", flare.Start, flare.End(), dets)
	}
}

func TestDetectEventsFindsBurst(t *testing.T) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 909, DayLength: 3600, BackgroundRate: 3, Flares: 0, Bursts: 1,
	})
	var burst telemetry.Event
	for _, e := range day.Events {
		if e.Kind == telemetry.GammaRayBurst {
			burst = e
		}
	}
	dets := DetectEvents(day.Photons, 0, 3600, DetectConfig{})
	for _, d := range dets {
		if d.TStart <= burst.Start+30 && d.TStop >= burst.Start {
			if d.KindHint != "gamma-ray-burst" {
				t.Logf("burst classified as %s (heuristic; acceptable)", d.KindHint)
			}
			return
		}
	}
	t.Fatalf("burst at %.0f..%.0f not detected", burst.Start, burst.End())
}

func TestDetectQuietPeriods(t *testing.T) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 111, DayLength: telemetry.SAAPeriod * 2, BackgroundRate: 10,
		Flares: 0, Bursts: 0, IncludeSAA: true,
	})
	dets := DetectEvents(day.Photons, 0, day.Length, DetectConfig{})
	quiet := 0
	for _, d := range dets {
		if d.KindHint == "quiet-period" {
			quiet++
		}
	}
	if quiet < 2 {
		t.Fatalf("found %d quiet periods, want >= 2 (SAA transits)", quiet)
	}
}

func TestDetectNothingOnFlatBackground(t *testing.T) {
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 222, DayLength: 1800, BackgroundRate: 10, Flares: 0, Bursts: 0,
	})
	dets := DetectEvents(day.Photons, 0, 1800, DetectConfig{})
	for _, d := range dets {
		if d.KindHint != "quiet-period" && d.Significance > 6 {
			t.Fatalf("spurious strong detection on flat background: %+v", d)
		}
	}
}

func TestMedianOf(t *testing.T) {
	if medianOf(nil) != 0 {
		t.Fatal("empty median")
	}
	if medianOf([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if medianOf([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
}

func TestFitPowerLawRecoversGeneratorIndex(t *testing.T) {
	// Generate a burst with a known spectral index and recover it.
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 1414, DayLength: 3600, BackgroundRate: 0.001, Flares: 1, Bursts: 0,
	})
	var flare telemetry.Event
	for _, e := range day.Events {
		if e.Kind == telemetry.Flare {
			flare = e
		}
	}
	var photons []fits.Photon
	for _, p := range day.Photons {
		if p.Time >= flare.Start && p.Time <= flare.End() {
			photons = append(photons, p)
		}
	}
	if len(photons) < 500 {
		t.Skipf("only %d photons for this seed", len(photons))
	}
	gamma, n := FitPowerLaw(photons, telemetry.EnergyMin, telemetry.EnergyMax)
	if n < 500 {
		t.Fatalf("fit used %d photons", n)
	}
	if math.Abs(gamma-flare.SpectralIndex) > 0.15 {
		t.Fatalf("fitted gamma %.2f, generator used %.2f", gamma, flare.SpectralIndex)
	}
}

func TestFitPowerLawEdgeCases(t *testing.T) {
	if g, n := FitPowerLaw(nil, 3, 100); g != 0 || n != 0 {
		t.Fatalf("empty fit = %v %d", g, n)
	}
	if g, _ := FitPowerLaw(nil, -1, 100); g != 0 {
		t.Fatal("invalid bounds accepted")
	}
	if g, _ := FitPowerLaw(nil, 100, 10); g != 0 {
		t.Fatal("inverted bounds accepted")
	}
}

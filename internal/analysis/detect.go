package analysis

import (
	"math"

	"repro/internal/fits"
)

// Event detection: when raw data units reach HEDC "they are once more
// searched for interesting events, using programs that detect a wider range
// of events such as solar flares, gamma ray bursts, or quiet periods"
// (§2.2). Detection runs over the count stream, estimates a robust
// background, and flags contiguous excursions; the kind hint is heuristic —
// HEDC stores events, not types (§3.3).

// Detection is one flagged observation interval.
type Detection struct {
	TStart       float64
	TStop        float64
	PeakRate     float64 // photons/s at the brightest bin
	Background   float64 // photons/s baseline
	TotalCounts  int64
	Significance float64 // sigma above background at peak
	MeanEnergy   float64 // keV, for the kind hint
	KindHint     string  // "flare" | "gamma-ray-burst" | "quiet-period"
}

// DetectConfig tunes the detector.
type DetectConfig struct {
	BinSeconds float64 // counting bin (default 10)
	Sigma      float64 // detection threshold in sigma (default 4)
	QuietFrac  float64 // rate below QuietFrac*background flags quiet periods (default 0.3)
}

func (c *DetectConfig) defaults() {
	if c.BinSeconds <= 0 {
		c.BinSeconds = 10
	}
	if c.Sigma <= 0 {
		c.Sigma = 4
	}
	if c.QuietFrac <= 0 {
		c.QuietFrac = 0.3
	}
}

// DetectEvents scans [tstart, tstop) of the photon stream.
func DetectEvents(photons []fits.Photon, tstart, tstop float64, cfg DetectConfig) []Detection {
	cfg.defaults()
	nBins := int(math.Ceil((tstop - tstart) / cfg.BinSeconds))
	if nBins < 1 {
		return nil
	}
	counts := make([]float64, nBins)
	energy := make([]float64, nBins)
	for _, p := range photons {
		if p.Time < tstart || p.Time >= tstop {
			continue
		}
		b := int((p.Time - tstart) / cfg.BinSeconds)
		if b >= nBins {
			b = nBins - 1
		}
		counts[b]++
		energy[b] += p.Energy
	}

	bg := medianOf(counts) // robust against flares inflating the baseline
	sigma := math.Sqrt(bg)
	if sigma == 0 {
		sigma = 1
	}
	threshold := bg + cfg.Sigma*sigma

	var out []Detection
	i := 0
	for i < nBins {
		switch {
		case counts[i] > threshold:
			j := i
			for j < nBins && counts[j] > bg+sigma { // extend to ~1-sigma edges
				j++
			}
			out = append(out, summarizeDetection(counts, energy, i, j, tstart, bg, sigma, cfg, false))
			i = j
		case bg > 1 && counts[i] < cfg.QuietFrac*bg:
			j := i
			for j < nBins && counts[j] < cfg.QuietFrac*bg {
				j++
			}
			// Only long lulls count as quiet periods (SAA transits, pointing
			// gaps); single low bins are Poisson noise.
			if float64(j-i)*cfg.BinSeconds >= 60 {
				out = append(out, summarizeDetection(counts, energy, i, j, tstart, bg, sigma, cfg, true))
			}
			i = j
		default:
			i++
		}
	}
	return out
}

func summarizeDetection(counts, energy []float64, i, j int, tstart, bg, sigma float64, cfg DetectConfig, quiet bool) Detection {
	d := Detection{
		TStart:     tstart + float64(i)*cfg.BinSeconds,
		TStop:      tstart + float64(j)*cfg.BinSeconds,
		Background: bg / cfg.BinSeconds,
	}
	var total, esum float64
	peak := 0.0
	for k := i; k < j; k++ {
		total += counts[k]
		esum += energy[k]
		if counts[k] > peak {
			peak = counts[k]
		}
	}
	d.TotalCounts = int64(total)
	d.PeakRate = peak / cfg.BinSeconds
	d.Significance = (peak - bg) / sigma
	if total > 0 {
		d.MeanEnergy = esum / total
	}
	switch {
	case quiet:
		d.KindHint = "quiet-period"
		d.Significance = (bg - peak) / sigma
	case d.TStop-d.TStart <= 90 && d.MeanEnergy > 100:
		// Short and spectrally hard: likely a non-solar gamma-ray burst.
		d.KindHint = "gamma-ray-burst"
	default:
		d.KindHint = "flare"
	}
	return d
}

// medianOf returns the median of xs (0 for empty input).
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// Insertion-free selection: simple sort is fine at detector bin counts.
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// FitPowerLaw estimates the photon spectral index gamma of dN/dE ~ E^-gamma
// by maximum likelihood over [emin, emax] (the standard astrophysics
// estimator). Spectroscopy is one of HEDC's three standard analyses (§2.2);
// the fitted index is what distinguishes hard non-solar bursts from soft
// thermal flares.
func FitPowerLaw(photons []fits.Photon, emin, emax float64) (gamma float64, n int) {
	if emin <= 0 || emax <= emin {
		return 0, 0
	}
	var sumLog float64
	for _, p := range photons {
		if p.Energy < emin || p.Energy > emax {
			continue
		}
		sumLog += math.Log(p.Energy / emin)
		n++
	}
	if n == 0 || sumLog == 0 {
		return 0, n
	}
	// MLE for a bounded power law reduces to the unbounded form when
	// emax >> emin; solve the unbounded estimator and refine one Newton
	// step for the truncation correction.
	gamma = 1 + float64(n)/sumLog
	r := emax / emin
	for i := 0; i < 20; i++ {
		a := gamma - 1
		// d/dgamma log L with truncation term.
		la := math.Pow(r, -a)
		f := float64(n)/a - sumLog - float64(n)*math.Log(r)*la/(1-la)
		df := -float64(n)/(a*a) - float64(n)*math.Log(r)*math.Log(r)*la/((1-la)*(1-la))
		if df == 0 {
			break
		}
		step := f / df
		gamma -= step
		if math.Abs(step) < 1e-10 {
			break
		}
	}
	return gamma, n
}

package analysis

import (
	"bytes"
	"image"
	"image/color"
	"image/gif"

	"repro/internal/schema"
)

// Rendering turns result grids into the GIFs that the web pages and the
// StreamCorder display — the pictoral content of the basic and extended
// catalogs (§2.2). Heatmaps (imaging, spectrograms) use a heat palette;
// 1-D results (lightcurves, histograms) are drawn as bar plots.

// heatPalette builds a 256-entry black-red-yellow-white ramp.
func heatPalette() color.Palette {
	p := make(color.Palette, 256)
	for i := range p {
		t := float64(i) / 255
		r := clamp8(3 * t)
		g := clamp8(3*t - 1)
		b := clamp8(3*t - 2)
		p[i] = color.RGBA{r, g, b, 255}
	}
	return p
}

func clamp8(t float64) uint8 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 255
	}
	return uint8(t * 255)
}

// render dispatches on the analysis type.
func render(anaType string, grid [][]float64) ([]byte, error) {
	switch anaType {
	case schema.AnaLightcurve, schema.AnaHistogram:
		return renderBars(grid[0])
	default:
		return renderHeatmap(grid)
	}
}

// renderHeatmap draws a 2-D grid scaled up to a readable size.
func renderHeatmap(grid [][]float64) ([]byte, error) {
	h := len(grid)
	w := 0
	if h > 0 {
		w = len(grid[0])
	}
	if w == 0 || h == 0 {
		grid = [][]float64{{0}}
		w, h = 1, 1
	}
	scale := 1
	for (w*scale < 128 || h*scale < 128) && scale < 64 {
		scale++
	}
	maxV := 0.0
	for _, row := range grid {
		for _, x := range row {
			if x > maxV {
				maxV = x
			}
		}
	}
	img := image.NewPaletted(image.Rect(0, 0, w*scale, h*scale), heatPalette())
	for y := 0; y < h*scale; y++ {
		srcRow := grid[h-1-y/scale] // flip: row 0 at the bottom
		for x := 0; x < w*scale; x++ {
			v := srcRow[x/scale]
			idx := 0
			if maxV > 0 {
				idx = int(v / maxV * 255)
				if idx > 255 {
					idx = 255
				}
			}
			img.SetColorIndex(x, y, uint8(idx))
		}
	}
	return encodeGIF(img)
}

// RenderSeries draws an arbitrary 1-D series as a bar-plot GIF. It is the
// renderer user-submitted routines get for free when they return a series
// without their own picture.
func RenderSeries(series []float64) ([]byte, error) { return renderBars(series) }

// renderBars draws a 1-D series as a bar plot with a baseline.
func renderBars(series []float64) ([]byte, error) {
	n := len(series)
	if n == 0 {
		series = []float64{0}
		n = 1
	}
	const height = 128
	barW := 1
	for n*barW < 256 && barW < 16 {
		barW++
	}
	w := n * barW
	maxV := 0.0
	for _, x := range series {
		if x > maxV {
			maxV = x
		}
	}
	pal := color.Palette{
		color.RGBA{255, 255, 255, 255}, // background
		color.RGBA{20, 40, 160, 255},   // bars
		color.RGBA{0, 0, 0, 255},       // baseline
	}
	img := image.NewPaletted(image.Rect(0, 0, w, height), pal)
	for i, x := range series {
		barH := 0
		if maxV > 0 {
			barH = int(x / maxV * (height - 8))
		}
		for dx := 0; dx < barW; dx++ {
			for dy := 0; dy < barH; dy++ {
				img.SetColorIndex(i*barW+dx, height-2-dy, 1)
			}
		}
	}
	for x := 0; x < w; x++ {
		img.SetColorIndex(x, height-1, 2)
	}
	return encodeGIF(img)
}

func encodeGIF(img *image.Paletted) ([]byte, error) {
	var buf bytes.Buffer
	if err := gif.Encode(&buf, img, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Package archive implements HEDC's file store: the actual data (raw units
// and derived products, mostly images) lives in file archives while only
// meta data lives in the DBMS (§4.1). "All file data is read only" — an
// archive enforces write-once semantics, keeps per-file CRC32 checksums in
// a manifest, tracks capacity, and models the three storage tiers the paper
// deploys: local disk (RAID), NFS-linked remote archives, and a tape
// archive for data not needed on-line (§2.3).
package archive

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/lake"
	"repro/internal/minidb"
)

// VFS is the filesystem seam under an archive — the same interface the
// database engine defines (minidb.VFS), so one fault-injecting
// implementation (internal/fault) can torture both tiers in a single
// scripted workload. Production archives use minidb.OSFS.
type VFS = minidb.VFS

// opener is the optional streaming extension: a VFS that can hand out a
// reader without materializing the whole file (the OS filesystem and
// internal/fault both can't/can respectively; archives fall back to
// ReadFile when the VFS lacks it).
type opener interface {
	Open(path string) (io.ReadCloser, error)
}

// Kind classifies the storage tier backing an archive.
type Kind int

// Archive kinds. Tape archives serve reads with a seek penalty; NFS adds a
// small per-operation latency. Both are simulated with real sleeps scaled
// down far below 2003 hardware, just enough for ablation benchmarks to rank
// the tiers.
const (
	Disk Kind = iota
	NFS
	Tape
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Disk:
		return "disk"
	case NFS:
		return "nfs"
	case Tape:
		return "tape"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// latency returns the simulated per-read penalty of the tier.
func (k Kind) latency() time.Duration {
	switch k {
	case NFS:
		return 200 * time.Microsecond
	case Tape:
		return 5 * time.Millisecond
	}
	return 0
}

// Errors reported by archives.
var (
	ErrOffline  = errors.New("archive: archive is offline")
	ErrExists   = errors.New("archive: file already exists (file data is read only)")
	ErrNotFound = errors.New("archive: file not found")
	ErrFull     = errors.New("archive: capacity exhausted")
	ErrCorrupt  = errors.New("archive: checksum mismatch")
)

type fileMeta struct {
	size int64
	crc  uint32
	pack string // container file (archive-relative) holding the bytes; "" = own file
	off  int64  // byte offset within pack
}

// Archive is one storage unit rooted at a directory.
type Archive struct {
	id   string
	kind Kind
	root string
	fsys VFS

	mu       sync.RWMutex
	online   bool
	capacity int64 // bytes; 0 = unlimited
	used     int64
	files    map[string]fileMeta
	pending  map[string]bool // paths reserved by an in-flight StoreBatch
	packSeq  int64           // next container-file sequence number

	// lk, when non-nil, puts the archive in lake mode: the commit journal
	// (not MANIFEST.crc) is the source of truth and every data method
	// delegates to it. See lakemode.go.
	lk *lake.Lake
}

const manifestName = "MANIFEST.crc"

// New opens (or creates) an archive rooted at dir. capacityBytes of 0 means
// unlimited. An existing manifest is loaded, so archives survive restarts.
func New(id string, kind Kind, dir string, capacityBytes int64) (*Archive, error) {
	return NewVFS(minidb.OSFS, id, kind, dir, capacityBytes)
}

// NewVFS is New with an explicit filesystem; crash-recovery tests pass a
// fault-injecting one so every store/remove I/O becomes a crash site.
func NewVFS(fsys VFS, id string, kind Kind, dir string, capacityBytes int64) (*Archive, error) {
	if id == "" {
		return nil, fmt.Errorf("archive: empty id")
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	a := &Archive{
		id: id, kind: kind, root: dir, fsys: fsys, online: true,
		capacity: capacityBytes, files: make(map[string]fileMeta),
		pending: make(map[string]bool),
	}
	if err := a.loadManifest(); err != nil {
		return nil, err
	}
	return a, nil
}

// ID returns the archive identifier referenced by the location tables.
func (a *Archive) ID() string { return a.id }

// Kind returns the storage tier.
func (a *Archive) Kind() Kind { return a.kind }

// Root returns the archive's directory.
func (a *Archive) Root() string { return a.root }

// SetOnline flips the archive's availability; offline archives reject all
// data operations (a disk being repaired or a tape dismounted, §4.3).
func (a *Archive) SetOnline(v bool) {
	a.mu.Lock()
	a.online = v
	a.mu.Unlock()
}

// Online reports availability.
func (a *Archive) Online() bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.online
}

// Used returns bytes stored; CapacityLeft returns remaining bytes
// (MaxInt64 when unlimited).
func (a *Archive) Used() int64 {
	if a.lk != nil {
		return a.lk.LiveBytes()
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.used
}

// CapacityLeft returns the remaining capacity in bytes.
func (a *Archive) CapacityLeft() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.capacity == 0 {
		return 1<<63 - 1
	}
	if a.lk != nil {
		// Lake mode: physical bytes (history included) occupy the tier
		// until GC retires them.
		return a.capacity - a.lk.PhysBytes()
	}
	return a.capacity - a.used
}

// Len returns the number of stored files.
func (a *Archive) Len() int {
	if a.lk != nil {
		return a.lk.Len()
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.files)
}

// cleanRel validates a relative path (no escapes, no absolutes).
func cleanRel(rel string) (string, error) {
	if rel == "" || strings.HasPrefix(rel, "/") {
		return "", fmt.Errorf("archive: invalid path %q", rel)
	}
	c := filepath.Clean(rel)
	if c == "." || strings.HasPrefix(c, "..") {
		return "", fmt.Errorf("archive: path %q escapes archive", rel)
	}
	return c, nil
}

// Store writes a new file. Overwrites are rejected: file data is read only.
func (a *Archive) Store(rel string, data []byte) error {
	if a.lk != nil {
		return a.lakeStoreBatch([]BatchFile{{Rel: rel, Data: data}})
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.online {
		return ErrOffline
	}
	if _, exists := a.files[rel]; exists {
		return fmt.Errorf("%w: %s", ErrExists, rel)
	}
	if a.pending[rel] {
		return fmt.Errorf("%w: %s (store in flight)", ErrExists, rel)
	}
	if a.capacity > 0 && a.used+int64(len(data)) > a.capacity {
		return fmt.Errorf("%w: %s needs %d bytes, %d left", ErrFull, rel, len(data), a.capacity-a.used)
	}
	abs := filepath.Join(a.root, rel)
	if err := a.fsys.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return err
	}
	// Durability order: data file written AND fsynced before its manifest
	// line is appended (and itself fsynced). A manifest entry therefore
	// always points at durable bytes; a crash between the two leaves only
	// an orphaned data file, never an acknowledged-but-lost store.
	if err := a.writeFileSync(abs, data, 0o444); err != nil {
		return err
	}
	meta := fileMeta{size: int64(len(data)), crc: crc32.ChecksumIEEE(data)}
	if err := a.appendManifest(rel, meta); err != nil {
		// The store is not acknowledged: drop the data file so the
		// in-memory state, the manifest and the directory stay aligned.
		_ = a.fsys.Remove(abs)
		return err
	}
	a.files[rel] = meta
	a.used += meta.size
	return nil
}

// BatchFile is one file of a StoreBatch. Day is the mission-day partition
// key used by lake-mode archives to time-sort compacted containers;
// manifest-mode archives ignore it.
type BatchFile struct {
	Rel  string
	Day  int64
	Data []byte
}

// StoreBatch stores several new files as ONE container ("pack") file plus
// ONE manifest append — two fsyncs for the whole group instead of two per
// file. This is the bulk form the ingest pipeline uses: a raw unit and its
// wavelet views arrive together, and storing each as its own file pays the
// small-file penalty (per-file create, fsync, journal commit) five times
// over. Mass-storage systems solve this by aggregating small members into
// containers; the manifest records each member as rel→(pack, offset, size,
// crc), so readers address members exactly as if they were plain files.
//
// The durability order of Store is preserved: the pack's bytes are written
// AND fsynced before any manifest line referencing them, so a crash
// mid-batch leaves at most an orphaned container. The batch is
// all-or-nothing: on any failure the container is removed and the manifest
// keeps its prior tail.
//
// Unlike Store, the container write and fsync happen OUTSIDE the archive
// lock: the batch's paths are reserved first (so concurrent stores conflict
// deterministically), then written, then registered under the lock together
// with the manifest append. Concurrent StoreBatch callers therefore overlap
// their data fsyncs and serialize only on the shared manifest.
func (a *Archive) StoreBatch(files []BatchFile) error {
	if len(files) == 0 {
		return nil
	}
	if a.lk != nil {
		return a.lakeStoreBatch(files)
	}
	// Phase 1 (locked): validate, reserve the paths and the capacity.
	rels := make([]string, len(files))
	var total int64
	a.mu.Lock()
	if !a.online {
		a.mu.Unlock()
		return ErrOffline
	}
	for i, f := range files {
		rel, err := cleanRel(f.Rel)
		if err != nil {
			a.mu.Unlock()
			return err
		}
		if _, exists := a.files[rel]; exists {
			a.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrExists, rel)
		}
		if a.pending[rel] {
			a.mu.Unlock()
			return fmt.Errorf("%w: %s (store in flight)", ErrExists, rel)
		}
		for j := 0; j < i; j++ {
			if rels[j] == rel {
				a.mu.Unlock()
				return fmt.Errorf("%w: %s duplicated in batch", ErrExists, rel)
			}
		}
		rels[i] = rel
		total += int64(len(f.Data))
	}
	if a.capacity > 0 && a.used+total > a.capacity {
		left := a.capacity - a.used
		a.mu.Unlock()
		return fmt.Errorf("%w: batch needs %d bytes, %d left", ErrFull, total, left)
	}
	for _, rel := range rels {
		a.pending[rel] = true
	}
	a.used += total // reserved; released again if the batch fails
	packRel := fmt.Sprintf("packs/p%08d.pack", a.packSeq)
	a.packSeq++
	a.mu.Unlock()

	undo := func(packWritten bool) {
		if packWritten {
			_ = a.fsys.Remove(filepath.Join(a.root, packRel))
		}
		a.mu.Lock()
		for _, rel := range rels {
			delete(a.pending, rel)
		}
		a.used -= total
		a.mu.Unlock()
	}

	// Phase 2 (unlocked): concatenate the members and write the container
	// with one fsync. Safe without the lock — the reservation guarantees
	// nobody else touches these paths, and the sequence number guarantees
	// the container name is fresh (a crash-orphaned container of the same
	// name is unreferenced and safe to overwrite).
	metas := make([]fileMeta, len(files))
	blob := make([]byte, 0, total)
	for i, f := range files {
		metas[i] = fileMeta{
			size: int64(len(f.Data)), crc: crc32.ChecksumIEEE(f.Data),
			pack: packRel, off: int64(len(blob)),
		}
		blob = append(blob, f.Data...)
	}
	abs := filepath.Join(a.root, packRel)
	if err := a.fsys.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		undo(false)
		return err
	}
	if err := a.writeFileSync(abs, blob, 0o444); err != nil {
		undo(true)
		return err
	}

	// Phase 3 (locked): seal the batch in the manifest and register it.
	a.mu.Lock()
	if err := a.appendManifestBatch(rels, metas); err != nil {
		a.mu.Unlock()
		undo(true)
		return err
	}
	for i := range rels {
		a.files[rels[i]] = metas[i]
		delete(a.pending, rels[i])
	}
	a.mu.Unlock()
	return nil
}

// appendManifestBatch appends one line per file and fsyncs once. A failed
// append truncates back to the prior tail, as in appendManifest.
func (a *Archive) appendManifestBatch(rels []string, metas []fileMeta) error {
	f, err := a.fsys.OpenAppend(a.manifestPath(), 0o644)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	for i := range rels {
		if _, err = fmt.Fprintf(f, "%s\t%d\t%d\t%s\t%d\n",
			rels[i], metas[i].size, metas[i].crc, metas[i].pack, metas[i].off); err != nil {
			break
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		_ = f.Truncate(size)
		f.Close()
		return err
	}
	return f.Close()
}

// writeFileSync creates abs with data and forces it to stable storage.
// Data files are created read-only (0444), so a crash-orphaned file of a
// reused name is unlinked first — Create alone would fail with EACCES on
// the 0444 leftover for non-root users, wedging the recovery paths that
// rely on overwriting orphans.
func (a *Archive) writeFileSync(abs string, data []byte, perm fs.FileMode) error {
	if err := a.fsys.Remove(abs); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	f, err := a.fsys.Create(abs, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read returns the file's contents after verifying its checksum. Tape and
// NFS tiers incur their access latency here.
func (a *Archive) Read(rel string) ([]byte, error) {
	if a.lk != nil {
		return a.lakeRead(rel)
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return nil, err
	}
	a.mu.RLock()
	online := a.online
	meta, exists := a.files[rel]
	a.mu.RUnlock()
	if !online {
		return nil, ErrOffline
	}
	if !exists {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rel)
	}
	if d := a.kind.latency(); d > 0 {
		time.Sleep(d)
	}
	data, err := a.readMember(rel, meta)
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(data) != meta.crc {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, rel)
	}
	return data, nil
}

// readMember fetches a file's raw bytes: its own file for plain entries,
// the right slice of the container for pack members.
func (a *Archive) readMember(rel string, meta fileMeta) ([]byte, error) {
	if meta.pack == "" {
		return a.fsys.ReadFile(filepath.Join(a.root, rel))
	}
	blob, err := a.fsys.ReadFile(filepath.Join(a.root, meta.pack))
	if err != nil {
		return nil, err
	}
	if meta.off < 0 || meta.off+meta.size > int64(len(blob)) {
		return nil, fmt.Errorf("%w: %s (container %s truncated)", ErrCorrupt, rel, meta.pack)
	}
	return blob[meta.off : meta.off+meta.size], nil
}

// Open returns a reader over the file without checksum verification (used
// for streaming large units). Prefer Read when integrity matters.
func (a *Archive) Open(rel string) (io.ReadCloser, error) {
	if a.lk != nil {
		return a.lakeOpen(rel)
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return nil, err
	}
	a.mu.RLock()
	online := a.online
	meta, exists := a.files[rel]
	a.mu.RUnlock()
	if !online {
		return nil, ErrOffline
	}
	if !exists {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, rel)
	}
	if d := a.kind.latency(); d > 0 {
		time.Sleep(d)
	}
	if meta.pack == "" {
		abs := filepath.Join(a.root, rel)
		if o, ok := a.fsys.(opener); ok {
			return o.Open(abs)
		}
	}
	data, err := a.readMember(rel, meta)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// Stat returns the size of a stored file.
func (a *Archive) Stat(rel string) (int64, error) {
	if a.lk != nil {
		n, err := a.lk.Stat(rel)
		return n, mapLakeErr(err)
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return 0, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	meta, exists := a.files[rel]
	if !exists {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, rel)
	}
	return meta.size, nil
}

// Exists reports whether the file is stored here.
func (a *Archive) Exists(rel string) bool {
	if a.lk != nil {
		return a.lk.Exists(rel)
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return false
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.files[rel]
	return ok
}

// Remove deletes a file. Only system processes (archive relocation,
// purging, §5.2) call this; it is not exposed to users.
func (a *Archive) Remove(rel string) error {
	if a.lk != nil {
		return a.lakeRemove(rel)
	}
	rel, err := cleanRel(rel)
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.online {
		return ErrOffline
	}
	meta, exists := a.files[rel]
	if !exists {
		return fmt.Errorf("%w: %s", ErrNotFound, rel)
	}
	// Crash-safe order: publish the shrunken manifest first (atomic tmp +
	// rename), then delete the data file. A crash in between leaves an
	// orphaned unreferenced file — never a manifest entry whose bytes are
	// gone.
	delete(a.files, rel)
	a.used -= meta.size
	if err := a.rewriteManifest(); err != nil {
		a.files[rel] = meta // manifest unchanged on disk; restore state
		a.used += meta.size
		return err
	}
	if meta.pack != "" {
		// A pack member owns no file of its own. The container is deleted
		// only when its last member goes; until then its bytes stay (the
		// space is reclaimed at the end, like a tape aggregate).
		for _, m := range a.files {
			if m.pack == meta.pack {
				return nil
			}
		}
		if err := a.fsys.Remove(filepath.Join(a.root, meta.pack)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
		return nil
	}
	if err := a.fsys.Remove(filepath.Join(a.root, rel)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// List returns stored paths in sorted order.
func (a *Archive) List() []string {
	if a.lk != nil {
		return a.lk.List()
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.files))
	for p := range a.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Verify re-reads every file and checks it against the manifest, returning
// the paths that fail.
func (a *Archive) Verify() []string {
	if a.lk != nil {
		return a.lk.Verify()
	}
	var bad []string
	for _, p := range a.List() {
		if _, err := a.Read(p); err != nil {
			bad = append(bad, p)
		}
	}
	return bad
}

// Manifest persistence: "path<TAB>size<TAB>crc" lines, appended (and
// fsynced) on store, atomically rewritten on remove. The manifest is the
// archive's source of truth across restarts, so it gets the same durability
// discipline as the database redo log.

func (a *Archive) manifestPath() string { return filepath.Join(a.root, manifestName) }

func (a *Archive) appendManifest(rel string, meta fileMeta) error {
	f, err := a.fsys.OpenAppend(a.manifestPath(), 0o644)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	if _, err = fmt.Fprintf(f, "%s\t%d\t%d\n", rel, meta.size, meta.crc); err == nil {
		// Fsync before acknowledging: without this, a crash after Store
		// returned could silently lose the file's registration.
		err = f.Sync()
	}
	if err != nil {
		// Keep a clean tail: a half-appended line must not sit in front of
		// lines a later Store would add.
		_ = f.Truncate(size)
		f.Close()
		return err
	}
	return f.Close()
}

func (a *Archive) rewriteManifest() error {
	var sb strings.Builder
	paths := make([]string, 0, len(a.files))
	for p := range a.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		m := a.files[p]
		if m.pack != "" {
			fmt.Fprintf(&sb, "%s\t%d\t%d\t%s\t%d\n", p, m.size, m.crc, m.pack, m.off)
		} else {
			fmt.Fprintf(&sb, "%s\t%d\t%d\n", p, m.size, m.crc)
		}
	}
	// Atomic replace: write aside, fsync, rename over the old manifest. A
	// crash at any point leaves either the old or the new manifest, never
	// a half-rewritten one.
	tmp := a.manifestPath() + ".tmp"
	if err := a.writeFileSync(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return a.fsys.Rename(tmp, a.manifestPath())
}

func (a *Archive) loadManifest() error {
	data, err := a.fsys.ReadFile(a.manifestPath())
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		if line == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		bad := ""
		// 3 fields: a plain file. 5 fields: a pack member — rel, size, crc,
		// container path, offset within the container.
		if len(parts) != 3 && len(parts) != 5 {
			bad = "shape"
		}
		var size, off int64
		var crc uint64
		pack := ""
		if bad == "" {
			if size, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
				bad = "size"
			}
		}
		if bad == "" {
			if crc, err = strconv.ParseUint(parts[2], 10, 32); err != nil {
				bad = "crc"
			}
		}
		if bad == "" && len(parts) == 5 {
			pack = parts[3]
			if off, err = strconv.ParseInt(parts[4], 10, 64); err != nil {
				bad = "offset"
			}
		}
		if bad != "" {
			// A malformed FINAL line with no newline terminator is the torn
			// tail of an append interrupted by a crash — the store it
			// belonged to was never acknowledged, so drop it. Malformed
			// lines anywhere else (or a terminated bad line) are real
			// corruption and must not be silently skipped.
			if i == len(lines)-1 {
				return nil
			}
			return fmt.Errorf("archive: malformed manifest %s in line %q", bad, line)
		}
		a.files[parts[0]] = fileMeta{size: size, crc: uint32(crc), pack: pack, off: off}
		a.used += size
		// Keep the container sequence ahead of every referenced container
		// so fresh batches never collide with live pack files.
		if n := packSeqOf(pack); n >= a.packSeq {
			a.packSeq = n + 1
		}
	}
	return nil
}

// packSeqOf extracts the sequence number from a "packs/p%08d.pack" path,
// returning -1 for plain files or foreign names.
func packSeqOf(pack string) int64 {
	if !strings.HasPrefix(pack, "packs/p") || !strings.HasSuffix(pack, ".pack") {
		return -1
	}
	n, err := strconv.ParseInt(pack[len("packs/p"):len(pack)-len(".pack")], 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// Copy moves one file's contents from src to dst (both ends verified).
// The source is left untouched; deletion is the relocation process's
// decision, taken only after the copy verifies (§5.2's compensation-aware
// relocation workflow).
func Copy(src, dst *Archive, rel string) error {
	data, err := src.Read(rel)
	if err != nil {
		return err
	}
	if err := dst.Store(rel, data); err != nil {
		return err
	}
	if _, err := dst.Read(rel); err != nil {
		return fmt.Errorf("archive: copy verification failed: %w", err)
	}
	return nil
}

// Set is a registry of archives keyed by id — the in-memory mirror of the
// operational section's archive-status table.
type Set struct {
	mu       sync.RWMutex
	archives map[string]*Archive
}

// NewSet returns an empty registry.
func NewSet() *Set { return &Set{archives: make(map[string]*Archive)} }

// Add registers an archive; duplicate ids are rejected.
func (s *Set) Add(a *Archive) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.archives[a.ID()]; dup {
		return fmt.Errorf("archive: duplicate archive id %s", a.ID())
	}
	s.archives[a.ID()] = a
	return nil
}

// Get returns the archive with the given id, or nil.
func (s *Set) Get(id string) *Archive {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.archives[id]
}

// IDs returns registered archive ids in sorted order.
func (s *Set) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.archives))
	for id := range s.archives {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

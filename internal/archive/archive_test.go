package archive

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func newTestArchive(t *testing.T, kind Kind, capacity int64) *Archive {
	t.Helper()
	a, err := New("ar1", kind, t.TempDir(), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestStoreReadRoundTrip(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	data := []byte("raw unit payload")
	if err := a.Store("raw/hsi_0001_000.fits.gz", data); err != nil {
		t.Fatal(err)
	}
	got, err := a.Read("raw/hsi_0001_000.fits.gz")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("read %q", got)
	}
	if a.Used() != int64(len(data)) || a.Len() != 1 {
		t.Fatalf("used=%d len=%d", a.Used(), a.Len())
	}
}

func TestWriteOnceEnforced(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	if err := a.Store("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	err := a.Store("f", []byte("v2"))
	if !errors.Is(err, ErrExists) {
		t.Fatalf("overwrite err = %v, want ErrExists", err)
	}
	got, _ := a.Read("f")
	if string(got) != "v1" {
		t.Fatal("original content lost")
	}
}

func TestCapacityEnforced(t *testing.T) {
	a := newTestArchive(t, Disk, 10)
	if err := a.Store("small", []byte("12345")); err != nil {
		t.Fatal(err)
	}
	err := a.Store("big", []byte("1234567890"))
	if !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if a.CapacityLeft() != 5 {
		t.Fatalf("capacity left = %d", a.CapacityLeft())
	}
}

func TestOfflineRejectsOperations(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	a.Store("f", []byte("x"))
	a.SetOnline(false)
	if _, err := a.Read("f"); !errors.Is(err, ErrOffline) {
		t.Fatalf("read err = %v", err)
	}
	if err := a.Store("g", []byte("y")); !errors.Is(err, ErrOffline) {
		t.Fatalf("store err = %v", err)
	}
	if err := a.Remove("f"); !errors.Is(err, ErrOffline) {
		t.Fatalf("remove err = %v", err)
	}
	a.SetOnline(true)
	if _, err := a.Read("f"); err != nil {
		t.Fatalf("read after re-online: %v", err)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	for _, p := range []string{"../escape", "/abs/path", "", "a/../../b", "."} {
		if err := a.Store(p, []byte("x")); err == nil {
			t.Fatalf("path %q accepted", p)
		}
	}
}

func TestReadMissing(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	if _, err := a.Read("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := a.Stat("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stat err = %v", err)
	}
	if a.Exists("nope") {
		t.Fatal("missing file exists")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	a, err := New("ar1", Disk, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Store("f", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file behind the archive's back.
	abs := filepath.Join(dir, "f")
	if err := os.Chmod(abs, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(abs, []byte("tampered!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read("f"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("read err = %v, want ErrCorrupt", err)
	}
	bad := a.Verify()
	if len(bad) != 1 || bad[0] != "f" {
		t.Fatalf("verify = %v", bad)
	}
}

func TestManifestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	a, _ := New("ar1", Disk, dir, 0)
	a.Store("x/one", []byte("1"))
	a.Store("x/two", []byte("22"))

	b, err := New("ar1", Disk, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Used() != 3 {
		t.Fatalf("reopened len=%d used=%d", b.Len(), b.Used())
	}
	got, err := b.Read("x/two")
	if err != nil || string(got) != "22" {
		t.Fatalf("read after reopen: %q %v", got, err)
	}
}

func TestRemoveUpdatesStateAndManifest(t *testing.T) {
	dir := t.TempDir()
	a, _ := New("ar1", Disk, dir, 0)
	a.Store("f", []byte("xyz"))
	if err := a.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if a.Exists("f") || a.Used() != 0 {
		t.Fatal("remove did not update state")
	}
	b, _ := New("ar1", Disk, dir, 0)
	if b.Exists("f") {
		t.Fatal("removed file resurrected from manifest")
	}
	if err := a.Remove("f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestList(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	a.Store("b", []byte("1"))
	a.Store("a", []byte("1"))
	a.Store("c/d", []byte("1"))
	got := a.List()
	want := []string{"a", "b", "c/d"}
	if len(got) != 3 {
		t.Fatalf("list = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list = %v, want %v", got, want)
		}
	}
}

func TestCopyBetweenArchives(t *testing.T) {
	src := newTestArchive(t, Disk, 0)
	dst, _ := New("tape1", Tape, t.TempDir(), 0)
	src.Store("unit/f1", []byte("payload"))
	if err := Copy(src, dst, "unit/f1"); err != nil {
		t.Fatal(err)
	}
	got, err := dst.Read("unit/f1")
	if err != nil || string(got) != "payload" {
		t.Fatalf("dst read: %q %v", got, err)
	}
	// Source is untouched.
	if !src.Exists("unit/f1") {
		t.Fatal("copy removed the source")
	}
	// Copy to an archive that already holds the path fails cleanly.
	if err := Copy(src, dst, "unit/f1"); err == nil {
		t.Fatal("duplicate copy accepted")
	}
}

func TestOpenStreams(t *testing.T) {
	a := newTestArchive(t, NFS, 0)
	a.Store("f", []byte("stream me"))
	rc, err := a.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	buf := make([]byte, 6)
	if _, err := rc.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "stream" {
		t.Fatalf("streamed %q", buf)
	}
}

func TestSetRegistry(t *testing.T) {
	s := NewSet()
	a1, _ := New("disk1", Disk, t.TempDir(), 0)
	a2, _ := New("tape1", Tape, t.TempDir(), 0)
	if err := s.Add(a1); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(a2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(a1); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if s.Get("disk1") != a1 || s.Get("nope") != nil {
		t.Fatal("get wrong")
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "disk1" || ids[1] != "tape1" {
		t.Fatalf("ids = %v", ids)
	}
}

func TestKindStringAndLatency(t *testing.T) {
	if Disk.String() != "disk" || NFS.String() != "nfs" || Tape.String() != "tape" {
		t.Fatal("kind names wrong")
	}
	if Disk.latency() != 0 || Tape.latency() <= NFS.latency() {
		t.Fatal("latency ordering wrong")
	}
}

package archive

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

func batchOf(kv ...string) []BatchFile {
	var out []BatchFile
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, BatchFile{Rel: kv[i], Data: []byte(kv[i+1])})
	}
	return out
}

func TestStoreBatchRoundTrip(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	files := batchOf("fits.gz/u1.fits.gz", "raw-unit-bytes", "wavelet/v0.wav", "view-zero", "wavelet/v1.wav", "view-one")
	if err := a.StoreBatch(files); err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, f := range files {
		want += int64(len(f.Data))
		got, err := a.Read(f.Rel)
		if err != nil {
			t.Fatalf("read %s: %v", f.Rel, err)
		}
		if string(got) != string(f.Data) {
			t.Fatalf("read %s: %q", f.Rel, got)
		}
		if !a.Exists(f.Rel) {
			t.Fatalf("missing %s", f.Rel)
		}
		n, err := a.Stat(f.Rel)
		if err != nil || n != int64(len(f.Data)) {
			t.Fatalf("stat %s: %d %v", f.Rel, n, err)
		}
	}
	if a.Used() != want || a.Len() != len(files) {
		t.Fatalf("used=%d len=%d", a.Used(), a.Len())
	}
	// Open streams the member too.
	rc, err := a.Open("wavelet/v1.wav")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(rc)
	rc.Close()
	if string(b) != "view-one" {
		t.Fatalf("open: %q", b)
	}
}

func TestStoreBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	a, err := New("ar1", Disk, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.StoreBatch(batchOf("a/one", "1111", "b/two", "22")); err != nil {
		t.Fatal(err)
	}
	// A plain store after the batch must coexist in the same manifest.
	if err := a.Store("c/three", []byte("333")); err != nil {
		t.Fatal(err)
	}
	b, err := New("ar1", Disk, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rel, want := range map[string]string{"a/one": "1111", "b/two": "22", "c/three": "333"} {
		got, err := b.Read(rel)
		if err != nil || string(got) != want {
			t.Fatalf("reopen read %s: %q %v", rel, got, err)
		}
	}
	if b.Used() != a.Used() {
		t.Fatalf("used drift: %d != %d", b.Used(), a.Used())
	}
	// And a fresh batch on the reopened archive must not collide with the
	// existing container file.
	if err := b.StoreBatch(batchOf("d/four", "4444")); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Read("a/one"); string(got) != "1111" {
		t.Fatalf("old member clobbered: %q", got)
	}
}

func TestStoreBatchConflicts(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	if err := a.Store("x", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if err := a.StoreBatch(batchOf("y", "1", "x", "2")); !errors.Is(err, ErrExists) {
		t.Fatalf("existing member: %v", err)
	}
	if a.Exists("y") {
		t.Fatal("failed batch left a member registered")
	}
	if err := a.StoreBatch(batchOf("y", "1", "y", "2")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate in batch: %v", err)
	}
	if err := a.StoreBatch(batchOf("../escape", "1")); err == nil {
		t.Fatal("path escape accepted")
	}
	a.SetOnline(false)
	if err := a.StoreBatch(batchOf("z", "1")); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline: %v", err)
	}
}

func TestStoreBatchCapacity(t *testing.T) {
	a := newTestArchive(t, Disk, 10)
	if err := a.StoreBatch(batchOf("a", "123456", "b", "7890x")); !errors.Is(err, ErrFull) {
		t.Fatalf("over capacity: %v", err)
	}
	if a.Used() != 0 {
		t.Fatalf("failed batch kept reservation: %d", a.Used())
	}
	if err := a.StoreBatch(batchOf("a", "12345", "b", "67890")); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 10 {
		t.Fatalf("used=%d", a.Used())
	}
}

func TestStoreBatchRemoveMembers(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	if err := a.StoreBatch(batchOf("m/a", "aa", "m/b", "bbb")); err != nil {
		t.Fatal(err)
	}
	if err := a.Remove("m/a"); err != nil {
		t.Fatal(err)
	}
	if a.Exists("m/a") {
		t.Fatal("removed member still listed")
	}
	// The surviving member still reads while the container is shared.
	if got, err := a.Read("m/b"); err != nil || string(got) != "bbb" {
		t.Fatalf("survivor: %q %v", got, err)
	}
	if err := a.Remove("m/b"); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 0 || a.Used() != 0 {
		t.Fatalf("len=%d used=%d", a.Len(), a.Used())
	}
	// Container gone: re-storing the same member names must work.
	if err := a.StoreBatch(batchOf("m/a", "again")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Read("m/a"); string(got) != "again" {
		t.Fatalf("re-store: %q", got)
	}
}

func TestStoreBatchConcurrent(t *testing.T) {
	a := newTestArchive(t, Disk, 0)
	const workers, batches = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				files := batchOf(
					fmt.Sprintf("u/%d-%d/raw", w, b), strings.Repeat("r", 10+w),
					fmt.Sprintf("u/%d-%d/view", w, b), strings.Repeat("v", 5+b),
				)
				if err := a.StoreBatch(files); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if a.Len() != workers*batches*2 {
		t.Fatalf("len=%d", a.Len())
	}
	if bad := a.Verify(); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}
}

package archive_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/archive"
	"repro/internal/fault"
)

// newFaultArchive opens an archive over a fault filesystem.
func newFaultArchive(t *testing.T, fs *fault.FS) *archive.Archive {
	t.Helper()
	a, err := archive.NewVFS(fs, "t0", archive.Disk, "arch", 0)
	if err != nil {
		t.Fatalf("open archive: %v", err)
	}
	return a
}

// TestAcknowledgedStoreSurvivesCrash is the regression for the unsynced
// manifest append: once Store returns, a power cut that drops every
// unsynced byte must not lose the file or its manifest entry.
func TestAcknowledgedStoreSurvivesCrash(t *testing.T) {
	fs := fault.NewFS()
	a := newFaultArchive(t, fs)
	data := []byte("acknowledged payload")
	if err := a.Store("gif/item.gif", data); err != nil {
		t.Fatalf("store: %v", err)
	}
	// Crash at the very next operation: nothing unsynced survives.
	fs.SetFault(fs.OpCount()+1, fault.ModeCrash)
	_ = a.Store("gif/other.gif", []byte("in flight"))
	if !fs.Crashed() {
		t.Fatal("second store did not hit the injected crash")
	}
	fs.Recover()

	a2 := newFaultArchive(t, fs)
	got, err := a2.Read("gif/item.gif")
	if err != nil {
		t.Fatalf("acknowledged store lost after crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("acknowledged store corrupted after crash: %q", got)
	}
	if _, err := a2.Read("gif/other.gif"); !errors.Is(err, archive.ErrNotFound) {
		t.Fatalf("un-acknowledged store surfaced after power cut: %v", err)
	}
}

// TestTornManifestLineTolerated writes a store whose manifest append is torn
// mid-line by the crash; reload must silently drop the torn final line and
// keep every line before it.
func TestTornManifestLineTolerated(t *testing.T) {
	for site := 1; ; site++ {
		fs := fault.NewFS()
		a := newFaultArchive(t, fs)
		if err := a.Store("log/first.log", []byte("first")); err != nil {
			t.Fatalf("store first: %v", err)
		}
		base := fs.OpCount()
		fs.SetFault(base+site, fault.ModeTorn)
		err := a.Store("log/second.log", []byte("second"))
		if err == nil {
			// site walked past the second store's last operation: the torn
			// window is fully covered.
			if site == 1 {
				t.Fatal("fault never fired")
			}
			return
		}
		fs.Recover()
		a2 := newFaultArchive(t, fs)
		got, rerr := a2.Read("log/first.log")
		if rerr != nil || string(got) != "first" {
			t.Fatalf("site %d: first store damaged by torn crash: %q, %v", site, got, rerr)
		}
		// The second store may have made it in whole or not at all — but if
		// listed, its bytes must be intact.
		if data, rerr := a2.Read("log/second.log"); rerr == nil && string(data) != "second" {
			t.Fatalf("site %d: torn manifest surfaced wrong content: %q", site, data)
		}
	}
}

// TestRemoveCrashNeverLosesOtherFiles enumerates every crash site of a
// Remove: whatever the interleaving, files that were not being removed stay
// intact, and the manifest never points at the deleted file's missing bytes
// with wrong content.
func TestRemoveCrashNeverLosesOtherFiles(t *testing.T) {
	for site := 1; ; site++ {
		fs := fault.NewFS()
		a := newFaultArchive(t, fs)
		if err := a.Store("a/keep.dat", []byte("keep")); err != nil {
			t.Fatal(err)
		}
		if err := a.Store("a/drop.dat", []byte("drop")); err != nil {
			t.Fatal(err)
		}
		base := fs.OpCount()
		fs.SetFault(base+site, fault.ModeCrash)
		err := a.Remove("a/drop.dat")
		if err == nil {
			if site == 1 {
				t.Fatal("fault never fired")
			}
			return
		}
		fs.Recover()
		a2 := newFaultArchive(t, fs)
		if got, rerr := a2.Read("a/keep.dat"); rerr != nil || string(got) != "keep" {
			t.Fatalf("site %d: unrelated file damaged by crashed remove: %q, %v", site, got, rerr)
		}
		// The removed file either still exists intact or is fully gone.
		if got, rerr := a2.Read("a/drop.dat"); rerr == nil {
			if string(got) != "drop" {
				t.Fatalf("site %d: half-removed file has wrong content: %q", site, got)
			}
		} else if !errors.Is(rerr, archive.ErrNotFound) {
			t.Fatalf("site %d: manifest points at missing bytes: %v", site, rerr)
		}
	}
}

// TestStoreBatchCrashAtomic enumerates every crash site of a StoreBatch:
// after recovery either every member of the batch is readable with the right
// bytes, or none is listed — never a partial batch, and never damage to
// files stored before it.
func TestStoreBatchCrashAtomic(t *testing.T) {
	members := []archive.BatchFile{
		{Rel: "u/raw.fits.gz", Data: []byte("raw-bytes")},
		{Rel: "u/v0.wav", Data: []byte("view-zero")},
		{Rel: "u/v1.wav", Data: []byte("view-one")},
	}
	for site := 1; ; site++ {
		fs := fault.NewFS()
		a := newFaultArchive(t, fs)
		if err := a.Store("prior/keep.dat", []byte("keep")); err != nil {
			t.Fatal(err)
		}
		base := fs.OpCount()
		fs.SetFault(base+site, fault.ModeCrash)
		err := a.StoreBatch(members)
		if err == nil {
			if site == 1 {
				t.Fatal("fault never fired")
			}
			return
		}
		fs.Recover()
		a2 := newFaultArchive(t, fs)
		if got, rerr := a2.Read("prior/keep.dat"); rerr != nil || string(got) != "keep" {
			t.Fatalf("site %d: prior file damaged by crashed batch: %q, %v", site, got, rerr)
		}
		listed := 0
		for _, m := range members {
			got, rerr := a2.Read(m.Rel)
			if rerr == nil {
				if !bytes.Equal(got, m.Data) {
					t.Fatalf("site %d: member %s has wrong content: %q", site, m.Rel, got)
				}
				listed++
			} else if !errors.Is(rerr, archive.ErrNotFound) {
				t.Fatalf("site %d: member %s unreadable: %v", site, m.Rel, rerr)
			}
		}
		if listed != 0 && listed != len(members) {
			t.Fatalf("site %d: partial batch surfaced: %d of %d members", site, listed, len(members))
		}
	}
}

package archive

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/lake"
	"repro/internal/minidb"
)

// Lake mode: an archive whose source of truth is the lake's commit journal
// instead of MANIFEST.crc. The Archive surface (Store/StoreBatch/Read/
// Remove/...) is unchanged — dm keeps addressing members by relative path —
// but every mutation becomes a journal commit, which buys the archive
// time travel (OpenAt serves the catalog as of any commit), background
// compaction of small pack containers, and GC that provably never deletes
// bytes a live or pinned view still references. The manifest-mode code
// paths are untouched; fixtures and relocation targets keep using them.

// NewLake opens (or creates) a journal-backed archive rooted at dir.
func NewLake(id string, kind Kind, dir string, capacityBytes int64) (*Archive, error) {
	return NewLakeVFS(minidb.OSFS, id, kind, dir, capacityBytes)
}

// NewLakeVFS is NewLake with an explicit filesystem, so crash-recovery
// tests can make every journal/container/GC I/O a crash site.
func NewLakeVFS(fsys VFS, id string, kind Kind, dir string, capacityBytes int64) (*Archive, error) {
	if id == "" {
		return nil, fmt.Errorf("archive: empty id")
	}
	lk, err := lake.Open(fsys, dir)
	if err != nil {
		return nil, err
	}
	// A directory that already holds a manifest-mode archive (pre-lake
	// deployment) is imported into the journal before first use: opening
	// it as an empty lake would orphan every file the location tables
	// still reference.
	if err := migrateManifest(fsys, kind, dir, lk); err != nil {
		return nil, fmt.Errorf("archive: manifest→lake migration of %s: %w", dir, err)
	}
	return &Archive{
		id: id, kind: kind, root: dir, fsys: fsys, online: true,
		capacity: capacityBytes, files: make(map[string]fileMeta),
		pending: make(map[string]bool), lk: lk,
	}, nil
}

// migratedManifestName is where a consumed manifest is parked: its
// presence marks a completed migration, its absence alongside a
// MANIFEST.crc marks one to (re)run. Kept rather than deleted so an
// operator can audit what the journal was seeded from.
const migratedManifestName = manifestName + ".migrated"

// migrateManifest imports a legacy manifest-mode archive into the journal:
// every manifest member is read back (CRC-verified), stored through the
// lake in bounded batches, and only then is the manifest moved aside and
// the legacy bytes dropped. The steps are idempotent — a crash anywhere
// resumes on the next open, skipping members the journal already holds —
// and ordered so the journal owns a member's bytes before the manifest
// copy can disappear.
func migrateManifest(fsys VFS, kind Kind, dir string, lk *lake.Lake) error {
	manifest := filepath.Join(dir, manifestName)
	if _, err := fsys.ReadFile(manifest); errors.Is(err, fs.ErrNotExist) {
		return nil
	} else if err != nil {
		return err
	}
	legacy, err := NewVFS(fsys, "legacy", kind, dir, 0)
	if err != nil {
		return err
	}

	var batch []lake.BatchFile
	var batchBytes int64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		_, err := lk.StoreBatch(batch)
		batch, batchBytes = nil, 0
		return err
	}
	for _, rel := range legacy.List() {
		if lk.Exists(rel) {
			continue // an earlier interrupted migration already moved it
		}
		data, err := legacy.Read(rel)
		if err != nil {
			return fmt.Errorf("member %s: %w", rel, err)
		}
		batch = append(batch, lake.BatchFile{Rel: rel, Data: data})
		batchBytes += int64(len(data))
		if batchBytes >= 32<<20 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Seal: park the manifest, then drop the now-redundant legacy bytes.
	// A crash between the two leaves unreferenced orphans, never a member
	// whose only copy is gone.
	if err := fsys.Rename(manifest, filepath.Join(dir, migratedManifestName)); err != nil {
		return err
	}
	packs := make(map[string]bool)
	for rel, meta := range legacy.files {
		if meta.pack != "" {
			packs[meta.pack] = true
			continue
		}
		_ = fsys.Remove(filepath.Join(dir, rel))
	}
	for pack := range packs {
		_ = fsys.Remove(filepath.Join(dir, pack))
	}
	return nil
}

// Lake returns the journal store behind a lake-mode archive (nil in
// manifest mode). Callers use it for time travel, compaction, GC and
// stats; the Archive surface covers everything else.
func (a *Archive) Lake() *lake.Lake { return a.lk }

// OpenAt opens a read-only view of the archive as of commit seq (0 = the
// current head), durably pinned against GC until the view is closed.
func (a *Archive) OpenAt(seq uint64) (*lake.View, error) {
	if a.lk == nil {
		return nil, fmt.Errorf("archive: %s is not journal-backed", a.id)
	}
	if !a.Online() {
		return nil, ErrOffline
	}
	return a.lk.OpenAt(seq)
}

// mapLakeErr translates lake sentinel errors into the archive's, so
// existing callers keep matching errors.Is(err, archive.ErrNotFound) etc.
func mapLakeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, lake.ErrNotFound):
		return fmt.Errorf("%w: %s", ErrNotFound, trimLakePrefix(err))
	case errors.Is(err, lake.ErrExists):
		return fmt.Errorf("%w: %s", ErrExists, trimLakePrefix(err))
	case errors.Is(err, lake.ErrCorrupt):
		return fmt.Errorf("%w: %s", ErrCorrupt, trimLakePrefix(err))
	}
	return err
}

func trimLakePrefix(err error) string {
	s := err.Error()
	if i := strings.LastIndex(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

// lakeStoreBatch is StoreBatch in lake mode: one container, one journal
// commit. Capacity is enforced against physical bytes (history included),
// since that is what the tier actually holds until GC runs.
func (a *Archive) lakeStoreBatch(files []BatchFile) error {
	if !a.Online() {
		return ErrOffline
	}
	var total int64
	lf := make([]lake.BatchFile, len(files))
	for i, f := range files {
		lf[i] = lake.BatchFile{Rel: f.Rel, Day: f.Day, Data: f.Data}
		total += int64(len(f.Data))
	}
	if cap := a.capacityBytes(); cap > 0 {
		if used := a.lk.PhysBytes(); used+total > cap {
			return fmt.Errorf("%w: batch needs %d bytes, %d left", ErrFull, total, cap-used)
		}
	}
	_, err := a.lk.StoreBatch(lf)
	return mapLakeErr(err)
}

func (a *Archive) capacityBytes() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.capacity
}

// lakeRead is Read in lake mode (CRC-verified by the lake).
func (a *Archive) lakeRead(rel string) ([]byte, error) {
	if !a.Online() {
		return nil, ErrOffline
	}
	if d := a.kind.latency(); d > 0 {
		time.Sleep(d)
	}
	data, err := a.lk.Read(rel)
	return data, mapLakeErr(err)
}

// lakeOpen is Open in lake mode: members live inside containers, so the
// bytes are materialized (there is no per-member file to stream).
func (a *Archive) lakeOpen(rel string) (io.ReadCloser, error) {
	data, err := a.lakeRead(rel)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// lakeRemove is Remove in lake mode: a tombstone commit. The bytes stay
// readable through pinned older commits until GC retires them.
func (a *Archive) lakeRemove(rel string) error {
	if !a.Online() {
		return ErrOffline
	}
	_, err := a.lk.Delete([]string{rel})
	return mapLakeErr(err)
}

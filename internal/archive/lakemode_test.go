package archive

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"repro/internal/lake"
)

// lakeCompactAll makes every container a merge candidate in tests.
func lakeCompactAll() lake.CompactOptions {
	return lake.CompactOptions{SmallBytes: 1 << 20, MinMerge: 2, MaxMerge: 100}
}

func newLakeArchive(t *testing.T) *Archive {
	t.Helper()
	a, err := NewLake("lake-0", Disk, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("NewLake: %v", err)
	}
	return a
}

// TestLakeModeSurface drives the whole Archive surface in lake mode and
// checks the manifest-mode error contract holds.
func TestLakeModeSurface(t *testing.T) {
	a := newLakeArchive(t)
	if a.Lake() == nil {
		t.Fatal("Lake() nil in lake mode")
	}

	if err := a.Store("fits.gz/u1.fits.gz", []byte("raw-unit")); err != nil {
		t.Fatalf("store: %v", err)
	}
	if err := a.Store("fits.gz/u1.fits.gz", []byte("dup")); !errors.Is(err, ErrExists) {
		t.Fatalf("overwrite: %v", err)
	}
	got, err := a.Read("fits.gz/u1.fits.gz")
	if err != nil || string(got) != "raw-unit" {
		t.Fatalf("read: %q, %v", got, err)
	}
	if n, err := a.Stat("fits.gz/u1.fits.gz"); err != nil || n != 8 {
		t.Fatalf("stat: %d, %v", n, err)
	}
	if !a.Exists("fits.gz/u1.fits.gz") {
		t.Fatal("exists")
	}
	if a.Used() != 8 || a.Len() != 1 {
		t.Fatalf("used %d len %d", a.Used(), a.Len())
	}
	rc, err := a.Open("fits.gz/u1.fits.gz")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(rc)
	rc.Close()
	if buf.String() != "raw-unit" {
		t.Fatalf("open read: %q", buf.String())
	}

	batch := []BatchFile{
		{Rel: "wavelet/u1a.wav", Day: 3, Data: []byte("wave-a")},
		{Rel: "wavelet/u1b.wav", Day: 3, Data: []byte("wave-b")},
	}
	if err := a.StoreBatch(batch); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if len(a.List()) != 3 {
		t.Fatalf("list: %v", a.List())
	}
	if bad := a.Verify(); len(bad) != 0 {
		t.Fatalf("verify: %v", bad)
	}

	if err := a.Remove("wavelet/u1a.wav"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := a.Read("wavelet/u1a.wav"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read removed: %v", err)
	}
	if err := a.Remove("wavelet/u1a.wav"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove: %v", err)
	}

	// Offline archives reject everything, as in manifest mode.
	a.SetOnline(false)
	if _, err := a.Read("fits.gz/u1.fits.gz"); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline read: %v", err)
	}
	if err := a.Store("x/y", []byte("z")); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline store: %v", err)
	}
	if err := a.Remove("fits.gz/u1.fits.gz"); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline remove: %v", err)
	}
	if _, err := a.OpenAt(0); !errors.Is(err, ErrOffline) {
		t.Fatalf("offline OpenAt: %v", err)
	}
	a.SetOnline(true)
}

// TestLakeModeTimeTravel checks OpenAt through the Archive surface: the
// store relocation / purge flow deletes a file, but a view pinned before
// the delete still reads it bit-identically.
func TestLakeModeTimeTravel(t *testing.T) {
	a := newLakeArchive(t)
	if err := a.Store("fits.gz/u1.fits.gz", []byte("original calibration")); err != nil {
		t.Fatal(err)
	}
	v, err := a.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt: %v", err)
	}
	defer v.Close()

	if err := a.Remove("fits.gz/u1.fits.gz"); err != nil {
		t.Fatal(err)
	}
	if err := a.Store("fits.gz/u1.fits.gz", []byte("recalibrated")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Read("fits.gz/u1.fits.gz"); string(got) != "recalibrated" {
		t.Fatalf("head read: %q", got)
	}
	if got, err := v.Read("fits.gz/u1.fits.gz"); err != nil || string(got) != "original calibration" {
		t.Fatalf("pinned read: %q, %v", got, err)
	}

	// Compact + GC must not disturb either generation while the pin holds.
	if _, err := a.Lake().Compact(lakeCompactAll()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lake().GC(a.Lake().Head()); err != nil {
		t.Fatal(err)
	}
	if got, _ := v.Read("fits.gz/u1.fits.gz"); string(got) != "original calibration" {
		t.Fatalf("pinned read after compact+gc: %q", got)
	}
	if got, _ := a.Read("fits.gz/u1.fits.gz"); string(got) != "recalibrated" {
		t.Fatalf("head read after compact+gc: %q", got)
	}
}

// TestLakeModeCapacity enforces the tier capacity against physical bytes.
func TestLakeModeCapacity(t *testing.T) {
	a, err := NewLake("lake-cap", Disk, t.TempDir(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Store("a", make([]byte, 48)); err != nil {
		t.Fatal(err)
	}
	if err := a.Store("b", make([]byte, 32)); !errors.Is(err, ErrFull) {
		t.Fatalf("over-capacity store: %v", err)
	}
	if left := a.CapacityLeft(); left != 16 {
		t.Fatalf("capacity left = %d", left)
	}
	// A remove alone frees nothing physically; compact+GC does.
	if err := a.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := a.Store("c", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lake().Compact(lakeCompactAll()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Lake().GC(a.Lake().Head()); err != nil {
		t.Fatal(err)
	}
	if err := a.Store("b", make([]byte, 32)); err != nil {
		t.Fatalf("store after gc reclaim: %v", err)
	}
}

// TestLakeModeRestart reopens a lake archive and checks the catalog and a
// durable pin survive.
func TestLakeModeRestart(t *testing.T) {
	dir := t.TempDir()
	a, err := NewLake("lake-r", Disk, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Store(fmt.Sprintf("wavelet/u%d.wav", i), []byte(fmt.Sprintf("w%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := a.OpenAt(0)
	if err != nil {
		t.Fatal(err)
	}
	token := v.Token()

	b, err := NewLake("lake-r", Disk, dir, 0)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if b.Len() != 5 {
		t.Fatalf("len after reopen = %d", b.Len())
	}
	v2, err := b.Lake().AttachPin(token)
	if err != nil {
		t.Fatalf("attach pin: %v", err)
	}
	if got, err := v2.Read("wavelet/u3.wav"); err != nil || string(got) != "w3" {
		t.Fatalf("pinned read after restart: %q, %v", got, err)
	}
}

// A pre-lake data directory (MANIFEST.crc + pack files) opened in lake
// mode is imported into the journal, not served as an empty catalog that
// would orphan every file the location tables reference.
func TestManifestArchiveMigratesToLake(t *testing.T) {
	dir := t.TempDir()
	legacy, err := New("disk-0", Disk, dir, 0)
	if err != nil {
		t.Fatalf("legacy New: %v", err)
	}
	want := map[string][]byte{
		"raw/d001/u1":    []byte("plain-stored-unit"),
		"raw/d002/u2":    []byte("packed-unit-two"),
		"wavelet/u2.wav": []byte("packed-wavelet"),
	}
	if err := legacy.Store("raw/d001/u1", want["raw/d001/u1"]); err != nil {
		t.Fatalf("legacy store: %v", err)
	}
	if err := legacy.StoreBatch([]BatchFile{
		{Rel: "raw/d002/u2", Data: want["raw/d002/u2"]},
		{Rel: "wavelet/u2.wav", Data: want["wavelet/u2.wav"]},
	}); err != nil {
		t.Fatalf("legacy batch: %v", err)
	}

	// Upgrade: the same directory opens journal-backed.
	a, err := NewLake("disk-0", Disk, dir, 0)
	if err != nil {
		t.Fatalf("NewLake over manifest dir: %v", err)
	}
	if a.Len() != len(want) {
		t.Fatalf("migrated archive holds %d files, want %d (%v)", a.Len(), len(want), a.List())
	}
	for rel, data := range want {
		got, err := a.Read(rel)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("migrated read %s: %q, %v", rel, got, err)
		}
	}
	// The manifest is parked (completion marker), the legacy bytes dropped.
	if legacy.fsys != nil {
		if _, err := legacy.fsys.ReadFile(a.Root() + "/" + manifestName); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("MANIFEST.crc still present after migration: %v", err)
		}
		if _, err := legacy.fsys.ReadFile(a.Root() + "/" + migratedManifestName); err != nil {
			t.Fatalf("parked manifest missing: %v", err)
		}
		if _, err := legacy.fsys.ReadFile(a.Root() + "/raw/d001/u1"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("legacy plain file survived migration: %v", err)
		}
		if _, err := legacy.fsys.ReadFile(a.Root() + "/packs/p00000000.pack"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("legacy pack survived migration: %v", err)
		}
	}

	// Reopening is idempotent, and the migrated catalog is time-travelable.
	a2, err := NewLake("disk-0", Disk, dir, 0)
	if err != nil {
		t.Fatalf("reopen migrated archive: %v", err)
	}
	if a2.Len() != len(want) {
		t.Fatalf("reopened archive holds %d files", a2.Len())
	}
	v, err := a2.OpenAt(0)
	if err != nil {
		t.Fatalf("OpenAt over migrated data: %v", err)
	}
	defer v.Close()
	for rel, data := range want {
		got, err := v.Read(rel)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("as-of read %s: %q, %v", rel, got, err)
		}
	}
	// Post-migration mutations behave like any lake archive.
	if err := a2.Store("raw/d003/u3", []byte("post-migration")); err != nil {
		t.Fatalf("store after migration: %v", err)
	}
	if err := a2.Remove("raw/d001/u1"); err != nil {
		t.Fatalf("remove after migration: %v", err)
	}
	if a2.Exists("raw/d001/u1") {
		t.Fatal("removed migrated member still live")
	}
}

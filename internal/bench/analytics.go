package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/colseg"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// The analytics experiment measures the read-optimized columnar path
// against the row-at-a-time OLTP baseline on the same engine and the same
// data: catalog-wide aggregates over 1M+ synthetic events. The paper's
// histogram workload (Table 3) is exactly this shape — full-archive
// statistics recomputed whenever calibration software changes — and the
// row path is what HEDC's DBMS charged ~120 queries/second for.

// AnalyticsParams sizes the experiment.
type AnalyticsParams struct {
	Rows        int   // events inserted (default 1.2M)
	SegmentRows int   // rows per columnar segment (default colseg.DefaultSegmentRows)
	Seed        int64 // synthetic-data seed
	Trials      int   // timed repetitions per path; best is kept (default 3)
}

// DefaultAnalyticsParams returns the sizes used for BENCH_analytics.json.
func DefaultAnalyticsParams() AnalyticsParams {
	return AnalyticsParams{Rows: 1_200_000, SegmentRows: colseg.DefaultSegmentRows, Seed: 2003, Trials: 3}
}

// AnalyticsPoint is one query's measurement.
type AnalyticsPoint struct {
	Query       string  `json:"query"`
	RowsMatched int64   `json:"rows_matched"`
	RowMillis   float64 `json:"row_ms"`
	VecMillis   float64 `json:"vec_ms"`
	Speedup     float64 `json:"speedup"`
	Segments    int     `json:"segments"`
	SegsPruned  int     `json:"segments_pruned"`
	PruneRatio  float64 `json:"prune_ratio"`
	Identical   bool    `json:"bit_identical"`
}

// AnalyticsResult is the whole experiment.
type AnalyticsResult struct {
	Rows        int              `json:"rows"`
	SegmentRows int              `json:"segment_rows"`
	Segments    int              `json:"segments"`
	BuildMillis float64          `json:"build_ms"`
	IngestSecs  float64          `json:"ingest_secs"`
	Points      []AnalyticsPoint `json:"points"`
}

// RunAnalytics loads p.Rows synthetic events into an in-memory engine,
// builds columnar segments once, and times each query on both paths.
// Results must be bit-identical between the paths — the experiment fails
// otherwise, because a fast wrong answer is not an optimization.
func RunAnalytics(p AnalyticsParams, logf func(string, ...any)) (*AnalyticsResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if p.Rows <= 0 {
		p.Rows = 1_200_000
	}
	if p.SegmentRows <= 0 {
		p.SegmentRows = colseg.DefaultSegmentRows
	}
	if p.Trials <= 0 {
		p.Trials = 3
	}
	db, err := minidb.Open("", schema.AllSchemas()...) // in-memory: measure compute, not disk
	if err != nil {
		return nil, err
	}
	defer db.Close()

	logf("analytics: ingesting %d synthetic events", p.Rows)
	t0 := time.Now()
	rng := rand.New(rand.NewSource(p.Seed))
	const chunk = 20_000
	t := 0.0
	for done := 0; done < p.Rows; {
		b := &minidb.Batch{}
		for i := 0; i < chunk && done < p.Rows; i++ {
			id := int64(done)
			t += 0.2 + 0.6*rng.Float64() // strictly increasing: photon arrival times
			energy := minidb.F(3 + 297*rng.Float64())
			if done%23 == 0 {
				energy = minidb.Null() // uncalibrated events
			}
			b.Insert(schema.TableEvents, minidb.Row{
				minidb.I(id),
				minidb.S(fmt.Sprintf("unit-%05d", done/4096)),
				minidb.F(t),
				energy,
				minidb.I(int64(done % 9)),
				minidb.I(int64(done % 3)),
			})
			done++
		}
		if _, err := db.Apply(b); err != nil {
			return nil, err
		}
	}
	ingest := time.Since(t0)
	tMax := t

	store, err := colseg.Open(colseg.Options{DB: db, SegmentRows: p.SegmentRows})
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	if err := store.RefreshAll(); err != nil {
		return nil, err
	}
	build := time.Since(t0)
	res := &AnalyticsResult{
		Rows:        p.Rows,
		SegmentRows: p.SegmentRows,
		Segments:    store.SegmentCount(schema.TableEvents),
		BuildMillis: float64(build.Microseconds()) / 1e3,
		IngestSecs:  ingest.Seconds(),
	}
	logf("analytics: %d segments built in %v (ingest %v)", res.Segments, build, ingest)

	// A narrow time window near the middle of the mission: zone maps on the
	// monotone t column should let the scan skip nearly every segment.
	win := tMax / 20
	lo := tMax / 2
	queries := []struct {
		name string
		q    colseg.Query
	}{
		{"full-scan stats(energy)", colseg.Query{
			Table: schema.TableEvents, Agg: colseg.AggStats, Col: "energy"}},
		{"full-scan count(detector=3)", colseg.Query{
			Table: schema.TableEvents, Agg: colseg.AggCount,
			Where: []minidb.Pred{{Col: "detector", Op: minidb.OpEq, Val: minidb.I(3)}}}},
		{"time histogram (48 bins)", colseg.Query{
			Table: schema.TableEvents, Agg: colseg.AggHist, Col: "t",
			Bins: 48, Lo: 0, Hi: tMax}},
		{"stats(energy) by detector", colseg.Query{
			Table: schema.TableEvents, Agg: colseg.AggStats, Col: "energy", GroupBy: "detector"}},
		{"narrow time range count", colseg.Query{
			Table: schema.TableEvents, Agg: colseg.AggCount,
			Where: []minidb.Pred{{Col: "t", Op: minidb.OpBetween,
				Val: minidb.F(lo), Hi: minidb.F(lo + win)}}}},
	}

	timeBest := func(run func() (*colseg.Result, error)) (*colseg.Result, float64, error) {
		best := math.Inf(1)
		var out *colseg.Result
		for i := 0; i < p.Trials; i++ {
			start := time.Now()
			r, err := run()
			if err != nil {
				return nil, 0, err
			}
			if ms := float64(time.Since(start).Microseconds()) / 1e3; ms < best {
				best = ms
			}
			out = r
		}
		return out, best, nil
	}

	for _, qc := range queries {
		q := qc.q
		rowRes, rowMS, err := timeBest(func() (*colseg.Result, error) { return colseg.RunRows(db, q) })
		if err != nil {
			return nil, err
		}
		vecRes, vecMS, err := timeBest(func() (*colseg.Result, error) { return store.Run(q) })
		if err != nil {
			return nil, err
		}
		if !vecRes.Stats.Vectorized {
			return nil, fmt.Errorf("analytics: %s did not run vectorized: %+v", qc.name, vecRes.Stats)
		}
		pt := AnalyticsPoint{
			Query:       qc.name,
			RowsMatched: vecRes.Rows,
			RowMillis:   rowMS,
			VecMillis:   vecMS,
			Speedup:     rowMS / vecMS,
			Segments:    vecRes.Stats.Segments,
			SegsPruned:  vecRes.Stats.SegmentsPruned,
			Identical:   identicalResults(rowRes, vecRes),
		}
		if pt.Segments > 0 {
			pt.PruneRatio = float64(pt.SegsPruned) / float64(pt.Segments)
		}
		if !pt.Identical {
			return nil, fmt.Errorf("analytics: %s diverged between row and vectorized paths", qc.name)
		}
		logf("analytics: %-28s row %8.1fms  vec %7.2fms  %6.1fx  pruned %d/%d",
			qc.name, pt.RowMillis, pt.VecMillis, pt.Speedup, pt.SegsPruned, pt.Segments)
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// identicalResults compares two results bit-for-bit: float aggregates via
// their IEEE bit patterns, groups pairwise in key order.
func identicalResults(a, b *colseg.Result) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if a.Rows != b.Rows || a.NonNull != b.NonNull ||
		!eq(a.Sum, b.Sum) || !eq(a.Min, b.Min) || !eq(a.Max, b.Max) {
		return false
	}
	if len(a.Bins) != len(b.Bins) || len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Bins {
		if a.Bins[i] != b.Bins[i] {
			return false
		}
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Key != gb.Key || ga.Rows != gb.Rows || ga.NonNull != gb.NonNull || !eq(ga.Sum, gb.Sum) {
			return false
		}
	}
	return true
}

// FormatAnalytics renders the experiment in the bench tables' layout.
func FormatAnalytics(r *AnalyticsResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analytics — vectorized columnar scans vs row-at-a-time (%d events, %d segments of %d rows)\n",
		r.Rows, r.Segments, r.SegmentRows)
	fmt.Fprintf(&b, "segment build %.0fms after %.1fs ingest\n", r.BuildMillis, r.IngestSecs)
	fmt.Fprintf(&b, "  %-28s %10s %10s %9s %10s %6s\n",
		"query", "row ms", "vec ms", "speedup", "pruned", "exact")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %-28s %10.1f %10.2f %8.1fx %6d/%-3d %6v\n",
			p.Query, p.RowMillis, p.VecMillis, p.Speedup, p.SegsPruned, p.Segments, p.Identical)
	}
	return b.String()
}

package bench

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

// The §3.4 claim: pre-processing the raw data into wavelet-compressed
// range-partitioned views "shortens this holistic response time by at least
// an order of magnitude (in fact, allowing interactive work with the system
// which would otherwise be impossible)". Unlike Figures 4-5 and Table 1,
// this experiment needs no 2003 hardware: it runs the real codec and the
// real analysis routines and measures wall-clock time, adding only the
// paper's 2 MB/s client link for the transfer component of the holistic
// response time.

// ApproxResult compares one full analysis against its approximated run.
type ApproxResult struct {
	Analysis       string
	Photons        int
	RawBytes       int64
	ViewBytes      int64
	FullComputeS   float64
	ApproxComputeS float64
	// Holistic = transfer (at 2 MB/s) + compute, the §3.4 notion of
	// response time a scientist actually experiences.
	FullHolisticS   float64
	ApproxHolisticS float64
	Speedup         float64 // holistic full / holistic approx
}

// RunApprox measures the §3.4 comparison on freshly generated photons.
// frac is the wavelet coefficient fraction used for the approximated run.
func RunApprox(nPhotonsTarget int, anaType string, frac float64) (ApproxResult, error) {
	// Generate enough photons: background rate scaled to the target.
	dayLen := 3600.0
	cfg := telemetry.Config{
		Seed: 424242, DayLength: dayLen,
		BackgroundRate: float64(nPhotonsTarget) / dayLen * 0.8,
		Flares:         2, Bursts: 0,
	}
	day := telemetry.GenerateDay(1, cfg)
	photons := day.Photons

	params := analysis.Params{
		Type: anaType, TStart: 0, TStop: dayLen,
		TimeBins: 256, EnergyBins: 32,
	}

	res := ApproxResult{
		Analysis: anaType,
		Photons:  len(photons),
		RawBytes: int64(len(photons)) * 18,
	}

	start := time.Now()
	if _, err := analysis.Run(params, photons); err != nil {
		return res, err
	}
	res.FullComputeS = time.Since(start).Seconds()

	// Build the view once (this cost is paid at load time, §3.4 — it is
	// deliberately excluded from the response time, like the paper does).
	view := wavelet.BuildView(photons, 0, dayLen, telemetry.EnergyMin, telemetry.EnergyMax,
		256, 32, frac)
	res.ViewBytes = int64(view.Enc.CompressedSize())

	params.ApproxFrac = frac
	start = time.Now()
	if _, err := analysis.RunOnView(params, view); err != nil {
		return res, err
	}
	res.ApproxComputeS = time.Since(start).Seconds()

	const linkBps = 2 << 20 // the paper's 2 MB/s client link
	res.FullHolisticS = res.FullComputeS + float64(res.RawBytes)/linkBps
	res.ApproxHolisticS = res.ApproxComputeS + float64(res.ViewBytes)/linkBps
	if res.ApproxHolisticS > 0 {
		res.Speedup = res.FullHolisticS / res.ApproxHolisticS
	}
	return res, nil
}

// RunApproxImaging measures the subsampled-photon variant used for imaging
// (views carry no per-photon phase, so imaging approximates by stride
// sampling instead).
func RunApproxImaging(nPhotonsTarget int, frac float64) (ApproxResult, error) {
	dayLen := 600.0
	cfg := telemetry.Config{
		Seed: 515151, DayLength: dayLen,
		BackgroundRate: float64(nPhotonsTarget) / dayLen * 0.5,
		Flares:         1, Bursts: 0,
	}
	day := telemetry.GenerateDay(1, cfg)

	params := analysis.Params{
		Type: schema.AnaImaging, TStart: 0, TStop: dayLen,
		ImageSize: 48, PixelSize: 48,
	}
	res := ApproxResult{Analysis: schema.AnaImaging, Photons: len(day.Photons)}
	res.RawBytes = int64(len(day.Photons)) * 18

	start := time.Now()
	if _, err := analysis.Run(params, day.Photons); err != nil {
		return res, err
	}
	res.FullComputeS = time.Since(start).Seconds()

	params.ApproxFrac = frac
	start = time.Now()
	if _, err := analysis.Run(params, day.Photons); err != nil {
		return res, err
	}
	res.ApproxComputeS = time.Since(start).Seconds()
	res.ViewBytes = int64(float64(res.RawBytes) * frac)

	const linkBps = 2 << 20
	res.FullHolisticS = res.FullComputeS + float64(res.RawBytes)/linkBps
	res.ApproxHolisticS = res.ApproxComputeS + float64(res.ViewBytes)/linkBps
	if res.ApproxHolisticS > 0 {
		res.Speedup = res.FullHolisticS / res.ApproxHolisticS
	}
	return res, nil
}

// FormatApprox renders one comparison.
func FormatApprox(r ApproxResult) string {
	return fmt.Sprintf(`Approximated analysis (§3.4) — %s
Photons                %d
Raw bytes              %d
View bytes             %d (%.1fx smaller)
Full compute [s]       %.4f
Approx compute [s]     %.4f
Full holistic [s]      %.3f   (compute + raw transfer at 2 MB/s)
Approx holistic [s]    %.3f   (compute + view transfer at 2 MB/s)
Holistic speedup       %.1fx
`, r.Analysis, r.Photons, r.RawBytes, r.ViewBytes,
		float64(r.RawBytes)/float64(max64(r.ViewBytes, 1)),
		r.FullComputeS, r.ApproxComputeS, r.FullHolisticS, r.ApproxHolisticS, r.Speedup)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package bench

import (
	"math"
	"strings"
	"testing"

	"repro/internal/schema"
)

// These tests pin the reproduced evaluation to the paper's shape: peak
// positions, degradation factors, saturation points and winners. Exact
// numbers live in EXPERIMENTS.md.

func TestFigure4Shape(t *testing.T) {
	pts := Figure4(DefaultBrowseParams(), nil)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// Peak at 16 clients, ~17 req/s (the DB ceiling: ~120 queries/s / 7).
	peak := pts[0]
	if peak.Clients != 16 {
		t.Fatalf("first point at %d clients", peak.Clients)
	}
	if peak.RequestsPerSec < 15 || peak.RequestsPerSec > 19 {
		t.Fatalf("peak throughput %.1f req/s, want ~17", peak.RequestsPerSec)
	}
	if peak.DBQueriesPS < 105 || peak.DBQueriesPS > 125 {
		t.Fatalf("peak DB load %.1f q/s, want ~120", peak.DBQueriesPS)
	}
	// Monotone degradation to ~3 req/s at 96 clients.
	for i := 1; i < len(pts); i++ {
		if pts[i].RequestsPerSec >= pts[i-1].RequestsPerSec {
			t.Fatalf("throughput not degrading at %d clients", pts[i].Clients)
		}
	}
	last := pts[len(pts)-1]
	if last.Clients != 96 || last.RequestsPerSec < 2 || last.RequestsPerSec > 4.5 {
		t.Fatalf("96-client throughput %.1f req/s, want ~3", last.RequestsPerSec)
	}
	// "roughly one complex Web request per second per client" at 16.
	if perClient := peak.RequestsPerSec / 16; perClient < 0.8 || perClient > 1.3 {
		t.Fatalf("per-client rate %.2f, want ~1", perClient)
	}
}

func TestFigure5Shape(t *testing.T) {
	pts := Figure5(DefaultBrowseParams(), nil)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Non-decreasing in nodes; 3 req/s at 1 node; saturates at the DB
	// ceiling (~17-18 req/s = ~120 queries/s) by 5 nodes.
	for i := 1; i < len(pts); i++ {
		if pts[i].RequestsPerSec+0.2 < pts[i-1].RequestsPerSec {
			t.Fatalf("throughput fell adding nodes: %v", pts)
		}
	}
	if pts[0].RequestsPerSec < 2 || pts[0].RequestsPerSec > 4.5 {
		t.Fatalf("1-node throughput %.1f, want ~3", pts[0].RequestsPerSec)
	}
	last := pts[len(pts)-1]
	if last.Nodes != 5 || last.RequestsPerSec < 15 || last.RequestsPerSec > 19 {
		t.Fatalf("5-node throughput %.1f, want ~17-18", last.RequestsPerSec)
	}
	if last.DBQueriesPS < 105 {
		t.Fatalf("5-node DB load %.1f q/s: scaling should saturate the DB", last.DBQueriesPS)
	}
	// The 5-node configuration is at least 5x the 1-node one (paper: 3->18).
	if last.RequestsPerSec < 5*pts[0].RequestsPerSec {
		t.Fatalf("scaling factor %.1f, want >= 5",
			last.RequestsPerSec/pts[0].RequestsPerSec)
	}
}

func closeTo(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*want
}

func TestTable1ImagingShape(t *testing.T) {
	pts := Table1(DefaultProcessingParams(), ImagingWorkload())
	byLabel := map[string]ProcPoint{}
	for _, p := range pts {
		byLabel[p.Config.Label] = p
	}
	s1, s2, c1, sc := byLabel["S/1"], byLabel["S/2"], byLabel["C/1"], byLabel["S+C/2+1"]

	// Paper: 6027 / 3117 / 2059 / 1380 s. Shape: each within 25%, strict
	// ordering, S/2 is ~half of S/1, S+C wins.
	if !closeTo(s1.DurationS, 6027, 0.25) {
		t.Fatalf("S/1 = %.0f s, paper 6027", s1.DurationS)
	}
	if !closeTo(s2.DurationS, 3117, 0.25) {
		t.Fatalf("S/2 = %.0f s, paper 3117", s2.DurationS)
	}
	if !closeTo(c1.DurationS, 2059, 0.25) {
		t.Fatalf("C/1 = %.0f s, paper 2059", c1.DurationS)
	}
	if !closeTo(sc.DurationS, 1380, 0.25) {
		t.Fatalf("S+C = %.0f s, paper 1380", sc.DurationS)
	}
	if !(sc.DurationS < c1.DurationS && c1.DurationS < s2.DurationS && s2.DurationS < s1.DurationS) {
		t.Fatal("configuration ordering broken")
	}
	if ratio := s1.DurationS / s2.DurationS; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("S/1 over S/2 = %.2f, want ~2 (CPU-bound scaling)", ratio)
	}
	// CPU profile: the server is usr-dominated when it computes; the
	// client usr CPU is saturated for these long analyses (paper: 90%).
	if s2.UsrCPUServer < 0.9 {
		t.Fatalf("S/2 server usr CPU %.0f%%, want ~100%%", s2.UsrCPUServer*100)
	}
	if c1.UsrCPUClient < 0.7 {
		t.Fatalf("C/1 client usr CPU %.0f%%, want high (paper 90%%)", c1.UsrCPUClient*100)
	}
}

func TestTable1HistogramShape(t *testing.T) {
	pts := Table1(DefaultProcessingParams(), HistogramWorkload())
	byLabel := map[string]ProcPoint{}
	for _, p := range pts {
		byLabel[p.Config.Label] = p
	}
	s1, s2 := byLabel["S/1"], byLabel["S/2"]
	c1, cc, sc := byLabel["C/1"], byLabel["C/cached"], byLabel["S+C/2+1"]

	// Paper: 960 / 655 / 841 / 821 / 438 s.
	if !closeTo(s1.DurationS, 960, 0.25) {
		t.Fatalf("S/1 = %.0f s, paper 960", s1.DurationS)
	}
	if !closeTo(c1.DurationS, 841, 0.25) {
		t.Fatalf("C/1 = %.0f s, paper 841", c1.DurationS)
	}
	if !closeTo(sc.DurationS, 438, 0.25) {
		t.Fatalf("S+C = %.0f s, paper 438", sc.DurationS)
	}
	// "even for the data intensive histogram test, the cost of data
	// movement [is] relatively small": caching saves only a few percent.
	saving := (c1.DurationS - cc.DurationS) / c1.DurationS
	if saving < 0 || saving > 0.1 {
		t.Fatalf("cache saving %.1f%%, paper ~2%%", saving*100)
	}
	// S+C is the fastest configuration.
	for _, p := range pts {
		if p.Config.Label != "S+C/2+1" && p.DurationS <= sc.DurationS {
			t.Fatalf("%s (%.0f s) beat S+C (%.0f s)", p.Config.Label, p.DurationS, sc.DurationS)
		}
	}
	// §8.4: for short analyses the client CPU is NOT saturated.
	if c1.UsrCPUClient > 0.6 {
		t.Fatalf("C/1 client usr CPU %.0f%%, should be unsaturated (paper 29%%)", c1.UsrCPUClient*100)
	}
	// Imperfect S scaling for short analyses (paper: 960 -> 655, 1.47x).
	if ratio := s1.DurationS / s2.DurationS; ratio > 2.05 {
		t.Fatalf("S scaling %.2fx for short analyses, want < 2 (coordination overhead)", ratio)
	}
}

func TestTables2And3MatchPaper(t *testing.T) {
	c2 := WorkloadCharacteristics(ImagingWorkload())
	if c2.Requests != 100 || c2.Queries != 300 || c2.Edits != 200 {
		t.Fatalf("table 2 = %+v", c2)
	}
	if math.Abs(c2.InputMB-50) > 1 || math.Abs(c2.OutputMB-5.5) > 0.3 {
		t.Fatalf("table 2 volumes = %+v", c2)
	}
	c3 := WorkloadCharacteristics(HistogramWorkload())
	if c3.Requests != 150 || c3.Queries != 450 || c3.Edits != 300 {
		t.Fatalf("table 3 = %+v", c3)
	}
	if math.Abs(c3.InputMB-50) > 1 || math.Abs(c3.OutputMB-1.2) > 0.2 {
		t.Fatalf("table 3 volumes = %+v", c3)
	}
}

func TestTurnoverMatchesPaperArithmetic(t *testing.T) {
	pts := Table1(DefaultProcessingParams(), ImagingWorkload())
	for _, p := range pts {
		want := (p.InputMB + p.OutputMB) / 1024 / (p.DurationS / 86400)
		if math.Abs(p.TurnoverGBd-want) > 1e-9 {
			t.Fatalf("turnover arithmetic wrong: %v vs %v", p.TurnoverGBd, want)
		}
	}
}

func TestApproximatedAnalysisOrderOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunApprox(300_000, schema.AnaLightcurve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 10 {
		t.Fatalf("holistic speedup %.1fx, paper claims >= 10x", r.Speedup)
	}
	if r.ViewBytes*10 > r.RawBytes {
		t.Fatalf("view not compact: %d vs %d raw", r.ViewBytes, r.RawBytes)
	}
}

func TestApproximatedImagingSpeedsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r, err := RunApproxImaging(60_000, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup < 3 {
		t.Fatalf("imaging approx speedup %.1fx, want >= 3x", r.Speedup)
	}
}

func TestDeterministicExperiments(t *testing.T) {
	a := RunBrowse(DefaultBrowseParams(), 32, 1)
	b := RunBrowse(DefaultBrowseParams(), 32, 1)
	if a.RequestsPerSec != b.RequestsPerSec || a.MeanResponseS != b.MeanResponseS {
		t.Fatal("browse experiment not deterministic")
	}
	pa := RunProcessing(DefaultProcessingParams(), HistogramWorkload(), ProcConfig{Label: "S/2", ServerSlots: 2})
	pb := RunProcessing(DefaultProcessingParams(), HistogramWorkload(), ProcConfig{Label: "S/2", ServerSlots: 2})
	if pa.DurationS != pb.DurationS {
		t.Fatal("processing experiment not deterministic")
	}
}

func TestFormatters(t *testing.T) {
	pts := []BrowsePoint{{Clients: 16, Nodes: 1, RequestsPerSec: 17.1, DBQueriesPS: 120}}
	out := FormatBrowse("Figure 4", pts)
	for _, want := range []string{"Figure 4", "req/s", "16"} {
		if !strings.Contains(out, want) {
			t.Fatalf("browse format missing %q:\n%s", want, out)
		}
	}
	if PeakThroughput(pts) != 17.1 {
		t.Fatalf("peak = %v", PeakThroughput(pts))
	}
	t1 := FormatTable1(Table1(DefaultProcessingParams(), HistogramWorkload()))
	for _, want := range []string{"histogram test", "S/1", "C/cached", "Turnover", "sojourn"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("table1 format missing %q", want)
		}
	}
	if FormatTable1(nil) != "" {
		t.Fatal("empty table1 format")
	}
	ap := FormatApprox(ApproxResult{Analysis: "lightcurve", RawBytes: 100, ViewBytes: 10, Speedup: 12})
	if !strings.Contains(ap, "lightcurve") || !strings.Contains(ap, "12.0x") {
		t.Fatalf("approx format:\n%s", ap)
	}
	ch := FormatCharacteristics(WorkloadCharacteristics(ImagingWorkload()), 2)
	if !strings.Contains(ch, "Table 2") || !strings.Contains(ch, "Requests      100") {
		t.Fatalf("characteristics format:\n%s", ch)
	}
}

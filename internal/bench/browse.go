// Package bench regenerates the paper's evaluation: Figure 4 (browse
// throughput vs clients), Figure 5 (browse throughput vs middle-tier
// nodes), Table 1 (processing performance) and Tables 2-3 (workload
// characteristics), plus the §3.4 approximated-analysis claim.
//
// The experiments replay the paper's 2003 testbeds in the discrete-event
// simulator (internal/sim) with calibrated resource demands, because the
// hardware — a SUN E3000 database server, PIII web servers, 96 client
// workstations, a 2x177 MHz processing server — cannot be reassembled.
// The real components execute elsewhere in the test suite; here the
// calibrated model reproduces the *shape* of the published curves:
// who wins, where saturation and degradation set in, and by what factor.
package bench

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// BrowseParams calibrates the web-browsing testbed (§7.1-7.2).
type BrowseParams struct {
	// DBMaxQueriesPerSec is the database ceiling: "the underlying
	// database ... supports a maximum throughput of around 120 HEDC
	// requests per second" worth of queries (§7.3).
	DBMaxQueriesPerSec float64
	// QueriesPerRequest is the §7.2 anatomy: ~7 DM queries per page.
	QueriesPerRequest int
	// WebCPUDemand is the middle-tier core-seconds to parse, query-manage
	// and render one response page.
	WebCPUDemand float64
	// WebCores is the per-node core count (dual PIII 1 GHz).
	WebCores float64
	// Thrash models the node's degradation under too many simultaneous
	// clients (memory pressure: Figure 4's drop from ~17 to ~3 req/s).
	Thrash sim.Thrash
	// ResponseBytes is HTML + dynamic images per request (12 KB + 35 KB).
	ResponseBytes int64
	// LANBytesPerSec is the switched 100 Mb/s Ethernet.
	LANBytesPerSec float64
	// Warmup and Measure bound the virtual measurement window (seconds).
	Warmup, Measure float64
}

// DefaultBrowseParams returns the calibration used in EXPERIMENTS.md.
func DefaultBrowseParams() BrowseParams {
	return BrowseParams{
		DBMaxQueriesPerSec: 120,
		QueriesPerRequest:  7,
		WebCPUDemand:       0.11, // ~17 req/s fits in 2 cores at low load
		WebCores:           2,
		// Calibrated so one node serves ~17 req/s at 16 clients and ~3
		// req/s at 96 clients (Figure 4's endpoints).
		Thrash:         sim.Thrash{Threshold: 16, Factor: 0.063},
		ResponseBytes:  47 * 1024,
		LANBytesPerSec: 100e6 / 8,
		Warmup:         120,
		Measure:        600,
	}
}

// BrowsePoint is one measured configuration.
type BrowsePoint struct {
	Clients        int     `json:"clients"`
	Nodes          int     `json:"nodes"`
	RequestsPerSec float64 `json:"req_per_sec"`
	DBQueriesPS    float64 `json:"db_queries_per_sec"`
	MeanResponseS  float64 `json:"mean_response_s"`
	WebUtilization float64 `json:"web_utilization"` // mean across nodes
	DBUtilization  float64 `json:"db_utilization"`
}

// RunBrowse simulates nClients closed-loop web clients spread over nNodes
// middle-tier nodes against one shared database.
func RunBrowse(p BrowseParams, nClients, nNodes int) BrowsePoint {
	k := sim.NewKernel()

	// Shared database: a serial station at the calibrated ceiling.
	db := sim.NewResource(k, 1)
	dbService := 1 / p.DBMaxQueriesPerSec

	// Middle-tier nodes.
	nodes := make([]*sim.CPU, nNodes)
	for i := range nodes {
		nodes[i] = sim.NewCPU(k, p.WebCores, p.Thrash)
	}
	lan := sim.NewLink(k, 0.0002, p.LANBytesPerSec)

	var completed int64
	var respTimes sim.Tally
	var dbQueries int64
	measStart := p.Warmup
	measEnd := p.Warmup + p.Measure

	// CPU demand split: a slice before the queries, a slice between each,
	// and the rendering slice at the end.
	slices := p.QueriesPerRequest + 1
	cpuSlice := p.WebCPUDemand / float64(slices)

	for c := 0; c < nClients; c++ {
		node := nodes[c%nNodes] // requests spread evenly (§7.2)
		k.Go(fmt.Sprintf("client-%d", c), func(proc *sim.Proc) {
			for {
				if proc.Now() >= measEnd {
					return
				}
				start := proc.Now()
				// Page generation on the middle tier, interleaved with
				// database queries.
				node.Use(proc, cpuSlice, "usr")
				for q := 0; q < p.QueriesPerRequest; q++ {
					db.Use(proc, dbService)
					if proc.Now() >= measStart && proc.Now() < measEnd {
						dbQueries++
					}
					node.Use(proc, cpuSlice, "usr")
				}
				// Response + embedded dynamic images over the LAN.
				lan.Transfer(proc, p.ResponseBytes)
				if proc.Now() >= measStart && proc.Now() < measEnd {
					completed++
					respTimes.Add(proc.Now() - start)
				}
				// Zero think time: the §7.2 worst case.
			}
		})
	}
	// Run until every client finishes its in-flight request and exits;
	// measurement only counts completions inside the window.
	k.Run()

	window := p.Measure
	pt := BrowsePoint{
		Clients:        nClients,
		Nodes:          nNodes,
		RequestsPerSec: float64(completed) / window,
		DBQueriesPS:    float64(dbQueries) / window,
		MeanResponseS:  respTimes.Mean(),
		DBUtilization:  db.MeanBusy(),
	}
	var util float64
	for _, n := range nodes {
		util += n.Utilization("")
	}
	pt.WebUtilization = util / float64(nNodes)
	return pt
}

// Figure4 sweeps client counts on a single middle-tier node, as in the
// paper's Figure 4 (16..96 clients).
func Figure4(p BrowseParams, clientCounts []int) []BrowsePoint {
	if len(clientCounts) == 0 {
		clientCounts = []int{16, 32, 48, 64, 80, 96}
	}
	out := make([]BrowsePoint, 0, len(clientCounts))
	for _, n := range clientCounts {
		out = append(out, RunBrowse(p, n, 1))
	}
	return out
}

// Figure5 sweeps middle-tier node counts at 96 clients, as in Figure 5.
func Figure5(p BrowseParams, nodeCounts []int) []BrowsePoint {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 3, 5}
	}
	out := make([]BrowsePoint, 0, len(nodeCounts))
	for _, m := range nodeCounts {
		out = append(out, RunBrowse(p, 96, m))
	}
	return out
}

// FormatBrowse renders points as an aligned table, one row per point.
func FormatBrowse(title string, pts []BrowsePoint) string {
	s := title + "\n"
	s += fmt.Sprintf("%8s %6s %10s %12s %10s %8s %8s\n",
		"clients", "nodes", "req/s", "DB q/s", "resp[s]", "webCPU", "dbBusy")
	for _, p := range pts {
		s += fmt.Sprintf("%8d %6d %10.1f %12.1f %10.2f %7.0f%% %7.0f%%\n",
			p.Clients, p.Nodes, p.RequestsPerSec, p.DBQueriesPS,
			p.MeanResponseS, p.WebUtilization*100, p.DBUtilization*100)
	}
	return s
}

// PeakThroughput returns the maximum requests/s across points.
func PeakThroughput(pts []BrowsePoint) float64 {
	peak := 0.0
	for _, p := range pts {
		peak = math.Max(peak, p.RequestsPerSec)
	}
	return peak
}

package bench

import (
	"fmt"
	"io"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// Availability under chaos: the internal/chaos harness run as an
// experiment rather than a test. Every enumerated fault schedule breaks
// one hop of a live two-replica cluster while the scripted workload
// browses and writes; the record is what fraction of requests were
// answered (live or from the degraded cache), how slow the slowest
// request was, and how fast the cluster converged after the fault
// cleared. A separate demonstration partitions the shared database away
// completely and records the graceful-degradation contract: cached
// anonymous browse still answers (marked degraded) while writes fail
// fast with the typed DB-unavailable error.

// ChaosPoint is one fault schedule's availability record.
type ChaosPoint struct {
	Schedule     string  `json:"schedule"`
	Hop          string  `json:"hop"`
	Mode         string  `json:"mode"`
	At           int     `json:"at"`
	Requests     int     `json:"requests"`
	OK           int     `json:"ok"`
	Degraded     int     `json:"degraded"`
	TypedErrors  int     `json:"typed_errors"`
	WritesAcked  int     `json:"writes_acked"`
	WritesFailed int     `json:"writes_failed"`
	Availability float64 `json:"availability"`
	MaxWallMs    float64 `json:"max_wall_ms"`
	ConvergedMs  float64 `json:"converged_ms"`
}

// ChaosDegraded records the total-database-loss demonstration.
type ChaosDegraded struct {
	BrowseServed     bool    `json:"browse_served"`      // cached anonymous browse answered
	BrowseMarked     bool    `json:"browse_marked"`      // ...tagged with the degraded marker
	BrowseRows       int     `json:"browse_rows"`        // rows in the degraded answer
	StaleWrites      uint64  `json:"stale_writes"`       // write-epochs the answer is behind
	WriteFailedTyped bool    `json:"write_failed_typed"` // write failed with the typed error
	WriteFailMs      float64 `json:"write_fail_ms"`      // ...and how fast
}

// ChaosResult is the whole experiment.
type ChaosResult struct {
	Schedules    int                `json:"schedules"`
	Points       []ChaosPoint       `json:"points"`
	ModeAvail    map[string]float64 `json:"mode_availability"` // mean availability per fault mode
	WorstWallMs  float64            `json:"worst_wall_ms"`     // slowest request anywhere
	DeadlineMs   float64            `json:"deadline_ms"`       // the bound it stayed under
	Degraded     ChaosDegraded      `json:"db_loss_degraded"`
	TotalElapsed float64            `json:"total_elapsed_s"`
}

// RunChaos executes every enumerated schedule plus the database-loss
// demonstration. logf (optional) narrates progress.
func RunChaos(logf func(string, ...any)) (*ChaosResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	scheds := chaos.Schedules()
	res := &ChaosResult{
		Schedules:  len(scheds),
		ModeAvail:  make(map[string]float64),
		DeadlineMs: 2000,
	}
	modeSum := make(map[string]float64)
	modeN := make(map[string]int)
	for i, s := range scheds {
		r, err := chaos.Run(s, chaos.Config{})
		if err != nil {
			return nil, fmt.Errorf("schedule %s: %w", s.Name(), err)
		}
		p := ChaosPoint{
			Schedule:     s.Name(),
			Hop:          string(s.Hop),
			Mode:         s.Mode.String(),
			At:           s.At,
			Requests:     r.Requests,
			OK:           r.OK,
			Degraded:     r.Degraded,
			TypedErrors:  r.TypedErr,
			WritesAcked:  r.WritesAcked,
			WritesFailed: r.WritesFailed,
			Availability: r.Available(),
			MaxWallMs:    float64(r.MaxWall) / float64(time.Millisecond),
			ConvergedMs:  float64(r.Converged) / float64(time.Millisecond),
		}
		res.Points = append(res.Points, p)
		modeSum[p.Mode] += p.Availability
		modeN[p.Mode]++
		if p.MaxWallMs > res.WorstWallMs {
			res.WorstWallMs = p.MaxWallMs
		}
		if (i+1)%10 == 0 {
			logf("chaos: %d/%d schedules", i+1, len(scheds))
		}
	}
	for m, sum := range modeSum {
		res.ModeAvail[m] = sum / float64(modeN[m])
	}
	var err error
	res.Degraded, err = runDBLossDemo()
	if err != nil {
		return nil, fmt.Errorf("db-loss demo: %w", err)
	}
	res.TotalElapsed = time.Since(start).Seconds()
	return res, nil
}

// runDBLossDemo partitions the shared database away from every replica
// and records the degradation contract.
func runDBLossDemo() (ChaosDegraded, error) {
	var out ChaosDegraded
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return out, err
	}
	defer db.Close()
	dbSrv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: db})
	if err != nil {
		return out, err
	}
	defer dbSrv.Close()
	boot, err := dm.Open(dm.Options{Node: "boot", MetaDB: db, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		return out, err
	}
	if err := boot.Bootstrap("secret"); err != nil {
		return out, err
	}
	if err := boot.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		return out, err
	}
	for i := 0; i < 24; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-demo-%04d", i), Version: 1, Owner: "sci", Public: true,
			KindHint: "flare", TStart: float64(i), TStop: float64(i + 1),
			Day: int64(i % 8), CalibVersion: 1,
		}
		if _, err := db.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return out, err
		}
	}

	gw := cluster.NewGateway(cluster.GatewayOptions{HealthInterval: time.Minute})
	defer gw.Close()
	var reps []*cluster.Replica
	var clients []*dbnet.Client
	defer func() {
		for _, r := range reps {
			r.Stop()
		}
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		cl, err := dbnet.Dial(dbnet.ClientOptions{
			Addr: dbSrv.Addr(), CallTimeout: 200 * time.Millisecond, DialTimeout: 200 * time.Millisecond,
		})
		if err != nil {
			return out, err
		}
		clients = append(clients, cl)
		rep, err := cluster.StartReplica(cluster.ReplicaOptions{Name: fmt.Sprintf("replica-%d", i), DB: cl})
		if err != nil {
			return out, err
		}
		reps = append(reps, rep)
		gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}

	f := dm.HLEFilter{Kind: "flare"}
	warm, err := gw.QueryHLEs("", "10.8.0.1", f)
	if err != nil {
		return out, fmt.Errorf("warm browse: %w", err)
	}
	si, err := gw.Authenticate("sci", "pw", "10.8.0.1", dm.SessionHLE)
	if err != nil {
		return out, fmt.Errorf("auth: %w", err)
	}

	dbSrv.Close() // the partition: every replica loses the shared database

	rows, err := gw.QueryHLEs("", "10.8.0.1", f)
	out.BrowseServed = len(rows) == len(warm)
	out.BrowseMarked = cluster.IsDegraded(err)
	out.BrowseRows = len(rows)
	var de *cluster.DegradedError
	if d, ok := err.(*cluster.DegradedError); ok {
		de = d
		out.StaleWrites = de.StaleWrites
	}

	t0 := time.Now()
	_, werr := gw.CreateHLE(si.Token, "10.8.0.1", &schema.HLE{
		KindHint: "flare", Day: 1, TStart: 7777, TStop: 7778, Version: 1, CalibVersion: 1,
	})
	out.WriteFailMs = float64(time.Since(t0)) / float64(time.Millisecond)
	out.WriteFailedTyped = dm.IsDBUnavailable(werr)
	return out, nil
}

// FormatChaos renders the experiment in the repo's table style.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos — availability under enumerated network faults (%d schedules)\n", r.Schedules)
	fmt.Fprintf(&b, "  %-12s %12s %14s\n", "fault mode", "schedules", "availability")
	modes := make([]string, 0, len(r.ModeAvail))
	for m := range r.ModeAvail {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		n := 0
		for _, p := range r.Points {
			if p.Mode == m {
				n++
			}
		}
		fmt.Fprintf(&b, "  %-12s %12d %13.1f%%\n", m, n, 100*r.ModeAvail[m])
	}
	fmt.Fprintf(&b, "  slowest request anywhere: %.0f ms (bound: %.0f ms)\n", r.WorstWallMs, r.DeadlineMs)
	d := r.Degraded
	fmt.Fprintf(&b, "  database partitioned away: browse served=%v marked-degraded=%v (%d rows, %d writes behind); write failed typed=%v in %.0f ms\n",
		d.BrowseServed, d.BrowseMarked, d.BrowseRows, d.StaleWrites, d.WriteFailedTyped, d.WriteFailMs)
	return b.String()
}

package bench

import (
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Ingest experiment (Tables 1–3 data preparation, measured). The paper's
// processing tables hinge on data that has been loaded: raw units stored,
// views pre-computed, events detected. This experiment measures that
// loading path end to end on the real engine — not the discrete-event
// simulation — in three configurations that isolate the fast-ingest
// machinery:
//
//	serial    one LoadUnit at a time (one fsync per tuple transaction)
//	grouped   N concurrent LoadUnit workers; every single-statement write
//	          rides the engine's group-commit path, so concurrent
//	          committers share WAL fsyncs
//	pipeline  LoadUnits: batched transactions (3 per unit), bulk id
//	          allocation, and a derive/store worker pipeline
//
// Each configuration runs both against a local on-disk engine and through
// dbnet (the Figure 5 deployment, where a replica's every statement is a
// network round trip — the configuration batching helps most).

// IngestParams sizes the experiment.
type IngestParams struct {
	Day         int     // synthetic mission day number (seed)
	DayLength   float64 // seconds of observation to generate
	UnitSeconds float64 // segmentation granularity
	Workers     int     // grouped/pipeline concurrency (0 = a sensible default)
	Reps        int     // repetitions per cell, best kept (0 = 1)
}

// DefaultIngestParams: ~96 units, a few hundred thousand photons — enough
// work that per-transaction fsyncs dominate the serial configuration.
// Three reps per cell with best-of kept: ingest cells are fsync-bound, and
// fsync latency on a shared host is long-tailed, so the best rep is the
// stable estimate of the configuration's floor.
func DefaultIngestParams() IngestParams {
	return IngestParams{Day: 11, DayLength: 14400, UnitSeconds: 150, Reps: 3}
}

// IngestResult is one cell of the experiment.
type IngestResult struct {
	Engine        string  `json:"engine"` // local | dbnet
	Mode          string  `json:"mode"`   // serial | grouped | pipeline
	Units         int     `json:"units"`
	Photons       int     `json:"photons"`
	Seconds       float64 `json:"seconds"`
	UnitsPerSec   float64 `json:"units_per_sec"`
	PhotonsPerSec float64 `json:"photons_per_sec"`
	Speedup       float64 `json:"speedup_vs_serial"` // within the same engine
}

// ingestEnv is one fresh repository for one cell: an on-disk engine (WAL
// fsyncs are the serial bottleneck being measured), optionally served over
// a real TCP loopback via dbnet.
type ingestEnv struct {
	d   *dm.DM
	db  *minidb.DB
	srv *dbnet.Server
	cl  *dbnet.Client
	dir string
}

func newIngestEnv(engine string) (*ingestEnv, error) {
	dir, err := os.MkdirTemp("", "hedc-ingest")
	if err != nil {
		return nil, err
	}
	env := &ingestEnv{dir: dir}
	env.db, err = minidb.Open(filepath.Join(dir, "db"), schema.AllSchemas()...)
	if err != nil {
		env.Close()
		return nil, err
	}
	var eng minidb.Engine = env.db
	if engine == "dbnet" {
		env.srv, err = dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: env.db})
		if err != nil {
			env.Close()
			return nil, err
		}
		env.cl, err = dbnet.Dial(dbnet.ClientOptions{Addr: env.srv.Addr(), PoolSize: 16})
		if err != nil {
			env.Close()
			return nil, err
		}
		eng = env.cl
	}
	arch, err := archive.New("disk-0", archive.Disk, filepath.Join(dir, "arch"), 0)
	if err != nil {
		env.Close()
		return nil, err
	}
	env.d, err = dm.Open(dm.Options{
		Node: "bench-ingest", MetaDB: eng, DefaultArchive: "disk-0",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		env.Close()
		return nil, err
	}
	if err := env.d.RegisterArchive(arch, "/a"); err != nil {
		env.Close()
		return nil, err
	}
	if err := env.d.Bootstrap("secret"); err != nil {
		env.Close()
		return nil, err
	}
	return env, nil
}

func (e *ingestEnv) Close() {
	if e.cl != nil {
		e.cl.Close()
	}
	if e.srv != nil {
		e.srv.Close()
	}
	if e.db != nil {
		e.db.Close()
	}
	if e.dir != "" {
		os.RemoveAll(e.dir)
	}
}

// IngestUnits generates the experiment's unit set (deterministic per params).
func IngestUnits(p IngestParams) []*telemetry.Unit {
	day := telemetry.GenerateDay(p.Day, telemetry.Config{DayLength: p.DayLength})
	return telemetry.SegmentDay(day, p.UnitSeconds)
}

// IngestCell runs one (engine, mode) cell on a fresh repository and
// returns its throughput.
func IngestCell(engine, mode string, p IngestParams, units []*telemetry.Unit) (IngestResult, error) {
	if units == nil {
		units = IngestUnits(p)
	}
	workers := p.Workers
	if workers <= 0 {
		// Not GOMAXPROCS: ingest concurrency pays off even on one core
		// because the waits (fsyncs, network round trips) overlap.
		workers = 8
		if n := runtime.GOMAXPROCS(0); n > workers {
			workers = n
		}
	}
	photons := 0
	for _, u := range units {
		photons += len(u.Photons)
	}
	env, err := newIngestEnv(engine)
	if err != nil {
		return IngestResult{}, err
	}
	defer env.Close()

	start := time.Now()
	switch mode {
	case "serial":
		for _, u := range units {
			if _, err := env.d.LoadUnit(u); err != nil {
				return IngestResult{}, err
			}
		}
	case "grouped":
		jobs := make(chan *telemetry.Unit)
		errs := make(chan error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range jobs {
					if _, err := env.d.LoadUnit(u); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}()
		}
		for _, u := range units {
			jobs <- u
		}
		close(jobs)
		wg.Wait()
		select {
		case err := <-errs:
			return IngestResult{}, err
		default:
		}
	case "pipeline":
		if _, err := env.d.LoadUnits(units, workers); err != nil {
			return IngestResult{}, err
		}
	default:
		return IngestResult{}, fmt.Errorf("bench: unknown ingest mode %q", mode)
	}
	secs := time.Since(start).Seconds()

	// Sanity: every unit must actually be in the repository.
	if n := env.d.Stats().UnitsLoaded.Load(); int(n) != len(units) {
		return IngestResult{}, fmt.Errorf("bench: %s/%s loaded %d of %d units", engine, mode, n, len(units))
	}
	return IngestResult{
		Engine: engine, Mode: mode,
		Units: len(units), Photons: photons, Seconds: secs,
		UnitsPerSec:   float64(len(units)) / secs,
		PhotonsPerSec: float64(photons) / secs,
	}, nil
}

// RunIngest runs the full engine × mode sweep.
func RunIngest(p IngestParams, logf func(string, ...any)) ([]IngestResult, error) {
	units := IngestUnits(p)
	reps := p.Reps
	if reps <= 0 {
		reps = 1
	}
	var out []IngestResult
	for _, engine := range []string{"local", "dbnet"} {
		var serial float64
		for _, mode := range []string{"serial", "grouped", "pipeline"} {
			var r IngestResult
			for rep := 0; rep < reps; rep++ {
				c, err := IngestCell(engine, mode, p, units)
				if err != nil {
					return out, err
				}
				if rep == 0 || c.UnitsPerSec > r.UnitsPerSec {
					r = c
				}
			}
			if mode == "serial" {
				serial = r.UnitsPerSec
			}
			if serial > 0 {
				r.Speedup = r.UnitsPerSec / serial
			}
			if logf != nil {
				logf("ingest %s/%s: %.1f units/s (%.2fx)", engine, mode, r.UnitsPerSec, r.Speedup)
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// FormatIngest renders the sweep in the evaluation's tabular style.
func FormatIngest(results []IngestResult) string {
	var b strings.Builder
	if len(results) > 0 {
		fmt.Fprintf(&b, "Ingest — data preparation throughput (%d units, %d photons)\n",
			results[0].Units, results[0].Photons)
	}
	fmt.Fprintf(&b, "  %-6s %-9s %10s %12s %9s\n", "engine", "mode", "units/s", "photons/s", "speedup")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-6s %-9s %10.2f %12.0f %8.2fx\n",
			r.Engine, r.Mode, r.UnitsPerSec, r.PhotonsPerSec, r.Speedup)
	}
	return b.String()
}

package bench

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// Live Figure 5: the same sweep as Figure5, but measured instead of
// simulated — 96 real client goroutines browsing through a real gateway
// over 1..5 real replicas, every replica a full DM dialing one shared
// minidb served over dbnet's wire protocol. The shared database carries
// the calibrated ~120 ops/s ceiling, each replica the calibrated
// per-node CPU and thrash model, so the measured curve should reproduce
// the simulated (and published) shape: throughput climbs with replicas
// and flattens at the shared-database ceiling.

// LiveParams configures the measured sweep.
type LiveParams struct {
	// Base supplies the calibration (DB ceiling, CPU demand, thrash).
	Base BrowseParams
	// Clients is the closed-loop client population (Figure 5 uses 96).
	Clients int
	// Nodes are the replica counts to sweep (default 1,2,3,5).
	Nodes []int
	// HLEs is the seeded public event population.
	HLEs int
	// Filters is the rotating distinct-filter space the clients browse;
	// more filters means more distinct cache keys per replica.
	Filters int
	// Warmup and Measure bound each point's real-time window.
	Warmup, Measure time.Duration
	// TimeScale scales every model sleep (CPU bursts, DB service time)
	// by this factor so a sweep finishes quickly: 0.1 runs a 10x-faster
	// system whose *normalized* throughput matches TimeScale=1. Reported
	// numbers are normalized back.
	TimeScale float64
	// WriteEveryMS is the background writer cadence in model
	// milliseconds: a committed update bumps the HLE epoch, invalidating
	// every replica's count cache, as live ingest does. 0 disables.
	WriteEveryMS int
}

// DefaultLiveParams mirrors the Figure 5 testbed at 1/10 time scale.
func DefaultLiveParams() LiveParams {
	return LiveParams{
		Base:         DefaultBrowseParams(),
		Clients:      96,
		Nodes:        []int{1, 2, 3, 5},
		HLEs:         400,
		Filters:      20,
		Warmup:       500 * time.Millisecond,
		Measure:      4 * time.Second,
		TimeScale:    0.1,
		WriteEveryMS: 250,
	}
}

// LivePoint is one measured configuration. Rates are normalized to
// TimeScale=1 so they compare directly with BrowsePoint and the paper.
type LivePoint struct {
	Nodes          int     `json:"nodes"`
	Clients        int     `json:"clients"`
	RequestsPerSec float64 `json:"req_per_sec"`
	DBOpsPerSec    float64 `json:"db_ops_per_sec"`
	MeanResponseS  float64 `json:"mean_response_s"` // normalized seconds
	Failovers      int64   `json:"failovers"`
	ClientErrors   int64   `json:"client_errors"`
}

// Figure5Live measures the live replicated middle tier at each replica
// count. One shared networked database persists across the sweep;
// replicas and the gateway are rebuilt per point.
func Figure5Live(p LiveParams, logger *log.Logger) ([]LivePoint, error) {
	if p.Clients <= 0 {
		p.Clients = 96
	}
	if len(p.Nodes) == 0 {
		p.Nodes = []int{1, 2, 3, 5}
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	if p.HLEs <= 0 {
		p.HLEs = 400
	}
	if p.Filters <= 0 {
		p.Filters = 20
	}

	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// The shared database: the calibrated ceiling, sped up by TimeScale.
	dbSrv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{
		DB:           db,
		MaxOpsPerSec: p.Base.DBMaxQueriesPerSec / p.TimeScale,
	})
	if err != nil {
		return nil, err
	}
	defer dbSrv.Close()

	if err := seedLiveHLEs(db, p.HLEs, p.Filters); err != nil {
		return nil, err
	}

	out := make([]LivePoint, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		pt, err := runLivePoint(p, dbSrv, db, n, logger)
		if err != nil {
			return nil, err
		}
		if logger != nil {
			logger.Printf("bench: live fig5 point nodes=%d req/s=%.1f db=%.1f", n, pt.RequestsPerSec, pt.DBOpsPerSec)
		}
		out = append(out, pt)
	}
	return out, nil
}

func seedLiveHLEs(db *minidb.DB, nHLEs, filters int) error {
	for i := 0; i < nHLEs; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-live-%05d", i), Version: 1, Owner: "loader", Public: true,
			KindHint: "flare", TStart: float64(i), TStop: float64(i + 1),
			Day: int64(i % filters), CalibVersion: 1,
		}
		if _, err := db.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return err
		}
	}
	return nil
}

func runLivePoint(p LiveParams, dbSrv *dbnet.Server, db *minidb.DB, nodes int, logger *log.Logger) (LivePoint, error) {
	// Per-call CPU burst: the page's calibrated demand split over its
	// API calls, exactly as the simulator splits it over slices.
	perCall := time.Duration(p.Base.WebCPUDemand / float64(p.Base.QueriesPerRequest) *
		p.TimeScale * float64(time.Second))
	capModel := cluster.Capacity{
		Workers:         int(p.Base.WebCores),
		CPUPerCall:      perCall,
		ThrashThreshold: int(p.Base.Thrash.Threshold),
		ThrashFactor:    p.Base.Thrash.Factor,
	}

	gw := cluster.NewGateway(cluster.GatewayOptions{HealthInterval: 200 * time.Millisecond})
	defer gw.Close()
	var replicas []*cluster.Replica
	var clients []*dbnet.Client
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < nodes; i++ {
		cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: dbSrv.Addr()})
		if err != nil {
			return LivePoint{}, err
		}
		clients = append(clients, cl)
		rep, err := cluster.StartReplica(cluster.ReplicaOptions{
			Name: fmt.Sprintf("live-%d-%d", nodes, i), DB: cl, Capacity: capModel, Logger: logger,
		})
		if err != nil {
			return LivePoint{}, err
		}
		replicas = append(replicas, rep)
		gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}

	stop := make(chan struct{})
	// Background writer: live ingest keeps committing, bumping the HLE
	// epoch so replica caches must revalidate — without it, every count
	// becomes a cache hit and the DB ceiling never binds.
	writerDone := make(chan struct{})
	if p.WriteEveryMS > 0 {
		go func() {
			defer close(writerDone)
			cadence := time.Duration(float64(p.WriteEveryMS) * p.TimeScale * float64(time.Millisecond))
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(cadence):
				}
				// Rewriting an existing row commits a transaction (epoch
				// bump) without growing the table.
				res, err := db.Query(minidb.Query{
					Table: schema.TableHLE,
					Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq,
						Val: minidb.S(fmt.Sprintf("hle-live-%05d", i%p.HLEs))}},
				})
				if err != nil || len(res.RowIDs) == 0 {
					continue
				}
				_ = db.Update(schema.TableHLE, res.RowIDs[0], res.Rows[0])
				i++
			}
		}()
	} else {
		close(writerDone)
	}

	type window struct {
		pages   int64
		respSum time.Duration
		errs    int64
	}
	results := make([]window, p.Clients)
	measuring := make(chan struct{})
	done := make(chan struct{})
	var clientWG sync.WaitGroup

	for c := 0; c < p.Clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			w := &results[c]
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				// One browse page, the §7.2 anatomy: a result-list query,
				// its count, and detail fetches — QueriesPerRequest calls
				// against the shared database.
				f := dm.HLEFilter{
					Kind: "flare", HasDay: true, Day: int64(i % p.Filters),
					Limit: p.Base.QueriesPerRequest - 2,
				}
				ok := true
				hles, err := gw.QueryHLEs("", "10.1.0.1", f)
				if err != nil {
					ok = false
				}
				if ok {
					if _, err := gw.CountHLEs("", "10.1.0.1", f); err != nil {
						ok = false
					}
				}
				for j := 0; ok && j < len(hles); j++ {
					if _, err := gw.GetHLE("", "10.1.0.1", hles[j].ID); err != nil {
						ok = false
					}
				}
				inWindow := false
				select {
				case <-measuring:
					select {
					case <-done:
					default:
						inWindow = true
					}
				default:
				}
				if inWindow {
					if ok {
						w.pages++
						w.respSum += time.Since(start)
					} else {
						w.errs++
					}
				}
			}
		}(c)
	}

	time.Sleep(p.Warmup)
	ops0 := dbSrv.Ops()
	failovers0 := gw.Failovers()
	close(measuring)
	time.Sleep(p.Measure)
	close(done)
	opsDelta := dbSrv.Ops() - ops0
	close(stop)
	<-writerDone
	clientWG.Wait()

	var pages, errs int64
	var respSum time.Duration
	for i := range results {
		pages += results[i].pages
		errs += results[i].errs
		respSum += results[i].respSum
	}
	meas := p.Measure.Seconds()
	pt := LivePoint{
		Nodes:          nodes,
		Clients:        p.Clients,
		RequestsPerSec: float64(pages) / meas * p.TimeScale,
		DBOpsPerSec:    float64(opsDelta) / meas * p.TimeScale,
		Failovers:      gw.Failovers() - failovers0,
		ClientErrors:   errs,
	}
	if pages > 0 {
		pt.MeanResponseS = respSum.Seconds() / float64(pages) / p.TimeScale
	}
	return pt, nil
}

// FormatLive renders live points next to the simulated curve.
func FormatLive(title string, live []LivePoint, simulated []BrowsePoint) string {
	s := title + "\n"
	s += fmt.Sprintf("%6s %8s %12s %14s %12s %10s\n",
		"nodes", "clients", "live req/s", "live DB op/s", "sim req/s", "resp[s]")
	for _, lp := range live {
		simReq := "-"
		for _, sp := range simulated {
			if sp.Nodes == lp.Nodes {
				simReq = fmt.Sprintf("%.1f", sp.RequestsPerSec)
			}
		}
		s += fmt.Sprintf("%6d %8d %12.1f %14.1f %12s %10.2f\n",
			lp.Nodes, lp.Clients, lp.RequestsPerSec, lp.DBOpsPerSec, simReq, lp.MeanResponseS)
	}
	return s
}

package bench

import (
	"testing"
	"time"
)

// TestFigure5LiveShape runs a scaled-down live sweep and checks the
// Figure 5 shape: more replicas means more throughput (one node is
// thrashed by the client population), zero client-visible errors, and a
// database ceiling that is respected, not exceeded.
func TestFigure5LiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live cluster measurement")
	}
	if raceEnabled {
		t.Skip("race-detector slowdown swamps the scaled capacity model")
	}
	p := DefaultLiveParams()
	p.Clients = 32
	p.Nodes = []int{1, 3}
	p.HLEs = 120
	p.Filters = 12
	p.TimeScale = 0.02
	p.Warmup = 300 * time.Millisecond
	p.Measure = 1200 * time.Millisecond

	pts, err := Figure5Live(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	one, three := pts[0], pts[1]
	for _, pt := range pts {
		if pt.ClientErrors != 0 {
			t.Fatalf("nodes=%d: %d client errors", pt.Nodes, pt.ClientErrors)
		}
		if pt.RequestsPerSec <= 0 {
			t.Fatalf("nodes=%d: no throughput", pt.Nodes)
		}
		// The shared station must cap normalized DB throughput at the
		// calibrated ceiling (some slack for window-edge effects).
		if pt.DBOpsPerSec > p.Base.DBMaxQueriesPerSec*1.25 {
			t.Fatalf("nodes=%d: DB %.1f ops/s exceeds ceiling %.0f",
				pt.Nodes, pt.DBOpsPerSec, p.Base.DBMaxQueriesPerSec)
		}
	}
	// 32 clients thrash a single node (threshold 16); three nodes carry
	// ~11 each and should clearly outperform it.
	if three.RequestsPerSec < one.RequestsPerSec*1.3 {
		t.Fatalf("throughput did not scale with replicas: 1 node %.1f req/s, 3 nodes %.1f req/s",
			one.RequestsPerSec, three.RequestsPerSec)
	}
}

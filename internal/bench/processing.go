package bench

import (
	"fmt"

	"repro/internal/sim"
)

// Table 1 — the §8 processing evaluation. A 2×177 MHz SUN server holds the
// data and (optionally) runs analyses; a 400 MHz Linux PC is a processing
// client pulling data over a 2 MB/s HTTP link. 50 MB of raw data in 50
// files; requests submitted so that no more than 20 are in the system.
// Configurations differ in how many analyses run concurrently on the
// server and on the client.

// Workload describes one test series (imaging or histogram).
type Workload struct {
	Name     string
	Requests int
	// UniqueInputBytes is the distinct raw data on disk (50 MB in 50
	// files for both series); analyses share files, so per-analysis reads
	// exceed it.
	UniqueInputBytes int64
	// Per-analysis input actually read (bytes) and output produced.
	InputBytes  int64
	OutputBytes int64
	// Net computation per analysis (seconds of one core).
	ServerCompute float64
	ClientCompute float64
	// DM interactions per analysis (§8.2: 3 queries, 2 edits).
	Queries int
	Edits   int
}

// ImagingWorkload is the §8.2 test: 100 CPU-intensive image requests.
func ImagingWorkload() Workload {
	return Workload{
		Name:             "imaging",
		Requests:         100,
		UniqueInputBytes: 50 << 20,
		// "the computation of an image takes about 20 s on an input data
		// set of 800 KB on the processing client, and 60 s on the server."
		InputBytes:    800 << 10,
		OutputBytes:   56 << 10, // 5.5 MB over 100 GIFs
		ServerCompute: 60,
		ClientCompute: 20,
		Queries:       3,
		Edits:         2,
	}
}

// HistogramWorkload is the §8.3 test: 150 I/O-heavier, short requests.
func HistogramWorkload() Workload {
	return Workload{
		Name:             "histogram",
		Requests:         150,
		UniqueInputBytes: 50 << 20,
		// "about 2-3 s per 300 KB input data on the processing client and
		// 5-7 s on the server."
		InputBytes:    334 << 10,
		OutputBytes:   8 << 10, // 1.2 MB over 150 GIFs
		ServerCompute: 6,
		ClientCompute: 2.5,
		Queries:       3,
		Edits:         2,
	}
}

// ProcessingParams calibrates the testbed-wide constants.
type ProcessingParams struct {
	ServerCores float64 // 2 (dual SPARC)
	ClientCores float64 // 1 (the Linux PC)
	// LinkBytesPerSec is the HTTP path between client and server (2 MB/s).
	LinkBytesPerSec float64
	// DMOverhead is the per-analysis coordination work (core-seconds)
	// executed on the server: query/edit handling, staging, logging.
	DMOverhead float64
	// DispatchLocal is the serialized frontend work to schedule one job
	// onto a server interpreter; DispatchRemote the (larger) cost to
	// drive a job on the remote client through the fault-tolerant
	// protocol — the §8.4 observation that short analyses leave the
	// client CPU unsaturated.
	DispatchLocal  float64
	DispatchRemote float64
	// MaxInSystem caps admitted requests (the paper's bound of 20).
	MaxInSystem int
	// SubmitWindow is how many requests the workload driver actually keeps
	// outstanding. Little's law over the paper's own Table 1 (N = X·T)
	// gives ~1.8 for every configuration, so the driver paced submissions
	// at about two in flight; 20 was only the upper bound.
	SubmitWindow int
	// QueryServiceS is the DB time per query/edit ("almost constant and
	// equal in all scenarios").
	QueryServiceS float64
}

// DefaultProcessingParams returns the calibration used in EXPERIMENTS.md.
func DefaultProcessingParams() ProcessingParams {
	return ProcessingParams{
		ServerCores:     2,
		ClientCores:     1,
		LinkBytesPerSec: 2 << 20,
		DMOverhead:      0.6,
		DispatchLocal:   0.35,
		DispatchRemote:  2.8,
		MaxInSystem:     20,
		SubmitWindow:    3,
		QueryServiceS:   0.01,
	}
}

// Slot describes one processing executor.
type slot struct {
	onClient bool
}

// ProcConfig is one Table 1 column: how many concurrent analyses run on the
// server (S) and on the client (C), and whether client input is already
// cached on its scratch space.
type ProcConfig struct {
	Label        string
	ServerSlots  int
	ClientSlots  int
	ClientCached bool
}

// Table1Configs returns the paper's measured configurations for a series.
// withCached adds the histogram-only "client/cached" column.
func Table1Configs(withCached bool) []ProcConfig {
	cfgs := []ProcConfig{
		{Label: "S/1", ServerSlots: 1},
		{Label: "S/2", ServerSlots: 2},
		{Label: "C/1", ClientSlots: 1},
	}
	if withCached {
		cfgs = append(cfgs, ProcConfig{Label: "C/cached", ClientSlots: 1, ClientCached: true})
	}
	cfgs = append(cfgs, ProcConfig{Label: "S+C/2+1", ServerSlots: 2, ClientSlots: 1})
	return cfgs
}

// ProcPoint is one measured configuration of Table 1.
type ProcPoint struct {
	Config       ProcConfig
	Workload     string
	DurationS    float64
	TurnoverGBd  float64 // input GB processed per day at this rate
	MeanSojournS float64
	SysCPUServer float64 // fractions 0..1
	UsrCPUServer float64
	SysCPUClient float64
	UsrCPUClient float64
	Queries      int64
	Edits        int64
	InputMB      float64
	OutputMB     float64
}

// RunProcessing simulates one (workload, configuration) cell of Table 1.
func RunProcessing(p ProcessingParams, w Workload, cfg ProcConfig) ProcPoint {
	k := sim.NewKernel()
	serverCPU := sim.NewCPU(k, p.ServerCores, sim.Thrash{})
	clientCPU := sim.NewCPU(k, p.ClientCores, sim.Thrash{})
	link := sim.NewLink(k, 0.005, p.LinkBytesPerSec)
	dispatcher := sim.NewResource(k, 1) // central scheduling is serial
	window := p.SubmitWindow
	if window <= 0 || window > p.MaxInSystem {
		window = p.MaxInSystem
	}
	admission := sim.NewResource(k, window)

	// Free slots: a buffered channel-like queue via resources per side.
	var slots []*slot
	for i := 0; i < cfg.ServerSlots; i++ {
		slots = append(slots, &slot{onClient: false})
	}
	for i := 0; i < cfg.ClientSlots; i++ {
		slots = append(slots, &slot{onClient: true})
	}
	// Executor pool: a FIFO semaphore guards the free-slot list (the
	// kernel is logically single-threaded, so plain slice ops are safe
	// once the semaphore is held).
	slotSem := sim.NewResource(k, len(slots))
	freeSlots := slots

	var sojourn sim.Tally
	var queries, edits int64

	for r := 0; r < w.Requests; r++ {
		k.Go(fmt.Sprintf("req-%d", r), func(proc *sim.Proc) {
			admission.Acquire(proc) // ≤ 20 in system
			start := proc.Now()

			// Claim whichever executor frees first.
			slotSem.Acquire(proc)
			sl := freeSlots[0]
			freeSlots = freeSlots[1:]

			// Dispatch through the serial frontend; remote jobs pay the
			// fault-tolerant protocol premium.
			dispatch := p.DispatchLocal
			if sl.onClient {
				dispatch = p.DispatchRemote
			}
			dispatcher.Acquire(proc)
			serverCPU.Use(proc, dispatch, "sys")
			dispatcher.Release()

			// DM interactions: queries before, edits after (server side).
			for q := 0; q < w.Queries; q++ {
				serverCPU.Use(proc, p.QueryServiceS, "sys")
				queries++
			}
			// Coordination / data management for the analysis.
			serverCPU.Use(proc, p.DMOverhead, "sys")

			if sl.onClient {
				if !cfg.ClientCached {
					link.Transfer(proc, w.InputBytes) // stage input
				}
				clientCPU.Use(proc, 0.1, "sys") // local job handling
				clientCPU.Use(proc, w.ClientCompute, "usr")
				link.Transfer(proc, w.OutputBytes) // deliver results
			} else {
				serverCPU.Use(proc, w.ServerCompute, "usr")
			}

			for e := 0; e < w.Edits; e++ {
				serverCPU.Use(proc, p.QueryServiceS, "sys")
				edits++
			}

			freeSlots = append(freeSlots, sl)
			slotSem.Release()
			sojourn.Add(proc.Now() - start)
			admission.Release()
		})
	}
	end := k.Run()

	inputMB := float64(w.UniqueInputBytes) / (1 << 20)
	pt := ProcPoint{
		Config:       cfg,
		Workload:     w.Name,
		DurationS:    end,
		MeanSojournS: sojourn.Mean(),
		Queries:      queries,
		Edits:        edits,
		InputMB:      inputMB,
		OutputMB:     float64(w.Requests) * float64(w.OutputBytes) / (1 << 20),
	}
	if end > 0 {
		// Turnover counts data through the system: unique input plus the
		// produced output (matches the paper's Table 1 arithmetic).
		pt.TurnoverGBd = (inputMB + pt.OutputMB) / 1024 / (end / 86400)
		pt.SysCPUServer = serverCPU.BusySeconds("sys") / (end * p.ServerCores)
		pt.UsrCPUServer = serverCPU.BusySeconds("usr") / (end * p.ServerCores)
		pt.SysCPUClient = clientCPU.BusySeconds("sys") / (end * p.ClientCores)
		pt.UsrCPUClient = clientCPU.BusySeconds("usr") / (end * p.ClientCores)
	}
	return pt
}

// Table1 runs a full test series across its configurations.
func Table1(p ProcessingParams, w Workload) []ProcPoint {
	cfgs := Table1Configs(w.Name == "histogram")
	out := make([]ProcPoint, 0, len(cfgs))
	for _, cfg := range cfgs {
		out = append(out, RunProcessing(p, w, cfg))
	}
	return out
}

// FormatTable1 renders a series in the layout of the paper's Table 1.
func FormatTable1(pts []ProcPoint) string {
	if len(pts) == 0 {
		return ""
	}
	s := fmt.Sprintf("Table 1 — %s test\n", pts[0].Workload)
	row := func(label string, f func(ProcPoint) string) {
		s += fmt.Sprintf("%-28s", label)
		for _, p := range pts {
			s += fmt.Sprintf("%12s", f(p))
		}
		s += "\n"
	}
	row("Processing on", func(p ProcPoint) string { return p.Config.Label })
	row("Overall duration [s]", func(p ProcPoint) string { return fmt.Sprintf("%.0f", p.DurationS) })
	row("Turnover [GB/day]", func(p ProcPoint) string { return fmt.Sprintf("%.1f", p.TurnoverGBd) })
	row("Avg. sojourn time [s]", func(p ProcPoint) string { return fmt.Sprintf("%.0f", p.MeanSojournS) })
	row("Avg. sys CPU server [%]", func(p ProcPoint) string { return fmt.Sprintf("%.0f", p.SysCPUServer*100) })
	row("Avg. usr CPU server [%]", func(p ProcPoint) string { return fmt.Sprintf("%.0f", p.UsrCPUServer*100) })
	row("Avg. sys CPU client [%]", func(p ProcPoint) string {
		if p.Config.ClientSlots == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", p.SysCPUClient*100)
	})
	row("Avg. usr CPU client [%]", func(p ProcPoint) string {
		if p.Config.ClientSlots == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", p.UsrCPUClient*100)
	})
	return s
}

// Characteristics reproduces Tables 2 and 3: the workload description rows.
type Characteristics struct {
	Workload string
	Requests int
	InputMB  float64
	OutputMB float64
	Queries  int
	Edits    int
}

// WorkloadCharacteristics derives a series' Table 2/3 rows.
func WorkloadCharacteristics(w Workload) Characteristics {
	return Characteristics{
		Workload: w.Name,
		Requests: w.Requests,
		InputMB:  float64(w.UniqueInputBytes) / (1 << 20),
		OutputMB: float64(w.Requests) * float64(w.OutputBytes) / (1 << 20),
		Queries:  w.Requests * w.Queries,
		Edits:    w.Requests * w.Edits,
	}
}

// FormatCharacteristics renders Table 2 or 3.
func FormatCharacteristics(c Characteristics, tableNo int) string {
	return fmt.Sprintf(`Table %d — characteristics of the %s test
Requests      %d
Input [MB]    %.1f
Output [MB]   %.1f
Queries       %d
Edits         %d
`, tableNo, c.Workload, c.Requests, c.InputMB, c.OutputMB, c.Queries, c.Edits)
}

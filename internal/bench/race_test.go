//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in; its
// ~10x slowdown swamps the scaled model sleeps that timing-sensitive
// measurements depend on.
const raceEnabled = true

package bench

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/colseg"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/shard"
)

// Sharded Figure 5: the measured live sweep with the single shared
// database replaced by N shard databases behind a shard.Router in every
// replica. Each shard server carries the same calibrated ~120 ops/s
// ceiling the single database had, so with 2 shards the aggregate
// database budget doubles and throughput must keep climbing past the
// replica counts where the single-DB curve went flat — the ROADMAP
// item 1 claim, measured.
//
// Correctness is not assumed: before and after every shard count's
// sweep, a battery of scatter queries, counts and columnar analytics
// runs through the router AND through a single unsharded oracle holding
// identical rows, and the run hard-fails unless every result is
// bit-identical (math.Float64bits on every float, exact match on
// everything else).

// ShardedParams configures the sharded measured sweep.
type ShardedParams struct {
	// Base supplies the calibration (per-shard DB ceiling, CPU, thrash).
	Base BrowseParams
	// Clients is the closed-loop client population.
	Clients int
	// Shards are the shard counts to sweep (default 1,2 — the single-DB
	// baseline and the ceiling-doubled cell).
	Shards []int
	// Nodes are the replica counts to sweep per shard count.
	Nodes []int
	// HLEs / Filters shape the seeded catalog, as in LiveParams.
	HLEs    int
	Filters int
	// Warmup and Measure bound each point's real-time window.
	Warmup, Measure time.Duration
	// TimeScale scales every model sleep, as in LiveParams.
	TimeScale float64
	// WriteEveryMS is the background writer cadence in model
	// milliseconds; writes rotate across shards, exercising the
	// per-shard epoch invalidation. 0 disables.
	WriteEveryMS int
}

// DefaultShardedParams mirrors DefaultLiveParams with the node sweep
// extended past the single-DB flat zone.
func DefaultShardedParams() ShardedParams {
	return ShardedParams{
		Base:         DefaultBrowseParams(),
		Clients:      96,
		Shards:       []int{1, 2},
		Nodes:        []int{1, 2, 3, 5, 8},
		HLEs:         400,
		Filters:      20,
		Warmup:       500 * time.Millisecond,
		Measure:      4 * time.Second,
		TimeScale:    0.1,
		WriteEveryMS: 250,
	}
}

// ShardedPoint is one measured (shards, nodes) configuration,
// normalized to TimeScale=1.
type ShardedPoint struct {
	Shards         int     `json:"shards"`
	Nodes          int     `json:"nodes"`
	Clients        int     `json:"clients"`
	RequestsPerSec float64 `json:"req_per_sec"`
	DBOpsPerSec    float64 `json:"db_ops_per_sec"` // summed across shards
	MeanResponseS  float64 `json:"mean_response_s"`
	ClientErrors   int64   `json:"client_errors"`
}

// ShardedResult is the whole sweep plus its correctness accounting.
type ShardedResult struct {
	Points []ShardedPoint `json:"points"`
	// OracleChecks counts scatter-gather results proven bit-identical to
	// the single-node oracle. The sweep hard-fails on any mismatch, so a
	// surviving result implies every check passed.
	OracleChecks int `json:"oracle_checks"`
}

// Figure5Sharded measures the sharded cell at every (shards, nodes)
// configuration.
func Figure5Sharded(p ShardedParams, logger *log.Logger) (*ShardedResult, error) {
	if p.Clients <= 0 {
		p.Clients = 96
	}
	if len(p.Shards) == 0 {
		p.Shards = []int{1, 2}
	}
	if len(p.Nodes) == 0 {
		p.Nodes = []int{1, 2, 3, 5, 8}
	}
	if p.TimeScale <= 0 {
		p.TimeScale = 1
	}
	if p.HLEs <= 0 {
		p.HLEs = 400
	}
	if p.Filters <= 0 {
		p.Filters = 20
	}

	out := &ShardedResult{}
	for _, nShards := range p.Shards {
		if err := runShardedSweep(p, nShards, logger, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runShardedSweep stands up one shard count's databases, seeds them and
// the oracle identically, proves the router bit-identical, sweeps the
// node counts, and proves it again after the writer has churned epochs.
func runShardedSweep(p ShardedParams, nShards int, logger *log.Logger, out *ShardedResult) error {
	var dbs []*minidb.DB
	var srvs []*dbnet.Server
	var addrs []string
	engines := make(map[int]minidb.Engine, nShards)
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
		for _, db := range dbs {
			db.Close()
		}
	}()
	for i := 0; i < nShards; i++ {
		db, err := minidb.Open("", schema.AllSchemas()...)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
		// Every shard server carries the same calibrated ceiling the
		// single shared database had: sharding multiplies the aggregate
		// budget instead of splitting it.
		srv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{
			DB:           db,
			MaxOpsPerSec: p.Base.DBMaxQueriesPerSec / p.TimeScale,
		})
		if err != nil {
			return err
		}
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
		engines[i] = db
	}

	boot, err := shard.NewRouter(shard.Options{Shards: engines})
	if err != nil {
		return err
	}
	oracle, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return err
	}
	defer oracle.Close()
	for i := 0; i < p.HLEs; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-shrd-%05d", i), Version: 1, Owner: "loader", Public: true,
			KindHint: "flare", TStart: float64(i), TStop: float64(i + 1),
			PeakRate: float64(100 + i%7), Day: int64(i % p.Filters), CalibVersion: 1,
		}
		if _, err := boot.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return err
		}
		if _, err := oracle.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return err
		}
	}

	checks, err := verifyShardedOracle(boot, oracle, p)
	if err != nil {
		return fmt.Errorf("shards=%d pre-sweep oracle: %w", nShards, err)
	}
	out.OracleChecks += checks

	for _, n := range p.Nodes {
		pt, err := runShardedPoint(p, nShards, n, addrs, srvs, boot, logger)
		if err != nil {
			return err
		}
		if logger != nil {
			logger.Printf("bench: fig5sharded point shards=%d nodes=%d req/s=%.1f db=%.1f",
				nShards, n, pt.RequestsPerSec, pt.DBOpsPerSec)
		}
		out.Points = append(out.Points, pt)
	}

	checks, err = verifyShardedOracle(boot, oracle, p)
	if err != nil {
		return fmt.Errorf("shards=%d post-sweep oracle: %w", nShards, err)
	}
	out.OracleChecks += checks
	return nil
}

// verifyShardedOracle runs the scatter-gather battery through the
// router and the oracle and demands bit-identical results.
func verifyShardedOracle(r *shard.Router, oracle *minidb.DB, p ShardedParams) (int, error) {
	checks := 0
	queries := []minidb.Query{
		{Table: schema.TableHLE, OrderBy: []minidb.Order{{Col: "tstart"}}},
		{Table: schema.TableHLE, OrderBy: []minidb.Order{{Col: "tstart", Desc: true}}, Limit: 25, Offset: 3},
		{Table: schema.TableHLE,
			Where:   []minidb.Pred{{Col: "kind_hint", Op: minidb.OpEq, Val: minidb.S("flare")}},
			OrderBy: []minidb.Order{{Col: "tstart"}},
			Project: []string{"hle_id", "tstart", "peak_rate"}},
		{Table: schema.TableHLE,
			Where: []minidb.Pred{{Col: "tstart", Op: minidb.OpBetween,
				Val: minidb.F(10), Hi: minidb.F(float64(p.HLEs) * 0.75)}},
			OrderBy: []minidb.Order{{Col: "tstart"}}},
		{Table: schema.TableHLE, Count: true},
		{Table: schema.TableHLE, Count: true,
			Where: []minidb.Pred{{Col: "day", Op: minidb.OpEq, Val: minidb.I(3)}}},
	}
	for qi, q := range queries {
		got, err := r.Query(q)
		if err != nil {
			return checks, fmt.Errorf("router query %d: %w", qi, err)
		}
		want, err := oracle.Query(q)
		if err != nil {
			return checks, fmt.Errorf("oracle query %d: %w", qi, err)
		}
		if err := sameResult(got, want); err != nil {
			return checks, fmt.Errorf("query %d not bit-identical to oracle: %w", qi, err)
		}
		checks++
	}
	analytics := []colseg.Query{
		{Table: schema.TableHLE, Agg: colseg.AggCount},
		{Table: schema.TableHLE, Agg: colseg.AggStats, Col: "tstart"},
		{Table: schema.TableHLE, Agg: colseg.AggStats, Col: "peak_rate", GroupBy: "kind_hint"},
		{Table: schema.TableHLE, Agg: colseg.AggHist, Col: "tstart",
			Bins: 16, Lo: 0, Hi: float64(p.HLEs)},
	}
	for qi, q := range analytics {
		got, err := r.RunAnalytics(q)
		if err != nil {
			return checks, fmt.Errorf("router analytics %d: %w", qi, err)
		}
		want, err := colseg.RunRows(oracle, q)
		if err != nil {
			return checks, fmt.Errorf("oracle analytics %d: %w", qi, err)
		}
		if err := sameAnalytics(got, want); err != nil {
			return checks, fmt.Errorf("analytics %d not bit-identical to oracle: %w", qi, err)
		}
		checks++
	}
	return checks, nil
}

func sameResult(got, want *minidb.Result) error {
	if got.Count != want.Count {
		return fmt.Errorf("count %d vs %d", got.Count, want.Count)
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("%d rows vs %d", len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			return fmt.Errorf("row %d: width %d vs %d", i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			g, w := got.Rows[i][j], want.Rows[i][j]
			if g.T != w.T {
				return fmt.Errorf("row %d col %d: type %v vs %v", i, j, g.T, w.T)
			}
			same := true
			switch g.T {
			case minidb.FloatType:
				same = math.Float64bits(g.F) == math.Float64bits(w.F)
			case minidb.IntType:
				same = g.I == w.I
			default:
				same = g.String() == w.String()
			}
			if !same {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, g, w)
			}
		}
	}
	return nil
}

func sameAnalytics(got, want *colseg.Result) error {
	if got.Rows != want.Rows || got.NonNull != want.NonNull {
		return fmt.Errorf("rows %d/%d vs %d/%d", got.Rows, got.NonNull, want.Rows, want.NonNull)
	}
	for _, v := range [][2]float64{{got.Sum, want.Sum}, {got.Min, want.Min}, {got.Max, want.Max}} {
		if math.Float64bits(v[0]) != math.Float64bits(v[1]) {
			return fmt.Errorf("aggregate %x vs %x (%v vs %v)",
				math.Float64bits(v[0]), math.Float64bits(v[1]), v[0], v[1])
		}
	}
	if len(got.Bins) != len(want.Bins) {
		return fmt.Errorf("%d bins vs %d", len(got.Bins), len(want.Bins))
	}
	for i := range got.Bins {
		if got.Bins[i] != want.Bins[i] {
			return fmt.Errorf("bin %d: %d vs %d", i, got.Bins[i], want.Bins[i])
		}
	}
	if len(got.Groups) != len(want.Groups) {
		return fmt.Errorf("%d groups vs %d", len(got.Groups), len(want.Groups))
	}
	for i := range got.Groups {
		g, w := got.Groups[i], want.Groups[i]
		if g.Key != w.Key || g.Rows != w.Rows || g.NonNull != w.NonNull ||
			math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			return fmt.Errorf("group %d: %+v vs %+v", i, g, w)
		}
	}
	return nil
}

func runShardedPoint(p ShardedParams, nShards, nodes int, addrs []string,
	srvs []*dbnet.Server, writerDB minidb.Engine, logger *log.Logger) (ShardedPoint, error) {
	perCall := time.Duration(p.Base.WebCPUDemand / float64(p.Base.QueriesPerRequest) *
		p.TimeScale * float64(time.Second))
	cell, err := cluster.StartShardCell(cluster.ShardCellOptions{
		ShardAddrs: addrs,
		Replicas:   nodes,
		Capacity: cluster.Capacity{
			Workers:         int(p.Base.WebCores),
			CPUPerCall:      perCall,
			ThrashThreshold: int(p.Base.Thrash.Threshold),
			ThrashFactor:    p.Base.Thrash.Factor,
		},
		Gateway:    cluster.GatewayOptions{HealthInterval: 200 * time.Millisecond},
		NamePrefix: fmt.Sprintf("shrd-%d-%d", nShards, nodes),
		Logger:     logger,
	})
	if err != nil {
		return ShardedPoint{}, err
	}
	defer cell.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	if p.WriteEveryMS > 0 {
		// Background writer, as in the live sweep — but here each rewrite
		// bumps only its row's shard epoch, so replicas' caches on other
		// shards stay warm (the satellite-5 behavior, exercised at load).
		go func() {
			defer close(writerDone)
			cadence := time.Duration(float64(p.WriteEveryMS) * p.TimeScale * float64(time.Millisecond))
			i := 0
			for {
				select {
				case <-stop:
					return
				case <-time.After(cadence):
				}
				res, err := writerDB.Query(minidb.Query{
					Table: schema.TableHLE,
					Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq,
						Val: minidb.S(fmt.Sprintf("hle-shrd-%05d", i%p.HLEs))}},
				})
				if err != nil || len(res.RowIDs) == 0 {
					continue
				}
				_ = writerDB.Update(schema.TableHLE, res.RowIDs[0], res.Rows[0])
				i++
			}
		}()
	} else {
		close(writerDone)
	}

	type window struct {
		pages   int64
		respSum time.Duration
		errs    int64
	}
	results := make([]window, p.Clients)
	measuring := make(chan struct{})
	done := make(chan struct{})
	var clientWG sync.WaitGroup
	for c := 0; c < p.Clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			w := &results[c]
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				f := dm.HLEFilter{
					Kind: "flare", HasDay: true, Day: int64(i % p.Filters),
					Limit: p.Base.QueriesPerRequest - 2,
				}
				ok := true
				hles, err := cell.GW.QueryHLEs("", "10.1.1.1", f)
				if err != nil {
					ok = false
				}
				if ok {
					if _, err := cell.GW.CountHLEs("", "10.1.1.1", f); err != nil {
						ok = false
					}
				}
				for j := 0; ok && j < len(hles); j++ {
					if _, err := cell.GW.GetHLE("", "10.1.1.1", hles[j].ID); err != nil {
						ok = false
					}
				}
				inWindow := false
				select {
				case <-measuring:
					select {
					case <-done:
					default:
						inWindow = true
					}
				default:
				}
				if inWindow {
					if ok {
						w.pages++
						w.respSum += time.Since(start)
					} else {
						w.errs++
					}
				}
			}
		}(c)
	}

	time.Sleep(p.Warmup)
	ops0 := int64(0)
	for _, s := range srvs {
		ops0 += s.Ops()
	}
	close(measuring)
	time.Sleep(p.Measure)
	close(done)
	opsDelta := -ops0
	for _, s := range srvs {
		opsDelta += s.Ops()
	}
	close(stop)
	<-writerDone
	clientWG.Wait()

	var pages, errs int64
	var respSum time.Duration
	for i := range results {
		pages += results[i].pages
		errs += results[i].errs
		respSum += results[i].respSum
	}
	meas := p.Measure.Seconds()
	pt := ShardedPoint{
		Shards:         nShards,
		Nodes:          nodes,
		Clients:        p.Clients,
		RequestsPerSec: float64(pages) / meas * p.TimeScale,
		DBOpsPerSec:    float64(opsDelta) / meas * p.TimeScale,
		ClientErrors:   errs,
	}
	if pages > 0 {
		pt.MeanResponseS = respSum.Seconds() / float64(pages) / p.TimeScale
	}
	return pt, nil
}

// FormatSharded renders the sharded sweep as per-shard-count curves.
func FormatSharded(title string, res *ShardedResult) string {
	s := title + "\n"
	s += fmt.Sprintf("%7s %6s %8s %12s %14s %10s\n",
		"shards", "nodes", "clients", "live req/s", "db op/s (sum)", "resp[s]")
	for _, pt := range res.Points {
		s += fmt.Sprintf("%7d %6d %8d %12.1f %14.1f %10.2f\n",
			pt.Shards, pt.Nodes, pt.Clients, pt.RequestsPerSec, pt.DBOpsPerSec, pt.MeanResponseS)
	}
	s += fmt.Sprintf("oracle: %d scatter-gather results bit-identical to the single-node baseline\n",
		res.OracleChecks)
	return s
}

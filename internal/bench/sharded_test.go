package bench

import (
	"testing"
	"time"
)

// TestFigure5ShardedSmoke runs a scaled-down sharded sweep: every point
// serves without client-visible errors, and every oracle battery —
// scatter queries, counts and analytics through the router against the
// single-node baseline — passes bit-identically (the sweep hard-fails
// inside Figure5Sharded otherwise).
func TestFigure5ShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live cluster measurement")
	}
	if raceEnabled {
		t.Skip("race-detector slowdown swamps the scaled capacity model")
	}
	p := DefaultShardedParams()
	p.Clients = 24
	p.Shards = []int{1, 2}
	p.Nodes = []int{1, 2}
	p.HLEs = 120
	p.Filters = 12
	p.TimeScale = 0.02
	p.Warmup = 300 * time.Millisecond
	p.Measure = 1 * time.Second

	res, err := Figure5Sharded(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(res.Points))
	}
	// 2 shard counts × (pre + post sweep) × 10 checks per battery.
	if res.OracleChecks != 40 {
		t.Fatalf("oracle checks = %d, want 40", res.OracleChecks)
	}
	for _, pt := range res.Points {
		if pt.ClientErrors != 0 {
			t.Fatalf("shards=%d nodes=%d: %d client errors", pt.Shards, pt.Nodes, pt.ClientErrors)
		}
		if pt.RequestsPerSec <= 0 {
			t.Fatalf("shards=%d nodes=%d: no throughput", pt.Shards, pt.Nodes)
		}
	}
}

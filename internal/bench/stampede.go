package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
)

// Flare-alert stampede A/B: the same open-loop 10x browse spike driven
// against the same live cell under the two admission disciplines — the
// fixed semaphore with naive-retry clients (the pre-overload stack) and
// the adaptive limiter + brownout ladder with hint-honoring clients.
// The record is goodput through the spike, the interactive tail, the
// retry discipline, and how fast the cell stands back down afterwards.

// StampedeSide is one policy's measurement across the schedules.
type StampedeSide struct {
	Policy string                  `json:"policy"`
	Runs   []*chaos.StampedeResult `json:"runs"`

	// Aggregates over the plain spike10x schedule (the comparable one).
	GoodputRPS       float64 `json:"goodput_rps"`
	GoodFraction     float64 `json:"good_fraction"`
	InteractiveP50Ms float64 `json:"interactive_p50_ms"`
	InteractiveP99Ms float64 `json:"interactive_p99_ms"`
	Retries          int64   `json:"retries"`
	PrematureRetries int64   `json:"premature_retries"`
	RecoverMs        float64 `json:"recover_ms"`
	BaselineP99Ms    float64 `json:"baseline_p99_ms"`
	MaxStage         string  `json:"max_stage"`
}

// StampedeResult is the whole experiment.
type StampedeResult struct {
	Fixed    *StampedeSide `json:"fixed"`
	Adaptive *StampedeSide `json:"adaptive"`

	GoodputRatio float64 `json:"goodput_ratio"` // adaptive / fixed
	TotalElapsed float64 `json:"total_elapsed_s"`
}

func runStampedeSide(adaptive bool, scheds []chaos.StampedeSchedule, logf func(string, ...any)) (*StampedeSide, error) {
	side := &StampedeSide{Policy: map[bool]string{true: "adaptive", false: "fixed"}[adaptive]}
	for _, s := range scheds {
		logf("stampede: %s/%s", s.Name, side.Policy)
		r, err := chaos.RunStampede(s, chaos.StampedeConfig{Adaptive: adaptive})
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", s.Name, side.Policy, err)
		}
		side.Runs = append(side.Runs, r)
		if s.Name == "spike10x" {
			side.GoodputRPS = r.GoodputRPS
			side.GoodFraction = r.GoodFraction()
			side.InteractiveP50Ms = float64(r.InteractiveP50) / float64(time.Millisecond)
			side.InteractiveP99Ms = float64(r.InteractiveP99) / float64(time.Millisecond)
			side.Retries = r.Retries
			side.PrematureRetries = r.PrematureRetries
			side.RecoverMs = float64(r.RecoverTime) / float64(time.Millisecond)
			side.BaselineP99Ms = float64(r.BaselineP99) / float64(time.Millisecond)
			side.MaxStage = r.MaxStage
		}
	}
	return side, nil
}

// RunStampede executes the A/B: the fixed baseline runs the plain spike
// (its collapse looks the same on every schedule, and the naive-retry
// pile-up makes it the slowest run), the adaptive side runs every
// enumerated schedule.
func RunStampede(logf func(string, ...any)) (*StampedeResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	all := chaos.StampedeSchedules()
	plain := all[:1]

	fixed, err := runStampedeSide(false, plain, logf)
	if err != nil {
		return nil, err
	}
	adaptive, err := runStampedeSide(true, all, logf)
	if err != nil {
		return nil, err
	}
	res := &StampedeResult{Fixed: fixed, Adaptive: adaptive, TotalElapsed: time.Since(start).Seconds()}
	if fixed.GoodputRPS > 0 {
		res.GoodputRatio = adaptive.GoodputRPS / fixed.GoodputRPS
	}
	return res, nil
}

// FormatStampede renders the experiment in the repo's table style.
func FormatStampede(r *StampedeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stampede — 10x flare-alert spike, fixed vs adaptive admission\n")
	fmt.Fprintf(&b, "  %-22s %12s %12s\n", "", "fixed", "adaptive")
	row := func(label, fixed, adaptive string) {
		fmt.Fprintf(&b, "  %-22s %12s %12s\n", label, fixed, adaptive)
	}
	row("goodput (req/s)", fmt.Sprintf("%.1f", r.Fixed.GoodputRPS), fmt.Sprintf("%.1f", r.Adaptive.GoodputRPS))
	row("answered within SLO", fmt.Sprintf("%.0f%%", 100*r.Fixed.GoodFraction), fmt.Sprintf("%.0f%%", 100*r.Adaptive.GoodFraction))
	row("interactive p50 (ms)", fmt.Sprintf("%.0f", r.Fixed.InteractiveP50Ms), fmt.Sprintf("%.0f", r.Adaptive.InteractiveP50Ms))
	row("interactive p99 (ms)", fmt.Sprintf("%.0f", r.Fixed.InteractiveP99Ms), fmt.Sprintf("%.0f", r.Adaptive.InteractiveP99Ms))
	row("retries", fmt.Sprint(r.Fixed.Retries), fmt.Sprint(r.Adaptive.Retries))
	row("...before the hint", fmt.Sprint(r.Fixed.PrematureRetries), fmt.Sprint(r.Adaptive.PrematureRetries))
	row("deepest brownout rung", r.Fixed.MaxStage, r.Adaptive.MaxStage)
	row("recovery (ms)", fmt.Sprintf("%.0f", r.Fixed.RecoverMs), fmt.Sprintf("%.0f", r.Adaptive.RecoverMs))
	row("post-spike p99 (ms)", fmt.Sprintf("%.0f", r.Fixed.BaselineP99Ms), fmt.Sprintf("%.0f", r.Adaptive.BaselineP99Ms))
	fmt.Fprintf(&b, "  goodput ratio (adaptive/fixed): %.1fx\n", r.GoodputRatio)
	for _, run := range r.Adaptive.Runs {
		fmt.Fprintf(&b, "  adaptive %-20s goodput %.1f/s, interactive p99 %.0f ms, stale serves %d, recovered in %.0f ms\n",
			run.Schedule+":", run.GoodputRPS,
			float64(run.InteractiveP99)/float64(time.Millisecond), run.StaleServes,
			float64(run.RecoverTime)/float64(time.Millisecond))
	}
	return b.String()
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/pl"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Tables at scale — the processing farm under concurrent mixed load. Where
// Table 1 replays the paper's fixed configurations in the simulator, this
// experiment measures the real PL rebuilt around the work-stealing
// scheduler: N closed-loop users submitting a mix of interactive and bulk
// analyses against farms of increasing size, then three targeted A/B
// phases for the farm's individual mechanisms:
//
//   - preemption: interactive sojourn with and without priority tiering
//     while a bulk flood occupies the farm and the admission gate;
//   - memoization: cold vs warm latency for canned re-analyses, the
//     epoch-bump invalidation (a recalibration commit), and a hard
//     bit-identity check of every cached delivery against an uncached
//     oracle;
//   - speculation: sojourn tail with one interpreter wedged, with and
//     without hedged re-dispatch.

// TablesScaleParams configures the measured farm experiment.
type TablesScaleParams struct {
	// Users is the closed-loop population of the farm-size sweep; each
	// submits JobsPerUser analyses back to back.
	Users       int
	JobsPerUser int
	// InteractiveShare is the probability a sweep job is interactive
	// (the rest are bulk reprocessing).
	InteractiveShare float64
	// FarmSizes are the manager counts to sweep; every manager runs
	// ManagerServers interpreters.
	FarmSizes      []int
	ManagerServers int
	// MaxInSystem bounds admitted requests (the paper's bound of 20).
	MaxInSystem int

	// BulkFlood and InteractiveProbes shape the preemption A/B: a flood
	// of bulk jobs large enough to exhaust the admission gate, probed by
	// sequential interactive submissions.
	BulkFlood         int
	InteractiveProbes int

	// CannedVariants distinct re-analyses are warmed and then repeated
	// WarmRepeats times against the result cache.
	CannedVariants int
	WarmRepeats    int

	// HedgeJobs sequential jobs run against a farm with one interpreter
	// wedged (stalling WedgeHang per invocation); the hedge fires between
	// HedgeMin and HedgeMax after the primary attempt starts.
	HedgeJobs int
	WedgeHang time.Duration
	HedgeMin  time.Duration
	HedgeMax  time.Duration

	// DayLength / BackgroundRate size the loaded telemetry, and so the
	// per-analysis compute.
	DayLength      float64
	BackgroundRate float64
	Seed           int64
}

// DefaultTablesScaleParams returns the calibration used in EXPERIMENTS.md.
func DefaultTablesScaleParams() TablesScaleParams {
	return TablesScaleParams{
		Users: 12, JobsPerUser: 8, InteractiveShare: 0.7,
		FarmSizes: []int{1, 2, 4}, ManagerServers: 2, MaxInSystem: 20,
		BulkFlood: 32, InteractiveProbes: 10,
		CannedVariants: 4, WarmRepeats: 30,
		HedgeJobs: 24, WedgeHang: 800 * time.Millisecond,
		HedgeMin: 50 * time.Millisecond, HedgeMax: 100 * time.Millisecond,
		DayLength: 1200, BackgroundRate: 30, Seed: 42,
	}
}

// FarmPoint is one farm size of the mixed-load sweep.
type FarmPoint struct {
	Managers         int     `json:"managers"`
	Servers          int     `json:"servers"`
	Jobs             int     `json:"jobs"`
	WallS            float64 `json:"wall_s"`
	JobsPerSec       float64 `json:"jobs_per_sec"`
	InteractiveP50Ms float64 `json:"interactive_p50_ms"`
	InteractiveP99Ms float64 `json:"interactive_p99_ms"`
	BulkP50Ms        float64 `json:"bulk_p50_ms"`
	BulkP99Ms        float64 `json:"bulk_p99_ms"`
	LocalRuns        int64   `json:"local_runs"`
	Steals           int64   `json:"steals"`
	Preemptions      int64   `json:"preemptions"`
}

// PreemptionResult is the interactive-tail A/B under a bulk flood.
type PreemptionResult struct {
	BulkFlood   int     `json:"bulk_flood"`
	Probes      int     `json:"interactive_probes"`
	OnP50Ms     float64 `json:"preempt_on_p50_ms"`
	OnP99Ms     float64 `json:"preempt_on_p99_ms"`
	OffP50Ms    float64 `json:"preempt_off_p50_ms"`
	OffP99Ms    float64 `json:"preempt_off_p99_ms"`
	Preemptions int64   `json:"preemptions"` // counted in the preempt-on run
}

// MemoResult is the result-cache phase: speedup, invalidation, identity.
type MemoResult struct {
	Variants     int     `json:"variants"`
	WarmRepeats  int     `json:"warm_repeats"`
	ColdMeanMs   float64 `json:"cold_mean_ms"`
	WarmMeanMs   float64 `json:"warm_mean_ms"`
	Speedup      float64 `json:"speedup"`
	Hits         int64   `json:"hits"`
	Misses       int64   `json:"misses"`
	BitIdentical bool    `json:"bit_identical"` // every cached delivery vs uncached oracle
	// InvalidationMiss: the recalibration commit forced the next lookup to
	// miss; RewarmHit: the recomputed entry is warm again under the new
	// epoch.
	InvalidationMiss bool `json:"invalidation_miss"`
	RewarmHit        bool `json:"rewarm_hit"`
}

// HedgeRun is one arm of the wedged-interpreter A/B.
type HedgeRun struct {
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	HedgesLaunched int64   `json:"hedges_launched"`
	HedgesWon      int64   `json:"hedges_won"`
	HedgesLost     int64   `json:"hedges_lost"`
	Recoveries     int64   `json:"recoveries"`
}

// HedgeResult compares sojourn tails with one interpreter wedged.
type HedgeResult struct {
	Jobs        int      `json:"jobs"`
	WedgeHangMs float64  `json:"wedge_hang_ms"`
	Off         HedgeRun `json:"hedge_off"`
	On          HedgeRun `json:"hedge_on"`
}

// TablesScaleResult is the full experiment.
type TablesScaleResult struct {
	Users       int              `json:"users"`
	JobsPerUser int              `json:"jobs_per_user"`
	Sweep       []FarmPoint      `json:"sweep"`
	Preemption  PreemptionResult `json:"preemption"`
	Memo        MemoResult       `json:"memo"`
	Hedge       HedgeResult      `json:"hedge"`
}

// farmRig is the shared data tier of the experiment: one DM with a loaded
// telemetry unit; farms (frontend + managers) are rebuilt per phase.
type farmRig struct {
	dm      *dm.DM
	session *dm.Session
	unitLen float64
	cleanup func()
}

func newFarmRig(p TablesScaleParams) (*farmRig, error) {
	tmp, err := os.MkdirTemp("", "hedc-tablesscale")
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*farmRig, error) {
		os.RemoveAll(tmp)
		return nil, err
	}
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return fail(err)
	}
	arch, err := archive.New("disk-0", archive.Disk, tmp, 0)
	if err != nil {
		return fail(err)
	}
	d, err := dm.Open(dm.Options{
		MetaDB: db, DefaultArchive: "disk-0",
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		return fail(err)
	}
	if err := d.RegisterArchive(arch, "/a"); err != nil {
		return fail(err)
	}
	if err := d.Bootstrap("secret"); err != nil {
		return fail(err)
	}
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 99, DayLength: p.DayLength, BackgroundRate: p.BackgroundRate, Flares: 1,
	})
	for _, u := range telemetry.SegmentDay(day, p.DayLength) {
		if _, err := d.LoadUnit(u); err != nil {
			return fail(err)
		}
	}
	sess, err := d.Authenticate(dm.ImportUser, "secret", "127.0.0.1", dm.SessionANA)
	if err != nil {
		return fail(err)
	}
	return &farmRig{
		dm: d, session: sess, unitLen: p.DayLength,
		cleanup: func() { os.RemoveAll(tmp) },
	}, nil
}

// newFarm builds a fresh frontend over `managers` managers. Every farm
// starts in the measurement baseline — memoization off, hedging off,
// preemption on — and phases opt in to the mechanism they measure.
func (r *farmRig) newFarm(p TablesScaleParams, managers int) (*pl.Frontend, []*pl.Manager, error) {
	dir := pl.NewDirectory()
	mgrs := make([]*pl.Manager, 0, managers)
	for i := 0; i < managers; i++ {
		m, err := pl.NewManager(fmt.Sprintf("farm-%d", i), "server",
			p.ManagerServers, pl.Routines(), time.Minute)
		if err != nil {
			return nil, nil, err
		}
		dir.RegisterManager(m, "server")
		mgrs = append(mgrs, m)
	}
	fe := pl.NewFrontend(dir, managers*p.ManagerServers+2, p.MaxInSystem)
	for _, s := range pl.NewAnalysisStrategies(r.dm) {
		fe.RegisterStrategy(s)
	}
	fe.SetMemoize(false)
	fe.SetHedge(pl.HedgeConfig{})
	fe.SetPreemption(true)
	return fe, mgrs, nil
}

var farmAnaTypes = []string{schema.AnaHistogram, schema.AnaLightcurve, schema.AnaSpectrogram}

// randomJob draws one parameter-distinct analysis request.
func (r *farmRig) randomJob(rng *rand.Rand, id string, tier pl.Tier) *pl.Request {
	t0 := rng.Float64() * r.unitLen / 2
	return &pl.Request{
		ID: id, Type: farmAnaTypes[rng.Intn(len(farmAnaTypes))], Session: r.session,
		Params: map[string]interface{}{
			"tstart": t0, "tstop": t0 + 100 + rng.Float64()*r.unitLen/2,
			"time_bins":   16 + rng.Intn(64),
			"energy_bins": 8 + rng.Intn(16),
		},
		Tier: tier, NoCommit: true,
	}
}

// waitFarmJob submits, waits, and returns the sojourn (Submit call to
// terminal status, admission wait included) and the delivery.
func waitFarmJob(fe *pl.Frontend, req *pl.Request) (time.Duration, *pl.Delivery, error) {
	start := time.Now()
	tk, err := fe.Submit(req)
	if err != nil {
		return 0, nil, err
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		return 0, nil, err
	}
	return time.Since(start), tk.Delivery(), nil
}

// pctMs returns the q-quantile of the samples in milliseconds.
func pctMs(ds []time.Duration, q float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return float64(s[idx]) / float64(time.Millisecond)
}

func durMean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// sameDelivery compares two deliveries file by file, bit for bit.
func sameDelivery(a, b *pl.Delivery) error {
	if a == nil || b == nil {
		return fmt.Errorf("missing delivery (%v vs %v)", a != nil, b != nil)
	}
	if len(a.Files) != len(b.Files) {
		return fmt.Errorf("file count %d != %d", len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Suffix != b.Files[i].Suffix {
			return fmt.Errorf("file %d suffix %q != %q", i, a.Files[i].Suffix, b.Files[i].Suffix)
		}
		if !bytes.Equal(a.Files[i].Data, b.Files[i].Data) {
			return fmt.Errorf("file %s differs (%d vs %d bytes)",
				a.Files[i].Suffix, len(a.Files[i].Data), len(b.Files[i].Data))
		}
	}
	return nil
}

// sweepPoint runs the mixed closed-loop load against one farm size.
func (r *farmRig) sweepPoint(p TablesScaleParams, managers int) (FarmPoint, error) {
	fe, _, err := r.newFarm(p, managers)
	if err != nil {
		return FarmPoint{}, err
	}
	defer fe.Close()

	var mu sync.Mutex
	var intLat, bulkLat []time.Duration
	var firstErr error
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < p.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(1000*managers+u)))
			for j := 0; j < p.JobsPerUser; j++ {
				tier := pl.TierBulk
				if rng.Float64() < p.InteractiveShare {
					tier = pl.TierInteractive
				}
				id := fmt.Sprintf("sweep-%d-%d-%d", managers, u, j)
				d, _, err := waitFarmJob(fe, r.randomJob(rng, id, tier))
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else if tier == pl.TierInteractive {
					intLat = append(intLat, d)
				} else {
					bulkLat = append(bulkLat, d)
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return FarmPoint{}, firstErr
	}
	st := fe.FarmStats()
	jobs := len(intLat) + len(bulkLat)
	return FarmPoint{
		Managers: managers, Servers: managers * p.ManagerServers, Jobs: jobs,
		WallS: wall.Seconds(), JobsPerSec: float64(jobs) / wall.Seconds(),
		InteractiveP50Ms: pctMs(intLat, 0.5), InteractiveP99Ms: pctMs(intLat, 0.99),
		BulkP50Ms: pctMs(bulkLat, 0.5), BulkP99Ms: pctMs(bulkLat, 0.99),
		LocalRuns: st.Sched.LocalRuns, Steals: st.Sched.Steals,
		Preemptions: st.Sched.Preemptions,
	}, nil
}

// preemptionRun floods a one-manager farm with bulk work (more than the
// admission gate holds), then probes it with sequential interactive
// submissions. With preemption on, the reserved admission slice plus the
// tiered queues let every probe jump the flood; off, each probe waits its
// FIFO turn behind it.
func (r *farmRig) preemptionRun(p TablesScaleParams, preempt bool) (p50, p99 float64, preemptions int64, err error) {
	fe, _, err := r.newFarm(p, 1)
	if err != nil {
		return 0, 0, 0, err
	}
	defer fe.Close()
	fe.SetPreemption(preempt)

	rng := rand.New(rand.NewSource(p.Seed + 7)) // same workload both arms
	// The flood is bulk reprocessing: full-range, fine-binned jobs heavy
	// enough that the queue outlasts the probe sequence.
	bulkReqs := make([]*pl.Request, p.BulkFlood)
	for i := range bulkReqs {
		bulkReqs[i] = &pl.Request{
			ID: fmt.Sprintf("flood-%t-%d", preempt, i), Type: schema.AnaSpectrogram,
			Session: r.session,
			Params: map[string]interface{}{
				"tstart": 0.0, "tstop": r.unitLen,
				"time_bins": 64, "energy_bins": 16 + i%4,
			},
			Tier: pl.TierBulk, NoCommit: true,
		}
	}
	probeReqs := make([]*pl.Request, p.InteractiveProbes)
	for i := range probeReqs {
		probeReqs[i] = r.randomJob(rng, fmt.Sprintf("probe-%t-%d", preempt, i), pl.TierInteractive)
	}

	// The flood submitter blocks at the admission gate once MaxInSystem
	// (minus any interactive reserve) is reached, so it runs aside.
	tks := make(chan *pl.Ticket, p.BulkFlood)
	floodErr := make(chan error, 1)
	go func() {
		for _, req := range bulkReqs {
			tk, err := fe.Submit(req)
			if err != nil {
				floodErr <- err
				return
			}
			tks <- tk
		}
		floodErr <- nil
	}()
	time.Sleep(100 * time.Millisecond) // let the flood fill the farm

	var lat []time.Duration
	for _, req := range probeReqs {
		d, _, err := waitFarmJob(fe, req)
		if err != nil {
			return 0, 0, 0, err
		}
		lat = append(lat, d)
	}
	if err := <-floodErr; err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < p.BulkFlood; i++ {
		if _, err := (<-tks).Wait(context.Background()); err != nil {
			return 0, 0, 0, err
		}
	}
	st := fe.FarmStats()
	return pctMs(lat, 0.5), pctMs(lat, 0.99), st.Sched.Preemptions, nil
}

// memoPhase measures the result cache: cold vs warm latency over canned
// re-analyses, bit-identity of every cached delivery against an uncached
// (NoMemo) oracle, and the recalibration-commit invalidation.
func (r *farmRig) memoPhase(p TablesScaleParams) (MemoResult, error) {
	fe, _, err := r.newFarm(p, 1)
	if err != nil {
		return MemoResult{}, err
	}
	defer fe.Close()
	fe.SetMemoize(true)

	// Canned re-analyses: full-range, fine-binned — the repeated
	// "re-derive the standard product" jobs memoization exists for.
	req := func(v int, id string, noMemo bool) *pl.Request {
		return &pl.Request{
			ID: id, Type: farmAnaTypes[v%len(farmAnaTypes)], Session: r.session,
			Params: map[string]interface{}{
				"tstart": 0.0, "tstop": r.unitLen,
				"time_bins": 48 + 16*v, "energy_bins": 16,
			},
			NoCommit: true, NoMemo: noMemo,
		}
	}

	var cold, warm []time.Duration
	oracle := make([]*pl.Delivery, p.CannedVariants)
	for v := 0; v < p.CannedVariants; v++ {
		d, _, err := waitFarmJob(fe, req(v, fmt.Sprintf("cold-%d", v), false))
		if err != nil {
			return MemoResult{}, err
		}
		cold = append(cold, d)
		// The oracle recomputes with the cache bypassed in both directions.
		if _, oracle[v], err = waitFarmJob(fe, req(v, fmt.Sprintf("oracle-%d", v), true)); err != nil {
			return MemoResult{}, err
		}
	}
	for i := 0; i < p.WarmRepeats; i++ {
		v := i % p.CannedVariants
		d, del, err := waitFarmJob(fe, req(v, fmt.Sprintf("warm-%d", i), false))
		if err != nil {
			return MemoResult{}, err
		}
		if err := sameDelivery(del, oracle[v]); err != nil {
			return MemoResult{}, fmt.Errorf("cached delivery drifted from oracle (variant %d): %w", v, err)
		}
		warm = append(warm, d)
	}

	// Invalidation: a recalibration commits to raw_units, bumping the data
	// epoch. The next lookup must miss; the recomputation must still match
	// the pre-bump bytes (recalibration rewrites no photon data).
	units, err := r.dm.UnitsInRange(0, r.unitLen)
	if err != nil || len(units) == 0 {
		return MemoResult{}, fmt.Errorf("units in range: %v (%d)", err, len(units))
	}
	before := fe.FarmStats().Memo
	if _, err := r.dm.Recalibrate(units[0].UnitID, "bench epoch bump"); err != nil {
		return MemoResult{}, err
	}
	_, del, err := waitFarmJob(fe, req(0, "post-bump", false))
	if err != nil {
		return MemoResult{}, err
	}
	after := fe.FarmStats().Memo
	if err := sameDelivery(del, oracle[0]); err != nil {
		return MemoResult{}, fmt.Errorf("post-recalibration recompute drifted: %w", err)
	}
	if _, _, err := waitFarmJob(fe, req(0, "rewarm", false)); err != nil {
		return MemoResult{}, err
	}
	final := fe.FarmStats().Memo

	coldMean, warmMean := durMean(cold), durMean(warm)
	res := MemoResult{
		Variants: p.CannedVariants, WarmRepeats: p.WarmRepeats,
		ColdMeanMs: float64(coldMean) / float64(time.Millisecond),
		WarmMeanMs: float64(warmMean) / float64(time.Millisecond),
		Hits:       final.Hits, Misses: final.Misses,
		BitIdentical:     true, // a drift returned an error above
		InvalidationMiss: after.Misses > before.Misses && after.Hits == before.Hits,
		RewarmHit:        final.Hits == after.Hits+1,
	}
	if warmMean > 0 {
		res.Speedup = float64(coldMean) / float64(warmMean)
	}
	return res, nil
}

// hedgeRun measures the sojourn tail with one interpreter wedged. A
// re-arming injector keeps the interpreter stalling WedgeHang on every
// invocation; the manager's FIFO idle pool alternates servers, so roughly
// every other sequential job lands on the wedged one.
func (r *farmRig) hedgeRun(p TablesScaleParams, hedgeOn bool) (HedgeRun, error) {
	fe, mgrs, err := r.newFarm(p, 1)
	if err != nil {
		return HedgeRun{}, err
	}
	defer fe.Close()
	if hedgeOn {
		fe.SetHedge(pl.HedgeConfig{
			Enabled: true, Multiplier: 3, Min: p.HedgeMin, Max: p.HedgeMax,
		})
	}

	ids := mgrs[0].ServerIDs()
	wedged := mgrs[0].Server(ids[0])
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // InjectHang arms one invocation; keep it armed
		defer wg.Done()
		for {
			wedged.InjectHang(p.WedgeHang)
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	rng := rand.New(rand.NewSource(p.Seed + 13))
	var lat []time.Duration
	for i := 0; i < p.HedgeJobs; i++ {
		d, _, err := waitFarmJob(fe,
			r.randomJob(rng, fmt.Sprintf("hedge-%t-%d", hedgeOn, i), pl.TierInteractive))
		if err != nil {
			close(stop)
			wg.Wait()
			return HedgeRun{}, err
		}
		lat = append(lat, d)
	}
	close(stop)
	wg.Wait()

	st := fe.FarmStats()
	run := HedgeRun{
		P50Ms: pctMs(lat, 0.5), P99Ms: pctMs(lat, 0.99),
		HedgesLaunched: st.Sched.HedgesLaunched,
		HedgesWon:      st.Sched.HedgesWon,
		HedgesLost:     st.Sched.HedgesLost,
	}
	for _, m := range st.Managers {
		run.Recoveries += m.Recoveries
	}
	return run, nil
}

// RunTablesScale measures the whole experiment. Zero-valued params fall
// back to the defaults field by field, so callers can shrink only what
// they need (the smoke test runs a miniature of everything).
func RunTablesScale(p TablesScaleParams, logf func(string, ...interface{})) (*TablesScaleResult, error) {
	def := DefaultTablesScaleParams()
	if p.Users <= 0 {
		p.Users = def.Users
	}
	if p.JobsPerUser <= 0 {
		p.JobsPerUser = def.JobsPerUser
	}
	if p.InteractiveShare <= 0 {
		p.InteractiveShare = def.InteractiveShare
	}
	if len(p.FarmSizes) == 0 {
		p.FarmSizes = def.FarmSizes
	}
	if p.ManagerServers <= 0 {
		p.ManagerServers = def.ManagerServers
	}
	if p.MaxInSystem <= 0 {
		p.MaxInSystem = def.MaxInSystem
	}
	if p.BulkFlood <= 0 {
		p.BulkFlood = def.BulkFlood
	}
	if p.InteractiveProbes <= 0 {
		p.InteractiveProbes = def.InteractiveProbes
	}
	if p.CannedVariants <= 0 {
		p.CannedVariants = def.CannedVariants
	}
	if p.WarmRepeats <= 0 {
		p.WarmRepeats = def.WarmRepeats
	}
	if p.HedgeJobs <= 0 {
		p.HedgeJobs = def.HedgeJobs
	}
	if p.WedgeHang <= 0 {
		p.WedgeHang = def.WedgeHang
	}
	if p.HedgeMin <= 0 {
		p.HedgeMin = def.HedgeMin
	}
	if p.HedgeMax <= 0 {
		p.HedgeMax = def.HedgeMax
	}
	if p.DayLength <= 0 {
		p.DayLength = def.DayLength
	}
	if p.BackgroundRate <= 0 {
		p.BackgroundRate = def.BackgroundRate
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	rig, err := newFarmRig(p)
	if err != nil {
		return nil, err
	}
	defer rig.cleanup()

	res := &TablesScaleResult{Users: p.Users, JobsPerUser: p.JobsPerUser}

	for _, size := range p.FarmSizes {
		pt, err := rig.sweepPoint(p, size)
		if err != nil {
			return nil, fmt.Errorf("sweep %d managers: %w", size, err)
		}
		logf("bench: tablesscale sweep managers=%d jobs/s=%.1f int p99=%.1fms steals=%d",
			size, pt.JobsPerSec, pt.InteractiveP99Ms, pt.Steals)
		res.Sweep = append(res.Sweep, pt)
	}

	onP50, onP99, preemptions, err := rig.preemptionRun(p, true)
	if err != nil {
		return nil, fmt.Errorf("preemption on: %w", err)
	}
	offP50, offP99, _, err := rig.preemptionRun(p, false)
	if err != nil {
		return nil, fmt.Errorf("preemption off: %w", err)
	}
	res.Preemption = PreemptionResult{
		BulkFlood: p.BulkFlood, Probes: p.InteractiveProbes,
		OnP50Ms: onP50, OnP99Ms: onP99,
		OffP50Ms: offP50, OffP99Ms: offP99,
		Preemptions: preemptions,
	}
	logf("bench: tablesscale preemption int p99 on=%.1fms off=%.1fms", onP99, offP99)

	memo, err := rig.memoPhase(p)
	if err != nil {
		return nil, fmt.Errorf("memo: %w", err)
	}
	res.Memo = memo
	logf("bench: tablesscale memo cold=%.2fms warm=%.3fms speedup=%.0fx",
		memo.ColdMeanMs, memo.WarmMeanMs, memo.Speedup)

	off, err := rig.hedgeRun(p, false)
	if err != nil {
		return nil, fmt.Errorf("hedge off: %w", err)
	}
	on, err := rig.hedgeRun(p, true)
	if err != nil {
		return nil, fmt.Errorf("hedge on: %w", err)
	}
	res.Hedge = HedgeResult{
		Jobs:        p.HedgeJobs,
		WedgeHangMs: float64(p.WedgeHang) / float64(time.Millisecond),
		Off:         off, On: on,
	}
	logf("bench: tablesscale hedge p99 off=%.1fms on=%.1fms won=%d", off.P99Ms, on.P99Ms, on.HedgesWon)
	return res, nil
}

// FormatTablesScale renders the experiment for the console.
func FormatTablesScale(r *TablesScaleResult) string {
	s := fmt.Sprintf("Tables at scale — processing farm, %d users x %d mixed jobs\n",
		r.Users, r.JobsPerUser)
	s += fmt.Sprintf("%9s %8s %8s %12s %12s %12s %12s %7s %8s\n",
		"managers", "servers", "jobs/s", "int p50[ms]", "int p99[ms]",
		"bulk p50", "bulk p99", "steals", "preempt")
	for _, pt := range r.Sweep {
		s += fmt.Sprintf("%9d %8d %8.1f %12.1f %12.1f %12.1f %12.1f %7d %8d\n",
			pt.Managers, pt.Servers, pt.JobsPerSec,
			pt.InteractiveP50Ms, pt.InteractiveP99Ms,
			pt.BulkP50Ms, pt.BulkP99Ms, pt.Steals, pt.Preemptions)
	}
	p := r.Preemption
	s += fmt.Sprintf("preemption A/B (%d bulk flood, %d probes): interactive p99 %.1f ms on vs %.1f ms off (p50 %.1f vs %.1f, %d preemptions)\n",
		p.BulkFlood, p.Probes, p.OnP99Ms, p.OffP99Ms, p.OnP50Ms, p.OffP50Ms, p.Preemptions)
	m := r.Memo
	s += fmt.Sprintf("memoization: cold %.2f ms -> warm %.3f ms (%.0fx), %d hits / %d misses, bit-identical=%t, epoch bump invalidates=%t, rewarm=%t\n",
		m.ColdMeanMs, m.WarmMeanMs, m.Speedup, m.Hits, m.Misses,
		m.BitIdentical, m.InvalidationMiss, m.RewarmHit)
	h := r.Hedge
	s += fmt.Sprintf("speculation (one interpreter wedged %.0f ms): p99 %.1f ms off -> %.1f ms hedged (p50 %.1f -> %.1f; %d hedges won, %d lost, %d recoveries)\n",
		h.WedgeHangMs, h.Off.P99Ms, h.On.P99Ms, h.Off.P50Ms, h.On.P50Ms,
		h.On.HedgesWon, h.On.HedgesLost, h.On.Recoveries)
	return s
}

package bench

import (
	"strings"
	"testing"
	"time"
)

// TestTablesScaleSmoke runs a miniature of every phase of the farm
// experiment. Mechanism outcomes (memo speedup, bit-identity, epoch
// invalidation, hedges winning against the wedged interpreter) are
// asserted; exact latencies are not — those belong to the full run.
func TestTablesScaleSmoke(t *testing.T) {
	p := TablesScaleParams{
		Users: 3, JobsPerUser: 2, InteractiveShare: 0.7,
		FarmSizes: []int{1, 2}, ManagerServers: 2, MaxInSystem: 8,
		BulkFlood: 6, InteractiveProbes: 3,
		CannedVariants: 2, WarmRepeats: 4,
		HedgeJobs: 8, WedgeHang: 300 * time.Millisecond,
		HedgeMin: 20 * time.Millisecond, HedgeMax: 40 * time.Millisecond,
		DayLength: 600, BackgroundRate: 8, Seed: 42,
	}
	res, err := RunTablesScale(p, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Sweep) != 2 {
		t.Fatalf("sweep points = %d", len(res.Sweep))
	}
	for _, pt := range res.Sweep {
		if pt.Jobs != p.Users*p.JobsPerUser || pt.JobsPerSec <= 0 {
			t.Fatalf("sweep point %+v", pt)
		}
	}
	if res.Preemption.OnP99Ms <= 0 || res.Preemption.OffP99Ms <= 0 {
		t.Fatalf("preemption phase empty: %+v", res.Preemption)
	}

	m := res.Memo
	if !m.BitIdentical {
		t.Fatalf("cached deliveries drifted: %+v", m)
	}
	if m.Speedup <= 1 {
		t.Fatalf("memo speedup %.2fx, want > 1", m.Speedup)
	}
	if !m.InvalidationMiss {
		t.Fatalf("recalibration did not invalidate: %+v", m)
	}
	if !m.RewarmHit {
		t.Fatalf("cache not rewarmed under the new epoch: %+v", m)
	}
	if m.Hits < int64(p.WarmRepeats) {
		t.Fatalf("hits = %d, want >= %d", m.Hits, p.WarmRepeats)
	}

	h := res.Hedge
	if h.On.HedgesWon < 1 {
		t.Fatalf("no hedge won against the wedged interpreter: %+v", h.On)
	}
	if h.On.Recoveries < 1 {
		t.Fatalf("canceled primaries should restart the wedged interpreter: %+v", h.On)
	}
	if h.Off.HedgesLaunched != 0 {
		t.Fatalf("hedge-off run launched hedges: %+v", h.Off)
	}

	out := FormatTablesScale(res)
	for _, want := range []string{"Tables at scale", "managers", "preemption A/B", "memoization", "speculation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

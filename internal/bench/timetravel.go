package bench

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/lake"
	"repro/internal/minidb"
)

// Time travel over the commit journal: the lake archive run as an
// experiment rather than a test. A scripted ingest (batched stores with a
// delete churn, like retention relocating old days) builds a few hundred
// commits of history; the experiment then measures what the journal
// design actually costs and buys:
//
//   - As-of read latency by commit depth: OpenAt(commitN) replays the
//     first N journal records to materialize the historical member map,
//     so open cost grows with depth while per-read cost should not —
//     pinned reads hit the same container files as head reads.
//   - The compaction win: merging small ingest-batch containers into few
//     large time-sorted ones, then GC'ing the dead history, shrinks both
//     the container population and the physical footprint without
//     touching read results.
//   - Oracle verification: every depth's view is checked bit-identically
//     against a driver-side oracle that recorded the catalog state after
//     each commit. A pin taken at the deepest depth before GC must keep
//     every measured commit openable afterwards (the GC-safety contract).

// TimeTravelParams sizes the experiment.
type TimeTravelParams struct {
	Files     int // files ingested
	FileBytes int // payload size per file
	BatchSize int // files per ingest commit
	DeleteEvy int // every Nth batch deletes one old file (churn)
	Reads     int // member reads measured per depth
	Depths    int // number of as-of depths sampled between horizon and head
}

// DefaultTimeTravelParams is sized to finish in a few seconds while still
// building enough journal history (hundreds of commits) for the depth
// sweep to mean something.
func DefaultTimeTravelParams() TimeTravelParams {
	return TimeTravelParams{
		Files:     1600,
		FileBytes: 2048,
		BatchSize: 8,
		DeleteEvy: 4,
		Reads:     300,
		Depths:    5,
	}
}

// TimeTravelDepth is one as-of depth's measurement.
type TimeTravelDepth struct {
	Commit    uint64  `json:"commit"`
	Behind    uint64  `json:"commits_behind_head"`
	Members   int     `json:"members"`
	OpenMs    float64 `json:"open_ms"`      // OpenAt: journal-prefix replay + durable pin
	ReadP50Us float64 `json:"read_p50_us"`  // per-member read through the view
	ReadP95Us float64 `json:"read_p95_us"`
	OracleOK  bool    `json:"oracle_ok"` // bit-identical to the replay oracle
}

// TimeTravelCompaction is the before/after record of one maintenance
// round (compact until quiescent, then GC to the pinned floor).
type TimeTravelCompaction struct {
	ContainersBefore int     `json:"containers_before"`
	ContainersAfter  int     `json:"containers_after"`
	PhysBefore       int64   `json:"phys_bytes_before"`
	PhysAfter        int64   `json:"phys_bytes_after"`
	LiveBytes        int64   `json:"live_bytes"`
	ReadP50UsBefore  float64 `json:"head_read_p50_us_before"`
	ReadP50UsAfter   float64 `json:"head_read_p50_us_after"`
	Merged           int     `json:"containers_merged"`
	Reclaimed        int64   `json:"bytes_reclaimed"`
	CompactMs        float64 `json:"compact_ms"`
	GCMs             float64 `json:"gc_ms"`
}

// TimeTravelResult is the whole experiment.
type TimeTravelResult struct {
	Files        int                  `json:"files"`
	Commits      uint64               `json:"commits"`
	Deletes      int                  `json:"deletes"`
	JournalBytes int64                `json:"journal_bytes"`
	Depths       []TimeTravelDepth    `json:"depths_pre_compaction"`
	PostDepths   []TimeTravelDepth    `json:"depths_post_compaction"`
	Compaction   TimeTravelCompaction `json:"compaction"`
	OracleChecks int                  `json:"oracle_checks"`
	OracleFails  int                  `json:"oracle_failures"`
	TotalElapsed float64              `json:"total_elapsed_s"`
}

// ttOracle is one recorded catalog state: the member CRCs as of a commit.
type ttOracle struct {
	seq  uint64
	crcs map[string]uint32
}

func pctUs(durs []time.Duration, p float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// measureDepth opens the lake as of seq, times the open and p.Reads member
// reads through the view, and checks the result bit-identically against
// the oracle snapshot for that commit.
func measureDepth(lk *lake.Lake, seq uint64, o *ttOracle, p TimeTravelParams, rng *rand.Rand, res *TimeTravelResult) (TimeTravelDepth, error) {
	t0 := time.Now()
	v, err := lk.OpenAt(seq)
	if err != nil {
		return TimeTravelDepth{}, fmt.Errorf("OpenAt(%d): %w", seq, err)
	}
	defer v.Close()
	d := TimeTravelDepth{
		Commit: seq,
		Behind: lk.Head() - seq,
		OpenMs: float64(time.Since(t0).Nanoseconds()) / 1e6,
	}

	rels := v.List()
	d.Members = len(rels)
	var durs []time.Duration
	for i := 0; i < p.Reads && len(rels) > 0; i++ {
		rel := rels[rng.Intn(len(rels))]
		r0 := time.Now()
		if _, err := v.Read(rel); err != nil {
			return d, fmt.Errorf("as-of read %s@%d: %w", rel, seq, err)
		}
		durs = append(durs, time.Since(r0))
	}
	d.ReadP50Us = pctUs(durs, 0.50)
	d.ReadP95Us = pctUs(durs, 0.95)

	// Oracle verification: exact member set, every payload CRC-identical.
	d.OracleOK = true
	res.OracleChecks++
	if len(rels) != len(o.crcs) {
		d.OracleOK = false
	}
	for _, rel := range rels {
		want, ok := o.crcs[rel]
		if !ok {
			d.OracleOK = false
			break
		}
		data, err := v.Read(rel)
		if err != nil || crc32.ChecksumIEEE(data) != want {
			d.OracleOK = false
			break
		}
	}
	if !d.OracleOK {
		res.OracleFails++
	}
	return d, nil
}

// RunTimeTravel executes the experiment against a real on-disk lake. logf
// (optional) narrates progress.
func RunTimeTravel(p TimeTravelParams, logf func(string, ...any)) (*TimeTravelResult, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	start := time.Now()
	dir, err := os.MkdirTemp("", "hedc-timetravel")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	lk, err := lake.Open(minidb.OSFS, dir)
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(42))
	res := &TimeTravelResult{Files: p.Files}

	// Ingest phase: batched stores, with a delete churn that tombstones an
	// old file every DeleteEvy batches (what dm retention does when it
	// relocates aged days to tape). The oracle records the exact catalog
	// after every commit.
	state := make(map[string]uint32)
	var oracles []ttOracle
	snap := func(seq uint64) {
		crcs := make(map[string]uint32, len(state))
		for k, v := range state {
			crcs[k] = v
		}
		oracles = append(oracles, ttOracle{seq: seq, crcs: crcs})
	}
	var ingested []string
	for i := 0; i < p.Files; i += p.BatchSize {
		var batch []lake.BatchFile
		for j := i; j < i+p.BatchSize && j < p.Files; j++ {
			rel := fmt.Sprintf("d%03d/u%06d.evt", j/50, j)
			data := make([]byte, p.FileBytes)
			rng.Read(data)
			batch = append(batch, lake.BatchFile{Rel: rel, Day: int64(j / 50), Data: data})
		}
		seq, err := lk.StoreBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("ingest batch at %d: %w", i, err)
		}
		for _, f := range batch {
			state[f.Rel] = crc32.ChecksumIEEE(f.Data)
			ingested = append(ingested, f.Rel)
		}
		snap(seq)

		if p.DeleteEvy > 0 && (i/p.BatchSize)%p.DeleteEvy == p.DeleteEvy-1 && len(ingested) > p.BatchSize {
			victim := ingested[rng.Intn(len(ingested)-p.BatchSize)]
			if _, ok := state[victim]; !ok {
				continue
			}
			seq, err := lk.Delete([]string{victim})
			if err != nil {
				return nil, fmt.Errorf("churn delete %s: %w", victim, err)
			}
			delete(state, victim)
			res.Deletes++
			snap(seq)
		}
	}
	res.Commits = lk.Head()
	res.JournalBytes = lk.Status().JournalBytes
	logf("ingested %d files over %d commits (%d churn deletes)", p.Files, res.Commits, res.Deletes)

	// Depth sweep, pre-compaction: evenly spaced commits from the earliest
	// snapshot to head. The deepest depth is pinned FIRST and held through
	// compaction + GC, so the later post-compaction sweep demonstrates the
	// pin keeping all measured history openable.
	var seqs []uint64
	for i := 0; i < p.Depths; i++ {
		idx := i * (len(oracles) - 1) / (p.Depths - 1)
		seqs = append(seqs, oracles[idx].seq)
	}
	oracleAt := func(seq uint64) *ttOracle {
		// Largest data-commit snapshot at or below seq.
		best := &oracles[0]
		for i := range oracles {
			if oracles[i].seq <= seq {
				best = &oracles[i]
			}
		}
		return best
	}
	anchor, err := lk.OpenAt(seqs[0])
	if err != nil {
		return nil, fmt.Errorf("anchor pin: %w", err)
	}
	defer anchor.Close()
	for _, seq := range seqs {
		d, err := measureDepth(lk, seq, oracleAt(seq), p, rng, res)
		if err != nil {
			return nil, err
		}
		res.Depths = append(res.Depths, d)
		logf("depth %d behind: open %.2fms, read p50 %.1fus, oracle ok=%v", d.Behind, d.OpenMs, d.ReadP50Us, d.OracleOK)
	}

	// Head-read baseline, then the compaction round. Compaction tombstones
	// its victims under fresh commits, so while the anchor pin is held
	// nothing physical can be reclaimed yet — that is the GC-safety
	// contract, measured rather than asserted.
	headReads := func() float64 {
		rels := lk.List()
		var durs []time.Duration
		for i := 0; i < p.Reads && len(rels) > 0; i++ {
			rel := rels[rng.Intn(len(rels))]
			r0 := time.Now()
			if _, err := lk.Read(rel); err == nil {
				durs = append(durs, time.Since(r0))
			}
		}
		return pctUs(durs, 0.50)
	}
	c := &res.Compaction
	st := lk.Status()
	c.ContainersBefore, c.PhysBefore, c.LiveBytes = st.ContainersLive, st.PhysBytes, st.LiveBytes
	c.ReadP50UsBefore = headReads()

	t0 := time.Now()
	opts := lake.CompactOptions{SmallBytes: 8 << 20, DeadFraction: 0.05, MinMerge: 2, MaxMerge: 64}
	for {
		cr, err := lk.Compact(opts)
		if err != nil {
			return nil, fmt.Errorf("compact: %w", err)
		}
		if cr.Merged == 0 {
			break
		}
		c.Merged += cr.Merged
	}
	c.CompactMs = float64(time.Since(t0).Nanoseconds()) / 1e6

	// Post-compaction sweep, anchor still pinned: every measured commit
	// must still open and still match its oracle — time travel survives
	// the physical rewrite.
	if lk.Horizon() > seqs[0] {
		return nil, fmt.Errorf("GC horizon %d passed the anchor pin at %d", lk.Horizon(), seqs[0])
	}
	for _, seq := range seqs {
		d, err := measureDepth(lk, seq, oracleAt(seq), p, rng, res)
		if err != nil {
			return nil, err
		}
		res.PostDepths = append(res.PostDepths, d)
	}

	// Drop the anchor; only now may GC retire the pre-compaction history
	// (churn tombstones and compaction victims alike).
	if err := anchor.Close(); err != nil {
		return nil, fmt.Errorf("anchor close: %w", err)
	}
	t0 = time.Now()
	gr, err := lk.GC(lk.Head())
	if err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	c.GCMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	c.Reclaimed = gr.Reclaimed
	st = lk.Status()
	c.ContainersAfter, c.PhysAfter = st.ContainersLive, st.PhysBytes
	c.ReadP50UsAfter = headReads()
	logf("compaction merged %d containers (%d -> %d, phys %d -> %d bytes), gc reclaimed %d after unpin",
		c.Merged, c.ContainersBefore, c.ContainersAfter, c.PhysBefore, c.PhysAfter, c.Reclaimed)

	if res.OracleFails > 0 {
		return res, fmt.Errorf("%d/%d oracle checks failed — as-of views diverged from the replay oracle", res.OracleFails, res.OracleChecks)
	}
	res.TotalElapsed = time.Since(start).Seconds()
	return res, nil
}

// FormatTimeTravel renders the experiment in the repo's table style.
func FormatTimeTravel(r *TimeTravelResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Time travel — as-of reads over the commit journal (%d files, %d commits, %d churn deletes)\n",
		r.Files, r.Commits, r.Deletes)
	fmt.Fprintf(&b, "  %-8s %-10s %-8s %-10s %-12s %-12s %s\n",
		"commit", "behind", "members", "open ms", "read p50 us", "read p95 us", "oracle")
	row := func(d TimeTravelDepth) {
		ok := "ok"
		if !d.OracleOK {
			ok = "FAIL"
		}
		fmt.Fprintf(&b, "  %-8d %-10d %-8d %-10.2f %-12.1f %-12.1f %s\n",
			d.Commit, d.Behind, d.Members, d.OpenMs, d.ReadP50Us, d.ReadP95Us, ok)
	}
	for _, d := range r.Depths {
		row(d)
	}
	c := r.Compaction
	fmt.Fprintf(&b, "compaction: %d containers merged, %d -> %d live containers, phys %.1f -> %.1f MiB (live %.1f MiB), gc reclaimed %.1f MiB in %.1f ms\n",
		c.Merged, c.ContainersBefore, c.ContainersAfter,
		float64(c.PhysBefore)/(1<<20), float64(c.PhysAfter)/(1<<20),
		float64(c.LiveBytes)/(1<<20), float64(c.Reclaimed)/(1<<20), c.CompactMs+c.GCMs)
	fmt.Fprintf(&b, "head read p50: %.1f -> %.1f us across the rewrite\n", c.ReadP50UsBefore, c.ReadP50UsAfter)
	fmt.Fprintf(&b, "  post-compaction depth sweep (anchor pin held the horizon at commit %d):\n", r.PostDepths[0].Commit)
	for _, d := range r.PostDepths {
		row(d)
	}
	fmt.Fprintf(&b, "oracle: %d checks, %d failures; journal %.1f MiB; %.1fs total\n",
		r.OracleChecks, r.OracleFails, float64(r.JournalBytes)/(1<<20), r.TotalElapsed)
	return b.String()
}

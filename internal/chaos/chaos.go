// Package chaos is the network-fault torture harness for the live middle
// tier — the counterpart of internal/torture (which breaks the storage
// under the database) for the wires between the tiers. A cell is a full
// small deployment: one shared networked database, two replicas dialing
// it, and a gateway fronting them. One hop of that deployment is wrapped
// in a fault.Net rig, and a scripted browse+write workload runs while the
// rig breaks the hop at exactly the Nth network operation in one of the
// shapes real networks fail (latency, partition, reset, slow drip, black
// hole, torn frame).
//
// For every enumerated schedule the harness asserts the end-to-end
// resilience contract:
//
//  1. Bounded latency: no request — served, degraded or failed — may
//     exceed the harness deadline. A hang is the one unforgivable
//     outcome; every timeout, breaker and deadline in the stack exists
//     to prevent it.
//  2. No duplicate effects: every write carries a unique marker value;
//     after the run the shared database must hold at most one row per
//     marker (exactly one if the write was acknowledged). Failover must
//     never re-execute a mutation that may have landed.
//  3. Bounded failure, full recovery: every error during the fault
//     window must be one of the typed, expected failures (transport,
//     DB-unavailable, deadline, overload, denial, degraded); after the
//     fault clears, the cluster must converge to serving everything
//     cleanly again within the convergence deadline.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/fault"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// Hop names the network link a schedule breaks.
type Hop string

const (
	// HopDB is replica-0's connection to the shared database (dbnet).
	HopDB Hop = "db"
	// HopHTTP is the gateway's connection to replica-0 (dm RPC over HTTP).
	HopHTTP Hop = "http"
)

// Schedule is one enumerated fault: break one hop, one way, at the
// At-th network operation after arming.
type Schedule struct {
	Hop  Hop
	Mode fault.NetMode
	At   int
}

// Name is the schedule's subtest-friendly identifier.
func (s Schedule) Name() string {
	return fmt.Sprintf("%s-%s-at%02d", s.Hop, s.Mode, s.At)
}

var netModes = []fault.NetMode{
	fault.NetLatency, fault.NetPartition, fault.NetReset,
	fault.NetSlowDrip, fault.NetBlackHole, fault.NetDropHalf,
}

var opIndices = []int{1, 5, 11, 23, 37}

// Schedules enumerates the full fault matrix: every mode on every hop at
// every armed op index — 6 × 2 × 5 = 60 distinct schedules.
func Schedules() []Schedule {
	var out []Schedule
	for _, hop := range []Hop{HopDB, HopHTTP} {
		for _, mode := range netModes {
			for _, at := range opIndices {
				out = append(out, Schedule{Hop: hop, Mode: mode, At: at})
			}
		}
	}
	return out
}

// Config tunes a run.
type Config struct {
	// Rounds is the number of fault-phase workload rounds (default 8;
	// each round is two anonymous reads and one write).
	Rounds int
	// MinFaultTime keeps the fault phase running for at least this long
	// regardless of Rounds — the CHAOSTIME knob.
	MinFaultTime time.Duration
	// Logger receives cell noise. Nil discards it.
	Logger *log.Logger
}

// Result is one schedule's outcome.
type Result struct {
	Schedule Schedule
	Fired    bool // the armed fault actually triggered

	// Fault-phase request accounting.
	Requests int
	OK       int // served live
	Degraded int // served from the gateway's stale cache, tagged
	TypedErr int // failed with an expected, typed error

	WritesAcked  int
	WritesFailed int

	// HealthyOK counts sharded-cell healthy-shard point reads served
	// live (invariant 4; always zero for unsharded schedules).
	HealthyOK int

	MaxWall   time.Duration // slowest fault-phase request
	Converged time.Duration // time from heal to a fully clean round
}

// Available returns the fraction of fault-phase requests that were
// answered with data (live or degraded).
func (r *Result) Available() float64 {
	if r.Requests == 0 {
		return 1
	}
	return float64(r.OK+r.Degraded) / float64(r.Requests)
}

// Harness timeouts. Everything is short: the cell exists to prove that
// no fault shape can stall a request past its budget, and short budgets
// keep 60 schedules affordable.
const (
	httpTimeout    = 300 * time.Millisecond // gateway→replica RPC budget
	dbCallTimeout  = 150 * time.Millisecond // replica→database call budget
	healthInterval = 20 * time.Millisecond
	breakerCool    = 80 * time.Millisecond
	retryBackoff   = 2 * time.Millisecond

	// reqDeadline is invariant 1's ceiling on any single workload request,
	// derived from the budgets above (two replica attempts at httpTimeout
	// plus a possible re-auth leg) with scheduler slack for parallel -race
	// runs. Far below "hang".
	reqDeadline = 2 * time.Second

	convergeDeadline = 5 * time.Second
	maxPumpOps       = 60 // extra reads to push the op counter to At
)

// cell is one live deployment under test.
type cell struct {
	db       *minidb.DB
	dbSrv    *dbnet.Server
	rig      *fault.Net
	clients  []*dbnet.Client
	replicas []*cluster.Replica
	gw       *cluster.Gateway

	token     string
	ip        string
	markerSeq int
	markers   []marker
}

// marker is one write's unique fingerprint: the TStart value it inserts.
type marker struct {
	t     float64
	acked bool
}

func (c *cell) close() {
	if c.gw != nil {
		c.gw.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	for _, cl := range c.clients {
		cl.Close()
	}
	if c.dbSrv != nil {
		c.dbSrv.Close()
	}
	if c.db != nil {
		c.db.Close()
	}
}

// newCell builds the deployment with the schedule's hop wrapped in the
// rig. Only replica-0's hop is faulted: chaos asserts that a cluster with
// one broken link keeps its promises, not that a fully dead one does
// (internal/cluster's degraded-mode tests cover total database loss).
func newCell(s Schedule, logger *log.Logger) (*cell, error) {
	c := &cell{rig: fault.NewNet(), ip: "10.9.0.1"}
	ok := false
	defer func() {
		if !ok {
			c.close()
		}
	}()

	var err error
	c.db, err = minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return nil, err
	}
	c.dbSrv, err = dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: c.db})
	if err != nil {
		return nil, err
	}

	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	boot, err := dm.Open(dm.Options{Node: "boot", MetaDB: c.db, Logger: logger})
	if err != nil {
		return nil, err
	}
	if err := boot.Bootstrap("secret"); err != nil {
		return nil, err
	}
	if err := boot.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		return nil, err
	}
	for i := 0; i < 16; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-chaos-%04d", i), Version: 1, Owner: "sci", Public: true,
			KindHint: []string{"flare", "burst"}[i%2], TStart: float64(i), TStop: float64(i + 1),
			Day: int64(i % 8), CalibVersion: 1,
		}
		if _, err := c.db.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return nil, err
		}
	}

	c.gw = cluster.NewGateway(cluster.GatewayOptions{
		HealthInterval:   healthInterval,
		RetryBackoff:     retryBackoff,
		BreakerThreshold: 2,
		BreakerCooldown:  breakerCool,
		Logger:           logger,
	})
	for i := 0; i < 2; i++ {
		opts := dbnet.ClientOptions{
			Addr:        c.dbSrv.Addr(),
			DialTimeout: dbCallTimeout,
			CallTimeout: dbCallTimeout,
		}
		if i == 0 && s.Hop == HopDB {
			opts.Dial = c.rig.Dial
		}
		cl, err := dbnet.Dial(opts)
		if err != nil {
			return nil, err
		}
		c.clients = append(c.clients, cl)
		rep, err := cluster.StartReplica(cluster.ReplicaOptions{
			Name: fmt.Sprintf("replica-%d", i), DB: cl,
		})
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)

		remote := dm.NewRemote(rep.URL(), nil)
		remote.Client = &http.Client{Timeout: httpTimeout}
		if i == 0 && s.Hop == HopHTTP {
			remote.Client.Transport = &http.Transport{DialContext: c.rig.DialContext}
		}
		c.gw.AddReplica(rep.Name(), remote)
	}
	ok = true
	return c, nil
}

// filterFor cycles the workload over distinct affinity keys so traffic
// reaches both replicas (rendezvous hashing splits the keys).
func filterFor(i int) dm.HLEFilter {
	return dm.HLEFilter{
		Kind:   []string{"flare", "burst"}[i%2],
		HasDay: true,
		Day:    int64(i % 8),
	}
}

// outcome classifies one request: "ok", "degraded", "typed", or "" for an
// error outside the failure model (an invariant violation).
func outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case cluster.IsDegraded(err):
		return "degraded"
	case dm.IsUnreachable(err), dm.IsDBUnavailable(err), dm.IsDenied(err):
		return "typed"
	case errors.Is(err, cluster.ErrNoReplicas), errors.Is(err, cluster.ErrOverloaded):
		return "typed"
	case dbnet.IsDeadline(err), dbnet.IsUnavailable(err):
		return "typed"
	default:
		return ""
	}
}

// timed runs one workload request under invariant 1 and classifies it
// under invariant 3, folding the outcome into res.
func (c *cell) timed(res *Result, what string, fn func() error) error {
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	res.Requests++
	if wall > res.MaxWall {
		res.MaxWall = wall
	}
	if wall > reqDeadline {
		return fmt.Errorf("%s: request took %v, past the %v deadline (err=%v)", what, wall, reqDeadline, err)
	}
	switch outcome(err) {
	case "ok":
		res.OK++
	case "degraded":
		res.Degraded++
	case "typed":
		res.TypedErr++
	default:
		return fmt.Errorf("%s: error outside the failure model: %v", what, err)
	}
	return nil
}

// write creates one HLE carrying a fresh unique marker. A denial means
// the session died with its replica (the documented demotion path): the
// client re-authenticates and retries the same marker — safe, because a
// denial is an answer, proof the write did not execute.
func (c *cell) write() error {
	c.markerSeq++
	m := marker{t: 50000 + float64(c.markerSeq)}
	err := c.createHLE(m.t)
	if dm.IsDenied(err) {
		si, aerr := c.gw.Authenticate("sci", "pw", c.ip, dm.SessionHLE)
		if aerr != nil {
			c.markers = append(c.markers, m)
			return aerr
		}
		c.token = si.Token
		err = c.createHLE(m.t)
	}
	m.acked = err == nil
	c.markers = append(c.markers, m)
	return err
}

func (c *cell) createHLE(t float64) error {
	_, err := c.gw.CreateHLE(c.token, c.ip, &schema.HLE{
		KindHint: "flare", Day: 1, TStart: t, TStop: t + 0.5,
		Version: 1, CalibVersion: 1,
	})
	return err
}

// warm brings the cell to a healthy serving baseline: every filter
// answers, a session exists, a write lands. Failures here are harness
// bugs, not chaos findings.
func (c *cell) warm() error {
	for i := 0; i < 4; i++ {
		if _, err := c.gw.QueryHLEs("", c.ip, filterFor(i)); err != nil {
			return fmt.Errorf("warm query %d: %w", i, err)
		}
	}
	si, err := c.gw.Authenticate("sci", "pw", c.ip, dm.SessionHLE)
	if err != nil {
		return fmt.Errorf("warm auth: %w", err)
	}
	c.token = si.Token
	if err := c.write(); err != nil {
		return fmt.Errorf("warm write: %w", err)
	}
	return nil
}

// converge waits for the healed cluster to serve a fully clean round:
// every filter live (not degraded), a write accepted. Invariant 3's
// recovery half.
func (c *cell) converge() error {
	deadline := time.Now().Add(convergeDeadline)
	var last error
	for time.Now().Before(deadline) {
		last = func() error {
			for i := 0; i < 4; i++ {
				if _, err := c.gw.QueryHLEs("", c.ip, filterFor(i)); err != nil {
					return fmt.Errorf("query %d: %w", i, err)
				}
			}
			if err := c.write(); err != nil {
				return fmt.Errorf("write: %w", err)
			}
			return nil
		}()
		if last == nil {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("cluster did not converge within %v after heal: %v", convergeDeadline, last)
}

// verifyMarkers checks invariant 2 against the shared database directly:
// at most one row per marker, exactly one for acknowledged writes.
func (c *cell) verifyMarkers() error {
	for _, m := range c.markers {
		res, err := c.db.Query(minidb.Query{
			Table: schema.TableHLE,
			Where: []minidb.Pred{{Col: "tstart", Op: minidb.OpEq, Val: minidb.F(m.t)}},
		})
		if err != nil {
			return fmt.Errorf("marker query: %w", err)
		}
		n := len(res.Rows)
		if n > 1 {
			return fmt.Errorf("marker %v: %d rows — a mutation was executed twice", m.t, n)
		}
		if m.acked && n != 1 {
			return fmt.Errorf("marker %v: acknowledged write has %d rows, want 1", m.t, n)
		}
	}
	return nil
}

// Run executes one schedule and checks every invariant. The returned
// error is a violated invariant (or a harness failure); the Result is
// the availability record for schedules that pass.
func Run(s Schedule, cfg Config) (*Result, error) {
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	c, err := newCell(s, cfg.Logger)
	if err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	defer c.close()
	if err := c.warm(); err != nil {
		return nil, err
	}

	res := &Result{Schedule: s}
	c.rig.SetFault(c.rig.OpCount()+s.At, s.Mode)

	start := time.Now()
	for r := 0; r < rounds || time.Since(start) < cfg.MinFaultTime; r++ {
		i := r
		if err := c.timed(res, "anon query", func() error {
			_, err := c.gw.QueryHLEs("", c.ip, filterFor(i))
			return err
		}); err != nil {
			return res, err
		}
		if err := c.timed(res, "anon count", func() error {
			_, err := c.gw.CountHLEs("", c.ip, filterFor(i+1))
			return err
		}); err != nil {
			return res, err
		}
		var werr error
		if err := c.timed(res, "write", func() error {
			werr = c.write()
			return werr
		}); err != nil {
			return res, err
		}
		if werr == nil {
			res.WritesAcked++
		} else {
			res.WritesFailed++
		}
	}
	// If the scripted rounds did not push the hop to its armed op (quiet
	// hops count slowly), pump reads until the fault fires.
	for p := 0; !c.rig.Faulted() && p < maxPumpOps; p++ {
		if err := c.timed(res, "pump query", func() error {
			_, err := c.gw.QueryHLEs("", c.ip, filterFor(p))
			return err
		}); err != nil {
			return res, err
		}
	}
	res.Fired = c.rig.Faulted()
	c.rig.ClearFault()

	healed := time.Now()
	if err := c.converge(); err != nil {
		return res, err
	}
	res.Converged = time.Since(healed)

	if err := c.verifyMarkers(); err != nil {
		return res, err
	}
	if !res.Fired {
		return res, fmt.Errorf("armed fault at op +%d never fired (%d hop ops total) — the schedule tested nothing", s.At, c.rig.OpCount())
	}
	return res, nil
}

package chaos

import (
	"os"
	"testing"
	"time"
)

// chaosConfig reads the CHAOSTIME knob: a duration floor for each
// schedule's fault phase (`CHAOSTIME=2s make chaos` holds every fault for
// at least two seconds of workload). Unset means the fast scripted rounds.
func chaosConfig(t *testing.T) Config {
	cfg := Config{}
	if v := os.Getenv("CHAOSTIME"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("CHAOSTIME=%q: %v", v, err)
		}
		cfg.MinFaultTime = d
	}
	return cfg
}

// TestScheduleMatrix pins the enumeration floor: the harness must cover
// at least 50 distinct schedules.
func TestScheduleMatrix(t *testing.T) {
	scheds := Schedules()
	if len(scheds) < 50 {
		t.Fatalf("only %d fault schedules enumerated, want >= 50", len(scheds))
	}
	seen := make(map[string]bool)
	for _, s := range scheds {
		if seen[s.Name()] {
			t.Fatalf("duplicate schedule %s", s.Name())
		}
		seen[s.Name()] = true
	}
	t.Logf("%d distinct fault schedules", len(scheds))
}

// TestShardScheduleMatrix pins the sharded enumeration floor: every net
// fault mode at every op index against the shard-1 hop.
func TestShardScheduleMatrix(t *testing.T) {
	scheds := ShardSchedules()
	if len(scheds) < 30 {
		t.Fatalf("only %d sharded fault schedules enumerated, want >= 30", len(scheds))
	}
	seen := make(map[string]bool)
	for _, s := range scheds {
		if s.Hop != HopShard {
			t.Fatalf("schedule %s is not on the shard hop", s.Name())
		}
		if seen[s.Name()] {
			t.Fatalf("duplicate schedule %s", s.Name())
		}
		seen[s.Name()] = true
	}
	t.Logf("%d distinct sharded fault schedules", len(scheds))
}

// TestShardChaosEnumeration runs every sharded schedule: one shard
// partitioned away from the whole middle tier, with the extra invariant
// that healthy-shard point reads stay live throughout.
func TestShardChaosEnumeration(t *testing.T) {
	cfg := chaosConfig(t)
	scheds := ShardSchedules()
	if testing.Short() {
		var sub []Schedule
		for _, s := range scheds {
			if s.At == 5 {
				sub = append(sub, s)
			}
		}
		scheds = sub
	}
	for _, s := range scheds {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := RunSharded(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests == 0 {
				t.Fatal("fault phase issued no requests")
			}
			if res.HealthyOK == 0 {
				t.Fatal("no healthy-shard reads were exercised")
			}
			t.Logf("%d requests: %d ok (%d healthy-shard) %d degraded %d typed; slowest %v; converged in %v; availability %.2f",
				res.Requests, res.OK, res.HealthyOK, res.Degraded, res.TypedErr,
				res.MaxWall.Round(time.Millisecond), res.Converged.Round(time.Millisecond),
				res.Available())
		})
	}
}

// TestChaosEnumeration is the tentpole: every schedule runs the scripted
// workload against a live cell with its hop rigged to fail, and every
// invariant — bounded latency, no duplicate effects, typed failures only,
// convergence after heal — must hold.
func TestChaosEnumeration(t *testing.T) {
	cfg := chaosConfig(t)
	scheds := Schedules()
	if testing.Short() {
		// One schedule per (hop, mode) pair keeps the short -race lane
		// fast while still exercising every fault flavor.
		var sub []Schedule
		for _, s := range scheds {
			if s.At == 5 {
				sub = append(sub, s)
			}
		}
		scheds = sub
	}
	for _, s := range scheds {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests == 0 {
				t.Fatal("fault phase issued no requests")
			}
			t.Logf("%d requests: %d ok, %d degraded, %d typed errors; slowest %v; converged in %v; availability %.2f",
				res.Requests, res.OK, res.Degraded, res.TypedErr,
				res.MaxWall.Round(time.Millisecond), res.Converged.Round(time.Millisecond),
				res.Available())
		})
	}
}

// Lake chaos: concurrency-fault schedules for the journal-backed archive.
// Where chaos.go breaks the wires between tiers, this file breaks the
// *timing* inside the archive tier: background compaction, GC, pin churn,
// deletes, offline flips and disk faults all race live ingest against one
// commit journal. Each schedule runs a set of concurrent actors over a
// fault-injecting filesystem and asserts the lake's contract:
//
//  1. No lost containers: every acknowledged store reads back
//     bit-identically after the storm, and every acknowledged delete
//     stays deleted — no matter what compaction and GC rewrote meanwhile.
//  2. Pinned views are frozen: a time-travel view opened before the churn
//     serves the exact original bytes throughout and at the end.
//  3. Typed failures only: while a fault window is open (offline, ENOSPC,
//     crash) operations may fail, but only with the expected sentinel
//     errors; anything else is a harness violation.
//  4. Post-heal convergence: after the fault clears (including a crash +
//     journal replay), the lake serves a fully clean round — store, read,
//     compact, GC and a structural Verify — within the convergence
//     deadline.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/fault"
	"repro/internal/lake"
)

// LakeSchedule names one storm: which actors run alongside the always-on
// ingest loop, and which disk fault (if any) opens mid-run.
type LakeSchedule struct {
	ID string

	Compact    bool // background compaction loop
	GC         bool // background GC loop (horizon chases head)
	Pins       bool // pin/verify/unpin churn
	Deletes    bool // delete acknowledged files while compaction runs
	Offline    bool // flip the archive offline/online
	TimeTravel bool // one long-lived pinned view read continuously

	ENOSPC bool // open an out-of-space window mid-run, then heal
	Crash  bool // crash the filesystem mid-run, then recover + reopen
}

// Name is the schedule's subtest-friendly identifier.
func (s LakeSchedule) Name() string { return s.ID }

// LakeSchedules enumerates the ten storms.
func LakeSchedules() []LakeSchedule {
	return []LakeSchedule{
		{ID: "compact-vs-ingest", Compact: true},
		{ID: "gc-vs-ingest", GC: true},
		{ID: "compact-gc-vs-ingest", Compact: true, GC: true},
		{ID: "pin-churn-vs-gc", Pins: true, GC: true},
		{ID: "delete-churn-vs-compact", Deletes: true, Compact: true},
		{ID: "offline-flip-vs-ingest", Offline: true, Compact: true},
		{ID: "enospc-vs-compact", Compact: true, GC: true, ENOSPC: true},
		{ID: "crash-mid-compact", Compact: true, GC: true, Crash: true},
		{ID: "timetravel-vs-compact", TimeTravel: true, Compact: true, GC: true},
		{ID: "mixed-storm", Compact: true, GC: true, Pins: true, Deletes: true,
			TimeTravel: true, Offline: true},
	}
}

// LakeResult is one storm's accounting.
type LakeResult struct {
	Schedule LakeSchedule

	Stores       int // acknowledged stores
	StoreErrs    int // tolerated (typed) store failures
	Deleted      int // acknowledged deletes
	Compactions  int // compaction rounds that merged something
	GCRuns       int // GC rounds that advanced or swept
	PinCycles    int // pin/verify/unpin cycles completed
	AsOfReads    int // reads served by the long-lived pinned view
	OfflineFlips int
	Tolerated    int // total typed errors observed during the storm

	Crashed   bool          // the armed crash fired (Crash schedules)
	Converged time.Duration // heal → first fully clean round
}

// lakeTolerated classifies an actor error: true for the typed failures a
// fault window is allowed to cause, false for everything outside the
// failure model.
func lakeTolerated(err error) bool {
	switch {
	case errors.Is(err, fault.ErrNoSpace), errors.Is(err, fault.ErrCrashed):
		return true
	case errors.Is(err, archive.ErrOffline), errors.Is(err, archive.ErrFull):
		return true
	}
	return false
}

// lakeCell is one storm's shared state.
type lakeCell struct {
	fs   *fault.FS
	arch *archive.Archive

	mu      sync.Mutex
	acked   map[string][]byte // rel -> payload, recorded only on ack
	order   []string          // ack order, the delete actor's queue
	deleted map[string]bool   // rel -> delete was acknowledged
	seq     int
	tol     int
	viol    error // first invariant violation, sticky
}

func (c *lakeCell) fail(format string, args ...any) {
	c.mu.Lock()
	if c.viol == nil {
		c.viol = fmt.Errorf(format, args...)
	}
	c.mu.Unlock()
}

func (c *lakeCell) violation() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viol
}

// tolerate folds an actor error into the result under invariant 3: typed
// errors count, anything else is a violation.
func (c *lakeCell) tolerate(who string, err error) {
	if lakeTolerated(err) {
		c.mu.Lock()
		c.tol++
		c.mu.Unlock()
		return
	}
	c.fail("%s: error outside the failure model: %v", who, err)
}

// lakePayload is the deterministic content oracle: rel + a filler whose
// length varies so containers mix sizes.
func lakePayload(seq int) (string, []byte) {
	rel := fmt.Sprintf("d%02d/u%05d", seq%8, seq)
	data := []byte(fmt.Sprintf("chaos-lake %s |", rel))
	for len(data) < 128+(seq%11)*97 {
		data = append(data, byte('a'+seq%26))
	}
	return rel, data
}

// store pushes one unique file through the archive surface, recording the
// payload only when the store is acknowledged.
func (c *lakeCell) store() {
	c.mu.Lock()
	c.seq++
	seq := c.seq
	c.mu.Unlock()
	rel, data := lakePayload(seq)
	if err := c.arch.Store(rel, data); err != nil {
		c.tolerate("store", err)
		return
	}
	c.mu.Lock()
	c.acked[rel] = data
	c.order = append(c.order, rel)
	c.mu.Unlock()
}

// popAcked takes the oldest acknowledged, undeleted rel off the queue (the
// delete actor's victim), or "".
func (c *lakeCell) popAcked() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return ""
	}
	rel := c.order[0]
	c.order = c.order[1:]
	return rel
}

// lakeCompactOpts keeps every container a merge candidate so compaction
// churns continuously.
func lakeCompactOpts() lake.CompactOptions {
	return lake.CompactOptions{SmallBytes: 1 << 20, DeadFraction: 0.2, MinMerge: 2, MaxMerge: 32}
}

// RunLake executes one storm and checks every invariant. The returned
// error is a violated invariant (or a harness failure); the Result is the
// churn record for schedules that pass.
func RunLake(s LakeSchedule, cfg Config) (*LakeResult, error) {
	const lakeDir = "lakedir"
	window := 250 * time.Millisecond
	if cfg.MinFaultTime > window {
		window = cfg.MinFaultTime
	}

	c := &lakeCell{
		fs:      fault.NewFS(),
		acked:   make(map[string][]byte),
		deleted: make(map[string]bool),
	}
	var err error
	c.arch, err = archive.NewLakeVFS(c.fs, "lake-0", archive.Disk, lakeDir, 0)
	if err != nil {
		return nil, fmt.Errorf("cell: %w", err)
	}
	lk := c.arch.Lake()
	res := &LakeResult{Schedule: s}

	// Warm: a served baseline the pin actors can snapshot.
	for i := 0; i < 12; i++ {
		c.store()
	}
	if len(c.acked) != 12 {
		return nil, fmt.Errorf("warm: only %d/12 stores acknowledged", len(c.acked))
	}

	// The long-lived time-travel view pins the warm catalog and snapshots
	// it before any churn begins (invariant 2's oracle).
	var ttView *lake.View
	ttWant := make(map[string][]byte)
	if s.TimeTravel {
		ttView, err = lk.OpenAt(0)
		if err != nil {
			return nil, fmt.Errorf("time-travel pin: %w", err)
		}
		for _, rel := range ttView.List() {
			data, err := ttView.Read(rel)
			if err != nil {
				return nil, fmt.Errorf("time-travel snapshot %s: %w", rel, err)
			}
			ttWant[rel] = data
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	actor := func(name string, every time.Duration, fn func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				fn()
				time.Sleep(every)
			}
		}()
		_ = name
	}

	actor("ingest", time.Millisecond, c.store)
	if s.Compact {
		actor("compact", 3*time.Millisecond, func() {
			cr, err := lk.Compact(lakeCompactOpts())
			if err != nil {
				c.tolerate("compact", err)
				return
			}
			if cr.Merged > 0 {
				c.mu.Lock()
				res.Compactions++
				c.mu.Unlock()
			}
		})
	}
	if s.GC {
		actor("gc", 5*time.Millisecond, func() {
			gr, err := lk.GC(lk.Head())
			if err != nil {
				c.tolerate("gc", err)
				return
			}
			if gr.Deleted > 0 || gr.Seq != 0 {
				c.mu.Lock()
				res.GCRuns++
				c.mu.Unlock()
			}
		})
	}
	if s.Pins {
		actor("pins", 2*time.Millisecond, func() {
			v, err := lk.OpenAt(0)
			if err != nil {
				c.tolerate("pin open", err)
				return
			}
			defer v.Close()
			rels := v.List()
			if len(rels) == 0 {
				return
			}
			// Snapshot a handful of members, let the churn run a beat,
			// then require bit-identical re-reads through the pin.
			n := len(rels)
			if n > 4 {
				n = 4
			}
			snap := make(map[string][]byte, n)
			for _, rel := range rels[:n] {
				data, err := v.Read(rel)
				if err != nil {
					c.tolerate("pin read", err)
					return
				}
				snap[rel] = data
			}
			time.Sleep(2 * time.Millisecond)
			for rel, want := range snap {
				got, err := v.Read(rel)
				if err != nil {
					if lakeTolerated(err) {
						return
					}
					c.fail("pinned member %s unreadable under churn: %v", rel, err)
					return
				}
				if string(got) != string(want) {
					c.fail("pinned member %s mutated under churn", rel)
					return
				}
			}
			c.mu.Lock()
			res.PinCycles++
			c.mu.Unlock()
		})
	}
	if s.Deletes {
		actor("delete", 4*time.Millisecond, func() {
			rel := c.popAcked()
			if rel == "" {
				return
			}
			if err := c.arch.Remove(rel); err != nil {
				c.tolerate("delete", err)
				return
			}
			c.mu.Lock()
			c.deleted[rel] = true
			res.Deleted++
			c.mu.Unlock()
		})
	}
	if s.Offline {
		actor("offline", 12*time.Millisecond, func() {
			c.arch.SetOnline(false)
			time.Sleep(6 * time.Millisecond)
			c.arch.SetOnline(true)
			c.mu.Lock()
			res.OfflineFlips++
			c.mu.Unlock()
		})
	}
	if s.TimeTravel {
		actor("timetravel", time.Millisecond, func() {
			for rel, want := range ttWant {
				got, err := ttView.Read(rel)
				if err != nil {
					if lakeTolerated(err) {
						return
					}
					c.fail("time-travel member %s unreadable: %v", rel, err)
					return
				}
				if string(got) != string(want) {
					c.fail("time-travel member %s mutated", rel)
					return
				}
				c.mu.Lock()
				res.AsOfReads++
				c.mu.Unlock()
			}
		})
	}

	// Fault phase: let the storm build, open the window, let it rage,
	// heal, and give the actors a post-heal beat before stopping them.
	third := window / 3
	time.Sleep(third)
	switch {
	case s.ENOSPC:
		c.fs.SetFault(c.fs.OpCount()+1, fault.ModeENOSPC)
		time.Sleep(third)
		c.fs.ClearFault()
		time.Sleep(third)
	case s.Crash:
		c.fs.SetFault(c.fs.OpCount()+7, fault.ModeCrash)
		deadline := time.Now().Add(2 * time.Second)
		for !c.fs.Crashed() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !c.fs.Crashed() {
			close(stop)
			wg.Wait()
			return res, fmt.Errorf("armed crash never fired (%d fs ops)", c.fs.OpCount())
		}
		time.Sleep(third) // actors observe the dead disk; errors must stay typed
	default:
		time.Sleep(2 * third)
	}
	close(stop)
	wg.Wait()

	// Heal. A crash needs the full recovery path: settle the disk image,
	// then reopen the archive so the journal replays.
	c.arch.SetOnline(true)
	c.fs.ClearFault()
	if c.fs.Crashed() {
		res.Crashed = true
		c.fs.Recover()
		c.arch, err = archive.NewLakeVFS(c.fs, "lake-0", archive.Disk, lakeDir, 0)
		if err != nil {
			return res, fmt.Errorf("reopen after crash: %w", err)
		}
		lk = c.arch.Lake()
	}

	c.mu.Lock()
	res.Stores = len(c.acked)
	res.StoreErrs = c.tol
	res.Tolerated = c.tol
	c.mu.Unlock()
	if err := c.violation(); err != nil {
		return res, err
	}
	if (s.ENOSPC || s.Offline || s.Crash) && res.Tolerated == 0 {
		return res, fmt.Errorf("fault window caused no typed errors — the schedule tested nothing")
	}

	// Invariant 1: every acknowledged store reads back bit-identically;
	// every acknowledged delete stays deleted.
	for rel, want := range c.acked {
		if c.deleted[rel] {
			if lk.Exists(rel) {
				return res, fmt.Errorf("acknowledged delete of %s was resurrected", rel)
			}
			continue
		}
		got, err := lk.Read(rel)
		if err != nil {
			return res, fmt.Errorf("acknowledged store %s lost: %v", rel, err)
		}
		if string(got) != string(want) {
			return res, fmt.Errorf("acknowledged store %s diverged (%d vs %d bytes)", rel, len(got), len(want))
		}
	}

	// Invariant 2's closing sweep: the long-lived view still serves the
	// warm snapshot. (No schedule combines TimeTravel with Crash: the
	// in-process view handle dies with the simulated process. Durable-pin
	// resurrection after a crash is internal/torture's territory.)
	if s.TimeTravel {
		if res.Crashed {
			return res, fmt.Errorf("schedule combines TimeTravel with Crash — unsupported")
		}
		for rel, want := range ttWant {
			got, err := ttView.Read(rel)
			if err != nil {
				return res, fmt.Errorf("time-travel member %s lost after heal: %v", rel, err)
			}
			if string(got) != string(want) {
				return res, fmt.Errorf("time-travel member %s diverged after heal", rel)
			}
		}
		if err := ttView.Close(); err != nil {
			return res, fmt.Errorf("time-travel close: %v", err)
		}
	}

	// Invariant 4: a fully clean round within the convergence deadline —
	// store, read, compact, GC, and a structural verify.
	healed := time.Now()
	deadline := healed.Add(convergeDeadline)
	var last error
	for time.Now().Before(deadline) {
		last = func() error {
			c.mu.Lock()
			c.seq++
			seq := c.seq
			c.mu.Unlock()
			rel, data := lakePayload(seq)
			if err := c.arch.Store(rel, data); err != nil {
				return fmt.Errorf("probe store: %w", err)
			}
			got, err := lk.Read(rel)
			if err != nil || string(got) != string(data) {
				return fmt.Errorf("probe read: %d bytes, %v", len(got), err)
			}
			if _, err := lk.Compact(lakeCompactOpts()); err != nil {
				return fmt.Errorf("probe compact: %w", err)
			}
			if _, err := lk.GC(lk.Head()); err != nil {
				return fmt.Errorf("probe gc: %w", err)
			}
			if probs := lk.Verify(); len(probs) > 0 {
				return fmt.Errorf("verify: %v", probs)
			}
			return nil
		}()
		if last == nil {
			res.Converged = time.Since(healed)
			return res, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return res, fmt.Errorf("lake did not converge within %v after heal: %v", convergeDeadline, last)
}

package chaos

import (
	"testing"
	"time"
)

// TestLakeScheduleMatrix pins the storm enumeration: ten distinct named
// schedules, each exercising a different actor mix.
func TestLakeScheduleMatrix(t *testing.T) {
	scheds := LakeSchedules()
	if len(scheds) != 10 {
		t.Fatalf("%d lake schedules enumerated, want 10", len(scheds))
	}
	seen := make(map[string]bool)
	for _, s := range scheds {
		if s.ID == "" {
			t.Fatal("schedule with empty ID")
		}
		if seen[s.Name()] {
			t.Fatalf("duplicate schedule %s", s.Name())
		}
		seen[s.Name()] = true
		if s.TimeTravel && s.Crash {
			t.Fatalf("schedule %s combines TimeTravel with Crash", s.Name())
		}
	}
}

// TestLakeChaosEnumeration runs every storm: concurrent actors churn one
// commit journal while ingest keeps landing, and every lake invariant —
// acked stores bit-identical, pinned views frozen, typed failures only,
// post-heal convergence — must hold.
func TestLakeChaosEnumeration(t *testing.T) {
	cfg := chaosConfig(t)
	for _, s := range LakeSchedules() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			t.Parallel()
			res, err := RunLake(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stores < 20 {
				t.Fatalf("only %d stores acknowledged — the storm barely ran", res.Stores)
			}
			if s.Compact && res.Compactions == 0 {
				t.Fatal("compaction actor never merged anything")
			}
			if s.Pins && res.PinCycles == 0 {
				t.Fatal("pin actor completed no cycles")
			}
			if s.TimeTravel && res.AsOfReads == 0 {
				t.Fatal("time-travel actor served no reads")
			}
			if s.Offline && res.OfflineFlips == 0 {
				t.Fatal("offline actor never flipped")
			}
			if s.Crash && !res.Crashed {
				t.Fatal("crash schedule did not crash")
			}
			t.Logf("%d stores (%d typed errs), %d deletes, %d compactions, %d gc runs, %d pin cycles, %d as-of reads, %d flips; converged in %v",
				res.Stores, res.StoreErrs, res.Deleted, res.Compactions,
				res.GCRuns, res.PinCycles, res.AsOfReads, res.OfflineFlips,
				res.Converged.Round(time.Millisecond))
		})
	}
}

// Sharded-cell chaos: the same network-fault discipline as chaos.go, but
// the deployment under test is the PR 7 sharded metadata tier — two shard
// databases behind dbnet, two replicas whose DMs route through
// shard.Router, and a gateway in front. The rigged hop is every replica's
// dbnet link to shard 1: breaking it partitions one shard away from the
// whole middle tier, which is the failure the shard router's typed-error
// and circuit-breaker machinery exists for.
//
// On top of the three chaos invariants (bounded latency, no duplicate
// effects, typed failures + convergence) the sharded cell asserts a
// fourth:
//
//  4. Partial availability: while shard 1 is unreachable, point reads
//     whose partition key routes to shard 0 must still be served LIVE —
//     not degraded, not failed. A router that lets one dead shard poison
//     single-shard traffic has lost the point of sharding.
//
// Scatter reads (catalog queries, counts) during the fault may be served
// live (soft faults), degraded from the gateway's stale cache, or fail
// with a typed error inside the deadline — and for the hard fault shapes
// (partition, black hole, reset) at least one scatter request must
// actually be pushed off the live path, proving the schedule bit.
package chaos

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/fault"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/shard"
)

// HopShard is the dbnet link from every replica's router to shard 1.
const HopShard Hop = "shard1"

// ShardSchedules enumerates the sharded-cell fault matrix: every net
// fault mode against the shard-1 hop at every armed op index.
func ShardSchedules() []Schedule {
	var out []Schedule
	for _, mode := range netModes {
		for _, at := range opIndices {
			out = append(out, Schedule{Hop: HopShard, Mode: mode, At: at})
		}
	}
	return out
}

// hardMode reports whether a fault shape severs the hop persistently (as
// opposed to slowing it, or breaking it once and letting the client's
// reconnect absorb the hit, as a single reset does): for these, scatter
// traffic cannot stay fully live once the fault fires.
func hardMode(m fault.NetMode) bool {
	return m == fault.NetPartition || m == fault.NetBlackHole
}

// shardedCell is one live sharded deployment under test: two shard
// databases, each behind its own dbnet server; two replicas, each a DM
// over its own shard.Router over per-shard dbnet clients; one gateway.
type shardedCell struct {
	dbs      []*minidb.DB
	srvs     []*dbnet.Server
	rig      *fault.Net
	clients  []*dbnet.Client
	replicas []*cluster.Replica
	gw       *cluster.Gateway

	token     string
	ip        string
	markerSeq int
	markers   []marker

	// Seeded public HLE ids by owning shard: shard0 ids are the "healthy
	// shard" probes (invariant 4), shard1 ids the partitioned ones.
	shard0IDs []string
	shard1IDs []string
}

func (c *shardedCell) close() {
	if c.gw != nil {
		c.gw.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	for _, cl := range c.clients {
		cl.Close()
	}
	for _, s := range c.srvs {
		s.Close()
	}
	for _, db := range c.dbs {
		db.Close()
	}
}

const chaosShards = 2

// newShardedCell builds the deployment. Shard-1's dial is wrapped in the
// rig for BOTH replicas: the schedule models the shard itself partitioned
// from the middle tier, not one replica's flaky cable (chaos.go covers
// that shape against the unsharded cell).
func newShardedCell(logger *log.Logger) (*shardedCell, error) {
	c := &shardedCell{rig: fault.NewNet(), ip: "10.9.1.1"}
	ok := false
	defer func() {
		if !ok {
			c.close()
		}
	}()
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}

	engines := make(map[int]minidb.Engine, chaosShards)
	for i := 0; i < chaosShards; i++ {
		db, err := minidb.Open("", schema.AllSchemas()...)
		if err != nil {
			return nil, err
		}
		c.dbs = append(c.dbs, db)
		srv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: db})
		if err != nil {
			return nil, err
		}
		c.srvs = append(c.srvs, srv)
		engines[i] = db
	}

	// Bootstrap and seed through an in-process router over the raw
	// engines (not Closed: it owns nothing, the cell closes the DBs).
	boot, err := shard.NewRouter(shard.Options{Shards: engines})
	if err != nil {
		return nil, err
	}
	bootDM, err := dm.Open(dm.Options{Node: "boot", MetaDB: boot, Logger: logger})
	if err != nil {
		return nil, err
	}
	if err := bootDM.Bootstrap("secret"); err != nil {
		return nil, err
	}
	if err := bootDM.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		return nil, err
	}
	// Seed 8 public HLEs per shard, probing ids until each side is full,
	// so scatter queries genuinely span both shards and invariant 4 has
	// known-healthy keys to probe.
	m := boot.Map()
	for seq := 0; len(c.shard0IDs) < 8 || len(c.shard1IDs) < 8; seq++ {
		id := fmt.Sprintf("hle-schaos-%04d", seq)
		owner := m.ReadOwner(shard.SlotOf(minidb.S(id)))
		ids := &c.shard0IDs
		if owner != m.Home() {
			ids = &c.shard1IDs
		}
		if len(*ids) >= 8 {
			continue
		}
		h := &schema.HLE{
			ID: id, Version: 1, Owner: "sci", Public: true,
			KindHint: []string{"flare", "burst"}[seq%2],
			TStart:   float64(seq), TStop: float64(seq + 1),
			Day: int64(seq % 8), CalibVersion: 1,
		}
		if _, err := boot.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return nil, err
		}
		*ids = append(*ids, id)
	}

	c.gw = cluster.NewGateway(cluster.GatewayOptions{
		HealthInterval:   healthInterval,
		RetryBackoff:     retryBackoff,
		BreakerThreshold: 2,
		BreakerCooldown:  breakerCool,
		Logger:           logger,
	})
	for i := 0; i < 2; i++ {
		shardEngines := make(map[int]minidb.Engine, chaosShards)
		for sid := 0; sid < chaosShards; sid++ {
			opts := dbnet.ClientOptions{
				Addr:        c.srvs[sid].Addr(),
				DialTimeout: dbCallTimeout,
				CallTimeout: dbCallTimeout,
			}
			if sid == 1 {
				opts.Dial = c.rig.Dial
			}
			cl, err := dbnet.Dial(opts)
			if err != nil {
				return nil, err
			}
			c.clients = append(c.clients, cl)
			shardEngines[sid] = cl
		}
		router, err := shard.NewRouter(shard.Options{
			Shards:          shardEngines,
			BreakerCooldown: breakerCool,
			Logger:          logger,
		})
		if err != nil {
			return nil, err
		}
		rep, err := cluster.StartReplica(cluster.ReplicaOptions{
			Name: fmt.Sprintf("sreplica-%d", i), DB: router, Logger: logger,
		})
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)
		c.gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}
	ok = true
	return c, nil
}

// timedCall is cell.timed's free-function twin for the sharded cell: it
// enforces invariant 1, folds the classified outcome into res, and hands
// the classification back so callers can layer stricter demands on it.
func timedCall(res *Result, what string, fn func() error) (string, error) {
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	res.Requests++
	if wall > res.MaxWall {
		res.MaxWall = wall
	}
	if wall > reqDeadline {
		return "", fmt.Errorf("%s: request took %v, past the %v deadline (err=%v)", what, wall, reqDeadline, err)
	}
	o := outcome(err)
	switch o {
	case "ok":
		res.OK++
	case "degraded":
		res.Degraded++
	case "typed":
		res.TypedErr++
	default:
		return "", fmt.Errorf("%s: error outside the failure model: %v", what, err)
	}
	return o, nil
}

// healthyRead is invariant 4: a point read keyed to shard 0 must be
// served live whatever is happening to shard 1.
func (c *shardedCell) healthyRead(res *Result, i int) error {
	id := c.shard0IDs[i%len(c.shard0IDs)]
	o, err := timedCall(res, "healthy-shard read", func() error {
		_, err := c.gw.GetHLE("", c.ip, id)
		return err
	})
	if err != nil {
		return err
	}
	if o != "ok" {
		return fmt.Errorf("healthy-shard read %s was %q, want live: one dead shard poisoned single-shard traffic", id, o)
	}
	res.HealthyOK++
	return nil
}

// write creates one marker-carrying HLE through the gateway, with the
// same re-auth-on-denial contract as the unsharded cell. Sharded twist:
// the new row's shard follows its generated id's hash, so during a
// shard-1 fault roughly half the writes fail typed — and their markers
// must still never surface twice.
func (c *shardedCell) write() error {
	c.markerSeq++
	m := marker{t: 60000 + float64(c.markerSeq)}
	err := c.createHLE(m.t)
	if dm.IsDenied(err) {
		si, aerr := c.gw.Authenticate("sci", "pw", c.ip, dm.SessionHLE)
		if aerr != nil {
			c.markers = append(c.markers, m)
			return aerr
		}
		c.token = si.Token
		err = c.createHLE(m.t)
	}
	m.acked = err == nil
	c.markers = append(c.markers, m)
	return err
}

func (c *shardedCell) createHLE(t float64) error {
	_, err := c.gw.CreateHLE(c.token, c.ip, &schema.HLE{
		KindHint: "flare", Day: 1, TStart: t, TStop: t + 0.5,
		Version: 1, CalibVersion: 1,
	})
	return err
}

// warm brings the sharded cell to a healthy baseline: scatter queries,
// counts, point reads on both shards, a session and a write — and it
// primes the gateway's stale cache so hard faults can degrade.
func (c *shardedCell) warm() error {
	for i := 0; i < 4; i++ {
		if _, err := c.gw.QueryHLEs("", c.ip, filterFor(i)); err != nil {
			return fmt.Errorf("warm scatter query %d: %w", i, err)
		}
		if _, err := c.gw.CountHLEs("", c.ip, filterFor(i)); err != nil {
			return fmt.Errorf("warm scatter count %d: %w", i, err)
		}
	}
	for _, id := range append(append([]string(nil), c.shard0IDs...), c.shard1IDs...) {
		if _, err := c.gw.GetHLE("", c.ip, id); err != nil {
			return fmt.Errorf("warm point read %s: %w", id, err)
		}
	}
	si, err := c.gw.Authenticate("sci", "pw", c.ip, dm.SessionHLE)
	if err != nil {
		return fmt.Errorf("warm auth: %w", err)
	}
	c.token = si.Token
	if err := c.write(); err != nil {
		return fmt.Errorf("warm write: %w", err)
	}
	return nil
}

// converge waits for the healed sharded cell to serve a fully live
// round — scatter query and count, point reads on BOTH shards, a write
// accepted — proving the router's shard-1 breakers closed and the
// partitioned shard rejoined.
func (c *shardedCell) converge() error {
	deadline := time.Now().Add(convergeDeadline)
	var last error
	for time.Now().Before(deadline) {
		last = func() error {
			if _, err := c.gw.QueryHLEs("", c.ip, filterFor(0)); err != nil {
				return fmt.Errorf("scatter query: %w", err)
			}
			if _, err := c.gw.CountHLEs("", c.ip, filterFor(1)); err != nil {
				return fmt.Errorf("scatter count: %w", err)
			}
			for _, id := range []string{c.shard0IDs[0], c.shard1IDs[0]} {
				if _, err := c.gw.GetHLE("", c.ip, id); err != nil {
					return fmt.Errorf("point read %s: %w", id, err)
				}
			}
			if err := c.write(); err != nil {
				return fmt.Errorf("write: %w", err)
			}
			return nil
		}()
		if last == nil {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("sharded cell did not converge within %v after heal: %v", convergeDeadline, last)
}

// verifyMarkers checks invariant 2 across BOTH shard databases: a marker
// may live on either shard (its row's id decides), must appear at most
// once in the union, and exactly once if acknowledged.
func (c *shardedCell) verifyMarkers() error {
	for _, m := range c.markers {
		n := 0
		for sid, db := range c.dbs {
			res, err := db.Query(minidb.Query{
				Table: schema.TableHLE,
				Where: []minidb.Pred{{Col: "tstart", Op: minidb.OpEq, Val: minidb.F(m.t)}},
			})
			if err != nil {
				return fmt.Errorf("marker query on shard %d: %w", sid, err)
			}
			n += len(res.Rows)
		}
		if n > 1 {
			return fmt.Errorf("marker %v: %d rows across shards — a mutation was executed twice", m.t, n)
		}
		if m.acked && n != 1 {
			return fmt.Errorf("marker %v: acknowledged write has %d rows, want 1", m.t, n)
		}
	}
	return nil
}

// RunSharded executes one schedule against the sharded cell and checks
// invariants 1-4. Schedules from ShardSchedules() only (the hop is fixed
// to shard 1's dbnet link).
func RunSharded(s Schedule, cfg Config) (*Result, error) {
	if s.Hop != HopShard {
		return nil, fmt.Errorf("RunSharded wants a %s schedule, got hop %s", HopShard, s.Hop)
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 8
	}
	c, err := newShardedCell(cfg.Logger)
	if err != nil {
		return nil, fmt.Errorf("sharded cell: %w", err)
	}
	defer c.close()
	if err := c.warm(); err != nil {
		return nil, err
	}

	res := &Result{Schedule: s}
	c.rig.SetFault(c.rig.OpCount()+s.At, s.Mode)

	scatterOffLive := 0 // scatter requests answered degraded or typed
	start := time.Now()
	for r := 0; r < rounds || time.Since(start) < cfg.MinFaultTime; r++ {
		i := r
		if err := c.healthyRead(res, i); err != nil {
			return res, err
		}
		o, err := timedCall(res, "scatter query", func() error {
			_, err := c.gw.QueryHLEs("", c.ip, filterFor(i))
			return err
		})
		if err != nil {
			return res, err
		}
		if o != "ok" {
			scatterOffLive++
		}
		o, err = timedCall(res, "scatter count", func() error {
			_, err := c.gw.CountHLEs("", c.ip, filterFor(i+1))
			return err
		})
		if err != nil {
			return res, err
		}
		if o != "ok" {
			scatterOffLive++
		}
		// Point read on the partitioned shard: any classified outcome —
		// live before the fault fires, degraded from the stale cache or
		// typed after — as long as it stays inside the deadline.
		if _, err := timedCall(res, "sick-shard read", func() error {
			_, err := c.gw.GetHLE("", c.ip, c.shard1IDs[i%len(c.shard1IDs)])
			return err
		}); err != nil {
			return res, err
		}
		var werr error
		if _, err := timedCall(res, "write", func() error {
			werr = c.write()
			return werr
		}); err != nil {
			return res, err
		}
		if werr == nil {
			res.WritesAcked++
		} else {
			res.WritesFailed++
		}
	}
	// Pump scatter traffic over the rigged hop until the armed fault
	// fires (healthy-shard reads never touch it, so only scatter rounds
	// advance the op counter).
	for p := 0; !c.rig.Faulted() && p < maxPumpOps; p++ {
		o, err := timedCall(res, "pump scatter", func() error {
			_, err := c.gw.QueryHLEs("", c.ip, filterFor(p))
			return err
		})
		if err != nil {
			return res, err
		}
		if o != "ok" {
			scatterOffLive++
		}
	}
	res.Fired = c.rig.Faulted()

	// Post-fire probes: with the fault definitely live, invariant 4 must
	// hold right now, and hard fault shapes must push scatter traffic off
	// the live path.
	if res.Fired {
		for p := 0; p < 2; p++ {
			if err := c.healthyRead(res, p); err != nil {
				return res, err
			}
			o, err := timedCall(res, "post-fire scatter", func() error {
				_, err := c.gw.CountHLEs("", c.ip, filterFor(p))
				return err
			})
			if err != nil {
				return res, err
			}
			if o != "ok" {
				scatterOffLive++
			}
		}
	}
	c.rig.ClearFault()

	if hardMode(s.Mode) && scatterOffLive == 0 {
		return res, fmt.Errorf("%s fired but every scatter request stayed live — the fault never bit", s.Mode)
	}

	healed := time.Now()
	if err := c.converge(); err != nil {
		return res, err
	}
	res.Converged = time.Since(healed)

	if err := c.verifyMarkers(); err != nil {
		return res, err
	}
	if !res.Fired {
		return res, fmt.Errorf("armed fault at op +%d never fired (%d hop ops total) — the schedule tested nothing", s.At, c.rig.OpCount())
	}
	return res, nil
}

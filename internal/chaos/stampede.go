// Flare-alert stampede harness. The paper's load model is a quiet
// archive that occasionally catches fire: a gamma-ray burst alert goes
// out and the anonymous browse rate multiplies within seconds while the
// scientists who were already working expect their sessions to stay
// interactive. This file drives that scenario open-loop — arrivals keep
// coming at the scheduled rate whether or not earlier requests have
// finished, the regime where a closed-loop benchmark lies — against a
// live cell, under either admission policy:
//
//   - Fixed: the pre-overload gateway (a fixed admission semaphore, no
//     database queue bound) fronted by naive clients that retry every
//     shed after a fixed short pause.
//   - Adaptive: the latency-gradient limiter + brownout ladder, a
//     queue-bounded database tier that refuses doomed work at the
//     socket, and well-behaved clients that honor retry-after hints.
//
// The harness asserts the stampede contract rather than raw throughput:
// every failure is typed, no request outlives the hard wall, a goodput
// floor holds through the spike, interactive p99 stays bounded, clients
// never retried into a tier before its hint elapsed, and after the
// crowd leaves the brownout ladder walks back to normal and the cell
// serves at baseline again.
package chaos

import (
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/fault"
	"repro/internal/minidb"
	"repro/internal/overload"
	"repro/internal/schema"
)

// StampedeSchedule is one stampede scenario.
type StampedeSchedule struct {
	// Name identifies the schedule in subtests and JSON.
	Name string
	// SlowReplica wraps replica-0's HTTP hop in an injected-latency rig
	// for the duration of the spike: the stampede arrives while half the
	// serving capacity is limping.
	SlowReplica bool
	// RecoveryFocus shortens the spike and stretches the recovery phase;
	// the schedule exists to prove the ladder walks DOWN.
	RecoveryFocus bool
}

// StampedeSchedules enumerates the scenarios: the plain 10x spike, the
// spike landing on a cell with one slow replica, and the post-spike
// recovery walk-down.
func StampedeSchedules() []StampedeSchedule {
	return []StampedeSchedule{
		{Name: "spike10x"},
		{Name: "spike-slow-replica", SlowReplica: true},
		{Name: "post-spike-recovery", RecoveryFocus: true},
	}
}

// StampedeConfig tunes a run.
type StampedeConfig struct {
	// Adaptive selects the admission policy (the A/B axis): false is the
	// fixed semaphore + naive-retry baseline, true is the limiter +
	// brownout + hint-honoring stack.
	Adaptive bool
	// InteractiveRPS is the authenticated scientists' arrival rate,
	// constant through every phase (default 8).
	InteractiveRPS float64
	// BrowseRPS is the anonymous crowd's baseline rate (default 30); the
	// spike multiplies it by SpikeFactor (default 10).
	BrowseRPS   float64
	SpikeFactor float64
	// Warm, Spike, Recover are the phase durations (defaults 600ms, 2s,
	// 1.5s; RecoveryFocus schedules override Spike/Recover).
	Warm, Spike, Recover time.Duration
	// SLO is the goodput bound: a request answered within SLO of its
	// arrival counts as good (default 2s).
	SLO time.Duration
	// Logger receives cell noise. Nil discards it.
	Logger *log.Logger
}

func (c *StampedeConfig) defaults(s StampedeSchedule) {
	if c.InteractiveRPS <= 0 {
		c.InteractiveRPS = 8
	}
	if c.BrowseRPS <= 0 {
		c.BrowseRPS = 40
	}
	if c.SpikeFactor <= 0 {
		c.SpikeFactor = 10
	}
	if c.Warm <= 0 {
		c.Warm = 600 * time.Millisecond
	}
	if c.Spike <= 0 {
		c.Spike = 2 * time.Second
	}
	if c.Recover <= 0 {
		c.Recover = 1500 * time.Millisecond
	}
	if s.RecoveryFocus {
		c.Spike = c.Spike / 2
		c.Recover = c.Recover * 2
	}
	if c.SLO <= 0 {
		c.SLO = 2 * time.Second
	}
}

// StampedeResult is one run's record. Latency percentiles and goodput
// are measured over requests that ARRIVED during the spike phase — the
// only phase where the two policies can differ.
type StampedeResult struct {
	Schedule string `json:"schedule"`
	Policy   string `json:"policy"` // "fixed" or "adaptive"

	Arrivals int `json:"arrivals"` // spike-phase arrivals, both classes
	Served   int `json:"served"`   // answered live
	Degraded int `json:"degraded"` // answered from the stale cache, tagged
	Shed     int `json:"shed"`     // typed overload after client retry policy
	TypedErr int `json:"typed_errors"`

	GoodputRPS       float64       `json:"goodput_rps"` // answered within SLO / spike seconds
	InteractiveP99   time.Duration `json:"interactive_p99_ns"`
	InteractiveP50   time.Duration `json:"interactive_p50_ns"`
	BrowseP99        time.Duration `json:"browse_p99_ns"`
	Retries          int64         `json:"retries"`
	PrematureRetries int64         `json:"premature_retries"` // fired before the hint elapsed
	DBRefusals       int64         `json:"db_refusals"`       // statusOverload frames from the DB tier
	StaleServes      int64         `json:"stale_serves"`      // brownout commit-behind answers

	MaxStage    string `json:"max_stage"` // deepest brownout rung reached
	Transitions int64  `json:"ladder_transitions"`

	// Recovery: measured after the crowd leaves.
	RecoveredStage string        `json:"recovered_stage"`
	RecoverTime    time.Duration `json:"recover_time_ns"` // spike end -> normal stage + clean round
	BaselineP99    time.Duration `json:"baseline_p99_ns"` // post-recovery probe p99
}

// Goodput fraction of spike arrivals answered within the SLO.
func (r *StampedeResult) GoodFraction() float64 {
	if r.Arrivals == 0 {
		return 1
	}
	return float64(r.Served+r.Degraded) / float64(r.Arrivals)
}

// Harness bounds. The stampede wall is looser than the fault-matrix
// reqDeadline: a naive fixed-mode client may legitimately burn several
// HTTP timeouts before giving up, and the harness only insists that
// nothing hangs past the wall.
const (
	stampedeWall        = 8 * time.Second
	stampedeHTTPTimeout = time.Second
	stampedeMaxTries    = 3
	naiveRetryPause     = 10 * time.Millisecond
	recoverWall         = 6 * time.Second
	probeCount          = 20
)

// stampedeCell is a live deployment under stampede: one queue-bounded
// shared database, two replicas, a gateway under the selected policy.
type stampedeCell struct {
	db       *minidb.DB
	dbSrv    *dbnet.Server
	rig      *fault.Net
	clients  []*dbnet.Client
	replicas []*cluster.Replica
	gw       *cluster.Gateway
	token    string
	ip       string

	maxStage atomic.Int32
}

func (c *stampedeCell) close() {
	if c.gw != nil {
		c.gw.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	for _, cl := range c.clients {
		cl.Close()
	}
	if c.dbSrv != nil {
		c.dbSrv.Close()
	}
	if c.db != nil {
		c.db.Close()
	}
}

// newStampedeCell builds the deployment. The replica capacity model is
// the Figure 4 node (2 workers, thrash past the knee) scaled so the
// 10x browse spike lands well past aggregate capacity — the regime the
// policies must be told apart in.
func newStampedeCell(s StampedeSchedule, cfg StampedeConfig) (*stampedeCell, error) {
	c := &stampedeCell{rig: fault.NewNet(), ip: "10.9.1.1"}
	c.rig.Delay = 120 * time.Millisecond
	ok := false
	defer func() {
		if !ok {
			c.close()
		}
	}()

	var err error
	c.db, err = minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		return nil, err
	}
	srvOpts := dbnet.Options{DB: c.db, MaxOpsPerSec: 400}
	if cfg.Adaptive {
		// The adaptive stack bounds the database queue: work whose
		// projected wait exceeds the bound is refused at the socket with
		// a retry-after hint instead of rotting in line.
		srvOpts.MaxQueueDelay = 50 * time.Millisecond
	}
	c.dbSrv, err = dbnet.Listen("127.0.0.1:0", srvOpts)
	if err != nil {
		return nil, err
	}

	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	boot, err := dm.Open(dm.Options{Node: "boot", MetaDB: c.db, Logger: logger})
	if err != nil {
		return nil, err
	}
	if err := boot.Bootstrap("secret"); err != nil {
		return nil, err
	}
	if err := boot.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		return nil, err
	}
	for i := 0; i < 16; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-stamp-%04d", i), Version: 1, Owner: "sci", Public: true,
			KindHint: []string{"flare", "burst"}[i%2], TStart: float64(i), TStop: float64(i + 1),
			Day: int64(i % 8), CalibVersion: 1,
		}
		if _, err := c.db.Insert(schema.TableHLE, h.ToRow()); err != nil {
			return nil, err
		}
	}

	gopts := cluster.GatewayOptions{
		HealthInterval:   25 * time.Millisecond,
		RetryBackoff:     2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
		Logger:           logger,
	}
	if cfg.Adaptive {
		gopts.AdaptiveLimit = &overload.Config{
			Initial: 24, Min: 4, Max: 64,
			MaxWait:       100 * time.Millisecond,
			QueueInterval: 100 * time.Millisecond,
		}
		gopts.Brownout = &overload.LadderConfig{Dwell: 200 * time.Millisecond}
		gopts.BrownoutTick = 25 * time.Millisecond
	} else {
		// The pre-overload configuration: a generous fixed semaphore.
		gopts.MaxInflight = 64
	}
	c.gw = cluster.NewGateway(gopts)

	for i := 0; i < 2; i++ {
		cl, err := dbnet.Dial(dbnet.ClientOptions{
			Addr:        c.dbSrv.Addr(),
			DialTimeout: 300 * time.Millisecond,
			CallTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		c.clients = append(c.clients, cl)
		rep, err := cluster.StartReplica(cluster.ReplicaOptions{
			Name: fmt.Sprintf("replica-%d", i), DB: cl,
			Capacity: cluster.Capacity{
				Workers: 2, CPUPerCall: 20 * time.Millisecond,
				ThrashThreshold: 6, ThrashFactor: 0.2,
			},
		})
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)

		remote := dm.NewRemote(rep.URL(), nil)
		remote.Client = &http.Client{Timeout: stampedeHTTPTimeout}
		if i == 0 && s.SlowReplica {
			remote.Client.Transport = &http.Transport{DialContext: c.rig.DialContext}
		}
		c.gw.AddReplica(rep.Name(), remote)
	}

	if cfg.Adaptive {
		// Brownout wiring: stale-read rungs flip every replica's DM to
		// commit-behind serving. The hedge/bulk rungs have no farm in
		// this cell; reaching them is still recorded via maxStage.
		reps := c.replicas
		c.gw.SetBrownoutHook(overload.StageActions{
			SetStale: func(on bool) {
				for _, r := range reps {
					r.DM().SetServeStale(on)
				}
			},
		})
	}
	ok = true
	return c, nil
}

// recorder collects per-class latencies for requests that arrived
// during the spike, and the outcome tallies.
type recorder struct {
	mu          sync.Mutex
	interactive []time.Duration
	browse      []time.Duration

	arrivals atomic.Int64
	served   atomic.Int64
	degraded atomic.Int64
	shed     atomic.Int64
	typed    atomic.Int64

	retries   atomic.Int64
	premature atomic.Int64

	violation atomic.Pointer[string]
}

func (r *recorder) fail(format string, args ...any) {
	s := fmt.Sprintf(format, args...)
	r.violation.CompareAndSwap(nil, &s)
}

func (r *recorder) record(interactive bool, d time.Duration) {
	r.mu.Lock()
	if interactive {
		r.interactive = append(r.interactive, d)
	} else {
		r.browse = append(r.browse, d)
	}
	r.mu.Unlock()
}

func pctile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

// request runs one arrival to completion under the client retry policy.
// inSpike marks arrivals whose outcome scores the spike phase.
func (c *stampedeCell) request(rec *recorder, cfg StampedeConfig, interactive, inSpike bool, seq int) {
	start := time.Now()
	if inSpike {
		rec.arrivals.Add(1)
	}
	do := func() error {
		if interactive {
			_, err := c.gw.CountHLEs(c.token, c.ip, filterFor(seq))
			return err
		}
		_, err := c.gw.QueryHLEs("", c.ip, filterFor(seq))
		return err
	}
	var err error
	for try := 1; ; try++ {
		err = do()
		if err == nil || cluster.IsDegraded(err) {
			break
		}
		ra, hinted := overload.RetryAfterOf(err)
		if !hinted || try >= stampedeMaxTries {
			break
		}
		// Client retry policy — the half of the A/B that lives outside
		// the cell. A well-behaved client sleeps the hinted interval; a
		// naive one hammers back after a fixed pause, the retry storm
		// the hint exists to prevent.
		pause := ra
		if !cfg.Adaptive {
			pause = naiveRetryPause
			if pause < ra {
				rec.premature.Add(1)
			}
		}
		rec.retries.Add(1)
		time.Sleep(pause)
		if time.Since(start) > cfg.SLO {
			// Past the SLO the answer is worthless either way; one more
			// try at most keeps naive clients from looping forever.
			try = stampedeMaxTries
		}
	}
	wall := time.Since(start)
	if wall > stampedeWall {
		rec.fail("%s request hung %v, past the %v wall (err=%v)",
			map[bool]string{true: "interactive", false: "browse"}[interactive], wall, stampedeWall, err)
		return
	}
	if !inSpike {
		return
	}
	switch outcome(err) {
	case "ok":
		rec.served.Add(1)
		rec.record(interactive, wall)
	case "degraded":
		rec.degraded.Add(1)
		rec.record(interactive, wall)
	case "typed":
		if overload.IsOverload(err) {
			rec.shed.Add(1)
		} else {
			rec.typed.Add(1)
		}
		// A fast typed refusal is the design working; it still scores
		// the latency distribution (the client got its answer).
		rec.record(interactive, wall)
	default:
		rec.fail("error outside the failure model: %v", err)
	}
}

// generate runs one arrival class open-loop for d at rate rps: arrivals
// are spawned on a 10ms metronome regardless of completions.
func (c *stampedeCell) generate(rec *recorder, cfg StampedeConfig, interactive, inSpike bool, rps float64, d time.Duration, wg *sync.WaitGroup) {
	const tick = 10 * time.Millisecond
	perTick := rps * tick.Seconds()
	end := time.Now().Add(d)
	var carry float64
	var seq int
	for time.Now().Before(end) {
		carry += perTick
		for ; carry >= 1; carry-- {
			seq++
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				c.request(rec, cfg, interactive, inSpike, n)
			}(seq)
		}
		time.Sleep(tick)
	}
}

// trackStage samples the brownout ladder, keeping the deepest rung seen.
func (c *stampedeCell) trackStage(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(10 * time.Millisecond):
			if s := int32(c.gw.BrownoutStage()); s > c.maxStage.Load() {
				c.maxStage.Store(s)
			}
		}
	}
}

// RunStampede executes one schedule under one policy and checks the
// harness invariants (typed failures, bounded wall). The policy-level
// assertions — goodput floor, p99 bound, zero premature retries,
// recovery — belong to the caller: the chaos test asserts them for the
// adaptive policy, the bench records both sides of the A/B.
func RunStampede(s StampedeSchedule, cfg StampedeConfig) (*StampedeResult, error) {
	cfg.defaults(s)
	c, err := newStampedeCell(s, cfg)
	if err != nil {
		return nil, fmt.Errorf("stampede cell: %w", err)
	}
	defer c.close()

	// Warm: session, caches, baseline load.
	si, err := c.gw.Authenticate("sci", "pw", c.ip, dm.SessionHLE)
	if err != nil {
		return nil, fmt.Errorf("auth: %w", err)
	}
	c.token = si.Token
	for i := 0; i < 8; i++ {
		if _, err := c.gw.QueryHLEs("", c.ip, filterFor(i)); err != nil {
			return nil, fmt.Errorf("warm query %d: %w", i, err)
		}
	}

	rec := &recorder{}
	stopTrack := make(chan struct{})
	go c.trackStage(stopTrack)

	var wg sync.WaitGroup
	phase := func(inSpike bool, browseRPS float64, d time.Duration) {
		var pw sync.WaitGroup
		pw.Add(2)
		go func() { defer pw.Done(); c.generate(rec, cfg, true, inSpike, cfg.InteractiveRPS, d, &wg) }()
		go func() { defer pw.Done(); c.generate(rec, cfg, false, inSpike, browseRPS, d, &wg) }()
		pw.Wait()
	}

	phase(false, cfg.BrowseRPS, cfg.Warm)

	if s.SlowReplica {
		c.rig.SetFault(c.rig.OpCount()+1, fault.NetLatency)
	}
	db0 := c.dbSrv.OverloadRefusals()
	phase(true, cfg.BrowseRPS*cfg.SpikeFactor, cfg.Spike)
	spikeEnd := time.Now()
	if s.SlowReplica {
		c.rig.ClearFault()
	}

	// Recovery phase: the crowd leaves, baseline load continues.
	phase(false, cfg.BrowseRPS, cfg.Recover)
	wg.Wait()
	close(stopTrack)
	if v := rec.violation.Load(); v != nil {
		return nil, fmt.Errorf("invariant violated: %s", *v)
	}

	res := &StampedeResult{
		Schedule:         s.Name,
		Policy:           map[bool]string{true: "adaptive", false: "fixed"}[cfg.Adaptive],
		Arrivals:         int(rec.arrivals.Load()),
		Served:           int(rec.served.Load()),
		Degraded:         int(rec.degraded.Load()),
		Shed:             int(rec.shed.Load()),
		TypedErr:         int(rec.typed.Load()),
		Retries:          rec.retries.Load(),
		PrematureRetries: rec.premature.Load(),
		DBRefusals:       int64(c.dbSrv.OverloadRefusals() - db0),
		MaxStage:         overload.Stage(c.maxStage.Load()).String(),
	}
	rec.mu.Lock()
	res.InteractiveP99 = pctile(rec.interactive, 0.99)
	res.InteractiveP50 = pctile(rec.interactive, 0.50)
	res.BrowseP99 = pctile(rec.browse, 0.99)
	rec.mu.Unlock()
	res.GoodputRPS = float64(res.Served+res.Degraded) / cfg.Spike.Seconds()
	for _, r := range c.replicas {
		res.StaleServes += r.DM().Stats().StaleServes.Load()
	}
	if st := c.gw.Status().Overload; st.Adaptive {
		res.Transitions = st.Transitions
	}

	// Recovery: wait for the ladder to stand down, then probe a quiet
	// baseline round and score its tail.
	deadline := time.Now().Add(recoverWall)
	for c.gw.BrownoutStage() != overload.StageNormal {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("brownout ladder stuck at %v %v after the spike",
				c.gw.BrownoutStage(), recoverWall)
		}
		time.Sleep(20 * time.Millisecond)
	}
	var probes []time.Duration
	for i := 0; i < probeCount; i++ {
		t0 := time.Now()
		if _, err := c.gw.CountHLEs(c.token, c.ip, filterFor(i)); err != nil {
			if time.Now().Before(deadline) {
				i-- // breaker cooldowns may still be draining; retry the probe
				time.Sleep(25 * time.Millisecond)
				continue
			}
			return res, fmt.Errorf("post-spike probe %d still failing: %w", i, err)
		}
		probes = append(probes, time.Since(t0))
	}
	res.RecoveredStage = c.gw.BrownoutStage().String()
	res.RecoverTime = time.Since(spikeEnd) - cfg.Recover // probe time beyond the scripted phase
	if res.RecoverTime < 0 {
		res.RecoverTime = 0
	}
	res.BaselineP99 = pctile(probes, 0.99)
	return res, nil
}

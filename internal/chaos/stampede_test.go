package chaos

import (
	"testing"
	"time"

	"repro/internal/overload"
)

// shortStampede trims the phases for the short -race smoke lane: one
// second of spike is enough to prove the contract holds, not enough to
// measure a pretty A/B (the bench does that).
func shortStampede(cfg *StampedeConfig) {
	cfg.Warm = 300 * time.Millisecond
	cfg.Spike = time.Second
	cfg.Recover = 600 * time.Millisecond
}

// TestStampedeSchedules pins the enumeration: the three scenarios the
// overload work is specified against.
func TestStampedeSchedules(t *testing.T) {
	scheds := StampedeSchedules()
	if len(scheds) < 3 {
		t.Fatalf("only %d stampede schedules, want >= 3", len(scheds))
	}
	seen := make(map[string]bool)
	var slow, recov bool
	for _, s := range scheds {
		if seen[s.Name] {
			t.Fatalf("duplicate schedule %s", s.Name)
		}
		seen[s.Name] = true
		slow = slow || s.SlowReplica
		recov = recov || s.RecoveryFocus
	}
	if !slow || !recov {
		t.Fatalf("schedule matrix missing a scenario: slowReplica=%v recoveryFocus=%v", slow, recov)
	}
}

// TestStampedeAdaptive is the stampede contract under the adaptive
// policy, per schedule: every failure typed, a goodput floor through
// the spike, interactive p99 bounded, zero retries fired before a
// hinted interval elapsed, and the ladder stood down afterwards.
func TestStampedeAdaptive(t *testing.T) {
	scheds := StampedeSchedules()
	if testing.Short() {
		scheds = scheds[:1] // the plain 10x spike is the smoke schedule
	}
	for _, s := range scheds {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			cfg := StampedeConfig{Adaptive: true}
			if testing.Short() {
				shortStampede(&cfg)
			}
			res, err := RunStampede(s, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Arrivals == 0 {
				t.Fatal("spike phase issued no requests")
			}
			// Goodput floor: the cell must keep answering through the
			// crowd — at least the interactive class's worth of work per
			// second, served live or commit-behind.
			if res.GoodputRPS < 8 {
				t.Fatalf("goodput collapsed to %.1f req/s under the spike", res.GoodputRPS)
			}
			// Bounded interactive tail: scientists stay interactive while
			// the crowd is shed.
			if res.InteractiveP99 > 2*time.Second {
				t.Fatalf("interactive p99 = %v under the spike, want <= 2s", res.InteractiveP99)
			}
			// Hint discipline: no client fired a retry into a tier before
			// the tier's own retry-after elapsed.
			if res.PrematureRetries != 0 {
				t.Fatalf("%d retries fired before the hinted interval", res.PrematureRetries)
			}
			// Recovery: ladder down, baseline tail back.
			if res.RecoveredStage != overload.StageNormal.String() {
				t.Fatalf("post-spike stage = %s, want normal", res.RecoveredStage)
			}
			if res.BaselineP99 > time.Second {
				t.Fatalf("post-spike baseline p99 = %v, want <= 1s", res.BaselineP99)
			}
			t.Logf("%s/%s: %d arrivals, %d served + %d degraded + %d shed (goodput %.1f/s), interactive p50/p99 %v/%v, db refusals %d, stale serves %d, max stage %s, recovered in %v (baseline p99 %v)",
				res.Schedule, res.Policy, res.Arrivals, res.Served, res.Degraded, res.Shed,
				res.GoodputRPS, res.InteractiveP50.Round(time.Millisecond),
				res.InteractiveP99.Round(time.Millisecond), res.DBRefusals, res.StaleServes,
				res.MaxStage, res.RecoverTime.Round(time.Millisecond),
				res.BaselineP99.Round(time.Millisecond))
		})
	}
}

// TestStampedeFixedStaysTyped runs the fixed-policy baseline once: the
// old configuration is allowed to be slow and to retry naively — the
// A/B in the bench quantifies how much — but even it must fail typed
// and never hang. Skipped in -short: the naive client's pile-up makes
// it the slowest run of the suite.
func TestStampedeFixedStaysTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-policy baseline is bench material; smoke lane covers adaptive")
	}
	res, err := RunStampede(StampedeSchedule{Name: "spike10x"}, StampedeConfig{Adaptive: false})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 {
		t.Fatal("spike phase issued no requests")
	}
	t.Logf("fixed baseline: %d arrivals, %d served (goodput %.1f/s), interactive p99 %v, %d retries (%d premature)",
		res.Arrivals, res.Served, res.GoodputRPS,
		res.InteractiveP99.Round(time.Millisecond), res.Retries, res.PrematureRetries)
}

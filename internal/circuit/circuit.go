// Package circuit provides the three-state circuit breaker shared by the
// cluster gateway (per-replica, PR 5) and the shard router (per-shard).
// A breaker opens after a threshold of consecutive transport failures,
// holds requests off for a cooldown, then admits exactly one probe at a
// time (half-open) until a success closes it again.
package circuit

import (
	"sync"
	"time"
)

// state is the classic three-state circuit.
type state int32

const (
	stateClosed state = iota
	stateOpen
	stateHalfOpen
)

func (s state) String() string {
	switch s {
	case stateClosed:
		return "closed"
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	}
	return "?"
}

// Breaker opens after threshold consecutive transport failures, holds
// requests off for cooldown, then admits exactly one probe at a time
// (half-open) until a success closes it again.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    state
	fails    int
	openedAt time.Time
	opens    int64 // lifetime open transitions, for /stats
}

// New returns a closed breaker that opens after threshold consecutive
// failures and re-probes after cooldown.
func New(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Available is the non-mutating routing check: would a call be admitted?
func (b *Breaker) Available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed, stateHalfOpen:
		return b.state == stateClosed // half-open: the probe slot is taken
	default:
		return time.Since(b.openedAt) >= b.cooldown
	}
}

// TryAcquire admits a call. Closed circuits admit freely; an open circuit
// past its cooldown converts to half-open and admits the caller as its
// single probe; otherwise the call is refused. Every true return must be
// answered by Success or Failure.
func (b *Breaker) TryAcquire() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateHalfOpen:
		return false // a probe is already in flight
	default: // open
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = stateHalfOpen
		return true
	}
}

// Success reports a completed call that proves the peer answers.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.mu.Unlock()
}

// Failure reports a transport failure. A failed half-open probe re-opens
// immediately; consecutive closed-state failures open at the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateHalfOpen:
		b.state = stateOpen
		b.openedAt = time.Now()
		b.opens++
	case stateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = stateOpen
			b.openedAt = time.Now()
			b.opens++
		}
	default: // already open (a straggler from before it opened)
	}
}

// Reset closes the circuit outright — an active health prober has fresh
// evidence the peer answers.
func (b *Breaker) Reset() {
	b.mu.Lock()
	b.state = stateClosed
	b.fails = 0
	b.mu.Unlock()
}

// Snapshot returns (state name, consecutive fails, lifetime opens).
func (b *Breaker) Snapshot() (string, int, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state
	if st == stateOpen && time.Since(b.openedAt) >= b.cooldown {
		st = stateHalfOpen // cosmetically: next call will probe
	}
	return st.String(), b.fails, b.opens
}

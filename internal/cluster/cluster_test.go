package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// testCluster is a live middle tier: one shared networked database, N
// replicas each dialing it, and a gateway fronting them.
type testCluster struct {
	db       *minidb.DB
	dbSrv    *dbnet.Server
	replicas []*Replica
	clients  []*dbnet.Client
	gw       *Gateway
}

func (tc *testCluster) shutdown() {
	tc.gw.Close()
	for _, r := range tc.replicas {
		r.Stop()
	}
	for _, c := range tc.clients {
		c.Close()
	}
	tc.dbSrv.Close()
	tc.db.Close()
}

// startCluster seeds nHLEs public events into a fresh shared database
// and brings up n replicas behind a gateway.
func startCluster(t *testing.T, n int, nHLEs int, gopts GatewayOptions, cap Capacity) *testCluster {
	t.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	dbSrv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap accounts once, directly against the shared database.
	boot, err := dm.Open(dm.Options{Node: "boot", MetaDB: db})
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	if err := boot.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nHLEs; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-live-%05d", i), Version: 1, Owner: "sci", Public: true,
			KindHint: []string{"flare", "burst"}[i%2], TStart: float64(i), TStop: float64(i + 1),
			Day: int64(i % 10), CalibVersion: 1,
		}
		if _, err := db.Insert(schema.TableHLE, h.ToRow()); err != nil {
			t.Fatal(err)
		}
	}

	tc := &testCluster{db: db, dbSrv: dbSrv, gw: NewGateway(gopts)}
	for i := 0; i < n; i++ {
		cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: dbSrv.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		tc.clients = append(tc.clients, cl)
		rep, err := StartReplica(ReplicaOptions{
			Name: fmt.Sprintf("replica-%d", i), DB: cl, Capacity: cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.replicas = append(tc.replicas, rep)
		tc.gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}
	t.Cleanup(tc.shutdown)
	return tc
}

func TestGatewayBrowseAcrossReplicas(t *testing.T) {
	tc := startCluster(t, 3, 40, GatewayOptions{}, Capacity{})

	// Anonymous browse of public data through the gateway: correct
	// results regardless of which replica serves.
	for i := 0; i < 30; i++ {
		f := dm.HLEFilter{Kind: "flare", HasDay: true, Day: int64(i % 10)}
		hles, err := tc.gw.QueryHLEs("", "10.0.0.1", f)
		if err != nil {
			t.Fatal(err)
		}
		n, err := tc.gw.CountHLEs("", "10.0.0.1", f)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(hles) {
			t.Fatalf("count %d != query %d", n, len(hles))
		}
		for _, h := range hles {
			got, err := tc.gw.GetHLE("", "10.0.0.1", h.ID)
			if err != nil {
				t.Fatal(err)
			}
			if got.ID != h.ID || !got.Public {
				t.Fatalf("got %+v", got)
			}
		}
	}

	// With 10 distinct filters, rendezvous hashing should have spread
	// affinity keys over more than one replica.
	busy := 0
	for _, m := range tc.gw.Members() {
		if m.Served > 0 {
			busy++
		}
		if !m.Healthy {
			t.Fatalf("replica %s unhealthy", m.Name)
		}
	}
	if busy < 2 {
		t.Fatalf("traffic concentrated on %d replica(s)", busy)
	}
}

func TestGatewayCacheAffinity(t *testing.T) {
	tc := startCluster(t, 3, 20, GatewayOptions{}, Capacity{})

	// The same filter must keep landing on the same replica so its
	// epoch-keyed cache stays hot: repeated identical counts are served
	// without new engine queries.
	f := dm.HLEFilter{Kind: "burst"}
	for i := 0; i < 12; i++ {
		if _, err := tc.gw.CountHLEs("", "10.0.0.1", f); err != nil {
			t.Fatal(err)
		}
	}
	served := 0
	for _, m := range tc.gw.Members() {
		if m.Served > 0 {
			served++
		}
	}
	if served != 1 {
		t.Fatalf("one affinity key hit %d replicas", served)
	}
	var hits int64
	for _, r := range tc.replicas {
		hits += r.DM().Stats().QueryCacheHits.Load()
	}
	if hits < 10 {
		t.Fatalf("query cache hits = %d, want >= 10 (affinity not keeping cache hot)", hits)
	}
}

// TestGatewayFailover is the cluster fault test: a replica dies mid-run
// under load; the gateway must fail the traffic over with zero
// client-visible errors, drain the dead node, and pick it back up when a
// replacement appears.
func TestGatewayFailover(t *testing.T) {
	tc := startCluster(t, 3, 30,
		GatewayOptions{HealthInterval: 50 * time.Millisecond}, Capacity{})

	var pages, clientErrors atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f := dm.HLEFilter{Kind: "flare", HasDay: true, Day: int64(i % 10)}
				hles, err := tc.gw.QueryHLEs("", "10.0.0.2", f)
				if err != nil {
					clientErrors.Add(1)
					continue
				}
				if _, err := tc.gw.CountHLEs("", "10.0.0.2", f); err != nil {
					clientErrors.Add(1)
					continue
				}
				for j := 0; j < len(hles) && j < 3; j++ {
					if _, err := tc.gw.GetHLE("", "10.0.0.2", hles[j].ID); err != nil {
						clientErrors.Add(1)
					}
				}
				pages.Add(1)
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)
	tc.replicas[1].Stop() // machine failure mid-run
	time.Sleep(500 * time.Millisecond)

	// The dead replica must be out of rotation (drained) while traffic
	// continues on the survivors.
	var deadSeen bool
	for _, m := range tc.gw.Members() {
		if m.Name == "replica-1" {
			deadSeen = true
			if m.Healthy {
				t.Error("dead replica still in rotation after health interval")
			}
		}
	}
	if !deadSeen {
		t.Fatal("replica-1 missing from membership")
	}
	before := pages.Load()
	time.Sleep(300 * time.Millisecond)
	if pages.Load() == before {
		t.Fatal("traffic stopped after replica failure")
	}

	// Recovery: a replacement joins and starts taking traffic.
	cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: tc.dbSrv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	tc.clients = append(tc.clients, cl)
	rep, err := StartReplica(ReplicaOptions{Name: "replica-3", DB: cl})
	if err != nil {
		t.Fatal(err)
	}
	tc.replicas = append(tc.replicas, rep)
	tc.gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	time.Sleep(400 * time.Millisecond)

	close(stop)
	wg.Wait()

	if clientErrors.Load() != 0 {
		t.Fatalf("%d client-visible errors during failover", clientErrors.Load())
	}
	if tc.gw.Failovers() == 0 {
		t.Fatal("no failovers recorded — kill happened outside traffic?")
	}
	var joined bool
	for _, m := range tc.gw.Members() {
		if m.Name == "replica-3" && m.Healthy {
			joined = true
		}
	}
	if !joined {
		t.Fatal("replacement replica not healthy in rotation")
	}
}

func TestGatewaySessionPinning(t *testing.T) {
	tc := startCluster(t, 3, 10,
		GatewayOptions{HealthInterval: 50 * time.Millisecond}, Capacity{})

	si, err := tc.gw.Authenticate("sci", "pw", "10.0.0.3", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	// The session lives on one replica; every tokened call must land
	// there. CreateHLE requires the authenticated session.
	var created []string
	for i := 0; i < 5; i++ {
		id, err := tc.gw.CreateHLE(si.Token, "10.0.0.3", &schema.HLE{
			KindHint: "flare", Day: 1, TStart: float64(1000 + i), TStop: float64(1001 + i),
			Version: 1, CalibVersion: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		created = append(created, id)
	}
	for _, id := range created {
		if _, err := tc.gw.GetHLE(si.Token, "10.0.0.3", id); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the pinned replica: the session dies with it. Browsing
	// continues (demoted to anonymous/public visibility), but writes are
	// denied until re-authentication — never a transport error.
	var pinned *member
	tc.gw.pinMu.Lock()
	pinned = tc.gw.pins[si.Token]
	tc.gw.pinMu.Unlock()
	if pinned == nil {
		t.Fatal("token not pinned")
	}
	for _, r := range tc.replicas {
		if r.Name() == pinned.name {
			r.Stop()
		}
	}
	time.Sleep(300 * time.Millisecond)

	if _, err := tc.gw.CountHLEs(si.Token, "10.0.0.3", dm.HLEFilter{Kind: "flare"}); err != nil {
		t.Fatalf("browse after pinned replica death: %v", err)
	}
	_, err = tc.gw.CreateHLE(si.Token, "10.0.0.3", &schema.HLE{
		KindHint: "flare", Day: 2, TStart: 2000, TStop: 2001, Version: 1, CalibVersion: 1,
	})
	if err == nil {
		t.Fatal("write with dead session accepted")
	}
	if dm.IsUnreachable(err) {
		t.Fatalf("session loss surfaced as transport error: %v", err)
	}

	// Re-authentication restores write access on a surviving replica.
	si2, err := tc.gw.Authenticate("sci", "pw", "10.0.0.3", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.gw.CreateHLE(si2.Token, "10.0.0.3", &schema.HLE{
		KindHint: "flare", Day: 2, TStart: 3000, TStop: 3001, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}

	if err := tc.gw.Logout(si2.Token); err != nil {
		t.Fatal(err)
	}
	tc.gw.pinMu.Lock()
	_, stillPinned := tc.gw.pins[si2.Token]
	tc.gw.pinMu.Unlock()
	if stillPinned {
		t.Fatal("logout left the token pinned")
	}
}

func TestGatewayAdmissionControl(t *testing.T) {
	tc := startCluster(t, 1, 5,
		GatewayOptions{MaxInflight: 1, QueueTimeout: 50 * time.Millisecond},
		Capacity{Workers: 1, CPUPerCall: 150 * time.Millisecond})

	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tc.gw.CountHLEs("", "10.0.0.4", dm.HLEFilter{Kind: "flare"})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				shed.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request admitted")
	}
	if shed.Load() == 0 {
		t.Fatal("overload did not shed — admission control inert")
	}
	if tc.gw.Shed() != shed.Load() {
		t.Fatalf("Shed() = %d, observed %d", tc.gw.Shed(), shed.Load())
	}
}

func TestGatewayNoReplicas(t *testing.T) {
	gw := NewGateway(GatewayOptions{})
	defer gw.Close()
	if _, err := gw.CountHLEs("", "1.2.3.4", dm.HLEFilter{}); err != ErrNoReplicas {
		t.Fatalf("err = %v", err)
	}
}

// TestReplicaCapacityModel: the thrash law inflates per-call demand once
// inflight exceeds the threshold — a replica under heavy concurrency
// serves each call slower, which is what bends Figure 4 downward.
func TestReplicaCapacityModel(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	tc := startCluster(t, 1, 5, GatewayOptions{},
		Capacity{Workers: 2, CPUPerCall: 5 * time.Millisecond, ThrashThreshold: 4, ThrashFactor: 0.5})

	// 1 client: ~5ms/call. 16 concurrent clients: inflight ~16, demand
	// inflated ~(1+0.5*12)=7x, plus 2-worker queueing.
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := tc.gw.CountHLEs("", "10.0.0.5", dm.HLEFilter{Kind: "flare"}); err != nil {
			t.Fatal(err)
		}
	}
	serial := time.Since(start) / 10

	var wg sync.WaitGroup
	start = time.Now()
	var calls atomic.Int64
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := tc.gw.CountHLEs("", "10.0.0.5", dm.HLEFilter{Kind: "flare"}); err != nil {
					t.Error(err)
					return
				}
				calls.Add(1)
			}
		}()
	}
	wg.Wait()
	concurrent := time.Since(start) / time.Duration(calls.Load())
	if concurrent < serial*2 {
		t.Fatalf("per-call time under load %v vs serial %v — thrash model inert", concurrent, serial)
	}
}

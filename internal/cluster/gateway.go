package cluster

import (
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/circuit"
	"repro/internal/dm"
	"repro/internal/overload"
	"repro/internal/schema"
)

// ErrOverloaded is the sentinel a shed request matches via errors.Is: the
// middle tier is saturated and queueing longer would only grow the
// backlog (§7.3's ceiling made visible to the caller instead of as an
// unbounded queue). The concrete error is always an *overload.Error
// carrying a retry-after hint; this alias keeps every existing
// errors.Is(err, cluster.ErrOverloaded) call site working.
var ErrOverloaded = overload.ErrOverloaded

// ErrNoReplicas is returned when no healthy replica is available.
var ErrNoReplicas = fmt.Errorf("cluster: no healthy replicas")

// GatewayOptions tunes routing, health checking and admission control.
type GatewayOptions struct {
	// HealthInterval is the active health-check period (default 500ms).
	HealthInterval time.Duration
	// RetryBackoff is the pause before retrying a failed call on another
	// replica (default 10ms, doubling per attempt).
	RetryBackoff time.Duration
	// MaxInflight caps concurrently admitted requests with a FIXED
	// semaphore; 0 disables admission control. Ignored when AdaptiveLimit
	// is set. Kept as the baseline arm of the stampede A/B experiment.
	MaxInflight int
	// QueueTimeout bounds how long an admitted-pending request may wait
	// for capacity before being shed (default 5s). Fixed-semaphore mode
	// only; the adaptive limiter uses its own MaxWait.
	QueueTimeout time.Duration
	// ShedRetryAfter is the retry-after hint stamped on fixed-mode sheds,
	// where no queue-delay signal exists to derive one (default 250ms).
	ShedRetryAfter time.Duration
	// AdaptiveLimit switches admission control to the latency-gradient
	// limiter in internal/overload: the inflight cap breathes with
	// measured latency (AIMD), queue sojourn is CoDel-bounded, and sheds
	// carry a retry-after hint derived from observed queue delay. Nil
	// keeps the fixed semaphore.
	AdaptiveLimit *overload.Config
	// Brownout tunes the pressure ladder that trades features for
	// capacity while the limiter is saturated (nil = defaults). Only
	// active alongside AdaptiveLimit.
	Brownout *overload.LadderConfig
	// BrownoutTick is how often the ladder samples limiter pressure
	// (default 100ms).
	BrownoutTick time.Duration
	// AffinitySpill is how many in-flight requests beyond the least
	// loaded replica the affinity choice may carry before the gateway
	// spills to the least loaded one (default 8). Affinity keeps each
	// replica's epoch-keyed query cache hot; spilling keeps a hot key
	// from melting one node.
	AffinitySpill int
	// BreakerThreshold is how many consecutive transport failures open a
	// replica's circuit (default 3). An open circuit takes the replica
	// out of rotation until a half-open probe succeeds.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit holds calls off before
	// admitting a single half-open probe (default 1s).
	BreakerCooldown time.Duration
	// RetryRefillPerSec and RetryBurst shape the global retry budget:
	// every failover retry spends one token from a bucket of RetryBurst
	// refilling at RetryRefillPerSec (defaults 16/s, burst 32). A dry
	// bucket stops retries cluster-wide — the brake on retry storms.
	RetryRefillPerSec float64
	RetryBurst        int
	// StaleCacheSize caps the degraded-mode cache of anonymous browse
	// results (default 1024 entries).
	StaleCacheSize int
	// Logger receives health transitions and failovers. Nil discards.
	Logger *log.Logger
}

// Pinger is implemented by replica endpoints that support liveness
// probes (dm.Remote does). Members without it count as always healthy.
type Pinger interface{ Ping() error }

type member struct {
	name string
	api  dm.API
	bk   *circuit.Breaker

	healthy  atomic.Bool
	inflight atomic.Int64
	served   atomic.Int64
	failed   atomic.Int64
}

// MemberStatus is one replica's observable state.
type MemberStatus struct {
	Name     string
	Healthy  bool
	Inflight int64
	Served   int64
	Failed   int64
	// Circuit is the replica's breaker state ("closed", "open",
	// "half-open"); CircuitFails counts consecutive transport failures;
	// CircuitOpens counts lifetime open transitions.
	Circuit      string
	CircuitFails int
	CircuitOpens int64
}

// Gateway fronts N replicas with one dm.API: the presentation tier
// programs against it exactly as against a single DM ("the calling
// methods do not know where the code is actually executed", §5.4).
type Gateway struct {
	opts GatewayOptions

	mu      sync.RWMutex
	members []*member

	pinMu sync.Mutex
	pins  map[string]*member // session token -> replica holding the session

	admit chan struct{}     // fixed admission semaphore (nil = unlimited)
	lim   *overload.Limiter // adaptive admission (nil = fixed/off)
	lad   *overload.Ladder  // brownout ladder (nil unless adaptive)

	hookMu sync.Mutex
	hook   overload.StageActions // brownout side effects (SetBrownoutHook)

	retry *retryBudget
	stale *staleCache

	shed           atomic.Int64
	failovers      atomic.Int64
	budgetDenied   atomic.Int64 // retries refused by the dry retry budget
	degradedServes atomic.Int64 // reads answered from the stale cache
	demotions      atomic.Int64 // sessions demoted because their pin died
	writesFailed   atomic.Int64 // mutations failed fast on DB unavailability
	dbOverloads    atomic.Int64 // downstream (dm/db tier) overload refusals observed
	writeEpoch     atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

var _ dm.API = (*Gateway)(nil)

// NewGateway builds a gateway; add replicas with AddReplica.
func NewGateway(opts GatewayOptions) *Gateway {
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 500 * time.Millisecond
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 10 * time.Millisecond
	}
	if opts.QueueTimeout <= 0 {
		opts.QueueTimeout = 5 * time.Second
	}
	if opts.AffinitySpill <= 0 {
		opts.AffinitySpill = 8
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = time.Second
	}
	if opts.RetryRefillPerSec <= 0 {
		opts.RetryRefillPerSec = 16
	}
	if opts.RetryBurst <= 0 {
		opts.RetryBurst = 32
	}
	if opts.StaleCacheSize <= 0 {
		opts.StaleCacheSize = 1024
	}
	if opts.ShedRetryAfter <= 0 {
		opts.ShedRetryAfter = 250 * time.Millisecond
	}
	if opts.BrownoutTick <= 0 {
		opts.BrownoutTick = 100 * time.Millisecond
	}
	g := &Gateway{
		opts:  opts,
		pins:  make(map[string]*member),
		stop:  make(chan struct{}),
		retry: newRetryBudget(opts.RetryRefillPerSec, opts.RetryBurst),
		stale: newStaleCache(opts.StaleCacheSize),
	}
	if opts.AdaptiveLimit != nil {
		cfg := *opts.AdaptiveLimit
		if cfg.Tier == "" {
			cfg.Tier = "gateway"
		}
		g.lim = overload.NewLimiter(cfg)
		g.lad = overload.NewLadder(opts.Brownout)
		g.wg.Add(1)
		go g.brownoutLoop()
	} else if opts.MaxInflight > 0 {
		g.admit = make(chan struct{}, opts.MaxInflight)
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g
}

// SetBrownoutHook installs the side effects the brownout ladder drives as
// it climbs and descends: typically the processing farm's hedging switch,
// the replicas' stale-read switch, and the farm's bulk-shed switch. The
// hook is applied idempotently on each stage transition.
func (g *Gateway) SetBrownoutHook(a overload.StageActions) {
	g.hookMu.Lock()
	g.hook = a
	g.hookMu.Unlock()
}

// BrownoutStage reports the ladder's current rung (StageNormal when the
// gateway runs without adaptive admission).
func (g *Gateway) BrownoutStage() overload.Stage {
	if g.lad == nil {
		return overload.StageNormal
	}
	return g.lad.Stage()
}

// brownoutLoop samples limiter pressure on a fixed tick and walks the
// ladder one rung at a time, applying the installed hook on transitions.
func (g *Gateway) brownoutLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.opts.BrownoutTick)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case now := <-ticker.C:
			from := g.lad.Stage()
			to := g.lad.Observe(now, g.lim.Pressure())
			if to == from {
				continue
			}
			g.logf("cluster: brownout %v -> %v (pressure %.2f)", from, to, g.lim.Pressure())
			g.hookMu.Lock()
			hook := g.hook
			g.hookMu.Unlock()
			hook.Apply(from, to)
		}
	}
}

// priorityOf maps a request to its admission class: mutations and
// authenticated calls are interactive (someone is waiting, or data is at
// stake); anonymous reads are browse — the class a flare-alert stampede
// arrives in, and the first to shed.
func priorityOf(token string, mutation bool) overload.Priority {
	if mutation || token != "" {
		return overload.Interactive
	}
	return overload.Browse
}

// AddReplica registers a replica endpoint under a unique name.
func (g *Gateway) AddReplica(name string, api dm.API) {
	m := &member{name: name, api: api,
		bk: circuit.New(g.opts.BreakerThreshold, g.opts.BreakerCooldown)}
	m.healthy.Store(true)
	g.mu.Lock()
	g.members = append(g.members, m)
	g.mu.Unlock()
}

// RemoveReplica deregisters a replica and drops its session pins.
func (g *Gateway) RemoveReplica(name string) {
	g.mu.Lock()
	var removed *member
	keep := g.members[:0]
	for _, m := range g.members {
		if m.name == name && removed == nil {
			removed = m
			continue
		}
		keep = append(keep, m)
	}
	g.members = keep
	g.mu.Unlock()
	if removed != nil {
		g.unpinMember(removed)
	}
}

// Members reports every replica's state.
func (g *Gateway) Members() []MemberStatus {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]MemberStatus, 0, len(g.members))
	for _, m := range g.members {
		bkState, fails, opens := m.bk.Snapshot()
		out = append(out, MemberStatus{
			Name:         m.name,
			Healthy:      m.healthy.Load(),
			Inflight:     m.inflight.Load(),
			Served:       m.served.Load(),
			Failed:       m.failed.Load(),
			Circuit:      bkState,
			CircuitFails: fails,
			CircuitOpens: opens,
		})
	}
	return out
}

// Shed returns requests dropped by admission control; Failovers counts
// calls retried on another replica after a transport failure.
func (g *Gateway) Shed() int64      { return g.shed.Load() }
func (g *Gateway) Failovers() int64 { return g.failovers.Load() }

// Status is the gateway's full resilience snapshot, for /stats pages and
// shutdown logs.
type Status struct {
	Members          []MemberStatus
	Shed             int64   // requests dropped by admission control
	Failovers        int64   // calls retried on another replica
	RetriesDenied    int64   // retries refused by the dry retry budget
	RetryTokens      float64 // retry budget tokens currently available
	RetryBurst       int     // retry budget capacity
	DegradedServes   int64   // reads answered from the stale cache
	SessionDemotions int64   // sessions demoted because their pinned replica died
	WritesFailedFast int64   // mutations failed fast on DB unavailability
	WriteEpoch       uint64  // writes accepted through this gateway
	StaleEntries     int     // anonymous results held for degraded serving
	Overload         OverloadStatus
}

// OverloadStatus is the admission-control and brownout snapshot for
// /stats: what the adaptive limiter currently allows, what it is
// shedding, and which rung of the brownout ladder the cluster stands on.
type OverloadStatus struct {
	Adaptive    bool          // true when the latency-gradient limiter is active
	Limit       int           // current concurrency limit (0 = unlimited/fixed)
	Inflight    int           // admitted and executing now
	Queued      int           // waiting for a permit
	QueueDelay  time.Duration // recent average wait for a permit
	Baseline    time.Duration // the limiter's floor-p50 latency estimate
	Pressure    float64       // 0..1 signal the brownout ladder observes
	Sheds       int64         // requests refused by the limiter
	ShedByPri   [3]int64      // sheds by class: interactive, browse, bulk
	Backoffs    int64         // multiplicative limit decreases
	DBOverloads int64         // downstream tiers' overload refusals observed
	Stage       string        // brownout rung ("normal", "no-hedge", ...)
	Transitions int64         // lifetime brownout rung changes
}

// Status reports every resilience counter in one consistent-enough view.
func (g *Gateway) Status() Status {
	ov := OverloadStatus{
		DBOverloads: g.dbOverloads.Load(),
		Stage:       g.BrownoutStage().String(),
	}
	if g.lim != nil {
		st := g.lim.Stats()
		ov.Adaptive = true
		ov.Limit = st.Limit
		ov.Inflight = st.Inflight
		ov.Queued = st.Queued
		ov.QueueDelay = st.QueueDelay
		ov.Baseline = st.Baseline
		ov.Pressure = st.Pressure
		ov.Sheds = st.Sheds
		ov.ShedByPri = [3]int64(st.ShedByPri)
		ov.Backoffs = st.Backoffs
		ov.Transitions = g.lad.Transitions()
	} else {
		ov.Sheds = g.shed.Load()
	}
	return Status{
		Members:          g.Members(),
		Shed:             g.shed.Load(),
		Failovers:        g.failovers.Load(),
		RetriesDenied:    g.budgetDenied.Load(),
		RetryTokens:      g.retry.remaining(),
		RetryBurst:       g.opts.RetryBurst,
		DegradedServes:   g.degradedServes.Load(),
		SessionDemotions: g.demotions.Load(),
		WritesFailedFast: g.writesFailed.Load(),
		WriteEpoch:       g.writeEpoch.Load(),
		StaleEntries:     g.stale.len(),
		Overload:         ov,
	}
}

// Close stops the health loop. In-flight calls complete.
func (g *Gateway) Close() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.wg.Wait()
}

func (g *Gateway) logf(format string, args ...any) {
	if g.opts.Logger != nil {
		g.opts.Logger.Printf(format, args...)
	}
}

// healthLoop actively probes every member. A replica that fails its
// probe is taken out of rotation until a probe succeeds again.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.mu.RLock()
		members := append([]*member(nil), g.members...)
		g.mu.RUnlock()
		for _, m := range members {
			p, ok := m.api.(Pinger)
			if !ok {
				m.healthy.Store(true)
				continue
			}
			up := p.Ping() == nil
			if was := m.healthy.Swap(up); was != up {
				if up {
					// Fresh evidence the replica answers: close its
					// circuit too, or the breaker would gate re-entry
					// behind another cooldown.
					m.bk.Reset()
					g.logf("cluster: replica %s back in rotation", m.name)
				} else {
					g.logf("cluster: replica %s failed health check, removed from rotation", m.name)
					g.unpinMember(m)
				}
			}
		}
	}
}

func (g *Gateway) unpinMember(m *member) {
	g.pinMu.Lock()
	for tok, pm := range g.pins {
		if pm == m {
			delete(g.pins, tok)
		}
	}
	g.pinMu.Unlock()
}

// availableMembers snapshots the replicas a call may route to: in
// rotation per the health loop AND not held off by an open circuit.
func (g *Gateway) availableMembers() []*member {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*member, 0, len(g.members))
	for _, m := range g.members {
		if m.healthy.Load() && m.bk.Available() {
			out = append(out, m)
		}
	}
	return out
}

// rank orders candidates by rendezvous (highest-random-weight) hash of
// (affinity, member): the same affinity key always prefers the same
// replica while it is healthy, so the epoch-keyed query cache for that
// key stays hot on one node; when the replica set changes, only the keys
// that hashed to the lost node move.
func rank(candidates []*member, affinity string) []*member {
	out := append([]*member(nil), candidates...)
	weight := func(m *member) uint64 {
		h := fnv.New64a()
		h.Write([]byte(affinity))
		h.Write([]byte{0})
		h.Write([]byte(m.name))
		return h.Sum64()
	}
	sort.SliceStable(out, func(i, j int) bool { return weight(out[i]) > weight(out[j]) })
	return out
}

// pick chooses the replica for a call: the affinity favourite unless it
// is carrying AffinitySpill more in-flight requests than the least
// loaded healthy replica, in which case the load winner takes it.
func (g *Gateway) pick(candidates []*member, affinity string) *member {
	if len(candidates) == 0 {
		return nil
	}
	ranked := rank(candidates, affinity)
	fav := ranked[0]
	least := candidates[0]
	for _, m := range candidates[1:] {
		if m.inflight.Load() < least.inflight.Load() {
			least = m
		}
	}
	if fav.inflight.Load() > least.inflight.Load()+int64(g.opts.AffinitySpill) {
		return least
	}
	return fav
}

// do routes one API call: admission (priority-aware), replica choice
// (session pin or affinity, gated by each replica's circuit breaker),
// execution, and budgeted failover with jittered backoff. Transport
// errors mark the replica suspect and — when safe and affordable — retry
// on the next-ranked one; application errors (including denials and
// DB-unavailability) pass straight through: no sibling replica can
// answer what the shared database cannot.
func (g *Gateway) do(affinity, token string, mutation bool, fn func(api dm.API) error) error {
	switch {
	case g.lim != nil:
		// Adaptive admission: the limiter decides, carrying its own
		// priority queueing, CoDel sojourn bound, and retry-after hints.
		permit, aerr := g.lim.Acquire(priorityOf(token, mutation))
		if aerr != nil {
			g.shed.Add(1)
			return aerr
		}
		defer permit.Release()
	case g.admit != nil:
		select {
		case g.admit <- struct{}{}:
		default:
			// Full house. Anonymous reads are the lowest-priority traffic —
			// shed them immediately (the stale cache may still answer them);
			// authenticated work and mutations may queue for their slot.
			if token == "" && !mutation {
				g.shed.Add(1)
				return &overload.Error{Tier: "gateway", RetryAfter: g.opts.ShedRetryAfter}
			}
			timer := time.NewTimer(g.opts.QueueTimeout)
			select {
			case g.admit <- struct{}{}:
				timer.Stop()
			case <-timer.C:
				g.shed.Add(1)
				return &overload.Error{Tier: "gateway", RetryAfter: g.opts.ShedRetryAfter}
			}
		}
		defer func() { <-g.admit }()
	}

	err := g.route(affinity, token, mutation, fn)
	if err != nil && overload.IsOverload(err) {
		// A downstream tier (replica admission or the database socket)
		// pushed back. Count it and fold it into the limiter as one
		// multiplicative decrease: end-to-end backpressure means the
		// gateway stops offering load the tiers below are refusing.
		g.dbOverloads.Add(1)
		if g.lim != nil {
			g.lim.Backpressure()
		}
	}
	if mutation {
		if err == nil {
			g.writeEpoch.Add(1)
		} else if dm.IsDBUnavailable(err) {
			g.writesFailed.Add(1)
		}
	}
	return err
}

// route picks replicas and drives the call; do() owns admission and
// write-epoch accounting around it.
func (g *Gateway) route(affinity, token string, mutation bool, fn func(api dm.API) error) error {
	// A live session is state on one replica: calls carrying its token
	// must land there. If that replica is gone — unhealthy, or its
	// circuit open after repeated failures — the session is gone with it:
	// demote now, fail over to a fresh choice, and let the caller re-auth
	// (the reply is a denial, not a transport error).
	if token != "" {
		g.pinMu.Lock()
		pinned := g.pins[token]
		g.pinMu.Unlock()
		if pinned != nil {
			if pinned.healthy.Load() && pinned.bk.TryAcquire() {
				err := g.callMember(pinned, fn)
				if err == nil || !dm.IsUnreachable(err) {
					return err
				}
				g.demote(token, pinned) // before noteFailure: it unpins wholesale
				g.noteFailure(pinned)
				if mutation && !dm.IsDialError(err) {
					return err // may have executed; do not re-run elsewhere
				}
			} else {
				g.demote(token, pinned)
			}
		}
	}

	candidates := g.availableMembers()
	if len(candidates) == 0 {
		return ErrNoReplicas
	}
	// Try order: load-aware affinity choice first, then the remaining
	// replicas in affinity-rank order.
	first := g.pick(candidates, affinity)
	order := []*member{first}
	for _, m := range rank(candidates, affinity) {
		if m != first {
			order = append(order, m)
		}
	}
	backoff := g.opts.RetryBackoff
	attempt := 0
	var lastErr error
	for _, m := range order {
		if attempt > 0 {
			// Failover retries spend from the shared budget: when the
			// bucket is dry the cluster is already drowning in retries,
			// and adding ours would deepen the outage.
			if !g.retry.take() {
				g.budgetDenied.Add(1)
				break
			}
		}
		if !m.bk.TryAcquire() {
			continue
		}
		if attempt > 0 {
			g.failovers.Add(1)
			time.Sleep(jitter(backoff))
			backoff *= 2
		}
		attempt++
		err := g.callMember(m, fn)
		if err == nil {
			return nil
		}
		transport := dm.IsUnreachable(err)
		if transport {
			g.noteFailure(m)
		}
		// Besides transport failures, an anonymous read that found the
		// database unavailable may try a sibling: the failure can be that
		// one replica's path to the database, not the database itself, and
		// rereading is free of side effects. Mutations never take this
		// branch — "unavailable" on a commit can mean the reply was lost
		// after the write landed.
		if !transport && !(token == "" && !mutation && dm.IsDBUnavailable(err)) {
			return err
		}
		lastErr = err
		if mutation && !dm.IsDialError(err) {
			// The request reached the replica before the wire broke: it
			// may have committed against the shared database. Retrying
			// would risk a duplicate — surface the failure instead.
			return err
		}
	}
	if lastErr == nil {
		return ErrNoReplicas // every candidate's circuit refused the call
	}
	return lastErr
}

// demote drops a session pin whose replica can no longer serve it.
func (g *Gateway) demote(token string, m *member) {
	g.pinMu.Lock()
	_, present := g.pins[token]
	delete(g.pins, token)
	g.pinMu.Unlock()
	if present {
		g.demotions.Add(1)
		g.logf("cluster: session demoted off replica %s", m.name)
	}
}

func (g *Gateway) callMember(m *member, fn func(api dm.API) error) error {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	err := fn(m.api)
	if err == nil || !dm.IsUnreachable(err) {
		m.served.Add(1)
		m.bk.Success()
	}
	return err
}

// noteFailure records a transport error against a replica: its breaker
// counts toward opening (a failed half-open probe re-opens immediately),
// and the replica leaves rotation until the health loop hears it answer
// probes again. Sessions pinned to it demote either way.
func (g *Gateway) noteFailure(m *member) {
	m.failed.Add(1)
	m.bk.Failure()
	if m.healthy.Swap(false) {
		g.logf("cluster: replica %s unreachable, removed from rotation", m.name)
	}
	g.unpinMember(m)
}

// canDegrade reports whether a read failure may be answered from the
// stale cache instead. Two regimes qualify: the live path is GONE (no
// replicas, transport failure everywhere, the shared database partitioned
// away), or the live path is DROWNING and the brownout ladder has climbed
// to its stale-reads rung — at which point a cached answer for an
// anonymous browse is exactly the load-shedding the ladder asked for.
// Below that rung, overload sheds pass through untouched: the caller
// should back off, and serving cache would hide early saturation.
func (g *Gateway) canDegrade(err error) bool {
	if errors.Is(err, ErrNoReplicas) || dm.IsUnreachable(err) || dm.IsDBUnavailable(err) {
		return true
	}
	return overload.IsOverload(err) && g.BrownoutStage() >= overload.StageStaleReads
}

// --- dm.API ---

// Authenticate routes to any healthy replica and pins the issued token
// to it: the session cache is that node's memory.
func (g *Gateway) Authenticate(user, password, ip, kind string) (*dm.SessionInfo, error) {
	var out *dm.SessionInfo
	var chosen *member
	err := g.do("auth:"+user, "", true, func(api dm.API) error {
		si, err := api.Authenticate(user, password, ip, kind)
		if err != nil {
			return err
		}
		out = si
		g.mu.RLock()
		for _, m := range g.members {
			if m.api == api {
				chosen = m
			}
		}
		g.mu.RUnlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	if chosen != nil {
		g.pinMu.Lock()
		g.pins[out.Token] = chosen
		g.pinMu.Unlock()
	}
	return out, nil
}

// Logout implements dm.API and releases the token's pin.
func (g *Gateway) Logout(token string) error {
	err := g.do("logout", token, false, func(api dm.API) error {
		return api.Logout(token)
	})
	g.pinMu.Lock()
	delete(g.pins, token)
	g.pinMu.Unlock()
	return err
}

// QueryHLEs implements dm.API. Anonymous results feed the stale cache;
// when the live path dies, the last public answer for this filter comes
// back tagged with a DegradedError.
func (g *Gateway) QueryHLEs(token, ip string, f dm.HLEFilter) ([]*schema.HLE, error) {
	affinity := filterAffinity(f)
	return serveRead(g, "query-hles", affinity, token, func() ([]*schema.HLE, error) {
		var out []*schema.HLE
		err := g.do(affinity, token, false, func(api dm.API) error {
			var e error
			out, e = api.QueryHLEs(token, ip, f)
			return e
		})
		return out, err
	})
}

// CountHLEs implements dm.API (degradable like QueryHLEs; the method
// prefix keeps its cache entries apart — both share the filter key).
func (g *Gateway) CountHLEs(token, ip string, f dm.HLEFilter) (int, error) {
	affinity := filterAffinity(f)
	return serveRead(g, "count-hles", affinity, token, func() (int, error) {
		var out int
		err := g.do(affinity, token, false, func(api dm.API) error {
			var e error
			out, e = api.CountHLEs(token, ip, f)
			return e
		})
		return out, err
	})
}

// GetHLE implements dm.API (degradable).
func (g *Gateway) GetHLE(token, ip, id string) (*schema.HLE, error) {
	return serveRead(g, "get-hle", "hle:"+id, token, func() (*schema.HLE, error) {
		var out *schema.HLE
		err := g.do("hle:"+id, token, false, func(api dm.API) error {
			var e error
			out, e = api.GetHLE(token, ip, id)
			return e
		})
		return out, err
	})
}

// AnalysesForHLE implements dm.API (degradable).
func (g *Gateway) AnalysesForHLE(token, ip, hleID string) ([]*schema.ANA, error) {
	return serveRead(g, "analyses-for-hle", "hle:"+hleID, token, func() ([]*schema.ANA, error) {
		var out []*schema.ANA
		err := g.do("hle:"+hleID, token, false, func(api dm.API) error {
			var e error
			out, e = api.AnalysesForHLE(token, ip, hleID)
			return e
		})
		return out, err
	})
}

// GetANA implements dm.API (degradable).
func (g *Gateway) GetANA(token, ip, id string) (*schema.ANA, error) {
	return serveRead(g, "get-ana", "ana:"+id, token, func() (*schema.ANA, error) {
		var out *schema.ANA
		err := g.do("ana:"+id, token, false, func(api dm.API) error {
			var e error
			out, e = api.GetANA(token, ip, id)
			return e
		})
		return out, err
	})
}

// ListCatalogs implements dm.API (degradable).
func (g *Gateway) ListCatalogs(token, ip string) ([]*dm.Catalog, error) {
	return serveRead(g, "list-catalogs", "catalogs", token, func() ([]*dm.Catalog, error) {
		var out []*dm.Catalog
		err := g.do("catalogs", token, false, func(api dm.API) error {
			var e error
			out, e = api.ListCatalogs(token, ip)
			return e
		})
		return out, err
	})
}

// CreateHLE implements dm.API.
func (g *Gateway) CreateHLE(token, ip string, h *schema.HLE) (string, error) {
	var out string
	err := g.do("create", token, true, func(api dm.API) error {
		var e error
		out, e = api.CreateHLE(token, ip, h)
		return e
	})
	return out, err
}

// ImportAnalysis implements dm.API.
func (g *Gateway) ImportAnalysis(token, ip string, a *schema.ANA, files []dm.StoredFile) (string, error) {
	var out string
	err := g.do("import", token, true, func(api dm.API) error {
		var e error
		out, e = api.ImportAnalysis(token, ip, a, files)
		return e
	})
	return out, err
}

// FindExistingAnalysis implements dm.API.
func (g *Gateway) FindExistingAnalysis(token, ip string, spec *schema.ANA) (*schema.ANA, error) {
	var out *schema.ANA
	err := g.do("find-ana", token, false, func(api dm.API) error {
		var e error
		out, e = api.FindExistingAnalysis(token, ip, spec)
		return e
	})
	return out, err
}

// Publish implements dm.API.
func (g *Gateway) Publish(token, ip, kind, id string) error {
	return g.do("publish:"+id, token, true, func(api dm.API) error {
		return api.Publish(token, ip, kind, id)
	})
}

// ReadItem implements dm.API.
func (g *Gateway) ReadItem(token, ip, itemID string) (*dm.ItemData, error) {
	var out *dm.ItemData
	err := g.do("item:"+itemID, token, false, func(api dm.API) error {
		var e error
		out, e = api.ReadItem(token, ip, itemID)
		return e
	})
	return out, err
}

// UnitsInRange implements dm.API.
func (g *Gateway) UnitsInRange(token, ip string, t0, t1 float64) ([]*dm.UnitInfo, error) {
	var out []*dm.UnitInfo
	err := g.do(fmt.Sprintf("units:%g:%g", t0, t1), token, false, func(api dm.API) error {
		var e error
		out, e = api.UnitsInRange(token, ip, t0, t1)
		return e
	})
	return out, err
}

// filterAffinity renders a browse filter as a routing key so identical
// filters — the unit of the DM's epoch-keyed query cache — keep hitting
// the replica whose cache already holds them.
func filterAffinity(f dm.HLEFilter) string {
	return fmt.Sprintf("q:%s:%s:%t%d:%t%g-%g:%s:%t:%d:%d",
		f.Kind, f.Owner, f.HasDay, f.Day, f.HasTime, f.TimeFrom, f.TimeTo,
		f.Catalog, f.OrderDesc, f.Offset, f.Limit)
}

package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/overload"
)

// stubAPI implements the one read the overload tests drive and panics on
// everything else (the embedded nil interface). Latency and downstream
// overload are switchable at runtime.
type stubAPI struct {
	dm.API
	delay    atomic.Int64 // per-call service time, nanoseconds
	overload atomic.Bool  // refuse with a typed overload error
	calls    atomic.Int64
}

func (s *stubAPI) CountHLEs(token, ip string, f dm.HLEFilter) (int, error) {
	s.calls.Add(1)
	if d := time.Duration(s.delay.Load()); d > 0 {
		time.Sleep(d)
	}
	if s.overload.Load() {
		return 0, &overload.Error{Tier: "db", RetryAfter: 120 * time.Millisecond}
	}
	return 7, nil
}

// TestGatewayAdaptiveShedTyped: under a burst far beyond the adaptive
// limit, excess anonymous reads shed with the typed error and its
// retry-after hint; nothing fails untyped; the Status snapshot reports
// the limiter's view.
func TestGatewayAdaptiveShedTyped(t *testing.T) {
	gw := NewGateway(GatewayOptions{
		AdaptiveLimit: &overload.Config{
			Initial: 2, Min: 1, Max: 4, MaxQueue: 2,
			MaxWait: 30 * time.Millisecond,
		},
	})
	defer gw.Close()
	stub := &stubAPI{}
	stub.delay.Store(int64(20 * time.Millisecond))
	gw.AddReplica("r0", stub)

	var ok, shed, untyped atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := gw.CountHLEs("", "10.9.0.1", dm.HLEFilter{Kind: "flare"})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				if ra, hinted := overload.RetryAfterOf(err); !hinted || ra <= 0 {
					untyped.Add(1) // a shed without a hint counts as broken
					return
				}
				shed.Add(1)
			default:
				untyped.Add(1)
			}
		}()
	}
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no request served under burst")
	}
	if shed.Load() == 0 {
		t.Fatal("no request shed by a 32-wide burst against limit 2")
	}
	if untyped.Load() != 0 {
		t.Fatalf("%d requests failed untyped or hintless", untyped.Load())
	}
	st := gw.Status().Overload
	if !st.Adaptive {
		t.Fatal("Status does not report adaptive admission")
	}
	if st.Sheds != shed.Load() {
		t.Fatalf("limiter counted %d sheds, clients saw %d", st.Sheds, shed.Load())
	}
	if st.ShedByPri[overload.Browse] != shed.Load() {
		t.Fatalf("sheds not attributed to browse class: %+v", st.ShedByPri)
	}
	if st.Limit < 1 || st.Limit > 4 {
		t.Fatalf("limit %d escaped [Min, Max]", st.Limit)
	}
}

// TestGatewayBackpressureOnDownstreamOverload: when the tier below sheds,
// the gateway relays the typed error without retrying a sibling replica
// (zero retry storm, structurally) and folds the refusal into its own
// limiter as a multiplicative decrease.
func TestGatewayBackpressureOnDownstreamOverload(t *testing.T) {
	gw := NewGateway(GatewayOptions{
		AdaptiveLimit: &overload.Config{Initial: 8, Min: 1, Max: 8, Window: 1 << 20},
	})
	defer gw.Close()
	a, b := &stubAPI{}, &stubAPI{}
	a.overload.Store(true)
	b.overload.Store(true)
	gw.AddReplica("r0", a)
	gw.AddReplica("r1", b)

	const n = 6
	for i := 0; i < n; i++ {
		_, err := gw.CountHLEs("", "10.9.0.2", dm.HLEFilter{Kind: "flare"})
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("call %d: err = %v, want relayed overload", i, err)
		}
		if ra, ok := overload.RetryAfterOf(err); !ok || ra != 120*time.Millisecond {
			t.Fatalf("downstream retry-after hint lost: %v", err)
		}
	}
	// One upstream call per request: an overloaded replica is never
	// "failed over" — the sibling is drowning in the same stampede.
	if got := a.calls.Load() + b.calls.Load(); got != n {
		t.Fatalf("%d downstream calls for %d requests: overload was retried", got, n)
	}
	st := gw.Status().Overload
	if st.DBOverloads != n {
		t.Fatalf("DBOverloads = %d, want %d", st.DBOverloads, n)
	}
	if st.Limit >= 8 {
		t.Fatalf("limit still %d after downstream pushback, want a decrease", st.Limit)
	}
}

// TestGatewayBrownoutLadder: a sustained shed storm drives limiter
// pressure up; the ladder climbs rung by rung firing the installed hook
// (hedging off, stale reads on, bulk shed); when the storm stops the
// pressure decays and the ladder walks back down to normal.
func TestGatewayBrownoutLadder(t *testing.T) {
	gw := NewGateway(GatewayOptions{
		AdaptiveLimit: &overload.Config{
			Initial: 1, Min: 1, Max: 1, MaxQueue: 2,
			MaxWait:       5 * time.Millisecond,
			QueueInterval: 40 * time.Millisecond,
		},
		Brownout: &overload.LadderConfig{
			Enter: [4]float64{0, 0.30, 0.55, 0.80},
			Exit:  [4]float64{0, 0.10, 0.25, 0.45},
			Dwell: 20 * time.Millisecond,
		},
		BrownoutTick: 10 * time.Millisecond,
	})
	defer gw.Close()
	stub := &stubAPI{}
	stub.delay.Store(int64(30 * time.Millisecond))
	gw.AddReplica("r0", stub)

	var hedge, stale, shedBulk atomic.Bool
	var everNoHedge, everStale, everShedBulk atomic.Bool // sticky: rung was reached
	hedge.Store(true)
	gw.SetBrownoutHook(overload.StageActions{
		SetHedge: func(on bool) {
			hedge.Store(on)
			if !on {
				everNoHedge.Store(true)
			}
		},
		SetStale: func(on bool) {
			stale.Store(on)
			if on {
				everStale.Store(true)
			}
		},
		SetShedBulk: func(on bool) {
			shedBulk.Store(on)
			if on {
				everShedBulk.Store(true)
			}
		},
	})

	// Storm: a closed swarm hammering a 1-permit gateway sheds nearly
	// everything, holding pressure high while it lasts.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				gw.CountHLEs("", "10.9.0.3", dm.HLEFilter{Kind: "flare"})
			}
		}()
	}

	// Wait on the hook's own effect, not the stage: the loop updates the
	// stage first and applies the hook a moment later. (The ladder may
	// already be descending again by the time the storm is torn down, so
	// rung coverage is asserted via the sticky flags below.)
	deadline := time.Now().Add(5 * time.Second)
	for !everShedBulk.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never reached shed-bulk; stage %v pressure %.2f",
				gw.BrownoutStage(), gw.Status().Overload.Pressure)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if !everNoHedge.Load() || !everStale.Load() {
		t.Fatalf("ladder skipped rungs: noHedge=%v stale=%v",
			everNoHedge.Load(), everStale.Load())
	}

	// Recovery: arrivals stopped, pressure decays, ladder exits brownout.
	deadline = time.Now().Add(5 * time.Second)
	for !hedge.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never recovered; stage %v pressure %.2f",
				gw.BrownoutStage(), gw.Status().Overload.Pressure)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if gw.BrownoutStage() != overload.StageNormal {
		t.Fatalf("hedge restored but stage is %v", gw.BrownoutStage())
	}
	if !hedge.Load() || stale.Load() || shedBulk.Load() {
		t.Fatalf("hook after recovery: hedge=%v stale=%v shedBulk=%v, want true/false/false",
			hedge.Load(), stale.Load(), shedBulk.Load())
	}
	if tr := gw.Status().Overload.Transitions; tr < 6 {
		t.Fatalf("transitions = %d, want the full climb and descent (>= 6)", tr)
	}
}

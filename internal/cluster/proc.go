package cluster

import (
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"time"
)

// Proc is a replica running as a child process (hedc-server in replica
// mode). The in-process Replica is the common path; Proc exists so a
// node can also live in its own address space — killing the process is
// then a faithful machine failure.
type Proc struct {
	cmd       *exec.Cmd
	healthURL string
}

// SpawnProcess starts binary with args and waits until its health
// endpoint answers (or timeout, in which case the child is killed).
func SpawnProcess(binary string, args []string, healthURL string, timeout time.Duration) (*Proc, error) {
	cmd := exec.Command(binary, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: spawn %s: %w", binary, err)
	}
	p := &Proc{cmd: cmd, healthURL: healthURL}
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: time.Second}
	for {
		resp, err := client.Get(healthURL)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p, nil
			}
		}
		if time.Now().After(deadline) {
			p.Kill()
			return nil, fmt.Errorf("cluster: %s did not become healthy within %v", binary, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// Healthy re-probes the child's health endpoint.
func (p *Proc) Healthy() bool {
	client := &http.Client{Timeout: time.Second}
	resp, err := client.Get(p.healthURL)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Stop terminates the child gracefully (SIGTERM, then SIGKILL after
// grace) and reaps it.
func (p *Proc) Stop(grace time.Duration) error {
	if p.cmd.Process == nil {
		return nil
	}
	_ = p.cmd.Process.Signal(os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(grace):
		_ = p.cmd.Process.Kill()
		return <-done
	}
}

// Kill terminates the child immediately and reaps it.
func (p *Proc) Kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

package cluster

import (
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// TestProcReplicaLifecycle runs a replica as a real child process — the
// hedc-server binary in replica mode — against an in-test networked
// database, routes a call through a gateway to it, and shuts it down
// gracefully. This is the out-of-process half of the replica lifecycle;
// the in-process half is covered by the other cluster tests.
func TestProcReplicaLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns a child process")
	}
	bin := filepath.Join(t.TempDir(), "hedc-server")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/hedc-server")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build hedc-server: %v\n%s", err, out)
	}

	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dbSrv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()
	h := &schema.HLE{ID: "hle-proc-1", Version: 1, Owner: "loader", Public: true,
		KindHint: "flare", TStop: 1, CalibVersion: 1}
	if _, err := db.Insert(schema.TableHLE, h.ToRow()); err != nil {
		t.Fatal(err)
	}

	// A free port for the child to listen on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	proc, err := SpawnProcess(bin, []string{
		"-mode", "replica", "-addr", addr, "-db-addr", dbSrv.Addr(), "-node", "proc-1",
	}, fmt.Sprintf("http://%s/healthz", addr), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer proc.Kill()
	if !proc.Healthy() {
		t.Fatal("spawned replica not healthy")
	}

	gw := NewGateway(GatewayOptions{})
	defer gw.Close()
	gw.AddReplica("proc-1", dm.NewRemote(fmt.Sprintf("http://%s/dm/", addr), nil))
	n, err := gw.CountHLEs("", "10.9.0.1", dm.HLEFilter{Kind: "flare"})
	if err != nil || n != 1 {
		t.Fatalf("count through child replica = %d, %v", n, err)
	}

	// Graceful stop: SIGTERM, the child's signal handler drains and
	// exits cleanly within the grace period.
	if err := proc.Stop(5 * time.Second); err != nil {
		t.Fatalf("graceful stop: %v", err)
	}
	if proc.Healthy() {
		t.Fatal("replica still answering after stop")
	}
}

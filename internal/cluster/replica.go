// Package cluster implements the live replicated middle tier: HEDC
// "scales by replication" — identical DM nodes multiply against one
// shared database while a gateway spreads the presentation tier's
// requests across them (§5.4, Figure 5). A Replica is one such node; a
// Gateway fronts N of them with health checks, cache-affinity load
// balancing, failover and admission control.
package cluster

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/dm"
	"repro/internal/minidb"
)

// Capacity calibrates a replica's middle-tier resource model so that a
// live node degrades the way Figure 4 measured: fine until ~16
// simultaneous clients, then thrashing. Zero value disables the model
// (the node is then bounded only by real CPU and the shared database).
type Capacity struct {
	// Workers is the node's core count — concurrent CPU slices (default
	// 2, the dual-PIII web server).
	Workers int
	// CPUPerCall is the middle-tier CPU burst per API call. Figure 4's
	// node spends ~0.11 core-seconds per page over ~8 slices.
	CPUPerCall time.Duration
	// ThrashThreshold and ThrashFactor inflate the burst under load:
	// demand *= 1 + ThrashFactor*max(0, inflight-ThrashThreshold),
	// the same law the simulator's CPU uses (memory pressure past ~16
	// clients per node).
	ThrashThreshold int
	ThrashFactor    float64
}

func (c Capacity) enabled() bool { return c.CPUPerCall > 0 }

// ReplicaOptions configures one middle-tier node.
type ReplicaOptions struct {
	// Name is the node name (e.g. "replica-2").
	Name string
	// DB is the shared metadata engine — normally a dbnet.Client so all
	// replicas see one database.
	DB minidb.Engine
	// Addr is the HTTP listen address; empty means 127.0.0.1:0.
	Addr string
	// Capacity is the per-node load model.
	Capacity Capacity
	// Logger receives node messages. Nil discards them.
	Logger *log.Logger
}

// Replica is one live DM node serving the dm RPC surface over HTTP,
// with a health endpoint and a calibrated capacity model.
type Replica struct {
	name string
	dm   *dm.DM
	srv  *http.Server
	ln   net.Listener
	cap  Capacity
	slot chan struct{}

	inflight atomic.Int64
	served   atomic.Int64
	stopped  atomic.Bool
}

// StartReplica opens a DM over the shared engine and serves it.
func StartReplica(opts ReplicaOptions) (*Replica, error) {
	if opts.Name == "" {
		opts.Name = "replica"
	}
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	d, err := dm.Open(dm.Options{Node: opts.Name, MetaDB: opts.DB, Logger: logger})
	if err != nil {
		return nil, fmt.Errorf("cluster: open DM for %s: %w", opts.Name, err)
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen for %s: %w", opts.Name, err)
	}
	r := &Replica{name: opts.Name, dm: d, ln: ln, cap: opts.Capacity}
	workers := opts.Capacity.Workers
	if workers <= 0 {
		workers = 2
	}
	r.slot = make(chan struct{}, workers)

	rpc := dm.NewServer(dm.Local{DM: d}, "/dm/").Mux()
	mux := http.NewServeMux()
	mux.Handle("/dm/", r.capacityMiddleware(rpc))
	mux.HandleFunc("/healthz", r.healthz)
	r.srv = &http.Server{Handler: mux}
	go r.srv.Serve(ln)
	return r, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// capacityMiddleware charges each RPC the node's CPU burst, inflated
// under load — the web-node side of the Figure 4/5 curves. Pings are
// exempt: health checks must stay cheap on a drowning node (they probe
// liveness, not latency).
func (r *Replica) capacityMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/dm/ping" {
			next.ServeHTTP(w, req)
			return
		}
		n := r.inflight.Add(1)
		defer r.inflight.Add(-1)
		defer r.served.Add(1)
		if r.cap.enabled() {
			demand := r.cap.CPUPerCall
			if over := int(n) - r.cap.ThrashThreshold; over > 0 && r.cap.ThrashFactor > 0 {
				demand = time.Duration(float64(demand) * (1 + r.cap.ThrashFactor*float64(over)))
			}
			r.slot <- struct{}{} // one of Workers cores
			time.Sleep(demand)
			<-r.slot
		}
		next.ServeHTTP(w, req)
	})
}

func (r *Replica) healthz(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"name":     r.name,
		"inflight": r.inflight.Load(),
		"served":   r.served.Load(),
	})
}

// Name returns the node name.
func (r *Replica) Name() string { return r.name }

// Addr returns the replica's listen address.
func (r *Replica) Addr() string { return r.ln.Addr().String() }

// URL returns the DM RPC base URL remote callers dial.
func (r *Replica) URL() string { return "http://" + r.Addr() + "/dm/" }

// HealthURL returns the liveness endpoint.
func (r *Replica) HealthURL() string { return "http://" + r.Addr() + "/healthz" }

// DM exposes the node's DM (tests and diagnostics).
func (r *Replica) DM() *dm.DM { return r.dm }

// Inflight returns the number of RPCs currently being served.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// Served returns the total RPCs served.
func (r *Replica) Served() int64 { return r.served.Load() }

// Stop kills the node abruptly — the listener and every live connection
// drop, as when a machine dies. The shared engine is not closed.
func (r *Replica) Stop() {
	if r.stopped.Swap(true) {
		return
	}
	r.srv.Close()
}

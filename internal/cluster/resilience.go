package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Resilience machinery the chaos harness demanded: a per-replica circuit
// breaker (stop hammering a replica that keeps failing; probe it gently —
// the breaker itself lives in internal/circuit, shared with the shard
// router), a global retry budget (failover is a multiplier on offered
// load — cap it before a partial outage becomes a retry storm), and an
// epoch-tagged stale cache (when the shared database is gone, answering
// yesterday's browse query beats answering nothing — the paper's archive
// is append-mostly, so stale reads are wrong only in what they omit).

// --- retry budget ---

// retryBudget is a token bucket shared by every request: each failover
// retry spends one token. When an outage makes every call retry, the
// bucket drains and retries stop — the cluster fails fast instead of
// tripling its own load at the worst possible moment.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	refill float64 // tokens per second
	last   time.Time
}

func newRetryBudget(refillPerSec float64, burst int) *retryBudget {
	return &retryBudget{
		tokens: float64(burst), burst: float64(burst),
		refill: refillPerSec, last: time.Now(),
	}
}

func (rb *retryBudget) advance(now time.Time) {
	rb.tokens += now.Sub(rb.last).Seconds() * rb.refill
	if rb.tokens > rb.burst {
		rb.tokens = rb.burst
	}
	rb.last = now
}

// take spends one retry token, reporting false when the budget is dry.
func (rb *retryBudget) take() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.advance(time.Now())
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// remaining reports the current token count (for /stats).
func (rb *retryBudget) remaining() float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.advance(time.Now())
	return rb.tokens
}

// jitter spreads a backoff pause over [d/2, 3d/2): synchronized retries
// from N callers would otherwise re-converge on the struggling replica in
// lockstep.
func jitter(d time.Duration) time.Duration {
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// --- degraded-mode stale cache ---

// DegradedError marks a response served from the gateway's stale cache
// because the live path could not answer. The result it accompanies is
// real data from an earlier epoch — the caller chooses whether to show
// it (browse pages do, flagged) or treat it as the failure it wraps.
type DegradedError struct {
	// Age is how long ago the served value was cached.
	Age time.Duration
	// Epoch is the gateway write epoch when the value was cached;
	// StaleWrites is how many writes the gateway has accepted since, an
	// upper bound on how much the value can be missing.
	Epoch       uint64
	StaleWrites uint64
	// Cause is the live-path failure that forced degradation.
	Cause error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("cluster: degraded response (cached %v ago, %d writes behind): %v",
		e.Age.Round(time.Millisecond), e.StaleWrites, e.Cause)
}

func (e *DegradedError) Unwrap() error { return e.Cause }

// Degraded is the structural marker upper layers test for.
func (e *DegradedError) Degraded() bool { return true }

// IsDegraded reports whether err marks a stale-but-served response.
func IsDegraded(err error) bool {
	var d interface{ Degraded() bool }
	return errors.As(err, &d) && d.Degraded()
}

// staleEntry is one cached read result.
type staleEntry struct {
	val   any
	epoch uint64 // gateway write epoch at caching time
	at    time.Time
}

// staleCache holds the most recent successful result of anonymous browse
// reads, keyed by method+affinity. Only public (tokenless) results are
// ever stored, so degradation can never leak a private row to the wrong
// session. Bounded by arbitrary eviction: the cache is a lifeboat, not a
// performance path.
type staleCache struct {
	mu      sync.RWMutex
	max     int
	entries map[string]staleEntry
}

func newStaleCache(max int) *staleCache {
	return &staleCache{max: max, entries: make(map[string]staleEntry)}
}

func (c *staleCache) put(key string, val any, epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.max {
		for k := range c.entries { // evict one arbitrary entry
			delete(c.entries, k)
			break
		}
	}
	c.entries[key] = staleEntry{val: val, epoch: epoch, at: time.Now()}
}

func (c *staleCache) get(key string) (staleEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[key]
	return e, ok
}

func (c *staleCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// serveRead wraps one anonymous-cacheable gateway read. Successful
// anonymous results refresh the stale cache; a failure that means "the
// serving path is gone" (no replicas, transport failure everywhere, the
// shared database partitioned away) is converted — for anonymous callers
// with a cached value — into that value plus a DegradedError tag.
// Overload shedding is never converted: the data path works, the caller
// should back off, and serving cache would hide saturation.
func serveRead[T any](g *Gateway, method, affinity, token string, call func() (T, error)) (T, error) {
	v, err := call()
	if token != "" {
		return v, err // private result: never cached, never degraded
	}
	key := method + "|" + affinity
	if err == nil {
		g.stale.put(key, v, g.writeEpoch.Load())
		return v, nil
	}
	if !g.canDegrade(err) {
		return v, err
	}
	e, ok := g.stale.get(key)
	if !ok {
		return v, err
	}
	g.degradedServes.Add(1)
	cur := g.writeEpoch.Load()
	return e.val.(T), &DegradedError{
		Age:         time.Since(e.at),
		Epoch:       e.epoch,
		StaleWrites: cur - e.epoch,
		Cause:       err,
	}
}

package cluster

import (
	"errors"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/overload"
	"repro/internal/schema"
)

// --- circuit breaker unit tests ---

func TestBreakerLifecycle(t *testing.T) {
	b := circuit.New(3, 50*time.Millisecond)

	// Closed admits freely; failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.TryAcquire() {
			t.Fatal("closed breaker refused a call")
		}
		b.Failure()
	}
	if st, fails, _ := b.Snapshot(); st != "closed" || fails != 2 {
		t.Fatalf("state %s fails %d, want closed/2", st, fails)
	}

	// The threshold failure opens it; an open breaker refuses.
	if !b.TryAcquire() {
		t.Fatal("closed breaker refused")
	}
	b.Failure()
	if st, _, opens := b.Snapshot(); st != "open" || opens != 1 {
		t.Fatalf("state %s opens %d, want open/1", st, opens)
	}
	if b.TryAcquire() {
		t.Fatal("open breaker admitted a call inside cooldown")
	}

	// After cooldown exactly one probe is admitted (half-open).
	time.Sleep(60 * time.Millisecond)
	if !b.TryAcquire() {
		t.Fatal("breaker past cooldown refused the probe")
	}
	if b.TryAcquire() {
		t.Fatal("half-open breaker admitted a second probe")
	}

	// A failed probe re-opens; a later successful probe closes.
	b.Failure()
	if st, _, opens := b.Snapshot(); st != "open" || opens != 2 {
		t.Fatalf("after failed probe: state %s opens %d, want open/2", st, opens)
	}
	time.Sleep(60 * time.Millisecond)
	if !b.TryAcquire() {
		t.Fatal("re-opened breaker refused probe after cooldown")
	}
	b.Success()
	if st, fails, _ := b.Snapshot(); st != "closed" || fails != 0 {
		t.Fatalf("after successful probe: state %s fails %d, want closed/0", st, fails)
	}
}

func TestBreakerSingleProbeUnderRace(t *testing.T) {
	b := circuit.New(1, 10*time.Millisecond)
	b.TryAcquire()
	b.Failure() // open
	time.Sleep(20 * time.Millisecond)

	// Many goroutines race for the half-open slot: exactly one wins.
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.TryAcquire() {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := admitted.Load(); n != 1 {
		t.Fatalf("%d probes admitted, want exactly 1", n)
	}
}

func TestRetryBudgetDrainAndRefill(t *testing.T) {
	rb := newRetryBudget(1000, 3) // fast refill so the test stays quick
	for i := 0; i < 3; i++ {
		if !rb.take() {
			t.Fatalf("take %d refused with tokens in the bucket", i)
		}
	}
	if rb.take() {
		t.Fatal("take succeeded on a dry bucket")
	}
	time.Sleep(5 * time.Millisecond) // 1000/s refill: plenty
	if !rb.take() {
		t.Fatal("bucket did not refill")
	}
	if got := rb.remaining(); got > 3 {
		t.Fatalf("bucket overfilled past burst: %v", got)
	}
}

func TestJitterBounds(t *testing.T) {
	d := 10 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := jitter(d)
		if j < d/2 || j >= d/2*3 {
			t.Fatalf("jitter(%v) = %v outside [d/2, 3d/2)", d, j)
		}
	}
}

func TestStaleCacheBounded(t *testing.T) {
	c := newStaleCache(4)
	for i := 0; i < 20; i++ {
		c.put(fmt.Sprintf("k%d", i), i, uint64(i))
	}
	if c.len() > 4 {
		t.Fatalf("cache grew to %d entries past max 4", c.len())
	}
	c.put("k19", 99, 21) // overwrite must not evict
	if e, ok := c.get("k19"); !ok || e.val.(int) != 99 {
		t.Fatal("overwrite lost the entry")
	}
}

// --- gateway integration ---

// TestGatewayDegradedBrowseOnDBLoss is the acceptance scenario: the shared
// database partitions away from every replica. Anonymous browse queries
// that were served before keep answering from the gateway's stale cache —
// tagged degraded — while writes fail fast with the typed DB-unavailable
// error, and private reads are never served from cache.
func TestGatewayDegradedBrowseOnDBLoss(t *testing.T) {
	tc := startCluster(t, 2, 20,
		// Health stays quiet for the test window: the replicas themselves
		// are fine, only the database behind them is gone.
		GatewayOptions{HealthInterval: time.Minute}, Capacity{})

	si, err := tc.gw.Authenticate("sci", "pw", "10.1.0.1", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	f := dm.HLEFilter{Kind: "flare"}
	warm, err := tc.gw.QueryHLEs("", "10.1.0.1", f)
	if err != nil || len(warm) == 0 {
		t.Fatalf("warm query: %v (%d rows)", err, len(warm))
	}
	warmCount, err := tc.gw.CountHLEs("", "10.1.0.1", f)
	if err != nil {
		t.Fatal(err)
	}

	// Partition the shared database away from every replica.
	tc.dbSrv.Close()

	// Anonymous browse still answers, marked degraded, with the cached data.
	got, err := tc.gw.QueryHLEs("", "10.1.0.1", f)
	if !IsDegraded(err) {
		t.Fatalf("query with DB gone: err = %v, want degraded marker", err)
	}
	if len(got) != len(warm) || got[0].ID != warm[0].ID {
		t.Fatalf("degraded result diverges: %d rows vs %d warm", len(got), len(warm))
	}
	var de *DegradedError
	if !asDegraded(err, &de) {
		t.Fatalf("degraded error has wrong concrete type: %T", err)
	}
	if de.Cause == nil || de.StaleWrites != 0 {
		t.Fatalf("degraded tag incomplete: %+v", de)
	}
	n, err := tc.gw.CountHLEs("", "10.1.0.1", f)
	if !IsDegraded(err) || n != warmCount {
		t.Fatalf("degraded count = %d (err %v), want %d with degraded marker", n, err, warmCount)
	}

	// A filter never served before has nothing cached: the typed failure
	// surfaces unmasked.
	if _, err := tc.gw.QueryHLEs("", "10.1.0.1", dm.HLEFilter{Kind: "burst"}); err == nil || IsDegraded(err) {
		t.Fatalf("uncached filter served anyway: %v", err)
	}

	// Writes fail fast with the typed DB-unavailable error — no long
	// timeout, no cross-replica retry storm.
	start := time.Now()
	_, err = tc.gw.CreateHLE(si.Token, "10.1.0.1", &schema.HLE{
		KindHint: "flare", Day: 1, TStart: 9000, TStop: 9001, Version: 1, CalibVersion: 1,
	})
	elapsed := time.Since(start)
	if !dm.IsDBUnavailable(err) {
		t.Fatalf("write with DB gone: err = %v, want DB-unavailable", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("write took %v to fail — not fast", elapsed)
	}

	// Private reads never degrade to the anonymous cache.
	if _, err := tc.gw.CountHLEs(si.Token, "10.1.0.1", f); err == nil || IsDegraded(err) {
		t.Fatalf("tokened read served from anonymous cache: %v", err)
	}

	st := tc.gw.Status()
	if st.DegradedServes < 2 {
		t.Fatalf("DegradedServes = %d, want >= 2", st.DegradedServes)
	}
	if st.WritesFailedFast < 1 {
		t.Fatalf("WritesFailedFast = %d, want >= 1", st.WritesFailedFast)
	}
	if st.StaleEntries < 2 {
		t.Fatalf("StaleEntries = %d, want >= 2", st.StaleEntries)
	}
}

func asDegraded(err error, out **DegradedError) bool {
	d, ok := err.(*DegradedError)
	if ok {
		*out = d
	}
	return ok
}

// TestGatewayCircuitOpensOnDeadReplica: with the health prober quiet, the
// breaker alone must take a dead replica out of rotation after threshold
// consecutive transport failures, while traffic continues on the survivor.
func TestGatewayCircuitOpensOnDeadReplica(t *testing.T) {
	tc := startCluster(t, 2, 10, GatewayOptions{
		HealthInterval:   time.Minute, // breaker, not prober, does the work
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		RetryBackoff:     time.Millisecond,
	}, Capacity{})

	tc.replicas[0].Stop()
	// Failures route around the dead node; every call still succeeds.
	for i := 0; i < 12; i++ {
		if _, err := tc.gw.CountHLEs("", "10.2.0.1", dm.HLEFilter{Kind: "flare", HasDay: true, Day: int64(i)}); err != nil {
			t.Fatalf("call %d failed despite live sibling: %v", i, err)
		}
	}
	var dead MemberStatus
	for _, m := range tc.gw.Members() {
		if m.Name == "replica-0" {
			dead = m
		}
	}
	// noteFailure marks the node unhealthy on first failure; the breaker
	// records the failures it observed before that.
	if dead.Healthy {
		t.Fatal("dead replica still marked healthy")
	}
	if dead.Failed == 0 {
		t.Fatal("no failures recorded against the dead replica")
	}
	if tc.gw.Failovers() == 0 {
		t.Fatal("no failovers recorded")
	}
}

// TestGatewayPrioritySheds: when the admission queue is full, anonymous
// browse is shed immediately (it has a stale-cache lifeboat) while
// authenticated work waits for a slot.
func TestGatewayPrioritySheds(t *testing.T) {
	tc := startCluster(t, 1, 5, GatewayOptions{
		MaxInflight:  1,
		QueueTimeout: 2 * time.Second,
	}, Capacity{Workers: 1, CPUPerCall: 300 * time.Millisecond})

	si, err := tc.gw.Authenticate("sci", "pw", "10.3.0.1", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy the only admission slot.
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		tc.gw.CountHLEs("", "10.3.0.1", dm.HLEFilter{Kind: "flare"})
	}()
	time.Sleep(50 * time.Millisecond)

	// Anonymous: shed at once, far faster than QueueTimeout.
	start := time.Now()
	_, err = tc.gw.CountHLEs("", "10.3.0.2", dm.HLEFilter{Kind: "burst"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("anonymous read under full house: %v, want ErrOverloaded", err)
	}
	if ra, ok := overload.RetryAfterOf(err); !ok || ra <= 0 {
		t.Fatalf("fixed-mode shed carries no retry-after hint: %v", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Fatalf("anonymous shed took %v — it queued instead of shedding", d)
	}

	// Authenticated: waits out the slot and succeeds.
	if _, err := tc.gw.CountHLEs(si.Token, "10.3.0.3", dm.HLEFilter{Kind: "flare"}); err != nil {
		t.Fatalf("authenticated read was shed: %v", err)
	}
	<-hold
}

// TestPinnedCircuitOpenDemotesAndReaps is the satellite scenario: a pinned
// replica dies mid-session while an interactive transaction it (notionally)
// owned sits idle on the shared database. The gateway demotes the session
// the moment the replica's circuit opens, the database server reaps the
// orphaned transaction, and a re-authenticated session can write again.
func TestPinnedCircuitOpenDemotesAndReaps(t *testing.T) {
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	dbSrv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{
		DB:             db,
		TxnIdleTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	boot, err := dm.Open(dm.Options{Node: "boot", MetaDB: db, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	if err := boot.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightDownload, dm.RightAnalyze, dm.RightUpload); err != nil {
		t.Fatal(err)
	}

	gw := NewGateway(GatewayOptions{
		HealthInterval:   time.Minute, // the breaker must do the demotion
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Second,
	})
	defer gw.Close()
	var replicas []*Replica
	var clients []*dbnet.Client
	for i := 0; i < 2; i++ {
		cl, err := dbnet.Dial(dbnet.ClientOptions{Addr: dbSrv.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		rep, err := StartReplica(ReplicaOptions{Name: fmt.Sprintf("replica-%d", i), DB: cl})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, rep)
		gw.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
		for _, c := range clients {
			c.Close()
		}
	}()

	si, err := gw.Authenticate("sci", "pw", "10.4.0.1", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	gw.pinMu.Lock()
	pinned := gw.pins[si.Token]
	gw.pinMu.Unlock()
	if pinned == nil {
		t.Fatal("token not pinned")
	}

	// An interactive transaction goes idle on the shared database — the
	// writer lock a dying replica would leave behind.
	orphanCl, err := dbnet.Dial(dbnet.ClientOptions{Addr: dbSrv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer orphanCl.Close()
	orphan := orphanCl.BeginTx()
	if _, err := orphan.Insert(schema.TableHLE, (&schema.HLE{
		ID: "hle-orphan", Version: 1, Owner: "sci", KindHint: "flare",
		TStart: 1, TStop: 2, CalibVersion: 1,
	}).ToRow()); err != nil {
		t.Fatalf("orphan tx insert: %v", err)
	}
	// ...and is never committed: the replica that owned it is dead.

	for _, r := range replicas {
		if r.Name() == pinned.name {
			r.Stop()
		}
	}

	// First tokened call hits the dead pin, fails, demotes the session,
	// opens the circuit (threshold 1), and fails over to the sibling.
	if _, err := gw.CountHLEs(si.Token, "10.4.0.1", dm.HLEFilter{Kind: "flare"}); err != nil {
		t.Fatalf("browse after pinned replica death: %v", err)
	}
	if gw.Status().SessionDemotions != 1 {
		t.Fatalf("SessionDemotions = %d, want 1", gw.Status().SessionDemotions)
	}
	gw.pinMu.Lock()
	_, stillPinned := gw.pins[si.Token]
	gw.pinMu.Unlock()
	if stillPinned {
		t.Fatal("dead pin not removed")
	}
	var deadCircuit string
	for _, m := range gw.Members() {
		if m.Name == pinned.name {
			deadCircuit = m.Circuit
		}
	}
	if deadCircuit != "open" {
		t.Fatalf("dead replica circuit = %q, want open", deadCircuit)
	}

	// The database server reaps the idle transaction...
	deadline := time.Now().Add(3 * time.Second)
	for dbSrv.TxnTimeouts() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle transaction never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// ...so a re-authenticated session can take the writer lock and write.
	si2, err := gw.Authenticate("sci", "pw", "10.4.0.1", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.CreateHLE(si2.Token, "10.4.0.1", &schema.HLE{
		KindHint: "flare", Day: 3, TStart: 5000, TStop: 5001, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatalf("write after reap: %v", err)
	}
}

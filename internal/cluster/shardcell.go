package cluster

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/shard"
)

// ShardCellOptions configures an N-shard × M-replica cell: M identical
// DM replicas, each routing through its own shard.Router over dbnet
// clients to the N shard databases, fronted by one gateway. This is the
// deployment shape that breaks the Figure 5 ceiling — the single shared
// database becomes N databases, each with its own throughput budget.
type ShardCellOptions struct {
	// ShardAddrs are the dbnet server addresses, index = shard id.
	// Required, non-empty.
	ShardAddrs []string
	// Replicas is the middle-tier node count (default 1).
	Replicas int
	// Capacity is the per-replica load model (zero disables it).
	Capacity Capacity
	// Gateway configures the fronting gateway.
	Gateway GatewayOptions
	// CallTimeout bounds each dbnet dial and call (0 = dbnet defaults).
	CallTimeout time.Duration
	// NamePrefix names the replicas ("<prefix>-<i>"; default "shardrep").
	NamePrefix string
	// Logger receives cell noise. Nil discards it.
	Logger *log.Logger
}

// ShardCell is a running N-shard × M-replica deployment.
type ShardCell struct {
	// GW fronts the replicas; it is the cell's client surface.
	GW *Gateway
	// Replicas are the live middle-tier nodes.
	Replicas []*Replica

	// routers, one per replica; closing a router closes its dbnet
	// clients, so the cell tracks no client handles of its own.
	routers []*shard.Router
}

// StartShardCell dials every shard from every replica and brings the
// cell up. The shard databases themselves (and their dbnet servers) are
// the caller's: they usually outlive several cells in a sweep.
func StartShardCell(o ShardCellOptions) (*ShardCell, error) {
	if len(o.ShardAddrs) == 0 {
		return nil, fmt.Errorf("cluster: shard cell needs at least one shard address")
	}
	replicas := o.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	prefix := o.NamePrefix
	if prefix == "" {
		prefix = "shardrep"
	}
	c := &ShardCell{GW: NewGateway(o.Gateway)}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()
	for i := 0; i < replicas; i++ {
		engines := make(map[int]minidb.Engine, len(o.ShardAddrs))
		closePartial := func() {
			for _, e := range engines {
				if cl, isClient := e.(*dbnet.Client); isClient {
					cl.Close()
				}
			}
		}
		for sid, addr := range o.ShardAddrs {
			cl, err := dbnet.Dial(dbnet.ClientOptions{
				Addr:        addr,
				DialTimeout: o.CallTimeout,
				CallTimeout: o.CallTimeout,
			})
			if err != nil {
				closePartial()
				return nil, fmt.Errorf("cluster: replica %d dial shard %d: %w", i, sid, err)
			}
			engines[sid] = cl
		}
		router, err := shard.NewRouter(shard.Options{Shards: engines, Logger: o.Logger})
		if err != nil {
			closePartial()
			return nil, fmt.Errorf("cluster: replica %d router: %w", i, err)
		}
		c.routers = append(c.routers, router)
		rep, err := StartReplica(ReplicaOptions{
			Name:     fmt.Sprintf("%s-%d", prefix, i),
			DB:       router,
			Capacity: o.Capacity,
			Logger:   o.Logger,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: replica %d: %w", i, err)
		}
		c.Replicas = append(c.Replicas, rep)
		c.GW.AddReplica(rep.Name(), dm.NewRemote(rep.URL(), nil))
	}
	ok = true
	return c, nil
}

// Routers exposes the per-replica shard routers (tests and diagnostics).
func (c *ShardCell) Routers() []*shard.Router { return c.routers }

// Close stops the gateway, the replicas and every router (which closes
// the dbnet clients under it). The shard servers and databases stay up.
func (c *ShardCell) Close() {
	if c.GW != nil {
		c.GW.Close()
	}
	for _, r := range c.Replicas {
		r.Stop()
	}
	for _, rt := range c.routers {
		rt.Close()
	}
}

package cluster

import (
	"fmt"
	"io"
	"log"
	"testing"

	"repro/internal/dbnet"
	"repro/internal/dm"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/shard"
)

// TestShardCellServes is the sharded-cell smoke: a 2-shard × 2-replica
// cell comes up, scatter queries and counts through the gateway see
// every row regardless of which shard holds it, point reads route, and
// a write through the full stack lands on exactly one shard.
func TestShardCellServes(t *testing.T) {
	logger := log.New(io.Discard, "", 0)

	var dbs []*minidb.DB
	var addrs []string
	engines := make(map[int]minidb.Engine, 2)
	for i := 0; i < 2; i++ {
		db, err := minidb.Open("", schema.AllSchemas()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		srv, err := dbnet.Listen("127.0.0.1:0", dbnet.Options{DB: db})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		dbs = append(dbs, db)
		addrs = append(addrs, srv.Addr())
		engines[i] = db
	}

	// Seed through an in-process router so rows land on their owning
	// shards under the same map every replica will compute.
	boot, err := shard.NewRouter(shard.Options{Shards: engines})
	if err != nil {
		t.Fatal(err)
	}
	bootDM, err := dm.Open(dm.Options{Node: "boot", MetaDB: boot, Logger: logger})
	if err != nil {
		t.Fatal(err)
	}
	if err := bootDM.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	if err := bootDM.CreateUser("sci", "pw", dm.GroupScientist,
		dm.RightBrowse, dm.RightAnalyze, dm.RightUpload); err != nil {
		t.Fatal(err)
	}
	const seeded = 24
	for i := 0; i < seeded; i++ {
		h := &schema.HLE{
			ID: fmt.Sprintf("hle-cell-%04d", i), Version: 1, Owner: "sci", Public: true,
			KindHint: "flare", TStart: float64(i), TStop: float64(i + 1), CalibVersion: 1,
		}
		if _, err := boot.Insert(schema.TableHLE, h.ToRow()); err != nil {
			t.Fatal(err)
		}
	}
	for _, db := range dbs {
		if n := db.TableLen(schema.TableHLE); n == 0 || n == seeded {
			t.Fatalf("seed did not spread across shards: one shard holds %d of %d rows", n, seeded)
		}
	}

	cell, err := StartShardCell(ShardCellOptions{
		ShardAddrs: addrs,
		Replicas:   2,
		Logger:     logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cell.Close()
	if got := len(cell.Routers()); got != 2 {
		t.Fatalf("routers = %d, want one per replica", got)
	}

	hles, err := cell.GW.QueryHLEs("", "10.2.0.1", dm.HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(hles) != seeded {
		t.Fatalf("scatter query returned %d rows, want %d", len(hles), seeded)
	}
	n, err := cell.GW.CountHLEs("", "10.2.0.1", dm.HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	if n != seeded {
		t.Fatalf("scatter count = %d, want %d", n, seeded)
	}
	if _, err := cell.GW.GetHLE("", "10.2.0.1", "hle-cell-0003"); err != nil {
		t.Fatalf("point read through the cell: %v", err)
	}

	si, err := cell.GW.Authenticate("sci", "pw", "10.2.0.1", dm.SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	id, err := cell.GW.CreateHLE(si.Token, "10.2.0.1", &schema.HLE{
		KindHint: "burst", TStart: 1000, TStop: 1001, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	copies := 0
	for _, db := range dbs {
		res, err := db.Query(minidb.Query{Table: schema.TableHLE,
			Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(id)}}})
		if err != nil {
			t.Fatal(err)
		}
		copies += len(res.Rows)
	}
	if copies != 1 {
		t.Fatalf("created HLE %s exists %d times across shards, want exactly 1", id, copies)
	}
}

package colseg

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/minidb"
)

// eventsSchema is the test table: the shape of the RHESSI event catalog —
// a monotone id, a dictionary-friendly unit string, time and energy floats,
// small ints, and a nullable column to exercise NULL semantics.
func eventsSchema() *minidb.Schema {
	return &minidb.Schema{
		Name: "ev",
		Columns: []minidb.Column{
			{Name: "event_id", Type: minidb.IntType},
			{Name: "unit_id", Type: minidb.StringType},
			{Name: "t", Type: minidb.FloatType},
			{Name: "energy", Type: minidb.FloatType, Nullable: true},
			{Name: "detector", Type: minidb.IntType},
			{Name: "flag", Type: minidb.BoolType},
		},
		PrimaryKey: "event_id",
		Indexes:    []string{"t"},
	}
}

func openEvents(t testing.TB) *minidb.DB {
	t.Helper()
	db, err := minidb.Open("", eventsSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func insertEvents(t testing.TB, db *minidb.DB, rng *rand.Rand, n int, firstID int64) {
	t.Helper()
	b := &minidb.Batch{}
	for i := 0; i < n; i++ {
		id := firstID + int64(i)
		energy := minidb.F(3 + 300*rng.Float64())
		if rng.Intn(10) == 0 {
			energy = minidb.Null()
		}
		b.Insert("ev", minidb.Row{
			minidb.I(id),
			minidb.S(fmt.Sprintf("u%03d", rng.Intn(12))),
			minidb.F(float64(id) + rng.Float64()),
			energy,
			minidb.I(int64(rng.Intn(9))),
			minidb.Bo(rng.Intn(2) == 0),
		})
	}
	if _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
}

// sameResult asserts bit-identical aggregates: float fields compare by
// bits, not tolerance — the whole point of the shared accumulation order.
func sameResult(t *testing.T, ctx string, vec, ref *Result) {
	t.Helper()
	if vec.Rows != ref.Rows || vec.NonNull != ref.NonNull {
		t.Fatalf("%s: rows %d/%d vs %d/%d", ctx, vec.Rows, vec.NonNull, ref.Rows, ref.NonNull)
	}
	bits := math.Float64bits
	if vec.NonNull > 0 {
		if bits(vec.Sum) != bits(ref.Sum) || bits(vec.Min) != bits(ref.Min) || bits(vec.Max) != bits(ref.Max) {
			t.Fatalf("%s: stats %v/%v/%v vs %v/%v/%v", ctx, vec.Sum, vec.Min, vec.Max, ref.Sum, ref.Min, ref.Max)
		}
	}
	if len(vec.Bins) != len(ref.Bins) {
		t.Fatalf("%s: %d bins vs %d", ctx, len(vec.Bins), len(ref.Bins))
	}
	for i := range vec.Bins {
		if vec.Bins[i] != ref.Bins[i] {
			t.Fatalf("%s: bin %d: %d vs %d", ctx, i, vec.Bins[i], ref.Bins[i])
		}
	}
	if len(vec.Groups) != len(ref.Groups) {
		t.Fatalf("%s: %d groups vs %d", ctx, len(vec.Groups), len(ref.Groups))
	}
	for i := range vec.Groups {
		g, h := vec.Groups[i], ref.Groups[i]
		if g.Key != h.Key || g.Rows != h.Rows || g.NonNull != h.NonNull || bits(g.Sum) != bits(h.Sum) {
			t.Fatalf("%s: group %d: %+v vs %+v", ctx, i, g, h)
		}
	}
}

func TestVectorizedAggregates(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(1))
	insertEvents(t, db, rng, 1000, 0)
	store, err := Open(Options{DB: db, SegmentRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Refresh("ev"); err != nil {
		t.Fatal(err)
	}
	if got := store.SegmentCount("ev"); got != 7 { // 1000/128 full chunks
		t.Fatalf("segments = %d, want 7", got)
	}
	queries := []Query{
		{Table: "ev", Agg: AggCount},
		{Table: "ev", Agg: AggStats, Col: "energy"},
		{Table: "ev", Agg: AggStats, Col: "t",
			Where: []minidb.Pred{{Col: "t", Op: minidb.OpBetween, Val: minidb.F(100), Hi: minidb.F(220)}}},
		{Table: "ev", Agg: AggHist, Col: "t", Bins: 24, Lo: 0, Hi: 1001},
		{Table: "ev", Agg: AggStats, Col: "energy", GroupBy: "detector"},
		{Table: "ev", Agg: AggStats, Col: "energy", GroupBy: "unit_id",
			Where: []minidb.Pred{{Col: "flag", Op: minidb.OpEq, Val: minidb.Bo(true)}}},
		{Table: "ev", Agg: AggCount,
			Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpPrefix, Val: minidb.S("u00")}}},
		{Table: "ev", Agg: AggCount,
			Where: []minidb.Pred{{Col: "energy", Op: minidb.OpLt, Val: minidb.F(50)}}}, // NULLs match OpLt
	}
	for i, q := range queries {
		vec, err := store.Run(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		ref, err := RunRows(db, q)
		if err != nil {
			t.Fatalf("query %d ref: %v", i, err)
		}
		sameResult(t, fmt.Sprintf("query %d", i), vec, ref)
		if !vec.Stats.Vectorized {
			t.Fatalf("query %d did not use segments", i)
		}
	}
}

// TestZoneMapPruning checks that a narrow time-range predicate skips the
// segments whose zones exclude it — the monotone t column partitions time
// across segments, so a range touching one chunk prunes the rest.
func TestZoneMapPruning(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(2))
	insertEvents(t, db, rng, 1024, 0)
	store, err := Open(Options{DB: db, SegmentRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Refresh("ev"); err != nil {
		t.Fatal(err)
	}
	res, err := store.Run(Query{Table: "ev", Agg: AggCount,
		Where: []minidb.Pred{{Col: "t", Op: minidb.OpBetween, Val: minidb.F(300), Hi: minidb.F(320)}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Segments != 8 || res.Stats.SegmentsPruned < 6 {
		t.Fatalf("pruned %d of %d segments, want >= 6 of 8", res.Stats.SegmentsPruned, res.Stats.Segments)
	}
	ref, err := RunRows(db, Query{Table: "ev", Agg: AggCount,
		Where: []minidb.Pred{{Col: "t", Op: minidb.OpBetween, Val: minidb.F(300), Hi: minidb.F(320)}}})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "pruned count", res, ref)
}

// TestSegmentFormatRoundTrip: encode → decode → encode must be canonical,
// and the decoded segment must answer queries identically.
func TestSegmentFormatRoundTrip(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(3))
	insertEvents(t, db, rng, 300, 0)
	snap, err := db.TableSnap("ev")
	if err != nil {
		t.Fatal(err)
	}
	seg, err := BuildSegment(snap, 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeSegment(seg)
	dec, err := decodeSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeSegment(dec), data) {
		t.Fatal("re-encoding decoded segment is not byte-identical")
	}
	q := Query{Table: "ev", Agg: AggStats, Col: "energy", GroupBy: "unit_id"}
	a1, a2 := newAccum(&q), newAccum(&q)
	if _, _, err := runSegment(seg, &q, a1, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := runSegment(dec, &q, a2, nil); err != nil {
		t.Fatal(err)
	}
	sameResult(t, "decoded segment", a1.finish(), a2.finish())
}

func TestDecodeRejectsCorruption(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(4))
	insertEvents(t, db, rng, 64, 0)
	snap, _ := db.TableSnap("ev")
	seg, err := BuildSegment(snap, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeSegment(seg)
	for _, cut := range []int{1, len(data) / 2, len(data) - 1} {
		if _, err := decodeSegment(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(data); i += 37 {
		flipped := append([]byte(nil), data...)
		flipped[i] ^= 0x40
		if _, err := decodeSegment(flipped); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
}

// TestConcurrentCommitDuringBuild is the lock-freedom regression test:
// commits (appends and rewrites) race with segment builds and queries, and
// the store must never serve stale or torn data — a query after the writer
// finishes must see every committed row even with no Refresh since, because
// validation demotes invalidated segments to the row path.
func TestConcurrentCommitDuringBuild(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(5))
	insertEvents(t, db, rng, 512, 0)
	store, err := Open(Options{DB: db, SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Refresh("ev"); err != nil {
		t.Fatal(err)
	}

	var committed atomic.Int64
	committed.Store(512)
	var writerWG, builderWG sync.WaitGroup
	stop := make(chan struct{})

	// Writer: appends rows one batch at a time.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		wrng := rand.New(rand.NewSource(6))
		for i := 0; i < 40; i++ {
			insertEvents(t, db, wrng, 32, committed.Load())
			committed.Add(32)
		}
	}()

	// Builder: refreshes concurrently with the writer's commits.
	builderWG.Add(1)
	go func() {
		defer builderWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := store.Refresh("ev"); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Reader: counts must never run backwards or overshoot what has been
	// committed — either would mean a query saw a torn or stale state.
	var last int64
	for i := 0; i < 200; i++ {
		lo := committed.Load()
		res, err := store.Run(Query{Table: "ev", Agg: AggCount})
		if err != nil {
			t.Fatal(err)
		}
		hi := committed.Load()
		if res.Rows < lo || res.Rows > hi {
			t.Fatalf("count %d outside committed window [%d, %d]", res.Rows, lo, hi)
		}
		if res.Rows < last {
			t.Fatalf("count went backwards: %d after %d", res.Rows, last)
		}
		last = res.Rows
	}
	writerWG.Wait()
	close(stop)
	builderWG.Wait()

	// Rewrite every 10th row WITHOUT refreshing: the segments are now
	// stale, and the store must detect that and fall back to rows.
	total := committed.Load()
	for id := int64(0); id < total; id += 10 {
		row := minidb.Row{minidb.I(id), minidb.S("moved"), minidb.F(0.5),
			minidb.Null(), minidb.I(0), minidb.Bo(false)}
		if err := db.Update("ev", id, row); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Table: "ev", Agg: AggCount,
		Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpEq, Val: minidb.S("moved")}}}
	res, err := store.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	want := (total + 9) / 10
	if res.Rows != want {
		t.Fatalf("stale segments served: saw %d rewritten rows, want %d", res.Rows, want)
	}
	if res.Stats.Vectorized {
		t.Fatal("store claimed vectorized execution over invalidated segments")
	}
	// After a refresh the same query runs vectorized with the same answer.
	if err := store.Refresh("ev"); err != nil {
		t.Fatal(err)
	}
	res2, err := store.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows != want || !res2.Stats.Vectorized {
		t.Fatalf("post-refresh: rows %d (want %d), vectorized %v", res2.Rows, want, res2.Stats.Vectorized)
	}
}

// TestPropertyVectorizedEqualsRows is the quick_test-style property lane:
// randomized tables (NULLs, duplicates, rewrites) and randomized queries,
// with the vectorized chain checked bit-identical against the row engine.
func TestPropertyVectorizedEqualsRows(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 12
	}
	ops := []minidb.Op{minidb.OpEq, minidb.OpNe, minidb.OpLt, minidb.OpLe,
		minidb.OpGt, minidb.OpGe, minidb.OpBetween, minidb.OpPrefix}
	cols := []string{"event_id", "unit_id", "t", "energy", "detector", "flag"}
	for iter := 0; iter < iters; iter++ {
		rng := rand.New(rand.NewSource(int64(100 + iter)))
		db := openEvents(t)
		n := 64 + rng.Intn(512)
		insertEvents(t, db, rng, n, 0)
		// Random rewrites and deletes on some iterations: segments must be
		// rebuilt and tombstones handled.
		if iter%3 == 1 {
			for k := 0; k < 1+rng.Intn(8); k++ {
				id := int64(rng.Intn(n))
				if rng.Intn(2) == 0 {
					db.Delete("ev", id)
				} else {
					db.Update("ev", id, minidb.Row{minidb.I(id), minidb.S("rw"),
						minidb.F(rng.Float64() * float64(n)), minidb.F(1), minidb.I(1), minidb.Bo(true)})
				}
			}
		}
		store, err := Open(Options{DB: db, SegmentRows: 32 + rng.Intn(96)})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Refresh("ev"); err != nil {
			t.Fatal(err)
		}
		randVal := func(col string) minidb.Value {
			switch rng.Intn(8) {
			case 0:
				return minidb.Null()
			case 1:
				return minidb.S(fmt.Sprintf("u%03d", rng.Intn(14)))
			case 2:
				return minidb.Bo(rng.Intn(2) == 0)
			case 3:
				return minidb.I(int64(rng.Intn(n)))
			default:
				switch col {
				case "unit_id":
					return minidb.S(fmt.Sprintf("u%03d", rng.Intn(14)))
				case "detector":
					return minidb.I(int64(rng.Intn(9)))
				default:
					return minidb.F(rng.Float64() * float64(n))
				}
			}
		}
		for qi := 0; qi < 8; qi++ {
			q := Query{Table: "ev"}
			for f := rng.Intn(3); f > 0; f-- {
				col := cols[rng.Intn(len(cols))]
				p := minidb.Pred{Col: col, Op: ops[rng.Intn(len(ops))], Val: randVal(col)}
				if p.Op == minidb.OpBetween {
					p.Hi = randVal(col)
				}
				if p.Op == minidb.OpPrefix {
					p.Val = minidb.S("u0")
				}
				q.Where = append(q.Where, p)
			}
			switch rng.Intn(3) {
			case 0:
				q.Agg = AggCount
			case 1:
				q.Agg = AggStats
				q.Col = cols[rng.Intn(len(cols))]
			case 2:
				q.Agg = AggHist
				q.Col = []string{"t", "energy", "event_id"}[rng.Intn(3)]
				q.Bins = 1 + rng.Intn(16)
				q.Lo = rng.Float64() * float64(n/2)
				q.Hi = q.Lo + 1 + rng.Float64()*float64(n)
			}
			if q.Agg != AggHist && rng.Intn(2) == 0 {
				q.GroupBy = cols[rng.Intn(len(cols))]
				if q.Agg == AggStats && q.Col == "" {
					q.Col = "energy"
				}
			}
			vec, err := store.Run(q)
			if err != nil {
				t.Fatalf("iter %d q %d (%+v): %v", iter, qi, q, err)
			}
			ref, err := RunRows(db, q)
			if err != nil {
				t.Fatalf("iter %d q %d ref (%+v): %v", iter, qi, q, err)
			}
			sameResult(t, fmt.Sprintf("iter %d q %d (%+v)", iter, qi, q), vec, ref)
		}
		db.Close()
	}
}

// TestWireRoundTrip checks query and result codecs.
func TestWireRoundTrip(t *testing.T) {
	q := Query{
		Table: "ev",
		Where: []minidb.Pred{
			{Col: "t", Op: minidb.OpBetween, Val: minidb.F(1.5), Hi: minidb.F(9)},
			{Col: "unit_id", Op: minidb.OpPrefix, Val: minidb.S("u0")},
		},
		Agg: AggHist, Col: "energy", Bins: 12, Lo: 3, Hi: 330,
	}
	var b bytes.Buffer
	EncodeQuery(&b, q)
	got, err := DecodeQuery(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b2 bytes.Buffer
	EncodeQuery(&b2, got)
	if !bytes.Equal(b.Bytes(), b2.Bytes()) {
		t.Fatal("query round trip not canonical")
	}
	res := &Result{Rows: 7, NonNull: 5, Sum: 1.25, Min: -1, Max: 9,
		Bins: []int64{1, 0, 4}, Groups: []Group{{Key: "\"u001\"", Rows: 3, Sum: 0.5, NonNull: 2}},
		Stats: ExecStats{Segments: 4, SegmentsPruned: 2, SegRows: 100, TailRows: 3, Vectorized: true}}
	b.Reset()
	EncodeResult(&b, res)
	rres, err := DecodeResult(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var b3 bytes.Buffer
	EncodeResult(&b3, rres)
	if !bytes.Equal(b.Bytes(), b3.Bytes()) {
		t.Fatal("result round trip not canonical")
	}
}

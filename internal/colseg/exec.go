package colseg

import (
	"fmt"
	"sort"

	"repro/internal/minidb"
)

// batchSize is the vectorized unit of work: filters and aggregates process
// this many values per inner loop through a selection vector, so the chain
// does no per-row interface dispatch and stays in cache.
const batchSize = 4096

// AggKind selects the aggregate an analytics query computes.
type AggKind uint8

const (
	// AggCount counts matching rows.
	AggCount AggKind = iota
	// AggStats computes sum, min, max and non-NULL count over Col in one
	// pass (mean = Sum/NonNull).
	AggStats
	// AggHist builds a fixed-width histogram of Col over [Lo, Hi) with
	// Bins buckets; NULLs and out-of-range values are dropped.
	AggHist
)

// String names the aggregate kind.
func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggStats:
		return "stats"
	case AggHist:
		return "hist"
	}
	return "?"
}

// Query is one analytics request: conjunctive filters (minidb predicate
// semantics, NULL included), then an aggregate over one column, optionally
// grouped. This is the catalog-wide scan shape — flare-rate histograms,
// per-detector energy spectra, "all events overlapping [t1,t2)" — that the
// OLTP row path serves too slowly (§7.2's full scans).
type Query struct {
	Table   string
	Where   []minidb.Pred
	Agg     AggKind
	Col     string // aggregate input column (AggStats, AggHist)
	GroupBy string // optional group column ("" = one global aggregate)
	Bins    int    // AggHist bucket count
	Lo, Hi  float64
}

// Group is one group-by bucket: Key renders the group value the way
// minidb.Value.String does (NULL groups under "NULL").
type Group struct {
	Key     string
	Rows    int64
	Sum     float64
	NonNull int64
}

// ExecStats describes how a query ran, for the /stats page and the bench.
type ExecStats struct {
	Segments       int   // segments considered
	SegmentsPruned int   // skipped entirely by zone maps
	SegRows        int64 // rows served from columnar vectors
	TailRows       int64 // rows served row-at-a-time (un-segmented tail)
	Vectorized     bool  // false when the whole query fell back to rows
}

// Result is an analytics answer. Sum/Min/Max are meaningful when
// NonNull > 0; Groups are sorted by Key.
type Result struct {
	Rows    int64 // rows passing the filters
	NonNull int64 // non-NULL aggregate inputs among them
	Sum     float64
	Min     float64
	Max     float64
	Bins    []int64
	Groups  []Group
	Stats   ExecStats
}

// validate checks q's shape before execution.
func (q *Query) validate() error {
	switch q.Agg {
	case AggCount:
	case AggStats:
		if q.Col == "" {
			return fmt.Errorf("colseg: stats aggregate needs a column")
		}
	case AggHist:
		if q.Col == "" || q.Bins <= 0 || !(q.Lo < q.Hi) {
			return fmt.Errorf("colseg: histogram needs a column, bins > 0 and lo < hi")
		}
		if q.GroupBy != "" {
			return fmt.Errorf("colseg: histogram does not support group-by")
		}
	default:
		return fmt.Errorf("colseg: unknown aggregate %d", q.Agg)
	}
	return nil
}

// binOf maps v into one of n equal-width buckets over [lo, hi), -1 when out
// of range. Both execution engines share this helper so histograms are
// bit-identical.
func binOf(v, lo, hi float64, n int) int {
	if !(v >= lo) || !(v < hi) {
		return -1
	}
	b := int((v - lo) / (hi - lo) * float64(n))
	if b >= n {
		b = n - 1 // rounding at the top edge
	}
	return b
}

// accum is the single accumulator both engines feed, strictly in rowid
// order. Keeping one accumulator across segments and the row tail — rather
// than per-segment partials merged later — is what makes the vectorized
// result bit-identical to the row engine: float addition is not
// associative, so the addition order must be the same, not just the set of
// addends.
type accum struct {
	q        *Query
	rows     int64
	nonNull  int64
	sum      float64
	min, max float64
	bins     []int64
	groups   map[string]*Group
	intG     map[int64]*Group // fast path for int-typed group columns
}

func newAccum(q *Query) *accum {
	a := &accum{q: q}
	if q.Agg == AggHist {
		a.bins = make([]int64, q.Bins)
	}
	if q.GroupBy != "" {
		a.groups = make(map[string]*Group)
		a.intG = make(map[int64]*Group)
	}
	return a
}

// addStat folds one non-NULL aggregate input. The body is the shared
// accumulation kernel: `sum += v` then min/max via `<`/`>` only.
func (a *accum) addStat(v float64) {
	if a.nonNull == 0 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	a.nonNull++
	a.sum += v
}

func (a *accum) addHist(v float64) {
	if b := binOf(v, a.q.Lo, a.q.Hi, a.q.Bins); b >= 0 {
		a.bins[b]++
	}
}

// groupFor returns the bucket for a group-column value. Int values bucket
// by payload (rendered at finish); everything else by its diagnostic
// rendering, which keeps strings (quoted) disjoint from NULL.
func (a *accum) groupFor(v minidb.Value) *Group {
	if v.T == minidb.IntType {
		return a.intGroup(v.I)
	}
	return a.strGroup(v.String())
}

func (a *accum) intGroup(k int64) *Group {
	g := a.intG[k]
	if g == nil {
		g = &Group{Key: minidb.I(k).String()}
		a.intG[k] = g
	}
	return g
}

func (a *accum) strGroup(key string) *Group {
	g := a.groups[key]
	if g == nil {
		g = &Group{Key: key}
		a.groups[key] = g
	}
	return g
}

// finish freezes the accumulator into a Result.
func (a *accum) finish() *Result {
	res := &Result{
		Rows: a.rows, NonNull: a.nonNull,
		Sum: a.sum, Min: a.min, Max: a.max, Bins: a.bins,
	}
	if a.q.GroupBy != "" {
		res.Groups = make([]Group, 0, len(a.groups)+len(a.intG))
		for _, g := range a.groups {
			res.Groups = append(res.Groups, *g)
		}
		for _, g := range a.intG {
			res.Groups = append(res.Groups, *g)
		}
		sort.Slice(res.Groups, func(i, j int) bool { return res.Groups[i].Key < res.Groups[j].Key })
	}
	return res
}

// runSegment feeds one segment through the vectorized chain: zone-map
// prune, then batches of batchSize positions filtered through a selection
// vector and aggregated. Returns pruned=true when zone maps excluded the
// whole segment. sel is the caller's reusable selection buffer.
func runSegment(seg *Segment, q *Query, a *accum, sel []int32) (pruned bool, _ []int32, err error) {
	fcols := make([]*colVec, len(q.Where))
	for i, p := range q.Where {
		c, err := seg.column(p.Col)
		if err != nil {
			return false, sel, err
		}
		if !c.mayMatch(p) {
			return true, sel, nil
		}
		fcols[i] = c
	}
	var aggCol, grpCol *colVec
	if q.Agg != AggCount {
		if aggCol, err = seg.column(q.Col); err != nil {
			return false, sel, err
		}
	}
	if q.GroupBy != "" {
		if grpCol, err = seg.column(q.GroupBy); err != nil {
			return false, sel, err
		}
	}
	var remap []*Group // dict code -> group bucket, built once per segment
	if grpCol != nil && grpCol.codes != nil {
		remap = make([]*Group, len(grpCol.dict))
	}

	for base := 0; base < seg.NRows; base += batchSize {
		end := base + batchSize
		if end > seg.NRows {
			end = seg.NRows
		}
		sel = sel[:0]
		if len(q.Where) == 0 {
			for i := base; i < end; i++ {
				sel = append(sel, int32(i))
			}
		} else {
			sel = fcols[0].filterRange(q.Where[0], base, end, sel)
			for i := 1; i < len(q.Where); i++ {
				sel = fcols[i].filterSel(q.Where[i], sel)
			}
		}
		if len(sel) == 0 {
			continue
		}
		a.rows += int64(len(sel))
		if grpCol != nil {
			aggGrouped(a, q, aggCol, grpCol, remap, sel)
			continue
		}
		switch q.Agg {
		case AggStats:
			aggStatsBatch(a, aggCol, sel)
		case AggHist:
			aggHistBatch(a, aggCol, sel)
		}
	}
	return false, sel, nil
}

// aggInput returns the aggregate input for stored position i, mirroring
// Value.Float(): ints widen, floats pass through, everything else is 0.
func (c *colVec) aggInput(i int32) float64 {
	switch {
	case c.floats != nil:
		return c.floats[i]
	case c.ints != nil && c.typ == minidb.IntType:
		return float64(c.ints[i])
	}
	return 0
}

func aggStatsBatch(a *accum, c *colVec, sel []int32) {
	switch {
	case c.nulls != nil:
		for _, i := range sel {
			if !c.isNull(int(i)) {
				a.addStat(c.aggInput(i))
			}
		}
	case c.floats != nil:
		for _, i := range sel {
			a.addStat(c.floats[i])
		}
	case c.ints != nil && c.typ == minidb.IntType:
		for _, i := range sel {
			a.addStat(float64(c.ints[i]))
		}
	default:
		for range sel {
			a.addStat(0)
		}
	}
}

func aggHistBatch(a *accum, c *colVec, sel []int32) {
	switch {
	case c.nulls != nil:
		for _, i := range sel {
			if !c.isNull(int(i)) {
				a.addHist(c.aggInput(i))
			}
		}
	case c.floats != nil:
		for _, i := range sel {
			a.addHist(c.floats[i])
		}
	default:
		for _, i := range sel {
			a.addHist(c.aggInput(i))
		}
	}
}

// aggGrouped folds one selected batch into per-group buckets. The dict
// remap gives string group columns an O(1) code → bucket hop; other types
// go through the shared groupFor keying.
func aggGrouped(a *accum, q *Query, aggCol, grpCol *colVec, remap []*Group, sel []int32) {
	for _, i := range sel {
		var g *Group
		switch {
		case grpCol.isNull(int(i)):
			g = a.strGroup("NULL")
		case remap != nil:
			code := grpCol.codes[i]
			g = remap[code]
			if g == nil {
				g = a.groupFor(groupValue(grpCol, i))
				remap[code] = g
			}
		case grpCol.ints != nil && grpCol.typ == minidb.IntType:
			g = a.intGroup(grpCol.ints[i])
		default:
			g = a.groupFor(groupValue(grpCol, i))
		}
		g.Rows++
		if q.Agg == AggStats && !aggCol.isNull(int(i)) {
			g.NonNull++
			g.Sum += aggCol.aggInput(i)
		}
	}
}

// groupValue reconstructs the minidb value at stored position i (non-NULL).
func groupValue(c *colVec, i int32) minidb.Value {
	switch {
	case c.floats != nil:
		return minidb.F(c.floats[i])
	case c.codes != nil:
		s := c.dict[c.codes[i]]
		if c.typ == minidb.BytesType {
			return minidb.Bs([]byte(s))
		}
		return minidb.S(s)
	}
	return minidb.Value{T: c.typ, I: c.ints[i]}
}

// cellValue reconstructs the full minidb value at stored position i,
// NULL included — the exact-but-slow path for filter type combinations
// the specialized kernels don't cover.
func (c *colVec) cellValue(i int) minidb.Value {
	if c.isNull(i) {
		return minidb.Null()
	}
	return groupValue(c, int32(i))
}

// predBounds frames a comparison predicate as two float bounds plus three
// keep-region booleans (below lo / above hi / within), which lets one loop
// serve every operator. The framing uses only `<` and `>`, mirroring
// minidb.Compare (incomparable values — NaN — compare equal).
func predBounds(p minidb.Pred) (lo, hi float64, kLt, kGt, kMid bool) {
	lo = p.Val.Float()
	hi = lo
	switch p.Op {
	case minidb.OpEq:
		kMid = true
	case minidb.OpNe:
		kLt, kGt = true, true
	case minidb.OpLt:
		kLt = true
	case minidb.OpLe:
		kLt, kMid = true, true
	case minidb.OpGt:
		kGt = true
	case minidb.OpGe:
		kGt, kMid = true, true
	case minidb.OpBetween:
		hi = p.Hi.Float()
		kMid = true
	}
	return
}

// fastPath reports whether the specialized numeric kernel is exact for
// (column, predicate): numeric column, numeric operand(s), comparison op.
func (c *colVec) fastPath(p minidb.Pred) bool {
	if !c.numeric() || p.Op == minidb.OpPrefix {
		return false
	}
	if !numericVal(p.Val) {
		return false
	}
	if p.Op == minidb.OpBetween && !numericVal(p.Hi) {
		return false
	}
	return true
}

// filterRange appends to sel the positions in [base, end) matching p.
func (c *colVec) filterRange(p minidb.Pred, base, end int, sel []int32) []int32 {
	nullMatch := p.Match(minidb.Null())
	switch {
	case c.fastPath(p):
		lo, hi, kLt, kGt, kMid := predBounds(p)
		if c.floats != nil {
			for i := base; i < end; i++ {
				if c.nulls != nil && c.isNull(i) {
					if nullMatch {
						sel = append(sel, int32(i))
					}
					continue
				}
				v := c.floats[i]
				lt, gt := v < lo, v > hi
				if (lt && kLt) || (gt && kGt) || (!lt && !gt && kMid) {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for i := base; i < end; i++ {
				if c.nulls != nil && c.isNull(i) {
					if nullMatch {
						sel = append(sel, int32(i))
					}
					continue
				}
				v := float64(c.ints[i])
				lt, gt := v < lo, v > hi
				if (lt && kLt) || (gt && kGt) || (!lt && !gt && kMid) {
					sel = append(sel, int32(i))
				}
			}
		}
	case c.codes != nil:
		match := c.dictMask(p)
		for i := base; i < end; i++ {
			if c.nulls != nil && c.isNull(i) {
				if nullMatch {
					sel = append(sel, int32(i))
				}
				continue
			}
			if match[c.codes[i]] {
				sel = append(sel, int32(i))
			}
		}
	default:
		for i := base; i < end; i++ {
			if p.Match(c.cellValue(i)) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel
}

// filterSel compacts sel in place to the positions matching p.
func (c *colVec) filterSel(p minidb.Pred, sel []int32) []int32 {
	nullMatch := p.Match(minidb.Null())
	out := sel[:0]
	switch {
	case c.fastPath(p):
		lo, hi, kLt, kGt, kMid := predBounds(p)
		if c.floats != nil {
			for _, i := range sel {
				if c.nulls != nil && c.isNull(int(i)) {
					if nullMatch {
						out = append(out, i)
					}
					continue
				}
				v := c.floats[i]
				lt, gt := v < lo, v > hi
				if (lt && kLt) || (gt && kGt) || (!lt && !gt && kMid) {
					out = append(out, i)
				}
			}
		} else {
			for _, i := range sel {
				if c.nulls != nil && c.isNull(int(i)) {
					if nullMatch {
						out = append(out, i)
					}
					continue
				}
				v := float64(c.ints[i])
				lt, gt := v < lo, v > hi
				if (lt && kLt) || (gt && kGt) || (!lt && !gt && kMid) {
					out = append(out, i)
				}
			}
		}
	case c.codes != nil:
		match := c.dictMask(p)
		for _, i := range sel {
			if c.nulls != nil && c.isNull(int(i)) {
				if nullMatch {
					out = append(out, i)
				}
				continue
			}
			if match[c.codes[i]] {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if p.Match(c.cellValue(int(i))) {
				out = append(out, i)
			}
		}
	}
	return out
}

// dictMask evaluates p once per distinct dictionary entry — the whole
// point of dictionary encoding: a predicate over millions of rows costs
// one Match per distinct string, then one table lookup per row.
func (c *colVec) dictMask(p minidb.Pred) []bool {
	match := make([]bool, len(c.dict))
	for code, s := range c.dict {
		v := minidb.S(s)
		if c.typ == minidb.BytesType {
			v = minidb.Bs([]byte(s))
		}
		match[code] = p.Match(v)
	}
	return match
}

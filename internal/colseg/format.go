package colseg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/minidb"
)

// On-disk segment format, written through the minidb.VFS seam so the fault
// harness can crash any single I/O:
//
//	"CSG1"                                magic
//	uvarint version (1)
//	string  table
//	uvarint startRow, endRow, rewrites, epoch, nrows, ncols
//	per column:
//	  string name · byte type · byte encoding
//	  uvarint null-bitmap words · 8 bytes LE each
//	  byte zone flags (1 valid, 2 hasNull) · 8 bytes minF · 8 bytes maxF
//	  string minS · string maxS
//	  payload (encoding-specific, nrows values)
//	uint32 LE CRC-32 (IEEE) of everything above
//
// Payloads: encRaw is 8-byte LE float bits per value; encDelta is a varint
// first value then varint deltas; encDoD adds a second level of deltas for
// monotone sequences (event ids, timestamps — near-constant steps shrink
// to one byte); encDict is a uvarint dictionary length, the dictionary
// strings, then one uvarint code per value.
//
// A file that fails any check — magic, structure, bounds, CRC — decodes to
// an error and the store discards and rebuilds it; a torn write is never
// served.

var segMagic = []byte("CSG1")

const (
	segVersion = 1
	// Decode-side sanity bounds: a corrupt header must not drive
	// allocations, only errors.
	maxSegRows = 1 << 26
	maxSegCols = 1 << 12
)

// encodeSegment renders seg to its file bytes.
func encodeSegment(seg *Segment) []byte {
	var b bytes.Buffer
	b.Write(segMagic)
	minidb.WirePutUvarint(&b, segVersion)
	minidb.WirePutString(&b, seg.Table)
	minidb.WirePutUvarint(&b, uint64(seg.StartRow))
	minidb.WirePutUvarint(&b, uint64(seg.EndRow))
	minidb.WirePutUvarint(&b, seg.Rewrites)
	minidb.WirePutUvarint(&b, seg.Epoch)
	minidb.WirePutUvarint(&b, uint64(seg.NRows))
	minidb.WirePutUvarint(&b, uint64(len(seg.cols)))
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		b.Write(scratch[:])
	}
	for i := range seg.cols {
		c := &seg.cols[i]
		minidb.WirePutString(&b, c.name)
		b.WriteByte(byte(c.typ))
		b.WriteByte(c.enc)
		minidb.WirePutUvarint(&b, uint64(len(c.nulls)))
		for _, w := range c.nulls {
			put64(w)
		}
		var flags byte
		if c.zone.Valid {
			flags |= 1
		}
		if c.zone.HasNull {
			flags |= 2
		}
		b.WriteByte(flags)
		put64(math.Float64bits(c.zone.MinF))
		put64(math.Float64bits(c.zone.MaxF))
		minidb.WirePutString(&b, c.zone.MinS)
		minidb.WirePutString(&b, c.zone.MaxS)
		switch c.enc {
		case encRaw:
			for _, f := range c.floats {
				put64(math.Float64bits(f))
			}
		case encDelta:
			prev := int64(0)
			for j, v := range c.ints {
				if j == 0 {
					minidb.WirePutVarint(&b, v)
				} else {
					minidb.WirePutVarint(&b, v-prev)
				}
				prev = v
			}
		case encDoD:
			var prev, prevDelta int64
			for j, v := range c.ints {
				switch j {
				case 0:
					minidb.WirePutVarint(&b, v)
				case 1:
					prevDelta = v - prev
					minidb.WirePutVarint(&b, prevDelta)
				default:
					d := v - prev
					minidb.WirePutVarint(&b, d-prevDelta)
					prevDelta = d
				}
				prev = v
			}
		case encDict:
			minidb.WirePutUvarint(&b, uint64(len(c.dict)))
			for _, s := range c.dict {
				minidb.WirePutString(&b, s)
			}
			for _, code := range c.codes {
				minidb.WirePutUvarint(&b, uint64(code))
			}
		}
	}
	crc := crc32.ChecksumIEEE(b.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	b.Write(scratch[:4])
	return b.Bytes()
}

// decodeSegment parses file bytes back into a segment, verifying structure
// and checksum. Any deviation is an error, never a partial segment.
func decodeSegment(data []byte) (*Segment, error) {
	if len(data) < len(segMagic)+4 {
		return nil, fmt.Errorf("colseg: segment file too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(segMagic)], segMagic) {
		return nil, fmt.Errorf("colseg: bad segment magic")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("colseg: segment checksum mismatch")
	}
	r := bytes.NewReader(body[len(segMagic):])
	version, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if version != segVersion {
		return nil, fmt.Errorf("colseg: segment version %d unsupported", version)
	}
	seg := &Segment{}
	if seg.Table, err = minidb.WireString(r); err != nil {
		return nil, err
	}
	hdr := make([]uint64, 6)
	for i := range hdr {
		if hdr[i], err = binary.ReadUvarint(r); err != nil {
			return nil, err
		}
	}
	nrows, ncols := hdr[4], hdr[5]
	if nrows > maxSegRows || ncols > maxSegCols {
		return nil, fmt.Errorf("colseg: segment dimensions %d×%d out of range", nrows, ncols)
	}
	seg.StartRow, seg.EndRow = int64(hdr[0]), int64(hdr[1])
	seg.Rewrites, seg.Epoch = hdr[2], hdr[3]
	seg.NRows = int(nrows)
	if seg.StartRow < 0 || seg.EndRow < seg.StartRow || int64(seg.NRows) > seg.EndRow-seg.StartRow {
		return nil, fmt.Errorf("colseg: segment row range [%d,%d) inconsistent with %d rows",
			seg.StartRow, seg.EndRow, seg.NRows)
	}
	seg.cols = make([]colVec, ncols)
	seg.colIdx = make(map[string]int, ncols)
	get64 := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, fmt.Errorf("colseg: truncated fixed64")
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	n := seg.NRows
	for i := range seg.cols {
		c := &seg.cols[i]
		if c.name, err = minidb.WireString(r); err != nil {
			return nil, err
		}
		if _, dup := seg.colIdx[c.name]; dup {
			return nil, fmt.Errorf("colseg: duplicate column %s", c.name)
		}
		seg.colIdx[c.name] = i
		typ, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		c.typ = minidb.Type(typ)
		if c.enc, err = r.ReadByte(); err != nil {
			return nil, err
		}
		nwords, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		switch nwords {
		case 0:
		case uint64((n + 63) / 64):
			if uint64(r.Len()) < nwords*8 {
				return nil, fmt.Errorf("colseg: truncated null bitmap for %s", c.name)
			}
			c.nulls = make([]uint64, nwords)
			for j := range c.nulls {
				if c.nulls[j], err = get64(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("colseg: null bitmap has %d words for %d rows", nwords, n)
		}
		flags, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		c.zone.Valid, c.zone.HasNull = flags&1 != 0, flags&2 != 0
		minBits, err := get64()
		if err != nil {
			return nil, err
		}
		maxBits, err := get64()
		if err != nil {
			return nil, err
		}
		c.zone.MinF, c.zone.MaxF = math.Float64frombits(minBits), math.Float64frombits(maxBits)
		if c.zone.MinS, err = minidb.WireString(r); err != nil {
			return nil, err
		}
		if c.zone.MaxS, err = minidb.WireString(r); err != nil {
			return nil, err
		}
		switch c.enc {
		case encRaw:
			if c.typ != minidb.FloatType {
				return nil, fmt.Errorf("colseg: raw encoding on %s column %s", c.typ, c.name)
			}
			if r.Len() < 8*n {
				return nil, fmt.Errorf("colseg: truncated float payload for %s", c.name)
			}
			c.floats = make([]float64, n)
			for j := range c.floats {
				bits, err := get64()
				if err != nil {
					return nil, err
				}
				c.floats[j] = math.Float64frombits(bits)
			}
		case encDelta, encDoD:
			switch c.typ {
			case minidb.IntType, minidb.BoolType, minidb.TimeType:
			default:
				return nil, fmt.Errorf("colseg: delta encoding on %s column %s", c.typ, c.name)
			}
			if r.Len() < n { // every varint is at least one byte
				return nil, fmt.Errorf("colseg: truncated int payload for %s", c.name)
			}
			c.ints = make([]int64, n)
			var prev, prevDelta int64
			for j := range c.ints {
				raw, err := binary.ReadVarint(r)
				if err != nil {
					return nil, err
				}
				switch {
				case j == 0:
					c.ints[j] = raw
				case c.enc == encDelta:
					c.ints[j] = prev + raw
				case j == 1:
					prevDelta = raw
					c.ints[j] = prev + raw
				default:
					prevDelta += raw
					c.ints[j] = prev + prevDelta
				}
				prev = c.ints[j]
			}
		case encDict:
			switch c.typ {
			case minidb.StringType, minidb.BytesType:
			default:
				return nil, fmt.Errorf("colseg: dict encoding on %s column %s", c.typ, c.name)
			}
			dictLen, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if dictLen > uint64(n) || dictLen > uint64(r.Len()) {
				return nil, fmt.Errorf("colseg: dictionary of %d entries for %d rows", dictLen, n)
			}
			c.dict = make([]string, dictLen)
			for j := range c.dict {
				if c.dict[j], err = minidb.WireString(r); err != nil {
					return nil, err
				}
			}
			if r.Len() < n { // every code is at least one byte
				return nil, fmt.Errorf("colseg: truncated code payload for %s", c.name)
			}
			c.codes = make([]uint32, n)
			for j := range c.codes {
				code, err := binary.ReadUvarint(r)
				if err != nil {
					return nil, err
				}
				// NULL rows carry placeholder code 0; every non-NULL row
				// must address a real dictionary entry.
				if code >= dictLen && !c.isNull(j) {
					return nil, fmt.Errorf("colseg: code %d out of dictionary range %d", code, dictLen)
				}
				c.codes[j] = uint32(code)
			}
		default:
			return nil, fmt.Errorf("colseg: unknown encoding %d", c.enc)
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("colseg: %d trailing bytes after segment", r.Len())
	}
	return seg, nil
}

// Manifest format ("CMF1"): the authoritative list of a table's segment
// files. The VFS has no directory listing, so the manifest is how a
// reopened store finds its segments; it is CRC'd and replaced atomically
// (tmp + rename) after the segment files it names are durable, which
// ordains crash safety: a crash before the rename leaves the old manifest
// naming old (intact) files.

var manMagic = []byte("CMF1")

type manifest struct {
	Table    string
	Rewrites uint64
	Covered  int64 // heap positions [0, Covered) are segmented
	Files    []string
}

func encodeManifest(m *manifest) []byte {
	var b bytes.Buffer
	b.Write(manMagic)
	minidb.WirePutUvarint(&b, segVersion)
	minidb.WirePutString(&b, m.Table)
	minidb.WirePutUvarint(&b, m.Rewrites)
	minidb.WirePutUvarint(&b, uint64(m.Covered))
	minidb.WirePutUvarint(&b, uint64(len(m.Files)))
	for _, f := range m.Files {
		minidb.WirePutString(&b, f)
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(b.Bytes()))
	b.Write(crcb[:])
	return b.Bytes()
}

func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < len(manMagic)+4 || !bytes.Equal(data[:len(manMagic)], manMagic) {
		return nil, fmt.Errorf("colseg: bad manifest")
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("colseg: manifest checksum mismatch")
	}
	r := bytes.NewReader(body[len(manMagic):])
	version, err := binary.ReadUvarint(r)
	if err != nil || version != segVersion {
		return nil, fmt.Errorf("colseg: manifest version unsupported")
	}
	m := &manifest{}
	if m.Table, err = minidb.WireString(r); err != nil {
		return nil, err
	}
	if m.Rewrites, err = binary.ReadUvarint(r); err != nil {
		return nil, err
	}
	covered, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	m.Covered = int64(covered)
	nf, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if nf > uint64(r.Len()) {
		return nil, fmt.Errorf("colseg: manifest file count %d exceeds payload", nf)
	}
	m.Files = make([]string, nf)
	for i := range m.Files {
		if m.Files[i], err = minidb.WireString(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}

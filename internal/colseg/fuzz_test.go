package colseg

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/minidb"
)

// corpusSeeds builds the deterministic seed inputs for FuzzDecodeSegment:
// well-formed segments over the test schema (every encoding: raw floats,
// deltas, delta-of-delta, dictionaries, null bitmaps) plus truncated and
// bit-flipped variants, so the fuzzer starts at the format instead of
// having to discover the magic bytes.
func corpusSeeds() [][]byte {
	db, err := minidb.Open("", eventsSchema())
	if err != nil {
		panic(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(42))
	b := &minidb.Batch{}
	for i := 0; i < 96; i++ {
		energy := minidb.F(3 + 300*rng.Float64())
		if i%7 == 0 {
			energy = minidb.Null()
		}
		b.Insert("ev", minidb.Row{
			minidb.I(int64(i)), minidb.S(fmt.Sprintf("u%03d", i%5)),
			minidb.F(float64(i) / 3), energy, minidb.I(int64(i % 4)), minidb.Bo(i%2 == 0),
		})
	}
	if _, err := db.Apply(b); err != nil {
		panic(err)
	}
	snap, err := db.TableSnap("ev")
	if err != nil {
		panic(err)
	}
	var seeds [][]byte
	for _, span := range [][2]int64{{0, 96}, {0, 1}, {32, 64}} {
		seg, err := BuildSegment(snap, span[0], span[1])
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, encodeSegment(seg))
	}
	whole := seeds[0]
	seeds = append(seeds, whole[:len(whole)/2]) // truncated mid-column
	flipped := append([]byte(nil), whole...)
	flipped[len(flipped)/3] ^= 0x20 // CRC must catch this
	seeds = append(seeds, flipped)
	seeds = append(seeds, []byte("CSG1"), []byte("CSG1\x01\x02ev"))
	return seeds
}

// TestGenerateFuzzCorpus materializes the seeds as checked-in corpus files
// (go test fuzz v1 format). Existing files are left alone, so the corpus
// is stable once committed and self-heals if a file goes missing.
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeSegment")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range corpusSeeds() {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecodeSegment feeds arbitrary bytes to the segment decoder — the
// exact content a torn write, a bit flip, or a hostile file could put in a
// segment directory. The invariant is not "decodes": it is "never panics,
// never over-allocates off a lying header, and anything that does decode
// re-encodes to a stable fixed point and executes queries without fault".
func FuzzDecodeSegment(f *testing.F) {
	for _, seed := range corpusSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := decodeSegment(data)
		if err != nil {
			return
		}
		re := encodeSegment(seg)
		seg2, err := decodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoding of accepted segment rejected: %v", err)
		}
		if len(encodeSegment(seg2)) != len(re) {
			t.Fatal("re-encoding is not a fixed point")
		}
		// Every accepted segment must execute the full operator chain
		// without panicking, whatever its zone maps and vectors claim.
		queries := []Query{{Table: seg.Table, Agg: AggCount}}
		for name := range seg.colIdx {
			queries = append(queries,
				Query{Table: seg.Table, Agg: AggStats, Col: name},
				Query{Table: seg.Table, Agg: AggStats, Col: name, GroupBy: name},
				Query{Table: seg.Table, Agg: AggCount, Where: []minidb.Pred{
					{Col: name, Op: minidb.OpLe, Val: minidb.F(1)}}},
				Query{Table: seg.Table, Agg: AggCount, Where: []minidb.Pred{
					{Col: name, Op: minidb.OpPrefix, Val: minidb.S("u")}}},
			)
		}
		for _, q := range queries {
			a := newAccum(&q)
			if _, _, err := runSegment(seg, &q, a, nil); err != nil {
				continue
			}
			a.finish()
		}
	})
}

package colseg

import (
	"fmt"

	"repro/internal/minidb"
)

// rowFold is the row-at-a-time kernel both non-vectorized paths share: the
// un-segmented tail of a partially-covered table and the full fallback when
// no segments exist. It applies the same minidb.Pred.Match semantics the
// OLTP engine uses and feeds the same accumulator the vectorized path
// feeds, in the same rowid order — which is what makes the two engines
// bit-identical rather than merely approximately equal.
type rowFold struct {
	q    *Query
	a    *accum
	fidx []int // filter column positions
	aidx int   // aggregate input position (-1 when unused)
	gidx int   // group column position (-1 when ungrouped)
}

func newRowFold(q *Query, a *accum, schema *minidb.Schema) (*rowFold, error) {
	f := &rowFold{q: q, a: a, aidx: -1, gidx: -1}
	col := func(name string) (int, error) {
		if i := schema.ColIndex(name); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("colseg: table %s has no column %s", schema.Name, name)
	}
	var err error
	f.fidx = make([]int, len(q.Where))
	for i, p := range q.Where {
		if f.fidx[i], err = col(p.Col); err != nil {
			return nil, err
		}
	}
	if q.Agg != AggCount {
		if f.aidx, err = col(q.Col); err != nil {
			return nil, err
		}
	}
	if q.GroupBy != "" {
		if f.gidx, err = col(q.GroupBy); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// row folds one live row into the accumulator.
func (f *rowFold) row(r minidb.Row) {
	for i, p := range f.q.Where {
		if !p.Match(r[f.fidx[i]]) {
			return
		}
	}
	f.a.rows++
	if f.gidx >= 0 {
		g := f.a.groupFor(r[f.gidx])
		g.Rows++
		if f.q.Agg == AggStats {
			if v := r[f.aidx]; !v.IsNull() {
				g.NonNull++
				g.Sum += v.Float()
			}
		}
		return
	}
	switch f.q.Agg {
	case AggStats:
		if v := r[f.aidx]; !v.IsNull() {
			f.a.addStat(v.Float())
		}
	case AggHist:
		if v := r[f.aidx]; !v.IsNull() {
			f.a.addHist(v.Float())
		}
	}
}

// RunRows executes q entirely row-at-a-time against any engine, local or
// remote: one full-table scan (rowid order — minidb full scans without
// ORDER BY visit the heap in rowid order) folded through the shared
// accumulator. This is the OLTP baseline the bench compares against and
// the DM's fallback when no columnar store is wired in.
func RunRows(eng minidb.Engine, q Query) (*Result, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	schema := eng.Schema(q.Table)
	if schema == nil {
		return nil, fmt.Errorf("colseg: no such table %s", q.Table)
	}
	a := newAccum(&q)
	f, err := newRowFold(&q, a, schema)
	if err != nil {
		return nil, err
	}
	// Filters run through f.row, not the engine's planner: an index-driven
	// plan would visit rows in index order and break the bit-identical
	// accumulation-order contract.
	res, err := eng.Query(minidb.Query{Table: q.Table})
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		f.row(r)
	}
	out := a.finish()
	out.Stats.TailRows = int64(len(res.Rows))
	return out, nil
}

// runRowsSnap folds heap positions [from, to) of a snapshot, row-at-a-time.
func runRowsSnap(snap *minidb.TableSnap, from, to int64, f *rowFold) int64 {
	var n int64
	snap.Scan(from, to, func(_ int64, r minidb.Row) bool {
		n++
		f.row(r)
		return true
	})
	return n
}

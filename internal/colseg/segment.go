// Package colseg is the read-optimized half of the storage engine: immutable
// columnar segments materialized from committed minidb snapshots, plus a
// vectorized operator chain (scan → filter → aggregate over ~4k-value
// batches with selection vectors) for catalog-wide analytics. It is the
// second representation ROADMAP item 2 calls for — the same move the SDSS
// Science Archive made when it migrated its catalog to a scan-friendly
// layout — while the OLTP heap/B-tree side keeps serving point queries.
//
// Correctness contract: a segment covers heap positions [StartRow, EndRow)
// of one table and is labeled with the snapshot's rewrite counter. minidb
// rowids are heap positions, inserts only append and deletes/updates bump
// the counter, so the segment is exactly the table's prefix for as long as
// the counter is unchanged and the heap has only grown. Queries validate
// that against the snapshot they run on, serve the un-covered tail
// row-at-a-time from the same snapshot, and produce bit-identical results
// to the row engine (shared accumulation order and helpers).
package colseg

import (
	"fmt"
	"strings"

	"repro/internal/minidb"
)

// Segment is one immutable columnar chunk of a table: heap positions
// [StartRow, EndRow) of the snapshot it was built from, tombstones
// compacted away, each column stored as a typed vector with a zone map.
type Segment struct {
	Table    string
	StartRow int64  // first heap position covered (inclusive)
	EndRow   int64  // last heap position covered (exclusive)
	Rewrites uint64 // table rewrite counter at build time (validity label)
	Epoch    uint64 // table commit epoch at build time (diagnostics only)
	NRows    int    // live rows stored (EndRow-StartRow minus tombstones)

	cols   []colVec
	colIdx map[string]int
}

// colVec is one column of a segment. Exactly one of the payload slices is
// non-nil, chosen by the schema type: ints holds Int/Bool/Time payloads,
// floats holds Float payloads, codes+dict hold String/Bytes values
// dictionary-encoded (first-appearance order).
type colVec struct {
	name string
	typ  minidb.Type
	enc  byte // on-disk encoding (encRaw/encDelta/encDoD/encDict)

	ints   []int64
	floats []float64
	codes  []uint32
	dict   []string

	nulls []uint64 // bitmap, one bit per stored row; nil when no NULLs
	zone  ZoneMap
}

// ZoneMap is the per-column min/max summary used to prune segments before
// touching their vectors. Numeric columns (int/float) summarize as float64
// — the same domain minidb.Compare uses for numeric comparisons, so pruning
// decisions mirror Pred.Match exactly. String/bytes columns summarize the
// encoded string payloads.
type ZoneMap struct {
	Valid   bool // any non-NULL value present
	HasNull bool
	MinF    float64 // numeric columns, when Valid
	MaxF    float64
	MinS    string // string/bytes columns, when Valid
	MaxS    string
}

const (
	encRaw   byte = 0 // float64 little-endian
	encDelta byte = 1 // varint first value, then varint deltas
	encDoD   byte = 2 // varint first value + first delta, then delta-of-deltas
	encDict  byte = 3 // dictionary strings + uvarint codes
)

func (s *Segment) column(name string) (*colVec, error) {
	i, ok := s.colIdx[name]
	if !ok {
		return nil, fmt.Errorf("colseg: segment of %s has no column %s", s.Table, name)
	}
	return &s.cols[i], nil
}

func (c *colVec) isNull(i int) bool {
	return c.nulls != nil && c.nulls[i>>6]&(1<<(uint(i)&63)) != 0
}

func (c *colVec) setNull(i int) {
	c.nulls[i>>6] |= 1 << (uint(i) & 63)
}

// numeric reports whether the column's zone map lives in the float64 domain.
func (c *colVec) numeric() bool {
	return c.typ == minidb.IntType || c.typ == minidb.FloatType
}

// BuildSegment materializes heap positions [from, to) of the snapshot as a
// columnar segment. It reads only the published immutable view — no table
// or database lock is taken or needed, so commits proceed concurrently and
// simply make the segment's validity label stale for later snapshots.
func BuildSegment(snap *minidb.TableSnap, from, to int64) (*Segment, error) {
	schema := snap.Schema()
	seg := &Segment{
		Table:    schema.Name,
		StartRow: from,
		EndRow:   to,
		Rewrites: snap.Rewrites(),
		Epoch:    snap.Epoch(),
		cols:     make([]colVec, len(schema.Columns)),
		colIdx:   make(map[string]int, len(schema.Columns)),
	}
	n := int(to - from) // upper bound; tombstones shrink it
	dicts := make([]map[string]uint32, len(schema.Columns))
	for i, col := range schema.Columns {
		c := &seg.cols[i]
		c.name, c.typ = col.Name, col.Type
		seg.colIdx[col.Name] = i
		switch col.Type {
		case minidb.FloatType:
			c.floats = make([]float64, 0, n)
		case minidb.StringType, minidb.BytesType:
			c.codes = make([]uint32, 0, n)
			dicts[i] = make(map[string]uint32)
		default: // Int, Bool, Time
			c.ints = make([]int64, 0, n)
		}
	}
	snap.Scan(from, to, func(_ int64, r minidb.Row) bool {
		for i := range seg.cols {
			c := &seg.cols[i]
			v := r[i]
			null := v.IsNull()
			switch {
			case c.floats != nil:
				if null {
					c.floats = append(c.floats, 0)
				} else {
					c.floats = append(c.floats, v.F)
				}
			case c.codes != nil:
				if null {
					c.codes = append(c.codes, 0)
				} else {
					s := v.S
					if v.T == minidb.BytesType {
						s = string(v.B)
					}
					code, ok := dicts[i][s]
					if !ok {
						code = uint32(len(c.dict))
						dicts[i][s] = code
						c.dict = append(c.dict, s)
					}
					c.codes = append(c.codes, code)
				}
			default:
				if null {
					c.ints = append(c.ints, 0)
				} else {
					c.ints = append(c.ints, v.I)
				}
			}
			if null {
				if c.nulls == nil {
					c.nulls = make([]uint64, (n+63)/64)
				}
				c.setNull(seg.NRows)
			}
		}
		seg.NRows++
		return true
	})
	for i := range seg.cols {
		c := &seg.cols[i]
		c.buildZone(seg.NRows)
		c.chooseEncoding()
	}
	return seg, nil
}

// buildZone computes the column's min/max over non-NULL values.
func (c *colVec) buildZone(n int) {
	z := &c.zone
	for i := 0; i < n; i++ {
		if c.isNull(i) {
			z.HasNull = true
			continue
		}
		switch {
		case c.floats != nil:
			v := c.floats[i]
			if !z.Valid || v < z.MinF {
				z.MinF = v
			}
			if !z.Valid || v > z.MaxF {
				z.MaxF = v
			}
		case c.codes != nil:
			s := c.dict[c.codes[i]]
			if !z.Valid || s < z.MinS {
				z.MinS = s
			}
			if !z.Valid || s > z.MaxS {
				z.MaxS = s
			}
		default:
			v := c.ints[i]
			if c.typ == minidb.IntType {
				f := float64(v)
				if !z.Valid || f < z.MinF {
					z.MinF = f
				}
				if !z.Valid || f > z.MaxF {
					z.MaxF = f
				}
			}
		}
		z.Valid = true
	}
}

// chooseEncoding picks the on-disk payload encoding: delta-of-delta for
// monotone non-decreasing int sequences (event ids, timestamps), plain
// zigzag deltas otherwise; floats are raw; strings are dictionary-coded.
func (c *colVec) chooseEncoding() {
	switch {
	case c.floats != nil:
		c.enc = encRaw
	case c.codes != nil:
		c.enc = encDict
	default:
		c.enc = encDelta
		monotone := true
		for i := 1; i < len(c.ints); i++ {
			if c.ints[i] < c.ints[i-1] {
				monotone = false
				break
			}
		}
		if monotone && len(c.ints) > 2 {
			c.enc = encDoD
		}
	}
}

// mayMatch reports whether any stored row of the column could satisfy p.
// It must be conservative: false only when provably no row matches,
// including NULL rows under minidb's NULL-sorts-first comparison rule.
// All numeric bound checks are phrased with < and > only, mirroring
// minidb.Compare's treatment of NaN (incomparable values compare equal).
func (c *colVec) mayMatch(p minidb.Pred) bool {
	nullMatch := p.Match(minidb.Null())
	z := c.zone
	if z.HasNull && nullMatch {
		return true
	}
	if !z.Valid {
		return false // all NULL and NULLs don't match
	}
	if c.numeric() {
		if p.Op == minidb.OpPrefix {
			return false // prefix never matches non-string values
		}
		if p.Op == minidb.OpBetween {
			// Each bound is checked independently: numeric bounds against
			// the zone, cross-type bounds by type tag (uniform for every
			// non-NULL row, payload irrelevant).
			loOK, hiOK := true, true
			if numericVal(p.Val) {
				loOK = !(z.MaxF < p.Val.Float())
			} else {
				loOK = minidb.Compare(probeValue(c.typ), p.Val) >= 0
			}
			if numericVal(p.Hi) {
				hiOK = !(z.MinF > p.Hi.Float())
			} else {
				hiOK = minidb.Compare(probeValue(c.typ), p.Hi) <= 0
			}
			return loOK && hiOK
		}
		if !numericVal(p.Val) {
			// Cross-type comparison decides by type tag alone, uniformly
			// for every non-NULL row; one Match probe settles the segment.
			return p.Match(probeValue(c.typ))
		}
		v := p.Val.Float()
		switch p.Op {
		case minidb.OpEq:
			return !(v < z.MinF) && !(v > z.MaxF)
		case minidb.OpNe:
			return (z.MinF < v) || (z.MaxF > v)
		case minidb.OpLt:
			return z.MinF < v
		case minidb.OpLe:
			return !(z.MinF > v)
		case minidb.OpGt:
			return z.MaxF > v
		case minidb.OpGe:
			return !(z.MaxF < v)
		}
		return true
	}
	if c.codes != nil && p.Val.T == minidb.StringType && c.typ == minidb.StringType {
		v := p.Val.S
		switch p.Op {
		case minidb.OpEq:
			return v >= z.MinS && v <= z.MaxS
		case minidb.OpLt:
			return z.MinS < v
		case minidb.OpLe:
			return z.MinS <= v
		case minidb.OpGt:
			return z.MaxS > v
		case minidb.OpGe:
			return z.MaxS >= v
		case minidb.OpBetween:
			if p.Hi.T != minidb.StringType {
				return true
			}
			return !(z.MaxS < v) && !(z.MinS > p.Hi.S)
		case minidb.OpPrefix:
			if z.MaxS < v {
				return false
			}
			return z.MinS <= v || strings.HasPrefix(z.MinS, v)
		}
	}
	return true
}

// numericVal reports whether v participates in minidb's numeric cross-type
// comparison domain.
func numericVal(v minidb.Value) bool {
	return v.T == minidb.IntType || v.T == minidb.FloatType
}

// probeValue returns a representative non-NULL value of the column type for
// type-tag-only comparisons (the payload is irrelevant in that regime).
func probeValue(t minidb.Type) minidb.Value {
	return minidb.Value{T: t}
}

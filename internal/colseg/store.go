package colseg

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/minidb"
)

// DefaultSegmentRows is the heap positions one segment covers. 64Ki rows
// keeps a segment's widest column vector around half a megabyte — big
// enough to amortize per-segment costs, small enough that zone maps prune
// at useful granularity on time-range predicates.
const DefaultSegmentRows = 64 * 1024

// Runner executes analytics queries. Three implementations exist: *Store
// (vectorized over local segments), dbnet.Client (ships the query to a
// server that runs a Store), and the row fallback the DM wraps around a
// plain engine when neither is available.
type Runner interface {
	RunAnalytics(q Query) (*Result, error)
}

// Options configures a Store.
type Options struct {
	// DB is the database segments are built from.
	DB *minidb.DB
	// Dir is where segment files live; "" keeps segments memory-only.
	Dir string
	// FS is the filesystem seam (defaults to minidb.OSFS). The torture
	// harness injects a fault FS here.
	FS minidb.VFS
	// SegmentRows overrides DefaultSegmentRows (tests use small segments).
	SegmentRows int
	// Tables restricts segment building to the named tables; nil means
	// every table is eligible (built on first Refresh or query).
	Tables []string
}

// Store manages the columnar segments of one database: building them from
// published snapshots, persisting them through the VFS, validating them
// against the snapshot every query runs on, and executing the vectorized
// chain over valid segments plus the row-at-a-time tail.
//
// Builds take no table or database locks — they read published immutable
// views only — so commits run concurrently with a build; the build's output
// simply fails validation on later snapshots if a concurrent update or
// delete landed, and the next Refresh rebuilds.
type Store struct {
	db      *minidb.DB
	fsys    minidb.VFS
	dir     string
	segRows int64
	allow   map[string]bool // nil = all tables

	mu   sync.Mutex // guards tabs map and per-table swap, never held while building
	tabs map[string]*tableSegs

	stats Stats
}

// tableSegs is one table's immutable segment set: all segments share the
// rewrites label and tile heap positions [0, covered).
type tableSegs struct {
	rewrites uint64
	covered  int64
	segs     []*Segment
}

// Stats counts store activity for the /stats page.
type Stats struct {
	Builds       atomic.Int64 // segments materialized
	Rebuilds     atomic.Int64 // table-wide invalidations (rewrites changed)
	Loads        atomic.Int64 // segments decoded from disk at open
	Discarded    atomic.Int64 // persisted segments rejected (torn/stale)
	QueriesVec   atomic.Int64 // queries served (at least partly) vectorized
	QueriesRow   atomic.Int64 // queries served entirely row-at-a-time
	SegsScanned  atomic.Int64
	SegsPruned   atomic.Int64
	RowsVec      atomic.Int64
	RowsTail     atomic.Int64
	SegsResident atomic.Int64 // current segment count across tables
	RowsCovered  atomic.Int64 // current heap positions under segments
}

// StatsSnapshot is a point-in-time copy of the counters.
type StatsSnapshot struct {
	Builds, Rebuilds, Loads, Discarded int64
	QueriesVec, QueriesRow             int64
	SegsScanned, SegsPruned            int64
	RowsVec, RowsTail                  int64
	SegsResident, RowsCovered          int64
}

// Open creates a Store and loads any persisted segments that still match
// the database's current snapshots; stale or corrupt files are discarded
// (and rebuilt on the next Refresh), never served.
func Open(opts Options) (*Store, error) {
	if opts.DB == nil {
		return nil, fmt.Errorf("colseg: Options.DB is required")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = minidb.OSFS
	}
	segRows := int64(opts.SegmentRows)
	if segRows <= 0 {
		segRows = DefaultSegmentRows
	}
	s := &Store{
		db: opts.DB, fsys: fsys, dir: opts.Dir, segRows: segRows,
		tabs: make(map[string]*tableSegs),
	}
	if opts.Tables != nil {
		s.allow = make(map[string]bool, len(opts.Tables))
		for _, t := range opts.Tables {
			s.allow[t] = true
		}
	}
	if s.dir != "" {
		if err := fsys.MkdirAll(s.dir, 0o755); err != nil {
			return nil, err
		}
		for _, table := range opts.DB.TableNames() {
			if !s.eligible(table) {
				continue
			}
			s.loadTable(table)
		}
	}
	return s, nil
}

func (s *Store) eligible(table string) bool {
	return s.allow == nil || s.allow[table]
}

// manifestPath and segPath name a table's on-disk artifacts.
func (s *Store) manifestPath(table string) string {
	return filepath.Join(s.dir, table+".manifest")
}

func (s *Store) segPath(name string) string {
	return filepath.Join(s.dir, name)
}

// loadTable restores one table's segments from its manifest, validating
// every file against the current snapshot. Anything invalid — missing
// manifest, bad CRC, stale rewrites, truncated file — silently degrades to
// "no segments": correctness never depends on what disk says.
func (s *Store) loadTable(table string) {
	data, err := s.fsys.ReadFile(s.manifestPath(table))
	if err != nil {
		return
	}
	m, err := decodeManifest(data)
	if err != nil || m.Table != table {
		s.stats.Discarded.Add(1)
		return
	}
	snap, err := s.db.TableSnap(table)
	if err != nil {
		return
	}
	if m.Rewrites != snap.Rewrites() || m.Covered > snap.HeapLen() {
		s.stats.Discarded.Add(int64(len(m.Files)))
		return
	}
	ts := &tableSegs{rewrites: m.Rewrites}
	for _, name := range m.Files {
		data, err := s.fsys.ReadFile(s.segPath(name))
		if err != nil {
			s.stats.Discarded.Add(1)
			return
		}
		seg, err := decodeSegment(data)
		if err != nil || seg.Table != table || seg.Rewrites != m.Rewrites ||
			seg.StartRow != ts.covered || seg.EndRow > m.Covered {
			s.stats.Discarded.Add(1)
			return
		}
		ts.segs = append(ts.segs, seg)
		ts.covered = seg.EndRow
		s.stats.Loads.Add(1)
	}
	if ts.covered != m.Covered {
		s.stats.Discarded.Add(int64(len(ts.segs)))
		return
	}
	s.mu.Lock()
	s.tabs[table] = ts
	s.mu.Unlock()
	s.stats.SegsResident.Add(int64(len(ts.segs)))
	s.stats.RowsCovered.Add(ts.covered)
}

// Refresh brings table's segment set up to date with the current published
// snapshot: a rewrites change drops everything and rebuilds from row zero;
// otherwise only full new chunks past the covered watermark are built. The
// un-covered tail (less than one chunk) is served row-at-a-time by Run.
func (s *Store) Refresh(table string) error {
	if !s.eligible(table) {
		return fmt.Errorf("colseg: table %s not managed by this store", table)
	}
	snap, err := s.db.TableSnap(table)
	if err != nil {
		return err
	}
	s.mu.Lock()
	cur := s.tabs[table]
	s.mu.Unlock()

	base := &tableSegs{rewrites: snap.Rewrites()}
	var stale []string // files of an invalidated generation, removed after the swap
	if cur != nil && cur.rewrites == snap.Rewrites() && snap.HeapLen() >= cur.covered {
		base = cur
	} else if cur != nil {
		s.stats.Rebuilds.Add(1)
		for _, seg := range cur.segs {
			stale = append(stale, segFileName(seg))
		}
	}

	// Build outside any lock: the snapshot is immutable, so this races
	// with nothing — concurrent commits only affect later snapshots.
	var built []*Segment
	for from := base.covered; from+s.segRows <= snap.HeapLen(); from += s.segRows {
		seg, err := BuildSegment(snap, from, from+s.segRows)
		if err != nil {
			return err
		}
		built = append(built, seg)
		s.stats.Builds.Add(1)
	}
	if len(built) == 0 && base == cur {
		return nil // nothing new and nothing invalidated
	}
	next := &tableSegs{
		rewrites: base.rewrites,
		segs:     append(append([]*Segment(nil), base.segs...), built...),
	}
	if n := len(next.segs); n > 0 {
		next.covered = next.segs[n-1].EndRow
	}
	if err := s.persistTable(table, next); err != nil {
		return err
	}
	s.mu.Lock()
	prev := s.tabs[table]
	s.tabs[table] = next
	s.mu.Unlock()
	var prevSegs, prevCov int64
	if prev != nil {
		prevSegs, prevCov = int64(len(prev.segs)), prev.covered
	}
	s.stats.SegsResident.Add(int64(len(next.segs)) - prevSegs)
	s.stats.RowsCovered.Add(next.covered - prevCov)
	if s.dir != "" {
		s.removeStale(stale)
	}
	return nil
}

// RefreshAll refreshes every eligible table.
func (s *Store) RefreshAll() error {
	var firstErr error
	for _, table := range s.db.TableNames() {
		if !s.eligible(table) {
			continue
		}
		if err := s.Refresh(table); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// persistTable writes new segment files and atomically replaces the
// manifest. Segment files are synced before the manifest names them, and
// the manifest lands via tmp + sync + rename — a crash anywhere leaves
// either the old manifest (naming old, intact files) or the new one
// (naming new, synced files), never a manifest pointing at torn data.
func (s *Store) persistTable(table string, ts *tableSegs) error {
	if s.dir == "" {
		return nil
	}
	m := &manifest{Table: table, Rewrites: ts.rewrites, Covered: ts.covered}
	for _, seg := range ts.segs {
		name := segFileName(seg)
		m.Files = append(m.Files, name)
		if err := s.writeFile(s.segPath(name), encodeSegment(seg)); err != nil {
			return err
		}
	}
	return s.writeFile(s.manifestPath(table), encodeManifest(m))
}

// writeFile writes data durably and atomically: tmp, sync, rename.
func (s *Store) writeFile(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := s.fsys.Create(tmp, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return s.fsys.Rename(tmp, path)
}

// RunAnalytics implements Runner.
func (s *Store) RunAnalytics(q Query) (*Result, error) { return s.Run(q) }

// Run executes one analytics query: validate the segment set against the
// snapshot the query runs on, vectorized chain over surviving segments,
// row-at-a-time over the tail of the same snapshot. When validation fails
// (a commit rewrote covered rows since the last Refresh) the whole table
// is served row-at-a-time — correct first, fast after the next Refresh.
func (s *Store) Run(q Query) (*Result, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	snap, err := s.db.TableSnap(q.Table)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	ts := s.tabs[q.Table]
	s.mu.Unlock()

	var segs []*Segment
	var covered int64
	if ts != nil && ts.rewrites == snap.Rewrites() && snap.HeapLen() >= ts.covered {
		segs, covered = ts.segs, ts.covered
	}

	a := newAccum(&q)
	fold, err := newRowFold(&q, a, snap.Schema())
	if err != nil {
		return nil, err
	}
	var st ExecStats
	st.Segments = len(segs)
	st.Vectorized = len(segs) > 0
	sel := make([]int32, 0, batchSize)
	for _, seg := range segs {
		var pruned bool
		pruned, sel, err = runSegment(seg, &q, a, sel)
		if err != nil {
			return nil, err
		}
		if pruned {
			st.SegmentsPruned++
		} else {
			st.SegRows += int64(seg.NRows)
		}
	}
	st.TailRows = runRowsSnap(snap, covered, snap.HeapLen(), fold)

	res := a.finish()
	res.Stats = st
	if st.Vectorized {
		s.stats.QueriesVec.Add(1)
	} else {
		s.stats.QueriesRow.Add(1)
	}
	s.stats.SegsScanned.Add(int64(st.Segments - st.SegmentsPruned))
	s.stats.SegsPruned.Add(int64(st.SegmentsPruned))
	s.stats.RowsVec.Add(st.SegRows)
	s.stats.RowsTail.Add(st.TailRows)
	return res, nil
}

// Stats returns a point-in-time copy of the store counters.
func (s *Store) Stats() StatsSnapshot {
	return StatsSnapshot{
		Builds:       s.stats.Builds.Load(),
		Rebuilds:     s.stats.Rebuilds.Load(),
		Loads:        s.stats.Loads.Load(),
		Discarded:    s.stats.Discarded.Load(),
		QueriesVec:   s.stats.QueriesVec.Load(),
		QueriesRow:   s.stats.QueriesRow.Load(),
		SegsScanned:  s.stats.SegsScanned.Load(),
		SegsPruned:   s.stats.SegsPruned.Load(),
		RowsVec:      s.stats.RowsVec.Load(),
		RowsTail:     s.stats.RowsTail.Load(),
		SegsResident: s.stats.SegsResident.Load(),
		RowsCovered:  s.stats.RowsCovered.Load(),
	}
}

// SegmentCount returns the resident segment count for one table.
func (s *Store) SegmentCount(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ts := s.tabs[table]; ts != nil {
		return len(ts.segs)
	}
	return 0
}

// segFileName names a segment file; the rewrites label in the name keeps
// generations from colliding, so a rebuild never overwrites a file the
// still-visible old manifest names.
func segFileName(seg *Segment) string {
	return fmt.Sprintf("%s-%d-%d-%d.seg", seg.Table, seg.StartRow, seg.EndRow, seg.Rewrites)
}

// removeStale deletes orphaned segment files best-effort: invisibility
// (the manifest no longer naming a file) is what guarantees correctness,
// deletion only reclaims space.
func (s *Store) removeStale(names []string) {
	for _, name := range names {
		err := s.fsys.Remove(s.segPath(name))
		_ = err // best-effort; a missing file is already the goal state
	}
}

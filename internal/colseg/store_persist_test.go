package colseg

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
)

// TestStorePersistence: a store reopened over the same directory serves
// from decoded segment files, and results stay bit-identical.
func TestStorePersistence(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(7))
	insertEvents(t, db, rng, 600, 0)

	fsys := fault.NewFS()
	open := func() *Store {
		s, err := Open(Options{DB: db, Dir: "colseg", FS: fsys, SegmentRows: 128})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s1 := open()
	if err := s1.Refresh("ev"); err != nil {
		t.Fatal(err)
	}
	q := Query{Table: "ev", Agg: AggStats, Col: "energy", GroupBy: "unit_id"}
	want, err := s1.Run(q)
	if err != nil {
		t.Fatal(err)
	}

	s2 := open()
	if s2.Stats().Loads != 4 { // 600/128 = 4 full chunks persisted
		t.Fatalf("reopened store loaded %d segments, want 4", s2.Stats().Loads)
	}
	got, err := s2.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "reopened store", got, want)
	if !got.Stats.Vectorized || got.Stats.SegRows != 512 {
		t.Fatalf("reopened store did not serve from segments: %+v", got.Stats)
	}
}

// TestStaleSegmentsDiscardedOnOpen: segments persisted before a rewrite
// must not be loaded — the rewrites label no longer matches.
func TestStaleSegmentsDiscardedOnOpen(t *testing.T) {
	db := openEvents(t)
	rng := rand.New(rand.NewSource(8))
	insertEvents(t, db, rng, 300, 0)
	fsys := fault.NewFS()
	s1, err := Open(Options{DB: db, Dir: "colseg", FS: fsys, SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Refresh("ev"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("ev", 17); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Options{DB: db, Dir: "colseg", FS: fsys, SegmentRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Stats().Loads != 0 {
		t.Fatalf("loaded %d stale segments", s2.Stats().Loads)
	}
	res, err := s2.Run(Query{Table: "ev", Agg: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 299 {
		t.Fatalf("count over stale-discarded store = %d, want 299", res.Rows)
	}
	ref, err := RunRows(db, Query{Table: "ev", Agg: AggCount})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "stale discard", res, ref)
}

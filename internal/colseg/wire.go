package colseg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/minidb"
)

// Wire codec for analytics queries and results, reusing minidb's compact
// binary primitives. The encoded query bytes are canonical (field order is
// fixed, no maps), so the DM also uses them as its cache fingerprint.

// EncodeQuery appends q to b.
func EncodeQuery(b *bytes.Buffer, q Query) {
	minidb.WirePutString(b, q.Table)
	minidb.WirePutUvarint(b, uint64(len(q.Where)))
	for _, p := range q.Where {
		minidb.WirePutString(b, p.Col)
		b.WriteByte(byte(p.Op))
		minidb.WirePutValue(b, p.Val)
		minidb.WirePutValue(b, p.Hi)
	}
	b.WriteByte(byte(q.Agg))
	minidb.WirePutString(b, q.Col)
	minidb.WirePutString(b, q.GroupBy)
	minidb.WirePutVarint(b, int64(q.Bins))
	putFloat(b, q.Lo)
	putFloat(b, q.Hi)
}

// DecodeQuery reads a query written by EncodeQuery.
func DecodeQuery(r *bytes.Reader) (Query, error) {
	var q Query
	var err error
	if q.Table, err = minidb.WireString(r); err != nil {
		return q, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return q, err
	}
	if n > uint64(r.Len()) {
		return q, fmt.Errorf("colseg: filter count %d exceeds payload", n)
	}
	if n > 0 {
		q.Where = make([]minidb.Pred, n)
		for i := range q.Where {
			if q.Where[i].Col, err = minidb.WireString(r); err != nil {
				return q, err
			}
			op, err := r.ReadByte()
			if err != nil {
				return q, err
			}
			q.Where[i].Op = minidb.Op(op)
			if q.Where[i].Val, err = minidb.WireValue(r); err != nil {
				return q, err
			}
			if q.Where[i].Hi, err = minidb.WireValue(r); err != nil {
				return q, err
			}
		}
	}
	agg, err := r.ReadByte()
	if err != nil {
		return q, err
	}
	q.Agg = AggKind(agg)
	if q.Col, err = minidb.WireString(r); err != nil {
		return q, err
	}
	if q.GroupBy, err = minidb.WireString(r); err != nil {
		return q, err
	}
	bins, err := binary.ReadVarint(r)
	if err != nil {
		return q, err
	}
	q.Bins = int(bins)
	if q.Lo, err = getFloat(r); err != nil {
		return q, err
	}
	if q.Hi, err = getFloat(r); err != nil {
		return q, err
	}
	return q, nil
}

// EncodeResult appends res to b.
func EncodeResult(b *bytes.Buffer, res *Result) {
	minidb.WirePutVarint(b, res.Rows)
	minidb.WirePutVarint(b, res.NonNull)
	putFloat(b, res.Sum)
	putFloat(b, res.Min)
	putFloat(b, res.Max)
	if res.Bins == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		minidb.WirePutUvarint(b, uint64(len(res.Bins)))
		for _, v := range res.Bins {
			minidb.WirePutVarint(b, v)
		}
	}
	minidb.WirePutUvarint(b, uint64(len(res.Groups)))
	for _, g := range res.Groups {
		minidb.WirePutString(b, g.Key)
		minidb.WirePutVarint(b, g.Rows)
		putFloat(b, g.Sum)
		minidb.WirePutVarint(b, g.NonNull)
	}
	st := res.Stats
	minidb.WirePutVarint(b, int64(st.Segments))
	minidb.WirePutVarint(b, int64(st.SegmentsPruned))
	minidb.WirePutVarint(b, st.SegRows)
	minidb.WirePutVarint(b, st.TailRows)
	if st.Vectorized {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

// DecodeResult reads a result written by EncodeResult.
func DecodeResult(r *bytes.Reader) (*Result, error) {
	res := &Result{}
	var err error
	if res.Rows, err = binary.ReadVarint(r); err != nil {
		return nil, err
	}
	if res.NonNull, err = binary.ReadVarint(r); err != nil {
		return nil, err
	}
	if res.Sum, err = getFloat(r); err != nil {
		return nil, err
	}
	if res.Min, err = getFloat(r); err != nil {
		return nil, err
	}
	if res.Max, err = getFloat(r); err != nil {
		return nil, err
	}
	hasBins, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasBins != 0 {
		nb, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if nb > uint64(r.Len()) {
			return nil, fmt.Errorf("colseg: bin count %d exceeds payload", nb)
		}
		res.Bins = make([]int64, nb)
		for i := range res.Bins {
			if res.Bins[i], err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
		}
	}
	ng, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if ng > uint64(r.Len()) {
		return nil, fmt.Errorf("colseg: group count %d exceeds payload", ng)
	}
	if ng > 0 {
		res.Groups = make([]Group, ng)
		for i := range res.Groups {
			g := &res.Groups[i]
			if g.Key, err = minidb.WireString(r); err != nil {
				return nil, err
			}
			if g.Rows, err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
			if g.Sum, err = getFloat(r); err != nil {
				return nil, err
			}
			if g.NonNull, err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
		}
	}
	var segments, pruned int64
	for _, p := range []*int64{&segments, &pruned, &res.Stats.SegRows, &res.Stats.TailRows} {
		if *p, err = binary.ReadVarint(r); err != nil {
			return nil, err
		}
	}
	res.Stats.Segments, res.Stats.SegmentsPruned = int(segments), int(pruned)
	vec, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	res.Stats.Vectorized = vec != 0
	return res, nil
}

// Fingerprint returns the canonical encoding of q, usable as a cache key.
func Fingerprint(q Query) string {
	var b bytes.Buffer
	EncodeQuery(&b, q)
	return b.String()
}

func putFloat(b *bytes.Buffer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	b.Write(buf[:])
}

func getFloat(r *bytes.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Package core assembles a complete HEDC node from the substrates: the
// metadata database(s), file archives, the Data Management and Processing
// Logic components, the web presentation tier and the synoptic searcher —
// the 3-tier architecture of Figure 1, in one process, exactly as the
// production deployment ran ("we use a single server for the core of the
// system", §1), while remaining transparently extensible to a cluster via
// DM call redirection.
package core

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/colseg"
	"repro/internal/dm"
	"repro/internal/lake"
	"repro/internal/minidb"
	"repro/internal/pl"
	"repro/internal/schema"
	"repro/internal/synoptic"
	"repro/internal/telemetry"
	"repro/internal/web"
)

// Config parameterizes a node.
type Config struct {
	// DataDir is the node's root directory (database, archives). Empty
	// means fully in-memory/temporary storage for the database and a
	// required explicit ArchiveDir.
	DataDir string
	// Node names this instance (default "hedc-0").
	Node string
	// ImportPassword protects the system import account (default "import").
	ImportPassword string
	// URLRoot is the externally visible base URL for download links.
	URLRoot string
	// PartitionDomain puts the domain schema on a second database instance
	// (vertical partitioning, §5.2).
	PartitionDomain bool
	// IDLServers is the interpreter pool size (default 2, as deployed).
	IDLServers int
	// Workers is the PL dispatch pool (default 4); MaxInSystem the
	// admission limit (default 20, §8.1).
	Workers     int
	MaxInSystem int
	// InvokeTimeout bounds one analysis execution (default 5 min).
	InvokeTimeout time.Duration
	// SynopticArchives lists remote archives for the synoptic search.
	SynopticArchives []synoptic.Endpoint
	// LakeKeepHistory is how many commits of archive history maintenance
	// GC preserves beyond the durable pin set (default 256), the
	// operator's time-travel window.
	LakeKeepHistory uint64
	// Logger for operational messages (nil = discard).
	Logger *log.Logger
}

// Node is a running HEDC instance.
type Node struct {
	cfg Config

	MetaDB   *minidb.DB
	DomainDB *minidb.DB    // == MetaDB unless partitioned
	Segments *colseg.Store // columnar read path over the domain tables
	DM       *dm.DM
	Dir      *pl.Directory
	Manager  *pl.Manager
	Frontend *pl.Frontend
	Web      *web.Server
	Synoptic *synoptic.Searcher
}

// Start builds and wires a node.
func Start(cfg Config) (*Node, error) {
	if cfg.Node == "" {
		cfg.Node = "hedc-0"
	}
	if cfg.ImportPassword == "" {
		cfg.ImportPassword = "import"
	}
	if cfg.IDLServers <= 0 {
		cfg.IDLServers = 2
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.LakeKeepHistory == 0 {
		cfg.LakeKeepHistory = 256
	}
	n := &Node{cfg: cfg}

	dbDir, domainDir, archDir := "", "", ""
	if cfg.DataDir != "" {
		dbDir = filepath.Join(cfg.DataDir, "db")
		domainDir = filepath.Join(cfg.DataDir, "db-domain")
		archDir = filepath.Join(cfg.DataDir, "archive")
	}

	var err error
	if cfg.PartitionDomain {
		n.MetaDB, err = minidb.Open(dbDir, schema.GenericSchemas()...)
		if err != nil {
			return nil, err
		}
		n.DomainDB, err = minidb.Open(domainDir, schema.DomainSchemas()...)
		if err != nil {
			return nil, err
		}
	} else {
		n.MetaDB, err = minidb.Open(dbDir, schema.AllSchemas()...)
		if err != nil {
			return nil, err
		}
		n.DomainDB = n.MetaDB
	}

	if archDir == "" {
		return nil, fmt.Errorf("core: DataDir is required (archives need a directory)")
	}
	// The ingest archive is journal-backed (a lake): every store/delete is
	// a commit, so the node serves time-travel reads and survives crashes
	// by journal replay. A data directory from a pre-lake deployment
	// (MANIFEST.crc, pack files) is imported into the journal on first
	// open, so members the location tables reference stay readable across
	// the upgrade. Old manifest-mode archives keep working as secondary
	// tiers (tape), registered separately.
	arch, err := archive.NewLake("disk-0", archive.Disk, archDir, 0)
	if err != nil {
		return nil, err
	}

	// The columnar segment store shadows the domain database's event
	// catalog; the DM routes aggregate analytics through it. Persisted
	// next to the database so restarts reload instead of rebuilding.
	n.Segments, err = colseg.Open(colseg.Options{
		DB:     n.DomainDB,
		Dir:    filepath.Join(cfg.DataDir, "colseg"),
		Tables: []string{schema.TableEvents},
	})
	if err != nil {
		return nil, err
	}
	if err := n.Segments.RefreshAll(); err != nil {
		cfg.Logger.Printf("colseg initial refresh: %v", err)
	}

	dmOpts := dm.Options{
		Node:           cfg.Node + "/dm",
		MetaDB:         n.MetaDB,
		DefaultArchive: "disk-0",
		URLRoot:        cfg.URLRoot,
		Analytics:      n.Segments,
		Logger:         cfg.Logger,
	}
	if cfg.PartitionDomain {
		dmOpts.DomainDB = n.DomainDB
	}
	n.DM, err = dm.Open(dmOpts)
	if err != nil {
		return nil, err
	}
	alreadyRegistered := n.MetaDB.TableLen(schema.TableLocArchives) > 0
	if alreadyRegistered {
		if err := n.DM.Archives().Add(arch); err != nil {
			return nil, err
		}
	} else if err := n.DM.RegisterArchive(arch, "/archives/disk-0"); err != nil {
		return nil, err
	}
	if err := n.DM.Bootstrap(cfg.ImportPassword); err != nil {
		return nil, err
	}

	// Processing tier.
	n.Dir = pl.NewDirectory()
	n.Manager, err = pl.NewManager(cfg.Node+"/mgr", "server", cfg.IDLServers, pl.Routines(), cfg.InvokeTimeout)
	if err != nil {
		return nil, err
	}
	n.Dir.RegisterManager(n.Manager, "server")
	n.Frontend = pl.NewFrontend(n.Dir, cfg.Workers, cfg.MaxInSystem)
	for _, s := range pl.NewAnalysisStrategies(n.DM) {
		n.Frontend.RegisterStrategy(s)
	}

	// Record the deployed topology in the administrative schema (§4.1).
	for _, svc := range [][3]string{
		{cfg.Node + "/dm", "dm", cfg.Node},
		{cfg.Node + "/pl", "pl", cfg.Node},
		{cfg.Node + "/mgr", "idl", "server"},
		{cfg.Node + "/web", "web", cfg.Node},
	} {
		if err := n.DM.RegisterService(svc[0], svc[1], svc[2]); err != nil {
			return nil, err
		}
	}

	// Presentation tier.
	n.Synoptic = synoptic.NewSearcher(cfg.SynopticArchives, 0)
	n.Web = web.New(web.Config{
		API: dm.Local{DM: n.DM}, Frontend: n.Frontend, LocalDM: n.DM,
		Synoptic: n.Synoptic, Node: cfg.Node,
	})
	return n, nil
}

// Handler serves the whole node over HTTP: the web interface at /, the DM
// RPC surface at /dm/ (for remote DMs, StreamCorders and peers).
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", n.Web.Handler())
	mux.Handle("/dm/", dm.NewServer(dm.Local{DM: n.DM}, "/dm/").Mux())
	mux.Handle("/admin/lake/", n.lakeAdminHandler())
	return mux
}

// StartMaintenance launches the node's housekeeping loop: service
// heartbeats into the administrative schema and periodic database
// checkpoints. It returns a stop function.
func (n *Node) StartMaintenance(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		// The processing directory drops managers whose heartbeat goes
		// stale, and the scheduler only dispatches to live managers — so
		// the local manager's entry must be beaten well inside the
		// staleness window or every analysis fails with "no processing
		// capacity" one StaleAfter after startup.
		beat := n.Dir.StaleAfter / 3
		if beat <= 0 {
			beat = 20 * time.Second
		}
		dirTicker := time.NewTicker(beat)
		defer dirTicker.Stop()
		for {
			select {
			case <-done:
				return
			case <-dirTicker.C:
				_ = n.Dir.Heartbeat(n.Manager.ID())
			case <-ticker.C:
				for _, suffix := range []string{"/dm", "/pl", "/mgr", "/web"} {
					_ = n.DM.ServiceHeartbeat(n.cfg.Node + suffix)
				}
				if err := n.Checkpoint(); err != nil {
					n.cfg.Logger.Printf("maintenance checkpoint: %v", err)
				}
				if err := n.Segments.RefreshAll(); err != nil {
					n.cfg.Logger.Printf("maintenance segment refresh: %v", err)
				}
				// Lake housekeeping: merge small ingest containers, then
				// let GC retire history past the keep window — never past
				// a durable pin.
				if a := n.DM.DefaultArchive(); a != nil && a.Lake() != nil {
					if _, _, err := n.DM.LakeMaintenance(lake.DefaultCompactOptions(), n.cfg.LakeKeepHistory); err != nil {
						n.cfg.Logger.Printf("maintenance lake: %v", err)
					}
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// Close flushes databases and shuts down processing.
func (n *Node) Close() error {
	n.Frontend.Close()
	err := n.MetaDB.Close()
	if n.DomainDB != n.MetaDB {
		if derr := n.DomainDB.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// Checkpoint snapshots the databases.
func (n *Node) Checkpoint() error {
	if err := n.MetaDB.Checkpoint(); err != nil {
		return err
	}
	if n.DomainDB != n.MetaDB {
		return n.DomainDB.Checkpoint()
	}
	return nil
}

// LoadDay generates (or accepts) one synthetic mission day and ingests its
// units through the parallel loading pipeline. unitSeconds controls
// segmentation (0 = 4 units per day).
func (n *Node) LoadDay(dayNum int, tcfg telemetry.Config, unitSeconds float64) ([]*dm.LoadReport, error) {
	day := telemetry.GenerateDay(dayNum, tcfg)
	if unitSeconds <= 0 {
		unitSeconds = day.Length / 4
	}
	return n.DM.LoadUnits(telemetry.SegmentDay(day, unitSeconds), 0)
}

// Login authenticates a user for programmatic use of the node.
func (n *Node) Login(user, password string) (*dm.Session, error) {
	return n.DM.Authenticate(user, password, "127.0.0.1", dm.SessionANA)
}

// ImportSession logs in the system import account.
func (n *Node) ImportSession() (*dm.Session, error) {
	return n.Login(dm.ImportUser, n.cfg.ImportPassword)
}

// Analyze submits one analysis and waits for it, returning the committed
// analysis id — the programmatic equivalent of the web UI's execute form.
func (n *Node) Analyze(sess *dm.Session, anaType, hleID string, params map[string]interface{}) (string, error) {
	if params == nil {
		params = map[string]interface{}{}
	}
	if _, ok := params["tstart"]; !ok {
		h, err := n.DM.GetHLE(sess, hleID)
		if err != nil {
			return "", err
		}
		params["tstart"], params["tstop"] = h.TStart, h.TStop
	}
	params["hle_id"] = hleID
	ticket, err := n.Frontend.Submit(&pl.Request{
		Type: anaType, Session: sess, Params: params,
	})
	if err != nil {
		return "", err
	}
	return ticket.Wait(context.Background())
}

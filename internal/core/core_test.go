package core

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dm"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func smallTelemetry() telemetry.Config {
	return telemetry.Config{Seed: 31, DayLength: 1200, BackgroundRate: 4, Flares: 1, Bursts: 0}
}

func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestNodeFullPipeline(t *testing.T) {
	n := startNode(t, Config{})
	reports, err := n.LoadDay(1, smallTelemetry(), 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Events == 0 {
		t.Fatalf("reports = %+v", reports)
	}
	sess, err := n.ImportSession()
	if err != nil {
		t.Fatal(err)
	}
	anaID, err := n.Analyze(sess, schema.AnaLightcurve, reports[0].HLEs[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := n.DM.GetANA(sess, anaID)
	if err != nil || ana.NPhotons == 0 {
		t.Fatalf("ana = %+v %v", ana, err)
	}
}

func TestNodeHTTPServesWebAndRPC(t *testing.T) {
	n := startNode(t, Config{})
	if _, err := n.LoadDay(1, smallTelemetry(), 1200); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()

	// Web tier answers.
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Extended catalog") {
		t.Fatalf("web: %d", resp.StatusCode)
	}
	// DM RPC answers on the same listener.
	remote := dm.NewRemote(ts.URL+"/dm/", nil)
	cats, err := remote.ListCatalogs("", "")
	if err != nil || len(cats) != 2 {
		t.Fatalf("rpc: %v %v", cats, err)
	}
}

func TestNodePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	n, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reports, err := n.LoadDay(1, smallTelemetry(), 1200)
	if err != nil {
		t.Fatal(err)
	}
	events := reports[0].Events
	if err := n.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}

	n2, err := Start(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	hles, err := n2.DM.QueryHLEs(nil, dm.HLEFilter{Catalog: dm.ExtendedCat})
	if err != nil {
		t.Fatal(err)
	}
	if len(hles) != events {
		t.Fatalf("after restart: %d events, want %d", len(hles), events)
	}
	// Files still resolve and read after restart.
	sess, err := n2.ImportSession()
	if err != nil {
		t.Fatal(err)
	}
	photons, _, err := n2.DM.RawPhotons(sess, 0, 1200)
	if err != nil || len(photons) == 0 {
		t.Fatalf("raw photons after restart: %d %v", len(photons), err)
	}
}

func TestNodePartitionedDomain(t *testing.T) {
	n := startNode(t, Config{PartitionDomain: true})
	if n.MetaDB == n.DomainDB {
		t.Fatal("domain not partitioned")
	}
	if _, err := n.LoadDay(1, smallTelemetry(), 1200); err != nil {
		t.Fatal(err)
	}
	if n.DomainDB.TableLen(schema.TableHLE) == 0 {
		t.Fatal("no HLEs in the domain partition")
	}
	if n.MetaDB.TableLen(schema.TableHLE) != -1 {
		t.Fatal("HLE table leaked into the meta partition")
	}
}

func TestNodeRequiresDataDir(t *testing.T) {
	if _, err := Start(Config{DataDir: ""}); err == nil {
		t.Fatal("node started without a data directory")
	}
}

func TestNodeRegistersServices(t *testing.T) {
	n := startNode(t, Config{Node: "svc-test"})
	services, err := n.DM.Services("")
	if err != nil {
		t.Fatal(err)
	}
	types := map[string]bool{}
	for _, s := range services {
		types[s.Type] = true
		if s.Status != "online" {
			t.Fatalf("service %s status %s", s.ID, s.Status)
		}
	}
	for _, want := range []string{"dm", "pl", "idl", "web"} {
		if !types[want] {
			t.Fatalf("service type %q not registered (have %v)", want, types)
		}
	}
}

// TestNodeSoak exercises the whole node concurrently: browsers hammer the
// web tier while analyses run through the PL and a second day loads
// through the DM — the closest in-process analogue of the paper's mixed
// production workload.
func TestNodeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	n := startNode(t, Config{Workers: 4, IDLServers: 2})
	reports, err := n.LoadDay(1, smallTelemetry(), 1200)
	if err != nil || reports[0].Events == 0 {
		t.Fatalf("load: %v", err)
	}
	hleID := reports[0].HLEs[0]
	sess, err := n.ImportSession()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()

	errs := make(chan error, 32)
	var wg sync.WaitGroup

	// Browsers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				for _, path := range []string{"/", "/catalog?id=" + dm.ExtendedCat, "/hle?id=" + hleID, "/viz"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Errorf("%s -> %d", path, resp.StatusCode)
						return
					}
				}
			}
		}()
	}
	// Analysts.
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				anaType := schema.AnaHistogram
				if (i+j)%2 == 1 {
					anaType = schema.AnaLightcurve
				}
				if _, err := n.Analyze(sess, anaType, hleID, map[string]interface{}{
					"energy_bins": 8 + i + j, // distinct params: no dedup
				}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// A second day loads mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := n.LoadDay(2, smallTelemetry(), 1200); err != nil {
			errs <- err
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything committed: 10 analyses on the event.
	anas, err := n.DM.AnalysesForHLE(sess, hleID)
	if err != nil || len(anas) != 10 {
		t.Fatalf("analyses = %d %v", len(anas), err)
	}
}

func TestMaintenanceLoop(t *testing.T) {
	n := startNode(t, Config{Node: "mx"})
	before, err := n.DM.Services("dm")
	if err != nil || len(before) != 1 {
		t.Fatalf("services = %v %v", before, err)
	}
	stop := n.StartMaintenance(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		after, err := n.DM.Services("dm")
		if err != nil {
			t.Fatal(err)
		}
		if after[0].Heartbeat > before[0].Heartbeat {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never advanced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	// Checkpoint ran: the snapshot exists.
	if n.MetaDB.Stats().Checkpoints == 0 {
		t.Fatal("maintenance never checkpointed")
	}
}

// The processing directory declares managers dead when their heartbeat
// goes stale, and the scheduler refuses to dispatch to dead managers.
// The maintenance loop must therefore keep beating the local manager's
// entry, or every analysis fails with "no processing capacity" one
// StaleAfter after startup (a bug caught by driving a live node).
func TestMaintenanceKeepsManagerLive(t *testing.T) {
	n := startNode(t, Config{Node: "hb"})
	n.Dir.StaleAfter = 60 * time.Millisecond
	stop := n.StartMaintenance(time.Hour) // only the directory beat fires
	defer stop()
	deadline := time.Now().Add(5 * n.Dir.StaleAfter)
	for time.Now().Before(deadline) {
		if len(n.Dir.Managers("")) != 1 {
			t.Fatalf("manager went stale despite maintenance beats")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

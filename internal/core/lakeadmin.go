package core

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/lake"
)

// Operator surface for the journal-backed archive. Everything here is
// plumbing over internal/lake — the policy (what to compact, how much
// history to keep) stays with the operator:
//
//	GET  /admin/lake/status        journal head, horizon, footprint, pins
//	POST /admin/lake/compact       one compaction round (small/dead merge)
//	POST /admin/lake/gc?keep=N     retire history to head-N (pin-bounded)
//	POST /admin/lake/pin?commit=N  durable pin at commit N (0 = head)
//	POST /admin/lake/unpin?token=  release a durable pin
//	GET  /admin/lake/pins          the durable pin set
func (n *Node) lakeAdminHandler() http.Handler {
	mux := http.NewServeMux()

	reply := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	fail := func(w http.ResponseWriter, code int, err error) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	}
	// withLake rejects the whole surface cleanly when disk-0 is not
	// journal-backed (e.g. a node configured around a legacy archive).
	withLake := func(method string, fn func(w http.ResponseWriter, r *http.Request, lk *lake.Lake)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != method {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			a := n.DM.DefaultArchive()
			if a == nil || a.Lake() == nil {
				http.Error(w, "default archive is not journal-backed", http.StatusNotFound)
				return
			}
			fn(w, r, a.Lake())
		}
	}

	mux.Handle("/admin/lake/status", withLake(http.MethodGet, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		ds := n.DM.Stats()
		reply(w, map[string]any{
			"lake":        lk.Status(),
			"asof_opens":  ds.AsOfOpens.Load(),
			"asof_reads":  ds.AsOfReads.Load(),
			"keepHistory": n.cfg.LakeKeepHistory,
		})
	}))
	mux.Handle("/admin/lake/compact", withLake(http.MethodPost, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		cr, err := lk.Compact(lake.DefaultCompactOptions())
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		reply(w, cr)
	}))
	mux.Handle("/admin/lake/gc", withLake(http.MethodPost, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		keep := n.cfg.LakeKeepHistory
		if v := r.URL.Query().Get("keep"); v != "" {
			k, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			keep = k
		}
		target := lk.Head()
		if target > keep {
			target -= keep
		} else {
			target = 0
		}
		gr, err := lk.GC(target)
		if err != nil {
			fail(w, http.StatusInternalServerError, err)
			return
		}
		reply(w, gr)
	}))
	mux.Handle("/admin/lake/pin", withLake(http.MethodPost, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		var commit uint64
		if v := r.URL.Query().Get("commit"); v != "" {
			c, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, err)
				return
			}
			commit = c
		}
		// The View handle is dropped deliberately: the pin itself is a
		// durable journal record, released only by an explicit unpin.
		v, err := lk.OpenAt(commit)
		if err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, map[string]any{"token": v.Token(), "commit": v.Seq()})
	}))
	mux.Handle("/admin/lake/unpin", withLake(http.MethodPost, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		token := r.URL.Query().Get("token")
		if err := lk.Unpin(token); err != nil {
			fail(w, http.StatusBadRequest, err)
			return
		}
		reply(w, map[string]string{"unpinned": token})
	}))
	mux.Handle("/admin/lake/pins", withLake(http.MethodGet, func(w http.ResponseWriter, r *http.Request, lk *lake.Lake) {
		reply(w, lk.Pins())
	}))
	return mux
}

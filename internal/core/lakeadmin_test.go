package core

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestLakeAdminSurface drives the operator endpoints end to end: status
// reflects ingest, a pin taken over HTTP survives as a durable journal
// record and blocks GC, and unpinning releases the history.
func TestLakeAdminSurface(t *testing.T) {
	n := startNode(t, Config{})
	if _, err := n.LoadDay(1, smallTelemetry(), 300); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(n.Handler())
	defer ts.Close()

	getJSON := func(method, path string, out any) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(method, ts.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s %s: decode: %v", method, path, err)
			}
		}
		return resp
	}

	var status struct {
		Lake struct {
			Head      uint64 `json:"Head"`
			LiveFiles int    `json:"LiveFiles"`
		} `json:"lake"`
	}
	if resp := getJSON(http.MethodGet, "/admin/lake/status", &status); resp.StatusCode != 200 {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	if status.Lake.Head == 0 || status.Lake.LiveFiles == 0 {
		t.Fatalf("status shows empty lake: %+v", status)
	}

	// Pin the current head over HTTP; the pin must appear in the pin set.
	var pinned struct {
		Token  string `json:"token"`
		Commit uint64 `json:"commit"`
	}
	if resp := getJSON(http.MethodPost, "/admin/lake/pin", &pinned); resp.StatusCode != 200 {
		t.Fatalf("pin: %d", resp.StatusCode)
	}
	if pinned.Token == "" || pinned.Commit == 0 {
		t.Fatalf("pin reply: %+v", pinned)
	}
	pins := map[string]uint64{}
	getJSON(http.MethodGet, "/admin/lake/pins", &pins)
	if pins[pinned.Token] != pinned.Commit {
		t.Fatalf("pin %s missing from pin set %v", pinned.Token, pins)
	}

	// Compact, then ask GC to retire everything: the pin must hold the
	// horizon at or below the pinned commit.
	if resp := getJSON(http.MethodPost, "/admin/lake/compact", nil); resp.StatusCode != 200 {
		t.Fatalf("compact: %d", resp.StatusCode)
	}
	if resp := getJSON(http.MethodPost, "/admin/lake/gc?keep=0", nil); resp.StatusCode != 200 {
		t.Fatalf("gc: %d", resp.StatusCode)
	}
	lk := n.DM.DefaultArchive().Lake()
	if lk.Horizon() > pinned.Commit {
		t.Fatalf("gc horizon %d passed the pinned commit %d", lk.Horizon(), pinned.Commit)
	}

	// Unpin and GC again: now the horizon may pass the old commit.
	if resp := getJSON(http.MethodPost, fmt.Sprintf("/admin/lake/unpin?token=%s", pinned.Token), nil); resp.StatusCode != 200 {
		t.Fatalf("unpin: %d", resp.StatusCode)
	}
	if resp := getJSON(http.MethodPost, "/admin/lake/gc?keep=0", nil); resp.StatusCode != 200 {
		t.Fatalf("gc after unpin: %d", resp.StatusCode)
	}
	if lk.Horizon() < pinned.Commit {
		t.Fatalf("horizon %d did not advance past released pin %d", lk.Horizon(), pinned.Commit)
	}
	if probs := lk.Verify(); len(probs) > 0 {
		t.Fatalf("verify after admin round: %v", probs)
	}

	// The web /stats page renders the lake section.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(page), "Lake archive") {
		t.Fatal("/stats is missing the Lake archive section")
	}

	// Method and mode guards.
	if resp := getJSON(http.MethodPost, "/admin/lake/status", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status: %d", resp.StatusCode)
	}
	if resp := getJSON(http.MethodGet, "/admin/lake/compact", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET compact: %d", resp.StatusCode)
	}
}

// Package dataviz implements HEDC's interactive database visualization
// (§6.3): "reorganize the catalogs as a number of multi-dimensional arrays
// and allow users to specify ranges in any of the dimensions. Based on
// these ranges the information is then presented in a compact and efficient
// manner using density (number of tuples per bin) and extent (location and
// extent of each tuple or cluster of tuples) plots."
//
// Arrays are pre-sorted by the most relevant attributes, partitioned across
// the dimensions into the equivalent of materialized views, and wavelet
// encoded so that decoding (and progressive refinement) happens at the
// client — "otherwise interactive exploration would require a very powerful
// server".
package dataviz

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/schema"
	"repro/internal/wavelet"
)

// Dimension selects an HLE attribute as a plot axis.
type Dimension string

// Supported axes over the event catalog.
const (
	DimTStart       Dimension = "tstart"
	DimDuration     Dimension = "duration"
	DimPeakRate     Dimension = "peak_rate"
	DimSignificance Dimension = "significance"
	DimEnergy       Dimension = "emax"
	DimTotalCounts  Dimension = "total_counts"
)

// value extracts the dimension from an event.
func (d Dimension) value(h *schema.HLE) (float64, error) {
	switch d {
	case DimTStart:
		return h.TStart, nil
	case DimDuration:
		return h.TStop - h.TStart, nil
	case DimPeakRate:
		return h.PeakRate, nil
	case DimSignificance:
		return h.Significance, nil
	case DimEnergy:
		return h.EMax, nil
	case DimTotalCounts:
		return float64(h.TotalCounts), nil
	}
	return 0, fmt.Errorf("dataviz: unknown dimension %q", d)
}

// Log reports whether the axis is better binned logarithmically.
func (d Dimension) Log() bool {
	switch d {
	case DimPeakRate, DimTotalCounts, DimEnergy:
		return true
	}
	return false
}

// Array is a catalog reorganized as a 2-D array over two attributes:
// the pre-processed, sorted structure that range selections and plots
// slice into.
type Array struct {
	X, Y   Dimension
	XMin   float64
	XMax   float64
	YMin   float64
	YMax   float64
	XBins  int
	YBins  int
	Tuples []Point // sorted by X then Y: the §6.3 pre-sorting
}

// Point is one catalog tuple projected onto the two plot dimensions.
type Point struct {
	ID   string
	X, Y float64
}

// BuildArray projects events onto (x, y) and sorts them.
func BuildArray(events []*schema.HLE, x, y Dimension, xBins, yBins int) (*Array, error) {
	if xBins < 1 {
		xBins = 64
	}
	if yBins < 1 {
		yBins = 64
	}
	a := &Array{X: x, Y: y, XBins: xBins, YBins: yBins}
	for _, h := range events {
		xv, err := x.value(h)
		if err != nil {
			return nil, err
		}
		yv, err := y.value(h)
		if err != nil {
			return nil, err
		}
		a.Tuples = append(a.Tuples, Point{ID: h.ID, X: xv, Y: yv})
	}
	sort.Slice(a.Tuples, func(i, j int) bool {
		if a.Tuples[i].X != a.Tuples[j].X {
			return a.Tuples[i].X < a.Tuples[j].X
		}
		return a.Tuples[i].Y < a.Tuples[j].Y
	})
	if len(a.Tuples) > 0 {
		a.XMin, a.XMax = a.Tuples[0].X, a.Tuples[len(a.Tuples)-1].X
		a.YMin, a.YMax = math.Inf(1), math.Inf(-1)
		for _, p := range a.Tuples {
			a.YMin = math.Min(a.YMin, p.Y)
			a.YMax = math.Max(a.YMax, p.Y)
		}
	}
	return a, nil
}

// Range restricts a plot to a sub-rectangle; zero-valued ranges mean the
// full extent ("users specify ranges in any of the dimensions").
type Range struct {
	XLo, XHi float64
	YLo, YHi float64
	Set      bool
}

func (a *Array) bounds(r Range) (xlo, xhi, ylo, yhi float64) {
	if !r.Set {
		return a.XMin, a.XMax, a.YMin, a.YMax
	}
	return r.XLo, r.XHi, r.YLo, r.YHi
}

// axisPos maps v into [0, bins) under linear or log scaling.
func axisPos(v, lo, hi float64, bins int, logScale bool) int {
	if hi <= lo {
		return 0
	}
	var t float64
	if logScale && lo > 0 {
		t = (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	} else {
		t = (v - lo) / (hi - lo)
	}
	i := int(t * float64(bins))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	return i
}

// Density returns the tuples-per-bin matrix for the selected range
// (row-major, [yBins][xBins], row 0 = lowest Y).
func (a *Array) Density(r Range) [][]float64 {
	xlo, xhi, ylo, yhi := a.bounds(r)
	grid := make([][]float64, a.YBins)
	for i := range grid {
		grid[i] = make([]float64, a.XBins)
	}
	// The tuples are sorted by X: binary-search the window.
	lo := sort.Search(len(a.Tuples), func(i int) bool { return a.Tuples[i].X >= xlo })
	for _, p := range a.Tuples[lo:] {
		if p.X > xhi {
			break
		}
		if p.Y < ylo || p.Y > yhi {
			continue
		}
		xi := axisPos(p.X, xlo, xhi, a.XBins, a.X.Log())
		yi := axisPos(p.Y, ylo, yhi, a.YBins, a.Y.Log())
		grid[yi][xi]++
	}
	return grid
}

// Cluster is one entry of an extent plot: the location and spread of a
// group of tuples that share a density cell region.
type Cluster struct {
	N                int
	XCenter, YCenter float64
	XSpread, YSpread float64 // half-extents
	Members          []string
}

// Extent groups the selected tuples by density cell and summarizes each
// non-empty cell's location and extent.
func (a *Array) Extent(r Range) []Cluster {
	xlo, xhi, ylo, yhi := a.bounds(r)
	type agg struct {
		n          int
		sx, sy     float64
		minx, maxx float64
		miny, maxy float64
		members    []string
	}
	cells := make(map[[2]int]*agg)
	lo := sort.Search(len(a.Tuples), func(i int) bool { return a.Tuples[i].X >= xlo })
	for _, p := range a.Tuples[lo:] {
		if p.X > xhi {
			break
		}
		if p.Y < ylo || p.Y > yhi {
			continue
		}
		key := [2]int{
			axisPos(p.X, xlo, xhi, a.XBins, a.X.Log()),
			axisPos(p.Y, ylo, yhi, a.YBins, a.Y.Log()),
		}
		c := cells[key]
		if c == nil {
			c = &agg{minx: p.X, maxx: p.X, miny: p.Y, maxy: p.Y}
			cells[key] = c
		}
		c.n++
		c.sx += p.X
		c.sy += p.Y
		c.minx = math.Min(c.minx, p.X)
		c.maxx = math.Max(c.maxx, p.X)
		c.miny = math.Min(c.miny, p.Y)
		c.maxy = math.Max(c.maxy, p.Y)
		c.members = append(c.members, p.ID)
	}
	out := make([]Cluster, 0, len(cells))
	for _, c := range cells {
		out = append(out, Cluster{
			N:       c.n,
			XCenter: c.sx / float64(c.n),
			YCenter: c.sy / float64(c.n),
			XSpread: (c.maxx - c.minx) / 2,
			YSpread: (c.maxy - c.miny) / 2,
			Members: c.members,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		if out[i].XCenter != out[j].XCenter {
			return out[i].XCenter < out[j].XCenter
		}
		return out[i].YCenter < out[j].YCenter
	})
	return out
}

// Partition splits the array into nParts X-ranges and wavelet-encodes each
// part's density — the "partitioned ... equivalent of materialized views"
// that clients download and decode locally, progressively (§6.3).
type Partition struct {
	XLo, XHi float64
	Enc      *wavelet.Encoded
	Tuples   int
}

// Partitions encodes the array's density in nParts column strips, keeping
// the given wavelet coefficient fraction.
func (a *Array) Partitions(nParts int, keep float64) []Partition {
	if nParts < 1 {
		nParts = 1
	}
	out := make([]Partition, 0, nParts)
	step := (a.XMax - a.XMin) / float64(nParts)
	if step <= 0 {
		step = 1
	}
	for i := 0; i < nParts; i++ {
		xlo := a.XMin + float64(i)*step
		xhi := xlo + step
		if i == nParts-1 {
			xhi = a.XMax
		}
		r := Range{XLo: xlo, XHi: xhi, YLo: a.YMin, YHi: a.YMax, Set: true}
		grid := a.Density(r)
		n := 0
		for _, row := range grid {
			for _, v := range row {
				n += int(v)
			}
		}
		out = append(out, Partition{
			XLo: xlo, XHi: xhi,
			Enc:    wavelet.Encode2D(grid, keep),
			Tuples: n,
		})
	}
	return out
}

// DecodeDensity reconstructs a partition's (approximated) density at the
// given coefficient fraction, clamping negative artifacts.
func (p Partition) DecodeDensity(frac float64) [][]float64 {
	grid := p.Enc.Decode2D(frac)
	for _, row := range grid {
		for i, v := range row {
			if v < 0 {
				row[i] = 0
			}
		}
	}
	return grid
}

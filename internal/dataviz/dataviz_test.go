package dataviz

import (
	"bytes"
	"fmt"
	"image/gif"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

func testEvents(n int) []*schema.HLE {
	events := make([]*schema.HLE, n)
	for i := range events {
		start := float64(i * 100)
		events[i] = &schema.HLE{
			ID:           fmt.Sprintf("hle-%04d", i),
			TStart:       start,
			TStop:        start + 50 + float64(i%7)*20,
			PeakRate:     10 + float64((i*37)%500),
			Significance: float64(i%40) + 1,
			EMax:         100 + float64(i%9)*1000,
			TotalCounts:  int64(100 + i*13),
		}
	}
	return events
}

func TestBuildArraySortedAndBounded(t *testing.T) {
	a, err := BuildArray(testEvents(200), DimTStart, DimPeakRate, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tuples) != 200 {
		t.Fatalf("tuples = %d", len(a.Tuples))
	}
	for i := 1; i < len(a.Tuples); i++ {
		if a.Tuples[i].X < a.Tuples[i-1].X {
			t.Fatal("tuples not sorted by X")
		}
	}
	if a.XMin != 0 || a.XMax != 19900 {
		t.Fatalf("x bounds = [%v, %v]", a.XMin, a.XMax)
	}
	if _, err := BuildArray(testEvents(1), "nope", DimPeakRate, 8, 8); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}

func TestDensityConservesTuples(t *testing.T) {
	events := testEvents(500)
	a, _ := BuildArray(events, DimTStart, DimSignificance, 40, 20)
	grid := a.Density(Range{})
	var total float64
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}
	if total != 500 {
		t.Fatalf("density sums to %v, want 500", total)
	}
}

func TestDensityRangeSelection(t *testing.T) {
	events := testEvents(200)
	a, _ := BuildArray(events, DimTStart, DimSignificance, 40, 20)
	// Half the X range should hold about half the tuples.
	r := Range{XLo: 0, XHi: a.XMax / 2, YLo: a.YMin, YHi: a.YMax, Set: true}
	grid := a.Density(r)
	var total float64
	for _, row := range grid {
		for _, v := range row {
			total += v
		}
	}
	if total < 90 || total > 110 {
		t.Fatalf("half-range density = %v, want ~100", total)
	}
}

func TestExtentClustersCoverSelection(t *testing.T) {
	events := testEvents(300)
	a, _ := BuildArray(events, DimTStart, DimPeakRate, 16, 8)
	clusters := a.Extent(Range{})
	var members int
	for _, c := range clusters {
		members += c.N
		if len(c.Members) != c.N {
			t.Fatalf("cluster bookkeeping: %d members vs N=%d", len(c.Members), c.N)
		}
		if c.XSpread < 0 || c.YSpread < 0 {
			t.Fatalf("negative spread: %+v", c)
		}
	}
	if members != 300 {
		t.Fatalf("clusters cover %d tuples, want 300", members)
	}
	// Sorted by descending membership.
	for i := 1; i < len(clusters); i++ {
		if clusters[i].N > clusters[i-1].N {
			t.Fatal("clusters not sorted by size")
		}
	}
}

func TestPartitionsEncodeAndDecode(t *testing.T) {
	events := testEvents(400)
	a, _ := BuildArray(events, DimTStart, DimSignificance, 32, 16)
	parts := a.Partitions(4, 0.3)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	var covered int
	for i, p := range parts {
		covered += p.Tuples
		if i > 0 && parts[i-1].XHi != p.XLo {
			t.Fatal("partition gap")
		}
		grid := p.DecodeDensity(1)
		var sum float64
		for _, row := range grid {
			for _, v := range row {
				sum += v
			}
		}
		if math.Abs(sum-float64(p.Tuples)) > float64(p.Tuples)*0.3+5 {
			t.Fatalf("partition %d decodes to %v tuples, want ~%d", i, sum, p.Tuples)
		}
	}
	if covered != 400 {
		t.Fatalf("partitions cover %d tuples", covered)
	}
	// Progressive refinement is monotone in L2 against the full decode.
	full := parts[0].DecodeDensity(1)
	prevErr := math.Inf(1)
	for _, frac := range []float64{0.2, 0.6, 1.0} {
		approx := parts[0].DecodeDensity(frac)
		var e float64
		for y := range full {
			for x := range full[y] {
				d := full[y][x] - approx[y][x]
				e += d * d
			}
		}
		if e > prevErr+1e-9 {
			t.Fatalf("refinement increased error at frac %v", frac)
		}
		prevErr = e
	}
}

func TestLogAxes(t *testing.T) {
	if !DimPeakRate.Log() || DimTStart.Log() {
		t.Fatal("axis scaling flags wrong")
	}
	// Log binning spreads a power-law-ish attribute across bins.
	events := testEvents(300)
	a, _ := BuildArray(events, DimTStart, DimPeakRate, 8, 8)
	grid := a.Density(Range{})
	occupied := 0
	for _, row := range grid {
		for _, v := range row {
			if v > 0 {
				occupied++
			}
		}
	}
	if occupied < 8 {
		t.Fatalf("only %d occupied cells: log binning collapsed", occupied)
	}
}

func TestRenderDensityAndExtentProduceGIFs(t *testing.T) {
	events := testEvents(150)
	a, _ := BuildArray(events, DimTStart, DimPeakRate, 32, 16)
	dens, err := RenderDensity(a.Density(Range{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gif.Decode(bytes.NewReader(dens)); err != nil {
		t.Fatalf("density gif invalid: %v", err)
	}
	ext, err := RenderExtent(a.Extent(Range{}), a.XMin, a.XMax, a.YMin, a.YMax)
	if err != nil {
		t.Fatal(err)
	}
	img, err := gif.Decode(bytes.NewReader(ext))
	if err != nil {
		t.Fatalf("extent gif invalid: %v", err)
	}
	if img.Bounds().Dx() != 256 {
		t.Fatalf("extent image %v", img.Bounds())
	}
}

func TestEmptyCatalog(t *testing.T) {
	a, err := BuildArray(nil, DimTStart, DimPeakRate, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if grid := a.Density(Range{}); len(grid) != 8 {
		t.Fatal("density shape wrong for empty catalog")
	}
	if clusters := a.Extent(Range{}); len(clusters) != 0 {
		t.Fatal("phantom clusters")
	}
	if _, err := RenderDensity(a.Density(Range{})); err != nil {
		t.Fatal(err)
	}
}

// Property: density over any range never exceeds the total tuple count and
// every counted tuple lies within the range.
func TestQuickDensityWithinRange(t *testing.T) {
	events := testEvents(120)
	a, _ := BuildArray(events, DimTStart, DimSignificance, 16, 16)
	check := func(xloRaw, xhiRaw, yloRaw, yhiRaw uint16) bool {
		xlo := float64(xloRaw) / 65535 * a.XMax
		xhi := float64(xhiRaw) / 65535 * a.XMax
		if xlo > xhi {
			xlo, xhi = xhi, xlo
		}
		ylo := float64(yloRaw) / 65535 * a.YMax
		yhi := float64(yhiRaw) / 65535 * a.YMax
		if ylo > yhi {
			ylo, yhi = yhi, ylo
		}
		grid := a.Density(Range{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi, Set: true})
		var got float64
		for _, row := range grid {
			for _, v := range row {
				got += v
			}
		}
		// Reference count.
		var want float64
		for _, p := range a.Tuples {
			if p.X >= xlo && p.X <= xhi && p.Y >= ylo && p.Y <= yhi {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package dataviz

import (
	"bytes"
	"image"
	"image/color"
	"image/gif"
	"math"
)

// RenderDensity draws a density grid as a heatmap GIF (log color scale so
// sparse catalogs stay readable).
func RenderDensity(grid [][]float64) ([]byte, error) {
	h := len(grid)
	w := 0
	if h > 0 {
		w = len(grid[0])
	}
	if w == 0 {
		grid = [][]float64{{0}}
		w, h = 1, 1
	}
	scale := 1
	for (w*scale < 192 || h*scale < 192) && scale < 32 {
		scale++
	}
	maxV := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	pal := make(color.Palette, 256)
	for i := range pal {
		t := float64(i) / 255
		pal[i] = color.RGBA{
			R: uint8(255 * math.Min(1, 2*t)),
			G: uint8(255 * t * t),
			B: uint8(255 * (1 - t) * 0.6),
			A: 255,
		}
	}
	img := image.NewPaletted(image.Rect(0, 0, w*scale, h*scale), pal)
	logMax := math.Log1p(maxV)
	for y := 0; y < h*scale; y++ {
		row := grid[h-1-y/scale]
		for x := 0; x < w*scale; x++ {
			idx := 0
			if logMax > 0 {
				idx = int(math.Log1p(row[x/scale]) / logMax * 255)
			}
			img.SetColorIndex(x, y, uint8(idx))
		}
	}
	var buf bytes.Buffer
	if err := gif.Encode(&buf, img, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RenderExtent draws clusters as rectangles (center ± spread) over the
// plot range, sized by membership.
func RenderExtent(clusters []Cluster, xlo, xhi, ylo, yhi float64) ([]byte, error) {
	const w, h = 256, 256
	pal := color.Palette{
		color.RGBA{250, 250, 245, 255}, // background
		color.RGBA{40, 70, 160, 255},   // outline
		color.RGBA{150, 170, 220, 255}, // fill
		color.RGBA{0, 0, 0, 255},       // frame
	}
	img := image.NewPaletted(image.Rect(0, 0, w, h), pal)
	for x := 0; x < w; x++ {
		img.SetColorIndex(x, 0, 3)
		img.SetColorIndex(x, h-1, 3)
	}
	for y := 0; y < h; y++ {
		img.SetColorIndex(0, y, 3)
		img.SetColorIndex(w-1, y, 3)
	}
	px := func(v, lo, hi float64, span int) int {
		if hi <= lo {
			return 0
		}
		p := int((v - lo) / (hi - lo) * float64(span-1))
		if p < 0 {
			p = 0
		}
		if p >= span {
			p = span - 1
		}
		return p
	}
	for _, c := range clusters {
		x0 := px(c.XCenter-c.XSpread, xlo, xhi, w)
		x1 := px(c.XCenter+c.XSpread, xlo, xhi, w)
		y0 := h - 1 - px(c.YCenter+c.YSpread, ylo, yhi, h)
		y1 := h - 1 - px(c.YCenter-c.YSpread, ylo, yhi, h)
		if x1-x0 < 2 {
			x1 = x0 + 2
		}
		if y1-y0 < 2 {
			y1 = y0 + 2
		}
		for y := y0; y <= y1 && y < h; y++ {
			for x := x0; x <= x1 && x < w; x++ {
				ci := uint8(2)
				if y == y0 || y == y1 || x == x0 || x == x1 {
					ci = 1
				}
				if img.ColorIndexAt(x, y) == 0 || ci == 1 {
					img.SetColorIndex(x, y, ci)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := gif.Encode(&buf, img, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

package dbnet

import (
	"math"
	"testing"
	"time"

	"repro/internal/colseg"
	"repro/internal/minidb"
)

// TestAnalyticsOverWire: the analytics op ships a query and gets back an
// aggregate bit-identical to a local run — vectorized when the server has a
// segment store, row-at-a-time when it does not.
func TestAnalyticsOverWire(t *testing.T) {
	db, err := minidb.Open(t.TempDir(), eventsSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	b := &minidb.Batch{}
	for i := int64(0); i < 2000; i++ {
		kind := "flare"
		if i%3 == 0 {
			kind = "quiet"
		}
		b.Insert("events", minidb.Row{
			minidb.I(i), minidb.S(kind), minidb.F(float64(i) / 2), minidb.Null(),
		})
	}
	if _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	store, err := colseg.Open(colseg.Options{DB: db, SegmentRows: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RefreshAll(); err != nil {
		t.Fatal(err)
	}

	srv, err := Listen("127.0.0.1:0", Options{DB: db, Analytics: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	q := colseg.Query{
		Table: "events", Agg: colseg.AggStats, Col: "flux", GroupBy: "kind",
		Where: []minidb.Pred{{Col: "id", Op: minidb.OpLt, Val: minidb.I(1500)}},
	}
	got, err := cl.RunAnalytics(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := colseg.RunRows(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != want.Rows || got.NonNull != want.NonNull ||
		math.Float64bits(got.Sum) != math.Float64bits(want.Sum) ||
		math.Float64bits(got.Min) != math.Float64bits(want.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(want.Max) {
		t.Fatalf("wire result %+v != local %+v", got, want)
	}
	if len(got.Groups) != len(want.Groups) {
		t.Fatalf("groups %d != %d", len(got.Groups), len(want.Groups))
	}
	for i := range got.Groups {
		g, w := got.Groups[i], want.Groups[i]
		if g.Key != w.Key || g.Rows != w.Rows || math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			t.Fatalf("group %d: wire %+v != local %+v", i, g, w)
		}
	}
	if !got.Stats.Vectorized {
		t.Fatalf("server with a store did not vectorize: %+v", got.Stats)
	}

	// A server without a store still answers — row fallback, same numbers.
	srv2, err := Listen("127.0.0.1:0", Options{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv2.Close() })
	cl2, err := Dial(ClientOptions{Addr: srv2.Addr(), CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl2.Close() })
	got2, err := cl2.RunAnalytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Stats.Vectorized {
		t.Fatal("store-less server claimed a vectorized run")
	}
	if got2.Rows != want.Rows || math.Float64bits(got2.Sum) != math.Float64bits(want.Sum) {
		t.Fatalf("fallback result %+v != local %+v", got2, want)
	}

	// Malformed analytics bodies must be rejected, not crash the server.
	if _, err := cl.RunAnalytics(colseg.Query{Table: "events", Agg: colseg.AggStats}); err == nil {
		t.Fatal("invalid query (stats without column) accepted")
	}
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection unhealthy after rejected analytics: %v", err)
	}
}

package dbnet

import (
	"strings"
	"testing"
	"time"

	"repro/internal/minidb"
)

func TestApplyRoundTrip(t *testing.T) {
	db, srv, cl := newPair(t, Options{})

	var b minidb.Batch
	for i := int64(0); i < 10; i++ {
		b.Insert("events", minidb.Row{minidb.I(i), minidb.S("flare"), minidb.F(1), minidb.Null()})
	}
	ids, err := cl.Apply(&b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("rowids=%d, want 10", len(ids))
	}
	if n := db.TableLen("events"); n != 10 {
		t.Fatalf("events=%d, want 10", n)
	}
	// A mixed batch referencing the first one's rowids, still one round trip.
	var b2 minidb.Batch
	b2.Update("events", ids[0], minidb.Row{minidb.I(0), minidb.S("burst"), minidb.F(2), minidb.Null()})
	b2.Delete("events", ids[1])
	if _, err := cl.Apply(&b2); err != nil {
		t.Fatal(err)
	}
	if n := db.TableLen("events"); n != 9 {
		t.Fatalf("events=%d, want 9", n)
	}
	// The whole exercise charged 2 capacity ops: batching is what the wire
	// capacity model rewards.
	if got := srv.Ops(); got != 2 {
		t.Fatalf("charged ops=%d, want 2", got)
	}
	if ids, err := cl.Apply(nil); err != nil || ids != nil {
		t.Fatalf("nil batch: %v %v", ids, err)
	}
}

func TestInsertBatch(t *testing.T) {
	db, _, cl := newPair(t, Options{})
	rows := make([]minidb.Row, 25)
	for i := range rows {
		rows[i] = minidb.Row{minidb.I(int64(i)), minidb.S("flare"), minidb.F(0), minidb.Null()}
	}
	ids, err := cl.InsertBatch("events", rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 25 {
		t.Fatalf("rowids=%d, want 25", len(ids))
	}
	if n := db.TableLen("events"); n != 25 {
		t.Fatalf("events=%d, want 25", n)
	}
}

// TestApplyMidBatchError: a batch whose Nth op fails must be rejected whole
// — nothing applied — and the connection must stay usable.
func TestApplyMidBatchError(t *testing.T) {
	db, _, cl := newPair(t, Options{})
	insertEvent(t, cl, 1, "flare")

	var bad minidb.Batch
	bad.Insert("events", minidb.Row{minidb.I(2), minidb.S("flare"), minidb.F(0), minidb.Null()})
	bad.Insert("events", minidb.Row{minidb.I(1), minidb.S("dup"), minidb.F(0), minidb.Null()}) // duplicate pk
	bad.Insert("events", minidb.Row{minidb.I(3), minidb.S("flare"), minidb.F(0), minidb.Null()})
	_, err := cl.Apply(&bad)
	if err == nil || !IsRemote(err) || !strings.Contains(err.Error(), "duplicate primary key") {
		t.Fatalf("want remote duplicate-pk error, got %v", err)
	}
	if n := db.TableLen("events"); n != 1 {
		t.Fatalf("failed batch leaked rows: events=%d", n)
	}
	// The connection survived the rejection: next call works.
	insertEvent(t, cl, 2, "flare")
	if n := db.TableLen("events"); n != 2 {
		t.Fatalf("events=%d, want 2", n)
	}
}

func TestBatchInsideTransactionRejected(t *testing.T) {
	_, _, cl := newPair(t, Options{})
	// A raw connection that begins a transaction, then attempts a batch:
	// the server must refuse (batches route through group commit, which a
	// held writer lock would deadlock against).
	wc, err := cl.get()
	if err != nil {
		t.Fatal(err)
	}
	defer wc.c.Close()
	resp, err := wc.roundTrip([]byte{opBegin}, 5*time.Second, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseResponse(resp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var b minidb.Batch
	b.Insert("events", minidb.Row{minidb.I(9), minidb.S("x"), minidb.F(0), minidb.Null()})
	req := getFrameBuf()
	req.WriteByte(opExecBatch)
	minidb.WirePutBatch(req, &b)
	resp, err = wc.roundTrip(req.Bytes(), 5*time.Second, DefaultMaxFrame)
	putFrameBuf(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseResponse(resp, 5*time.Second); err == nil || !strings.Contains(err.Error(), "batch inside transaction") {
		t.Fatalf("want batch-inside-transaction rejection, got %v", err)
	}
	// Roll back so the deferred close doesn't leave a lingering txn.
	if resp, err = wc.roundTrip([]byte{opRollback}, 5*time.Second, DefaultMaxFrame); err != nil {
		t.Fatal(err)
	}
	if _, err := parseResponse(resp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestOversizedBatchRejected: a batch frame beyond the server's MaxFrame is
// refused at the framing layer; the client sees a transport error and a
// fresh connection still works.
func TestOversizedBatchRejected(t *testing.T) {
	_, _, cl := newPair(t, Options{MaxFrame: 4096})
	big := strings.Repeat("x", 8192)
	var b minidb.Batch
	b.Insert("events", minidb.Row{minidb.I(1), minidb.S(big), minidb.F(0), minidb.Null()})
	if _, err := cl.Apply(&b); err == nil {
		t.Fatal("oversized batch accepted")
	}
	// The server dropped that connection; the pool dials a new one.
	insertEvent(t, cl, 1, "flare")
}

func TestPipelineBasic(t *testing.T) {
	db, srv, cl := newPair(t, Options{})
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 40
	for i := int64(0); i < n; i++ {
		p.Insert("events", minidb.Row{minidb.I(i), minidb.S("flare"), minidb.F(1), minidb.Null()})
	}
	if p.Len() != n {
		t.Fatalf("Len=%d, want %d", p.Len(), n)
	}
	results, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results=%d, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if len(r.RowIDs) != 1 {
			t.Fatalf("request %d: rowids=%v", i, r.RowIDs)
		}
	}
	// Reuse after Flush: updates and a batch in the same window.
	p.Update("events", results[0].RowIDs[0], minidb.Row{minidb.I(0), minidb.S("burst"), minidb.F(2), minidb.Null()})
	p.Delete("events", results[1].RowIDs[0])
	var b minidb.Batch
	b.Insert("events", minidb.Row{minidb.I(100), minidb.S("burst"), minidb.F(3), minidb.Null()})
	p.Apply(&b)
	results, err = p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
	}
	if got := len(results[2].RowIDs); got != 1 {
		t.Fatalf("batch rowids=%d, want 1", got)
	}
	if n := db.TableLen("events"); n != 40 {
		t.Fatalf("events=%d, want 40", n)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ops charged for 43 pipelined requests: %d", srv.Ops())
}

// TestPipelineMidStreamError: a rejected request mid-window must land in
// its own slot; every other request still completes and the connection
// stays healthy.
func TestPipelineMidStreamError(t *testing.T) {
	db, _, cl := newPair(t, Options{})
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Insert("events", minidb.Row{minidb.I(1), minidb.S("flare"), minidb.F(0), minidb.Null()})
	p.Insert("events", minidb.Row{minidb.I(1), minidb.S("dup"), minidb.F(0), minidb.Null()}) // duplicate pk
	p.Insert("events", minidb.Row{minidb.I(2), minidb.S("flare"), minidb.F(0), minidb.Null()})
	results, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good requests failed: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil || !IsRemote(results[1].Err) {
		t.Fatalf("want remote error in slot 1, got %v", results[1].Err)
	}
	if n := db.TableLen("events"); n != 2 {
		t.Fatalf("events=%d, want 2", n)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineConnectionDrop: the server dies between pipelined requests;
// every unanswered request fails with a transport error, the pipeline is
// poisoned, and Close reports the failure.
func TestPipelineConnectionDrop(t *testing.T) {
	_, srv, cl := newPair(t, Options{})
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		p.Insert("events", minidb.Row{minidb.I(i), minidb.S("flare"), minidb.F(0), minidb.Null()})
	}
	srv.Close() // kills every live connection mid-window
	results, err := p.Flush()
	if err == nil {
		t.Fatal("flush succeeded over a dead server")
	}
	if len(results) != 5 {
		t.Fatalf("results=%d, want 5", len(results))
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("no request reported the transport failure")
	}
	// Poisoned: further windows fail immediately.
	p.Insert("events", minidb.Row{minidb.I(9), minidb.S("x"), minidb.F(0), minidb.Null()})
	if _, err := p.Flush(); err == nil {
		t.Fatal("poisoned pipeline flushed")
	}
	if err := p.Close(); err == nil {
		t.Fatal("close of failed pipeline reported success")
	}
}

func TestPipelineAfterCloseFails(t *testing.T) {
	_, _, cl := newPair(t, Options{})
	p, err := cl.Pipeline()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p.Insert("events", minidb.Row{minidb.I(1), minidb.S("x"), minidb.F(0), minidb.Null()})
	if _, err := p.Flush(); err == nil {
		t.Fatal("flush after close succeeded")
	}
}

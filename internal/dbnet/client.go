package dbnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/colseg"
	"repro/internal/minidb"
	"repro/internal/overload"
)

// ClientOptions configures a remote engine client.
type ClientOptions struct {
	// Addr is the dbnet server address.
	Addr string
	// PoolSize caps pooled idle connections (not concurrency — calls
	// beyond the pool dial fresh connections). Default 4.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline covering write+read of one
	// round trip. Default 15s — generous, because calls queue behind the
	// server's capacity station when the shared database saturates. The
	// budget also rides every request as an opDeadline envelope, so the
	// server refuses work it cannot answer in time instead of servicing
	// requests whose callers have already given up.
	CallTimeout time.Duration
	// MaxFrame bounds response frames. Default DefaultMaxFrame.
	MaxFrame int
	// Dial overrides connection establishment — the fault-injection seam.
	// Nil means net.DialTimeout.
	Dial func(network, addr string, timeout time.Duration) (net.Conn, error)
}

// Client is a remote minidb engine: the same Engine interface the DM
// programs against, backed by pooled connections to a dbnet server.
// Schemas are cached client-side (they are fixed at runtime); table
// epochs are never cached — they are what keeps every replica's query
// cache coherent.
type Client struct {
	opts ClientOptions

	mu     sync.Mutex
	idle   []*wireConn
	closed bool

	schemaMu sync.RWMutex
	schemas  map[string]*minidb.Schema
}

var _ minidb.Engine = (*Client)(nil)

// wireConn is one pooled connection.
type wireConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// Dial connects to a dbnet server and verifies it with a ping.
func Dial(opts ClientOptions) (*Client, error) {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 4
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 15 * time.Second
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	c := &Client{opts: opts, schemas: make(map[string]*minidb.Schema)}
	if err := c.Ping(); err != nil {
		return nil, fmt.Errorf("dbnet: dial %s: %w", opts.Addr, err)
	}
	return c, nil
}

func (c *Client) dial() (*wireConn, error) {
	dialer := c.opts.Dial
	if dialer == nil {
		dialer = net.DialTimeout
	}
	conn, err := dialer("tcp", c.opts.Addr, c.opts.DialTimeout)
	if err != nil {
		return nil, &UnavailableError{Addr: c.opts.Addr, Err: err}
	}
	return &wireConn{
		c:  conn,
		br: bufio.NewReader(conn),
		bw: bufio.NewWriter(conn),
	}, nil
}

// get leases a connection from the pool, dialing if none is idle.
func (c *Client) get() (*wireConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("dbnet: client closed")
	}
	if n := len(c.idle); n > 0 {
		wc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return wc, nil
	}
	c.mu.Unlock()
	return c.dial()
}

// put returns a healthy connection to the pool.
func (c *Client) put(wc *wireConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.opts.PoolSize {
		c.idle = append(c.idle, wc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	wc.c.Close()
}

// Close closes every idle connection and refuses further calls.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, wc := range c.idle {
		wc.c.Close()
	}
	c.idle = nil
	return nil
}

// roundTrip performs one request/response on a connection under the
// per-call deadline.
func (wc *wireConn) roundTrip(req []byte, deadline time.Duration, maxFrame int) ([]byte, error) {
	wc.c.SetDeadline(time.Now().Add(deadline))
	if err := writeFrame(wc.bw, req); err != nil {
		return nil, err
	}
	if err := wc.bw.Flush(); err != nil {
		return nil, err
	}
	return readFrame(wc.br, maxFrame)
}

// remoteError is an error the server reported: the request was
// delivered and rejected, as opposed to a transport failure.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return e.msg }

// IsRemote reports whether err is an application-level error from the
// server rather than a transport failure. Callers use this to decide
// whether a retry elsewhere is safe.
func IsRemote(err error) bool {
	var re *remoteError
	return errors.As(err, &re)
}

// parseResponse splits a response frame into payload or server error.
// budget is the deadline budget the request carried, echoed into
// DeadlineError for diagnostics.
func parseResponse(resp []byte, budget time.Duration) (*bytes.Reader, error) {
	if len(resp) == 0 {
		return nil, fmt.Errorf("dbnet: empty response")
	}
	r := bytes.NewReader(resp[1:])
	switch resp[0] {
	case statusOK:
		return r, nil
	case statusErr:
		msg, err := minidb.WireString(r)
		if err != nil {
			return nil, fmt.Errorf("dbnet: mangled error response: %w", err)
		}
		return nil, &remoteError{msg: msg}
	case statusDeadline:
		return nil, &DeadlineError{Budget: budget}
	case statusOverload:
		ms, err := minidb.WireUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("dbnet: mangled overload response: %w", err)
		}
		if ms > uint64(time.Hour/time.Millisecond) {
			ms = uint64(time.Hour / time.Millisecond)
		}
		return nil, &overload.Error{
			Tier:       "db",
			RetryAfter: time.Duration(ms) * time.Millisecond,
		}
	default:
		return nil, fmt.Errorf("dbnet: unknown response status %d", resp[0])
	}
}

// beginDeadlineEnv starts a request buffer with the opDeadline envelope
// carrying the call's budget in milliseconds; the inner request follows.
func beginDeadlineEnv(b *bytes.Buffer, budget time.Duration) {
	b.WriteByte(opDeadline)
	ms := uint64(budget / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	minidb.WirePutUvarint(b, ms)
}

// call runs one pooled request: encode (into a pooled buffer), round-trip,
// decode. Transport errors discard the connection; server errors recycle it.
func (c *Client) call(op byte, enc func(*bytes.Buffer), dec func(*bytes.Reader) error) error {
	req := getFrameBuf()
	defer putFrameBuf(req)
	beginDeadlineEnv(req, c.opts.CallTimeout)
	req.WriteByte(op)
	if enc != nil {
		enc(req)
	}
	wc, err := c.get()
	if err != nil {
		return err
	}
	resp, err := wc.roundTrip(req.Bytes(), c.opts.CallTimeout, c.opts.MaxFrame)
	if err != nil {
		wc.c.Close()
		return &UnavailableError{Addr: c.opts.Addr, Err: err}
	}
	r, err := parseResponse(resp, c.opts.CallTimeout)
	if err != nil {
		if IsRemote(err) || IsDeadline(err) || overload.IsOverload(err) {
			c.put(wc) // the connection itself is fine
		} else {
			wc.c.Close()
		}
		return err
	}
	if dec != nil {
		if err := dec(r); err != nil {
			wc.c.Close()
			return fmt.Errorf("dbnet: decode response: %w", err)
		}
	}
	c.put(wc)
	return nil
}

// Ping round-trips a no-op; the cluster health checker calls this.
func (c *Client) Ping() error { return c.call(opPing, nil, nil) }

// Query runs a structured query on the remote engine.
func (c *Client) Query(q minidb.Query) (*minidb.Result, error) {
	var res *minidb.Result
	err := c.call(opQuery,
		func(b *bytes.Buffer) { minidb.WirePutQuery(b, q) },
		func(r *bytes.Reader) (e error) { res, e = minidb.WireResult(r); return })
	return res, err
}

// Get fetches one row by rowid.
func (c *Client) Get(table string, rowid int64) (minidb.Row, error) {
	var row minidb.Row
	err := c.call(opGet,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutVarint(b, rowid)
		},
		func(r *bytes.Reader) (e error) { row, e = minidb.WireRow(r); return })
	return row, err
}

// Insert runs a single-statement insert.
func (c *Client) Insert(table string, row minidb.Row) (int64, error) {
	var id int64
	err := c.call(opInsert,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutRow(b, row)
		},
		func(r *bytes.Reader) (e error) { id, e = minidb.WireVarint(r); return })
	return id, err
}

// Update runs a single-statement update.
func (c *Client) Update(table string, rowid int64, row minidb.Row) error {
	return c.call(opUpdate, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
		minidb.WirePutRow(b, row)
	}, nil)
}

// Delete runs a single-statement delete.
func (c *Client) Delete(table string, rowid int64) error {
	return c.call(opDelete, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
	}, nil)
}

// Apply ships a whole mutation batch as ONE wire round trip; the server
// commits it atomically through the engine's group-commit path and returns
// the insert rowids in order. This is the bulk-ingest workhorse: where the
// serial loader pays ~30 round trips per telemetry unit, the batched one
// pays ~3.
func (c *Client) Apply(b *minidb.Batch) ([]int64, error) {
	if b == nil || b.Len() == 0 {
		return nil, nil
	}
	var ids []int64
	err := c.call(opExecBatch,
		func(buf *bytes.Buffer) { minidb.WirePutBatch(buf, b) },
		func(r *bytes.Reader) (e error) { ids, e = wireRowIDs(r); return })
	return ids, err
}

// InsertBatch inserts many rows into one table in one round trip and one
// remote transaction, returning their rowids.
func (c *Client) InsertBatch(table string, rows []minidb.Row) ([]int64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	var ids []int64
	err := c.call(opInsertBatch,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutUvarint(b, uint64(len(rows)))
			for _, row := range rows {
				minidb.WirePutRow(b, row)
			}
		},
		func(r *bytes.Reader) (e error) { ids, e = wireRowIDs(r); return })
	return ids, err
}

// TableNames lists the remote tables.
func (c *Client) TableNames() []string {
	var names []string
	err := c.call(opTableNames, nil, func(r *bytes.Reader) error {
		n, err := minidb.WireUvarint(r)
		if err != nil {
			return err
		}
		names = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := minidb.WireString(r)
			if err != nil {
				return err
			}
			names = append(names, s)
		}
		return nil
	})
	if err != nil {
		return nil
	}
	return names
}

// TableLen returns the remote table's live row count (-1 on failure or
// unknown table, matching the local engine's unknown-table convention).
func (c *Client) TableLen(name string) int {
	n := int64(-1)
	err := c.call(opTableLen,
		func(b *bytes.Buffer) { minidb.WirePutString(b, name) },
		func(r *bytes.Reader) (e error) { n, e = minidb.WireVarint(r); return })
	if err != nil {
		return -1
	}
	return int(n)
}

// TableEpoch returns the remote table's commit epoch. Always a fresh
// round trip: a stale epoch could validate a stale cache entry. Returns
// 0 on transport failure, which no live table ever reports (epochs start
// at 1), so failed reads can never validate a cache hit.
func (c *Client) TableEpoch(name string) uint64 {
	var epoch uint64
	err := c.call(opTableEpoch,
		func(b *bytes.Buffer) { minidb.WirePutString(b, name) },
		func(r *bytes.Reader) (e error) { epoch, e = minidb.WireUvarint(r); return })
	if err != nil {
		return 0
	}
	return epoch
}

// Schema returns the remote table's schema, cached after first fetch —
// schemas are fixed while the system runs, so this is safe and saves a
// round trip on every DM query plan.
func (c *Client) Schema(name string) *minidb.Schema {
	c.schemaMu.RLock()
	s, ok := c.schemas[name]
	c.schemaMu.RUnlock()
	if ok {
		return s
	}
	err := c.call(opSchema,
		func(b *bytes.Buffer) { minidb.WirePutString(b, name) },
		func(r *bytes.Reader) (e error) { s, e = minidb.WireSchema(r); return })
	if err != nil {
		return nil
	}
	if s != nil {
		c.schemaMu.Lock()
		c.schemas[name] = s
		c.schemaMu.Unlock()
	}
	return s
}

// Stats returns the remote engine's counters (zero value on failure).
func (c *Client) Stats() minidb.StatsSnapshot {
	var st minidb.StatsSnapshot
	c.call(opStats, nil,
		func(r *bytes.Reader) (e error) { st, e = minidb.WireStats(r); return })
	return st
}

// CreateCountView registers a count view on the remote engine.
// Identical re-registration is a no-op server-side, so every replica
// may call it.
func (c *Client) CreateCountView(name, table, groupBy string) error {
	return c.call(opCreateView, func(b *bytes.Buffer) {
		minidb.WirePutString(b, name)
		minidb.WirePutString(b, table)
		minidb.WirePutString(b, groupBy)
	}, nil)
}

// ViewCount returns one group's count from a remote count view.
func (c *Client) ViewCount(name string, key minidb.Value) (int, error) {
	var n int64
	err := c.call(opViewCount,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, name)
			minidb.WirePutValue(b, key)
		},
		func(r *bytes.Reader) (e error) { n, e = minidb.WireVarint(r); return })
	return int(n), err
}

// RunAnalytics ships an aggregate query to the server and decodes the
// (small) result — the segments never cross the wire. Client implements
// colseg.Runner, so a replica DM can hand it straight to its analytics
// path.
func (c *Client) RunAnalytics(q colseg.Query) (*colseg.Result, error) {
	var res *colseg.Result
	err := c.call(opAnalytics,
		func(b *bytes.Buffer) { colseg.EncodeQuery(b, q) },
		func(r *bytes.Reader) (e error) { res, e = colseg.DecodeResult(r); return })
	return res, err
}

var _ colseg.Runner = (*Client)(nil)

// BeginTx opens an interactive transaction. The transaction owns one
// connection end to end — the server routes that connection's operations
// through its transaction until Commit or Rollback — and holds the
// remote writer lock the whole time, exactly like a local *Txn.
//
// The Engine interface cannot return an error here; failures surface on
// the transaction's first operation and on Commit.
func (c *Client) BeginTx() minidb.Tx {
	tx := &remoteTx{client: c}
	wc, err := c.get()
	if err != nil {
		tx.err = err
		return tx
	}
	var req bytes.Buffer
	beginDeadlineEnv(&req, c.opts.CallTimeout)
	req.WriteByte(opBegin)
	// Begin blocks on the remote writer lock, so give it the full call
	// timeout rather than failing fast under write contention.
	resp, err := wc.roundTrip(req.Bytes(), c.opts.CallTimeout, c.opts.MaxFrame)
	if err != nil {
		wc.c.Close()
		tx.err = &UnavailableError{Addr: c.opts.Addr, Err: err}
		return tx
	}
	if _, err := parseResponse(resp, c.opts.CallTimeout); err != nil {
		wc.c.Close()
		tx.err = err
		return tx
	}
	tx.wc = wc
	return tx
}

// remoteTx is a transaction pinned to one connection.
type remoteTx struct {
	client *Client
	wc     *wireConn
	err    error // sticky: begin failure or first transport failure
	done   bool
}

var _ minidb.Tx = (*remoteTx)(nil)

func (t *remoteTx) call(op byte, enc func(*bytes.Buffer), dec func(*bytes.Reader) error) error {
	if t.err != nil {
		return t.err
	}
	if t.done {
		return fmt.Errorf("dbnet: transaction already finished")
	}
	var req bytes.Buffer
	beginDeadlineEnv(&req, t.client.opts.CallTimeout)
	req.WriteByte(op)
	if enc != nil {
		enc(&req)
	}
	resp, err := t.wc.roundTrip(req.Bytes(), t.client.opts.CallTimeout, t.client.opts.MaxFrame)
	if err != nil {
		// Transport failure mid-transaction: the connection is the
		// transaction, so it is dead. The server reaps it on its side.
		t.err = &UnavailableError{Addr: t.client.opts.Addr, Err: err}
		t.wc.c.Close()
		t.done = true
		return t.err
	}
	r, err := parseResponse(resp, t.client.opts.CallTimeout)
	if err != nil {
		if IsDeadline(err) {
			// A deadline refusal mid-transaction poisons it: the server may
			// have rolled the transaction back (commit refusal does), so the
			// safe shared state is "this transaction is over".
			t.err = err
			t.wc.c.Close()
			t.done = true
			return err
		}
		// Application errors — including overload refusals, which execute
		// nothing and leave the transaction open server-side — keep the
		// transaction usable; the caller decides whether to back off,
		// retry the operation, or roll back.
		return err
	}
	if dec != nil {
		if err := dec(r); err != nil {
			t.err = fmt.Errorf("dbnet: decode response: %w", err)
			t.wc.c.Close()
			t.done = true
			return t.err
		}
	}
	return nil
}

func (t *remoteTx) Insert(table string, row minidb.Row) (int64, error) {
	var id int64
	err := t.call(opInsert,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutRow(b, row)
		},
		func(r *bytes.Reader) (e error) { id, e = minidb.WireVarint(r); return })
	return id, err
}

func (t *remoteTx) Update(table string, rowid int64, row minidb.Row) error {
	return t.call(opUpdate, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
		minidb.WirePutRow(b, row)
	}, nil)
}

func (t *remoteTx) Delete(table string, rowid int64) error {
	return t.call(opDelete, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
	}, nil)
}

func (t *remoteTx) Query(q minidb.Query) (*minidb.Result, error) {
	var res *minidb.Result
	err := t.call(opQuery,
		func(b *bytes.Buffer) { minidb.WirePutQuery(b, q) },
		func(r *bytes.Reader) (e error) { res, e = minidb.WireResult(r); return })
	return res, err
}

func (t *remoteTx) Get(table string, rowid int64) (minidb.Row, error) {
	var row minidb.Row
	err := t.call(opGet,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutVarint(b, rowid)
		},
		func(r *bytes.Reader) (e error) { row, e = minidb.WireRow(r); return })
	return row, err
}

func (t *remoteTx) Commit() error {
	if err := t.call(opCommit, nil, nil); err != nil {
		t.finish(false)
		return err
	}
	t.finish(true)
	return nil
}

func (t *remoteTx) Rollback() {
	if t.err != nil || t.done {
		return
	}
	if err := t.call(opRollback, nil, nil); err != nil {
		t.finish(false)
		return
	}
	t.finish(true)
}

// finish releases the transaction's connection — back to the pool if the
// wire is still in a known-good state, closed otherwise.
func (t *remoteTx) finish(healthy bool) {
	if t.done {
		return
	}
	t.done = true
	if healthy && t.err == nil && t.wc != nil {
		t.client.put(t.wc)
	} else if t.wc != nil {
		t.wc.c.Close()
	}
}

package dbnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/minidb"
)

func eventsSchema() *minidb.Schema {
	return &minidb.Schema{
		Name: "events",
		Columns: []minidb.Column{
			{Name: "id", Type: minidb.IntType},
			{Name: "kind", Type: minidb.StringType},
			{Name: "flux", Type: minidb.FloatType},
			{Name: "note", Type: minidb.StringType, Nullable: true},
		},
		PrimaryKey: "id",
		Indexes:    []string{"kind"},
	}
}

// newPair starts a served DB and one client against it.
func newPair(t *testing.T, opts Options) (*minidb.DB, *Server, *Client) {
	t.Helper()
	db, err := minidb.Open(t.TempDir(), eventsSchema())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts.DB = db
	srv, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return db, srv, cl
}

func insertEvent(t *testing.T, e minidb.Engine, id int64, kind string) int64 {
	t.Helper()
	rowid, err := e.Insert("events", minidb.Row{
		minidb.I(id), minidb.S(kind), minidb.F(float64(id) / 2), minidb.Null(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rowid
}

// TestRemoteEngineRoundTrip drives every Engine method over the wire and
// checks the remote answers match the local engine's.
func TestRemoteEngineRoundTrip(t *testing.T) {
	db, srv, cl := newPair(t, Options{})

	for i := int64(0); i < 20; i++ {
		kind := "flare"
		if i%3 == 0 {
			kind = "quiet"
		}
		insertEvent(t, cl, i, kind)
	}

	// Query with predicates, projection, order, limit.
	q := minidb.Query{
		Table:   "events",
		Where:   []minidb.Pred{{Col: "kind", Op: minidb.OpEq, Val: minidb.S("flare")}},
		OrderBy: []minidb.Order{{Col: "id", Desc: true}},
		Limit:   5,
		Project: []string{"id", "flux"},
	}
	remote, err := cl.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	local, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote.Rows) != len(local.Rows) || len(remote.Rows) != 5 {
		t.Fatalf("remote rows = %d, local = %d", len(remote.Rows), len(local.Rows))
	}
	for i := range remote.Rows {
		for j := range remote.Rows[i] {
			if !minidb.Equal(remote.Rows[i][j], local.Rows[i][j]) {
				t.Fatalf("row %d col %d: remote %v local %v", i, j, remote.Rows[i][j], local.Rows[i][j])
			}
		}
	}
	if remote.Plan.Kind != local.Plan.Kind {
		t.Fatalf("plan kind: remote %v local %v", remote.Plan.Kind, local.Plan.Kind)
	}

	// Count query.
	cres, err := cl.Query(minidb.Query{Table: "events", Count: true})
	if err != nil || cres.Count != 20 {
		t.Fatalf("count = %+v err %v", cres, err)
	}

	// Get present and absent.
	row, err := cl.Get("events", 0)
	if err != nil || row == nil || row[0].Int() != 0 {
		t.Fatalf("get = %v %v", row, err)
	}
	if row, err := cl.Get("events", 9999); err != nil || row != nil {
		t.Fatalf("absent get = %v %v", row, err)
	}

	// Update and delete round-trip.
	if err := cl.Update("events", 1, minidb.Row{
		minidb.I(1), minidb.S("updated"), minidb.F(9), minidb.S("note"),
	}); err != nil {
		t.Fatal(err)
	}
	if row, _ := db.Get("events", 1); row[1].Str() != "updated" {
		t.Fatalf("update not visible locally: %v", row)
	}
	if err := cl.Delete("events", 2); err != nil {
		t.Fatal(err)
	}
	if row, _ := db.Get("events", 2); row != nil {
		t.Fatal("delete not visible locally")
	}

	// Metadata surface.
	if names := cl.TableNames(); len(names) != 1 || names[0] != "events" {
		t.Fatalf("names = %v", names)
	}
	if n := cl.TableLen("events"); n != db.TableLen("events") {
		t.Fatalf("len = %d want %d", n, db.TableLen("events"))
	}
	if n := cl.TableLen("ghost"); n != -1 {
		t.Fatalf("unknown table len = %d", n)
	}
	if e := cl.TableEpoch("events"); e != db.TableEpoch("events") || e == 0 {
		t.Fatalf("epoch = %d want %d", e, db.TableEpoch("events"))
	}
	s := cl.Schema("events")
	if s == nil || s.Name != "events" || len(s.Columns) != 4 || s.PrimaryKey != "id" {
		t.Fatalf("schema = %+v", s)
	}
	if cl.Schema("ghost") != nil {
		t.Fatal("ghost schema")
	}
	// Second fetch is served from the client cache: no extra server op.
	before := srv.FreeOps()
	if cl.Schema("events") == nil {
		t.Fatal("cached schema lost")
	}
	if srv.FreeOps() != before {
		t.Fatal("cached schema still hit the server")
	}

	st := cl.Stats()
	if st.Inserts != 20 || st.Queries == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// Count views over the wire; re-registration is a no-op.
	if err := cl.CreateCountView("by-kind", "events", "kind"); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateCountView("by-kind", "events", "kind"); err != nil {
		t.Fatalf("idempotent re-registration: %v", err)
	}
	// ids 0..19, kind quiet when i%3==0: 0,3,6,9,12,15,18 = 7 rows; the
	// update hit id 1 (flare) and the delete hit id 2 (flare), so quiet
	// stays at 7.
	n, err := cl.ViewCount("by-kind", minidb.S("quiet"))
	if err != nil || n != 7 {
		t.Fatalf("quiet count = %d err %v", n, err)
	}

	if srv.Ops() == 0 || srv.Txns() != 0 {
		t.Fatalf("server counters: ops=%d txns=%d", srv.Ops(), srv.Txns())
	}
}

// TestRemoteTransactions exercises interactive transactions: atomic
// commit, rollback, and writer exclusion between two clients.
func TestRemoteTransactions(t *testing.T) {
	db, srv, cl := newPair(t, Options{})

	// Commit: all three rows land atomically, epoch bumps once.
	epoch0 := cl.TableEpoch("events")
	tx := cl.BeginTx()
	for i := int64(0); i < 3; i++ {
		if _, err := tx.Insert("events", minidb.Row{
			minidb.I(i), minidb.S("txn"), minidb.F(0), minidb.Null(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Reads inside the transaction see its own writes.
	res, err := tx.Query(minidb.Query{Table: "events", Count: true})
	if err != nil || res.Count != 3 {
		t.Fatalf("in-txn count = %+v err %v", res, err)
	}
	if row, err := tx.Get("events", 0); err != nil || row == nil {
		t.Fatalf("in-txn get = %v %v", row, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.TableLen("events") != 3 {
		t.Fatalf("after commit len = %d", db.TableLen("events"))
	}
	if e := cl.TableEpoch("events"); e != epoch0+1 {
		t.Fatalf("epoch after txn commit = %d want %d", e, epoch0+1)
	}

	// Rollback leaves nothing.
	tx2 := cl.BeginTx()
	if _, err := tx2.Insert("events", minidb.Row{
		minidb.I(50), minidb.S("doomed"), minidb.F(0), minidb.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	tx2.Rollback()
	if db.TableLen("events") != 3 {
		t.Fatalf("after rollback len = %d", db.TableLen("events"))
	}

	// Writer exclusion: a second client's transaction blocks until the
	// first commits — the remote writer lock is the engine's writer lock.
	cl2, err := Dial(ClientOptions{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()

	tx3 := cl.BeginTx()
	if _, err := tx3.Insert("events", minidb.Row{
		minidb.I(60), minidb.S("first"), minidb.F(0), minidb.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx4 := cl2.BeginTx()
		order <- "second-began"
		if _, err := tx4.Insert("events", minidb.Row{
			minidb.I(61), minidb.S("second"), minidb.F(0), minidb.Null(),
		}); err != nil {
			t.Error(err)
		}
		if err := tx4.Commit(); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(100 * time.Millisecond)
	select {
	case <-order:
		t.Fatal("second writer began before first committed")
	default:
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if db.TableLen("events") != 5 {
		t.Fatalf("after serialized writers len = %d", db.TableLen("events"))
	}
	if srv.Txns() != 4 {
		t.Fatalf("txns = %d", srv.Txns())
	}
}

// TestRemoteErrors: application errors cross the wire, are identifiable
// as remote, and do not poison the pooled connection.
func TestRemoteErrors(t *testing.T) {
	_, _, cl := newPair(t, Options{})

	_, err := cl.Query(minidb.Query{Table: "ghost"})
	if err == nil {
		t.Fatal("unknown table query served")
	}
	if !IsRemote(err) {
		t.Fatalf("expected remote error, got %T %v", err, err)
	}
	// Connection survives the error: next call succeeds.
	insertEvent(t, cl, 1, "flare")
	if n := cl.TableLen("events"); n != 1 {
		t.Fatalf("len after recovered error = %d", n)
	}

	// Transaction-scope violations are remote errors too.
	tx := cl.BeginTx()
	if _, err := tx.Insert("ghost", minidb.Row{minidb.I(1)}); err == nil || !IsRemote(err) {
		t.Fatalf("in-txn unknown table: %v", err)
	}
	// Transaction still usable after an application error.
	if _, err := tx.Insert("events", minidb.Row{
		minidb.I(2), minidb.S("ok"), minidb.F(0), minidb.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := cl.TableLen("events"); n != 2 {
		t.Fatalf("len = %d", n)
	}
}

// TestTransportErrorsAfterShutdown: calls against a dead server report
// transport (not remote) errors, including mid-transaction.
func TestTransportErrorsAfterShutdown(t *testing.T) {
	_, srv, cl := newPair(t, Options{})
	insertEvent(t, cl, 1, "flare")
	srv.Close()

	if _, err := cl.Query(minidb.Query{Table: "events"}); err == nil || IsRemote(err) {
		t.Fatalf("query on dead server: %v", err)
	}
	if cl.TableEpoch("events") != 0 {
		t.Fatal("epoch on dead server should read 0 (never validates a cache)")
	}
	tx := cl.BeginTx()
	if _, err := tx.Insert("events", minidb.Row{
		minidb.I(2), minidb.S("x"), minidb.F(0), minidb.Null(),
	}); err == nil {
		t.Fatal("insert on dead server accepted")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit on dead server accepted")
	}
}

// TestIdleTransactionReaped: a client that begins a transaction and goes
// silent must not hold the shared writer lock forever.
func TestIdleTransactionReaped(t *testing.T) {
	db, srv, cl := newPair(t, Options{TxnIdleTimeout: 150 * time.Millisecond})

	tx := cl.BeginTx()
	if _, err := tx.Insert("events", minidb.Row{
		minidb.I(1), minidb.S("limbo"), minidb.F(0), minidb.Null(),
	}); err != nil {
		t.Fatal(err)
	}
	// Go silent. The server reaps the transaction, rolling it back and
	// releasing the writer lock; a direct local write then proceeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.TxnTimeouts() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle transaction never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rowid := insertEvent(t, db, 2, "after")
	if db.TableLen("events") != 1 {
		t.Fatalf("len = %d (limbo row committed?)", db.TableLen("events"))
	}
	if row, _ := db.Get("events", rowid); row == nil || row[1].Str() != "after" {
		t.Fatalf("surviving row = %v", row)
	}
}

// TestCapacityCeiling: with the station rate capped, N concurrent
// clients cannot push the server past MaxOpsPerSec — the Figure 5 shared
// database ceiling, observed over a real socket.
func TestCapacityCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const rate = 400.0
	const totalOps = 200
	db, _, cl := newPair(t, Options{MaxOpsPerSec: rate})
	_ = db
	insertEvent(t, cl, 1, "flare")

	var wg sync.WaitGroup
	start := time.Now()
	errs := make(chan error, totalOps)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(ClientOptions{Addr: cl.opts.Addr})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < totalOps/8; i++ {
				if _, err := c.Query(minidb.Query{Table: "events", Count: true}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	floor := time.Duration(float64(totalOps) / rate * 0.85 * float64(time.Second))
	if elapsed < floor {
		t.Fatalf("%d ops at %v ops/s cap finished in %v — station not limiting (floor %v)",
			totalOps, rate, elapsed, floor)
	}
	// Epoch reads are exempt: they must not be slowed by a saturated
	// station (they guard cache coherence, not capacity).
	t0 := time.Now()
	for i := 0; i < 50; i++ {
		cl.TableEpoch("events")
	}
	if d := time.Since(t0); d > time.Duration(50.0/rate*float64(time.Second)) {
		t.Fatalf("50 epoch reads took %v — exempt ops are being charged", d)
	}
}

// TestMalformedFrames: garbage opcodes get an error response; oversized
// frames drop the connection without wedging the server.
func TestMalformedFrames(t *testing.T) {
	_, srv, cl := newPair(t, Options{MaxFrame: 1 << 16})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Unknown opcode: server answers with an error frame.
	if err := writeFrame(conn, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 || resp[0] != statusErr {
		t.Fatalf("unknown opcode response = %v", resp)
	}

	// Oversized frame header: server closes the connection.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<30)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(conn, DefaultMaxFrame); err == nil {
		t.Fatal("oversized frame did not drop the connection")
	}

	// Truncated body on a fresh connection: decode error, not a hang.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := writeFrame(conn2, []byte{opGet, 200}); err != nil { // string length 200, no bytes
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp2, err := readFrame(conn2, DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2) == 0 || resp2[0] != statusErr {
		t.Fatalf("truncated request response = %v", resp2)
	}

	// The server is still healthy for well-formed clients.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestWireCodecFuzzSeedCases spot-checks tricky codec inputs end to end.
func TestWireCodecValues(t *testing.T) {
	_, _, cl := newPair(t, Options{})
	rows := []minidb.Row{
		{minidb.I(-1 << 62), minidb.S(""), minidb.F(-0.0), minidb.Null()},
		{minidb.I(1 << 62), minidb.S("héliosphère ☀"), minidb.F(1e308), minidb.S("x")},
		{minidb.I(0), minidb.S(string([]byte{0, 1, 2, 255})), minidb.F(0.5), minidb.Null()},
	}
	for i, r := range rows {
		if _, err := cl.Insert("events", r); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
	}
	for i, want := range rows {
		got, err := cl.Get("events", int64(i))
		if err != nil || got == nil {
			t.Fatalf("get %d: %v %v", i, got, err)
		}
		for j := range want {
			if !minidb.Equal(got[j], want[j]) {
				t.Fatalf("row %d col %d: got %v want %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	_, srv, cl := newPair(t, Options{MaxOpsPerSec: 5})
	insertEvent(t, cl, 1, "flare")
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := cl.Query(minidb.Query{Table: "events", Count: true})
			done <- err
		}()
	}
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	for i := 0; i < 4; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("client call wedged after server close")
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial(ClientOptions{Addr: "127.0.0.1:1", DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func ExampleClient() {
	dir, _ := os.MkdirTemp("", "dbnet-example")
	defer os.RemoveAll(dir)
	db, _ := minidb.Open(dir, eventsSchema())
	defer db.Close()
	srv, _ := Listen("127.0.0.1:0", Options{DB: db, MaxOpsPerSec: 120})
	defer srv.Close()

	cl, _ := Dial(ClientOptions{Addr: srv.Addr()})
	defer cl.Close()
	cl.Insert("events", minidb.Row{minidb.I(1), minidb.S("flare"), minidb.F(3.5), minidb.Null()})
	res, _ := cl.Query(minidb.Query{Table: "events", Count: true})
	fmt.Println(res.Count)
	// Output: 1
}

package dbnet

import (
	"errors"
	"fmt"
	"time"
)

// UnavailableError is a transport-level failure talking to the database
// tier: a dial that never connected, a partition, a reset, a deadline
// that expired with no response. The request may or may not have reached
// the server — callers must treat non-idempotent operations as
// indeterminate. It carries the DBUnavailable marker method so upper
// layers (dm, cluster) can classify it structurally without importing
// this package.
type UnavailableError struct {
	Addr string
	Err  error
}

func (e *UnavailableError) Error() string {
	return fmt.Sprintf("dbnet: database %s unavailable: %v", e.Addr, e.Err)
}

func (e *UnavailableError) Unwrap() error { return e.Err }

// DBUnavailable marks this error as "the shared database tier is not
// answering" — distinct from a replica being down (retry elsewhere may
// help) and from an application error (retry never helps).
func (e *UnavailableError) DBUnavailable() bool { return true }

// IsUnavailable reports whether err carries the DBUnavailable marker.
func IsUnavailable(err error) bool {
	var u interface{ DBUnavailable() bool }
	return errors.As(err, &u) && u.DBUnavailable()
}

// DeadlineError reports that the server refused service because the
// request's propagated deadline budget would have expired in the
// capacity queue. The database is alive — just too far behind to answer
// this caller in time. No capacity was consumed; no state changed.
type DeadlineError struct {
	Budget time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("dbnet: server refused service: %v deadline would expire in queue", e.Budget)
}

// Timeout satisfies net.Error-style checks.
func (e *DeadlineError) Timeout() bool { return true }

// IsDeadline reports whether err is a server-side deadline refusal.
func IsDeadline(err error) bool {
	var d *DeadlineError
	return errors.As(err, &d)
}

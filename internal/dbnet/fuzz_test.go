package dbnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/minidb"
	"repro/internal/overload"
	"repro/internal/schema"
)

// Fuzz targets for the wire decode paths — the exact bytes a hostile or
// damaged peer can put on the dbnet socket. The invariant is never
// "decodes successfully"; it is "never panics, never over-allocates off a
// lying length prefix, and every request that parses gets exactly one
// well-formed response frame".

// FuzzReadFrame feeds raw socket bytes to the framing layer: malformed
// length prefixes, truncated frames, frames that lie about their size.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var b bytes.Buffer
		writeFrame(&b, payload)
		return b.Bytes()
	}
	f.Add(frame([]byte{opPing}))
	f.Add(frame(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})          // 4 GiB length prefix
	f.Add([]byte{0x10, 0x00, 0x00, 0x00, opQuery}) // truncated: promises 16, delivers 1
	f.Add([]byte{0x01, 0x00})                      // truncated header
	f.Add(frame([]byte{opDeadline, 0x80}))         // unterminated budget uvarint
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := readFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if len(payload) > 1<<16 {
			t.Fatalf("frame exceeded max: %d bytes", len(payload))
		}
		// A well-framed payload must survive re-framing byte-identically.
		var b bytes.Buffer
		writeFrame(&b, payload)
		re, err := readFrame(&b, 1<<16)
		if err != nil || !bytes.Equal(re, payload) {
			t.Fatalf("re-framing not canonical: %v", err)
		}
	})
}

// FuzzDispatch drives arbitrary request payloads (opcode + body, including
// the opDeadline envelope) through the server's dispatcher against a real
// in-memory engine. Every input must produce exactly one response frame
// whose status byte is known, without panicking and without opening a
// transaction the response doesn't admit to.
func FuzzDispatch(f *testing.F) {
	valid := func(op byte, enc func(*bytes.Buffer)) []byte {
		var b bytes.Buffer
		b.WriteByte(op)
		if enc != nil {
			enc(&b)
		}
		return b.Bytes()
	}
	f.Add(valid(opPing, nil))
	f.Add(valid(opQuery, func(b *bytes.Buffer) {
		minidb.WirePutQuery(b, minidb.Query{Table: "hle"})
	}))
	f.Add(valid(opTableEpoch, func(b *bytes.Buffer) { minidb.WirePutString(b, "hle") }))
	f.Add(valid(opDeadline, func(b *bytes.Buffer) {
		minidb.WirePutUvarint(b, 50)
		b.WriteByte(opPing)
	}))
	f.Add(valid(opDeadline, func(b *bytes.Buffer) {
		minidb.WirePutUvarint(b, 1<<40) // absurd budget: must clamp, not overflow
		b.WriteByte(opQuery)
	}))
	f.Add([]byte{opInsertBatch, 0x03, 'h', 'l', 'e', 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // lying row count
	f.Add([]byte{0x00})                                                             // opcode 0: unknown
	f.Add([]byte{opDeadline})                                                       // empty envelope

	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { db.Close() })
	srv := &Server{opts: Options{MaxFrame: DefaultMaxFrame}, db: db, station: newSerialStation(0)}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		resp, tx := srv.dispatch(data[0], bytes.NewReader(data[1:]), nil, time.Time{})
		defer putFrameBuf(resp)
		if tx != nil {
			// A fuzzed frame may legitimately open a transaction (opBegin);
			// it must then be a healthy one we can roll back.
			tx.Rollback()
		}
		if resp.Len() == 0 {
			t.Fatal("empty response frame")
		}
		status := resp.Bytes()[0]
		if status != statusOK && status != statusErr && status != statusDeadline && status != statusOverload {
			t.Fatalf("unknown response status %d", status)
		}
		// The response must itself be frameable and parseable by the client.
		var b bytes.Buffer
		writeFrame(&b, resp.Bytes())
		payload, err := readFrame(&b, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("response does not frame: %v", err)
		}
		if _, err := parseResponse(payload, time.Second); err != nil {
			if !IsRemote(err) && !IsDeadline(err) && !overload.IsOverload(err) {
				t.Fatalf("client cannot parse server response: %v", err)
			}
		}
	})
}

// FuzzParseResponse feeds raw response frames to the client-side parser
// — status bytes a hostile or damaged server could send, with the new
// statusOverload retry-after body front and center. The parser must
// never panic; every overload status must either produce a typed
// *overload.Error with a sane retry-after or a decode error, never a
// silent success and never an unbounded hint.
func FuzzParseResponse(f *testing.F) {
	resp := func(status byte, body func(*bytes.Buffer)) []byte {
		var b bytes.Buffer
		b.WriteByte(status)
		if body != nil {
			body(&b)
		}
		return b.Bytes()
	}
	f.Add(resp(statusOK, nil))
	f.Add(resp(statusErr, func(b *bytes.Buffer) { minidb.WirePutString(b, "no such table") }))
	f.Add(resp(statusDeadline, nil))
	f.Add(overloadFrame(250 * time.Millisecond).Bytes())
	f.Add(overloadFrame(0).Bytes())                    // hint floor: encodes as 1ms
	f.Add(resp(statusOverload, nil))                   // missing retry-after body
	f.Add(resp(statusOverload, func(b *bytes.Buffer) { // absurd hint: must clamp
		minidb.WirePutUvarint(b, 1<<50)
	}))
	f.Add(resp(statusOverload, func(b *bytes.Buffer) { b.WriteByte(0x80) })) // unterminated uvarint
	f.Add([]byte{})                                                          // empty response
	f.Add([]byte{0xFF})                                                      // unknown status
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := parseResponse(data, time.Second)
		if err == nil {
			if len(data) == 0 || data[0] != statusOK {
				t.Fatalf("non-OK response %v parsed without error", data)
			}
			_ = r
			return
		}
		if overload.IsOverload(err) {
			if len(data) == 0 || data[0] != statusOverload {
				t.Fatalf("overload error from status %v", data[0])
			}
			ra, ok := overload.RetryAfterOf(err)
			if !ok || ra <= 0 || ra > time.Hour {
				t.Fatalf("overload retry-after out of bounds: %v", ra)
			}
		}
	})
}

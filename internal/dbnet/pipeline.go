package dbnet

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/minidb"
)

// Pipeline batches N independent requests onto one connection and reads the
// N replies in order — classic wire pipelining. The server is synchronous
// per connection, so replies arrive in exactly request order; the client
// needs no correlation ids, only strict in-order matching. Combined with
// the server's flush coalescing, a flushed pipeline costs one round trip
// of latency for the whole window instead of one per request.
//
// A Pipeline leases one pooled connection at creation and is not safe for
// concurrent use. Queue requests (nothing is sent yet), then Flush to send
// them all and collect per-request results. Server-side rejections (say, a
// duplicate key on the third insert) land in that request's PipeResult and
// the remaining replies still match; a transport failure kills the
// connection and fails every unanswered request.
type Pipeline struct {
	c      *Client
	wc     *wireConn
	queued []pipeReq
	err    error // sticky transport error; the connection is gone
}

type pipeReq struct {
	frame []byte
	dec   func(*bytes.Reader, *PipeResult)
}

// PipeResult is the outcome of one pipelined request: the insert rowids it
// produced (nil for updates/deletes) and its error, if any.
type PipeResult struct {
	RowIDs []int64
	Err    error
}

// Pipeline leases a connection for a pipelined request window.
func (c *Client) Pipeline() (*Pipeline, error) {
	wc, err := c.get()
	if err != nil {
		return nil, err
	}
	return &Pipeline{c: c, wc: wc}, nil
}

func (p *Pipeline) enqueue(op byte, enc func(*bytes.Buffer), dec func(*bytes.Reader, *PipeResult)) {
	buf := getFrameBuf()
	buf.WriteByte(op)
	if enc != nil {
		enc(buf)
	}
	frame := make([]byte, buf.Len())
	copy(frame, buf.Bytes())
	putFrameBuf(buf)
	p.queued = append(p.queued, pipeReq{frame: frame, dec: dec})
}

// Insert queues a single-row insert.
func (p *Pipeline) Insert(table string, row minidb.Row) {
	p.enqueue(opInsert,
		func(b *bytes.Buffer) {
			minidb.WirePutString(b, table)
			minidb.WirePutRow(b, row)
		},
		func(r *bytes.Reader, res *PipeResult) {
			id, err := minidb.WireVarint(r)
			if err != nil {
				res.Err = err
				return
			}
			res.RowIDs = []int64{id}
		})
}

// Update queues a single-row update.
func (p *Pipeline) Update(table string, rowid int64, row minidb.Row) {
	p.enqueue(opUpdate, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
		minidb.WirePutRow(b, row)
	}, nil)
}

// Delete queues a single-row delete.
func (p *Pipeline) Delete(table string, rowid int64) {
	p.enqueue(opDelete, func(b *bytes.Buffer) {
		minidb.WirePutString(b, table)
		minidb.WirePutVarint(b, rowid)
	}, nil)
}

// Apply queues a whole mutation batch (one atomic transaction server-side).
func (p *Pipeline) Apply(b *minidb.Batch) {
	p.enqueue(opExecBatch,
		func(buf *bytes.Buffer) { minidb.WirePutBatch(buf, b) },
		func(r *bytes.Reader, res *PipeResult) { res.RowIDs, res.Err = wireRowIDs(r) })
}

// Len returns the number of queued, unflushed requests.
func (p *Pipeline) Len() int { return len(p.queued) }

// Flush sends every queued request back to back, then reads their replies
// strictly in order. The returned slice has one PipeResult per queued
// request. Per-request server errors are delivered in their slot and do
// not disturb later replies; a transport error fails this and every later
// request and poisons the pipeline.
func (p *Pipeline) Flush() ([]PipeResult, error) {
	reqs := p.queued
	p.queued = nil
	results := make([]PipeResult, len(reqs))
	if p.err == nil && p.wc == nil {
		p.err = fmt.Errorf("dbnet: pipeline closed")
	}
	if p.err != nil {
		for i := range results {
			results[i].Err = p.err
		}
		return results, p.err
	}
	if len(reqs) == 0 {
		return results, nil
	}
	// One deadline covers the whole window: the requests ride together, so
	// a per-request deadline would just be the same wall-clock budget.
	// Every frame carries that budget as its opDeadline envelope.
	p.wc.c.SetDeadline(time.Now().Add(p.c.opts.CallTimeout))
	envBuf := getFrameBuf()
	beginDeadlineEnv(envBuf, p.c.opts.CallTimeout)
	env := envBuf.Bytes()
	defer putFrameBuf(envBuf)
	for _, rq := range reqs {
		if err := writeFrameEnv(p.wc.bw, env, rq.frame); err != nil {
			return p.fail(results, 0, &UnavailableError{Addr: p.c.opts.Addr, Err: fmt.Errorf("pipeline write: %w", err)})
		}
	}
	if err := p.wc.bw.Flush(); err != nil {
		return p.fail(results, 0, &UnavailableError{Addr: p.c.opts.Addr, Err: fmt.Errorf("pipeline write: %w", err)})
	}
	for i := range reqs {
		resp, err := readFrame(p.wc.br, p.c.opts.MaxFrame)
		if err != nil {
			return p.fail(results, i, &UnavailableError{Addr: p.c.opts.Addr, Err: fmt.Errorf("pipeline read: %w", err)})
		}
		r, err := parseResponse(resp, p.c.opts.CallTimeout)
		if err != nil {
			// Server-side rejection: this request alone failed; the
			// connection and the remaining replies are fine.
			results[i].Err = err
			continue
		}
		if reqs[i].dec != nil {
			reqs[i].dec(r, &results[i])
		}
	}
	return results, nil
}

// fail poisons the pipeline from request index from onward.
func (p *Pipeline) fail(results []PipeResult, from int, err error) ([]PipeResult, error) {
	p.err = err
	p.wc.c.Close()
	for i := from; i < len(results); i++ {
		results[i].Err = err
	}
	return results, err
}

// Close releases the pipeline's connection: back to the pool when the wire
// is healthy and fully drained, closed otherwise. Queued-but-unflushed
// requests are discarded (nothing was ever sent for them).
func (p *Pipeline) Close() error {
	if p.wc == nil {
		return p.err
	}
	wc := p.wc
	p.wc = nil
	p.queued = nil
	if p.err != nil {
		return p.err // already closed by fail
	}
	wc.c.SetDeadline(time.Time{})
	p.c.put(wc)
	return nil
}

// Package dbnet serves a minidb database over TCP so that N middle-tier
// replicas can share one metadata DBMS. HEDC's middle tier "scales by
// replication" while the database tier stays singular (Figure 5); this
// package is that singular tier's network face. The protocol is
// deliberately small: length-prefixed binary frames carrying the same
// structured queries, rows, and values the engine already encodes in its
// WAL — no SQL text, no generic serialization layer.
//
// Framing: every message is a 4-byte little-endian payload length
// followed by the payload. Requests are [opcode][body]; responses are
// [status][body] where status 0 is success and 1 carries an error
// string. Each connection is synchronous — one request, one response —
// which keeps interactive transactions trivial: a connection that issued
// Begin simply routes subsequent operations through its transaction.
package dbnet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Request opcodes.
const (
	opQuery byte = iota + 1
	opGet
	opInsert
	opUpdate
	opDelete
	opTableNames
	opTableLen
	opTableEpoch
	opSchema
	opStats
	opCreateView
	opViewCount
	opBegin
	opCommit
	opRollback
	opPing
	// Batch opcodes (appended for wire stability). Both commit atomically
	// via the engine's group-commit path and are charged as ONE operation
	// against the capacity station: the round trip is what a real DBMS
	// charges for a bulk statement, and amortizing it is the point.
	opInsertBatch // many rows into one table
	opExecBatch   // a full minidb.Batch (mixed tables and op kinds)
	// opDeadline is an envelope, not an operation: [uvarint budgetMillis]
	// followed by a complete inner request. It propagates the client's
	// remaining deadline so the server can refuse work the client will
	// never collect — when the capacity station's queue alone would blow
	// the budget, the server answers statusDeadline immediately instead
	// of servicing a request whose caller has already timed out.
	opDeadline
	// opAnalytics ships a colseg aggregate query (scan→filter→aggregate)
	// to the node that holds the columnar segments. Body: an encoded
	// colseg.Query; response: an encoded colseg.Result. One wire round
	// trip replaces shipping millions of rows to the client.
	opAnalytics
)

// Response status bytes.
const (
	statusOK  byte = 0
	statusErr byte = 1
	// statusDeadline: the server refused service because the request's
	// propagated deadline would have expired before its reply departed.
	// No capacity was consumed and the connection remains healthy.
	statusDeadline byte = 2
	// statusOverload: the server refused service because the capacity
	// station's projected queue delay exceeded its configured bound —
	// the request was doomed to wait, so it is turned away at the socket
	// with a hint. Body: [uvarint retryAfterMillis], the projected delay
	// until the backlog the request saw has drained. No capacity was
	// consumed and the connection remains healthy.
	statusOverload byte = 3
)

// DefaultMaxFrame bounds a single frame; metadata rows are small, so
// anything larger is a corrupt or hostile peer.
const DefaultMaxFrame = 16 << 20

// frameBufs pools the scratch buffers both sides encode frames into —
// request bodies on the client, response bodies on the server. Ingest
// pushes thousands of frames per second through these paths; pooling keeps
// the encode cost at zero steady-state allocations.
var frameBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getFrameBuf() *bytes.Buffer {
	b := frameBufs.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

func putFrameBuf(b *bytes.Buffer) {
	if b.Cap() > 1<<20 {
		return // don't let one giant frame pin memory in the pool
	}
	frameBufs.Put(b)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeFrameEnv writes one length-prefixed frame whose payload is the
// concatenation env+payload — the deadline envelope prepended without
// copying the request body.
func writeFrameEnv(w io.Writer, env, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(env)+len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(env); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame of at most max bytes.
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > max {
		return nil, fmt.Errorf("dbnet: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Package dbnet serves a minidb database over TCP so that N middle-tier
// replicas can share one metadata DBMS. HEDC's middle tier "scales by
// replication" while the database tier stays singular (Figure 5); this
// package is that singular tier's network face. The protocol is
// deliberately small: length-prefixed binary frames carrying the same
// structured queries, rows, and values the engine already encodes in its
// WAL — no SQL text, no generic serialization layer.
//
// Framing: every message is a 4-byte little-endian payload length
// followed by the payload. Requests are [opcode][body]; responses are
// [status][body] where status 0 is success and 1 carries an error
// string. Each connection is synchronous — one request, one response —
// which keeps interactive transactions trivial: a connection that issued
// Begin simply routes subsequent operations through its transaction.
package dbnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Request opcodes.
const (
	opQuery byte = iota + 1
	opGet
	opInsert
	opUpdate
	opDelete
	opTableNames
	opTableLen
	opTableEpoch
	opSchema
	opStats
	opCreateView
	opViewCount
	opBegin
	opCommit
	opRollback
	opPing
)

// Response status bytes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// DefaultMaxFrame bounds a single frame; metadata rows are small, so
// anything larger is a corrupt or hostile peer.
const DefaultMaxFrame = 16 << 20

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame of at most max bytes.
func readFrame(r io.Reader, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int(n) > max {
		return nil, fmt.Errorf("dbnet: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

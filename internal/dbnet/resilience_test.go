package dbnet

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/minidb"
	"repro/internal/overload"
	"repro/internal/schema"
)

func newResilienceServer(t *testing.T, opts Options) *Server {
	t.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts.DB = db
	srv, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestDeadlinePropagation: with the station saturated, requests whose
// budget cannot cover the queue are refused server-side with a typed
// DeadlineError — fast — instead of waiting out the queue and timing out
// on the wire.
func TestDeadlinePropagation(t *testing.T) {
	// 10 ops/s: each op holds the station 100ms. A 150ms budget fits one
	// op in an empty queue but not behind a backlog.
	srv := newResilienceServer(t, Options{MaxOpsPerSec: 10})
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	q := minidb.Query{Table: "hle"}
	var wg sync.WaitGroup
	var refused, ok, other int
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Query(q)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case IsDeadline(err):
				refused++
			default:
				other++
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if ok == 0 {
		t.Fatal("no request was served at all")
	}
	if refused == 0 {
		t.Fatalf("no request was deadline-refused (ok=%d other=%d)", ok, other)
	}
	if other != 0 {
		t.Fatalf("%d requests failed with non-deadline errors", other)
	}
	if srv.DeadlineRefusals() != int64(refused) {
		t.Fatalf("server counted %d refusals, client saw %d", srv.DeadlineRefusals(), refused)
	}
	// 8 serial ops would take 800ms; refusals mean the whole burst
	// resolves near the budget, not the backlog.
	if elapsed > 600*time.Millisecond {
		t.Fatalf("burst took %v; deadline refusals should resolve it faster", elapsed)
	}
}

// TestDeadlineRefusalKeepsConnection: a refused request does not cost the
// connection — the very next call on the same client succeeds.
func TestDeadlineRefusalKeepsConnection(t *testing.T) {
	srv := newResilienceServer(t, Options{MaxOpsPerSec: 1000})
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: time.Second, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Force a refusal by hand: a 1ms budget against a station backlog.
	req := getFrameBuf()
	beginDeadlineEnv(req, time.Millisecond)
	req.WriteByte(opQuery)
	minidb.WirePutQuery(req, minidb.Query{Table: "hle"})
	wc, err := cl.get()
	if err != nil {
		t.Fatal(err)
	}
	srv.station.mu.Lock()
	srv.station.next = time.Now().Add(time.Second) // synthetic backlog
	srv.station.mu.Unlock()
	resp, err := wc.roundTrip(req.Bytes(), time.Second, DefaultMaxFrame)
	putFrameBuf(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parseResponse(resp, time.Millisecond); !IsDeadline(err) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	cl.put(wc)
	srv.station.mu.Lock()
	srv.station.next = time.Time{}
	srv.station.mu.Unlock()

	if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
		t.Fatalf("call after refusal failed: %v", err)
	}
}

// TestOverloadRefusal: with MaxQueueDelay set and the station backed up
// past it, requests are turned away at the socket with a typed overload
// error carrying a retry-after hint — without consuming capacity and
// without costing the connection.
func TestOverloadRefusal(t *testing.T) {
	srv := newResilienceServer(t, Options{
		MaxOpsPerSec:  1000,
		MaxQueueDelay: 100 * time.Millisecond,
	})
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: 5 * time.Second, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Synthetic backlog: the station's next free slot is 1s out, far past
	// the 100ms queue-delay bound. The generous 5s call budget means the
	// deadline check would NOT refuse this — only overload control does.
	srv.station.mu.Lock()
	srv.station.next = time.Now().Add(time.Second)
	srv.station.mu.Unlock()

	_, err = cl.Query(minidb.Query{Table: "hle"})
	if err == nil {
		t.Fatal("query through a saturated station succeeded")
	}
	if !errors.Is(err, overload.ErrOverloaded) {
		t.Fatalf("error %v does not match overload.ErrOverloaded", err)
	}
	if !overload.IsOverload(err) {
		t.Fatalf("error %v lacks the Overloaded marker", err)
	}
	ra, ok := overload.RetryAfterOf(err)
	if !ok || ra <= 0 {
		t.Fatalf("overload error carries no retry-after hint: %v", err)
	}
	// The hint is the projected wait: roughly the 1s backlog.
	if ra < 500*time.Millisecond || ra > 2*time.Second {
		t.Fatalf("retry-after = %v, want ≈1s projected backlog", ra)
	}
	if got := srv.OverloadRefusals(); got != 1 {
		t.Fatalf("server counted %d overload refusals, want 1", got)
	}

	// No capacity consumed: the backlog horizon did not move.
	srv.station.mu.Lock()
	next := srv.station.next
	srv.station.next = time.Time{}
	srv.station.mu.Unlock()
	if next.After(time.Now().Add(1100 * time.Millisecond)) {
		t.Fatalf("refusal consumed station capacity: next = %v out", time.Until(next))
	}

	// The connection survives: the very next call on the same pool slot
	// succeeds once the backlog clears.
	if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
		t.Fatalf("call after overload refusal failed: %v", err)
	}
}

// TestOverloadSparesCommits: a transaction's commit is never
// overload-refused — the work is already done, and throwing it away is
// the worst possible goodput trade. Mid-transaction reads ARE refusable,
// and a refusal leaves the transaction usable.
func TestOverloadSparesCommits(t *testing.T) {
	srv := newResilienceServer(t, Options{
		MaxOpsPerSec:  1000,
		MaxQueueDelay: 50 * time.Millisecond,
	})
	cl, err := Dial(ClientOptions{Addr: srv.Addr(), CallTimeout: 5 * time.Second, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tx := cl.BeginTx()

	backlog := func(d time.Duration) {
		srv.station.mu.Lock()
		srv.station.next = time.Now().Add(d)
		srv.station.mu.Unlock()
	}

	// A read inside the tx is refused under backlog, and the tx survives.
	backlog(time.Second)
	if _, err := tx.Query(minidb.Query{Table: "hle"}); !overload.IsOverload(err) {
		t.Fatalf("in-tx query under backlog: err = %v, want overload", err)
	}
	backlog(0)
	if _, err := tx.Query(minidb.Query{Table: "hle"}); err != nil {
		t.Fatalf("tx poisoned by overload refusal: %v", err)
	}

	// Commit under the same backlog is admitted, not refused.
	backlog(time.Second)
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit was refused under backlog: %v", err)
	}
	backlog(0)
}

// TestUnavailableTyped: transport failures surface as UnavailableError
// carrying the DBUnavailable marker, at dial time and mid-call.
func TestUnavailableTyped(t *testing.T) {
	// Nothing listens here.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = Dial(ClientOptions{Addr: addr, DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if !IsUnavailable(err) {
		t.Fatalf("dial error %v lacks DBUnavailable marker", err)
	}

	// Mid-call: partition the wire under a live client.
	fnet := fault.NewNet()
	srv := newResilienceServer(t, Options{})
	cl, err := Dial(ClientOptions{
		Addr: srv.Addr(), CallTimeout: 200 * time.Millisecond,
		Dial: fnet.Dial,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
		t.Fatal(err)
	}
	fnet.SetFault(fnet.OpCount()+1, fault.NetPartition)
	defer fnet.ClearFault()
	start := time.Now()
	_, err = cl.Query(minidb.Query{Table: "hle"})
	if err == nil {
		t.Fatal("query through partition succeeded")
	}
	if !IsUnavailable(err) {
		t.Fatalf("partition error %v lacks DBUnavailable marker", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("partitioned call took %v, want ~CallTimeout", el)
	}
}

// TestFaultSeamAllModes drives one query through every injectable fault
// shape on the dbnet wire: the call must fail typed (or succeed, for pure
// latency) within the call timeout, and the client must recover to a
// working state after ClearFault.
func TestFaultSeamAllModes(t *testing.T) {
	modes := []fault.NetMode{
		fault.NetLatency, fault.NetPartition, fault.NetReset,
		fault.NetSlowDrip, fault.NetBlackHole, fault.NetDropHalf,
	}
	srv := newResilienceServer(t, Options{})
	for _, mode := range modes {
		t.Run(mode.String(), func(t *testing.T) {
			fnet := fault.NewNet()
			cl, err := Dial(ClientOptions{
				Addr: srv.Addr(), CallTimeout: 300 * time.Millisecond,
				DialTimeout: 300 * time.Millisecond, Dial: fnet.Dial,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			fnet.SetFault(fnet.OpCount()+2, mode)
			start := time.Now()
			var lastErr error
			for i := 0; i < 4; i++ {
				if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
					lastErr = err
					if !IsUnavailable(err) {
						t.Fatalf("fault surfaced untyped error: %v", err)
					}
				}
			}
			if el := time.Since(start); el > 3*time.Second {
				t.Fatalf("4 calls under fault took %v", el)
			}
			_ = lastErr
			fnet.ClearFault()
			if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
				t.Fatalf("query after heal: %v", err)
			}
		})
	}
}

// TestDeadlineEnvelopeMalformed: a hostile envelope (truncated budget, no
// inner op, nested envelope) gets an error response, not a hang or crash.
func TestDeadlineEnvelopeMalformed(t *testing.T) {
	srv := newResilienceServer(t, Options{})
	for i, raw := range [][]byte{
		{opDeadline},                      // no budget
		{opDeadline, 0x80},                // truncated uvarint
		{opDeadline, 0x05},                // budget but no inner op
		{opDeadline, 0x05, opDeadline, 5}, // nested envelope
	} {
		conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(2 * time.Second))
		if err := writeFrame(conn, raw); err != nil {
			t.Fatal(err)
		}
		resp, err := readFrame(conn, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(resp) == 0 || resp[0] != statusErr {
			t.Fatalf("case %d: response %v, want statusErr", i, resp)
		}
		conn.Close()
	}
	// The server is still fine.
	cl, err := Dial(ClientOptions{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Query(minidb.Query{Table: "hle"}); err != nil {
		t.Fatal(err)
	}
}

// TestStationRefusalConsumesNoCapacity: refused visits must not advance
// the departure clock, or doomed requests would starve live ones.
func TestStationRefusalConsumesNoCapacity(t *testing.T) {
	st := newSerialStation(100) // 10ms service
	deadline := time.Now().Add(time.Millisecond)
	for i := 0; i < 50; i++ {
		st.visit(deadline, 0) // most of these refuse
	}
	start := time.Now()
	if v, _ := st.visit(time.Now().Add(time.Second), 0); v != visitOK {
		t.Fatal("well-budgeted visit refused")
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("visit waited %v behind refused ops", el)
	}
}

func BenchmarkDeadlineEnvelope(b *testing.B) {
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	srv, err := Listen("127.0.0.1:0", Options{DB: db})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := Dial(ClientOptions{Addr: srv.Addr()})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cl.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

package dbnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colseg"
	"repro/internal/minidb"
)

// Options configures a database server.
type Options struct {
	// DB is the engine being served (normally a local *minidb.DB).
	DB minidb.Engine
	// MaxOpsPerSec caps query/write throughput, modeling the ~120
	// queries/second ceiling HEDC measured against its DBMS (§7.3).
	// Zero means unlimited.
	MaxOpsPerSec float64
	// MaxQueueDelay bounds the capacity station's projected queue wait:
	// a request that would sit longer than this before service is
	// refused at the socket with statusOverload and a retry-after hint,
	// instead of deepening a backlog nobody can drain. Zero disables
	// (requests queue without bound, the pre-overload-control behavior).
	// Commits are exempt — refusing a commit throws away a transaction's
	// completed work, the worst possible goodput trade.
	MaxQueueDelay time.Duration
	// TxnIdleTimeout bounds how long an interactive transaction may sit
	// idle holding the writer lock before the server rolls it back and
	// drops the connection. Default 10s.
	TxnIdleTimeout time.Duration
	// MaxFrame bounds request frames. Default DefaultMaxFrame.
	MaxFrame int
	// Analytics serves opAnalytics from columnar segments. Nil falls back
	// to a row-at-a-time scan over DB — still one round trip, just slower.
	Analytics colseg.Runner
	// Logger receives per-connection errors. Nil discards them.
	Logger *log.Logger
}

// Server serves one minidb engine to many replica clients.
type Server struct {
	opts    Options
	db      minidb.Engine
	station *serialStation
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	ops      atomic.Int64 // capacity-counted operations served
	freeOps  atomic.Int64 // exempt operations (epochs, schemas, pings)
	txns     atomic.Int64 // interactive transactions begun
	timeouts atomic.Int64 // transactions reaped by the idle timeout
	refused  atomic.Int64 // requests refused because their deadline would expire in queue
	sheds    atomic.Int64 // requests refused because the queue delay bound was exceeded
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, opts), nil
}

// Serve starts a server on an existing listener.
func Serve(ln net.Listener, opts Options) *Server {
	if opts.TxnIdleTimeout <= 0 {
		opts.TxnIdleTimeout = 10 * time.Second
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = DefaultMaxFrame
	}
	s := &Server{
		opts:    opts,
		db:      opts.DB,
		station: newSerialStation(opts.MaxOpsPerSec),
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Ops returns capacity-counted operations served so far.
func (s *Server) Ops() int64 { return s.ops.Load() }

// FreeOps returns capacity-exempt operations served so far.
func (s *Server) FreeOps() int64 { return s.freeOps.Load() }

// Txns returns interactive transactions begun; TxnTimeouts counts those
// reaped while idle.
func (s *Server) Txns() int64        { return s.txns.Load() }
func (s *Server) TxnTimeouts() int64 { return s.timeouts.Load() }

// DeadlineRefusals returns requests turned away because their propagated
// deadline would have expired before the capacity station could serve them.
func (s *Server) DeadlineRefusals() int64 { return s.refused.Load() }

// OverloadRefusals returns requests turned away with statusOverload
// because the station's projected queue delay exceeded MaxQueueDelay.
func (s *Server) OverloadRefusals() int64 { return s.sheds.Load() }

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain. The engine itself is not closed.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logger != nil {
		s.opts.Logger.Printf(format, args...)
	}
}

// handle runs one connection's request loop. A connection inside an
// interactive transaction reads under a deadline so a dead client cannot
// hold the single writer lock forever.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var tx minidb.Tx // non-nil while this connection is mid-transaction
	defer func() {
		if tx != nil {
			tx.Rollback()
		}
	}()

	for {
		if tx != nil {
			conn.SetReadDeadline(time.Now().Add(s.opts.TxnIdleTimeout))
		} else {
			conn.SetReadDeadline(time.Time{})
		}
		req, err := readFrame(br, s.opts.MaxFrame)
		if err != nil {
			var nerr net.Error
			if tx != nil && errors.As(err, &nerr) && nerr.Timeout() {
				s.timeouts.Add(1)
				s.logf("dbnet: %s: reaping idle transaction: %v", conn.RemoteAddr(), err)
			} else if !errors.Is(err, io.EOF) {
				s.logf("dbnet: %s: read: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if len(req) == 0 {
			s.logf("dbnet: %s: empty frame", conn.RemoteAddr())
			return
		}
		resp, newTx := s.dispatch(req[0], bytes.NewReader(req[1:]), tx, time.Time{})
		tx = newTx
		err = writeFrame(bw, resp.Bytes())
		putFrameBuf(resp)
		if err != nil {
			return
		}
		// Flush coalescing: when a pipelining client has already delivered
		// (part of) its next request, hold the response in the write buffer
		// and keep serving — one TCP segment then carries many replies.
		// Only flush before a read that could block on the network.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

func okFrame(body func(*bytes.Buffer)) *bytes.Buffer {
	b := getFrameBuf()
	b.WriteByte(statusOK)
	if body != nil {
		body(b)
	}
	return b
}

func errFrame(err error) *bytes.Buffer {
	b := getFrameBuf()
	b.WriteByte(statusErr)
	minidb.WirePutString(b, err.Error())
	return b
}

// deadlineFrame is the refusal response: the request's deadline budget
// would have expired before the station could serve it, so no work was
// done and no capacity consumed.
func deadlineFrame() *bytes.Buffer {
	b := getFrameBuf()
	b.WriteByte(statusDeadline)
	return b
}

// overloadFrame is the backpressure refusal: the station's projected
// queue wait exceeded the configured bound. The body carries the
// projected delay in milliseconds as the retry-after hint — coming back
// sooner than the backlog the request just saw can drain is guaranteed
// to be refused again.
func overloadFrame(retryAfter time.Duration) *bytes.Buffer {
	b := getFrameBuf()
	b.WriteByte(statusOverload)
	ms := uint64(retryAfter / time.Millisecond)
	if ms == 0 {
		ms = 1
	}
	minidb.WirePutUvarint(b, ms)
	return b
}

// dispatch decodes and executes one request. It returns the response
// frame (a pooled buffer the caller must return via putFrameBuf) and the
// connection's transaction state after the request. deadline is the
// client's propagated give-up instant (zero: none): capacity-charged
// operations whose queue departure would pass it are refused up front.
func (s *Server) dispatch(op byte, r *bytes.Reader, tx minidb.Tx, deadline time.Time) (resp *bytes.Buffer, txOut minidb.Tx) {
	txOut = tx
	fail := func(err error) (*bytes.Buffer, minidb.Tx) { return errFrame(err), txOut }

	switch op {
	case opDeadline:
		// Envelope: [uvarint budgetMillis][inner request]. The budget is
		// relative, so clock skew between client and server cancels out —
		// only the one-way trip time erodes it.
		ms, err := minidb.WireUvarint(r)
		if err != nil {
			return fail(fmt.Errorf("dbnet: mangled deadline envelope: %w", err))
		}
		inner, err := r.ReadByte()
		if err != nil {
			return fail(fmt.Errorf("dbnet: empty deadline envelope"))
		}
		if inner == opDeadline {
			return fail(fmt.Errorf("dbnet: nested deadline envelope"))
		}
		if ms > uint64(time.Hour/time.Millisecond) {
			ms = uint64(time.Hour / time.Millisecond)
		}
		return s.dispatch(inner, r, tx, time.Now().Add(time.Duration(ms)*time.Millisecond))

	case opPing:
		s.freeOps.Add(1)
		return okFrame(nil), txOut

	case opTableEpoch:
		// Epoch reads are exempt from the capacity model: they are the
		// cache-coherence heartbeat of every replica's query cache, tiny
		// on a real DBMS, and charging them would let cache *checks*
		// saturate the station the cache exists to protect.
		name, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		s.freeOps.Add(1)
		epoch := s.db.TableEpoch(name)
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutUvarint(b, epoch) }), txOut

	case opSchema:
		name, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		s.freeOps.Add(1)
		schema := s.db.Schema(name)
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutSchema(b, schema) }), txOut

	case opTableNames:
		s.freeOps.Add(1)
		names := s.db.TableNames()
		return okFrame(func(b *bytes.Buffer) {
			minidb.WirePutUvarint(b, uint64(len(names)))
			for _, n := range names {
				minidb.WirePutString(b, n)
			}
		}), txOut

	case opTableLen:
		name, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		s.freeOps.Add(1)
		n := s.db.TableLen(name)
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutVarint(b, int64(n)) }), txOut

	case opStats:
		s.freeOps.Add(1)
		st := s.db.Stats()
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutStats(b, st) }), txOut

	case opCreateView:
		name, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		groupBy, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		s.freeOps.Add(1)
		if err := s.db.CreateCountView(name, table, groupBy); err != nil {
			return fail(err)
		}
		return okFrame(nil), txOut

	case opQuery:
		q, err := minidb.WireQuery(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		var res *minidb.Result
		if tx != nil {
			res, err = tx.Query(q)
		} else {
			res, err = s.db.Query(q)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutResult(b, res) }), txOut

	case opGet:
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		rowid, err := minidb.WireVarint(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		var row minidb.Row
		if tx != nil {
			row, err = tx.Get(table, rowid)
		} else {
			row, err = s.db.Get(table, rowid)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutRow(b, row) }), txOut

	case opInsert:
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		row, err := minidb.WireRow(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		var id int64
		if tx != nil {
			id, err = tx.Insert(table, row)
		} else {
			id, err = s.db.Insert(table, row)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutVarint(b, id) }), txOut

	case opUpdate:
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		rowid, err := minidb.WireVarint(r)
		if err != nil {
			return fail(err)
		}
		row, err := minidb.WireRow(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		if tx != nil {
			err = tx.Update(table, rowid, row)
		} else {
			err = s.db.Update(table, rowid, row)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(nil), txOut

	case opDelete:
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		rowid, err := minidb.WireVarint(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		if tx != nil {
			err = tx.Delete(table, rowid)
		} else {
			err = s.db.Delete(table, rowid)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(nil), txOut

	case opInsertBatch:
		if tx != nil {
			return fail(fmt.Errorf("dbnet: batch inside transaction"))
		}
		table, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		n, err := minidb.WireUvarint(r)
		if err != nil {
			return fail(err)
		}
		if n > uint64(r.Len()) {
			return fail(fmt.Errorf("dbnet: batch row count %d exceeds payload", n))
		}
		var batch minidb.Batch
		for i := uint64(0); i < n; i++ {
			row, err := minidb.WireRow(r)
			if err != nil {
				return fail(err)
			}
			batch.Insert(table, row)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		ids, err := s.db.Apply(&batch)
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { wirePutRowIDs(b, ids) }), txOut

	case opExecBatch:
		if tx != nil {
			return fail(fmt.Errorf("dbnet: batch inside transaction"))
		}
		batch, err := minidb.WireBatch(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		ids, err := s.db.Apply(batch)
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { wirePutRowIDs(b, ids) }), txOut

	case opAnalytics:
		q, err := colseg.DecodeQuery(r)
		if err != nil {
			return fail(err)
		}
		// One aggregate scan is one operation against the capacity
		// station — that asymmetry (a full-table aggregate for the price
		// of one op) is exactly what the columnar path buys.
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		var res *colseg.Result
		if s.opts.Analytics != nil {
			res, err = s.opts.Analytics.RunAnalytics(q)
		} else {
			res, err = colseg.RunRows(s.db, q)
		}
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { colseg.EncodeResult(b, res) }), txOut

	case opViewCount:
		name, err := minidb.WireString(r)
		if err != nil {
			return fail(err)
		}
		key, err := minidb.WireValue(r)
		if err != nil {
			return fail(err)
		}
		if f := s.admit(deadline, true); f != nil {
			return f, txOut
		}
		n, err := s.db.ViewCount(name, key)
		if err != nil {
			return fail(err)
		}
		return okFrame(func(b *bytes.Buffer) { minidb.WirePutVarint(b, int64(n)) }), txOut

	case opBegin:
		if tx != nil {
			return fail(fmt.Errorf("dbnet: transaction already open on this connection"))
		}
		s.txns.Add(1)
		// BeginTx blocks on the engine's single writer lock; every
		// replica's writes serialize here, exactly as they would against
		// a shared DBMS.
		return okFrame(nil), s.db.BeginTx()

	case opCommit:
		if tx == nil {
			return fail(fmt.Errorf("dbnet: commit outside transaction"))
		}
		if f := s.admit(deadline, false); f != nil {
			// The committing client has already given up; holding the
			// writer lock for a reply nobody reads would starve everyone
			// else. Roll back — the client's transaction handle poisons
			// itself on the deadline status, so both sides agree it died.
			// (Overload never refuses a commit — admit's overloadable
			// flag is off — because the transaction's work is already
			// done and refusing it is the worst goodput trade possible.)
			tx.Rollback()
			return f, nil
		}
		txOut = nil
		if err := tx.Commit(); err != nil {
			return errFrame(err), nil
		}
		return okFrame(nil), nil

	case opRollback:
		if tx == nil {
			return fail(fmt.Errorf("dbnet: rollback outside transaction"))
		}
		txOut = nil
		tx.Rollback()
		return okFrame(nil), nil

	default:
		return fail(fmt.Errorf("dbnet: unknown opcode %d", op))
	}
}

// wirePutRowIDs / wireRowIDs encode a batch response's insert rowids.
func wirePutRowIDs(b *bytes.Buffer, ids []int64) {
	minidb.WirePutUvarint(b, uint64(len(ids)))
	for _, id := range ids {
		minidb.WirePutVarint(b, id)
	}
}

func wireRowIDs(r *bytes.Reader) ([]int64, error) {
	n, err := minidb.WireUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("dbnet: rowid count %d exceeds payload", n)
	}
	if n == 0 {
		return nil, nil
	}
	ids := make([]int64, n)
	for i := range ids {
		if ids[i], err = minidb.WireVarint(r); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// admit accounts one operation against the shared capacity station. It
// returns nil when the operation was served; otherwise a refusal frame —
// statusDeadline when the client's deadline would expire before service
// (work for a caller that already gave up is pure waste), statusOverload
// when the projected queue wait exceeds MaxQueueDelay (work the backlog
// dooms is refused at the socket with a retry-after hint). overloadable
// gates the latter: commits never refuse on overload, only on deadline.
func (s *Server) admit(deadline time.Time, overloadable bool) *bytes.Buffer {
	maxQueue := time.Duration(0)
	if overloadable {
		maxQueue = s.opts.MaxQueueDelay
	}
	switch verdict, wait := s.station.visit(deadline, maxQueue); verdict {
	case visitDeadline:
		s.refused.Add(1)
		return deadlineFrame()
	case visitOverload:
		s.sheds.Add(1)
		return overloadFrame(wait)
	}
	s.ops.Add(1)
	return nil
}

// serialStation models the database tier as a single serial service
// center: operations queue and depart at most rate per second no matter
// how many connections submit them. This is what makes the Figure 5
// ceiling observable over the network — past ~rate ops/s, added replicas
// add queueing delay, not throughput (§7.3).
type serialStation struct {
	service time.Duration // per-operation service demand; 0 = unlimited
	mu      sync.Mutex
	next    time.Time // when the station is next free
}

func newSerialStation(ratePerSec float64) *serialStation {
	st := &serialStation{}
	if ratePerSec > 0 {
		st.service = time.Duration(float64(time.Second) / ratePerSec)
	}
	return st
}

// visitVerdict is the station's admission decision.
type visitVerdict int

const (
	visitOK       visitVerdict = iota
	visitDeadline              // the caller's deadline would expire before departure
	visitOverload              // the projected queue wait exceeds maxQueue
)

// visit occupies the station for one service time, sleeping (outside the
// lock) until this operation's departure instant. Refusals consume no
// capacity and never advance the queue: a non-zero deadline that would
// pass before departure yields visitDeadline; a non-zero maxQueue that
// the projected wait-for-service exceeds yields visitOverload along
// with that projected wait (the retry-after hint — the backlog cannot
// drain sooner).
func (st *serialStation) visit(deadline time.Time, maxQueue time.Duration) (visitVerdict, time.Duration) {
	now := time.Now()
	if !deadline.IsZero() && now.After(deadline) {
		return visitDeadline, 0
	}
	if st.service == 0 {
		return visitOK, 0
	}
	st.mu.Lock()
	start := st.next
	if start.Before(now) {
		start = now
	}
	if wait := start.Sub(now); maxQueue > 0 && wait > maxQueue {
		st.mu.Unlock()
		return visitOverload, wait
	}
	depart := start.Add(st.service)
	if !deadline.IsZero() && depart.After(deadline) {
		st.mu.Unlock()
		return visitDeadline, 0
	}
	st.next = depart
	st.mu.Unlock()
	time.Sleep(time.Until(depart))
	return visitOK, 0
}

package dm

import (
	"repro/internal/colseg"
)

// Analytics serves a catalog-wide aggregate query through the read-optimized
// path. Resolution order for the runner:
//
//  1. Options.Analytics — a colseg.Store maintained next to the database
//     (or any other Runner, e.g. a networked client shipping the query to
//     the node that holds the segments).
//  2. The routed engine itself, when it implements colseg.Runner (a
//     dbnet.Client forwards the query over the wire to the server's store).
//  3. colseg.RunRows over the routed engine — always correct, never fast.
//
// Results are cached under (query fingerprint, table commit epoch), the same
// discipline as cachedQuery: the epoch is read BEFORE the query runs, so a
// commit racing the execution turns the stored entry into a future miss
// rather than a stale hit. Cached *colseg.Result values are shared between
// callers and must be treated as immutable.
func (d *DM) Analytics(q colseg.Query) (*colseg.Result, error) {
	d.stats.Requests.Add(1)
	d.stats.AnalyticsQueries.Add(1)
	db := d.routeDB(q.Table)
	epoch := db.TableEpoch(q.Table)
	key := "ana|" + colseg.Fingerprint(q)
	if v, ok := d.cache.get(key, epoch); ok {
		d.stats.AnalyticsCacheHits.Add(1)
		return v.(*colseg.Result), nil
	}
	var res *colseg.Result
	var err error
	switch {
	case d.analytics != nil:
		res, err = d.analytics.RunAnalytics(q)
	default:
		if r, ok := db.(colseg.Runner); ok {
			res, err = r.RunAnalytics(q)
		} else {
			res, err = colseg.RunRows(db, q)
		}
	}
	if err != nil {
		return nil, err
	}
	if res.Stats.Vectorized {
		d.stats.AnalyticsVector.Add(1)
	} else {
		d.stats.AnalyticsRowFall.Add(1)
	}
	d.cache.put(key, epoch, res)
	return res, nil
}

// AnalyticsRunner exposes the resolved runner for diagnostics (the web tier
// type-asserts it to surface segment-store statistics on /stats).
func (d *DM) AnalyticsRunner() colseg.Runner {
	if d.analytics != nil {
		return d.analytics
	}
	if r, ok := d.domain.(colseg.Runner); ok {
		return r
	}
	return nil
}

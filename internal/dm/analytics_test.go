package dm

import (
	"fmt"
	"io"
	"log"
	"testing"

	"repro/internal/colseg"
	"repro/internal/minidb"
	"repro/internal/schema"
)

func newAnalyticsDM(t *testing.T, analytics colseg.Runner) (*DM, *minidb.DB) {
	t.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Options{
		Node:      "dm-ana",
		MetaDB:    db,
		Analytics: analytics,
		Logger:    log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, db
}

func insertTestEvents(t *testing.T, db *minidb.DB, n, base int) {
	t.Helper()
	b := &minidb.Batch{}
	for i := 0; i < n; i++ {
		id := base + i
		energy := minidb.F(3 + float64(id%100))
		if id%11 == 0 {
			energy = minidb.Null()
		}
		b.Insert(schema.TableEvents, minidb.Row{
			minidb.I(int64(id)), minidb.S(fmt.Sprintf("u%03d", id%7)),
			minidb.F(float64(id) / 2), energy, minidb.I(int64(id % 9)), minidb.I(0),
		})
	}
	if _, err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticsCacheByEpoch: repeated analytics queries are served from the
// epoch-keyed cache, and a commit to the events table invalidates them —
// satellite requirement "cache keys analytics results by (query, data
// epoch)".
func TestAnalyticsCacheByEpoch(t *testing.T) {
	d, db := newAnalyticsDM(t, nil)
	insertTestEvents(t, db, 500, 0)

	q := colseg.Query{Table: schema.TableEvents, Agg: colseg.AggStats, Col: "energy"}
	r1, err := d.Analytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows != 500 {
		t.Fatalf("rows = %d, want 500", r1.Rows)
	}
	r2, err := d.Analytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r1 {
		t.Fatal("second identical query did not hit the cache (different result pointer)")
	}
	if d.Stats().AnalyticsCacheHits.Load() != 1 {
		t.Fatalf("cache hits = %d, want 1", d.Stats().AnalyticsCacheHits.Load())
	}

	// A commit bumps the table epoch; the cached entry must not be served.
	insertTestEvents(t, db, 50, 500)
	r3, err := d.Analytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Fatal("commit did not invalidate the analytics cache")
	}
	if r3.Rows != 550 {
		t.Fatalf("post-commit rows = %d, want 550", r3.Rows)
	}
	if d.Stats().AnalyticsCacheHits.Load() != 1 {
		t.Fatal("post-commit query counted as a cache hit")
	}
}

// TestAnalyticsStoreRunner: with a segment store configured, the DM serves
// vectorized results that are bit-identical to the row path; without one it
// falls back to row-at-a-time and says so in the counters.
func TestAnalyticsStoreRunner(t *testing.T) {
	d, db := newAnalyticsDM(t, nil)
	insertTestEvents(t, db, 1000, 0)
	store, err := colseg.Open(colseg.Options{DB: db, SegmentRows: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RefreshAll(); err != nil {
		t.Fatal(err)
	}
	dv, _ := Open(Options{Node: "dm-vec", MetaDB: db, Analytics: store,
		Logger: log.New(io.Discard, "", 0)})

	q := colseg.Query{
		Table: schema.TableEvents, Agg: colseg.AggStats, Col: "energy",
		GroupBy: "detector",
		Where:   []minidb.Pred{{Col: "t", Op: minidb.OpGe, Val: minidb.F(100)}},
	}
	vec, err := dv.Analytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Stats.Vectorized {
		t.Fatalf("store-backed DM did not vectorize: %+v", vec.Stats)
	}
	row, err := d.Analytics(q)
	if err != nil {
		t.Fatal(err)
	}
	if row.Stats.Vectorized {
		t.Fatal("store-less DM claimed a vectorized run")
	}
	if vec.Rows != row.Rows || vec.Sum != row.Sum || len(vec.Groups) != len(row.Groups) {
		t.Fatalf("vectorized %+v != row %+v", vec, row)
	}
	if dv.Stats().AnalyticsVector.Load() != 1 || d.Stats().AnalyticsRowFall.Load() != 1 {
		t.Fatalf("counters: vec=%d rowfall=%d",
			dv.Stats().AnalyticsVector.Load(), d.Stats().AnalyticsRowFall.Load())
	}
	if dv.AnalyticsRunner() == nil || d.AnalyticsRunner() != nil {
		t.Fatal("AnalyticsRunner resolution wrong")
	}
}

package dm

import (
	"sort"

	"repro/internal/schema"
)

// API is the session-token surface of the DM, the one contract both the
// presentation tier and remote DM nodes program against. It exists so that
// "the calling methods do not know where the code is actually executed"
// (§5.4): Local executes in-process, Remote ships the call to another DM
// node over HTTP, and Dispatcher picks between them per configuration.
type API interface {
	Authenticate(user, password, ip, kind string) (*SessionInfo, error)
	Logout(token string) error
	QueryHLEs(token, ip string, f HLEFilter) ([]*schema.HLE, error)
	CountHLEs(token, ip string, f HLEFilter) (int, error)
	GetHLE(token, ip, id string) (*schema.HLE, error)
	AnalysesForHLE(token, ip, hleID string) ([]*schema.ANA, error)
	GetANA(token, ip, id string) (*schema.ANA, error)
	ListCatalogs(token, ip string) ([]*Catalog, error)
	CreateHLE(token, ip string, h *schema.HLE) (string, error)
	ImportAnalysis(token, ip string, a *schema.ANA, files []StoredFile) (string, error)
	FindExistingAnalysis(token, ip string, spec *schema.ANA) (*schema.ANA, error)
	Publish(token, ip, kind, id string) error
	ReadItem(token, ip, itemID string) (*ItemData, error)
	UnitsInRange(token, ip string, t0, t1 float64) ([]*UnitInfo, error)
}

// SessionInfo is the wire form of an authenticated session.
type SessionInfo struct {
	Token  string
	User   string
	Group  string
	Kind   string
	Rights []string
}

// ItemData is the wire form of a resolved, read item.
type ItemData struct {
	ItemID string
	Format string
	Path   string
	Bytes  []byte
}

// Local adapts a *DM to the token-based API surface.
type Local struct {
	DM *DM
}

var _ API = Local{}

func (l Local) session(token, ip string) *Session {
	return l.DM.SessionFor(token, ip)
}

// Authenticate implements API.
func (l Local) Authenticate(user, password, ip, kind string) (*SessionInfo, error) {
	s, err := l.DM.Authenticate(user, password, ip, kind)
	if err != nil {
		return nil, err
	}
	rights := make([]string, 0, len(s.Rights))
	for r := range s.Rights {
		rights = append(rights, r)
	}
	sort.Strings(rights)
	return &SessionInfo{Token: s.Token, User: s.User, Group: s.Group, Kind: s.Kind, Rights: rights}, nil
}

// Logout implements API.
func (l Local) Logout(token string) error {
	l.DM.Logout(token)
	return nil
}

// QueryHLEs implements API.
func (l Local) QueryHLEs(token, ip string, f HLEFilter) ([]*schema.HLE, error) {
	return l.DM.QueryHLEs(l.session(token, ip), f)
}

// CountHLEs implements API.
func (l Local) CountHLEs(token, ip string, f HLEFilter) (int, error) {
	return l.DM.CountHLEs(l.session(token, ip), f)
}

// GetHLE implements API.
func (l Local) GetHLE(token, ip, id string) (*schema.HLE, error) {
	return l.DM.GetHLE(l.session(token, ip), id)
}

// AnalysesForHLE implements API.
func (l Local) AnalysesForHLE(token, ip, hleID string) ([]*schema.ANA, error) {
	return l.DM.AnalysesForHLE(l.session(token, ip), hleID)
}

// GetANA implements API.
func (l Local) GetANA(token, ip, id string) (*schema.ANA, error) {
	return l.DM.GetANA(l.session(token, ip), id)
}

// ListCatalogs implements API.
func (l Local) ListCatalogs(token, ip string) ([]*Catalog, error) {
	return l.DM.ListCatalogs(l.session(token, ip))
}

// CreateHLE implements API.
func (l Local) CreateHLE(token, ip string, h *schema.HLE) (string, error) {
	return l.DM.CreateHLE(l.session(token, ip), h)
}

// ImportAnalysis implements API.
func (l Local) ImportAnalysis(token, ip string, a *schema.ANA, files []StoredFile) (string, error) {
	return l.DM.ImportAnalysis(l.session(token, ip), a, files)
}

// FindExistingAnalysis implements API.
func (l Local) FindExistingAnalysis(token, ip string, spec *schema.ANA) (*schema.ANA, error) {
	return l.DM.FindExistingAnalysis(l.session(token, ip), spec)
}

// Publish implements API.
func (l Local) Publish(token, ip, kind, id string) error {
	return l.DM.Publish(l.session(token, ip), kind, id)
}

// ReadItem implements API.
func (l Local) ReadItem(token, ip, itemID string) (*ItemData, error) {
	data, rn, err := l.DM.ReadItem(l.session(token, ip), itemID)
	if err != nil {
		return nil, err
	}
	return &ItemData{ItemID: itemID, Format: rn.Format, Path: rn.Path, Bytes: data}, nil
}

// UnitsInRange implements API. Raw units are public catalog structure, so
// no per-tuple visibility applies.
func (l Local) UnitsInRange(token, ip string, t0, t1 float64) ([]*UnitInfo, error) {
	return l.DM.UnitsInRange(t0, t1)
}

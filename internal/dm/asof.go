package dm

import (
	"errors"
	"fmt"

	"repro/internal/archive"
	"repro/internal/lake"
	"repro/internal/schema"
)

// Time travel (§3.1): reprocessing old observations against the archive
// *as it was*. An AsOfView pins the default archive's commit journal at
// one commit, so HLE re-derivation jobs read the exact raw bytes the
// original derivation saw — even while ingest, compaction and GC keep
// rewriting the head. The pin is durable (a journal record), so a crashed
// reprocessing job resumes against the same snapshot after restart.
//
// Query-cache interplay: as-of reads must never be served from the
// epoch-keyed query cache — its entries describe the catalog at the
// CURRENT epoch, not at the pinned commit. Name resolution here therefore
// goes through d.query (a direct engine read, bypassing cachedQuery by
// construction) and the file bytes come from the pinned lake view, never
// from Archive.Read at head. The location tables themselves are append-
// mostly (relocation edits archive ids, never paths), and relocated
// bytes are write-once in every tier, so a live resolve plus pinned
// bytes yields bit-identical reprocessing input.

// AsOfView is a session-scoped read-only view of the default archive as
// of one commit.
type AsOfView struct {
	d    *DM
	s    *Session
	view *lake.View
	arch *archive.Archive
}

// DefaultArchive returns the DM's default (ingest) archive.
func (d *DM) DefaultArchive() *archive.Archive {
	return d.archives.Get(d.defArch)
}

// AsOf opens the catalog as of commit (0 = current head) for the session.
// The default archive must be journal-backed.
func (d *DM) AsOf(s *Session, commit uint64) (*AsOfView, error) {
	if s == nil {
		return nil, errDenied("as-of read", "catalog")
	}
	arch := d.DefaultArchive()
	if arch == nil {
		return nil, fmt.Errorf("dm: default archive %q not registered", d.defArch)
	}
	v, err := arch.OpenAt(commit)
	if err != nil {
		return nil, err
	}
	d.stats.AsOfOpens.Add(1)
	d.logOp("info", "asof", "session %s pinned commit %d (token %s)", s.User, v.Seq(), v.Token())
	return &AsOfView{d: d, s: s, view: v, arch: arch}, nil
}

// AsOfAttach resumes a view over a pin that survived a restart (the pin
// token came from a previous AsOf's View.Token, e.g. recorded in a
// reprocessing job's checkpoint).
func (d *DM) AsOfAttach(s *Session, token string) (*AsOfView, error) {
	if s == nil {
		return nil, errDenied("as-of read", "catalog")
	}
	arch := d.DefaultArchive()
	if arch == nil || arch.Lake() == nil {
		return nil, fmt.Errorf("dm: default archive %q is not journal-backed", d.defArch)
	}
	v, err := arch.Lake().AttachPin(token)
	if err != nil {
		return nil, err
	}
	return &AsOfView{d: d, s: s, view: v, arch: arch}, nil
}

// Commit returns the pinned commit; Token the durable pin token.
func (v *AsOfView) Commit() uint64 { return v.view.Seq() }

// Token returns the durable pin token (checkpoint it to resume after a
// restart via AsOfAttach).
func (v *AsOfView) Token() string { return v.view.Token() }

// ReadItem resolves an item id and reads its bytes as of the pinned
// commit. Items whose file has been relocated off the journal-backed
// tier (retention moved them to tape) are read from their current
// archive — safe because archive file data is write-once on every tier.
func (v *AsOfView) ReadItem(itemID string) ([]byte, *ResolvedName, error) {
	rn, err := v.d.Resolve(itemID, schema.NameFile)
	if err != nil {
		return nil, nil, err
	}
	if !v.d.mayRead(v.s, rn.Owner, rn.Public) {
		v.d.stats.AccessDenied.Add(1)
		return nil, nil, errDenied("read", itemID)
	}
	data, err := v.view.Read(rn.Path)
	if errors.Is(err, lake.ErrNotFound) && rn.ArchiveID != v.arch.ID() {
		if other := v.d.archives.Get(rn.ArchiveID); other != nil {
			data, err = other.Read(rn.Path)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	v.d.stats.AsOfReads.Add(1)
	v.d.stats.BytesRead.Add(int64(len(data)))
	return data, rn, nil
}

// ReadPath reads an archive-relative path directly from the pinned view
// (for callers that already resolved the name, e.g. the bench driver).
func (v *AsOfView) ReadPath(rel string) ([]byte, error) {
	data, err := v.view.Read(rel)
	if err == nil {
		v.d.stats.AsOfReads.Add(1)
	}
	return data, err
}

// List returns the member paths live as of the pinned commit.
func (v *AsOfView) List() []string { return v.view.List() }

// Close releases the durable pin, letting GC pass the commit again.
func (v *AsOfView) Close() error { return v.view.Close() }

// LakeMaintenance runs one compaction + GC round on the default archive's
// journal, bounded by the durable pin set. keepHistory limits how far GC
// may advance: the horizon moves at most to head-keepHistory commits (so
// operators keep a time-travel window even with no pins open).
func (d *DM) LakeMaintenance(opts lake.CompactOptions, keepHistory uint64) (lake.CompactResult, lake.GCResult, error) {
	arch := d.DefaultArchive()
	if arch == nil || arch.Lake() == nil {
		return lake.CompactResult{}, lake.GCResult{}, fmt.Errorf("dm: default archive is not journal-backed")
	}
	lk := arch.Lake()
	cr, err := lk.Compact(opts)
	if err != nil {
		return cr, lake.GCResult{}, err
	}
	target := lk.Head()
	if target > keepHistory {
		target -= keepHistory
	} else {
		target = 0
	}
	gr, err := lk.GC(target)
	if err != nil {
		return cr, gr, err
	}
	if cr.Seq != 0 || gr.Deleted > 0 {
		d.logOp("info", "lake", "%s; %s", cr, gr)
	}
	return cr, gr, nil
}

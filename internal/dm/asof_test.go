package dm

import (
	"bytes"
	"io"
	"log"
	"testing"

	"repro/internal/archive"
	"repro/internal/lake"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// newLakeDM is newTestDM with a journal-backed default archive, so the
// time-travel paths are live.
func newLakeDM(t *testing.T) *DM {
	t.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.NewLake("disk-0", archive.Disk, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Options{
		Node:           "dm-lake-test",
		MetaDB:         db,
		DefaultArchive: "disk-0",
		URLRoot:        "http://hedc.test",
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(arch, "/archives/disk-0"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAsOfPinnedReprocessing is the full reprocessing story: pin the
// catalog, then let retention relocate old units off the lake and
// compaction+GC churn the containers — the pinned session keeps reading
// the exact original bytes.
func TestAsOfPinnedReprocessing(t *testing.T) {
	d := newLakeDM(t)
	tape, err := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(tape, "/archives/tape-0"); err != nil {
		t.Fatal(err)
	}
	loadDays(t, d, 4)
	sys := d.systemSession()

	units, err := d.UnitsInRange(0, 4*600)
	if err != nil || len(units) == 0 {
		t.Fatalf("units: %d, %v", len(units), err)
	}
	// Snapshot every unit's bytes before any churn: the reprocessing
	// oracle.
	want := make(map[string][]byte, len(units))
	for _, u := range units {
		data, _, err := d.ReadItem(sys, u.ItemID)
		if err != nil {
			t.Fatalf("read %s: %v", u.ItemID, err)
		}
		want[u.ItemID] = data
	}

	// Pin the catalog as of now.
	v, err := d.AsOf(sys, 0)
	if err != nil {
		t.Fatalf("AsOf: %v", err)
	}
	pinned := v.Commit()

	// Retention moves days 1-2 to tape (lake-mode Remove = tombstone
	// commit), then maintenance compacts and GCs as far as pins allow.
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 1, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	rep, err := d.ApplyRetention()
	if err != nil || rep.Migrated == 0 {
		t.Fatalf("retention: %+v, %v", rep, err)
	}
	opts := lake.CompactOptions{SmallBytes: 1 << 20, MinMerge: 2, MaxMerge: 100}
	if _, _, err := d.LakeMaintenance(opts, 0); err != nil {
		t.Fatalf("maintenance: %v", err)
	}

	// The acceptance property at the dm layer: every item reads
	// bit-identically through the pinned view.
	for _, u := range units {
		data, rn, err := v.ReadItem(u.ItemID)
		if err != nil {
			t.Fatalf("as-of read %s: %v", u.ItemID, err)
		}
		if !bytes.Equal(data, want[u.ItemID]) {
			t.Fatalf("as-of read %s diverged (%d vs %d bytes, now on %s)",
				u.ItemID, len(data), len(want[u.ItemID]), rn.ArchiveID)
		}
	}

	// Crucial GC-safety check: the pinned commit still opens, meaning the
	// horizon never passed it while the pin was held.
	lk := d.DefaultArchive().Lake()
	if lk.Horizon() > pinned {
		t.Fatalf("GC horizon %d passed pinned commit %d", lk.Horizon(), pinned)
	}
	if _, err := lk.OpenAt(pinned); err != nil {
		t.Fatalf("pinned commit no longer openable: %v", err)
	}

	// Release the pin; now maintenance may reclaim the tombstoned
	// containers, and relocated items remain readable from tape (archive
	// data is write-once, so still bit-identical).
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LakeMaintenance(opts, 0); err != nil {
		t.Fatal(err)
	}
	v2, err := d.AsOf(sys, 0) // pin at the new head
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	for _, u := range units {
		data, _, err := v2.ReadItem(u.ItemID)
		if err != nil {
			t.Fatalf("post-gc as-of read %s: %v", u.ItemID, err)
		}
		if !bytes.Equal(data, want[u.ItemID]) {
			t.Fatalf("post-gc as-of read %s diverged", u.ItemID)
		}
	}
}

// TestRetentionNeverDeletesPinnedContainers drives retention + GC directly
// against the journal and asserts the satellite requirement: a retention
// rule must never delete a container still referenced by a pinned
// time-travel commit.
func TestRetentionNeverDeletesPinnedContainers(t *testing.T) {
	d := newLakeDM(t)
	tape, err := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(tape, "/archives/tape-0"); err != nil {
		t.Fatal(err)
	}
	loadDays(t, d, 3)
	lk := d.DefaultArchive().Lake()
	sys := d.systemSession()

	// Record the physical payload of the pinned view.
	v, err := d.AsOf(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	pinnedRels := v.List()
	pinnedData := make(map[string][]byte, len(pinnedRels))
	for _, rel := range pinnedRels {
		data, err := v.ReadPath(rel)
		if err != nil {
			t.Fatalf("pinned read %s: %v", rel, err)
		}
		pinnedData[rel] = data
	}

	// Retention tombstones EVERY unit (MaxAgeDays 0 moves all but the
	// newest day; run twice with an aggressive rule to drain), then GC is
	// asked to collect everything.
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 0, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ApplyRetention(); err != nil {
		t.Fatal(err)
	}
	opts := lake.CompactOptions{SmallBytes: 1 << 30, MinMerge: 2, MaxMerge: 1000, DeadFraction: 0.01}
	for i := 0; i < 3; i++ {
		if _, _, err := d.LakeMaintenance(opts, 0); err != nil {
			t.Fatalf("maintenance %d: %v", i, err)
		}
	}

	// Every pinned member still reads bit-identically from the journal.
	for rel, data := range pinnedData {
		got, err := v.ReadPath(rel)
		if err != nil {
			t.Fatalf("pinned member %s lost to GC: %v", rel, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("pinned member %s diverged", rel)
		}
	}

	// After the pin is dropped, the same maintenance reclaims for real.
	before := lk.PhysBytes()
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.LakeMaintenance(opts, 0); err != nil {
		t.Fatal(err)
	}
	if after := lk.PhysBytes(); after >= before {
		t.Fatalf("GC reclaimed nothing after unpin (phys %d -> %d)", before, after)
	}
}

// TestAsOfAttachResumesAfterRestartToken checks the checkpoint flow: a
// reprocessing job records v.Token(), crashes, and resumes via AsOfAttach.
func TestAsOfAttachResumesAfterRestartToken(t *testing.T) {
	d := newLakeDM(t)
	loadDays(t, d, 1)
	sys := d.systemSession()
	units, _ := d.UnitsInRange(0, 600)
	if len(units) == 0 {
		t.Fatal("no units")
	}
	orig, _, err := d.ReadItem(sys, units[0].ItemID)
	if err != nil {
		t.Fatal(err)
	}

	v, err := d.AsOf(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	token := v.Token()
	// "Crash": drop the view object without Close; the pin is durable.
	v2, err := d.AsOfAttach(sys, token)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	got, _, err := v2.ReadItem(units[0].ItemID)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatalf("resumed read: %d bytes, %v", len(got), err)
	}
	if err := v2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AsOfAttach(sys, token); err == nil {
		t.Fatal("attach after close succeeded")
	}
}

// TestAsOfRequiresLakeArchive: manifest-mode archives refuse time travel
// with a clear error, and as-of reads require a session.
func TestAsOfRequiresLakeArchive(t *testing.T) {
	d := newTestDM(t)
	sys := d.systemSession()
	if _, err := d.AsOf(sys, 0); err == nil {
		t.Fatal("AsOf on manifest-mode archive succeeded")
	}
	dl := newLakeDM(t)
	if _, err := dl.AsOf(nil, 0); err == nil {
		t.Fatal("AsOf without session succeeded")
	}
}

package dm

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/minidb"
)

// Read-through query cache for the DM's semantic layer. HEDC's hot reads —
// catalog member counts, duplicate checks, dependency counts, member lists —
// repeat the same structured query many times between writes. Each cached
// entry is keyed by (canonical query fingerprint, table commit epoch): the
// engine bumps a table's epoch on every committed transaction touching it,
// so a cached result is valid exactly while the epoch it was computed
// against is still current. No timers, no explicit invalidation calls — a
// commit anywhere in the process makes the next lookup a miss.
//
// The epoch is read BEFORE the query runs. If a commit lands between the
// epoch read and the query, the entry is stored under the older epoch and
// the next lookup misses — conservative, never stale-serving.

type cacheEntry struct {
	epoch uint64
	val   any // *minidb.Result for row queries, *colseg.Result for analytics
}

type queryCache struct {
	mu sync.Mutex
	m  map[string]cacheEntry
	// cap bounds memory: when the map grows past it, the whole map is
	// dropped. Epoch churn retires entries anyway; this only guards
	// against fingerprint cardinality blowup.
	cap int
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{m: make(map[string]cacheEntry), cap: capacity}
}

func (c *queryCache) get(key string, epoch uint64) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok || e.epoch != epoch {
		return nil, false
	}
	return e.val, true
}

// getStale returns whatever entry sits under key regardless of its epoch
// — the brownout ladder's stale-read rung. The caller decides whether a
// commit-behind answer is acceptable; under overload it usually is, and
// every stale serve is one less query against a tier that is drowning.
func (c *queryCache) getStale(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		return nil, false
	}
	return e.val, true
}

func (c *queryCache) put(key string, epoch uint64, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.cap {
		c.m = make(map[string]cacheEntry)
	}
	c.m[key] = cacheEntry{epoch: epoch, val: val}
}

// queryEpocher is the shard-aware refinement of TableEpoch: a sharded
// engine (internal/shard.Router) scopes the epoch to the shards the query
// can actually touch, so a commit on shard k stops invalidating cached
// results that only depend on other shards. Discovered structurally so the
// DM keeps zero compile-time knowledge of the sharding layer.
type queryEpocher interface {
	QueryEpoch(minidb.Query) uint64
}

// cachedQuery runs q through the cache. Results returned from the cache are
// SHARED between callers: treat them as immutable (read rows, never write).
// Only deterministic queries belong here — anything keyed on sessions is
// fine because the visibility OR-clause is part of the fingerprint.
func (d *DM) cachedQuery(q minidb.Query) (*minidb.Result, error) {
	db := d.routeDB(q.Table)
	// Epoch first, then lookup/query: a commit racing past this point makes
	// the stored entry a future miss rather than a stale hit.
	var epoch uint64
	if qe, ok := db.(queryEpocher); ok {
		epoch = qe.QueryEpoch(q)
	} else {
		epoch = db.TableEpoch(q.Table)
	}
	key := fingerprint(q)
	if v, ok := d.cache.get(key, epoch); ok {
		d.stats.QueryCacheHits.Add(1)
		return v.(*minidb.Result), nil
	}
	// Brownout rung 2: under sustained overload the ladder flips this on,
	// and a fresh-epoch miss falls back to whatever epoch the cache still
	// holds. Serving a commit-behind result costs staleness; querying a
	// drowning database tier costs everyone's latency.
	if d.serveStale.Load() {
		if v, ok := d.cache.getStale(key); ok {
			d.stats.StaleServes.Add(1)
			return v.(*minidb.Result), nil
		}
	}
	d.stats.QueryCacheMisses.Add(1)
	res, err := d.query(q)
	if err != nil {
		return nil, err
	}
	d.cache.put(key, epoch, res)
	return res, nil
}

// DataEpoch renders the commit epochs of a set of tables into one opaque
// tag, for callers that cache derived results outside the DM (the PL's
// analysis memoization). The tag changes iff some listed table's epoch
// changes: per-table epochs are rendered individually (never folded), so
// distinct states cannot collide. Shard-aware engines contribute their
// query-scoped epoch through the same queryEpocher seam cachedQuery uses.
// Read the tag BEFORE computing the result being cached — a commit racing
// the computation then parks the entry under the older tag, conservative,
// never stale-serving.
func (d *DM) DataEpoch(tables ...string) string {
	var b strings.Builder
	for i, table := range tables {
		if i > 0 {
			b.WriteByte('.')
		}
		db := d.routeDB(table)
		var epoch uint64
		if qe, ok := db.(queryEpocher); ok {
			epoch = qe.QueryEpoch(minidb.Query{Table: table})
		} else {
			epoch = db.TableEpoch(table)
		}
		b.WriteString(strconv.FormatUint(epoch, 10))
	}
	return b.String()
}

// fingerprint renders a Query into a canonical string. Every field that
// affects the result set participates; values are length-prefixed so no
// string content can collide with the structure.
func fingerprint(q minidb.Query) string {
	var b strings.Builder
	b.Grow(64)
	fpStr(&b, q.Table)
	b.WriteByte('|')
	for _, p := range q.Where {
		fpPred(&b, p)
	}
	b.WriteByte('|')
	for _, p := range q.Or {
		fpPred(&b, p)
	}
	b.WriteByte('|')
	for _, o := range q.OrderBy {
		fpStr(&b, o.Col)
		if o.Desc {
			b.WriteByte('-')
		} else {
			b.WriteByte('+')
		}
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(q.Offset))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(q.Limit))
	b.WriteByte('|')
	for _, c := range q.Project {
		fpStr(&b, c)
	}
	if q.Count {
		b.WriteString("|#")
	}
	return b.String()
}

func fpPred(b *strings.Builder, p minidb.Pred) {
	fpStr(b, p.Col)
	b.WriteString(p.Op.String())
	fpVal(b, p.Val)
	if p.Op == minidb.OpBetween {
		b.WriteByte('~')
		fpVal(b, p.Hi)
	}
	b.WriteByte(';')
}

func fpVal(b *strings.Builder, v minidb.Value) {
	b.WriteString(strconv.Itoa(int(v.T)))
	b.WriteByte(':')
	fpStr(b, v.String())
}

func fpStr(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

package dm

import (
	"strings"
	"testing"

	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// TestCountCacheHitAndInvalidation is the acceptance path for the
// epoch-keyed cache: two identical catalog count queries with no
// intervening commit cost exactly one engine query; a commit to the table
// makes the next identical count a miss that returns the fresh result.
func TestCountCacheHitAndInvalidation(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")

	for i := 0; i < 3; i++ {
		if _, err := d.CreateHLE(alice, &schema.HLE{
			KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := HLEFilter{Kind: "flare"}

	q0 := d.meta.Stats().Queries
	n, err := d.CountHLEs(alice, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("first count = %d, want 3", n)
	}
	n, err = d.CountHLEs(alice, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("second count = %d, want 3", n)
	}
	if got := d.meta.Stats().Queries - q0; got != 1 {
		t.Fatalf("two identical counts issued %d engine queries, want 1", got)
	}
	if hits := d.stats.QueryCacheHits.Load(); hits != 1 {
		t.Fatalf("QueryCacheHits = %d, want 1", hits)
	}

	// A commit to the HLE table bumps its epoch: next count misses and
	// sees the new row.
	if _, err := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", TStop: 2, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}
	misses0 := d.stats.QueryCacheMisses.Load()
	n, err = d.CountHLEs(alice, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("post-commit count = %d, want 4 (stale cache served)", n)
	}
	if d.stats.QueryCacheMisses.Load() != misses0+1 {
		t.Fatal("post-commit count should be a cache miss")
	}
}

// TestStaleServeUnderBrownout: with SetServeStale on, a count whose
// epoch-fresh entry was invalidated by a commit is answered from the
// stale entry — commit-behind, engine untouched — and turning the knob
// back off restores epoch-strict behaviour.
func TestStaleServeUnderBrownout(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")

	for i := 0; i < 3; i++ {
		if _, err := d.CreateHLE(alice, &schema.HLE{
			KindHint: "flare", TStop: float64(i + 1), Version: 1, CalibVersion: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	f := HLEFilter{Kind: "flare"}
	if n, err := d.CountHLEs(alice, f); err != nil || n != 3 {
		t.Fatalf("warm count = %d (%v), want 3", n, err)
	}

	// A commit bumps the epoch: the cached count of 3 is now stale.
	if _, err := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", TStop: 9, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}

	d.SetServeStale(true)
	q0 := d.meta.Stats().Queries
	n, err := d.CountHLEs(alice, f)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("stale serve returned %d, want the commit-behind 3", n)
	}
	if got := d.meta.Stats().Queries - q0; got != 0 {
		t.Fatalf("stale serve issued %d engine queries, want 0", got)
	}
	if s := d.stats.StaleServes.Load(); s != 1 {
		t.Fatalf("StaleServes = %d, want 1", s)
	}

	d.SetServeStale(false)
	if n, err := d.CountHLEs(alice, f); err != nil || n != 4 {
		t.Fatalf("fresh count after brownout = %d (%v), want 4", n, err)
	}
}

// TestCacheFingerprintDistinguishesQueries: different filters and different
// sessions (whose visibility clause differs) must not share entries.
func TestCacheFingerprintDistinguishesQueries(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	bob := newScientist(t, d, "bob")

	if _, err := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}

	na, err := d.CountHLEs(alice, HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	if na != 1 {
		t.Fatalf("alice sees %d flares, want 1 (her private event)", na)
	}
	// Bob's count has a different visibility OR-clause: must not hit
	// alice's entry, and must not see her private event.
	nb, err := d.CountHLEs(bob, HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	if nb != 0 {
		t.Fatalf("bob sees %d flares, want 0", nb)
	}
	// Different kind: distinct fingerprint, fresh query.
	nq, err := d.CountHLEs(alice, HLEFilter{Kind: "quiet"})
	if err != nil {
		t.Fatal(err)
	}
	if nq != 0 {
		t.Fatalf("quiet count = %d, want 0", nq)
	}
}

// TestCatalogMemberListCached: browsing a catalog repeatedly reuses the
// cached member list until a membership edit bumps the table epoch.
func TestCatalogMemberListCached(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")

	catID, err := d.CreateCatalog(alice, "work", "private", "", false)
	if err != nil {
		t.Fatal(err)
	}
	var hles []string
	for i := 0; i < 3; i++ {
		id, err := d.CreateHLE(alice, &schema.HLE{
			KindHint: "flare", TStop: float64(i + 1), Version: 1, CalibVersion: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		hles = append(hles, id)
	}
	for _, id := range hles[:2] {
		if err := d.AddToCatalog(alice, catID, id); err != nil {
			t.Fatal(err)
		}
	}

	list, err := d.QueryHLEs(alice, HLEFilter{Catalog: catID})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("catalog lists %d members, want 2", len(list))
	}
	hits0 := d.stats.QueryCacheHits.Load()
	if _, err := d.QueryHLEs(alice, HLEFilter{Catalog: catID}); err != nil {
		t.Fatal(err)
	}
	if d.stats.QueryCacheHits.Load() == hits0 {
		t.Fatal("second catalog browse should hit the member-list cache")
	}

	// Membership edit invalidates: the third member appears.
	if err := d.AddToCatalog(alice, catID, hles[2]); err != nil {
		t.Fatal(err)
	}
	list, err = d.QueryHLEs(alice, HLEFilter{Catalog: catID})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("catalog lists %d members after add, want 3 (stale cache served)", len(list))
	}
}

// TestCacheCapReset: overflowing the cap drops the map instead of growing
// without bound; correctness is unaffected.
func TestCacheCapReset(t *testing.T) {
	c := newQueryCache(2)
	r := &minidb.Result{Count: 7}
	c.put("a", 1, r)
	c.put("b", 1, r)
	c.put("c", 1, r) // overflows: map reset, then c stored
	if _, ok := c.get("a", 1); ok {
		t.Fatal("entry a should have been dropped by the cap reset")
	}
	if got, ok := c.get("c", 1); !ok || got.(*minidb.Result).Count != 7 {
		t.Fatal("entry c should be present after the reset")
	}
	if _, ok := c.get("c", 2); ok {
		t.Fatal("epoch mismatch must miss")
	}
}

// TestDataEpoch: the multi-table epoch tag changes exactly when a listed
// table commits — per-table epochs are rendered, never folded, so distinct
// states cannot collide.
func TestDataEpoch(t *testing.T) {
	d := newTestDM(t)
	tag0 := d.DataEpoch(schema.TableRawUnits, schema.TableViews)
	if tag0 == "" || !strings.Contains(tag0, ".") {
		t.Fatalf("tag = %q", tag0)
	}
	if again := d.DataEpoch(schema.TableRawUnits, schema.TableViews); again != tag0 {
		t.Fatalf("tag unstable without commits: %q then %q", tag0, again)
	}

	// A commit to a listed table changes the tag...
	day := telemetry.GenerateDay(1, telemetry.Config{Seed: 3, DayLength: 600, BackgroundRate: 2})
	if _, err := d.LoadUnit(telemetry.SegmentDay(day, 600)[0]); err != nil {
		t.Fatal(err)
	}
	tag1 := d.DataEpoch(schema.TableRawUnits, schema.TableViews)
	if tag1 == tag0 {
		t.Fatal("raw_units commit did not change the tag")
	}

	// ...a commit to an unlisted table does not.
	if err := d.CreateUser("epoch-probe", "pw", GroupScientist, RightBrowse); err != nil {
		t.Fatal(err)
	}
	if tag2 := d.DataEpoch(schema.TableRawUnits, schema.TableViews); tag2 != tag1 {
		t.Fatalf("unlisted-table commit changed the tag: %q -> %q", tag1, tag2)
	}

	// Recalibration is a raw_units commit: the invalidation trigger.
	units, err := d.UnitsInRange(0, 600)
	if err != nil || len(units) == 0 {
		t.Fatalf("units: %v %v", units, err)
	}
	if _, err := d.Recalibrate(units[0].UnitID, "probe"); err != nil {
		t.Fatal(err)
	}
	if tag3 := d.DataEpoch(schema.TableRawUnits, schema.TableViews); tag3 == tag1 {
		t.Fatal("recalibration did not change the tag")
	}
}

// Package dm implements HEDC's Data Management component: the middle-tier
// layer that "controls and optimizes access to the data" and "hides
// specific details like file formats and the specific data type required by
// analysis programs behind interfaces" (§2.3).
//
// The DM is layered (§5.2):
//
//   - The I/O layer abstracts storage type and location: database adapters
//     translate structured query objects into engine plans, the file
//     adapter talks to archives, dynamic name construction (§4.3) resolves
//     item ids to files/URLs, and vertical partitioning routes tables to
//     different database instances.
//   - The semantic layer enforces access rules and referential consistency
//     and implements entity services: HLE/ANA/catalog creation, analysis
//     import, publication, deletion with dependency checks.
//   - The process layer combines both into workflows: raw-data loading
//     (with event detection, catalog generation and wavelet view
//     construction), archive relocation with compensation, purging.
//
// Sessions, connection pools and call redirection (local or remote DM
// execution over HTTP) complete the picture (§5.3–5.4).
package dm

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/archive"
	"repro/internal/colseg"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// Options configures a DM node.
type Options struct {
	Node string // node name, e.g. "dm-0"
	// MetaDB holds the generic part of the schema (and domain, if DomainDB
	// nil). Any minidb.Engine works: an in-process *minidb.DB, or a
	// dbnet.Client when this node is a replica sharing a networked
	// database with its peers (Figure 5's scaling axis).
	MetaDB   minidb.Engine
	DomainDB minidb.Engine // optional vertical partition for the domain tables
	Archives *archive.Set
	// DefaultArchive receives newly stored files.
	DefaultArchive string
	// URLRoot is the [root] element for URL name construction (§4.3).
	URLRoot string
	// Pool sizes (defaults 8/4/2, the split of §5.3).
	QueryPool, UpdatePool, AuthPool int
	// Analytics serves catalog-wide aggregate queries from columnar
	// segments (internal/colseg). When nil, the DM resolves a runner
	// itself: the domain engine if it implements colseg.Runner, else a
	// row-at-a-time fallback over the routed database.
	Analytics colseg.Runner
	// Logger receives operational messages (nil = standard logger).
	Logger *log.Logger
}

// Stats counts DM activity; experiments and tests read it.
type Stats struct {
	Requests    atomic.Int64 // semantic-layer entry points served
	Queries     atomic.Int64 // database queries issued
	Edits       atomic.Int64 // database mutations issued
	FilesStored atomic.Int64
	FilesRead   atomic.Int64
	BytesStored atomic.Int64
	BytesRead   atomic.Int64
	NameLookups atomic.Int64
	CacheHits   atomic.Int64 // session-cache hits
	CacheMisses atomic.Int64
	// Epoch-keyed query cache (cache.go). Distinct from the session cache
	// above: these count semantic-layer reads served without touching the
	// database engine.
	QueryCacheHits   atomic.Int64
	QueryCacheMisses atomic.Int64
	// StaleServes counts reads answered from a stale-epoch cache entry
	// while the brownout ladder has stale serving enabled (SetServeStale).
	StaleServes atomic.Int64
	// Analytics path (analytics.go): vectorized runs served by a columnar
	// runner vs row-at-a-time fallbacks, plus cache hits by epoch.
	AnalyticsQueries   atomic.Int64
	AnalyticsVector    atomic.Int64
	AnalyticsRowFall   atomic.Int64
	AnalyticsCacheHits atomic.Int64
	// Time-travel reads (asof.go): sessions pinned to a journal commit.
	AsOfOpens      atomic.Int64
	AsOfReads      atomic.Int64
	AccessDenied   atomic.Int64
	RedirectsOut   atomic.Int64 // calls shipped to a remote DM
	RedirectsIn    atomic.Int64 // calls served on behalf of a remote caller
	EventsDetected atomic.Int64
	UnitsLoaded    atomic.Int64
}

// DM is one Data Management node.
type DM struct {
	node     string
	meta     minidb.Engine
	domain   minidb.Engine
	archives *archive.Set
	defArch  string
	urlRoot  string
	logger   *log.Logger

	pools map[minidb.Engine]*dbPools

	sessions  *sessionCache
	cache     *queryCache
	analytics colseg.Runner // nil = resolve per call (engine or row fallback)

	seqMu  sync.Mutex
	seqHi  map[string]int64 // next unpersisted id per prefix
	seqMax map[string]int64 // persisted ceiling per prefix

	viewOnce sync.Once
	viewErr  error

	// serveStale is the brownout ladder's stale-read rung: when set,
	// cachedQuery may answer from a stale-epoch entry instead of querying
	// the database tier.
	serveStale atomic.Bool

	stats Stats
}

// SetServeStale switches stale-epoch cache serving on or off. The
// cluster's brownout ladder drives this: rung 2 trades read freshness for
// load on the shared database tier, and flips back off once pressure
// subsides.
func (d *DM) SetServeStale(on bool) { d.serveStale.Store(on) }

// ServeStale reports whether stale-epoch cache serving is active.
func (d *DM) ServeStale() bool { return d.serveStale.Load() }

type dbPools struct {
	query  *minidb.Pool
	update *minidb.Pool
	auth   *minidb.Pool
}

// Open wires a DM node. The databases must already contain the schema
// tables (see internal/schema).
func Open(opts Options) (*DM, error) {
	if opts.MetaDB == nil {
		return nil, fmt.Errorf("dm: MetaDB is required")
	}
	if opts.Archives == nil {
		opts.Archives = archive.NewSet()
	}
	if opts.Node == "" {
		opts.Node = "dm-0"
	}
	if opts.QueryPool <= 0 {
		opts.QueryPool = 8
	}
	if opts.UpdatePool <= 0 {
		opts.UpdatePool = 4
	}
	if opts.AuthPool <= 0 {
		opts.AuthPool = 2
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	d := &DM{
		node:      opts.Node,
		meta:      opts.MetaDB,
		domain:    opts.DomainDB,
		archives:  opts.Archives,
		defArch:   opts.DefaultArchive,
		urlRoot:   opts.URLRoot,
		logger:    opts.Logger,
		pools:     make(map[minidb.Engine]*dbPools),
		sessions:  newSessionCache(),
		cache:     newQueryCache(4096),
		analytics: opts.Analytics,
		seqHi:     make(map[string]int64),
		seqMax:    make(map[string]int64),
	}
	if d.domain == nil {
		d.domain = d.meta
	}
	for _, db := range []minidb.Engine{d.meta, d.domain} {
		if _, done := d.pools[db]; done {
			continue
		}
		qp, err := minidb.NewPool(db, "query", opts.QueryPool)
		if err != nil {
			return nil, err
		}
		up, err := minidb.NewPool(db, "update", opts.UpdatePool)
		if err != nil {
			return nil, err
		}
		ap, err := minidb.NewPool(db, "auth", opts.AuthPool)
		if err != nil {
			return nil, err
		}
		d.pools[db] = &dbPools{query: qp, update: up, auth: ap}
	}
	if err := d.loadSequences(); err != nil {
		return nil, err
	}
	return d, nil
}

// Node returns the node name.
func (d *DM) Node() string { return d.node }

// Stats exposes the counter block.
func (d *DM) Stats() *Stats { return &d.stats }

// Archives exposes the archive registry (process-layer tools use it).
func (d *DM) Archives() *archive.Set { return d.archives }

// MetaDB and DomainDB expose the underlying engines for diagnostics.
func (d *DM) MetaDB() minidb.Engine   { return d.meta }
func (d *DM) DomainDB() minidb.Engine { return d.domain }

// routeDB implements vertical partitioning: domain tables go to the domain
// database instance, everything else to the meta instance (§5.2: "data
// requests for certain parts of a database schema are routed to a
// different DBMS").
func (d *DM) routeDB(table string) minidb.Engine {
	switch table {
	case schema.TableHLE, schema.TableANA, schema.TableCatalog,
		schema.TableCatalogMembers, schema.TableRawUnits,
		schema.TableViews, schema.TableVersions, schema.TableEvents:
		return d.domain
	default:
		return d.meta
	}
}

// query runs a read through the routed database's query pool, counting it.
func (d *DM) query(q minidb.Query) (*minidb.Result, error) {
	db := d.routeDB(q.Table)
	res, err := db.Query(q)
	if err == nil {
		d.stats.Queries.Add(1)
	}
	return res, err
}

// exec runs fn inside a transaction on the routed database, counting each
// mutation it performs via the returned edit counter.
func (d *DM) exec(table string, fn func(tx minidb.Tx) error) error {
	db := d.routeDB(table)
	tx := db.BeginTx()
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// nextID hands out "prefix-n" identifiers using a hi-lo allocator: the
// persisted ceiling in admin_config moves in blocks, so restarts never
// reuse ids and allocation rarely touches the database. Block claims are
// transactional: replicas sharing one database serialize on the writer
// lock and each walks away with a disjoint block.
func (d *DM) nextID(prefix string) (string, error) {
	ids, err := d.nextIDs(prefix, 1)
	if err != nil {
		return "", err
	}
	return ids[0], nil
}

// nextIDs allocates n identifiers at once — the bulk form the ingest
// pipeline uses. The local window is drained first; if it runs dry, ONE
// transactional claim covers the remainder (at least a full block), so a
// loader asking for hundreds of ids pays one database round trip instead of
// one per block. Ids within one call need not be contiguous across the
// claim boundary; they are merely unique.
func (d *DM) nextIDs(prefix string, n int) ([]string, error) {
	const block = 64
	if n <= 0 {
		return nil, nil
	}
	d.seqMu.Lock()
	defer d.seqMu.Unlock()
	out := make([]string, 0, n)
	for d.seqHi[prefix] < d.seqMax[prefix] && len(out) < n {
		out = append(out, fmt.Sprintf("%s-%08d", prefix, d.seqHi[prefix]))
		d.seqHi[prefix]++
	}
	if rem := n - len(out); rem > 0 {
		claim := int64(rem)
		if claim < block {
			claim = block
		}
		newMax, err := d.claimSequenceBlock(prefix, claim)
		if err != nil {
			return nil, err
		}
		d.seqMax[prefix] = newMax
		start := newMax - claim
		if start < d.seqHi[prefix] {
			start = d.seqHi[prefix] // never step back into handed-out ids
		}
		for i := int64(0); i < int64(rem); i++ {
			out = append(out, fmt.Sprintf("%s-%08d", prefix, start+i))
		}
		d.seqHi[prefix] = start + int64(rem)
	}
	return out, nil
}

func seqKey(prefix string) string { return "seq." + prefix }

func (d *DM) loadSequences() error {
	res, err := d.meta.Query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "section", Op: minidb.OpEq, Val: minidb.S("sequence")}},
	})
	if err != nil {
		return err
	}
	for _, row := range res.Rows {
		key, val := row[0].Str(), row[2].Str()
		var prefix string
		var max int64
		if _, err := fmt.Sscanf(key, "seq.%s", &prefix); err != nil {
			continue
		}
		if _, err := fmt.Sscanf(val, "%d", &max); err != nil {
			continue
		}
		d.seqHi[prefix] = max // resume past the persisted ceiling
		d.seqMax[prefix] = max
	}
	return nil
}

// claimSequenceBlock advances the persisted ceiling by block inside one
// transaction and returns the new ceiling. The re-read under the writer
// lock is what makes concurrent claims from different nodes disjoint.
func (d *DM) claimSequenceBlock(prefix string, block int64) (int64, error) {
	key := seqKey(prefix)
	var newMax int64
	tx := d.meta.BeginTx()
	res, err := tx.Query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "key", Op: minidb.OpEq, Val: minidb.S(key)}},
	})
	if err != nil {
		tx.Rollback()
		return 0, err
	}
	var persisted int64
	if len(res.Rows) > 0 {
		fmt.Sscanf(res.Rows[0][2].Str(), "%d", &persisted)
	}
	newMax = persisted + block
	row := minidb.Row{
		minidb.S(key), minidb.S("sequence"), minidb.S(fmt.Sprintf("%d", newMax)), minidb.Null(),
	}
	if len(res.RowIDs) > 0 {
		err = tx.Update(schema.TableConfig, res.RowIDs[0], row)
	} else {
		_, err = tx.Insert(schema.TableConfig, row)
	}
	if err != nil {
		tx.Rollback()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return newMax, nil
}

// logOp writes to the operational log table and the process logger.
func (d *DM) logOp(level, component, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	d.logger.Printf("[%s] %s %s: %s", d.node, level, component, msg)
	id, err := d.nextID("log")
	if err != nil {
		return
	}
	var logID int64
	fmt.Sscanf(id, "log-%d", &logID)
	_, _ = d.meta.Insert(schema.TableLogs, minidb.Row{
		minidb.I(logID),
		minidb.F(float64(time.Now().UnixNano()) / 1e9),
		minidb.S(level),
		minidb.S(component),
		minidb.S(msg),
	})
}

// recordLineage appends a lineage row for an entity or item (§3.1 lineage
// tracking). Lineage lives in the generic part of the schema (meta
// database), so it is written outside domain-entity transactions.
func (d *DM) recordLineage(itemID, parent, operation string, version int64, detail string) error {
	id, err := d.nextID("lin")
	if err != nil {
		return err
	}
	var n int64
	fmt.Sscanf(id, "lin-%d", &n)
	parentVal := minidb.Null()
	if parent != "" {
		parentVal = minidb.S(parent)
	}
	detailVal := minidb.Null()
	if detail != "" {
		detailVal = minidb.S(detail)
	}
	_, err = d.meta.Insert(schema.TableLineage, minidb.Row{
		minidb.I(n), minidb.S(itemID), parentVal, minidb.S(operation),
		minidb.I(version), minidb.F(nowSecs()), detailVal,
	})
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

func nowSecs() float64 { return float64(time.Now().UnixNano()) / 1e9 }

package dm

import (
	"io"
	"log"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func newTestDM(t *testing.T) *DM {
	t.Helper()
	db, err := minidb.Open("", schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.New("disk-0", archive.Disk, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Options{
		Node:           "dm-test",
		MetaDB:         db,
		DefaultArchive: "disk-0",
		URLRoot:        "http://hedc.test",
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(arch, "/archives/disk-0"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	return d
}

func login(t *testing.T, d *DM, user, pass, kind string) *Session {
	t.Helper()
	s, err := d.Authenticate(user, pass, "10.0.0.1", kind)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newScientist(t *testing.T, d *DM, name string) *Session {
	t.Helper()
	if err := d.CreateUser(name, "pw-"+name, GroupScientist,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}
	return login(t, d, name, "pw-"+name, SessionHLE)
}

func TestBootstrapIdempotent(t *testing.T) {
	d := newTestDM(t)
	if err := d.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	cats, err := d.ListCatalogs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 2 {
		t.Fatalf("catalogs = %d, want 2 (standard + extended)", len(cats))
	}
	ids := map[string]bool{}
	for _, c := range cats {
		ids[c.ID] = true
		if !c.Public {
			t.Fatalf("bootstrap catalog %s not public", c.ID)
		}
	}
	if !ids[StandardCat] || !ids[ExtendedCat] {
		t.Fatalf("catalog ids = %v", ids)
	}
}

func TestAuthenticateAndSessions(t *testing.T) {
	d := newTestDM(t)
	s := login(t, d, ImportUser, "secret", SessionHLE)
	if !s.Super() || !s.Has(RightAnalyze) {
		t.Fatalf("import session = %+v", s)
	}
	// Wrong password.
	if _, err := d.Authenticate(ImportUser, "wrong", "10.0.0.1", SessionHLE); !IsDenied(err) {
		t.Fatalf("err = %v", err)
	}
	// Unknown user.
	if _, err := d.Authenticate("ghost", "x", "", SessionHLE); !IsDenied(err) {
		t.Fatalf("err = %v", err)
	}
	// Token lookup honours IP binding.
	if got := d.SessionFor(s.Token, "10.0.0.1"); got != s {
		t.Fatal("token lookup failed")
	}
	if got := d.SessionFor(s.Token, "99.9.9.9"); got != nil {
		t.Fatal("session leaked across IPs")
	}
	if got := d.SessionFor("bogus", "10.0.0.1"); got != nil {
		t.Fatal("bogus token resolved")
	}
	d.Logout(s.Token)
	if got := d.SessionFor(s.Token, "10.0.0.1"); got != nil {
		t.Fatal("logged-out session resolved")
	}
}

func TestSessionCacheThreePerUser(t *testing.T) {
	d := newTestDM(t)
	for _, kind := range []string{SessionHLE, SessionANA, SessionCatalog} {
		login(t, d, ImportUser, "secret", kind)
	}
	if n := d.sessions.countFor(ImportUser); n != 3 {
		t.Fatalf("cached sessions = %d, want 3", n)
	}
	// A fourth login of an existing kind replaces, not grows.
	login(t, d, ImportUser, "secret", SessionHLE)
	if n := d.sessions.countFor(ImportUser); n != 3 {
		t.Fatalf("cached sessions after re-login = %d, want 3", n)
	}
}

func TestHLELifecycleAndVisibility(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	bob := newScientist(t, d, "bob")

	id, err := d.CreateHLE(alice, &schema.HLE{
		Label: "my flare", KindHint: "flare", TStart: 100, TStop: 200,
		EMin: 3, EMax: 100, Day: 1, CalibVersion: 1, Version: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Owner sees it; bob does not (private by default, §5.5).
	if _, err := d.GetHLE(alice, id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetHLE(bob, id); !IsDenied(err) {
		t.Fatalf("bob read private HLE: %v", err)
	}
	if _, err := d.GetHLE(nil, id); !IsDenied(err) {
		t.Fatalf("anonymous read private HLE: %v", err)
	}
	// Query visibility: bob's view excludes it.
	bobView, err := d.QueryHLEs(bob, HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range bobView {
		if h.ID == id {
			t.Fatal("private HLE in bob's query")
		}
	}
	// Bob cannot publish alice's event.
	if err := d.Publish(bob, "hle", id); !IsDenied(err) {
		t.Fatalf("bob published alice's HLE: %v", err)
	}
	// Alice publishes; now bob sees it.
	if err := d.Publish(alice, "hle", id); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetHLE(bob, id); err != nil {
		t.Fatal(err)
	}
}

func TestQueryHLEFilters(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	for i := 0; i < 10; i++ {
		kind := "flare"
		if i%2 == 1 {
			kind = "gamma-ray-burst"
		}
		if _, err := d.CreateHLE(alice, &schema.HLE{
			KindHint: kind, TStart: float64(i * 100), TStop: float64(i*100 + 50),
			Day: int64(i / 5), Version: 1, CalibVersion: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.QueryHLEs(alice, HLEFilter{Kind: "flare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("flares = %d", len(got))
	}
	got, _ = d.QueryHLEs(alice, HLEFilter{HasDay: true, Day: 0})
	if len(got) != 5 {
		t.Fatalf("day-0 events = %d", len(got))
	}
	got, _ = d.QueryHLEs(alice, HLEFilter{HasTime: true, TimeFrom: 200, TimeTo: 400})
	if len(got) != 3 {
		t.Fatalf("time-filtered = %d", len(got))
	}
	got, _ = d.QueryHLEs(alice, HLEFilter{Limit: 3, OrderDesc: true})
	if len(got) != 3 || got[0].TStart != 900 {
		t.Fatalf("desc limit wrong: %v", got)
	}
	n, err := d.CountHLEs(alice, HLEFilter{Kind: "gamma-ray-burst"})
	if err != nil || n != 5 {
		t.Fatalf("count = %d %v", n, err)
	}
}

func TestImportAnalysisWithFiles(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	hleID, _ := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", TStart: 0, TStop: 100, Version: 1, CalibVersion: 1,
	})
	anaID, err := d.ImportAnalysis(alice, &schema.ANA{
		HLEID: hleID, Type: schema.AnaLightcurve, Algorithm: "binned",
		TStart: 0, TStop: 100, TimeBins: 64, Version: 1, CalibVersion: 1,
	}, []StoredFile{
		{Suffix: ".gif", Format: "gif", Data: []byte("GIF89a-fake")},
		{Suffix: ".log", Format: "log", Data: []byte("ran fine")},
		{Suffix: ".params", Format: "params", Data: []byte("bins=64")},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.GetANA(alice, anaID)
	if err != nil {
		t.Fatal(err)
	}
	if a.ItemID == "" || a.OutputBytes == 0 {
		t.Fatalf("analysis lacks file references: %+v", a)
	}
	// The file comes back through name mapping.
	data, rn, err := d.ReadItem(alice, a.ItemID)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "GIF89a-fake" || rn.Format != "gif" {
		t.Fatalf("read %q format %q", data, rn.Format)
	}
	// Attached analyses list under the HLE.
	anas, err := d.AnalysesForHLE(alice, hleID)
	if err != nil || len(anas) != 1 {
		t.Fatalf("analyses = %v %v", anas, err)
	}
	// Bob cannot read alice's private file.
	bob := newScientist(t, d, "bob")
	if _, _, err := d.ReadItem(bob, a.ItemID); !IsDenied(err) {
		t.Fatalf("bob read private item: %v", err)
	}
	// Publishing the analysis opens the file too.
	if err := d.Publish(alice, "ana", anaID); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.ReadItem(bob, a.ItemID); err != nil {
		t.Fatalf("bob blocked after publish: %v", err)
	}
}

func TestImportAnalysisIntegrity(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	// Referential integrity: HLE must exist.
	if _, err := d.ImportAnalysis(alice, &schema.ANA{
		HLEID: "hle-missing", Type: schema.AnaImaging,
	}, nil); err == nil {
		t.Fatal("analysis referencing missing HLE accepted")
	}
	// Anonymous import rejected.
	hleID, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})
	if _, err := d.ImportAnalysis(nil, &schema.ANA{HLEID: hleID}, nil); !IsDenied(err) {
		t.Fatalf("anonymous import: %v", err)
	}
}

func TestDeleteHLEIntegrityConstraint(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	hleID, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})
	anaID, err := d.ImportAnalysis(alice, &schema.ANA{
		HLEID: hleID, Type: schema.AnaHistogram, TStop: 1, Version: 1, CalibVersion: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Dependent analysis blocks deletion (§5.3 integrity constraints).
	if err := d.DeleteHLE(alice, hleID); err == nil {
		t.Fatal("HLE with dependent analysis deleted")
	}
	if err := d.DeleteANA(alice, anaID); err != nil {
		t.Fatal(err)
	}
	if err := d.DeleteHLE(alice, hleID); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetHLE(alice, hleID); err == nil {
		t.Fatal("deleted HLE still present")
	}
}

func TestFindExistingAnalysis(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	hleID, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 100, Version: 1, CalibVersion: 1})
	spec := &schema.ANA{
		HLEID: hleID, Type: schema.AnaLightcurve,
		TStart: 0, TStop: 100, TimeBins: 64, ApproxFrac: 1, Version: 1, CalibVersion: 1,
	}
	// Nothing yet.
	if found, err := d.FindExistingAnalysis(alice, spec); err != nil || found != nil {
		t.Fatalf("found = %v, err = %v", found, err)
	}
	specCopy := *spec
	if _, err := d.ImportAnalysis(alice, &specCopy, nil); err != nil {
		t.Fatal(err)
	}
	found, err := d.FindExistingAnalysis(alice, spec)
	if err != nil || found == nil {
		t.Fatalf("existing analysis not found: %v %v", found, err)
	}
	// Different parameters do not match.
	other := *spec
	other.TimeBins = 128
	if found, _ := d.FindExistingAnalysis(alice, &other); found != nil {
		t.Fatal("mismatched parameters matched")
	}
	// Bob cannot see alice's private analysis as "already done" (§3.5
	// applies to data he may access).
	bob := newScientist(t, d, "bob")
	if found, _ := d.FindExistingAnalysis(bob, spec); found != nil {
		t.Fatal("private analysis offered to another user")
	}
}

func TestCatalogMembershipAndBrowse(t *testing.T) {
	d := newTestDM(t)
	sys := d.systemSession()
	alice := newScientist(t, d, "alice")

	hle1, _ := d.CreateHLE(sys, &schema.HLE{KindHint: "flare", Public: true, TStop: 1, Version: 1, CalibVersion: 1})
	hle2, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})

	if err := d.AddToCatalog(sys, StandardCat, hle1); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := d.AddToCatalog(sys, StandardCat, hle1); err != nil {
		t.Fatal(err)
	}
	// Alice cannot edit the shared catalog.
	if err := d.AddToCatalog(alice, StandardCat, hle2); !IsDenied(err) {
		t.Fatalf("alice edited shared catalog: %v", err)
	}
	// Private workspace catalog.
	wsID, err := d.CreateCatalog(alice, "alice-workspace", "private", "my events", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddToCatalog(alice, wsID, hle2); err != nil {
		t.Fatal(err)
	}
	// Referential integrity: unknown member rejected.
	if err := d.AddToCatalog(alice, wsID, "hle-nope"); err == nil {
		t.Fatal("unknown HLE added to catalog")
	}
	// Browse through the catalog.
	got, err := d.QueryHLEs(alice, HLEFilter{Catalog: wsID})
	if err != nil || len(got) != 1 || got[0].ID != hle2 {
		t.Fatalf("workspace members = %v %v", got, err)
	}
	// Bob can't see alice's workspace.
	bob := newScientist(t, d, "bob")
	if _, err := d.QueryHLEs(bob, HLEFilter{Catalog: wsID}); !IsDenied(err) {
		t.Fatalf("bob browsed alice's workspace: %v", err)
	}
	// Member counts in listing.
	cats, _ := d.ListCatalogs(alice)
	for _, c := range cats {
		if c.ID == StandardCat && c.Members != 1 {
			t.Fatalf("standard members = %d", c.Members)
		}
	}
}

func TestNameMappingResolve(t *testing.T) {
	d := newTestDM(t)
	itemID, _ := d.nextID("item")
	if err := d.StoreItemFiles(itemID, ImportUser, true, []StoredFile{
		{Suffix: ".gif", Format: "gif", Data: []byte("img")},
	}); err != nil {
		t.Fatal(err)
	}
	before := d.MetaDB().Stats().Queries

	rn, err := d.Resolve(itemID, schema.NameFile)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: two extra queries on indexed fields (the transform lookup is a
	// third, separate concern; tolerate 2-3).
	cost := d.MetaDB().Stats().Queries - before
	if cost < 2 || cost > 3 {
		t.Fatalf("name construction cost = %d queries", cost)
	}
	if rn.ArchiveID != "disk-0" || rn.Format != "gif" {
		t.Fatalf("resolved = %+v", rn)
	}
	if !strings.HasPrefix(rn.Full, "/archives/disk-0/") {
		t.Fatalf("full name = %q", rn.Full)
	}
	url, err := d.Resolve(itemID, schema.NameURL)
	if err != nil {
		t.Fatal(err)
	}
	if url.Full != "http://hedc.test/dl/"+itemID {
		t.Fatalf("url = %q", url.Full)
	}
	if _, err := d.Resolve("item-missing", schema.NameFile); err == nil {
		t.Fatal("missing item resolved")
	}
}

func TestRelocateItemLive(t *testing.T) {
	d := newTestDM(t)
	tape, err := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(tape, "/archives/tape-0"); err != nil {
		t.Fatal(err)
	}
	itemID, _ := d.nextID("item")
	if err := d.StoreItemFiles(itemID, ImportUser, true, []StoredFile{
		{Suffix: ".fits.gz", Format: "fits.gz", Data: []byte("raw-data")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.RelocateItem(itemID, "tape-0"); err != nil {
		t.Fatal(err)
	}
	rn, err := d.Resolve(itemID, schema.NameFile)
	if err != nil {
		t.Fatal(err)
	}
	if rn.ArchiveID != "tape-0" {
		t.Fatalf("item still on %s", rn.ArchiveID)
	}
	// Data still readable through the same item id — no domain tuples
	// were touched (§4.3).
	data, _, err := d.ReadItem(d.systemSession(), itemID)
	if err != nil || string(data) != "raw-data" {
		t.Fatalf("read after relocation: %q %v", data, err)
	}
	// Old archive no longer holds the file.
	if d.archives.Get("disk-0").Exists(rn.Path) {
		t.Fatal("source copy not removed")
	}
	// Relocating to the same archive is a no-op.
	if err := d.RelocateItem(itemID, "tape-0"); err != nil {
		t.Fatal(err)
	}
}

func smallUnit(t *testing.T) *telemetry.Unit {
	t.Helper()
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 55, DayLength: 1800, BackgroundRate: 4, Flares: 1, Bursts: 0,
	})
	units := telemetry.SegmentDay(day, 1800)
	if len(units) != 1 {
		t.Fatal("expected one unit")
	}
	return units[0]
}

func TestLoadUnitPipeline(t *testing.T) {
	d := newTestDM(t)
	u := smallUnit(t)
	rep, err := d.LoadUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Photons != len(u.Photons) || rep.Views != ViewPartitions {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Events == 0 {
		t.Fatal("no events detected in a unit with a flare")
	}
	// Double load rejected.
	if _, err := d.LoadUnit(u); err == nil {
		t.Fatal("unit loaded twice")
	}
	// The detected events are in the extended catalog and public.
	got, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rep.Events {
		t.Fatalf("extended catalog has %d events, report says %d", len(got), rep.Events)
	}
	// Raw photons come back through the DM.
	photons, bytesRead, err := d.RawPhotons(nil, 0, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(photons) != len(u.Photons) {
		t.Fatalf("raw photons = %d, want %d", len(photons), len(u.Photons))
	}
	if bytesRead == 0 {
		t.Fatal("no bytes accounted")
	}
	// Views come back decoded.
	views, err := d.ViewsInRange(nil, 0, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != ViewPartitions {
		t.Fatalf("views = %d", len(views))
	}
	var totalFromViews float64
	for _, v := range views {
		for _, x := range v.Lightcurve(1) {
			totalFromViews += x
		}
	}
	if totalFromViews < float64(len(u.Photons))/2 {
		t.Fatalf("views reconstruct %v counts of %d photons", totalFromViews, len(u.Photons))
	}
}

func TestRecalibrationVersioning(t *testing.T) {
	d := newTestDM(t)
	u := smallUnit(t)
	rep, err := d.LoadUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events == 0 {
		t.Skip("no events for this seed")
	}
	sys := d.systemSession()

	// An analysis against calibration v1.
	anaID, err := d.ImportAnalysis(sys, &schema.ANA{
		HLEID: rep.HLEs[0], Type: schema.AnaLightcurve,
		TStop: 100, Version: 1, CalibVersion: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No stale analyses yet.
	stale, err := d.StaleAnalyses(sys)
	if err != nil || len(stale) != 0 {
		t.Fatalf("stale = %v %v", stale, err)
	}
	// Recalibrate the unit.
	v, err := d.Recalibrate(rep.UnitID, "grid transmission correction")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("version = %d", v)
	}
	// The HLE carries the new version; the analysis is now stale.
	h, _ := d.GetHLE(sys, rep.HLEs[0])
	if h.Version != 2 {
		t.Fatalf("HLE version = %d", h.Version)
	}
	stale, err = d.StaleAnalyses(sys)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range stale {
		if a.ID == anaID {
			found = true
		}
	}
	if !found {
		t.Fatalf("analysis %s not flagged stale: %v", anaID, stale)
	}
}

func TestIDAllocatorSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := minidb.Open(dir, schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Options{MetaDB: db, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	first, _ := d.nextID("hle")
	second, _ := d.nextID("hle")
	if first == second {
		t.Fatal("duplicate ids")
	}
	db.Close()

	db2, err := minidb.Open(dir, schema.AllSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	d2, err := Open(Options{MetaDB: db2, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	third, _ := d2.nextID("hle")
	if third == first || third == second {
		t.Fatalf("id %s reused after reopen", third)
	}
}

func TestVerticalPartitioning(t *testing.T) {
	metaDB, err := minidb.Open("", schema.GenericSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	domainDB, err := minidb.Open("", schema.DomainSchemas()...)
	if err != nil {
		t.Fatal(err)
	}
	arch, _ := archive.New("disk-0", archive.Disk, t.TempDir(), 0)
	d, err := Open(Options{
		MetaDB: metaDB, DomainDB: domainDB,
		DefaultArchive: "disk-0", Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(arch, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bootstrap("secret"); err != nil {
		t.Fatal(err)
	}
	alice := newScientist(t, d, "alice")
	if _, err := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1}); err != nil {
		t.Fatal(err)
	}
	// The HLE landed in the domain DB, users in the meta DB.
	if domainDB.TableLen(schema.TableHLE) != 1 {
		t.Fatal("HLE not routed to domain partition")
	}
	if metaDB.TableLen(schema.TableUsers) != 2 { // import + alice
		t.Fatalf("users = %d in meta partition", metaDB.TableLen(schema.TableUsers))
	}
	if domainDB.TableLen(schema.TableUsers) != -1 {
		t.Fatal("users table exists in domain partition")
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	d.QueryHLEs(alice, HLEFilter{})
	st := d.Stats()
	if st.Requests.Load() == 0 || st.Queries.Load() == 0 || st.Edits.Load() == 0 {
		t.Fatalf("stats not accounted: req=%d q=%d e=%d",
			st.Requests.Load(), st.Queries.Load(), st.Edits.Load())
	}
}

func TestServiceRegistry(t *testing.T) {
	d := newTestDM(t)
	if err := d.RegisterService("node-0/dm", "dm", "node-0"); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterService("node-0/web", "web", "node-0"); err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterService("", "dm", ""); err == nil {
		t.Fatal("empty registration accepted")
	}
	// Upsert, not duplicate.
	if err := d.RegisterService("node-0/dm", "dm", "node-0-bis"); err != nil {
		t.Fatal(err)
	}
	all, err := d.Services("")
	if err != nil || len(all) != 2 {
		t.Fatalf("services = %v %v", all, err)
	}
	if all[0].Location != "node-0-bis" {
		t.Fatalf("upsert failed: %+v", all[0])
	}
	web, _ := d.Services("web")
	if len(web) != 1 || web[0].ID != "node-0/web" {
		t.Fatalf("web services = %v", web)
	}
	// Heartbeat moves the timestamp forward.
	before := all[0].Heartbeat
	if err := d.ServiceHeartbeat("node-0/dm"); err != nil {
		t.Fatal(err)
	}
	after, _ := d.Services("dm")
	if after[0].Heartbeat < before {
		t.Fatal("heartbeat did not advance")
	}
	if err := d.ServiceHeartbeat("ghost"); err == nil {
		t.Fatal("heartbeat from unknown service accepted")
	}
	// Offline flag.
	if err := d.MarkServiceOffline("node-0/web"); err != nil {
		t.Fatal(err)
	}
	web, _ = d.Services("web")
	if web[0].Status != "offline" {
		t.Fatalf("status = %s", web[0].Status)
	}
}

func TestDeleteANARemovesFiles(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	hleID, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})
	anaID, err := d.ImportAnalysis(alice, &schema.ANA{
		HLEID: hleID, Type: schema.AnaHistogram, TStop: 1, Version: 1, CalibVersion: 1,
	}, []StoredFile{
		{Suffix: ".gif", Format: "gif", Data: []byte("img")},
		{Suffix: ".log", Format: "log", Data: []byte("log")},
	})
	if err != nil {
		t.Fatal(err)
	}
	ana, _ := d.GetANA(alice, anaID)
	arch := d.archives.Get("disk-0")
	filesBefore := arch.Len()
	entriesBefore := d.MetaDB().TableLen(schema.TableLocEntries)
	if filesBefore != 2 || entriesBefore != 4 { // 2 files x (file + url entries)
		t.Fatalf("precondition: files=%d entries=%d", filesBefore, entriesBefore)
	}
	// Bob cannot delete alice's analysis.
	bob := newScientist(t, d, "bob")
	if err := d.DeleteANA(bob, anaID); err == nil {
		t.Fatal("bob deleted alice's analysis")
	}
	if err := d.DeleteANA(alice, anaID); err != nil {
		t.Fatal(err)
	}
	// Compensation: files and location entries are gone.
	if arch.Len() != 0 {
		t.Fatalf("archive still holds %d files", arch.Len())
	}
	if n := d.MetaDB().TableLen(schema.TableLocEntries); n != 0 {
		t.Fatalf("loc entries left: %d", n)
	}
	if _, _, err := d.ReadItem(alice, ana.ItemID); err == nil {
		t.Fatal("deleted item still resolves")
	}
}

func TestCatalogBrowsePaging(t *testing.T) {
	d := newTestDM(t)
	sys := d.systemSession()
	for i := 0; i < 10; i++ {
		id, err := d.CreateHLE(sys, &schema.HLE{
			KindHint: "flare", Public: true,
			TStart: float64(i), TStop: float64(i) + 1, Version: 1, CalibVersion: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddToCatalog(sys, ExtendedCat, id); err != nil {
			t.Fatal(err)
		}
	}
	page1, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat, Limit: 4})
	if err != nil || len(page1) != 4 {
		t.Fatalf("page1 = %d %v", len(page1), err)
	}
	page2, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat, Limit: 4, Offset: 4})
	if err != nil || len(page2) != 4 {
		t.Fatalf("page2 = %d %v", len(page2), err)
	}
	if page1[0].ID == page2[0].ID {
		t.Fatal("paging returned overlapping pages")
	}
	tail, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat, Offset: 8})
	if err != nil || len(tail) != 2 {
		t.Fatalf("tail = %d %v", len(tail), err)
	}
	none, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat, Offset: 50})
	if err != nil || len(none) != 0 {
		t.Fatalf("past-end = %d %v", len(none), err)
	}
}

package dm

import (
	"fmt"
	"path"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/archive"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

// Parallel ingest (process layer). LoadUnit performs its ~30 database
// operations one transaction at a time; loading a mission day that way
// serializes CPU-heavy derivation (gzip packaging, wavelet transforms,
// event detection) behind one fsync per tuple. LoadUnits restructures the
// same workflow as a two-stage pipeline:
//
//	derive workers (CPU): dup-check, gzip-FITS packaging, wavelet views,
//	    event detection          -- embarrassingly parallel, no writes
//	        | bounded channel (backpressure)
//	store workers (I/O): archive files, then THREE batched transactions
//	    per unit -- location entries (meta), domain tuples (raw unit +
//	    views + HLEs + catalog members), lineage + log (meta)
//
// Store workers commit concurrently, so the engine's group-commit path
// merges their batches into shared fsyncs; over dbnet each batch is one
// round trip. Id allocation is bulk (nextIDs), one sequence claim per
// block instead of one per id. The derived tuples, rows and archive
// layout are identical to LoadUnit's — only the transaction boundaries
// and scheduling differ.

// derivedUnit is the output of the CPU stage for one unit.
type derivedUnit struct {
	u          *telemetry.Unit
	unitID     string
	raw        []byte // gzip-FITS archive representation
	views      []*wavelet.View
	detections []analysis.Detection
}

// LoadUnits ingests many raw units through the parallel pipeline. workers
// bounds both stages (<=0 means GOMAXPROCS). Reports are returned in input
// order; on error the first failure is returned together with the reports
// of the units that completed before the pipeline drained (failed or
// skipped slots are nil). Usage accounting is aggregated into one record
// per metric rather than one per unit.
func (d *DM) LoadUnits(units []*telemetry.Unit, workers int) ([]*LoadReport, error) {
	if len(units) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}
	// Referential context checked once, not once per detection: the shared
	// catalogs must exist (Bootstrap creates them).
	sys := d.systemSession()
	if _, err := d.getCatalog(sys, ExtendedCat); err != nil {
		return nil, err
	}
	if _, err := d.getCatalog(sys, StandardCat); err != nil {
		return nil, err
	}

	type job struct {
		idx int
		u   *telemetry.Unit
	}
	type derived struct {
		idx int
		dv  *derivedUnit
	}

	var (
		failed  atomic.Bool
		errMu   sync.Mutex
		loadErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if loadErr == nil {
			loadErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}

	// The store stage is not CPU-bound: it spends its time waiting on fsyncs
	// (archive files, WAL group commits) or on dbnet round trips, all of
	// which overlap across goroutines even on a single core. Run it wider
	// than the CPU stage so those waits actually overlap.
	storeWorkers := 4 * workers
	if storeWorkers > 16 {
		storeWorkers = 16
	}
	if storeWorkers > len(units) {
		storeWorkers = len(units)
	}

	jobs := make(chan job)
	derivedCh := make(chan derived, storeWorkers) // bounded: backpressure on the CPU stage
	reports := make([]*LoadReport, len(units))

	var deriveWG, storeWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		deriveWG.Add(1)
		go func() {
			defer deriveWG.Done()
			for j := range jobs {
				if failed.Load() {
					continue
				}
				dv, err := d.deriveUnit(j.u)
				if err != nil {
					setErr(err)
					continue
				}
				derivedCh <- derived{idx: j.idx, dv: dv}
			}
		}()
	}
	for w := 0; w < storeWorkers; w++ {
		storeWG.Add(1)
		go func() {
			defer storeWG.Done()
			for dr := range derivedCh {
				if failed.Load() {
					continue
				}
				rep, err := d.storeUnit(dr.dv)
				if err != nil {
					setErr(err)
					continue
				}
				reports[dr.idx] = rep
			}
		}()
	}
	for i, u := range units {
		jobs <- job{idx: i, u: u}
	}
	close(jobs)
	deriveWG.Wait()
	close(derivedCh)
	storeWG.Wait()

	var loaded, photons, events int
	for _, r := range reports {
		if r == nil {
			continue
		}
		loaded++
		photons += r.Photons
		events += r.Events
	}
	if loaded > 0 {
		_ = d.RecordUsage("units_loaded", float64(loaded), ImportUser)
		_ = d.RecordUsage("photons_loaded", float64(photons), ImportUser)
	}
	d.logOp("info", "load", "bulk: %d/%d units, %d photons, %d events (%d workers)",
		loaded, len(units), photons, events, workers)
	return reports, loadErr
}

// deriveUnit is the CPU stage: everything LoadUnit computes before its
// first write, for one unit, with no database mutations.
func (d *DM) deriveUnit(u *telemetry.Unit) (*derivedUnit, error) {
	d.stats.Requests.Add(1)
	unitID := u.Name()
	if res, err := d.query(minidb.Query{
		Table: schema.TableRawUnits, Count: true,
		Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpEq, Val: minidb.S(unitID)}},
	}); err != nil {
		return nil, err
	} else if res.Count > 0 {
		return nil, fmt.Errorf("dm: unit %s already loaded", unitID)
	}
	raw, err := u.PackGz()
	if err != nil {
		return nil, err
	}
	views := wavelet.PartitionViews(u.Photons, u.TStart, u.TStop,
		telemetry.EnergyMin, telemetry.EnergyMax,
		ViewPartitions, ViewTimeBins, ViewEnergyBins, ViewKeep)
	detections := analysis.DetectEvents(u.Photons, u.TStart, u.TStop, analysis.DetectConfig{})
	return &derivedUnit{u: u, unitID: unitID, raw: raw, views: views, detections: detections}, nil
}

// idNum extracts the numeric part of a "prefix-n" identifier.
func idNum(id string) int64 {
	var n int64
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '-' {
			fmt.Sscanf(id[i+1:], "%d", &n)
			break
		}
	}
	return n
}

// storeUnit is the I/O stage: archive the derived files, then commit the
// unit's tuples in three batched transactions (location entries; domain
// tuples; lineage + log). Rows match LoadUnit's exactly. Compensation
// mirrors the serial path: a failed domain commit removes the archive
// files and the location entries that reference them.
func (d *DM) storeUnit(dv *derivedUnit) (*LoadReport, error) {
	arch := d.archives.Get(d.defArch)
	if arch == nil {
		return nil, fmt.Errorf("dm: default archive %q not registered", d.defArch)
	}
	u := dv.u
	nItems := 1 + len(dv.views)
	nEvents := len(dv.detections)
	flares := 0
	for _, det := range dv.detections {
		if det.KindHint == "flare" {
			flares++
		}
	}
	// Bulk id allocation: one claim per prefix block, not one per id.
	itemIDs, err := d.nextIDs("item", nItems)
	if err != nil {
		return nil, err
	}
	locIDs, err := d.nextIDs("loc", 2*nItems)
	if err != nil {
		return nil, err
	}
	hleIDs, err := d.nextIDs("hle", nEvents)
	if err != nil {
		return nil, err
	}
	memIDs, err := d.nextIDs("mem", nEvents+flares)
	if err != nil {
		return nil, err
	}
	linIDs, err := d.nextIDs("lin", 1+nEvents)
	if err != nil {
		return nil, err
	}
	logIDs, err := d.nextIDs("log", 1)
	if err != nil {
		return nil, err
	}

	// 1. Archive files first — durable before anything references them
	// (same contract as StoreItemFiles).
	type stored struct {
		itemID  string
		relPath string
		format  string
		size    int64
	}
	files := make([]stored, 0, nItems)
	data := make([][]byte, 0, nItems)
	files = append(files, stored{itemID: itemIDs[0], relPath: path.Join("fits.gz", itemIDs[0]+".fits.gz"), format: "fits.gz", size: int64(len(dv.raw))})
	data = append(data, dv.raw)
	for i, v := range dv.views {
		enc := v.Enc.Bytes()
		files = append(files, stored{itemID: itemIDs[1+i], relPath: path.Join("wavelet", itemIDs[1+i]+".wav"), format: "wavelet", size: int64(len(enc))})
		data = append(data, enc)
	}
	removeFiles := func(upto int) {
		for i := 0; i < upto; i++ {
			_ = arch.Remove(files[i].relPath)
		}
	}
	batch := make([]archive.BatchFile, len(files))
	for i, f := range files {
		batch[i] = archive.BatchFile{Rel: f.relPath, Day: int64(u.Day), Data: data[i]}
	}
	// One bulk store: per-file data fsyncs plus a single manifest fsync for
	// the unit's whole file group, instead of a manifest fsync per file.
	if err := arch.StoreBatch(batch); err != nil {
		return nil, fmt.Errorf("dm: store files for %s: %w", dv.unitID, err)
	}

	// When every table routes to the same engine (single-database
	// deployment — the common case), the whole unit commits as ONE
	// transaction: one WAL fsync, one wire round trip, and no compensation
	// path, since the location entries, domain tuples and lineage become
	// all-or-nothing together. With split meta/domain engines the unit
	// commits in three batches with the serial path's compensation.
	metaDB := d.routeDB(schema.TableLocEntries)
	domDB := d.routeDB(schema.TableRawUnits)
	combined := metaDB == domDB

	// 2. Location entries: one meta transaction for the whole unit.
	var locBatch, dom minidb.Batch
	locB := &locBatch
	if combined {
		locB = &dom
	}
	for i, f := range files {
		for j, nameType := range []string{schema.NameFile, schema.NameURL} {
			locB.Insert(schema.TableLocEntries, minidb.Row{
				minidb.I(idNum(locIDs[2*i+j])), minidb.S(f.itemID), minidb.S(nameType),
				minidb.S(arch.ID()), minidb.S(f.relPath),
				minidb.I(f.size), minidb.S(f.format),
				minidb.S(ImportUser), minidb.Bo(true),
			})
		}
	}
	var locRowIDs []int64
	if !combined {
		locRowIDs, err = metaDB.Apply(&locBatch)
		if err != nil {
			removeFiles(len(files))
			return nil, err
		}
		d.stats.Edits.Add(int64(locBatch.Len()))
	}
	d.stats.FilesStored.Add(int64(len(files)))
	for _, f := range files {
		d.stats.BytesStored.Add(f.size)
	}

	// 3. Domain tuples: raw unit, views, detected HLEs and their catalog
	// memberships — one domain transaction.
	now := nowSecs()
	report := &LoadReport{
		UnitID: dv.unitID, ItemID: itemIDs[0],
		Photons: len(u.Photons), RawBytes: int64(len(dv.raw)),
		Views: len(dv.views), Events: nEvents,
	}
	dom.Insert(schema.TableRawUnits, minidb.Row{
		minidb.S(dv.unitID), minidb.I(int64(u.Day)), minidb.I(int64(u.Seq)),
		minidb.F(u.TStart), minidb.F(u.TStop), minidb.I(int64(len(u.Photons))),
		minidb.I(1), minidb.S(itemIDs[0]),
	})
	for i, v := range dv.views {
		dom.Insert(schema.TableViews, minidb.Row{
			minidb.S(fmt.Sprintf("%s-v%02d", dv.unitID, i)), minidb.S(dv.unitID),
			minidb.F(v.TStart), minidb.F(v.TStop),
			minidb.F(v.EMin), minidb.F(v.EMax),
			minidb.I(int64(v.TimeBins)), minidb.I(int64(v.EnergyBins)),
			minidb.F(ViewKeep), minidb.S(itemIDs[1+i]),
		})
	}
	mem := 0
	addMember := func(catalogID, hleID string) {
		dom.Insert(schema.TableCatalogMembers, minidb.Row{
			minidb.I(idNum(memIDs[mem])), minidb.S(catalogID), minidb.S(hleID),
			minidb.S(ImportUser), minidb.F(now),
		})
		mem++
	}
	for k, det := range dv.detections {
		h := &schema.HLE{
			ID: hleIDs[k], Version: 1, Owner: ImportUser, Public: true,
			Label:    fmt.Sprintf("%s %s t=%.0fs", dv.unitID, det.KindHint, det.TStart),
			KindHint: det.KindHint,
			TStart:   det.TStart, TStop: det.TStop,
			EMin: telemetry.EnergyMin, EMax: telemetry.EnergyMax,
			PeakRate: det.PeakRate, TotalCounts: det.TotalCounts,
			Background: det.Background, Significance: det.Significance,
			UnitID: dv.unitID, Day: int64(u.Day), Quality: 3,
			Origin: "auto", CalibVersion: 1,
			Created: now, Modified: now,
		}
		dom.Insert(schema.TableHLE, h.ToRow())
		addMember(ExtendedCat, hleIDs[k])
		if det.KindHint == "flare" {
			addMember(StandardCat, hleIDs[k])
		}
		report.HLEs = append(report.HLEs, hleIDs[k])
	}
	// 4. Lineage and operational log — best-effort in split mode, atomic
	// with the rest of the unit in combined mode.
	var meta2 minidb.Batch
	metaB := &meta2
	if combined {
		metaB = &dom
	}
	metaB.Insert(schema.TableLineage, minidb.Row{
		minidb.I(idNum(linIDs[0])), minidb.S(dv.unitID), minidb.Null(), minidb.S("load"),
		minidb.I(1), minidb.F(now), minidb.S(fmt.Sprintf("%d photons", len(u.Photons))),
	})
	for k := range dv.detections {
		metaB.Insert(schema.TableLineage, minidb.Row{
			minidb.I(idNum(linIDs[1+k])), minidb.S(hleIDs[k]), minidb.S(dv.unitID), minidb.S("create"),
			minidb.I(1), minidb.F(now), minidb.S("hle by " + ImportUser),
		})
	}
	msg := fmt.Sprintf("unit %s: %d photons, %d views, %d events",
		dv.unitID, report.Photons, report.Views, report.Events)
	metaB.Insert(schema.TableLogs, minidb.Row{
		minidb.I(idNum(logIDs[0])), minidb.F(now), minidb.S("info"), minidb.S("load"), minidb.S(msg),
	})

	if combined {
		// One transaction for the entire unit.
		if _, err := domDB.Apply(&dom); err != nil {
			removeFiles(len(files))
			return nil, err
		}
		d.stats.Edits.Add(int64(dom.Len()))
	} else {
		if _, err := domDB.Apply(&dom); err != nil {
			// Compensation: delete the location entries, then the files.
			var undo minidb.Batch
			for _, rid := range locRowIDs {
				undo.Delete(schema.TableLocEntries, rid)
			}
			_, _ = metaDB.Apply(&undo)
			removeFiles(len(files))
			return nil, err
		}
		d.stats.Edits.Add(int64(dom.Len()))
		if _, err := d.routeDB(schema.TableLineage).Apply(&meta2); err == nil {
			d.stats.Edits.Add(int64(meta2.Len()))
		}
	}
	d.stats.EventsDetected.Add(int64(nEvents))
	d.stats.UnitsLoaded.Add(1)
	d.logger.Printf("[%s] info load: %s", d.node, msg)
	return report, nil
}

package dm

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/telemetry"
)

// TestLoadUnitsMatchesSerial: the pipeline must leave the repository in the
// same state as the serial loader — same tuples in every table, same files,
// same read-back photons.
func TestLoadUnitsMatchesSerial(t *testing.T) {
	day := telemetry.GenerateDay(7, telemetry.Config{DayLength: 14400, Flares: 3, Bursts: 1})
	units := telemetry.SegmentDay(day, 1800)
	if len(units) < 4 {
		t.Fatalf("segmentation gave %d units", len(units))
	}

	serial := newTestDM(t)
	for _, u := range units {
		if _, err := serial.LoadUnit(u); err != nil {
			t.Fatal(err)
		}
	}
	piped := newTestDM(t)
	reports, err := piped.LoadUnits(units, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(units) {
		t.Fatalf("reports=%d, want %d", len(reports), len(units))
	}
	for i, r := range reports {
		if r == nil {
			t.Fatalf("report %d is nil", i)
		}
		if r.UnitID != units[i].Name() {
			t.Fatalf("report %d out of order: %s != %s", i, r.UnitID, units[i].Name())
		}
	}

	for _, table := range []string{
		schema.TableRawUnits, schema.TableViews, schema.TableHLE,
		schema.TableCatalogMembers, schema.TableLocEntries, schema.TableLineage,
	} {
		if got, want := piped.routeDB(table).TableLen(table), serial.routeDB(table).TableLen(table); got != want {
			t.Errorf("table %s: pipeline=%d serial=%d", table, got, want)
		}
	}

	// Read-back equivalence: the photons come out identical either way.
	sys := piped.systemSession()
	t0, t1 := units[0].TStart, units[len(units)-1].TStop
	p1, _, err := piped.RawPhotons(sys, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := serial.RawPhotons(serial.systemSession(), t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("read-back photons: pipeline=%d serial=%d", len(p1), len(p2))
	}
	// And the catalogs carry the same membership counts.
	for _, cat := range []string{StandardCat, ExtendedCat} {
		n1, err := piped.CatalogMemberCount(cat)
		if err != nil {
			t.Fatal(err)
		}
		n2, err := serial.CatalogMemberCount(cat)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Errorf("catalog %s: pipeline=%d serial=%d members", cat, n1, n2)
		}
	}
}

// TestLoadUnitsDuplicate: a unit that is already loaded fails the batch
// with the same error the serial loader gives.
func TestLoadUnitsDuplicate(t *testing.T) {
	d := newTestDM(t)
	day := telemetry.GenerateDay(3, telemetry.Config{DayLength: 7200})
	units := telemetry.SegmentDay(day, 3600)
	if _, err := d.LoadUnit(units[0]); err != nil {
		t.Fatal(err)
	}
	_, err := d.LoadUnits(units, 2)
	if err == nil || !strings.Contains(err.Error(), "already loaded") {
		t.Fatalf("want already-loaded error, got %v", err)
	}
}

// TestLoadUnitsEmpty: a nil batch is a no-op.
func TestLoadUnitsEmpty(t *testing.T) {
	d := newTestDM(t)
	reports, err := d.LoadUnits(nil, 4)
	if err != nil || reports != nil {
		t.Fatalf("empty load: %v %v", reports, err)
	}
}

// TestNextIDsBulk: the bulk allocator hands out unique ids, reuses the
// local window, and claims at most what it needs beyond a block.
func TestNextIDsBulk(t *testing.T) {
	d := newTestDM(t)
	seen := map[string]bool{}
	for _, n := range []int{1, 5, 64, 200, 3} {
		ids, err := d.nextIDs("bulk", n)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != n {
			t.Fatalf("nextIDs(%d) gave %d ids", n, len(ids))
		}
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("duplicate id %s", id)
			}
			seen[id] = true
		}
	}
	// Interleaves cleanly with the single-id form.
	id, err := d.nextID("bulk")
	if err != nil {
		t.Fatal(err)
	}
	if seen[id] {
		t.Fatalf("nextID reissued %s", id)
	}
}

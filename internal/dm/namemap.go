package dm

import (
	"fmt"
	"path"

	"repro/internal/archive"
	"repro/internal/minidb"
	"repro/internal/schema"
)

// Dynamic name mapping (§4.3). Every file reference in the domain schema is
// an item id; the location tables resolve it on demand to a concrete name
// of the form [type][root][path][item_id]. "The cost of this dynamic name
// construction is two extra database queries on an indexed field" — exactly
// the two queries Resolve issues — and the payoff is that administrators
// relocate files by editing location tuples, at run time, without touching
// a single tuple in the domain part of the schema.

// ResolvedName is the outcome of name construction.
type ResolvedName struct {
	ItemID    string
	NameType  string // file | tuple | url
	ArchiveID string
	Path      string // archive-relative path
	Full      string // assembled [root][path] name
	Bytes     int64
	Format    string
	Transform string // decode step the format requires (gunzip, ...)
	Owner     string
	Public    bool
}

// StoredFile describes one file to attach to an item.
type StoredFile struct {
	Suffix string // appended to the item id to form the path, e.g. ".gif"
	Format string // fits.gz | gif | wavelet | log | params
	Data   []byte
}

// StoreItemFiles stores the files of a new item in the default archive and
// registers location entries for them (one file entry and one URL entry
// each). Item ids are allocated by the caller so entity tuples can
// reference them. On any failure, previously stored files are removed —
// the compensation the DM's transactional entity handling requires (§4.4).
//
// Durability contract: archive.Store fsyncs both the data file and its
// manifest line before returning, and the location-entry transaction is
// sealed by a redo-log fsync before this method returns — so once
// StoreItemFiles acknowledges, a crash at any later instant loses neither
// the bytes nor the name mapping. A crash *during* the call leaves at most
// orphaned archive files (never location entries pointing at missing
// data), because files are made durable strictly before the entries that
// reference them. internal/torture enumerates every crash point of this
// path and verifies both halves of the contract.
func (d *DM) StoreItemFiles(itemID, owner string, public bool, files []StoredFile) (err error) {
	arch := d.archives.Get(d.defArch)
	if arch == nil {
		return fmt.Errorf("dm: default archive %q not registered", d.defArch)
	}
	var storedPaths []string
	defer func() {
		if err != nil {
			for _, p := range storedPaths {
				_ = arch.Remove(p)
			}
		}
	}()
	type pending struct {
		relPath string
		f       StoredFile
		ids     [2]int64 // pre-allocated entry ids (file + url)
	}
	var pendings []pending
	for _, f := range files {
		relPath := path.Join(f.Format, itemID+f.Suffix)
		if err = arch.Store(relPath, f.Data); err != nil {
			return fmt.Errorf("dm: store %s: %w", relPath, err)
		}
		storedPaths = append(storedPaths, relPath)
		p := pending{relPath: relPath, f: f}
		// Allocate entry ids BEFORE the transaction: the allocator itself
		// talks to the database and must not run under the entity lock.
		for i := range p.ids {
			id, idErr := d.nextID("loc")
			if idErr != nil {
				return idErr
			}
			fmt.Sscanf(id, "loc-%d", &p.ids[i])
		}
		pendings = append(pendings, p)
	}
	err = d.exec(schema.TableLocEntries, func(tx minidb.Tx) error {
		for _, p := range pendings {
			for i, nameType := range []string{schema.NameFile, schema.NameURL} {
				if _, insErr := tx.Insert(schema.TableLocEntries, minidb.Row{
					minidb.I(p.ids[i]), minidb.S(itemID), minidb.S(nameType),
					minidb.S(arch.ID()), minidb.S(p.relPath),
					minidb.I(int64(len(p.f.Data))), minidb.S(p.f.Format),
					minidb.S(owner), minidb.Bo(public),
				}); insErr != nil {
					return insErr
				}
				d.stats.Edits.Add(1)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	d.stats.FilesStored.Add(int64(len(files)))
	for _, f := range files {
		d.stats.BytesStored.Add(int64(len(f.Data)))
	}
	return nil
}

// Resolve performs dynamic name construction for one item: query the
// location entries by item id, pick the entry of the requested name type,
// then query the archive-location table for the current [path] root —
// two indexed queries.
func (d *DM) Resolve(itemID, nameType string) (*ResolvedName, error) {
	d.stats.NameLookups.Add(1)
	entries, err := d.query(minidb.Query{ // query 1: indexed on item_id
		Table: schema.TableLocEntries,
		Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(itemID)}},
	})
	if err != nil {
		return nil, err
	}
	var picked minidb.Row
	for _, row := range entries.Rows {
		if row[2].Str() == nameType {
			picked = row
			break
		}
	}
	if picked == nil {
		return nil, fmt.Errorf("dm: item %s has no %s name", itemID, nameType)
	}
	rn := &ResolvedName{
		ItemID:    itemID,
		NameType:  nameType,
		ArchiveID: picked[3].Str(),
		Path:      picked[4].Str(),
		Bytes:     picked[5].Int(),
		Format:    picked[6].Str(),
		Owner:     picked[7].Str(),
		Public:    picked[8].Bool(),
	}
	archRes, err := d.query(minidb.Query{ // query 2: indexed (primary key)
		Table: schema.TableLocArchives,
		Where: []minidb.Pred{{Col: "archive_id", Op: minidb.OpEq, Val: minidb.S(rn.ArchiveID)}},
	})
	if err != nil {
		return nil, err
	}
	root := ""
	if len(archRes.Rows) > 0 {
		root = archRes.Rows[0][2].Str()
	}
	switch nameType {
	case schema.NameFile:
		rn.Full = path.Join(root, rn.Path)
	case schema.NameURL:
		rn.Full = d.urlRoot + "/dl/" + itemID
	case schema.NameTuple:
		rn.Full = "tuple:" + rn.Path
	}
	if t, ok := d.transformFor(rn.Format); ok {
		rn.Transform = t
	}
	return rn, nil
}

// transformFor consults the location transform table (cached-free: the
// table is tiny and the query is a primary-key lookup).
func (d *DM) transformFor(format string) (string, bool) {
	res, err := d.query(minidb.Query{
		Table: schema.TableLocTransforms,
		Where: []minidb.Pred{{Col: "format", Op: minidb.OpEq, Val: minidb.S(format)}},
	})
	if err != nil || len(res.Rows) == 0 {
		return "", false
	}
	return res.Rows[0][1].Str(), true
}

// ReadItem resolves and reads the file behind an item id, enforcing the
// item's visibility against the session.
func (d *DM) ReadItem(s *Session, itemID string) ([]byte, *ResolvedName, error) {
	rn, err := d.Resolve(itemID, schema.NameFile)
	if err != nil {
		return nil, nil, err
	}
	if !d.mayRead(s, rn.Owner, rn.Public) {
		d.stats.AccessDenied.Add(1)
		return nil, nil, errDenied("read", itemID)
	}
	arch := d.archives.Get(rn.ArchiveID)
	if arch == nil {
		return nil, nil, fmt.Errorf("dm: archive %s not mounted", rn.ArchiveID)
	}
	data, err := arch.Read(rn.Path)
	if err != nil {
		return nil, nil, err
	}
	d.stats.FilesRead.Add(1)
	d.stats.BytesRead.Add(int64(len(data)))
	return data, rn, nil
}

// RegisterArchive mounts an archive and records it in both the operational
// archive table and the location-archive table.
func (d *DM) RegisterArchive(a *archive.Archive, pathRoot string) error {
	if err := d.archives.Add(a); err != nil {
		return err
	}
	err := d.exec(schema.TableArchives, func(tx minidb.Tx) error {
		if _, err := tx.Insert(schema.TableArchives, minidb.Row{
			minidb.S(a.ID()), minidb.S(a.Kind().String()), minidb.S("online"),
			minidb.I(a.CapacityLeft()), minidb.S(a.Root()),
		}); err != nil {
			return err
		}
		_, err := tx.Insert(schema.TableLocArchives, minidb.Row{
			minidb.S(a.ID()), minidb.S(a.Kind().String()), minidb.S(pathRoot), minidb.S("online"),
		})
		return err
	})
	if err == nil {
		d.stats.Edits.Add(2)
	}
	return err
}

// RelocateItem moves an item's file to another archive by copying the data
// and then updating only the location tuples — the domain schema is not
// touched, and the system keeps running (§4.3). If anything fails after the
// copy, the copy is removed (compensation, §5.2).
func (d *DM) RelocateItem(itemID, toArchive string) error {
	rn, err := d.Resolve(itemID, schema.NameFile)
	if err != nil {
		return err
	}
	if rn.ArchiveID == toArchive {
		return nil
	}
	src := d.archives.Get(rn.ArchiveID)
	dst := d.archives.Get(toArchive)
	if src == nil || dst == nil {
		return fmt.Errorf("dm: relocate %s: archive not mounted", itemID)
	}
	if err := archive.Copy(src, dst, rn.Path); err != nil {
		return fmt.Errorf("dm: relocate %s: %w", itemID, err)
	}
	err = d.exec(schema.TableLocEntries, func(tx minidb.Tx) error {
		res, qerr := tx.Query(minidb.Query{
			Table: schema.TableLocEntries,
			Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(itemID)}},
		})
		if qerr != nil {
			return qerr
		}
		for i, row := range res.Rows {
			if row[3].Str() != rn.ArchiveID {
				continue
			}
			updated := row.Clone()
			updated[3] = minidb.S(toArchive)
			if uerr := tx.Update(schema.TableLocEntries, res.RowIDs[i], updated); uerr != nil {
				return uerr
			}
			d.stats.Edits.Add(1)
		}
		return nil
	})
	if err != nil {
		_ = dst.Remove(rn.Path) // compensate: drop the copy
		return err
	}
	if err := src.Remove(rn.Path); err != nil {
		d.logOp("warn", "relocate", "source %s on %s not removed: %v", rn.Path, rn.ArchiveID, err)
	}
	_ = d.recordLineage(itemID, "", "migrate", 0, rn.ArchiveID+" -> "+toArchive)
	d.logOp("info", "relocate", "item %s moved %s -> %s", itemID, rn.ArchiveID, toArchive)
	return nil
}

package dm

import (
	"fmt"

	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Phoenix-2 ingestion: the second data source (§2.2). The spectrometer's
// PHX2 files have nothing in common with RHESSI's photon-list FITS units,
// yet loading them touches only this file — the generic machinery (name
// mapping, catalogs, HLE tuples, access control) absorbs the new source
// unchanged, which is precisely the §3.1 design claim.

// PhoenixCat is the catalog holding identified radio events ("The Phoenix
// catalog contains spectrograms for around 3000 identified solar events
// and is part of the extended catalog").
const PhoenixCat = "cat-phoenix"

// PhoenixReport summarizes one spectrogram load.
type PhoenixReport struct {
	FileID string
	ItemID string
	Bytes  int64
	Bursts int
	HLEs   []string
}

// ensurePhoenix creates the Phoenix catalog and the PHX2 transform row on
// first use.
func (d *DM) ensurePhoenix() error {
	res, err := d.query(minidb.Query{
		Table: schema.TableCatalog, Count: true,
		Where: []minidb.Pred{{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(PhoenixCat)}},
	})
	if err != nil {
		return err
	}
	if res.Count > 0 {
		return nil
	}
	sys := d.systemSession()
	id, err := d.CreateCatalog(sys, "Phoenix catalog", "extended",
		"radio events identified in Phoenix-2 spectrograms", true)
	if err != nil {
		return err
	}
	// Rebrand to the well-known id.
	row, err := d.query(minidb.Query{
		Table: schema.TableCatalog,
		Where: []minidb.Pred{{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil || len(row.Rows) == 0 {
		return fmt.Errorf("dm: phoenix catalog bootstrap failed: %v", err)
	}
	updated := row.Rows[0].Clone()
	updated[0] = minidb.S(PhoenixCat)
	if err := d.routeDB(schema.TableCatalog).Update(schema.TableCatalog, row.RowIDs[0], updated); err != nil {
		return err
	}
	// The new format's transform entry (§4.3 name mapping stays generic).
	_, err = d.meta.Insert(schema.TableLocTransforms, minidb.Row{
		minidb.S("phx2"), minidb.S("phx2-decode"), minidb.S("Phoenix-2 radio spectrogram"),
	})
	return err
}

// LoadPhoenix ingests one spectrogram: the PHX2 file is archived under the
// generic name mapping, radio bursts are detected, and each becomes a
// public HLE in both the Phoenix and the extended catalogs.
func (d *DM) LoadPhoenix(p *telemetry.PhoenixSpectrogram) (*PhoenixReport, error) {
	d.stats.Requests.Add(1)
	if err := d.ensurePhoenix(); err != nil {
		return nil, err
	}
	fileID := p.Name()
	// Reject double loads via the lineage table (phoenix files have no
	// raw_units tuple — they are not photon units).
	dup, err := d.query(minidb.Query{
		Table: schema.TableLineage, Count: true,
		Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(fileID)}},
	})
	if err != nil {
		return nil, err
	}
	if dup.Count > 0 {
		return nil, fmt.Errorf("dm: phoenix file %s already loaded", fileID)
	}

	data := p.Encode()
	itemID, err := d.nextID("item")
	if err != nil {
		return nil, err
	}
	if err := d.StoreItemFiles(itemID, ImportUser, true, []StoredFile{
		{Suffix: ".phx2", Format: "phx2", Data: data},
	}); err != nil {
		return nil, err
	}
	rep := &PhoenixReport{FileID: fileID, ItemID: itemID, Bytes: int64(len(data))}

	sys := d.systemSession()
	for _, b := range telemetry.DetectRadioBursts(p, 0) {
		h := &schema.HLE{
			Version: 1, Public: true,
			Label:    fmt.Sprintf("%s radio burst t=%.0fs", fileID, b.TStart),
			KindHint: "radio-burst",
			TStart:   b.TStart, TStop: b.TStop,
			// The energy columns carry the radio band in MHz for this
			// source; the schema stays unchanged (events, not types, §3.3).
			EMin: b.FreqLoMHz, EMax: b.FreqHiMHz,
			PeakRate: b.Peak, Day: int64(p.Day),
			ItemID: itemID, Quality: 3,
			Origin: "phoenix", CalibVersion: 1,
		}
		hleID, err := d.CreateHLE(sys, h)
		if err != nil {
			return nil, err
		}
		if err := d.AddToCatalog(sys, PhoenixCat, hleID); err != nil {
			return nil, err
		}
		if err := d.AddToCatalog(sys, ExtendedCat, hleID); err != nil {
			return nil, err
		}
		rep.Bursts++
		rep.HLEs = append(rep.HLEs, hleID)
		d.stats.EventsDetected.Add(1)
	}
	_ = d.recordLineage(fileID, "", "load", 1, fmt.Sprintf("phoenix %d bursts", rep.Bursts))
	d.logOp("info", "load", "phoenix %s: %d bytes, %d radio bursts", fileID, rep.Bytes, rep.Bursts)
	return rep, nil
}

package dm

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/minidb"
	"repro/internal/schema"
)

// Predefined queries (§4.1): the administrative section stores "predefined
// queries and reports" so that casual users get curated searches ("users
// can use either visual tools ..., predefined queries, or their own SQL
// queries", §1). A predefined query is a named, persisted HLEFilter.

const predefPrefix = "query."

// SavePredefinedQuery persists (or replaces) a named filter.
func (d *DM) SavePredefinedQuery(name, description string, f HLEFilter) error {
	if name == "" || strings.ContainsAny(name, " \t\n.") {
		return fmt.Errorf("dm: invalid predefined query name %q", name)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		return err
	}
	key := predefPrefix + name
	res, err := d.query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "key", Op: minidb.OpEq, Val: minidb.S(key)}},
	})
	if err != nil {
		return err
	}
	row := minidb.Row{
		minidb.S(key), minidb.S("query"), minidb.S(string(blob)), minidb.S(description),
	}
	if len(res.RowIDs) > 0 {
		err = d.meta.Update(schema.TableConfig, res.RowIDs[0], row)
	} else {
		_, err = d.meta.Insert(schema.TableConfig, row)
	}
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

// PredefinedQuery loads a named filter.
func (d *DM) PredefinedQuery(name string) (HLEFilter, string, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "key", Op: minidb.OpEq, Val: minidb.S(predefPrefix + name)}},
	})
	if err != nil {
		return HLEFilter{}, "", err
	}
	if len(res.Rows) == 0 {
		return HLEFilter{}, "", fmt.Errorf("dm: no predefined query %q", name)
	}
	var f HLEFilter
	if err := json.Unmarshal([]byte(res.Rows[0][2].Str()), &f); err != nil {
		return HLEFilter{}, "", fmt.Errorf("dm: corrupt predefined query %q: %w", name, err)
	}
	return f, res.Rows[0][3].Str(), nil
}

// PredefinedQueryInfo names a stored query for listings.
type PredefinedQueryInfo struct {
	Name        string
	Description string
}

// ListPredefinedQueries returns the stored query names, sorted.
func (d *DM) ListPredefinedQueries() ([]PredefinedQueryInfo, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "section", Op: minidb.OpEq, Val: minidb.S("query")}},
	})
	if err != nil {
		return nil, err
	}
	out := make([]PredefinedQueryInfo, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, PredefinedQueryInfo{
			Name:        strings.TrimPrefix(row[0].Str(), predefPrefix),
			Description: row[3].Str(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// RunPredefinedQuery loads and executes a named query under the session's
// visibility.
func (d *DM) RunPredefinedQuery(s *Session, name string) ([]*schema.HLE, error) {
	f, _, err := d.PredefinedQuery(name)
	if err != nil {
		return nil, err
	}
	return d.QueryHLEs(s, f)
}

package dm

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/fits"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/telemetry"
	"repro/internal/wavelet"
)

// Process layer (§5.2): workflows combining I/O-layer operations with
// semantic-layer services — raw data preparation, event filtering, entity
// association and catalog generation. Data loading implements §2.2's
// pipeline: raw units are stored, searched "for interesting events, using
// programs that detect a wider range of events such as solar flares, gamma
// ray bursts, or quiet periods", analyzed into catalog entries, and
// pre-processed into wavelet-compressed range-partitioned views (§3.4).

// Well-known ids created by Bootstrap.
const (
	ImportUser     = "import"
	StandardCat    = "cat-standard"
	ExtendedCat    = "cat-extended"
	ViewPartitions = 4
	ViewTimeBins   = 64
	ViewEnergyBins = 16
	ViewKeep       = 0.15
)

// systemSession returns the internal context used by loading and other
// background processes; its tuples are owned by the import user
// ("HEDC's catalogs, e.g., contain tuples created by an import user, and
// are later made public", §5.5).
func (d *DM) systemSession() *Session {
	return &Session{
		Token: "system", User: ImportUser, Group: GroupAdmin,
		Rights: map[string]bool{
			RightBrowse: true, RightDownload: true, RightAnalyze: true, RightUpload: true,
		},
		Kind: SessionHLE,
	}
}

// Bootstrap seeds a fresh repository: the import user, name-mapping roots
// and transforms, and the standard + extended catalogs. It is idempotent.
func (d *DM) Bootstrap(importPassword string) error {
	if res, err := d.query(minidb.Query{
		Table: schema.TableUsers, Count: true,
		Where: []minidb.Pred{{Col: "user_id", Op: minidb.OpEq, Val: minidb.S(ImportUser)}},
	}); err != nil {
		return err
	} else if res.Count > 0 {
		return nil // already bootstrapped
	}
	if err := d.CreateUser(ImportUser, importPassword, GroupAdmin,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		return err
	}
	err := d.exec(schema.TableLocRoots, func(tx minidb.Tx) error {
		for _, r := range [][2]string{
			{schema.NameFile, ""},
			{schema.NameURL, d.urlRoot},
			{schema.NameTuple, "hedc"},
		} {
			if _, err := tx.Insert(schema.TableLocRoots, minidb.Row{minidb.S(r[0]), minidb.S(r[1])}); err != nil {
				return err
			}
		}
		for _, tr := range [][3]string{
			{"fits.gz", "gunzip", "gzip-compressed FITS raw unit"},
			{"wavelet", "wavelet-decode", "compressed range-partitioned view"},
			{"gif", "none", "rendered analysis image"},
			{"log", "none", "process log"},
			{"params", "none", "analysis parameter record"},
		} {
			if _, err := tx.Insert(schema.TableLocTransforms, minidb.Row{
				minidb.S(tr[0]), minidb.S(tr[1]), minidb.S(tr[2]),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	sys := d.systemSession()
	mk := func(wantID, name, kind, desc string) error {
		id, err := d.CreateCatalog(sys, name, kind, desc, true)
		if err != nil {
			return err
		}
		// Rewrite to the well-known id so clients can hard-link to it.
		res, err := d.query(minidb.Query{
			Table: schema.TableCatalog,
			Where: []minidb.Pred{{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(id)}},
		})
		if err != nil || len(res.Rows) == 0 {
			return fmt.Errorf("dm: bootstrap catalog %s: %v", name, err)
		}
		row := res.Rows[0].Clone()
		row[0] = minidb.S(wantID)
		return d.routeDB(schema.TableCatalog).Update(schema.TableCatalog, res.RowIDs[0], row)
	}
	if err := mk(StandardCat, "Standard catalog", "standard",
		"events flagged during pre-processing at the ground station"); err != nil {
		return err
	}
	if err := mk(ExtendedCat, "Extended catalog", "extended",
		"events found by HEDC's wider-ranging detection programs"); err != nil {
		return err
	}
	d.logOp("info", "bootstrap", "repository initialized")
	return nil
}

// LoadReport summarizes one raw-unit load.
type LoadReport struct {
	UnitID   string
	ItemID   string
	Photons  int
	RawBytes int64
	Views    int
	Events   int
	HLEs     []string
}

// LoadUnit ingests one raw-data unit: the gzip-FITS file is archived with
// location entries, a raw_units tuple is created, wavelet views are
// pre-computed, and detection programs populate the catalogs.
func (d *DM) LoadUnit(u *telemetry.Unit) (*LoadReport, error) {
	d.stats.Requests.Add(1)
	unitID := u.Name()
	if res, err := d.query(minidb.Query{
		Table: schema.TableRawUnits, Count: true,
		Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpEq, Val: minidb.S(unitID)}},
	}); err != nil {
		return nil, err
	} else if res.Count > 0 {
		return nil, fmt.Errorf("dm: unit %s already loaded", unitID)
	}

	// 1. Archive the raw file (pooled gzip writer: see telemetry.PackGz).
	raw, err := u.PackGz()
	if err != nil {
		return nil, err
	}
	itemID, err := d.nextID("item")
	if err != nil {
		return nil, err
	}
	if err := d.StoreItemFiles(itemID, ImportUser, true, []StoredFile{
		{Suffix: ".fits.gz", Format: "fits.gz", Data: raw},
	}); err != nil {
		return nil, err
	}

	// 2. The raw_units tuple.
	err = d.exec(schema.TableRawUnits, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableRawUnits, minidb.Row{
			minidb.S(unitID), minidb.I(int64(u.Day)), minidb.I(int64(u.Seq)),
			minidb.F(u.TStart), minidb.F(u.TStop), minidb.I(int64(len(u.Photons))),
			minidb.I(1), minidb.S(itemID),
		})
		return err
	})
	if err != nil {
		d.dropItem(itemID)
		return nil, err
	}
	d.stats.Edits.Add(1)
	_ = d.recordLineage(unitID, "", "load", 1, fmt.Sprintf("%d photons", len(u.Photons)))

	report := &LoadReport{
		UnitID: unitID, ItemID: itemID,
		Photons: len(u.Photons), RawBytes: int64(len(raw)),
	}

	// 3. Wavelet views (§3.4 pre-processing).
	views := wavelet.PartitionViews(u.Photons, u.TStart, u.TStop,
		telemetry.EnergyMin, telemetry.EnergyMax,
		ViewPartitions, ViewTimeBins, ViewEnergyBins, ViewKeep)
	for i, v := range views {
		viewItem, err := d.nextID("item")
		if err != nil {
			return nil, err
		}
		if err := d.StoreItemFiles(viewItem, ImportUser, true, []StoredFile{
			{Suffix: ".wav", Format: "wavelet", Data: v.Enc.Bytes()},
		}); err != nil {
			return nil, err
		}
		viewID := fmt.Sprintf("%s-v%02d", unitID, i)
		err = d.exec(schema.TableViews, func(tx minidb.Tx) error {
			_, err := tx.Insert(schema.TableViews, minidb.Row{
				minidb.S(viewID), minidb.S(unitID),
				minidb.F(v.TStart), minidb.F(v.TStop),
				minidb.F(v.EMin), minidb.F(v.EMax),
				minidb.I(int64(v.TimeBins)), minidb.I(int64(v.EnergyBins)),
				minidb.F(ViewKeep), minidb.S(viewItem),
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		d.stats.Edits.Add(1)
		report.Views++
	}

	// 4. Detection programs populate the catalogs (§2.2): flares join the
	// standard and extended catalogs, everything else the extended one.
	sys := d.systemSession()
	detections := analysis.DetectEvents(u.Photons, u.TStart, u.TStop, analysis.DetectConfig{})
	for _, det := range detections {
		h := &schema.HLE{
			Version: 1, Public: true,
			Label:    fmt.Sprintf("%s %s t=%.0fs", unitID, det.KindHint, det.TStart),
			KindHint: det.KindHint,
			TStart:   det.TStart, TStop: det.TStop,
			EMin: telemetry.EnergyMin, EMax: telemetry.EnergyMax,
			PeakRate: det.PeakRate, TotalCounts: det.TotalCounts,
			Background: det.Background, Significance: det.Significance,
			UnitID: unitID, Day: int64(u.Day), Quality: 3,
			Origin: "auto", CalibVersion: 1,
		}
		hleID, err := d.CreateHLE(sys, h)
		if err != nil {
			return nil, err
		}
		if err := d.AddToCatalog(sys, ExtendedCat, hleID); err != nil {
			return nil, err
		}
		if det.KindHint == "flare" {
			if err := d.AddToCatalog(sys, StandardCat, hleID); err != nil {
				return nil, err
			}
		}
		report.Events++
		report.HLEs = append(report.HLEs, hleID)
		d.stats.EventsDetected.Add(1)
	}
	d.stats.UnitsLoaded.Add(1)
	_ = d.RecordUsage("units_loaded", 1, ImportUser)
	_ = d.RecordUsage("photons_loaded", float64(report.Photons), ImportUser)
	d.logOp("info", "load", "unit %s: %d photons, %d views, %d events",
		unitID, report.Photons, report.Views, report.Events)
	return report, nil
}

// UnitInfo is a raw_units row in struct form.
type UnitInfo struct {
	UnitID       string
	Day          int64
	Seq          int64
	TStart       float64
	TStop        float64
	Photons      int64
	CalibVersion int64
	ItemID       string
}

// UnitsInRange lists loaded units whose windows overlap [t0, t1).
func (d *DM) UnitsInRange(t0, t1 float64) ([]*UnitInfo, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableRawUnits,
		Where: []minidb.Pred{{Col: "tstart", Op: minidb.OpLt, Val: minidb.F(t1)}},
	})
	if err != nil {
		return nil, err
	}
	var out []*UnitInfo
	for _, row := range res.Rows {
		u := &UnitInfo{
			UnitID: row[0].Str(), Day: row[1].Int(), Seq: row[2].Int(),
			TStart: row[3].Float(), TStop: row[4].Float(),
			Photons: row[5].Int(), CalibVersion: row[6].Int(), ItemID: row[7].Str(),
		}
		if u.TStop <= t0 {
			continue
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TStart < out[j].TStart })
	return out, nil
}

// RawPhotons reads and decodes the raw units overlapping [t0, t1),
// returning the photons within the window. This is the I/O path the
// processing tests stress: the caller never sees file formats or archive
// locations (§2.3).
func (d *DM) RawPhotons(s *Session, t0, t1 float64) ([]fits.Photon, int64, error) {
	units, err := d.UnitsInRange(t0, t1)
	if err != nil {
		return nil, 0, err
	}
	var photons []fits.Photon
	var bytesRead int64
	for _, u := range units {
		data, _, err := d.ReadItem(s, u.ItemID)
		if err != nil {
			return nil, 0, err
		}
		bytesRead += int64(len(data))
		var f *fits.File
		err = telemetry.WithGzipReader(data, func(r io.Reader) error {
			var derr error
			f, derr = fits.Decode(r)
			return derr
		})
		if err != nil {
			return nil, 0, fmt.Errorf("dm: unit %s: %w", u.UnitID, err)
		}
		parsed, err := telemetry.ParseUnit(f)
		if err != nil {
			return nil, 0, fmt.Errorf("dm: unit %s: %w", u.UnitID, err)
		}
		for _, p := range parsed.Photons {
			if p.Time >= t0 && p.Time < t1 {
				photons = append(photons, p)
			}
		}
	}
	sort.Slice(photons, func(i, j int) bool { return photons[i].Time < photons[j].Time })
	return photons, bytesRead, nil
}

// ViewsInRange returns the stored wavelet views overlapping [t0, t1),
// decoded and ready for approximated analysis.
func (d *DM) ViewsInRange(s *Session, t0, t1 float64) ([]*wavelet.View, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableViews,
		Where: []minidb.Pred{{Col: "tstart", Op: minidb.OpLt, Val: minidb.F(t1)}},
	})
	if err != nil {
		return nil, err
	}
	var out []*wavelet.View
	for _, row := range res.Rows {
		tstop := row[3].Float()
		if tstop <= t0 {
			continue
		}
		data, _, err := d.ReadItem(s, row[9].Str())
		if err != nil {
			return nil, err
		}
		enc, err := wavelet.Parse(data)
		if err != nil {
			return nil, err
		}
		out = append(out, &wavelet.View{
			TStart: row[2].Float(), TStop: tstop,
			EMin: row[4].Float(), EMax: row[5].Float(),
			TimeBins: int(row[6].Int()), EnergyBins: int(row[7].Int()),
			Enc: enc,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TStart < out[j].TStart })
	return out, nil
}

// Recalibrate bumps a unit's calibration version — "it is to be expected
// that the raw data will be recalibrated several times. Accordingly, the
// raw data and all the derived data based on it must be versioned" (§3.1).
// Dependent HLEs are marked with the new version so analyses can be
// selectively recomputed.
func (d *DM) Recalibrate(unitID, reason string) (int64, error) {
	d.stats.Requests.Add(1)
	res, err := d.query(minidb.Query{
		Table: schema.TableRawUnits,
		Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpEq, Val: minidb.S(unitID)}},
	})
	if err != nil {
		return 0, err
	}
	if len(res.Rows) == 0 {
		return 0, fmt.Errorf("dm: no such unit %s", unitID)
	}
	row := res.Rows[0].Clone()
	newVersion := row[6].Int() + 1
	row[6] = minidb.I(newVersion)

	vid, err := d.nextID("ver")
	if err != nil {
		return 0, err
	}
	var vn int64
	fmt.Sscanf(vid, "ver-%d", &vn)

	hles, err := d.query(minidb.Query{
		Table: schema.TableHLE,
		Where: []minidb.Pred{{Col: "unit_id", Op: minidb.OpEq, Val: minidb.S(unitID)}},
	})
	if err != nil {
		return 0, err
	}

	// The unit bump, the version record and every dependent-HLE flag are all
	// domain tuples — one atomic batch, one commit, one fsync, instead of
	// the 2+N transactions the serial form issued.
	var b minidb.Batch
	b.Update(schema.TableRawUnits, res.RowIDs[0], row)
	b.Insert(schema.TableVersions, minidb.Row{
		minidb.I(vn), minidb.S("unit"), minidb.S(unitID),
		minidb.I(newVersion), minidb.F(nowSecs()), minidb.S(reason),
	})
	for i, hrow := range hles.Rows {
		updated := hrow.Clone()
		updated[1] = minidb.I(newVersion) // version
		updated[22] = minidb.F(nowSecs()) // modified
		b.Update(schema.TableHLE, hles.RowIDs[i], updated)
	}
	if _, err := d.routeDB(schema.TableRawUnits).Apply(&b); err != nil {
		return 0, err
	}
	d.stats.Edits.Add(int64(b.Len()))
	_ = d.recordLineage(unitID, "", "recalibrate", newVersion, reason)
	d.logOp("info", "recalibrate", "unit %s -> v%d (%d HLEs flagged): %s",
		unitID, newVersion, len(hles.Rows), reason)
	return newVersion, nil
}

// StaleAnalyses lists committed analyses whose calibration version lags the
// unit they were computed from — the recomputation work-list of §3.1.
func (d *DM) StaleAnalyses(s *Session) ([]*schema.ANA, error) {
	d.stats.Requests.Add(1)
	res, err := d.query(minidb.Query{
		Table: schema.TableANA,
		Where: []minidb.Pred{{Col: "status", Op: minidb.OpEq, Val: minidb.S(schema.AnaCommitted)}},
		Or:    visibilityOr(s),
	})
	if err != nil {
		return nil, err
	}
	var out []*schema.ANA
	for _, row := range res.Rows {
		a, err := schema.ANAFromRow(row)
		if err != nil {
			return nil, err
		}
		h, err := d.GetHLE(s, a.HLEID)
		if err != nil {
			continue
		}
		if h.Version > a.CalibVersion {
			out = append(out, a)
		}
	}
	return out, nil
}

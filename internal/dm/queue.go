package dm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Asynchronous execution (§5.4): "a DM might decide to place a request in
// an execution queue, send the request to a pool of worker threads for
// asynchronous execution or execute the call directly." ExecQueue is that
// pool; the data-loading and relocation processes use it so long-running
// work never blocks interactive callers.

// Future is the handle of an enqueued call.
type Future struct {
	done chan struct{}
	err  error
}

// Wait blocks until the call completes or ctx expires.
func (f *Future) Wait(ctx context.Context) error {
	select {
	case <-f.done:
		return f.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done reports completion without blocking.
func (f *Future) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// ExecQueue is a bounded worker pool.
type ExecQueue struct {
	jobs chan func()
	wg   sync.WaitGroup

	queued    atomic.Int64
	executed  atomic.Int64
	rejected  atomic.Int64
	closeOnce sync.Once
}

// NewExecQueue starts workers goroutines draining a queue of the given
// depth.
func NewExecQueue(workers, depth int) *ExecQueue {
	if workers < 1 {
		workers = 2
	}
	if depth < 1 {
		depth = 64
	}
	q := &ExecQueue{jobs: make(chan func(), depth)}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer q.wg.Done()
			for job := range q.jobs {
				job()
				q.executed.Add(1)
			}
		}()
	}
	return q
}

// Enqueue schedules fn for asynchronous execution. A full queue rejects
// rather than blocks — the caller can then "execute the call directly".
func (q *ExecQueue) Enqueue(fn func() error) (*Future, error) {
	f := &Future{done: make(chan struct{})}
	job := func() {
		defer close(f.done)
		f.err = fn()
	}
	select {
	case q.jobs <- job:
		q.queued.Add(1)
		return f, nil
	default:
		q.rejected.Add(1)
		return nil, fmt.Errorf("dm: execution queue full")
	}
}

// Close drains the queue and stops the workers. Safe to call twice.
func (q *ExecQueue) Close() {
	q.closeOnce.Do(func() { close(q.jobs) })
	q.wg.Wait()
}

// Stats returns (queued, executed, rejected).
func (q *ExecQueue) Stats() (queued, executed, rejected int64) {
	return q.queued.Load(), q.executed.Load(), q.rejected.Load()
}

package dm

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/overload"
	"repro/internal/schema"
)

// Call redirection (§5.4): "there is the possibility of redirecting calls
// from one DM component to another. We use this feature to increase
// capacity in HEDC by adding more nodes to the system." The wire protocol
// is JSON over HTTP (the paper used RMI and HTTP between its Java
// components). Every method of the API interface has a remote counterpart;
// callers go through Dispatcher and cannot tell where execution happened.

// rpc envelope shared by all methods.
type rpcEnvelope struct {
	Token string          `json:"token,omitempty"`
	IP    string          `json:"ip,omitempty"`
	Args  json.RawMessage `json:"args,omitempty"`
}

type rpcReply struct {
	Error  string `json:"error,omitempty"`
	Denied bool   `json:"denied,omitempty"`
	// Unavailable flags errors caused by the shared database tier not
	// answering, so the caller can distinguish "this replica's database
	// path is dead" (true) from "this replica rejected the request"
	// (false) without parsing error strings.
	Unavailable bool `json:"unavailable,omitempty"`
	// Overloaded flags a load-shed refusal — from this replica's own
	// admission control or relayed from the database tier's socket-level
	// pushback. RetryAfterMS carries the shed's backoff hint so upstream
	// tiers can pace retries instead of stampeding. Overload is not a
	// replica-health signal: failing over a shed request to a sibling
	// only moves the stampede around.
	Overloaded   bool            `json:"overloaded,omitempty"`
	RetryAfterMS int64           `json:"retry_after_ms,omitempty"`
	Result       json.RawMessage `json:"result,omitempty"`
}

// Server exposes a DM node's API over HTTP under prefix (default "/dm/").
type Server struct {
	api    API
	dm     *DM // for the redirects-in counter; may be nil
	prefix string
}

// NewServer wraps an API for remote callers.
func NewServer(api API, prefix string) *Server {
	if prefix == "" {
		prefix = "/dm/"
	}
	s := &Server{api: api, prefix: prefix}
	if l, ok := api.(Local); ok {
		s.dm = l.DM
	}
	return s
}

// Mux returns an http handler serving the DM RPC endpoints.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(s.prefix, s.handle)
	return mux
}

func (s *Server) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	method := r.URL.Path[len(s.prefix):]
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var env rpcEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if s.dm != nil {
		s.dm.stats.RedirectsIn.Add(1)
	}
	result, err := s.dispatch(method, env)
	reply := rpcReply{}
	if err != nil {
		reply.Error = err.Error()
		reply.Denied = IsDenied(err)
		reply.Unavailable = IsDBUnavailable(err)
		if overload.IsOverload(err) {
			reply.Overloaded = true
			if ra, ok := overload.RetryAfterOf(err); ok {
				reply.RetryAfterMS = int64(ra / time.Millisecond)
			}
		}
	} else {
		raw, merr := json.Marshal(result)
		if merr != nil {
			reply.Error = merr.Error()
		} else {
			reply.Result = raw
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func decodeArgs(env rpcEnvelope, into interface{}) error {
	if len(env.Args) == 0 {
		return fmt.Errorf("dm: rpc call missing args")
	}
	return json.Unmarshal(env.Args, into)
}

func (s *Server) dispatch(method string, env rpcEnvelope) (interface{}, error) {
	switch method {
	case "ping":
		// Liveness probe for cluster health checks: no auth, no DB touch.
		return "pong", nil
	case "authenticate":
		var a struct{ User, Password, Kind string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.Authenticate(a.User, a.Password, env.IP, a.Kind)
	case "logout":
		return nil, s.api.Logout(env.Token)
	case "query-hles":
		var f HLEFilter
		if err := decodeArgs(env, &f); err != nil {
			return nil, err
		}
		return s.api.QueryHLEs(env.Token, env.IP, f)
	case "count-hles":
		var f HLEFilter
		if err := decodeArgs(env, &f); err != nil {
			return nil, err
		}
		return s.api.CountHLEs(env.Token, env.IP, f)
	case "get-hle":
		var a struct{ ID string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.GetHLE(env.Token, env.IP, a.ID)
	case "analyses-for-hle":
		var a struct{ ID string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.AnalysesForHLE(env.Token, env.IP, a.ID)
	case "get-ana":
		var a struct{ ID string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.GetANA(env.Token, env.IP, a.ID)
	case "list-catalogs":
		return s.api.ListCatalogs(env.Token, env.IP)
	case "create-hle":
		var h schema.HLE
		if err := decodeArgs(env, &h); err != nil {
			return nil, err
		}
		return s.api.CreateHLE(env.Token, env.IP, &h)
	case "import-analysis":
		var a struct {
			ANA   *schema.ANA
			Files []StoredFile
		}
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.ImportAnalysis(env.Token, env.IP, a.ANA, a.Files)
	case "find-existing-analysis":
		var spec schema.ANA
		if err := decodeArgs(env, &spec); err != nil {
			return nil, err
		}
		return s.api.FindExistingAnalysis(env.Token, env.IP, &spec)
	case "publish":
		var a struct{ Kind, ID string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return nil, s.api.Publish(env.Token, env.IP, a.Kind, a.ID)
	case "read-item":
		var a struct{ ItemID string }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.ReadItem(env.Token, env.IP, a.ItemID)
	case "units-in-range":
		var a struct{ T0, T1 float64 }
		if err := decodeArgs(env, &a); err != nil {
			return nil, err
		}
		return s.api.UnitsInRange(env.Token, env.IP, a.T0, a.T1)
	}
	return nil, fmt.Errorf("dm: unknown rpc method %q", method)
}

// Remote is an API implementation that ships every call to a DM server.
type Remote struct {
	BaseURL string // e.g. "http://node-2:8080/dm/"
	Client  *http.Client
	// Source DM (optional) counts outgoing redirects.
	Source *DM
}

var _ API = (*Remote)(nil)

// NewRemote builds a remote API endpoint with a sane default client.
func NewRemote(baseURL string, source *DM) *Remote {
	return &Remote{
		BaseURL: baseURL,
		Client:  &http.Client{Timeout: 30 * time.Second},
		Source:  source,
	}
}

// TransportError marks a call that failed before a well-formed reply
// arrived: dial failure, broken connection, HTTP-level error, mangled
// response. Application errors (including denials) never wear it. The
// cluster gateway keys failover on this distinction — a TransportError
// from a replica means the replica, not the request, is suspect.
type TransportError struct {
	Method string
	Err    error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("dm: remote call %s: %v", e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// IsUnreachable reports whether err is a transport failure rather than
// an answer from the remote DM.
func IsUnreachable(err error) bool {
	var te *TransportError
	return errors.As(err, &te)
}

// IsDialError reports whether err failed during connection establishment
// — before the request could have reached the remote DM. Only such
// failures make retrying a *mutation* on another replica safe; anything
// later may have executed.
func IsDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

func (r *Remote) call(method, token, ip string, args, result interface{}) error {
	if r.Source != nil {
		r.Source.stats.RedirectsOut.Add(1)
	}
	env := rpcEnvelope{Token: token, IP: ip}
	if args != nil {
		raw, err := json.Marshal(args)
		if err != nil {
			return err
		}
		env.Args = raw
	} else {
		env.Args = json.RawMessage("{}")
	}
	body, err := json.Marshal(env)
	if err != nil {
		return err
	}
	resp, err := r.Client.Post(r.BaseURL+method, "application/json", bytes.NewReader(body))
	if err != nil {
		return &TransportError{Method: method, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &TransportError{Method: method, Err: fmt.Errorf("http %d", resp.StatusCode)}
	}
	var reply rpcReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return &TransportError{Method: method, Err: err}
	}
	if reply.Error != "" {
		if reply.Denied {
			return errDenied("remote", reply.Error)
		}
		if reply.Unavailable {
			return &DBUnavailableError{Err: fmt.Errorf("%s", reply.Error)}
		}
		if reply.Overloaded {
			return &overload.Error{
				Tier:       "dm",
				RetryAfter: time.Duration(reply.RetryAfterMS) * time.Millisecond,
			}
		}
		return fmt.Errorf("%s", reply.Error)
	}
	if result != nil && len(reply.Result) > 0 {
		return json.Unmarshal(reply.Result, result)
	}
	return nil
}

// Ping probes the remote DM's liveness.
func (r *Remote) Ping() error {
	var out string
	return r.call("ping", "", "", struct{}{}, &out)
}

// Authenticate implements API.
func (r *Remote) Authenticate(user, password, ip, kind string) (*SessionInfo, error) {
	var out SessionInfo
	err := r.call("authenticate", "", ip, struct{ User, Password, Kind string }{user, password, kind}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Logout implements API.
func (r *Remote) Logout(token string) error {
	return r.call("logout", token, "", struct{}{}, nil)
}

// QueryHLEs implements API.
func (r *Remote) QueryHLEs(token, ip string, f HLEFilter) ([]*schema.HLE, error) {
	var out []*schema.HLE
	if err := r.call("query-hles", token, ip, f, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CountHLEs implements API.
func (r *Remote) CountHLEs(token, ip string, f HLEFilter) (int, error) {
	var out int
	if err := r.call("count-hles", token, ip, f, &out); err != nil {
		return 0, err
	}
	return out, nil
}

// GetHLE implements API.
func (r *Remote) GetHLE(token, ip, id string) (*schema.HLE, error) {
	var out schema.HLE
	if err := r.call("get-hle", token, ip, struct{ ID string }{id}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AnalysesForHLE implements API.
func (r *Remote) AnalysesForHLE(token, ip, hleID string) ([]*schema.ANA, error) {
	var out []*schema.ANA
	if err := r.call("analyses-for-hle", token, ip, struct{ ID string }{hleID}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GetANA implements API.
func (r *Remote) GetANA(token, ip, id string) (*schema.ANA, error) {
	var out schema.ANA
	if err := r.call("get-ana", token, ip, struct{ ID string }{id}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ListCatalogs implements API.
func (r *Remote) ListCatalogs(token, ip string) ([]*Catalog, error) {
	var out []*Catalog
	if err := r.call("list-catalogs", token, ip, struct{}{}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CreateHLE implements API.
func (r *Remote) CreateHLE(token, ip string, h *schema.HLE) (string, error) {
	var out string
	if err := r.call("create-hle", token, ip, h, &out); err != nil {
		return "", err
	}
	return out, nil
}

// ImportAnalysis implements API.
func (r *Remote) ImportAnalysis(token, ip string, a *schema.ANA, files []StoredFile) (string, error) {
	var out string
	err := r.call("import-analysis", token, ip, struct {
		ANA   *schema.ANA
		Files []StoredFile
	}{a, files}, &out)
	if err != nil {
		return "", err
	}
	return out, nil
}

// FindExistingAnalysis implements API.
func (r *Remote) FindExistingAnalysis(token, ip string, spec *schema.ANA) (*schema.ANA, error) {
	var out *schema.ANA
	if err := r.call("find-existing-analysis", token, ip, spec, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Publish implements API.
func (r *Remote) Publish(token, ip, kind, id string) error {
	return r.call("publish", token, ip, struct{ Kind, ID string }{kind, id}, nil)
}

// ReadItem implements API.
func (r *Remote) ReadItem(token, ip, itemID string) (*ItemData, error) {
	var out ItemData
	if err := r.call("read-item", token, ip, struct{ ItemID string }{itemID}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// UnitsInRange implements API.
func (r *Remote) UnitsInRange(token, ip string, t0, t1 float64) ([]*UnitInfo, error) {
	var out []*UnitInfo
	if err := r.call("units-in-range", token, ip, struct{ T0, T1 float64 }{t0, t1}, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Dispatcher routes API calls to the local node or a remote one according
// to its policy. ForceLocal overrides per call site ("the calling methods
// ... can use overwrites to, e.g., force local execution", §5.4).
type Dispatcher struct {
	LocalAPI  API
	RemoteAPI API
	// UseRemote decides per method name; nil means always local.
	UseRemote func(method string) bool
}

// pick returns the API to use for a method.
func (d *Dispatcher) pick(method string) API {
	if d.RemoteAPI != nil && d.UseRemote != nil && d.UseRemote(method) {
		return d.RemoteAPI
	}
	return d.LocalAPI
}

var _ API = (*Dispatcher)(nil)

// Authenticate implements API.
func (d *Dispatcher) Authenticate(user, password, ip, kind string) (*SessionInfo, error) {
	return d.pick("authenticate").Authenticate(user, password, ip, kind)
}

// Logout implements API.
func (d *Dispatcher) Logout(token string) error { return d.pick("logout").Logout(token) }

// QueryHLEs implements API.
func (d *Dispatcher) QueryHLEs(token, ip string, f HLEFilter) ([]*schema.HLE, error) {
	return d.pick("query-hles").QueryHLEs(token, ip, f)
}

// CountHLEs implements API.
func (d *Dispatcher) CountHLEs(token, ip string, f HLEFilter) (int, error) {
	return d.pick("count-hles").CountHLEs(token, ip, f)
}

// GetHLE implements API.
func (d *Dispatcher) GetHLE(token, ip, id string) (*schema.HLE, error) {
	return d.pick("get-hle").GetHLE(token, ip, id)
}

// AnalysesForHLE implements API.
func (d *Dispatcher) AnalysesForHLE(token, ip, hleID string) ([]*schema.ANA, error) {
	return d.pick("analyses-for-hle").AnalysesForHLE(token, ip, hleID)
}

// GetANA implements API.
func (d *Dispatcher) GetANA(token, ip, id string) (*schema.ANA, error) {
	return d.pick("get-ana").GetANA(token, ip, id)
}

// ListCatalogs implements API.
func (d *Dispatcher) ListCatalogs(token, ip string) ([]*Catalog, error) {
	return d.pick("list-catalogs").ListCatalogs(token, ip)
}

// CreateHLE implements API.
func (d *Dispatcher) CreateHLE(token, ip string, h *schema.HLE) (string, error) {
	return d.pick("create-hle").CreateHLE(token, ip, h)
}

// ImportAnalysis implements API.
func (d *Dispatcher) ImportAnalysis(token, ip string, a *schema.ANA, files []StoredFile) (string, error) {
	return d.pick("import-analysis").ImportAnalysis(token, ip, a, files)
}

// FindExistingAnalysis implements API.
func (d *Dispatcher) FindExistingAnalysis(token, ip string, spec *schema.ANA) (*schema.ANA, error) {
	return d.pick("find-existing-analysis").FindExistingAnalysis(token, ip, spec)
}

// Publish implements API.
func (d *Dispatcher) Publish(token, ip, kind, id string) error {
	return d.pick("publish").Publish(token, ip, kind, id)
}

// ReadItem implements API.
func (d *Dispatcher) ReadItem(token, ip, itemID string) (*ItemData, error) {
	return d.pick("read-item").ReadItem(token, ip, itemID)
}

// UnitsInRange implements API.
func (d *Dispatcher) UnitsInRange(token, ip string, t0, t1 float64) ([]*UnitInfo, error) {
	return d.pick("units-in-range").UnitsInRange(token, ip, t0, t1)
}

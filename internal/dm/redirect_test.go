package dm

import (
	"net/http/httptest"
	"testing"

	"repro/internal/schema"
)

// newRemotePair starts a DM node behind an HTTP server and returns a Remote
// endpoint talking to it, plus the underlying DM.
func newRemotePair(t *testing.T) (*Remote, *DM) {
	t.Helper()
	d := newTestDM(t)
	srv := httptest.NewServer(NewServer(Local{DM: d}, "/dm/").Mux())
	t.Cleanup(srv.Close)
	return NewRemote(srv.URL+"/dm/", nil), d
}

func TestRemoteRoundTrip(t *testing.T) {
	remote, d := newRemotePair(t)
	if err := d.CreateUser("carol", "pw", GroupScientist,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}

	// Authenticate remotely.
	info, err := remote.Authenticate("carol", "pw", "10.1.1.1", SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	if info.User != "carol" || info.Token == "" {
		t.Fatalf("info = %+v", info)
	}
	tok, ip := info.Token, "10.1.1.1"

	// Create an HLE through the wire.
	id, err := remote.CreateHLE(tok, ip, &schema.HLE{
		KindHint: "flare", TStart: 1, TStop: 2, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.GetHLE(tok, ip, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id || got.Owner != "carol" {
		t.Fatalf("got = %+v", got)
	}

	// Query and count.
	hles, err := remote.QueryHLEs(tok, ip, HLEFilter{Kind: "flare"})
	if err != nil || len(hles) != 1 {
		t.Fatalf("query = %v %v", hles, err)
	}
	n, err := remote.CountHLEs(tok, ip, HLEFilter{})
	if err != nil || n != 1 {
		t.Fatalf("count = %d %v", n, err)
	}

	// Import an analysis with a file payload (base64 over the wire).
	anaID, err := remote.ImportAnalysis(tok, ip, &schema.ANA{
		HLEID: id, Type: schema.AnaLightcurve, TStop: 2, Version: 1, CalibVersion: 1,
	}, []StoredFile{{Suffix: ".gif", Format: "gif", Data: []byte{0x47, 0x49, 0x46, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := remote.GetANA(tok, ip, anaID)
	if err != nil {
		t.Fatal(err)
	}
	item, err := remote.ReadItem(tok, ip, ana.ItemID)
	if err != nil {
		t.Fatal(err)
	}
	if len(item.Bytes) != 4 || item.Format != "gif" {
		t.Fatalf("item = %+v", item)
	}

	// Analyses listing, publish, catalogs.
	anas, err := remote.AnalysesForHLE(tok, ip, id)
	if err != nil || len(anas) != 1 {
		t.Fatalf("analyses = %v %v", anas, err)
	}
	if err := remote.Publish(tok, ip, "ana", anaID); err != nil {
		t.Fatal(err)
	}
	cats, err := remote.ListCatalogs(tok, ip)
	if err != nil || len(cats) != 2 {
		t.Fatalf("catalogs = %v %v", cats, err)
	}

	// FindExistingAnalysis round-trips nil and non-nil.
	spec := *ana
	found, err := remote.FindExistingAnalysis(tok, ip, &spec)
	if err != nil || found == nil {
		t.Fatalf("existing = %v %v", found, err)
	}
	spec.TimeBins = 999
	found, err = remote.FindExistingAnalysis(tok, ip, &spec)
	if err != nil || found != nil {
		t.Fatalf("phantom analysis = %v %v", found, err)
	}

	// Logout invalidates the token.
	if err := remote.Logout(tok); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.CreateHLE(tok, ip, &schema.HLE{KindHint: "x", TStop: 1, Version: 1, CalibVersion: 1}); err == nil {
		t.Fatal("create after logout accepted")
	}
}

func TestRemoteDeniedErrorsSurviveTheWire(t *testing.T) {
	remote, d := newRemotePair(t)
	alice := newScientist(t, d, "alice")
	id, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})

	// Anonymous remote reader is denied — and the error is still
	// recognizable as a denial after JSON serialization.
	_, err := remote.GetHLE("", "", id)
	if err == nil || !IsDenied(err) {
		t.Fatalf("err = %v, want denied", err)
	}
	// Bad credentials over the wire.
	if _, err := remote.Authenticate("alice", "wrong", "", SessionHLE); !IsDenied(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteUnknownMethod(t *testing.T) {
	remote, _ := newRemotePair(t)
	err := remote.call("no-such-method", "", "", struct{}{}, nil)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDispatcherPolicy(t *testing.T) {
	remote, d := newRemotePair(t)
	// Local and remote views of the same node.
	disp := &Dispatcher{
		LocalAPI:  Local{DM: d},
		RemoteAPI: remote,
		UseRemote: func(method string) bool { return method == "count-hles" },
	}
	alice := newScientist(t, d, "alice")
	if _, err := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", Public: false, TStop: 1, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}

	before := d.Stats().RedirectsIn.Load()
	// query-hles goes local; count-hles goes over the wire.
	if _, err := disp.QueryHLEs(alice.Token, alice.IP, HLEFilter{}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().RedirectsIn.Load() != before {
		t.Fatal("local call went remote")
	}
	n, err := disp.CountHLEs(alice.Token, alice.IP, HLEFilter{})
	if err != nil || n != 1 {
		t.Fatalf("count = %d %v", n, err)
	}
	if d.Stats().RedirectsIn.Load() != before+1 {
		t.Fatal("remote call did not go over the wire")
	}
}

func TestDispatcherDefaultsLocal(t *testing.T) {
	d := newTestDM(t)
	disp := &Dispatcher{LocalAPI: Local{DM: d}}
	if _, err := disp.ListCatalogs("", ""); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherFullSurface drives every API method through a Dispatcher
// with remote routing for all calls, covering the whole indirection layer.
func TestDispatcherFullSurface(t *testing.T) {
	remote, d := newRemotePair(t)
	disp := &Dispatcher{
		LocalAPI:  Local{DM: d},
		RemoteAPI: remote,
		UseRemote: func(string) bool { return true },
	}
	if err := d.CreateUser("dave", "pw", GroupScientist,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}
	info, err := disp.Authenticate("dave", "pw", "10.3.3.3", SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	tok, ip := info.Token, "10.3.3.3"

	hleID, err := disp.CreateHLE(tok, ip, &schema.HLE{
		KindHint: "flare", TStart: 1, TStop: 2, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disp.GetHLE(tok, ip, hleID); err != nil {
		t.Fatal(err)
	}
	anaID, err := disp.ImportAnalysis(tok, ip, &schema.ANA{
		HLEID: hleID, Type: schema.AnaHistogram, TStop: 2, Version: 1, CalibVersion: 1,
	}, []StoredFile{{Suffix: ".gif", Format: "gif", Data: []byte("GIFx")}})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := disp.GetANA(tok, ip, anaID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disp.AnalysesForHLE(tok, ip, hleID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.FindExistingAnalysis(tok, ip, ana); err != nil {
		t.Fatal(err)
	}
	if err := disp.Publish(tok, ip, "ana", anaID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.ReadItem(tok, ip, ana.ItemID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.ListCatalogs(tok, ip); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.UnitsInRange(tok, ip, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := disp.Logout(tok); err != nil {
		t.Fatal(err)
	}
	if d.Stats().RedirectsIn.Load() < 10 {
		t.Fatalf("only %d calls went remote", d.Stats().RedirectsIn.Load())
	}
}

func TestRemoteUnitsInRange(t *testing.T) {
	remote, d := newRemotePair(t)
	loadDays(t, d, 1)
	units, err := remote.UnitsInRange("", "", 0, 600)
	if err != nil || len(units) != 1 {
		t.Fatalf("units = %v %v", units, err)
	}
	if units[0].Photons == 0 || units[0].ItemID == "" {
		t.Fatalf("unit = %+v", units[0])
	}
}

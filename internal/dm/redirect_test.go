package dm

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/schema"
)

// newRemotePair starts a DM node behind an HTTP server and returns a Remote
// endpoint talking to it, plus the underlying DM.
func newRemotePair(t *testing.T) (*Remote, *DM) {
	t.Helper()
	d := newTestDM(t)
	srv := httptest.NewServer(NewServer(Local{DM: d}, "/dm/").Mux())
	t.Cleanup(srv.Close)
	return NewRemote(srv.URL+"/dm/", nil), d
}

func TestRemoteRoundTrip(t *testing.T) {
	remote, d := newRemotePair(t)
	if err := d.CreateUser("carol", "pw", GroupScientist,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}

	// Authenticate remotely.
	info, err := remote.Authenticate("carol", "pw", "10.1.1.1", SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	if info.User != "carol" || info.Token == "" {
		t.Fatalf("info = %+v", info)
	}
	tok, ip := info.Token, "10.1.1.1"

	// Create an HLE through the wire.
	id, err := remote.CreateHLE(tok, ip, &schema.HLE{
		KindHint: "flare", TStart: 1, TStop: 2, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.GetHLE(tok, ip, id)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id || got.Owner != "carol" {
		t.Fatalf("got = %+v", got)
	}

	// Query and count.
	hles, err := remote.QueryHLEs(tok, ip, HLEFilter{Kind: "flare"})
	if err != nil || len(hles) != 1 {
		t.Fatalf("query = %v %v", hles, err)
	}
	n, err := remote.CountHLEs(tok, ip, HLEFilter{})
	if err != nil || n != 1 {
		t.Fatalf("count = %d %v", n, err)
	}

	// Import an analysis with a file payload (base64 over the wire).
	anaID, err := remote.ImportAnalysis(tok, ip, &schema.ANA{
		HLEID: id, Type: schema.AnaLightcurve, TStop: 2, Version: 1, CalibVersion: 1,
	}, []StoredFile{{Suffix: ".gif", Format: "gif", Data: []byte{0x47, 0x49, 0x46, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := remote.GetANA(tok, ip, anaID)
	if err != nil {
		t.Fatal(err)
	}
	item, err := remote.ReadItem(tok, ip, ana.ItemID)
	if err != nil {
		t.Fatal(err)
	}
	if len(item.Bytes) != 4 || item.Format != "gif" {
		t.Fatalf("item = %+v", item)
	}

	// Analyses listing, publish, catalogs.
	anas, err := remote.AnalysesForHLE(tok, ip, id)
	if err != nil || len(anas) != 1 {
		t.Fatalf("analyses = %v %v", anas, err)
	}
	if err := remote.Publish(tok, ip, "ana", anaID); err != nil {
		t.Fatal(err)
	}
	cats, err := remote.ListCatalogs(tok, ip)
	if err != nil || len(cats) != 2 {
		t.Fatalf("catalogs = %v %v", cats, err)
	}

	// FindExistingAnalysis round-trips nil and non-nil.
	spec := *ana
	found, err := remote.FindExistingAnalysis(tok, ip, &spec)
	if err != nil || found == nil {
		t.Fatalf("existing = %v %v", found, err)
	}
	spec.TimeBins = 999
	found, err = remote.FindExistingAnalysis(tok, ip, &spec)
	if err != nil || found != nil {
		t.Fatalf("phantom analysis = %v %v", found, err)
	}

	// Logout invalidates the token.
	if err := remote.Logout(tok); err != nil {
		t.Fatal(err)
	}
	if _, err := remote.CreateHLE(tok, ip, &schema.HLE{KindHint: "x", TStop: 1, Version: 1, CalibVersion: 1}); err == nil {
		t.Fatal("create after logout accepted")
	}
}

func TestRemoteDeniedErrorsSurviveTheWire(t *testing.T) {
	remote, d := newRemotePair(t)
	alice := newScientist(t, d, "alice")
	id, _ := d.CreateHLE(alice, &schema.HLE{KindHint: "flare", TStop: 1, Version: 1, CalibVersion: 1})

	// Anonymous remote reader is denied — and the error is still
	// recognizable as a denial after JSON serialization.
	_, err := remote.GetHLE("", "", id)
	if err == nil || !IsDenied(err) {
		t.Fatalf("err = %v, want denied", err)
	}
	// Bad credentials over the wire.
	if _, err := remote.Authenticate("alice", "wrong", "", SessionHLE); !IsDenied(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteUnknownMethod(t *testing.T) {
	remote, _ := newRemotePair(t)
	err := remote.call("no-such-method", "", "", struct{}{}, nil)
	if err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestDispatcherPolicy(t *testing.T) {
	remote, d := newRemotePair(t)
	// Local and remote views of the same node.
	disp := &Dispatcher{
		LocalAPI:  Local{DM: d},
		RemoteAPI: remote,
		UseRemote: func(method string) bool { return method == "count-hles" },
	}
	alice := newScientist(t, d, "alice")
	if _, err := d.CreateHLE(alice, &schema.HLE{
		KindHint: "flare", Public: false, TStop: 1, Version: 1, CalibVersion: 1,
	}); err != nil {
		t.Fatal(err)
	}

	before := d.Stats().RedirectsIn.Load()
	// query-hles goes local; count-hles goes over the wire.
	if _, err := disp.QueryHLEs(alice.Token, alice.IP, HLEFilter{}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().RedirectsIn.Load() != before {
		t.Fatal("local call went remote")
	}
	n, err := disp.CountHLEs(alice.Token, alice.IP, HLEFilter{})
	if err != nil || n != 1 {
		t.Fatalf("count = %d %v", n, err)
	}
	if d.Stats().RedirectsIn.Load() != before+1 {
		t.Fatal("remote call did not go over the wire")
	}
}

func TestDispatcherDefaultsLocal(t *testing.T) {
	d := newTestDM(t)
	disp := &Dispatcher{LocalAPI: Local{DM: d}}
	if _, err := disp.ListCatalogs("", ""); err != nil {
		t.Fatal(err)
	}
}

// TestDispatcherFullSurface drives every API method through a Dispatcher
// with remote routing for all calls, covering the whole indirection layer.
func TestDispatcherFullSurface(t *testing.T) {
	remote, d := newRemotePair(t)
	disp := &Dispatcher{
		LocalAPI:  Local{DM: d},
		RemoteAPI: remote,
		UseRemote: func(string) bool { return true },
	}
	if err := d.CreateUser("dave", "pw", GroupScientist,
		RightBrowse, RightDownload, RightAnalyze, RightUpload); err != nil {
		t.Fatal(err)
	}
	info, err := disp.Authenticate("dave", "pw", "10.3.3.3", SessionHLE)
	if err != nil {
		t.Fatal(err)
	}
	tok, ip := info.Token, "10.3.3.3"

	hleID, err := disp.CreateHLE(tok, ip, &schema.HLE{
		KindHint: "flare", TStart: 1, TStop: 2, Version: 1, CalibVersion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disp.GetHLE(tok, ip, hleID); err != nil {
		t.Fatal(err)
	}
	anaID, err := disp.ImportAnalysis(tok, ip, &schema.ANA{
		HLEID: hleID, Type: schema.AnaHistogram, TStop: 2, Version: 1, CalibVersion: 1,
	}, []StoredFile{{Suffix: ".gif", Format: "gif", Data: []byte("GIFx")}})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := disp.GetANA(tok, ip, anaID)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disp.AnalysesForHLE(tok, ip, hleID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.FindExistingAnalysis(tok, ip, ana); err != nil {
		t.Fatal(err)
	}
	if err := disp.Publish(tok, ip, "ana", anaID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.ReadItem(tok, ip, ana.ItemID); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.ListCatalogs(tok, ip); err != nil {
		t.Fatal(err)
	}
	if _, err := disp.UnitsInRange(tok, ip, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := disp.Logout(tok); err != nil {
		t.Fatal(err)
	}
	if d.Stats().RedirectsIn.Load() < 10 {
		t.Fatalf("only %d calls went remote", d.Stats().RedirectsIn.Load())
	}
}

func TestRemoteErrorPropagation(t *testing.T) {
	remote, d := newRemotePair(t)
	alice := newScientist(t, d, "alice")

	// An application error (not a denial) crosses the wire with its
	// message intact — and must not look like a transport failure, or the
	// gateway would fail the replica over for a bad request.
	_, err := remote.GetHLE(alice.Token, alice.IP, "hle-does-not-exist")
	if err == nil || !strings.Contains(err.Error(), "no such HLE") {
		t.Fatalf("err = %v, want remote not-found message", err)
	}
	if IsDenied(err) || IsUnreachable(err) {
		t.Fatalf("app error misclassified: denied=%v unreachable=%v", IsDenied(err), IsUnreachable(err))
	}
	// Ping works without a session or a database touch.
	if err := remote.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestServerMalformedEnvelopes(t *testing.T) {
	remote, _ := newRemotePair(t)

	// Body that is not JSON at all: HTTP 400 from the server, which the
	// client reports as a transport error (no well-formed reply arrived).
	resp, err := http.Post(remote.BaseURL+"query-hles", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}

	// Valid envelope, args of the wrong shape: a clean application error.
	resp, err = http.Post(remote.BaseURL+"get-hle", "application/json",
		strings.NewReader(`{"args":["not","an","object"]}`))
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Error  string `json:"error"`
		Denied bool   `json:"denied"`
	}
	derr := json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	if derr != nil || reply.Error == "" || reply.Denied {
		t.Fatalf("reply = %+v (decode %v), want non-denied error", reply, derr)
	}

	// Missing args where the method needs them.
	resp, err = http.Post(remote.BaseURL+"count-hles", "application/json",
		strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	derr = json.NewDecoder(resp.Body).Decode(&reply)
	resp.Body.Close()
	if derr != nil || !strings.Contains(reply.Error, "missing args") {
		t.Fatalf("reply = %+v (decode %v)", reply, derr)
	}

	// GET is rejected: the protocol is POST-only.
	resp, err = http.Get(remote.BaseURL + "list-catalogs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestRemoteTransportErrors(t *testing.T) {
	// A server that answers garbage: the reply never decodes, so the
	// client must classify the call as a transport failure.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<html>not the rpc protocol</html>")
	}))
	defer garbage.Close()
	r := NewRemote(garbage.URL+"/dm/", nil)
	if _, err := r.ListCatalogs("", ""); !IsUnreachable(err) {
		t.Fatalf("garbage reply: err = %v, want transport error", err)
	}

	// A server that 500s before the protocol layer.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "proxy exploded", http.StatusBadGateway)
	}))
	defer broken.Close()
	r = NewRemote(broken.URL+"/dm/", nil)
	err := r.Publish("tok", "ip", "ana", "x")
	if !IsUnreachable(err) || !strings.Contains(err.Error(), "http 502") {
		t.Fatalf("http 502: err = %v", err)
	}
	// An HTTP-level failure is not a dial failure: the request may have
	// been delivered, so mutations must not be blindly retried.
	if IsDialError(err) {
		t.Fatal("http 502 classified as dial error")
	}

	// Nothing listening at all: dial failure, the one transport error
	// after which even mutations are safe to retry elsewhere.
	r = NewRemote("http://127.0.0.1:1/dm/", nil)
	_, err = r.CountHLEs("", "", HLEFilter{})
	if !IsUnreachable(err) || !IsDialError(err) {
		t.Fatalf("refused conn: unreachable=%v dial=%v (%v)", IsUnreachable(err), IsDialError(err), err)
	}
}

func TestRemoteTimeout(t *testing.T) {
	// A hung server: the client's deadline turns the call into a
	// transport error instead of blocking forever.
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer slow.Close()
	defer close(release)

	r := &Remote{
		BaseURL: slow.URL + "/dm/",
		Client:  &http.Client{Timeout: 50 * time.Millisecond},
	}
	start := time.Now()
	_, err := r.QueryHLEs("", "", HLEFilter{})
	if !IsUnreachable(err) {
		t.Fatalf("timeout: err = %v, want transport error", err)
	}
	if IsDialError(err) {
		t.Fatal("timeout after connect classified as dial error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline not enforced: call took %v", elapsed)
	}
}

func TestRemoteUnitsInRange(t *testing.T) {
	remote, d := newRemotePair(t)
	loadDays(t, d, 1)
	units, err := remote.UnitsInRange("", "", 0, 600)
	if err != nil || len(units) != 1 {
		t.Fatalf("units = %v %v", units, err)
	}
	if units[0].Photons == 0 || units[0].ItemID == "" {
		t.Fatalf("unit = %+v", units[0])
	}
}

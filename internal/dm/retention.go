package dm

import (
	"fmt"

	"repro/internal/minidb"
	"repro/internal/schema"
)

// Retention: the process-layer workflow that moves aging data down the
// storage hierarchy. The paper's deployment keeps recent raw files on
// disk, archives to CDs, and parks "data files that are not needed
// on-line" on a tape archive (§2.3); "data refresh and purging rules" live
// in the administrative section of the schema (§4.1), and physical
// relocation is a compensating process-layer workflow (§5.2).

// RetentionRule says: raw units of mission days older than MaxAgeDays
// (relative to the newest loaded day) migrate to ToArchive.
type RetentionRule struct {
	MaxAgeDays int64
	ToArchive  string
}

const retentionKey = "retention.raw_units"

// SetRetentionRule persists the rule in the administrative config table.
func (d *DM) SetRetentionRule(r RetentionRule) error {
	if r.MaxAgeDays < 0 || r.ToArchive == "" {
		return fmt.Errorf("dm: invalid retention rule %+v", r)
	}
	if d.archives.Get(r.ToArchive) == nil {
		return fmt.Errorf("dm: retention target %q not mounted", r.ToArchive)
	}
	val := fmt.Sprintf("%d:%s", r.MaxAgeDays, r.ToArchive)
	res, err := d.query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "key", Op: minidb.OpEq, Val: minidb.S(retentionKey)}},
	})
	if err != nil {
		return err
	}
	row := minidb.Row{
		minidb.S(retentionKey), minidb.S("purge"), minidb.S(val),
		minidb.S("raw units older than N days migrate to the named archive"),
	}
	if len(res.RowIDs) > 0 {
		err = d.meta.Update(schema.TableConfig, res.RowIDs[0], row)
	} else {
		_, err = d.meta.Insert(schema.TableConfig, row)
	}
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

// RetentionRuleSet reads the persisted rule (nil if none configured).
func (d *DM) RetentionRuleSet() (*RetentionRule, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableConfig,
		Where: []minidb.Pred{{Col: "key", Op: minidb.OpEq, Val: minidb.S(retentionKey)}},
	})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, nil
	}
	var r RetentionRule
	if _, err := fmt.Sscanf(res.Rows[0][2].Str(), "%d:%s", &r.MaxAgeDays, &r.ToArchive); err != nil {
		return nil, fmt.Errorf("dm: malformed retention rule %q", res.Rows[0][2].Str())
	}
	return &r, nil
}

// RetentionReport summarizes one ApplyRetention run.
type RetentionReport struct {
	Considered int
	Migrated   int
	Failed     int
	BytesMoved int64
}

// ApplyRetention runs the configured rule: every raw unit whose mission day
// is older than (newest day - MaxAgeDays) has its files relocated to the
// rule's archive. Relocation goes item by item through RelocateItem, so a
// failure mid-run leaves every unit either fully moved or fully in place —
// and the system keeps serving reads throughout (§4.3).
func (d *DM) ApplyRetention() (*RetentionReport, error) {
	rule, err := d.RetentionRuleSet()
	if err != nil {
		return nil, err
	}
	if rule == nil {
		return nil, fmt.Errorf("dm: no retention rule configured")
	}
	rep := &RetentionReport{}

	// Newest day on record.
	newest, err := d.query(minidb.Query{
		Table:   schema.TableRawUnits,
		OrderBy: []minidb.Order{{Col: "day", Desc: true}},
		Limit:   1,
	})
	if err != nil {
		return nil, err
	}
	if len(newest.Rows) == 0 {
		return rep, nil
	}
	cutoff := newest.Rows[0][1].Int() - rule.MaxAgeDays

	old, err := d.query(minidb.Query{
		Table: schema.TableRawUnits,
		Where: []minidb.Pred{{Col: "day", Op: minidb.OpLt, Val: minidb.I(cutoff)}},
	})
	if err != nil {
		return nil, err
	}
	for _, row := range old.Rows {
		rep.Considered++
		itemID := row[7].Str()
		rn, err := d.Resolve(itemID, schema.NameFile)
		if err != nil {
			rep.Failed++
			continue
		}
		if rn.ArchiveID == rule.ToArchive {
			continue // already migrated
		}
		if err := d.RelocateItem(itemID, rule.ToArchive); err != nil {
			rep.Failed++
			d.logOp("warn", "retention", "unit %s: %v", row[0].Str(), err)
			continue
		}
		rep.Migrated++
		rep.BytesMoved += rn.Bytes
	}
	d.logOp("info", "retention", "cutoff day %d: %d considered, %d migrated, %d failed",
		cutoff, rep.Considered, rep.Migrated, rep.Failed)
	return rep, nil
}

package dm

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func TestExecQueueRunsJobs(t *testing.T) {
	q := NewExecQueue(3, 16)
	defer q.Close()
	var ran atomic.Int64
	var futures []*Future
	for i := 0; i < 10; i++ {
		f, err := q.Enqueue(func() error {
			ran.Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	for _, f := range futures {
		if err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if ran.Load() != 10 {
		t.Fatalf("ran = %d", ran.Load())
	}
	queued, executed, rejected := q.Stats()
	if queued != 10 || executed != 10 || rejected != 0 {
		t.Fatalf("stats = %d/%d/%d", queued, executed, rejected)
	}
}

func TestExecQueuePropagatesErrors(t *testing.T) {
	q := NewExecQueue(1, 4)
	defer q.Close()
	want := errors.New("load failed")
	f, err := q.Enqueue(func() error { return want })
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Wait(context.Background()); !errors.Is(got, want) {
		t.Fatalf("err = %v", got)
	}
	if !f.Done() {
		t.Fatal("future not done")
	}
}

func TestExecQueueRejectsWhenFull(t *testing.T) {
	q := NewExecQueue(1, 1)
	defer q.Close()
	block := make(chan struct{})
	first, err := q.Enqueue(func() error { <-block; return nil })
	if err != nil {
		t.Fatal(err)
	}
	// Fill the single-slot queue, then overflow. The worker may or may not
	// have picked up the first job yet, so allow one buffered success.
	overflowed := false
	for i := 0; i < 3; i++ {
		if _, err := q.Enqueue(func() error { return nil }); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("queue never rejected")
	}
	close(block)
	if err := first.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestExecQueueWaitTimeout(t *testing.T) {
	q := NewExecQueue(1, 4)
	defer q.Close()
	f, _ := q.Enqueue(func() error {
		time.Sleep(100 * time.Millisecond)
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := f.Wait(ctx); err == nil {
		t.Fatal("wait did not time out")
	}
}

func loadDays(t *testing.T, d *DM, days int) {
	t.Helper()
	for day := 1; day <= days; day++ {
		gen := telemetry.GenerateDay(day, telemetry.Config{
			Seed: 123, DayLength: 600, BackgroundRate: 3, Flares: 1, Bursts: 0,
		})
		for _, u := range telemetry.SegmentDay(gen, 600) {
			if _, err := d.LoadUnit(u); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRetentionMigratesOldUnitsToTape(t *testing.T) {
	d := newTestDM(t)
	tape, err := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(tape, "/archives/tape-0"); err != nil {
		t.Fatal(err)
	}
	loadDays(t, d, 4)

	// Units older than 1 day (relative to day 4) go to tape.
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 1, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	rule, err := d.RetentionRuleSet()
	if err != nil || rule == nil || rule.ToArchive != "tape-0" {
		t.Fatalf("rule = %+v %v", rule, err)
	}
	rep, err := d.ApplyRetention()
	if err != nil {
		t.Fatal(err)
	}
	// Days 1 and 2 are older than cutoff (4-1=3): 2 units migrate.
	if rep.Migrated != 2 || rep.Failed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if tape.Len() != 2 {
		t.Fatalf("tape holds %d files", tape.Len())
	}
	// Everything still readable through the same item ids; day-3+ data
	// stayed on disk.
	sys := d.systemSession()
	photons, _, err := d.RawPhotons(sys, 0, 600)
	if err != nil || len(photons) == 0 {
		t.Fatalf("day-1 photons after migration: %d %v", len(photons), err)
	}
	units, _ := d.UnitsInRange(0, 600)
	rn, err := d.Resolve(units[0].ItemID, schema.NameFile)
	if err != nil || rn.ArchiveID != "tape-0" {
		t.Fatalf("day-1 unit on %s, want tape-0 (%v)", rn.ArchiveID, err)
	}
	// Idempotent: a second run finds nothing to move.
	rep2, err := d.ApplyRetention()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Migrated != 0 {
		t.Fatalf("second run migrated %d", rep2.Migrated)
	}
}

func TestRetentionValidation(t *testing.T) {
	d := newTestDM(t)
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 1, ToArchive: "ghost"}); err == nil {
		t.Fatal("unmounted target accepted")
	}
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: -1, ToArchive: "disk-0"}); err == nil {
		t.Fatal("negative age accepted")
	}
	if _, err := d.ApplyRetention(); err == nil {
		t.Fatal("retention without a rule ran")
	}
	// Rule update overwrites, not duplicates.
	tape, _ := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err := d.RegisterArchive(tape, "/t"); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 5, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 2, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	rule, _ := d.RetentionRuleSet()
	if rule.MaxAgeDays != 2 {
		t.Fatalf("rule = %+v", rule)
	}
}

func TestRetentionSurvivesOfflineTarget(t *testing.T) {
	d := newTestDM(t)
	tape, _ := archive.New("tape-0", archive.Tape, t.TempDir(), 0)
	if err := d.RegisterArchive(tape, "/t"); err != nil {
		t.Fatal(err)
	}
	loadDays(t, d, 3)
	if err := d.SetRetentionRule(RetentionRule{MaxAgeDays: 0, ToArchive: "tape-0"}); err != nil {
		t.Fatal(err)
	}
	tape.SetOnline(false)
	rep, err := d.ApplyRetention()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Migrated != 0 || rep.Failed == 0 {
		t.Fatalf("report with offline tape = %+v", rep)
	}
	// Data intact on disk; a later run (tape back) succeeds.
	tape.SetOnline(true)
	rep, err = d.ApplyRetention()
	if err != nil || rep.Migrated == 0 {
		t.Fatalf("recovery run = %+v %v", rep, err)
	}
	sys := d.systemSession()
	if photons, _, err := d.RawPhotons(sys, 0, 600); err != nil || len(photons) == 0 {
		t.Fatalf("photons after failed+retried retention: %v", err)
	}
}

func TestPredefinedQueries(t *testing.T) {
	d := newTestDM(t)
	alice := newScientist(t, d, "alice")
	for i := 0; i < 6; i++ {
		kind := "flare"
		if i%2 == 1 {
			kind = "gamma-ray-burst"
		}
		if _, err := d.CreateHLE(alice, &schema.HLE{
			KindHint: kind, TStart: float64(i * 10), TStop: float64(i*10 + 5),
			Significance: float64(i * 10), Version: 1, CalibVersion: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SavePredefinedQuery("bright-flares", "flares, latest first",
		HLEFilter{Kind: "flare", OrderDesc: true, Limit: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.SavePredefinedQuery("bad name", "", HLEFilter{}); err == nil {
		t.Fatal("name with space accepted")
	}
	// Round trip.
	f, desc, err := d.PredefinedQuery("bright-flares")
	if err != nil || f.Kind != "flare" || !f.OrderDesc || desc == "" {
		t.Fatalf("query = %+v %q %v", f, desc, err)
	}
	if _, _, err := d.PredefinedQuery("ghost"); err == nil {
		t.Fatal("missing query served")
	}
	// Listing.
	list, err := d.ListPredefinedQueries()
	if err != nil || len(list) != 1 || list[0].Name != "bright-flares" {
		t.Fatalf("list = %v %v", list, err)
	}
	// Execution honours the session's visibility.
	got, err := d.RunPredefinedQuery(alice, "bright-flares")
	if err != nil || len(got) != 3 {
		t.Fatalf("run = %d %v", len(got), err)
	}
	anon, err := d.RunPredefinedQuery(nil, "bright-flares")
	if err != nil || len(anon) != 0 {
		t.Fatalf("anonymous run sees %d private events", len(anon))
	}
	// Overwrite changes behaviour.
	if err := d.SavePredefinedQuery("bright-flares", "bursts actually",
		HLEFilter{Kind: "gamma-ray-burst"}); err != nil {
		t.Fatal(err)
	}
	got, _ = d.RunPredefinedQuery(alice, "bright-flares")
	if len(got) != 3 || got[0].KindHint != "gamma-ray-burst" {
		t.Fatalf("overwritten query = %v", got)
	}
}

func TestLoadUnitCompensatesOnArchiveFailure(t *testing.T) {
	d := newTestDM(t)
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 321, DayLength: 600, BackgroundRate: 3, Flares: 1, Bursts: 0,
	})
	u := telemetry.SegmentDay(day, 600)[0]
	// The archive dies before the load.
	d.archives.Get("disk-0").SetOnline(false)
	if _, err := d.LoadUnit(u); err == nil {
		t.Fatal("load succeeded against an offline archive")
	}
	// No partial state: no raw unit tuple, no orphan location entries.
	if n := d.DomainDB().TableLen(schema.TableRawUnits); n != 0 {
		t.Fatalf("raw_units = %d after failed load", n)
	}
	if n := d.MetaDB().TableLen(schema.TableLocEntries); n != 0 {
		t.Fatalf("loc_entries = %d after failed load", n)
	}
	// The archive recovers and the same unit loads cleanly.
	d.archives.Get("disk-0").SetOnline(true)
	if _, err := d.LoadUnit(u); err != nil {
		t.Fatal(err)
	}
}

func TestLoadPhoenixSecondDataSource(t *testing.T) {
	d := newTestDM(t)
	p := telemetry.GeneratePhoenix(1, 0, telemetry.PhoenixConfig{
		Seed: 17, Bursts: 2, TimeBins: 256, FreqBins: 32,
	})
	rep, err := d.LoadPhoenix(p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bursts == 0 {
		t.Fatal("no radio bursts loaded")
	}
	// Double load rejected.
	if _, err := d.LoadPhoenix(p); err == nil {
		t.Fatal("phoenix file loaded twice")
	}
	// The events sit in both the Phoenix catalog and the extended catalog,
	// publicly visible (§2.2).
	phoenix, err := d.QueryHLEs(nil, HLEFilter{Catalog: PhoenixCat})
	if err != nil || len(phoenix) != rep.Bursts {
		t.Fatalf("phoenix catalog = %d %v", len(phoenix), err)
	}
	extended, err := d.QueryHLEs(nil, HLEFilter{Catalog: ExtendedCat, Kind: "radio-burst"})
	if err != nil || len(extended) != rep.Bursts {
		t.Fatalf("extended catalog radio bursts = %d %v", len(extended), err)
	}
	// The spectrogram file resolves through generic name mapping and
	// parses back into the foreign format.
	data, rn, err := d.ReadItem(nil, phoenix[0].ItemID)
	if err != nil || rn.Format != "phx2" || rn.Transform != "phx2-decode" {
		t.Fatalf("item = %+v %v", rn, err)
	}
	parsed, err := telemetry.ParsePhoenix(data)
	if err != nil || parsed.Day != 1 {
		t.Fatalf("parse = %+v %v", parsed, err)
	}
	// RHESSI data coexists: load a photon unit afterwards.
	day := telemetry.GenerateDay(1, telemetry.Config{
		Seed: 55, DayLength: 600, BackgroundRate: 3, Flares: 1, Bursts: 0,
	})
	if _, err := d.LoadUnit(telemetry.SegmentDay(day, 600)[0]); err != nil {
		t.Fatal(err)
	}
}

func TestUsageMonitoring(t *testing.T) {
	d := newTestDM(t)
	loadDays(t, d, 2)
	totals, err := d.UsageTotals()
	if err != nil {
		t.Fatal(err)
	}
	if totals["units_loaded"] != 2 {
		t.Fatalf("units_loaded = %v", totals["units_loaded"])
	}
	if totals["photons_loaded"] <= 0 {
		t.Fatalf("photons_loaded = %v", totals["photons_loaded"])
	}
	if err := d.RecordUsage("custom_metric", 3.5, "alice"); err != nil {
		t.Fatal(err)
	}
	totals, _ = d.UsageTotals()
	if totals["custom_metric"] != 3.5 {
		t.Fatalf("custom_metric = %v", totals["custom_metric"])
	}
}

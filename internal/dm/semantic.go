package dm

import (
	"fmt"

	"repro/internal/minidb"
	"repro/internal/schema"
)

// Semantic layer (§5.2): entity services over the domain schema with access
// rules, referential consistency and data-dependency checks. All reads
// carry the session's visibility filter; all writes check ownership.

// HLEFilter narrows QueryHLEs. Zero values mean "no constraint".
type HLEFilter struct {
	Kind      string // kind_hint equality
	Owner     string // owner equality
	Day       int64  // mission day (use HasDay)
	HasDay    bool
	TimeFrom  float64 // tstart range (use HasTime)
	TimeTo    float64
	HasTime   bool
	Catalog   string // restrict to members of this catalog
	OrderDesc bool   // order by tstart descending
	Offset    int
	Limit     int
}

func (f HLEFilter) toQuery(s *Session) minidb.Query {
	q := minidb.Query{
		Table:   schema.TableHLE,
		Or:      visibilityOr(s),
		OrderBy: []minidb.Order{{Col: "tstart", Desc: f.OrderDesc}},
		Offset:  f.Offset,
		Limit:   f.Limit,
	}
	if f.Kind != "" {
		q.Where = append(q.Where, minidb.Pred{Col: "kind_hint", Op: minidb.OpEq, Val: minidb.S(f.Kind)})
	}
	if f.Owner != "" {
		q.Where = append(q.Where, minidb.Pred{Col: "owner", Op: minidb.OpEq, Val: minidb.S(f.Owner)})
	}
	if f.HasDay {
		q.Where = append(q.Where, minidb.Pred{Col: "day", Op: minidb.OpEq, Val: minidb.I(f.Day)})
	}
	if f.HasTime {
		q.Where = append(q.Where, minidb.Pred{
			Col: "tstart", Op: minidb.OpBetween, Val: minidb.F(f.TimeFrom), Hi: minidb.F(f.TimeTo),
		})
	}
	return q
}

// QueryHLEs returns the visible events matching the filter.
func (d *DM) QueryHLEs(s *Session, f HLEFilter) ([]*schema.HLE, error) {
	d.stats.Requests.Add(1)
	if !s.Has(RightBrowse) {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("browse", schema.TableHLE)
	}
	if f.Catalog != "" {
		return d.catalogHLEs(s, f)
	}
	res, err := d.query(f.toQuery(s))
	if err != nil {
		return nil, err
	}
	out := make([]*schema.HLE, 0, len(res.Rows))
	for _, row := range res.Rows {
		h, err := schema.HLEFromRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// CountHLEs returns the number of visible events matching the filter.
// Counts are served from the epoch-keyed cache: repeated identical counts
// between commits to the HLE table cost no engine query.
func (d *DM) CountHLEs(s *Session, f HLEFilter) (int, error) {
	d.stats.Requests.Add(1)
	q := f.toQuery(s)
	q.Count = true
	q.OrderBy, q.Offset, q.Limit = nil, 0, 0
	res, err := d.cachedQuery(q)
	if err != nil {
		return 0, err
	}
	return res.Count, nil
}

// GetHLE fetches one event by id, enforcing visibility.
func (d *DM) GetHLE(s *Session, id string) (*schema.HLE, error) {
	d.stats.Requests.Add(1)
	// Point reads are the hottest catalog path. Against a sharded engine
	// they go through the cache: per-shard epochs mean a commit on another
	// shard is not an invalidation, so entries stay warm under mixed load.
	// Against a single engine the table-level epoch would evict them on
	// every hle write anyway, so the uncached path keeps the §7.2 page
	// anatomy (7 queries per browse request) exactly as calibrated.
	q := minidb.Query{
		Table: schema.TableHLE,
		Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	}
	var res *minidb.Result
	var err error
	if _, sharded := d.routeDB(q.Table).(queryEpocher); sharded {
		res, err = d.cachedQuery(q)
	} else {
		res, err = d.query(q)
	}
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("dm: no such HLE %s", id)
	}
	h, err := schema.HLEFromRow(res.Rows[0])
	if err != nil {
		return nil, err
	}
	if !d.mayRead(s, h.Owner, h.Public) {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("read", id)
	}
	return h, nil
}

// CreateHLE inserts a new event owned by the session user. Events start
// private (§5.5: "By default all derived data belongs to the user who
// creates it and is considered private").
func (d *DM) CreateHLE(s *Session, h *schema.HLE) (string, error) {
	d.stats.Requests.Add(1)
	if s == nil || !s.Has(RightAnalyze) && !s.Has(RightUpload) {
		d.stats.AccessDenied.Add(1)
		return "", errDenied("create", schema.TableHLE)
	}
	id, err := d.nextID("hle")
	if err != nil {
		return "", err
	}
	h.ID = id
	h.Owner = s.User
	if !s.Super() {
		h.Public = false
	}
	if h.Origin == "" {
		h.Origin = "user"
	}
	h.Created = nowSecs()
	h.Modified = h.Created
	err = d.exec(schema.TableHLE, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableHLE, h.ToRow())
		return err
	})
	if err != nil {
		return "", err
	}
	d.stats.Edits.Add(1)
	_ = d.recordLineage(id, h.UnitID, "create", h.Version, "hle by "+s.User)
	return id, nil
}

// AnalysesForHLE lists the visible analyses attached to an event.
func (d *DM) AnalysesForHLE(s *Session, hleID string) ([]*schema.ANA, error) {
	d.stats.Requests.Add(1)
	res, err := d.query(minidb.Query{
		Table: schema.TableANA,
		Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(hleID)}},
		Or:    visibilityOr(s),
	})
	if err != nil {
		return nil, err
	}
	out := make([]*schema.ANA, 0, len(res.Rows))
	for _, row := range res.Rows {
		a, err := schema.ANAFromRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// GetANA fetches one analysis by id, enforcing visibility.
func (d *DM) GetANA(s *Session, id string) (*schema.ANA, error) {
	d.stats.Requests.Add(1)
	res, err := d.query(minidb.Query{
		Table: schema.TableANA,
		Where: []minidb.Pred{{Col: "ana_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("dm: no such analysis %s", id)
	}
	a, err := schema.ANAFromRow(res.Rows[0])
	if err != nil {
		return nil, err
	}
	if !d.mayRead(s, a.Owner, a.Public) {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("read", id)
	}
	return a, nil
}

// FindExistingAnalysis implements the §3.5 redundant-work check: before
// running an analysis, HEDC "can check whether this has already been done
// and, if that is the case, offer the available results as an alternative".
// Two analyses match when type and the scientific parameters coincide.
func (d *DM) FindExistingAnalysis(s *Session, spec *schema.ANA) (*schema.ANA, error) {
	d.stats.Requests.Add(1)
	res, err := d.query(minidb.Query{
		Table: schema.TableANA,
		Where: []minidb.Pred{
			{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(spec.HLEID)},
			{Col: "type", Op: minidb.OpEq, Val: minidb.S(spec.Type)},
			{Col: "status", Op: minidb.OpEq, Val: minidb.S(schema.AnaCommitted)},
		},
		Or: visibilityOr(s),
	})
	if err != nil {
		return nil, err
	}
	for _, row := range res.Rows {
		a, err := schema.ANAFromRow(row)
		if err != nil {
			return nil, err
		}
		if a.TStart == spec.TStart && a.TStop == spec.TStop &&
			a.EMin == spec.EMin && a.EMax == spec.EMax &&
			a.TimeBins == spec.TimeBins && a.EnergyBins == spec.EnergyBins &&
			a.ImageSize == spec.ImageSize && a.ApproxFrac == spec.ApproxFrac &&
			a.CalibVersion == spec.CalibVersion {
			return a, nil
		}
	}
	return nil, nil
}

// ImportAnalysis stores an analysis entity: its files (image, log,
// parameters) go to the archive with location entries, its tuple into the
// domain schema — one transactional unit with compensation (§4.4).
// The referenced HLE must exist and be visible (referential integrity).
func (d *DM) ImportAnalysis(s *Session, a *schema.ANA, files []StoredFile) (string, error) {
	d.stats.Requests.Add(1)
	if s == nil || !(s.Has(RightAnalyze) || s.Has(RightUpload)) {
		d.stats.AccessDenied.Add(1)
		return "", errDenied("import", schema.TableANA)
	}
	if _, err := d.GetHLE(s, a.HLEID); err != nil {
		return "", fmt.Errorf("dm: analysis references %s: %w", a.HLEID, err)
	}
	id, err := d.nextID("ana")
	if err != nil {
		return "", err
	}
	a.ID = id
	a.Owner = s.User
	if !s.Super() {
		a.Public = false
	}
	if a.Status == "" {
		a.Status = schema.AnaCommitted
	}
	if a.Created == 0 {
		a.Created = nowSecs()
	}

	// Store files first (cheap to compensate), then the tuple.
	if len(files) > 0 {
		itemID, err := d.nextID("item")
		if err != nil {
			return "", err
		}
		if err := d.StoreItemFiles(itemID, a.Owner, a.Public, files); err != nil {
			return "", err
		}
		a.ItemID = itemID
		var out int64
		for _, f := range files {
			out += int64(len(f.Data))
		}
		if a.OutputBytes == 0 {
			a.OutputBytes = out
		}
	}
	err = d.exec(schema.TableANA, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableANA, a.ToRow())
		return err
	})
	if err != nil {
		// Compensation: the tuple failed, remove the files and entries.
		if a.ItemID != "" {
			d.dropItem(a.ItemID)
		}
		return "", err
	}
	d.stats.Edits.Add(1)
	_ = d.recordLineage(id, a.HLEID, "create", a.Version, "ana "+a.Type+" by "+s.User)
	return id, nil
}

// dropItem removes an item's files and location entries (compensation).
func (d *DM) dropItem(itemID string) {
	res, err := d.query(minidb.Query{
		Table: schema.TableLocEntries,
		Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(itemID)}},
	})
	if err != nil {
		return
	}
	removed := map[string]bool{}
	for i, row := range res.Rows {
		archID, p := row[3].Str(), row[4].Str()
		key := archID + "\x00" + p
		if !removed[key] {
			if arch := d.archives.Get(archID); arch != nil {
				_ = arch.Remove(p)
			}
			removed[key] = true
		}
		_ = d.routeDB(schema.TableLocEntries).Delete(schema.TableLocEntries, res.RowIDs[i])
	}
}

// Publish flips an entity (hle or ana) to public. Owner or super only.
func (d *DM) Publish(s *Session, kind, id string) error {
	d.stats.Requests.Add(1)
	table, pk, ownerCol, publicCol := entityTable(kind)
	if table == "" {
		return fmt.Errorf("dm: unknown entity kind %q", kind)
	}
	res, err := d.query(minidb.Query{
		Table: table,
		Where: []minidb.Pred{{Col: pk, Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("dm: no such %s %s", kind, id)
	}
	row := res.Rows[0]
	if !d.mayEdit(s, row[ownerCol].Str()) {
		d.stats.AccessDenied.Add(1)
		return errDenied("publish", id)
	}
	updated := row.Clone()
	updated[publicCol] = minidb.Bo(true)
	if err := d.routeDB(table).Update(table, res.RowIDs[0], updated); err != nil {
		return err
	}
	d.stats.Edits.Add(1)
	// Files attached to the entity become public too.
	itemCol := -1
	for i, c := range d.routeDB(table).Schema(table).Columns {
		if c.Name == "item_id" {
			itemCol = i
		}
	}
	if itemCol >= 0 && row[itemCol].Str() != "" {
		d.publishItem(row[itemCol].Str())
	}
	return nil
}

func (d *DM) publishItem(itemID string) {
	res, err := d.query(minidb.Query{
		Table: schema.TableLocEntries,
		Where: []minidb.Pred{{Col: "item_id", Op: minidb.OpEq, Val: minidb.S(itemID)}},
	})
	if err != nil {
		return
	}
	for i, row := range res.Rows {
		updated := row.Clone()
		updated[8] = minidb.Bo(true)
		if d.routeDB(schema.TableLocEntries).Update(schema.TableLocEntries, res.RowIDs[i], updated) == nil {
			d.stats.Edits.Add(1)
		}
	}
}

func entityTable(kind string) (table, pk string, ownerCol, publicCol int) {
	switch kind {
	case "hle":
		return schema.TableHLE, "hle_id", 2, 3
	case "ana":
		return schema.TableANA, "ana_id", 5, 6
	}
	return "", "", 0, 0
}

// DeleteHLE removes an event. Integrity constraint (§5.3): "tuples
// belonging to an entity may not be deleted if data dependencies exist" —
// an HLE with analyses or catalog memberships is not deletable.
func (d *DM) DeleteHLE(s *Session, id string) error {
	d.stats.Requests.Add(1)
	h, err := d.GetHLE(s, id)
	if err != nil {
		return err
	}
	if !d.mayEdit(s, h.Owner) {
		d.stats.AccessDenied.Add(1)
		return errDenied("delete", id)
	}
	deps, err := d.cachedQuery(minidb.Query{
		Table: schema.TableANA, Count: true,
		Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if deps.Count > 0 {
		return fmt.Errorf("dm: HLE %s has %d dependent analyses", id, deps.Count)
	}
	members, err := d.cachedQuery(minidb.Query{
		Table: schema.TableCatalogMembers, Count: true,
		Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if members.Count > 0 {
		return fmt.Errorf("dm: HLE %s appears in %d catalogs", id, members.Count)
	}
	return d.deleteByPK(schema.TableHLE, "hle_id", id)
}

// DeleteANA removes an analysis and its files. Owner or super only.
func (d *DM) DeleteANA(s *Session, id string) error {
	d.stats.Requests.Add(1)
	a, err := d.GetANA(s, id)
	if err != nil {
		return err
	}
	if !d.mayEdit(s, a.Owner) {
		d.stats.AccessDenied.Add(1)
		return errDenied("delete", id)
	}
	if err := d.deleteByPK(schema.TableANA, "ana_id", id); err != nil {
		return err
	}
	if a.ItemID != "" {
		d.dropItem(a.ItemID)
	}
	return nil
}

func (d *DM) deleteByPK(table, pk, id string) error {
	res, err := d.query(minidb.Query{
		Table: table,
		Where: []minidb.Pred{{Col: pk, Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if len(res.RowIDs) == 0 {
		return fmt.Errorf("dm: no such row %s in %s", id, table)
	}
	if err := d.routeDB(table).Delete(table, res.RowIDs[0]); err != nil {
		return err
	}
	d.stats.Edits.Add(1)
	return nil
}

// Catalog is a named grouping of HLEs: private workspaces and the shared
// standard/extended catalogs (§3.3, §4.1).
type Catalog struct {
	ID          string
	Name        string
	Owner       string
	Public      bool
	Kind        string // standard | extended | private
	Description string
	Created     float64
	Members     int
}

// CreateCatalog makes a new catalog owned by the session user.
func (d *DM) CreateCatalog(s *Session, name, kind, description string, public bool) (string, error) {
	d.stats.Requests.Add(1)
	if s == nil {
		d.stats.AccessDenied.Add(1)
		return "", errDenied("create", schema.TableCatalog)
	}
	public = public && s.Super() // only admins create shared catalogs directly
	id, err := d.nextID("cat")
	if err != nil {
		return "", err
	}
	err = d.exec(schema.TableCatalog, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableCatalog, minidb.Row{
			minidb.S(id), minidb.S(name), minidb.S(s.User), minidb.Bo(public),
			minidb.S(kind), minidb.S(description), minidb.F(nowSecs()),
		})
		return err
	})
	if err != nil {
		return "", err
	}
	d.stats.Edits.Add(1)
	return id, nil
}

// catalogMembersView is the materialized count view behind catalog member
// counts — the §6.3 summary-query optimization. Created lazily.
const catalogMembersView = "catalog_member_counts"

func (d *DM) ensureCatalogView() error {
	d.viewOnce.Do(func() {
		d.viewErr = d.routeDB(schema.TableCatalogMembers).CreateCountView(
			catalogMembersView, schema.TableCatalogMembers, "catalog_id")
	})
	return d.viewErr
}

// ListCatalogs returns the catalogs visible to the session with member
// counts served from a materialized count view (§6.3) instead of one
// count query per catalog.
func (d *DM) ListCatalogs(s *Session) ([]*Catalog, error) {
	d.stats.Requests.Add(1)
	if err := d.ensureCatalogView(); err != nil {
		return nil, err
	}
	res, err := d.query(minidb.Query{
		Table:   schema.TableCatalog,
		Or:      visibilityOr(s),
		OrderBy: []minidb.Order{{Col: "catalog_id"}},
	})
	if err != nil {
		return nil, err
	}
	db := d.routeDB(schema.TableCatalogMembers)
	out := make([]*Catalog, 0, len(res.Rows))
	for _, row := range res.Rows {
		c := &Catalog{
			ID: row[0].Str(), Name: row[1].Str(), Owner: row[2].Str(),
			Public: row[3].Bool(), Kind: row[4].Str(),
			Description: row[5].Str(), Created: row[6].Float(),
		}
		n, err := db.ViewCount(catalogMembersView, minidb.S(c.ID))
		if err != nil {
			return nil, err
		}
		c.Members = n
		out = append(out, c)
	}
	return out, nil
}

// CatalogMemberCount returns a catalog's membership size from the
// materialized count view (§6.3).
func (d *DM) CatalogMemberCount(catalogID string) (int, error) {
	if err := d.ensureCatalogView(); err != nil {
		return 0, err
	}
	return d.routeDB(schema.TableCatalogMembers).ViewCount(catalogMembersView, minidb.S(catalogID))
}

// AddToCatalog links an HLE into a catalog. Referential integrity: both
// must exist and be visible; the catalog must be editable by the caller.
func (d *DM) AddToCatalog(s *Session, catalogID, hleID string) error {
	d.stats.Requests.Add(1)
	cat, err := d.getCatalog(s, catalogID)
	if err != nil {
		return err
	}
	if !d.mayEdit(s, cat.Owner) {
		d.stats.AccessDenied.Add(1)
		return errDenied("edit", catalogID)
	}
	if _, err := d.GetHLE(s, hleID); err != nil {
		return fmt.Errorf("dm: catalog member: %w", err)
	}
	// No duplicates. Cached: bulk catalog loads re-check the same pair
	// shape repeatedly, and any insert bumps the members epoch.
	dup, err := d.cachedQuery(minidb.Query{
		Table: schema.TableCatalogMembers, Count: true,
		Where: []minidb.Pred{
			{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(catalogID)},
			{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(hleID)},
		},
	})
	if err != nil {
		return err
	}
	if dup.Count > 0 {
		return nil // already a member; idempotent
	}
	id, err := d.nextID("mem")
	if err != nil {
		return err
	}
	var n int64
	fmt.Sscanf(id, "mem-%d", &n)
	user := "system"
	if s != nil {
		user = s.User
	}
	err = d.exec(schema.TableCatalogMembers, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableCatalogMembers, minidb.Row{
			minidb.I(n), minidb.S(catalogID), minidb.S(hleID), minidb.S(user), minidb.F(nowSecs()),
		})
		return err
	})
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

func (d *DM) getCatalog(s *Session, id string) (*Catalog, error) {
	res, err := d.query(minidb.Query{
		Table: schema.TableCatalog,
		Where: []minidb.Pred{{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, fmt.Errorf("dm: no such catalog %s", id)
	}
	row := res.Rows[0]
	c := &Catalog{
		ID: row[0].Str(), Name: row[1].Str(), Owner: row[2].Str(),
		Public: row[3].Bool(), Kind: row[4].Str(),
		Description: row[5].Str(), Created: row[6].Float(),
	}
	if !d.mayRead(s, c.Owner, c.Public) {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("read", id)
	}
	return c, nil
}

// catalogHLEs returns visible HLEs that are members of the filter's catalog.
func (d *DM) catalogHLEs(s *Session, f HLEFilter) ([]*schema.HLE, error) {
	if _, err := d.getCatalog(s, f.Catalog); err != nil {
		return nil, err
	}
	// Member list from the epoch-keyed cache: browsing a catalog page by
	// page re-reads the same membership set until someone edits it. The
	// cached Result is shared — rows are only read below.
	members, err := d.cachedQuery(minidb.Query{
		Table: schema.TableCatalogMembers,
		Where: []minidb.Pred{{Col: "catalog_id", Op: minidb.OpEq, Val: minidb.S(f.Catalog)}},
	})
	if err != nil {
		return nil, err
	}
	var out []*schema.HLE
	for _, row := range members.Rows {
		h, err := d.GetHLE(s, row[2].Str())
		if err != nil {
			if IsDenied(err) {
				continue // member visible to others, not to this session
			}
			return nil, err
		}
		if f.Kind != "" && h.KindHint != f.Kind {
			continue
		}
		out = append(out, h)
	}
	if f.Offset > 0 {
		if f.Offset >= len(out) {
			out = nil
		} else {
			out = out[f.Offset:]
		}
	}
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out, nil
}

package dm

import (
	"fmt"

	"repro/internal/minidb"
	"repro/internal/schema"
)

// Service registry: the administrative section tracks "available services
// (type, location, prerequisites); connected clients (type, IP, status)"
// (§4.1). Components register at startup and heartbeat while alive, so
// operators can see the deployed topology in the database itself.

// ServiceInfo is one admin_services row in struct form.
type ServiceInfo struct {
	ID        string
	Type      string // dm | pl | idl | web | client
	Location  string
	Status    string
	Heartbeat float64
}

// RegisterService upserts a service row with a fresh heartbeat.
func (d *DM) RegisterService(id, typ, location string) error {
	if id == "" || typ == "" {
		return fmt.Errorf("dm: service registration needs id and type")
	}
	res, err := d.query(minidb.Query{
		Table: schema.TableServices,
		Where: []minidb.Pred{{Col: "service_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	row := minidb.Row{
		minidb.S(id), minidb.S(typ), minidb.S(location),
		minidb.Null(), minidb.S("online"), minidb.F(nowSecs()),
	}
	if len(res.RowIDs) > 0 {
		err = d.routeDB(schema.TableServices).Update(schema.TableServices, res.RowIDs[0], row)
	} else {
		_, err = d.routeDB(schema.TableServices).Insert(schema.TableServices, row)
	}
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

// ServiceHeartbeat refreshes a service's liveness timestamp.
func (d *DM) ServiceHeartbeat(id string) error {
	res, err := d.query(minidb.Query{
		Table: schema.TableServices,
		Where: []minidb.Pred{{Col: "service_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if len(res.RowIDs) == 0 {
		return fmt.Errorf("dm: heartbeat from unregistered service %s", id)
	}
	row := res.Rows[0].Clone()
	row[5] = minidb.F(nowSecs())
	if err := d.routeDB(schema.TableServices).Update(schema.TableServices, res.RowIDs[0], row); err != nil {
		return err
	}
	d.stats.Edits.Add(1)
	return nil
}

// MarkServiceOffline flips a service's status without removing its row.
func (d *DM) MarkServiceOffline(id string) error {
	res, err := d.query(minidb.Query{
		Table: schema.TableServices,
		Where: []minidb.Pred{{Col: "service_id", Op: minidb.OpEq, Val: minidb.S(id)}},
	})
	if err != nil {
		return err
	}
	if len(res.RowIDs) == 0 {
		return fmt.Errorf("dm: unknown service %s", id)
	}
	row := res.Rows[0].Clone()
	row[4] = minidb.S("offline")
	return d.routeDB(schema.TableServices).Update(schema.TableServices, res.RowIDs[0], row)
}

// Services lists registered services, optionally filtered by type.
func (d *DM) Services(typ string) ([]ServiceInfo, error) {
	q := minidb.Query{Table: schema.TableServices, OrderBy: []minidb.Order{{Col: "service_id"}}}
	if typ != "" {
		q.Where = []minidb.Pred{{Col: "type", Op: minidb.OpEq, Val: minidb.S(typ)}}
	}
	res, err := d.query(q)
	if err != nil {
		return nil, err
	}
	out := make([]ServiceInfo, 0, len(res.Rows))
	for _, row := range res.Rows {
		out = append(out, ServiceInfo{
			ID: row[0].Str(), Type: row[1].Str(), Location: row[2].Str(),
			Status: row[4].Str(), Heartbeat: row[5].Float(),
		})
	}
	return out, nil
}

// RecordUsage appends a monitoring row to the operational section's usage
// table ("monitoring information such as usage statistics or audit
// trails", §4.1). Process-layer workflows call it; per-request paths do
// not, to keep the §7.2 request anatomy intact.
func (d *DM) RecordUsage(metric string, value float64, user string) error {
	id, err := d.nextID("usage")
	if err != nil {
		return err
	}
	var n int64
	fmt.Sscanf(id, "usage-%d", &n)
	userVal := minidb.Null()
	if user != "" {
		userVal = minidb.S(user)
	}
	_, err = d.meta.Insert(schema.TableUsage, minidb.Row{
		minidb.I(n), minidb.F(nowSecs()), minidb.S(metric), minidb.F(value), userVal,
	})
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

// UsageTotals sums recorded values per metric.
func (d *DM) UsageTotals() (map[string]float64, error) {
	res, err := d.query(minidb.Query{Table: schema.TableUsage})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, row := range res.Rows {
		out[row[2].Str()] += row[3].Float()
	}
	return out, nil
}

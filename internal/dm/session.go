package dm

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"repro/internal/minidb"
	"repro/internal/schema"
)

// Sessions (§5.3). "Each request to the DM contains user authentication to
// retrieve the associated user profile (user rights, configuration,
// constraints)... Profile, status information and view are stored in
// sessions. ... The DM caches up to three sessions per user (one for
// analysis, HLEs, and catalogues each). The cache lookup algorithm uses the
// network IP and cookies to match clients with their sessions."

// User groups.
const (
	GroupAdmin     = "admin"
	GroupScientist = "scientist"
	GroupPublic    = "public"
)

// Rights, comma-separated in the user profile.
const (
	RightBrowse   = "browse"
	RightDownload = "download"
	RightAnalyze  = "analyze"
	RightUpload   = "upload"
)

// Session kinds — one cached session per user per kind.
const (
	SessionHLE     = "hle"
	SessionANA     = "ana"
	SessionCatalog = "catalog"
)

// Session is an authenticated context.
type Session struct {
	Token    string
	User     string
	Group    string
	Rights   map[string]bool
	Kind     string
	IP       string
	Created  float64
	LastUsed float64
}

// Super reports whether the session may see and edit all committed data
// (the §6.1 "super-user" access rule).
func (s *Session) Super() bool { return s != nil && s.Group == GroupAdmin }

// Has reports whether the session holds a right. Nil sessions (anonymous
// web visitors) hold only browse.
func (s *Session) Has(right string) bool {
	if s == nil {
		return right == RightBrowse
	}
	return s.Rights[right]
}

type deniedError struct{ op, what string }

func (e deniedError) Error() string { return fmt.Sprintf("dm: access denied: %s %s", e.op, e.what) }

func errDenied(op, what string) error { return deniedError{op, what} }

// IsDenied reports whether err is an access-control rejection.
func IsDenied(err error) bool {
	_, ok := err.(deniedError)
	return ok
}

// mayRead implements the privacy constraint: "only public data may be read
// or processed by other users" (§5.3), with super-users exempt.
func (d *DM) mayRead(s *Session, owner string, public bool) bool {
	if public {
		return true
	}
	if s == nil {
		return false
	}
	return s.Super() || s.User == owner
}

// mayEdit implements ownership: "Only the owner may change or delete
// private data" (§5.5).
func (d *DM) mayEdit(s *Session, owner string) bool {
	if s == nil {
		return false
	}
	return s.Super() || s.User == owner
}

// visibilityOr returns the disjunctive filter appended to domain queries:
// public tuples, plus the caller's own (§5.5: "The system typically appends
// the user id to all queries").
func visibilityOr(s *Session) []minidb.Pred {
	if s.Super() {
		return nil
	}
	or := []minidb.Pred{{Col: "public", Op: minidb.OpEq, Val: minidb.Bo(true)}}
	if s != nil {
		or = append(or, minidb.Pred{Col: "owner", Op: minidb.OpEq, Val: minidb.S(s.User)})
	}
	return or
}

// sessionCache holds live sessions: by token for request lookup, and by
// (user, kind) to cap each user at three cached sessions.
type sessionCache struct {
	mu      sync.Mutex
	byToken map[string]*Session
	byUser  map[string]map[string]*Session // user -> kind -> session
}

func newSessionCache() *sessionCache {
	return &sessionCache{
		byToken: make(map[string]*Session),
		byUser:  make(map[string]map[string]*Session),
	}
}

func (c *sessionCache) put(s *Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kinds := c.byUser[s.User]
	if kinds == nil {
		kinds = make(map[string]*Session)
		c.byUser[s.User] = kinds
	}
	if old := kinds[s.Kind]; old != nil {
		delete(c.byToken, old.Token) // one session per user per kind
	}
	kinds[s.Kind] = s
	c.byToken[s.Token] = s
}

func (c *sessionCache) lookup(token, ip string) *Session {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.byToken[token]
	if s == nil || (s.IP != "" && ip != "" && s.IP != ip) {
		return nil
	}
	s.LastUsed = nowSecs()
	return s
}

func (c *sessionCache) drop(token string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.byToken[token]; s != nil {
		delete(c.byToken, token)
		if kinds := c.byUser[s.User]; kinds != nil {
			delete(kinds, s.Kind)
		}
	}
}

func (c *sessionCache) countFor(user string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byUser[user])
}

func hashPassword(user, password string) string {
	sum := sha256.Sum256([]byte("hedc:" + user + ":" + password))
	return hex.EncodeToString(sum[:])
}

func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("dm: token entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// CreateUser registers an account. HEDC requires an account for anything
// beyond browsing public data (§5.5).
func (d *DM) CreateUser(userID, password, group string, rights ...string) error {
	if userID == "" || strings.ContainsAny(userID, " \t\n") {
		return fmt.Errorf("dm: invalid user id %q", userID)
	}
	switch group {
	case GroupAdmin, GroupScientist, GroupPublic:
	default:
		return fmt.Errorf("dm: unknown group %q", group)
	}
	err := d.exec(schema.TableUsers, func(tx minidb.Tx) error {
		_, err := tx.Insert(schema.TableUsers, minidb.Row{
			minidb.S(userID),
			minidb.S(hashPassword(userID, password)),
			minidb.S(group),
			minidb.S(strings.Join(rights, ",")),
			minidb.S("active"),
			minidb.F(nowSecs()),
		})
		return err
	})
	if err == nil {
		d.stats.Edits.Add(1)
	}
	return err
}

// Authenticate validates credentials and returns a cached session of the
// given kind. It costs one database query and one update (§7.2).
func (d *DM) Authenticate(userID, password, ip, kind string) (*Session, error) {
	switch kind {
	case SessionHLE, SessionANA, SessionCatalog:
	default:
		return nil, fmt.Errorf("dm: unknown session kind %q", kind)
	}
	res, err := d.query(minidb.Query{ // the one query
		Table: schema.TableUsers,
		Where: []minidb.Pred{{Col: "user_id", Op: minidb.OpEq, Val: minidb.S(userID)}},
	})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return nil, errDenied("authenticate", userID)
	}
	row := res.Rows[0]
	if row[1].Str() != hashPassword(userID, password) {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("authenticate", userID)
	}
	if row[4].Str() != "active" {
		d.stats.AccessDenied.Add(1)
		return nil, errDenied("authenticate (inactive)", userID)
	}
	// The one update: session bookkeeping on the profile row.
	updated := row.Clone()
	updated[4] = minidb.S("active")
	if err := d.routeDB(schema.TableUsers).Update(schema.TableUsers, res.RowIDs[0], updated); err != nil {
		return nil, err
	}
	d.stats.Edits.Add(1)

	rights := make(map[string]bool)
	for _, r := range strings.Split(row[3].Str(), ",") {
		if r != "" {
			rights[r] = true
		}
	}
	s := &Session{
		Token:   newToken(),
		User:    userID,
		Group:   row[2].Str(),
		Rights:  rights,
		Kind:    kind,
		IP:      ip,
		Created: nowSecs(),
	}
	s.LastUsed = s.Created
	d.sessions.put(s)
	return s, nil
}

// SessionFor resolves a request's token+IP to a cached session (nil for
// anonymous access). Hits and misses are counted for the pooling ablation.
func (d *DM) SessionFor(token, ip string) *Session {
	if token == "" {
		return nil
	}
	s := d.sessions.lookup(token, ip)
	if s == nil {
		d.stats.CacheMisses.Add(1)
		return nil
	}
	d.stats.CacheHits.Add(1)
	return s
}

// Logout drops a cached session.
func (d *DM) Logout(token string) { d.sessions.drop(token) }

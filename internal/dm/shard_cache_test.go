package dm

import (
	"fmt"
	"io"
	"log"
	"testing"

	"repro/internal/archive"
	"repro/internal/minidb"
	"repro/internal/schema"
	"repro/internal/shard"
)

// newShardedTestDM builds a DM whose metadata engine is a 2-shard router —
// the deployment shape the Figure 5 sharded experiment runs.
func newShardedTestDM(t *testing.T) (*DM, *shard.Router) {
	t.Helper()
	shards := make(map[int]minidb.Engine, 2)
	for i := 0; i < 2; i++ {
		db, err := minidb.Open("", schema.AllSchemas()...)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = db
	}
	r, err := shard.NewRouter(shard.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	arch, err := archive.New("disk-0", archive.Disk, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(Options{
		Node:           "dm-sharded-test",
		MetaDB:         r,
		DefaultArchive: "disk-0",
		URLRoot:        "http://hedc.test",
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RegisterArchive(arch, "/archives/disk-0"); err != nil {
		t.Fatal(err)
	}
	return d, r
}

// hleIDOnShard fabricates a fresh hle_id (never returned twice) whose
// partition key routes to the wanted shard under the router's current map.
var hleProbeSeq int

func hleIDOnShard(t *testing.T, r *shard.Router, want int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		hleProbeSeq++
		id := fmt.Sprintf("hle-probe-%06d", hleProbeSeq)
		if r.Map().ReadOwner(shard.SlotOf(minidb.S(id))) == want {
			return id
		}
	}
	t.Fatal("no id found for shard")
	return ""
}

// TestShardedCacheSurvivesOtherShardWrites is the satellite-5 regression:
// with per-shard epochs, a commit on shard k invalidates only shard k's
// slice of the cache. A point read pinned to shard 0 must keep hitting
// across writes to shard 1, and must miss (freshly) after a write to
// shard 0.
func TestShardedCacheSurvivesOtherShardWrites(t *testing.T) {
	d, r := newShardedTestDM(t)
	alice := newScientist(t, d, "alice")

	id0 := hleIDOnShard(t, r, 0)
	id1a := hleIDOnShard(t, r, 1)
	seed := func(id string) {
		h := schema.HLE{ID: id, Owner: "alice", Public: true, KindHint: "flare",
			Origin: "user", Version: 1, CalibVersion: 1}
		if _, err := r.Insert(schema.TableHLE, h.ToRow()); err != nil {
			t.Fatal(err)
		}
	}
	seed(id0)
	seed(id1a)

	// Warm the cache on a shard-0 point read.
	if _, err := d.GetHLE(alice, id0); err != nil {
		t.Fatal(err)
	}
	hits0 := d.stats.QueryCacheHits.Load()
	if _, err := d.GetHLE(alice, id0); err != nil {
		t.Fatal(err)
	}
	if got := d.stats.QueryCacheHits.Load(); got != hits0+1 {
		t.Fatalf("repeat read did not hit the cache (%d -> %d)", hits0, got)
	}

	// Commits on shard 1 must not evict shard 0's cached reads. (Under
	// the old all-or-nothing TableEpoch key every one of these writes
	// flushed the whole hle slice.)
	for i := 0; i < 5; i++ {
		seed(hleIDOnShard(t, r, 1))
	}
	hits1 := d.stats.QueryCacheHits.Load()
	misses1 := d.stats.QueryCacheMisses.Load()
	if _, err := d.GetHLE(alice, id0); err != nil {
		t.Fatal(err)
	}
	if got := d.stats.QueryCacheHits.Load(); got != hits1+1 {
		t.Fatalf("shard-1 writes evicted a shard-0 read (hits %d -> %d, misses %d -> %d)",
			hits1, got, misses1, d.stats.QueryCacheMisses.Load())
	}

	// A commit on shard 0 is a real invalidation: the next read misses
	// and sees the new state.
	rid, err := r.Query(minidb.Query{Table: schema.TableHLE,
		Where: []minidb.Pred{{Col: "hle_id", Op: minidb.OpEq, Val: minidb.S(id0)}}})
	if err != nil || len(rid.RowIDs) != 1 {
		t.Fatalf("lookup %s: %v", id0, err)
	}
	row := append(minidb.Row(nil), rid.Rows[0]...)
	sc := r.Schema(schema.TableHLE)
	row[sc.ColIndex("label")] = minidb.S("bumped")
	if err := r.Update(schema.TableHLE, rid.RowIDs[0], row); err != nil {
		t.Fatal(err)
	}
	misses2 := d.stats.QueryCacheMisses.Load()
	h, err := d.GetHLE(alice, id0)
	if err != nil {
		t.Fatal(err)
	}
	if d.stats.QueryCacheMisses.Load() != misses2+1 {
		t.Fatal("shard-0 write did not invalidate the shard-0 read")
	}
	if h.Label != "bumped" {
		t.Fatalf("stale read after shard-0 write: label %q", h.Label)
	}
}

// TestShardedWasteVsPerShardEpochs quantifies the fix: under a mixed
// workload of reads pinned to shard 0 and writes landing on shard 1, the
// hit rate with per-shard epochs stays high where the all-table key
// would have made every read a miss.
func TestShardedWasteVsPerShardEpochs(t *testing.T) {
	d, r := newShardedTestDM(t)
	alice := newScientist(t, d, "alice")
	id0 := hleIDOnShard(t, r, 0)
	h := schema.HLE{ID: id0, Owner: "alice", Public: true, KindHint: "flare",
		Origin: "user", Version: 1, CalibVersion: 1}
	if _, err := r.Insert(schema.TableHLE, h.ToRow()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetHLE(alice, id0); err != nil { // warm
		t.Fatal(err)
	}

	const rounds = 20
	hits0 := d.stats.QueryCacheHits.Load()
	for i := 0; i < rounds; i++ {
		w := schema.HLE{ID: hleIDOnShard(t, r, 1),
			Owner: "alice", Origin: "user", Version: 1, CalibVersion: 1}
		if _, err := r.Insert(schema.TableHLE, w.ToRow()); err != nil {
			t.Fatal(err)
		}
		if _, err := d.GetHLE(alice, id0); err != nil {
			t.Fatal(err)
		}
	}
	hits := d.stats.QueryCacheHits.Load() - hits0
	if hits != rounds {
		t.Fatalf("hit rate under cross-shard writes: %d/%d reads hit, want all", hits, rounds)
	}
}

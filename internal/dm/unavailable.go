package dm

import (
	"errors"
	"fmt"
)

// DBUnavailableError reports that a DM operation failed because the
// shared database tier is not answering — as opposed to the replica
// being down (a TransportError; retry elsewhere may help) or the request
// being rejected (retry never helps). Every replica dials the same
// database, so once one replica reports this, retrying the call on its
// siblings just burns their connection pools: the gateway fails such
// writes fast and serves reads from its degraded cache instead.
type DBUnavailableError struct {
	Node string // replica that observed the outage (may be empty)
	Err  error  // underlying cause (nil when reconstructed from the wire)
}

func (e *DBUnavailableError) Error() string {
	msg := "dm: shared database unavailable"
	if e.Node != "" {
		msg += " (observed by " + e.Node + ")"
	}
	if e.Err != nil {
		msg = fmt.Sprintf("%s: %v", msg, e.Err)
	}
	return msg
}

func (e *DBUnavailableError) Unwrap() error { return e.Err }

// DBUnavailable is the structural marker shared with dbnet.UnavailableError;
// dm checks for it without importing dbnet.
func (e *DBUnavailableError) DBUnavailable() bool { return true }

// IsDBUnavailable reports whether err (anywhere in its chain) carries the
// DBUnavailable marker — either dbnet's transport error bubbling up
// through the engine, or this package's reconstruction of it from an RPC
// reply.
func IsDBUnavailable(err error) bool {
	var u interface{ DBUnavailable() bool }
	return errors.As(err, &u) && u.DBUnavailable()
}

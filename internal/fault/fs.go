// Package fault provides a deterministic fault-injecting filesystem for
// crash-recovery torture tests. FS is an in-memory implementation of
// minidb.VFS (the filesystem seam shared by the database engine and the
// archive tier); it counts every mutating I/O operation and can "crash the
// process" at exactly the Nth one, in several physically plausible ways.
//
// The durability model: each file carries its current content and a durable
// prefix length. Writes extend current content only; Sync advances the
// durable prefix to the full length. A crash discards (or, depending on the
// mode, partially keeps or corrupts) everything beyond the durable prefix.
// Namespace operations — create, rename, remove, mkdir — are applied
// atomically and durably at the instant they happen, the behaviour of a
// journalled filesystem's metadata; what a crash can tear is file *content*
// that was never fsynced. All writers in this codebase are append-only, so
// the prefix model captures exactly what the page cache can lose.
//
// Enumerating N from 1 to FS.OpCount() of a scripted workload exercises
// every crash site exactly once; after Recover() the post-crash state is
// what a real disk would present at reboot, and the workload's database and
// archives can be reopened against it.
package fault

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"

	"repro/internal/minidb"
)

// FS satisfies the engine's filesystem seam.
var _ minidb.VFS = (*FS)(nil)

// Mode selects what the injected fault does at the Nth operation.
type Mode int

const (
	// ModeCrash halts before the Nth operation applies; every file keeps
	// only its synced prefix. The strictest (and most common) power-cut:
	// nothing the page cache held survives.
	ModeCrash Mode = iota
	// ModeTorn halts at the Nth operation with the lenient page cache: all
	// unsynced content persists, except that when the Nth operation is a
	// write, only the first half of its buffer lands — a torn write.
	ModeTorn
	// ModePartialFsync halts during the Nth operation when it is a Sync,
	// making only half of the pending bytes durable; other files keep only
	// their synced prefixes. Non-sync Nth operations behave like ModeCrash.
	ModePartialFsync
	// ModeBitFlip halts at the Nth operation with all unsynced content
	// persisted, but one bit flipped inside the unsynced region of the file
	// the operation targets — bit rot in exactly the bytes that were in
	// flight. Synced (acknowledged) bytes are never touched.
	ModeBitFlip
	// ModeENOSPC does not crash: from the Nth operation on, every
	// allocating operation (create, write, mkdir) fails with ErrNoSpace
	// until ClearFault is called. Sync, truncate, rename and remove still
	// succeed, as they do on a full disk.
	ModeENOSPC
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeCrash:
		return "crash"
	case ModeTorn:
		return "torn"
	case ModePartialFsync:
		return "partialfsync"
	case ModeBitFlip:
		return "bitflip"
	case ModeENOSPC:
		return "enospc"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Errors surfaced by injected faults.
var (
	ErrCrashed = errors.New("fault: filesystem crashed")
	ErrNoSpace = errors.New("fault: no space left on device")
)

type memFile struct {
	data    []byte
	durable int // prefix of data guaranteed to survive a crash
}

// FS is the fault-injecting in-memory filesystem. All methods are safe for
// concurrent use; injection decisions are serialized under one mutex so the
// Nth-operation trigger is exact even under -race.
type FS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int // mutating operations seen so far
	faultAt int // 0 = injection disabled (still counting)
	mode    Mode
	crashed bool
	nospace bool
	// lastWrite is the most recently written path — the bit-flip target
	// when the triggering operation has no file of its own.
	lastWrite string
}

// NewFS returns an empty filesystem with injection disabled.
func NewFS() *FS {
	return &FS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

// SetFault arms the injector: the fault fires at the nth mutating operation
// from now (counting continues across calls; n is absolute, compared against
// OpCount). mode picks the failure shape.
func (f *FS) SetFault(n int, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultAt = n
	f.mode = mode
}

// ClearFault disarms injection and lifts an ENOSPC condition (the operator
// freed disk space). It does not un-crash a crashed filesystem.
func (f *FS) ClearFault() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faultAt = 0
	f.nospace = false
}

// OpCount returns the number of mutating operations observed.
func (f *FS) OpCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the simulated process has crashed.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Recover finalizes the post-crash disk image and brings the filesystem
// back for the "rebooted process": injection is disarmed, every file's
// content is exactly what the crash semantics preserved, and all of it is
// now durable. Callers then reopen their database/archive against the FS.
func (f *FS) Recover() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.faultAt = 0
	f.nospace = false
	for _, mf := range f.files {
		mf.durable = len(mf.data) // contents were settled at crash time
	}
}

// Paths returns all file paths in sorted order (diagnostics).
func (f *FS) Paths() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

type opKind int

const (
	opMkdir opKind = iota
	opCreate
	opWrite
	opSync
	opTruncate
	opRename
	opRemove
)

func (k opKind) allocates() bool {
	return k == opMkdir || k == opCreate || k == opWrite
}

// step gates one mutating operation: it counts it, fires the armed fault
// when the count is reached, and reports the error the operation must
// return (nil = proceed). Callers hold f.mu. target/buf describe the
// operation for the mode-specific crash semantics.
func (f *FS) step(kind opKind, target string, buf []byte) error {
	if f.crashed {
		return ErrCrashed
	}
	f.ops++
	if f.faultAt <= 0 || f.ops < f.faultAt {
		return nil
	}
	if f.mode == ModeENOSPC {
		f.nospace = true
		if kind.allocates() {
			return ErrNoSpace
		}
		return nil
	}
	if f.ops > f.faultAt {
		// A crash mode already fired exactly once; nothing reaches here
		// because crashed short-circuits above, but guard anyway.
		return ErrCrashed
	}
	f.triggerCrash(kind, target, buf)
	return ErrCrashed
}

// triggerCrash settles every file's post-crash content per the armed mode.
// Callers hold f.mu.
func (f *FS) triggerCrash(kind opKind, target string, buf []byte) {
	f.crashed = true
	switch f.mode {
	case ModeTorn:
		if kind == opWrite && len(buf) > 0 {
			if mf := f.files[target]; mf != nil {
				mf.data = append(mf.data, buf[:len(buf)/2]...)
			}
		}
		// Lenient page cache: everything written so far persists.
	case ModePartialFsync:
		if kind == opSync {
			if mf := f.files[target]; mf != nil {
				mf.durable += (len(mf.data) - mf.durable) / 2
			}
		}
		f.dropUnsynced()
	case ModeBitFlip:
		t := target
		if _, ok := f.files[t]; !ok {
			t = f.lastWrite
		}
		if mf := f.files[t]; mf != nil && len(mf.data) > mf.durable {
			idx := mf.durable + (len(mf.data)-1-mf.durable)/2
			mf.data[idx] ^= 0x10
		}
		// Everything (including the flipped byte) persists.
	default: // ModeCrash
		f.dropUnsynced()
	}
}

func (f *FS) dropUnsynced() {
	for _, mf := range f.files {
		mf.data = mf.data[:mf.durable]
	}
}

func notExist(op, p string) error {
	return &fs.PathError{Op: op, Path: p, Err: fs.ErrNotExist}
}

func clean(p string) string { return path.Clean(strings.ReplaceAll(p, "\\", "/")) }

// MkdirAll creates a directory chain. Only counted as a mutating operation
// when it actually creates something.
func (f *FS) MkdirAll(p string, _ fs.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = clean(p)
	if f.dirs[p] {
		if f.crashed {
			return ErrCrashed
		}
		return nil
	}
	if err := f.step(opMkdir, p, nil); err != nil {
		return err
	}
	for d := p; d != "." && d != "/"; d = path.Dir(d) {
		f.dirs[d] = true
	}
	return nil
}

// Create opens p for writing, truncating existing content (which, like on a
// real filesystem, is destroyed immediately and unrecoverably).
func (f *FS) Create(p string, _ fs.FileMode) (minidb.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = clean(p)
	if err := f.step(opCreate, p, nil); err != nil {
		return nil, err
	}
	f.files[p] = &memFile{}
	return &FileHandle{fs: f, path: p}, nil
}

// OpenAppend opens p for appending, creating it empty if absent.
func (f *FS) OpenAppend(p string, _ fs.FileMode) (minidb.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = clean(p)
	if err := f.step(opCreate, p, nil); err != nil {
		return nil, err
	}
	if _, ok := f.files[p]; !ok {
		f.files[p] = &memFile{}
	}
	return &FileHandle{fs: f, path: p}, nil
}

// ReadFile returns a copy of p's current content.
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	mf, ok := f.files[clean(p)]
	if !ok {
		return nil, notExist("open", p)
	}
	out := make([]byte, len(mf.data))
	copy(out, mf.data)
	return out, nil
}

// Open returns a reader over p's current content (archive streaming path).
func (f *FS) Open(p string) (io.ReadCloser, error) {
	data, err := f.ReadFile(p)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(strings.NewReader(string(data))), nil
}

// Rename atomically moves oldp over newp.
func (f *FS) Rename(oldp, newp string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldp, newp = clean(oldp), clean(newp)
	if err := f.step(opRename, oldp, nil); err != nil {
		return err
	}
	mf, ok := f.files[oldp]
	if !ok {
		return notExist("rename", oldp)
	}
	f.files[newp] = mf
	delete(f.files, oldp)
	if f.lastWrite == oldp {
		f.lastWrite = newp
	}
	return nil
}

// Remove deletes p.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = clean(p)
	if err := f.step(opRemove, p, nil); err != nil {
		return err
	}
	if _, ok := f.files[p]; !ok {
		return notExist("remove", p)
	}
	delete(f.files, p)
	return nil
}

// FileHandle is a writable handle into the FS.
type FileHandle struct {
	fs     *FS
	path   string
	closed bool
}

// Write appends b to the file's volatile content.
func (h *FileHandle) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("fault: write to closed file %s", h.path)
	}
	if err := h.fs.step(opWrite, h.path, b); err != nil {
		return 0, err
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return 0, notExist("write", h.path)
	}
	mf.data = append(mf.data, b...)
	h.fs.lastWrite = h.path
	return len(b), nil
}

// Sync makes the file's full content durable.
func (h *FileHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("fault: sync of closed file %s", h.path)
	}
	if err := h.fs.step(opSync, h.path, nil); err != nil {
		return err
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return notExist("sync", h.path)
	}
	mf.durable = len(mf.data)
	return nil
}

// Truncate shrinks the file to size.
func (h *FileHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("fault: truncate of closed file %s", h.path)
	}
	if err := h.fs.step(opTruncate, h.path, nil); err != nil {
		return err
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return notExist("truncate", h.path)
	}
	if size < 0 || size > int64(len(mf.data)) {
		return fmt.Errorf("fault: truncate %s to %d (len %d)", h.path, size, len(mf.data))
	}
	mf.data = mf.data[:size]
	if mf.durable > int(size) {
		mf.durable = int(size)
	}
	return nil
}

// Size returns the file's current length.
func (h *FileHandle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.crashed {
		return 0, ErrCrashed
	}
	mf, ok := h.fs.files[h.path]
	if !ok {
		return 0, notExist("stat", h.path)
	}
	return int64(len(mf.data)), nil
}

// Close releases the handle. It never fails: buffered-data loss is modelled
// at the Write/Sync layer, and error paths must always be able to close.
func (h *FileHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

package fault

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"

	"repro/internal/minidb"
)

// mustCreate opens a file for writing, failing the test on error.
func mustCreate(t *testing.T, f *FS, p string) minidb.File {
	t.Helper()
	h, err := f.Create(p, 0o644)
	if err != nil {
		t.Fatalf("create %s: %v", p, err)
	}
	return h
}

func write(t *testing.T, h minidb.File, s string) {
	t.Helper()
	if _, err := h.Write([]byte(s)); err != nil {
		t.Fatalf("write: %v", err)
	}
}

func readBack(t *testing.T, f *FS, p string) []byte {
	t.Helper()
	data, err := f.ReadFile(p)
	if err != nil {
		t.Fatalf("read %s: %v", p, err)
	}
	return data
}

func TestCrashDropsUnsyncedOnly(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "d/x")
	write(t, h, "durable")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, h, "-volatile")
	f.SetFault(f.OpCount()+1, ModeCrash)
	if _, err := h.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Every operation fails until recovery.
	if _, err := f.ReadFile("d/x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: want ErrCrashed, got %v", err)
	}
	if err := f.Rename("d/x", "d/y"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: want ErrCrashed, got %v", err)
	}
	f.Recover()
	if got := readBack(t, f, "d/x"); string(got) != "durable" {
		t.Fatalf("after crash want synced prefix %q, got %q", "durable", got)
	}
}

func TestTornKeepsHalfOfCrashingWrite(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	write(t, h, "synced")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, h, "cached") // unsynced but persists in torn mode
	f.SetFault(f.OpCount()+1, ModeTorn)
	if _, err := h.Write([]byte("ABCDEF")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	f.Recover()
	if got := readBack(t, f, "x"); string(got) != "syncedcachedABC" {
		t.Fatalf("torn write: want %q, got %q", "syncedcachedABC", got)
	}
}

func TestPartialFsyncMakesHalfDurable(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	write(t, h, "1234")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	write(t, h, "abcdefgh") // 8 pending bytes
	f.SetFault(f.OpCount()+1, ModePartialFsync)
	if err := h.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	f.Recover()
	if got := readBack(t, f, "x"); string(got) != "1234abcd" {
		t.Fatalf("partial fsync: want half the pending bytes %q, got %q", "1234abcd", got)
	}
}

func TestBitFlipCorruptsOnlyUnsyncedRegion(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	synced := "ACKNOWLEDGED"
	write(t, h, synced)
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	pending := "pendingbytes"
	write(t, h, pending)
	f.SetFault(f.OpCount()+1, ModeBitFlip)
	if _, err := h.Write([]byte("zz")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	f.Recover()
	got := readBack(t, f, "x")
	want := synced + pending // the crashing write itself never lands
	if len(got) != len(want) {
		t.Fatalf("bitflip length: got %d want %d", len(got), len(want))
	}
	if string(got[:len(synced)]) != synced {
		t.Fatalf("bitflip touched acknowledged bytes: %q", got[:len(synced)])
	}
	diff := 0
	for i := len(synced); i < len(want); i++ {
		if got[i] != want[i] {
			diff++
			if got[i]^want[i] != 0x10 {
				t.Fatalf("byte %d flipped by %#x, want single-bit 0x10", i, got[i]^want[i])
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bitflip changed %d bytes, want exactly 1", diff)
	}
}

func TestENOSPCFailsAllocationsUntilCleared(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	write(t, h, "before")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	f.SetFault(f.OpCount()+1, ModeENOSPC)
	if _, err := h.Write([]byte("no-room")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	if _, err := f.Create("y", 0o644); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("create on full disk: want ErrNoSpace, got %v", err)
	}
	if err := f.MkdirAll("newdir", 0o755); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("mkdir on full disk: want ErrNoSpace, got %v", err)
	}
	// Non-allocating operations still work on a full disk.
	if err := h.Sync(); err != nil {
		t.Fatalf("sync on full disk: %v", err)
	}
	if err := h.Truncate(3); err != nil {
		t.Fatalf("truncate on full disk: %v", err)
	}
	if err := f.Rename("x", "z"); err != nil {
		t.Fatalf("rename on full disk: %v", err)
	}
	if f.Crashed() {
		t.Fatal("ENOSPC must not crash the filesystem")
	}
	f.ClearFault() // space freed
	h2, err := f.Create("y", 0o644)
	if err != nil {
		t.Fatalf("create after space freed: %v", err)
	}
	write(t, h2, "ok")
	if got := readBack(t, f, "z"); string(got) != "bef" {
		t.Fatalf("want truncated survivor %q, got %q", "bef", got)
	}
}

func TestNamespaceOpsAreAtomicAndDurable(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "a")
	write(t, h, "data")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after: the rename must survive (journalled metadata).
	f.SetFault(f.OpCount()+1, ModeCrash)
	_, _ = f.Create("c", 0o644)
	f.Recover()
	if _, err := f.ReadFile("a"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("old name still present after rename+crash: %v", err)
	}
	if got := readBack(t, f, "b"); string(got) != "data" {
		t.Fatalf("renamed file lost content: %q", got)
	}
	if _, err := f.ReadFile("c"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("crashed create must not leave a file: %v", err)
	}
}

func TestMkdirAllCountsOnlyCreation(t *testing.T) {
	f := NewFS()
	if err := f.MkdirAll("p/q/r", 0o755); err != nil {
		t.Fatal(err)
	}
	n := f.OpCount()
	if err := f.MkdirAll("p/q/r", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := f.MkdirAll("p/q", 0o755); err != nil {
		t.Fatal(err)
	}
	if f.OpCount() != n {
		t.Fatalf("re-mkdir of existing dirs was counted: %d -> %d", n, f.OpCount())
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	write(t, h, "old-content")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	h2 := mustCreate(t, f, "x")
	write(t, h2, "new")
	if got := readBack(t, f, "x"); string(got) != "new" {
		t.Fatalf("create must truncate: got %q", got)
	}
}

func TestOpCountIsDeterministic(t *testing.T) {
	script := func(f *FS) {
		_ = f.MkdirAll("d/e", 0o755)
		h, _ := f.Create("d/e/one", 0o644)
		_, _ = h.Write([]byte("abc"))
		_ = h.Sync()
		_ = h.Close()
		h2, _ := f.OpenAppend("d/e/one", 0o644)
		_, _ = h2.Write([]byte("def"))
		_ = h2.Sync()
		_ = f.Rename("d/e/one", "d/e/two")
		_ = f.Remove("d/e/two")
	}
	a, b := NewFS(), NewFS()
	script(a)
	script(b)
	if a.OpCount() != b.OpCount() || a.OpCount() == 0 {
		t.Fatalf("op counts differ: %d vs %d", a.OpCount(), b.OpCount())
	}
}

func TestTruncateBoundsAndDurableClamp(t *testing.T) {
	f := NewFS()
	h := mustCreate(t, f, "x")
	write(t, h, "0123456789")
	if err := h.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := h.Truncate(20); err == nil {
		t.Fatal("growing truncate must fail")
	}
	if err := h.Truncate(-1); err == nil {
		t.Fatal("negative truncate must fail")
	}
	if err := h.Truncate(4); err != nil {
		t.Fatal(err)
	}
	// The durable prefix may not exceed the new length: after a crash the
	// file shows at most the truncated content.
	f.SetFault(f.OpCount()+1, ModeCrash)
	_, _ = f.Create("other", 0o644)
	f.Recover()
	if got := readBack(t, f, "x"); !bytes.Equal(got, []byte("0123")) {
		t.Fatalf("after truncate+crash want %q, got %q", "0123", got)
	}
}

// Net is the network analogue of FS: a deterministic fault injector for
// the cluster's wire hops. It wraps net.Conn, net.Listener and dialing
// behind one op counter — every dial, read and write on the wrapped hop is
// a counted operation — and fires an armed fault at exactly the Nth one,
// in the shapes real networks fail: added latency, a partition that eats
// packets until it heals, a connection reset, reads slowed to a drip, a
// black hole that acknowledges writes into the void, and a write torn
// mid-frame.
//
// One Net instance models one hop (say, replica→database); a harness that
// wants to break two hops independently uses two instances. Injection
// decisions are serialized under one mutex, so the Nth-operation trigger
// is exact within a run even under -race. Unlike FS, concurrent
// connections make the op interleaving schedule-dependent across runs —
// the guarantee is "exactly one fault, at a counted op, of a chosen
// shape", which is what schedule enumeration needs.
//
// Blocking faults (partition, black hole) respect the three ways a caller
// can get out: the connection's deadline, closing the connection, and
// ClearFault (the partition heals). Nothing in this file can hang a
// deadline-disciplined caller forever.
package fault

import (
	"context"
	"net"
	"sync"
	"time"
)

// NetMode selects the shape of the injected network fault.
type NetMode int

const (
	// NetLatency: from the Nth op on, every counted op pays Delay before
	// proceeding. Models a congested or distant path.
	NetLatency NetMode = iota
	// NetPartition: from the Nth op on, the hop drops all packets — reads
	// and writes block until the connection's deadline, its Close, or
	// ClearFault (the partition heals); new dials time out. Models a
	// switch failure or iptables DROP.
	NetPartition
	// NetReset: the Nth op fails with a connection reset and that
	// connection is dead; other connections are untouched. Models a peer
	// crash or RST injection.
	NetReset
	// NetSlowDrip: from the Nth op on, reads deliver at most one byte per
	// Delay. The peer is alive but pathologically slow — the classic
	// slow-loris shape that exposes missing deadlines.
	NetSlowDrip
	// NetBlackHole: from the Nth op on, writes claim success but the bytes
	// vanish, and reads block like a partition. Models asymmetric loss:
	// the kernel buffers accept the frame, the wire never delivers it.
	NetBlackHole
	// NetDropHalf: the Nth write sends only the first half of its buffer,
	// then the connection resets — a frame torn mid-flight. The peer sees
	// a truncated frame and a dead connection.
	NetDropHalf
)

// String names the mode.
func (m NetMode) String() string {
	switch m {
	case NetLatency:
		return "latency"
	case NetPartition:
		return "partition"
	case NetReset:
		return "reset"
	case NetSlowDrip:
		return "slowdrip"
	case NetBlackHole:
		return "blackhole"
	case NetDropHalf:
		return "drophalf"
	}
	return "netmode(?)"
}

// netOpError builds the error an injected fault surfaces: a *net.OpError
// so callers' errors.As(&net.OpError) discrimination (dial vs established)
// keeps working on injected faults exactly as on real ones.
func netOpError(op string, err error) error {
	return &net.OpError{Op: op, Net: "tcp", Err: err}
}

// faultErr is the terminal error of reset-style faults.
type faultErr string

func (e faultErr) Error() string { return string(e) }

// ErrInjectedReset is the cause inside the *net.OpError returned by
// NetReset and NetDropHalf faults.
const ErrInjectedReset = faultErr("fault: injected connection reset")

// timeoutErr satisfies net.Error with Timeout()==true, as a blocked
// partition surfacing at a deadline must.
type timeoutErr string

func (e timeoutErr) Error() string   { return string(e) }
func (e timeoutErr) Timeout() bool   { return true }
func (e timeoutErr) Temporary() bool { return true }

// ErrInjectedTimeout is the cause carried by deadline expiries inside
// injected partitions and black holes.
const ErrInjectedTimeout = timeoutErr("fault: injected i/o timeout")

// Net injects faults on one network hop.
type Net struct {
	// Delay is the injected latency unit: the per-op pause of NetLatency
	// and the per-byte pause of NetSlowDrip. Set before arming; default
	// 2ms.
	Delay time.Duration

	mu      sync.Mutex
	ops     int
	faultAt int // 0 = disarmed (ops still count)
	mode    NetMode
	active  bool          // a from-Nth-op-on mode has fired and not healed
	oneshot bool          // a single-op mode has fired (fires at most once)
	heal    chan struct{} // closed by ClearFault to release blocked ops
}

// NewNet returns a disarmed injector.
func NewNet() *Net {
	return &Net{Delay: 2 * time.Millisecond, heal: make(chan struct{})}
}

// SetFault arms the injector: the fault fires at the nth counted network
// operation (absolute, compared against OpCount). Re-arming replaces any
// previous fault and un-heals the hop.
func (n *Net) SetFault(at int, mode NetMode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultAt = at
	n.mode = mode
	n.active = false
	n.oneshot = false
	n.heal = make(chan struct{})
}

// ClearFault heals the hop: blocked partition/black-hole ops resume,
// future ops proceed cleanly. Connections already reset stay dead, as
// they would after a real RST.
func (n *Net) ClearFault() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faultAt = 0
	if n.active {
		n.active = false
		close(n.heal)
		n.heal = make(chan struct{})
	}
}

// OpCount returns the number of counted network operations so far.
func (n *Net) OpCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ops
}

// Faulted reports whether an armed fault has fired and not been cleared.
func (n *Net) Faulted() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.active || n.oneshot
}

// decision is what one counted op must do.
type decision struct {
	mode    NetMode
	fire    bool          // apply the mode's behaviour to this op
	heal    chan struct{} // the heal channel in effect (for blocking modes)
	latency time.Duration
}

// step counts one op and decides its fate. Single-op modes (reset,
// drophalf) fire exactly once, at the armed op; persistent modes stay
// active for every later op until ClearFault.
func (n *Net) step() decision {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.ops++
	d := decision{mode: n.mode, heal: n.heal, latency: n.Delay}
	if n.active {
		d.fire = true
		return d
	}
	if n.faultAt <= 0 || n.ops < n.faultAt {
		return d
	}
	switch n.mode {
	case NetReset, NetDropHalf:
		if n.ops == n.faultAt && !n.oneshot {
			n.oneshot = true
			d.fire = true
		}
	default:
		n.active = true
		d.fire = true
	}
	return d
}

// Dial establishes a connection through the injector (dbnet's dial seam).
// A partitioned or black-holed hop makes dials hang until timeout or heal;
// the returned error wears Op "dial", so mutation-retry policies treat it
// exactly like a real unreachable host.
func (n *Net) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	return n.DialContext(ctx, network, addr)
}

// DialContext is the http.Transport-shaped dial seam.
func (n *Net) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	d := n.step()
	if d.fire {
		switch d.mode {
		case NetLatency:
			select {
			case <-time.After(d.latency):
			case <-ctx.Done():
				return nil, netOpError("dial", ErrInjectedTimeout)
			}
		case NetReset, NetDropHalf:
			return nil, netOpError("dial", ErrInjectedReset)
		case NetPartition, NetBlackHole:
			select {
			case <-d.heal:
				// healed: fall through to a real dial
			case <-ctx.Done():
				return nil, netOpError("dial", ErrInjectedTimeout)
			}
		case NetSlowDrip:
			// connection establishment is unaffected; the drip hits reads
		}
	}
	var dialer net.Dialer
	c, err := dialer.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	return n.wrap(c), nil
}

// Listener wraps ln so every accepted connection runs through the
// injector (dbnet's server-side seam).
func (n *Net) Listener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, net: n}
}

type faultListener struct {
	net.Listener
	net *Net
}

func (l *faultListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.net.wrap(c), nil
}

func (n *Net) wrap(c net.Conn) net.Conn {
	return &faultConn{Conn: c, net: n, closed: make(chan struct{})}
}

// faultConn is one wrapped connection. Deadlines are mirrored locally so
// blocking faults can honour them without kernel help; Close unblocks any
// op waiting out a partition (net/http cancels requests that way).
type faultConn struct {
	net.Conn
	net *Net

	mu        sync.Mutex
	readDL    time.Time
	writeDL   time.Time
	dead      bool // reset by an injected fault
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *faultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *faultConn) deadline(read bool) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if read {
		return c.readDL
	}
	return c.writeDL
}

func (c *faultConn) kill() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.Conn.Close()
}

func (c *faultConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// block waits out a partition/black hole: until heal, deadline, or Close.
func (c *faultConn) block(op string, heal chan struct{}, read bool) error {
	var timer <-chan time.Time
	if dl := c.deadline(read); !dl.IsZero() {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-heal:
		return nil
	case <-timer:
		return netOpError(op, ErrInjectedTimeout)
	case <-c.closed:
		return netOpError(op, net.ErrClosed)
	}
}

func (c *faultConn) Read(b []byte) (int, error) {
	if c.isDead() {
		return 0, netOpError("read", ErrInjectedReset)
	}
	d := c.net.step()
	if d.fire {
		switch d.mode {
		case NetLatency:
			time.Sleep(d.latency)
		case NetReset, NetDropHalf:
			c.kill()
			return 0, netOpError("read", ErrInjectedReset)
		case NetPartition, NetBlackHole:
			if err := c.block("read", d.heal, true); err != nil {
				return 0, err
			}
		case NetSlowDrip:
			time.Sleep(d.latency)
			if len(b) > 1 {
				b = b[:1]
			}
		}
	}
	return c.Conn.Read(b)
}

func (c *faultConn) Write(b []byte) (int, error) {
	if c.isDead() {
		return 0, netOpError("write", ErrInjectedReset)
	}
	d := c.net.step()
	if d.fire {
		switch d.mode {
		case NetLatency:
			time.Sleep(d.latency)
		case NetReset:
			c.kill()
			return 0, netOpError("write", ErrInjectedReset)
		case NetDropHalf:
			half := len(b) / 2
			n, _ := c.Conn.Write(b[:half])
			c.kill()
			return n, netOpError("write", ErrInjectedReset)
		case NetPartition:
			if err := c.block("write", d.heal, false); err != nil {
				return 0, err
			}
		case NetBlackHole:
			// The kernel "accepted" the bytes; the wire lost them.
			return len(b), nil
		case NetSlowDrip:
			// The drip throttles reads; writes pass.
		}
	}
	return c.Conn.Write(b)
}

package fault

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer accepts connections on ln and echoes whatever it reads.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
}

func newEchoPair(t *testing.T, n *Net) (net.Conn, func()) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	echoServer(t, raw)
	c, err := n.Dial("tcp", raw.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c, func() { c.Close(); raw.Close() }
}

func TestNetOpCounting(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	if got := n.OpCount(); got != 1 { // the dial
		t.Fatalf("OpCount after dial = %d, want 1", got)
	}
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if got := n.OpCount(); got < 3 {
		t.Fatalf("OpCount after write+read = %d, want >= 3", got)
	}
}

func TestNetReset(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	n.SetFault(n.OpCount()+1, NetReset)
	_, err := c.Write([]byte("doomed"))
	if err == nil {
		t.Fatal("write after armed reset succeeded")
	}
	var op *net.OpError
	if !errors.As(err, &op) {
		t.Fatalf("reset error is %T, want *net.OpError", err)
	}
	if !n.Faulted() {
		t.Fatal("Faulted() false after reset fired")
	}
	// The connection is dead; others are fine.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write on reset conn succeeded")
	}
	c2, err := n.Dial("tcp", c.RemoteAddr().String(), time.Second)
	if err != nil {
		t.Fatalf("new dial after one-shot reset: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("write on fresh conn after one-shot reset: %v", err)
	}
}

func TestNetPartitionDeadlineAndHeal(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	// Partition: a read with a deadline surfaces a timeout, promptly.
	n.SetFault(n.OpCount()+1, NetPartition)
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(buf)
	if err == nil {
		t.Fatal("read during partition succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partition read error = %v, want net.Error timeout", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("partition read blocked %v, want ~50ms", el)
	}

	// Dials are also cut off, with Op "dial".
	_, err = n.Dial("tcp", c.RemoteAddr().String(), 30*time.Millisecond)
	var op *net.OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		t.Fatalf("partition dial error = %v, want *net.OpError op=dial", err)
	}

	// Heal: blocked ops resume. Start a read with a far deadline, heal
	// mid-block, see the echo arrive.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	done := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("b")) // blocks on partition
		if err != nil {
			done <- err
			return
		}
		_, err = io.ReadFull(c, buf)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	n.ClearFault()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ops still blocked after ClearFault")
	}
}

func TestNetPartitionCloseUnblocks(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	n.SetFault(n.OpCount()+1, NetPartition)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := c.Read(buf) // no deadline: would block forever
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock partitioned read")
	}
}

func TestNetBlackHole(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	n.SetFault(n.OpCount()+1, NetBlackHole)
	// Writes "succeed"...
	if _, err := c.Write([]byte("gone")); err != nil {
		t.Fatalf("black-hole write errored: %v", err)
	}
	// ...but nothing comes back: the read times out.
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read got data through a black hole")
	}
}

func TestNetSlowDrip(t *testing.T) {
	n := NewNet()
	n.Delay = 5 * time.Millisecond
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	if _, err := c.Write([]byte("abcd")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	n.SetFault(n.OpCount()+1, NetSlowDrip)
	if _, err := c.Write([]byte("wxyz")); err != nil {
		t.Fatalf("slow-drip write errored: %v", err)
	}
	start := time.Now()
	got := make([]byte, 0, 3)
	one := make([]byte, 8)
	for len(got) < 3 {
		nr, err := c.Read(one)
		if err != nil {
			t.Fatal(err)
		}
		if nr > 1 {
			t.Fatalf("slow-drip read returned %d bytes, want <= 1", nr)
		}
		got = append(got, one[:nr]...)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("3 dripped bytes arrived in %v, want >= 10ms", el)
	}
	if !strings.HasPrefix("wxyz", string(got)) {
		t.Fatalf("dripped bytes = %q", got)
	}
}

func TestNetDropHalf(t *testing.T) {
	n := NewNet()
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	n.SetFault(n.OpCount()+1, NetDropHalf)
	nw, err := c.Write([]byte("0123456789"))
	if err == nil {
		t.Fatal("drop-half write reported success")
	}
	if nw != 5 {
		t.Fatalf("drop-half wrote %d bytes, want 5", nw)
	}
	// The connection died with the torn frame.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after torn frame succeeded")
	}
}

func TestNetLatency(t *testing.T) {
	n := NewNet()
	n.Delay = 20 * time.Millisecond
	c, cleanup := newEchoPair(t, n)
	defer cleanup()

	n.SetFault(n.OpCount()+1, NetLatency)
	start := time.Now()
	if _, err := c.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("latency round trip took %v, want >= 40ms (2 ops x 20ms)", el)
	}
	n.ClearFault()
	start = time.Now()
	if _, err := c.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 15*time.Millisecond {
		t.Fatalf("post-heal round trip took %v, want fast", el)
	}
}

func TestNetListenerSeam(t *testing.T) {
	n := NewNet()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	ln := n.Listener(raw)
	echoServer(t, ln)

	c, err := net.Dial("tcp", ln.Addr().String()) // plain client: server side is wrapped
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("m")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if n.OpCount() < 2 { // server-side read+write counted
		t.Fatalf("OpCount = %d, want >= 2 (server-side ops)", n.OpCount())
	}

	// Partition the server side: the client's read stalls to its deadline.
	n.SetFault(n.OpCount()+1, NetPartition)
	c.SetDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := c.Write([]byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read through server-side partition succeeded")
	}
}

// Package fits implements a FITS-style container format: headers made of
// 80-byte keyword cards grouped into 2880-byte blocks, followed by a binary
// data unit, with any number of header-data units (HDUs) per file.
//
// RHESSI telemetry reaches HEDC "formatted as Flexible Image Transport
// System (FITS) files and compressed using gnu-zip" (§2.1). This package
// provides the same structure — enough that the rest of the system
// exercises real format parsing, format evolution, and metadata extraction
// — without reimplementing the full FITS standard.
package fits

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

const (
	blockSize = 2880
	cardSize  = 80
)

// Card is one 80-byte header record: a keyword, a value and a comment.
type Card struct {
	Key     string
	Value   string // raw value text; strings carry surrounding quotes
	Comment string
}

// HDU is a header-data unit.
type HDU struct {
	Cards []Card
	Data  []byte
}

// File is an ordered sequence of HDUs.
type File struct {
	HDUs []*HDU
}

// NewHDU builds an HDU with the mandatory cards for a byte data unit.
func NewHDU(data []byte) *HDU {
	h := &HDU{Data: data}
	h.SetBool("SIMPLE", true, "conforms to the subset of FITS used by HEDC")
	h.SetInt("BITPIX", 8, "8-bit bytes")
	h.SetInt("NAXIS", 1, "one data axis")
	h.SetInt("NAXIS1", int64(len(data)), "data length in bytes")
	return h
}

// Get returns the raw value text for key.
func (h *HDU) Get(key string) (string, bool) {
	for _, c := range h.Cards {
		if c.Key == key {
			return c.Value, true
		}
	}
	return "", false
}

// GetInt parses the value of key as an integer.
func (h *HDU) GetInt(key string) (int64, bool) {
	v, ok := h.Get(key)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// GetFloat parses the value of key as a float.
func (h *HDU) GetFloat(key string) (float64, bool) {
	v, ok := h.Get(key)
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// GetString parses the value of key as a quoted FITS string.
func (h *HDU) GetString(key string) (string, bool) {
	v, ok := h.Get(key)
	if !ok {
		return "", false
	}
	v = strings.TrimSpace(v)
	if len(v) >= 2 && v[0] == '\'' && v[len(v)-1] == '\'' {
		// FITS escapes single quotes by doubling them.
		return strings.ReplaceAll(v[1:len(v)-1], "''", "'"), true
	}
	return v, true
}

// set replaces or appends a card.
func (h *HDU) set(key, value, comment string) {
	for i, c := range h.Cards {
		if c.Key == key {
			h.Cards[i].Value = value
			h.Cards[i].Comment = comment
			return
		}
	}
	h.Cards = append(h.Cards, Card{Key: key, Value: value, Comment: comment})
}

// SetInt writes an integer-valued card.
func (h *HDU) SetInt(key string, v int64, comment string) {
	h.set(key, strconv.FormatInt(v, 10), comment)
}

// SetFloat writes a float-valued card.
func (h *HDU) SetFloat(key string, v float64, comment string) {
	h.set(key, strconv.FormatFloat(v, 'G', -1, 64), comment)
}

// SetString writes a quoted string card.
func (h *HDU) SetString(key string, v, comment string) {
	h.set(key, "'"+strings.ReplaceAll(v, "'", "''")+"'", comment)
}

// SetBool writes a logical card (T/F).
func (h *HDU) SetBool(key string, v bool, comment string) {
	if v {
		h.set(key, "T", comment)
	} else {
		h.set(key, "F", comment)
	}
}

// formatCard renders an 80-byte card image.
func formatCard(c Card) []byte {
	out := make([]byte, cardSize)
	for i := range out {
		out[i] = ' '
	}
	key := c.Key
	if len(key) > 8 {
		key = key[:8]
	}
	copy(out, key)
	rest := "= " + c.Value
	if c.Comment != "" {
		rest += " / " + c.Comment
	}
	if len(rest) > cardSize-8 {
		rest = rest[:cardSize-8]
	}
	copy(out[8:], rest)
	return out
}

// parseCard decodes one 80-byte card image; blank and END cards return
// ok=false.
func parseCard(img []byte) (Card, bool) {
	key := strings.TrimRight(string(img[:8]), " ")
	if key == "" || key == "END" {
		return Card{}, false
	}
	rest := string(img[8:])
	if !strings.HasPrefix(rest, "= ") {
		return Card{Key: key, Comment: strings.TrimSpace(rest)}, true
	}
	rest = rest[2:]
	var value, comment string
	if strings.HasPrefix(strings.TrimLeft(rest, " "), "'") {
		// Quoted string: find the closing quote, honouring '' escapes.
		trimmed := strings.TrimLeft(rest, " ")
		end := -1
		for i := 1; i < len(trimmed); i++ {
			if trimmed[i] != '\'' {
				continue
			}
			if i+1 < len(trimmed) && trimmed[i+1] == '\'' {
				i++ // escaped quote
				continue
			}
			end = i
			break
		}
		if end < 0 {
			value = strings.TrimRight(trimmed, " ")
		} else {
			value = trimmed[:end+1]
			tail := trimmed[end+1:]
			if idx := strings.Index(tail, "/"); idx >= 0 {
				comment = strings.TrimSpace(tail[idx+1:])
			}
		}
	} else {
		if idx := strings.Index(rest, "/"); idx >= 0 {
			value = strings.TrimSpace(rest[:idx])
			comment = strings.TrimSpace(rest[idx+1:])
		} else {
			value = strings.TrimSpace(rest)
		}
	}
	return Card{Key: key, Value: value, Comment: comment}, true
}

// Encode writes the file: each HDU's header cards (END-terminated, padded to
// a block boundary) followed by its data (padded to a block boundary).
func (f *File) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, h := range f.HDUs {
		// The data length card must be accurate; rewrite it defensively.
		h.SetInt("NAXIS1", int64(len(h.Data)), "data length in bytes")
		written := 0
		for _, c := range h.Cards {
			if _, err := bw.Write(formatCard(c)); err != nil {
				return err
			}
			written += cardSize
		}
		endCard := Card{Key: "END"}
		img := make([]byte, cardSize)
		for i := range img {
			img[i] = ' '
		}
		copy(img, endCard.Key)
		if _, err := bw.Write(img); err != nil {
			return err
		}
		written += cardSize
		if err := pad(bw, written); err != nil {
			return err
		}
		if _, err := bw.Write(h.Data); err != nil {
			return err
		}
		if err := pad(bw, len(h.Data)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func pad(w io.Writer, written int) error {
	rem := written % blockSize
	if rem == 0 {
		return nil
	}
	_, err := w.Write(make([]byte, blockSize-rem))
	return err
}

// Decode reads a complete file.
func Decode(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	f := &File{}
	for {
		h, err := decodeHDU(br)
		if err == io.EOF {
			if len(f.HDUs) == 0 {
				return nil, fmt.Errorf("fits: empty file")
			}
			return f, nil
		}
		if err != nil {
			return nil, err
		}
		f.HDUs = append(f.HDUs, h)
	}
}

func decodeHDU(br *bufio.Reader) (*HDU, error) {
	h := &HDU{}
	// Header: read blocks of cards until END.
	sawEnd := false
	block := make([]byte, blockSize)
	for !sawEnd {
		if _, err := io.ReadFull(br, block); err != nil {
			if err == io.ErrUnexpectedEOF && len(h.Cards) == 0 {
				return nil, io.EOF
			}
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("fits: truncated header: %w", err)
		}
		for off := 0; off < blockSize; off += cardSize {
			img := block[off : off+cardSize]
			key := strings.TrimRight(string(img[:8]), " ")
			if key == "END" {
				sawEnd = true
				break
			}
			if c, ok := parseCard(img); ok {
				h.Cards = append(h.Cards, c)
			}
		}
	}
	n, ok := h.GetInt("NAXIS1")
	if !ok {
		return nil, fmt.Errorf("fits: header missing NAXIS1")
	}
	if n < 0 || n > 1<<33 {
		return nil, fmt.Errorf("fits: implausible data length %d", n)
	}
	h.Data = make([]byte, n)
	if _, err := io.ReadFull(br, h.Data); err != nil {
		return nil, fmt.Errorf("fits: truncated data unit: %w", err)
	}
	// Skip data padding.
	if rem := int(n) % blockSize; rem != 0 {
		if _, err := io.CopyN(io.Discard, br, int64(blockSize-rem)); err != nil {
			return nil, fmt.Errorf("fits: truncated data padding: %w", err)
		}
	}
	return h, nil
}

// WriteFileGz encodes f gzip-compressed to path, as raw-data units arrive at
// HEDC (§2.1).
func (f *File) WriteFileGz(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(out)
	if err := f.Encode(zw); err != nil {
		out.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadFileGz reads a gzip-compressed file written by WriteFileGz.
func ReadFileGz(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	zr, err := gzip.NewReader(in)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return Decode(zr)
}

package fits

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCardFormatParseRoundTrip(t *testing.T) {
	cases := []Card{
		{Key: "SIMPLE", Value: "T", Comment: "conforms"},
		{Key: "BITPIX", Value: "8"},
		{Key: "OBSERVER", Value: "'RHESSI'", Comment: "spacecraft"},
		{Key: "QUOTED", Value: "'it''s'", Comment: "escaped quote"},
		{Key: "EXPOSURE", Value: "12.5"},
	}
	for _, c := range cases {
		img := formatCard(c)
		if len(img) != 80 {
			t.Fatalf("card image %d bytes", len(img))
		}
		got, ok := parseCard(img)
		if !ok {
			t.Fatalf("parseCard(%q) failed", img)
		}
		if got.Key != c.Key || got.Value != c.Value {
			t.Fatalf("round trip %+v -> %+v", c, got)
		}
	}
}

func TestHDUTypedAccessors(t *testing.T) {
	h := NewHDU([]byte("hello"))
	h.SetString("UNIT", "raw-42", "unit name")
	h.SetFloat("TSTART", 12.5, "")
	h.SetBool("CALIB", false, "")

	if v, ok := h.GetInt("NAXIS1"); !ok || v != 5 {
		t.Fatalf("NAXIS1 = %v %v", v, ok)
	}
	if v, ok := h.GetString("UNIT"); !ok || v != "raw-42" {
		t.Fatalf("UNIT = %q %v", v, ok)
	}
	if v, ok := h.GetFloat("TSTART"); !ok || v != 12.5 {
		t.Fatalf("TSTART = %v %v", v, ok)
	}
	if v, ok := h.Get("CALIB"); !ok || v != "F" {
		t.Fatalf("CALIB = %q %v", v, ok)
	}
	if _, ok := h.Get("MISSING"); ok {
		t.Fatal("missing key found")
	}
	// Overwrite keeps one card.
	h.SetString("UNIT", "raw-43", "")
	count := 0
	for _, c := range h.Cards {
		if c.Key == "UNIT" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("UNIT card count = %d", count)
	}
}

func TestStringEscaping(t *testing.T) {
	h := NewHDU(nil)
	h.SetString("NAME", "o'brien", "")
	got, ok := h.GetString("NAME")
	if !ok || got != "o'brien" {
		t.Fatalf("GetString = %q %v", got, ok)
	}
}

func TestEncodeDecodeSingleHDU(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 5000) // crosses a block boundary
	f := &File{HDUs: []*HDU{NewHDU(data)}}
	f.HDUs[0].SetString("EXTNAME", "RAW", "")

	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len()%2880 != 0 {
		t.Fatalf("encoded length %d not block aligned", buf.Len())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.HDUs) != 1 {
		t.Fatalf("HDUs = %d", len(got.HDUs))
	}
	if !bytes.Equal(got.HDUs[0].Data, data) {
		t.Fatal("data corrupted")
	}
	if name, _ := got.HDUs[0].GetString("EXTNAME"); name != "RAW" {
		t.Fatalf("EXTNAME = %q", name)
	}
}

func TestEncodeDecodeMultipleHDUs(t *testing.T) {
	f := &File{}
	for i := 0; i < 4; i++ {
		h := NewHDU(bytes.Repeat([]byte{byte(i)}, i*1000))
		h.SetInt("SEQ", int64(i), "")
		f.HDUs = append(f.HDUs, h)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.HDUs) != 4 {
		t.Fatalf("HDUs = %d", len(got.HDUs))
	}
	for i, h := range got.HDUs {
		if seq, _ := h.GetInt("SEQ"); seq != int64(i) {
			t.Fatalf("HDU %d SEQ = %d", i, seq)
		}
		if len(h.Data) != i*1000 {
			t.Fatalf("HDU %d data len = %d", i, len(h.Data))
		}
	}
}

func TestDecodeEmptyAndTruncated(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	f := &File{HDUs: []*HDU{NewHDU(make([]byte, 4000))}}
	var buf bytes.Buffer
	f.Encode(&buf)
	trunc := buf.Bytes()[:buf.Len()-2880]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestGzipFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.fits.gz")
	f := &File{HDUs: []*HDU{NewHDU([]byte("payload"))}}
	if err := f.WriteFileGz(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileGz(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.HDUs[0].Data) != "payload" {
		t.Fatalf("data = %q", got.HDUs[0].Data)
	}
}

func TestPhotonTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	photons := make([]Photon, 1000)
	for i := range photons {
		photons[i] = Photon{
			Time:     float64(i) * 0.01,
			Energy:   3 + rng.Float64()*19997, // 3 keV .. 20 MeV
			Detector: uint8(rng.Intn(9)),
			Segment:  uint8(rng.Intn(2)),
		}
	}
	h := EncodePhotons(photons)
	if n, _ := h.GetInt("NPHOTON"); n != 1000 {
		t.Fatalf("NPHOTON = %d", n)
	}
	if ts, _ := h.GetFloat("TSTART"); ts != 0 {
		t.Fatalf("TSTART = %v", ts)
	}
	got, err := DecodePhotons(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(photons) {
		t.Fatalf("decoded %d photons", len(got))
	}
	for i := range got {
		if got[i] != photons[i] {
			t.Fatalf("photon %d: %+v != %+v", i, got[i], photons[i])
		}
	}
}

func TestPhotonTableThroughFileEncoding(t *testing.T) {
	photons := []Photon{{Time: 1, Energy: 25, Detector: 3, Segment: 1}}
	f := &File{HDUs: []*HDU{EncodePhotons(photons)}}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodePhotons(got.HDUs[0])
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0] != photons[0] {
		t.Fatalf("photon = %+v", decoded[0])
	}
}

func TestDecodePhotonsRejectsWrongHDU(t *testing.T) {
	h := NewHDU([]byte("not photons"))
	if _, err := DecodePhotons(h); err == nil {
		t.Fatal("non-photon HDU accepted")
	}
	// Corrupt record count.
	h2 := EncodePhotons([]Photon{{Time: 1, Energy: 2}})
	h2.SetInt("NPHOTON", 99, "")
	if _, err := DecodePhotons(h2); err == nil {
		t.Fatal("inconsistent NPHOTON accepted")
	}
}

// Property: file encode/decode preserves every HDU's data and cards.
func TestQuickFileRoundTrip(t *testing.T) {
	check := func(payloads [][]byte, names []string) bool {
		if len(payloads) == 0 {
			return true
		}
		f := &File{}
		for i, p := range payloads {
			h := NewHDU(p)
			if i < len(names) {
				// FITS cards cannot carry arbitrary bytes; sanitize to a
				// printable subset as real headers do.
				name := ""
				for _, r := range names[i] {
					if r >= 32 && r < 127 && r != '\'' {
						name += string(r)
					}
				}
				if len(name) > 40 {
					name = name[:40]
				}
				h.SetString("EXTNAME", name, "")
			}
			f.HDUs = append(f.HDUs, h)
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(got.HDUs) != len(f.HDUs) {
			return false
		}
		for i := range got.HDUs {
			if !bytes.Equal(got.HDUs[i].Data, f.HDUs[i].Data) {
				return false
			}
			wantName, wok := f.HDUs[i].GetString("EXTNAME")
			gotName, gok := got.HDUs[i].GetString("EXTNAME")
			if wok != gok || wantName != gotName {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: photon tables round-trip exactly.
func TestQuickPhotonRoundTrip(t *testing.T) {
	check := func(times []float64, energies []float64, dets []uint8) bool {
		n := len(times)
		if len(energies) < n {
			n = len(energies)
		}
		photons := make([]Photon, n)
		for i := range photons {
			d := uint8(0)
			if i < len(dets) {
				d = dets[i] % 9
			}
			photons[i] = Photon{Time: times[i], Energy: energies[i], Detector: d, Segment: d % 2}
		}
		got, err := DecodePhotons(EncodePhotons(photons))
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			w := photons[i]
			// NaN != NaN; compare bit patterns via re-encode instead.
			if got[i].Detector != w.Detector || got[i].Segment != w.Segment {
				return false
			}
			if got[i].Time != w.Time && !(got[i].Time != got[i].Time && w.Time != w.Time) {
				return false
			}
			if got[i].Energy != w.Energy && !(got[i].Energy != got[i].Energy && w.Energy != w.Energy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package fits

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Photon is one detector record of the RHESSI raw data: "a list of photon
// impacts on the detectors, with an energy and a time tag attached to each
// record" (§3.4), plus which of the nine germanium detectors (and which
// segment) registered it.
type Photon struct {
	Time     float64 // seconds since mission epoch
	Energy   float64 // keV (3 keV soft X-ray .. 20 MeV gamma)
	Detector uint8   // 0..8: the nine rotating modulation collimators
	Segment  uint8   // 0 front, 1 rear
}

const photonRecordSize = 18 // 8 time + 8 energy + 1 detector + 1 segment

// EncodePhotons builds an HDU holding a binary photon-event table.
func EncodePhotons(photons []Photon) *HDU {
	data := make([]byte, len(photons)*photonRecordSize)
	for i, p := range photons {
		off := i * photonRecordSize
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(p.Time))
		binary.LittleEndian.PutUint64(data[off+8:], math.Float64bits(p.Energy))
		data[off+16] = p.Detector
		data[off+17] = p.Segment
	}
	h := NewHDU(data)
	h.SetString("EXTNAME", "PHOTONS", "binary photon-event table")
	h.SetInt("NPHOTON", int64(len(photons)), "photon record count")
	h.SetInt("RECSIZE", photonRecordSize, "bytes per record")
	if len(photons) > 0 {
		h.SetFloat("TSTART", photons[0].Time, "first photon time [s]")
		h.SetFloat("TSTOP", photons[len(photons)-1].Time, "last photon time [s]")
	}
	return h
}

// DecodePhotons parses a photon-event table HDU.
func DecodePhotons(h *HDU) ([]Photon, error) {
	if name, _ := h.GetString("EXTNAME"); name != "PHOTONS" {
		return nil, fmt.Errorf("fits: HDU %q is not a photon table", name)
	}
	rec, ok := h.GetInt("RECSIZE")
	if !ok || rec != photonRecordSize {
		return nil, fmt.Errorf("fits: unsupported photon record size %d", rec)
	}
	if len(h.Data)%photonRecordSize != 0 {
		return nil, fmt.Errorf("fits: photon table length %d not a record multiple", len(h.Data))
	}
	n := len(h.Data) / photonRecordSize
	if want, ok := h.GetInt("NPHOTON"); ok && want != int64(n) {
		return nil, fmt.Errorf("fits: NPHOTON %d disagrees with data length (%d records)", want, n)
	}
	photons := make([]Photon, n)
	for i := range photons {
		off := i * photonRecordSize
		photons[i] = Photon{
			Time:     math.Float64frombits(binary.LittleEndian.Uint64(h.Data[off:])),
			Energy:   math.Float64frombits(binary.LittleEndian.Uint64(h.Data[off+8:])),
			Detector: h.Data[off+16],
			Segment:  h.Data[off+17],
		}
	}
	return photons, nil
}

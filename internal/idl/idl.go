// Package idl simulates the native IDL interpreter servers that execute
// HEDC's analysis routines. The real ones (IDL 5.4 running the Solar
// Software Tree) "provide only rudimentary job control, data management,
// and error recovery functionality" (§2.3) — which is precisely the
// contract simulated here: a server runs one routine at a time, rejects
// concurrent invocations, can hang or crash, and forgets everything on
// restart. The Processing Logic component layers real job control, error
// handling (timeout, resource drain) and restart policies on top (§5.1).
//
// Routines exchange dynamic structures (string-keyed argument maps) rather
// than typed interfaces, mirroring how the PL avoids baking processing-
// environment specifics into its framework (§5.1).
package idl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a server's lifecycle state.
type State int32

// Server states.
const (
	Stopped State = iota
	Idle
	Busy
	Crashed
)

// String names the state.
func (s State) String() string {
	switch s {
	case Stopped:
		return "stopped"
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Crashed:
		return "crashed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Errors reported by servers.
var (
	ErrStopped        = errors.New("idl: server not running")
	ErrCrashed        = errors.New("idl: interpreter crashed")
	ErrBusy           = errors.New("idl: interpreter busy (single-threaded)")
	ErrUnknownRoutine = errors.New("idl: unknown routine")
)

// Args is the dynamic structure exchanged with routines.
type Args map[string]interface{}

// Routine is one registered analysis procedure. It must honour ctx
// cancellation for the PL's timeout handling to work.
type Routine func(ctx context.Context, args Args) (Args, error)

// Stats counts server activity.
type Stats struct {
	Invocations int64
	Failures    int64
	Crashes     int64
	Restarts    int64
	// BusySeconds really is seconds: it accumulates time.Since(...).Seconds()
	// per invocation (unlike pl.Manager, which counts milliseconds
	// internally and converts once at the stats boundary).
	BusySeconds float64
}

// Server is one simulated interpreter.
type Server struct {
	id string

	mu       sync.Mutex
	state    State
	routines map[string]Routine

	// Fault plan, armed by tests and failure-injection benchmarks.
	crashNext int32        // atomic: crash on next invocation
	hangNext  atomic.Int64 // nanoseconds to hang on next invocation

	stats   Stats
	statsMu sync.Mutex
}

// NewServer creates a stopped interpreter with the given id.
func NewServer(id string) *Server {
	return &Server{id: id, state: Stopped, routines: make(map[string]Routine)}
}

// ID returns the server identifier.
func (s *Server) ID() string { return s.id }

// Register installs a routine (allowed in any state — on the real system
// this is the SSW tree on disk, not interpreter state).
func (s *Server) Register(name string, r Routine) {
	s.mu.Lock()
	s.routines[name] = r
	s.mu.Unlock()
}

// Routines lists registered routine names.
func (s *Server) Routines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.routines))
	for name := range s.routines {
		out = append(out, name)
	}
	return out
}

// Start boots the interpreter.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case Stopped, Crashed:
		s.state = Idle
		return nil
	default:
		return fmt.Errorf("idl: start of %s server", s.state)
	}
}

// Stop halts an idle interpreter. Stopping a busy one fails — kill it with
// Restart instead, as the PL's resource-drain handling does.
func (s *Server) Stop() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == Busy {
		return ErrBusy
	}
	s.state = Stopped
	return nil
}

// Restart force-resets the interpreter from any state, losing whatever it
// was doing (an in-flight invocation returns ErrCrashed).
func (s *Server) Restart() {
	s.mu.Lock()
	s.state = Idle
	s.mu.Unlock()
	s.statsMu.Lock()
	s.stats.Restarts++
	s.statsMu.Unlock()
}

// State reports the current lifecycle state.
func (s *Server) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// InjectCrash makes the next invocation crash the interpreter.
func (s *Server) InjectCrash() { atomic.StoreInt32(&s.crashNext, 1) }

// InjectHang makes the next invocation stall for d before proceeding,
// simulating a wedged interpreter; the caller's context timeout is the only
// way out.
func (s *Server) InjectHang(d time.Duration) { s.hangNext.Store(int64(d)) }

// Stats returns a copy of the counters.
func (s *Server) Stats() Stats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Invoke runs a routine synchronously. The interpreter is single-threaded:
// a second concurrent Invoke fails with ErrBusy rather than queueing —
// queueing is the PL manager's job.
func (s *Server) Invoke(ctx context.Context, name string, args Args) (Args, error) {
	s.mu.Lock()
	switch s.state {
	case Stopped:
		s.mu.Unlock()
		return nil, ErrStopped
	case Crashed:
		s.mu.Unlock()
		return nil, ErrCrashed
	case Busy:
		s.mu.Unlock()
		return nil, ErrBusy
	}
	routine, ok := s.routines[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownRoutine, name)
	}
	s.state = Busy
	s.mu.Unlock()

	start := time.Now()
	out, err := s.run(ctx, routine, args)
	elapsed := time.Since(start).Seconds()

	s.statsMu.Lock()
	s.stats.Invocations++
	s.stats.BusySeconds += elapsed
	if err != nil {
		s.stats.Failures++
		if errors.Is(err, ErrCrashed) {
			s.stats.Crashes++
		}
	}
	s.statsMu.Unlock()

	s.mu.Lock()
	if s.state == Busy { // not force-restarted meanwhile
		if errors.Is(err, ErrCrashed) {
			s.state = Crashed
		} else {
			s.state = Idle
		}
	}
	s.mu.Unlock()
	return out, err
}

func (s *Server) run(ctx context.Context, routine Routine, args Args) (Args, error) {
	if atomic.CompareAndSwapInt32(&s.crashNext, 1, 0) {
		return nil, ErrCrashed
	}
	if d := s.hangNext.Swap(0); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-ctx.Done():
			return nil, fmt.Errorf("idl: hung interpreter: %w", ctx.Err())
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type outcome struct {
		out Args
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{nil, fmt.Errorf("%w: routine panic: %v", ErrCrashed, r)}
			}
		}()
		out, err := routine(ctx, args)
		done <- outcome{out, err}
	}()
	select {
	case o := <-done:
		return o.out, o.err
	case <-ctx.Done():
		// The routine goroutine may still run; the interpreter is
		// considered wedged and needs a restart, exactly like a real
		// runaway IDL session.
		return nil, ctx.Err()
	}
}

// Job is an asynchronous invocation handle.
type Job struct {
	done chan struct{}
	out  Args
	err  error
}

// InvokeAsync starts a routine and returns immediately.
func (s *Server) InvokeAsync(ctx context.Context, name string, args Args) *Job {
	j := &Job{done: make(chan struct{})}
	go func() {
		j.out, j.err = s.Invoke(ctx, name, args)
		close(j.done)
	}()
	return j
}

// Wait blocks until the job completes or ctx expires.
func (j *Job) Wait(ctx context.Context) (Args, error) {
	select {
	case <-j.done:
		return j.out, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Done reports whether the job has completed.
func (j *Job) Done() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

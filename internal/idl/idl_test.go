package idl

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func echoServer(t *testing.T) *Server {
	t.Helper()
	s := NewServer("idl-0")
	s.Register("echo", func(ctx context.Context, args Args) (Args, error) {
		return Args{"echo": args["x"]}, nil
	})
	s.Register("slow", func(ctx context.Context, args Args) (Args, error) {
		select {
		case <-time.After(50 * time.Millisecond):
			return Args{"ok": true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	s.Register("fail", func(ctx context.Context, args Args) (Args, error) {
		return nil, errors.New("boom")
	})
	s.Register("panics", func(ctx context.Context, args Args) (Args, error) {
		panic("interpreter segfault")
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInvokeRoundTrip(t *testing.T) {
	s := echoServer(t)
	out, err := s.Invoke(context.Background(), "echo", Args{"x": 42})
	if err != nil {
		t.Fatal(err)
	}
	if out["echo"] != 42 {
		t.Fatalf("out = %v", out)
	}
	st := s.Stats()
	if st.Invocations != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLifecycle(t *testing.T) {
	s := NewServer("x")
	if _, err := s.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("invoke on stopped: %v", err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	if s.State() != Idle {
		t.Fatalf("state = %v", s.State())
	}
	if err := s.Stop(); err != nil {
		t.Fatal(err)
	}
	if s.State() != Stopped {
		t.Fatalf("state = %v", s.State())
	}
}

func TestUnknownRoutine(t *testing.T) {
	s := echoServer(t)
	if _, err := s.Invoke(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownRoutine) {
		t.Fatalf("err = %v", err)
	}
}

func TestSingleThreadedBusyRejection(t *testing.T) {
	s := echoServer(t)
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	s.Register("block", func(ctx context.Context, args Args) (Args, error) {
		close(started)
		time.Sleep(80 * time.Millisecond)
		return Args{}, nil
	})
	go func() {
		defer wg.Done()
		if _, err := s.Invoke(context.Background(), "block", nil); err != nil {
			t.Error(err)
		}
	}()
	<-started
	if _, err := s.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("concurrent invoke err = %v, want ErrBusy", err)
	}
	if s.State() != Busy {
		t.Fatalf("state = %v", s.State())
	}
	wg.Wait()
	if s.State() != Idle {
		t.Fatalf("state after completion = %v", s.State())
	}
}

func TestRoutineErrorDoesNotKillServer(t *testing.T) {
	s := echoServer(t)
	if _, err := s.Invoke(context.Background(), "fail", nil); err == nil {
		t.Fatal("failure swallowed")
	}
	if s.State() != Idle {
		t.Fatalf("state = %v after routine error", s.State())
	}
	if _, err := s.Invoke(context.Background(), "echo", Args{"x": 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicCrashesInterpreter(t *testing.T) {
	s := echoServer(t)
	_, err := s.Invoke(context.Background(), "panics", nil)
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if s.State() != Crashed {
		t.Fatalf("state = %v", s.State())
	}
	if _, err := s.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("invoke on crashed: %v", err)
	}
	s.Restart()
	if _, err := s.Invoke(context.Background(), "echo", Args{"x": 1}); err != nil {
		t.Fatalf("after restart: %v", err)
	}
	st := s.Stats()
	if st.Crashes != 1 || st.Restarts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectedCrash(t *testing.T) {
	s := echoServer(t)
	s.InjectCrash()
	if _, err := s.Invoke(context.Background(), "echo", nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v", err)
	}
	if s.State() != Crashed {
		t.Fatalf("state = %v", s.State())
	}
}

func TestInjectedHangTimesOut(t *testing.T) {
	s := echoServer(t)
	s.InjectHang(time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.Invoke(ctx, "echo", nil)
	if err == nil {
		t.Fatal("hung invocation succeeded")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("timeout not honoured")
	}
}

func TestContextTimeoutMidRoutine(t *testing.T) {
	s := echoServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Invoke(ctx, "slow", nil); err == nil {
		t.Fatal("slow routine beat a 10ms deadline")
	}
}

func TestAsyncInvoke(t *testing.T) {
	s := echoServer(t)
	j := s.InvokeAsync(context.Background(), "slow", nil)
	if j.Done() {
		t.Fatal("job done immediately")
	}
	out, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out["ok"] != true {
		t.Fatalf("out = %v", out)
	}
	if !j.Done() {
		t.Fatal("job not done after wait")
	}
}

func TestAsyncWaitTimeout(t *testing.T) {
	s := echoServer(t)
	release := make(chan struct{})
	s.Register("gated", func(ctx context.Context, args Args) (Args, error) {
		<-release
		return Args{"ok": true}, nil
	})
	j := s.InvokeAsync(context.Background(), "gated", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := j.Wait(ctx); err == nil {
		t.Fatal("wait did not time out")
	}
	// The job itself still completes once released.
	close(release)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestRestartWhileBusy(t *testing.T) {
	s := echoServer(t)
	started := make(chan struct{})
	release := make(chan struct{})
	s.Register("wedge", func(ctx context.Context, args Args) (Args, error) {
		close(started)
		<-release
		return Args{}, nil
	})
	go s.Invoke(context.Background(), "wedge", nil)
	<-started
	s.Restart() // operator kills the wedged interpreter
	if s.State() != Idle {
		t.Fatalf("state = %v", s.State())
	}
	if _, err := s.Invoke(context.Background(), "echo", Args{"x": 9}); err != nil {
		t.Fatalf("after force restart: %v", err)
	}
	close(release)
}

func TestBusySecondsAccrue(t *testing.T) {
	s := echoServer(t)
	s.Invoke(context.Background(), "slow", nil)
	if st := s.Stats(); st.BusySeconds < 0.04 {
		t.Fatalf("busy seconds = %v", st.BusySeconds)
	}
}

func TestRoutinesListing(t *testing.T) {
	s := echoServer(t)
	names := s.Routines()
	if len(names) < 4 {
		t.Fatalf("routines = %v", names)
	}
}

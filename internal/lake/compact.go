package lake

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"
)

// Compaction merges small or mostly-dead containers into one large
// time-sorted container under a single journal commit. History is never
// rewritten: the victims stay readable through every commit before the
// compaction commit, and only GC later deletes their files. The protocol
// is crash-recoverable at every step:
//
//	plan    (locked)   pick victims, reserve the output container name
//	write   (unlocked) read victim bytes, write + fsync the merged container
//	commit  (locked)   re-validate each member is STILL live and still
//	                   served by its victim, then append one KindCompact
//	                   record adding the merged container and removing the
//	                   victims
//
// A crash before the commit leaves an orphaned output container that the
// journal never references — harmless, overwritten when its name is
// reused (names come from the journal-replayed counter). A crash after
// the commit is a complete compaction. The re-validation closes the race
// with deletes and concurrent ingest: a member tombstoned between plan
// and commit is simply not carried into the merged container, so
// compaction can never resurrect deleted data.

// CompactOptions tune victim selection.
type CompactOptions struct {
	// SmallBytes marks a container as a merge candidate when its live
	// byte count is below this threshold.
	SmallBytes int64
	// DeadFraction marks a container whose dead (tombstoned or
	// superseded) byte fraction is at or above this threshold.
	DeadFraction float64
	// MinMerge is the fewest victims worth one merged container.
	MinMerge int
	// MaxMerge bounds one compaction round.
	MaxMerge int
}

// DefaultCompactOptions is the maintenance-loop tuning.
func DefaultCompactOptions() CompactOptions {
	return CompactOptions{SmallBytes: 1 << 20, DeadFraction: 0.5, MinMerge: 2, MaxMerge: 64}
}

func (o *CompactOptions) withDefaults() CompactOptions {
	out := *o
	if out.SmallBytes <= 0 {
		out.SmallBytes = 1 << 20
	}
	if out.DeadFraction <= 0 {
		out.DeadFraction = 0.5
	}
	if out.MinMerge < 2 {
		out.MinMerge = 2
	}
	if out.MaxMerge < out.MinMerge {
		out.MaxMerge = 64
	}
	return out
}

// CompactResult reports one compaction round.
type CompactResult struct {
	Merged    int    // victim containers removed from the view
	Members   int    // live members carried into the merged container
	Seq       uint64 // the compaction commit (0 when nothing was done)
	OutBytes  int64
	Container string
}

// liveByCtr returns, per live container path, the live members it serves.
// Caller holds l.mu.
func (l *Lake) liveByCtr() map[string][]Member {
	by := make(map[string][]Member)
	for _, ref := range l.live {
		by[ref.path] = append(by[ref.path], ref.m)
	}
	return by
}

// Compact runs one compaction round. Concurrent Compact calls are safe —
// the commit-time re-validation makes the loser a no-op for any member the
// winner moved first — but the background compactor serializes them
// anyway.
func (l *Lake) Compact(opts CompactOptions) (CompactResult, error) {
	o := opts.withDefaults()

	// Plan (locked): pick victims — live containers that are small or
	// mostly dead — and reserve the output name.
	l.mu.Lock()
	by := l.liveByCtr()
	type cand struct {
		path string
		live int64
	}
	var cands []cand
	for path, cs := range l.ctrs {
		if cs.removeSeq != 0 {
			continue // already out of the view
		}
		var liveBytes int64
		for _, m := range by[path] {
			liveBytes += m.Size
		}
		dead := float64(cs.bytes-liveBytes) / float64(max64(cs.bytes, 1))
		if liveBytes == 0 && cs.bytes > 0 {
			// Fully dead: no merge needed, a remove-only compaction entry
			// still wants it out of the view so GC can reach it.
			cands = append(cands, cand{path: path, live: 0})
			continue
		}
		if liveBytes < o.SmallBytes || dead >= o.DeadFraction {
			cands = append(cands, cand{path: path, live: liveBytes})
		}
	}
	if len(cands) < o.MinMerge {
		l.mu.Unlock()
		return CompactResult{}, nil
	}
	// Oldest (smallest container seq) first: compaction drains the long
	// tail of tiny early containers before touching recent ones.
	sort.Slice(cands, func(i, j int) bool {
		return containerSeqOf(cands[i].path) < containerSeqOf(cands[j].path)
	})
	if len(cands) > o.MaxMerge {
		cands = cands[:o.MaxMerge]
	}
	victims := make([]string, len(cands))
	planned := make(map[string][]Member, len(cands))
	for i, c := range cands {
		victims[i] = c.path
		planned[c.path] = by[c.path]
	}
	outRel := containerPath(l.nextCtr)
	l.nextCtr++
	l.mu.Unlock()

	// Write (unlocked): read victim bytes, lay members out sorted by
	// (Day, Rel) so a time-range reprocessing scan is one contiguous read.
	type moved struct {
		m    Member
		from string
		data []byte
	}
	var moves []moved
	for _, path := range victims {
		// One ReadFile per victim container, not one per member: slicing
		// every member out of a single blob keeps a merge of an
		// already-large container linear in its size.
		blob, err := l.fsys.ReadFile(filepath.Join(l.root, path))
		if err != nil {
			// The victim may have been compacted+GC'd by a racing round;
			// re-validation would drop it anyway. Skip.
			continue
		}
		for _, m := range planned[path] {
			if m.Off < 0 || m.Off+m.Size > int64(len(blob)) {
				continue
			}
			data := blob[m.Off : m.Off+m.Size]
			if crc32Sum(data) != m.CRC {
				continue
			}
			moves = append(moves, moved{m: m, from: path, data: data})
		}
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].m.Day != moves[j].m.Day {
			return moves[i].m.Day < moves[j].m.Day
		}
		return moves[i].m.Rel < moves[j].m.Rel
	})

	// Commit (locked): re-validate, build the final layout, write, seal.
	l.mu.Lock()
	var members []Member
	var blob []byte
	var off int64
	for _, mv := range moves {
		ref, ok := l.live[mv.m.Rel]
		if !ok || ref.path != mv.from {
			continue // deleted or superseded since the plan: do not resurrect
		}
		m := mv.m
		m.Off = off
		members = append(members, m)
		blob = append(blob, mv.data...)
		off += int64(len(mv.data))
	}
	// Victims must still be live containers (a racing compaction may have
	// removed some); removing an already-removed container is a no-op in
	// apply(), but keeping the record minimal keeps replay honest.
	var stillVictims []string
	for _, path := range victims {
		if cs := l.ctrs[path]; cs != nil && cs.removeSeq == 0 {
			stillVictims = append(stillVictims, path)
		}
	}
	if len(stillVictims) == 0 {
		l.mu.Unlock()
		return CompactResult{}, nil
	}
	rec := &Record{Kind: KindCompact, Removes: stillVictims}
	if len(members) > 0 {
		// The container write happens under the lock: commit-time layout
		// depends on re-validation, and the lake's containers are small
		// enough (bounded by MaxMerge) that this matches the archive
		// tier's seal discipline.
		if err := l.writeFileSync(filepath.Join(l.root, outRel), blob); err != nil {
			l.mu.Unlock()
			_ = l.fsys.Remove(filepath.Join(l.root, outRel))
			return CompactResult{}, err
		}
		rec.Adds = []Container{{Path: outRel, Members: members}}
	}
	if err := l.commit(rec); err != nil {
		l.mu.Unlock()
		if len(members) > 0 {
			_ = l.fsys.Remove(filepath.Join(l.root, outRel))
		}
		return CompactResult{}, err
	}
	seq := l.head
	l.mu.Unlock()
	l.stats.Compactions.Add(1)
	res := CompactResult{Merged: len(stillVictims), Members: len(members), Seq: seq, OutBytes: off}
	if len(members) > 0 {
		res.Container = outRel
	}
	return res, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StartCompactor runs Compact + GC on a ticker until ctx is cancelled.
// keepFrom() supplies the GC target each round (e.g. the dm retention
// policy); nil keeps everything up to the head minus nothing — i.e. GC
// runs to the head, still bounded by pins.
func (l *Lake) StartCompactor(ctx context.Context, every time.Duration, opts CompactOptions, keepFrom func() uint64) {
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := l.Compact(opts); err != nil {
					continue
				}
				target := l.Head()
				if keepFrom != nil {
					target = keepFrom()
				}
				_, _ = l.GC(target)
			}
		}
	}()
}

// String renders a compaction result for logs.
func (r CompactResult) String() string {
	if r.Seq == 0 {
		return "compact: no-op"
	}
	return fmt.Sprintf("compact: commit %d merged %d containers, %d members, %d bytes",
		r.Seq, r.Merged, r.Members, r.OutBytes)
}

package lake

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Compaction merges small or mostly-dead containers into one large
// time-sorted container under a single journal commit. History is never
// rewritten: the victims stay readable through every commit before the
// compaction commit, and only GC later deletes their files. The protocol
// is crash-recoverable at every step:
//
//	plan    (locked)   pick victims, reserve the output container name
//	write   (unlocked) read victim bytes, write + fsync the merged container
//	commit  (locked)   re-validate each member is STILL live and still
//	                   served by its victim, then append one KindCompact
//	                   record adding the merged container and removing the
//	                   victims
//
// A crash before the commit leaves an orphaned output container that the
// journal never references — harmless, overwritten when its name is
// reused (names come from the journal-replayed counter). A crash after
// the commit is a complete compaction. The re-validation closes the race
// with deletes and concurrent ingest: a member tombstoned between plan
// and commit is simply not carried into the merged container, so
// compaction can never resurrect deleted data.
//
// The commit also re-validates the opposite direction: a victim leaves
// the view only if every member still live and served by it was read
// whole (CRC-verified) into the merged container. A victim whose bytes
// could not be read — I/O failure, truncation, checksum mismatch — stays
// in the view untouched and the round reports the failure, because
// removing it would silently drop its live members and let GC delete
// bytes the live view still references.

// CompactOptions tune victim selection.
type CompactOptions struct {
	// SmallBytes marks a container as a merge candidate when its live
	// byte count is below this threshold.
	SmallBytes int64
	// DeadFraction marks a container whose dead (tombstoned or
	// superseded) byte fraction is at or above this threshold.
	DeadFraction float64
	// MinMerge is the fewest victims worth one merged container.
	MinMerge int
	// MaxMerge bounds one compaction round.
	MaxMerge int
}

// DefaultCompactOptions is the maintenance-loop tuning.
func DefaultCompactOptions() CompactOptions {
	return CompactOptions{SmallBytes: 1 << 20, DeadFraction: 0.5, MinMerge: 2, MaxMerge: 64}
}

func (o *CompactOptions) withDefaults() CompactOptions {
	out := *o
	if out.SmallBytes <= 0 {
		out.SmallBytes = 1 << 20
	}
	if out.DeadFraction <= 0 {
		out.DeadFraction = 0.5
	}
	if out.MinMerge < 2 {
		out.MinMerge = 2
	}
	if out.MaxMerge < out.MinMerge {
		out.MaxMerge = 64
	}
	return out
}

// CompactResult reports one compaction round.
type CompactResult struct {
	Merged    int    // victim containers removed from the view
	Members   int    // live members carried into the merged container
	Skipped   int    // victims left in place: live members unreadable
	Seq       uint64 // the compaction commit (0 when nothing was done)
	OutBytes  int64
	Container string
}

// liveByCtr returns, per live container path, the live members it serves.
// Caller holds l.mu.
func (l *Lake) liveByCtr() map[string][]Member {
	by := make(map[string][]Member)
	for _, ref := range l.live {
		by[ref.path] = append(by[ref.path], ref.m)
	}
	return by
}

// Compact runs one compaction round. Concurrent Compact calls are safe —
// the commit-time re-validation makes the loser a no-op for any member the
// winner moved first — but the background compactor serializes them
// anyway.
func (l *Lake) Compact(opts CompactOptions) (CompactResult, error) {
	o := opts.withDefaults()

	// Plan (locked): pick victims — live containers that are small or
	// mostly dead — and reserve the output name.
	l.mu.Lock()
	by := l.liveByCtr()
	type cand struct {
		path string
		live int64
	}
	var cands []cand
	for path, cs := range l.ctrs {
		if cs.removeSeq != 0 {
			continue // already out of the view
		}
		var liveBytes int64
		for _, m := range by[path] {
			liveBytes += m.Size
		}
		dead := float64(cs.bytes-liveBytes) / float64(max64(cs.bytes, 1))
		if liveBytes == 0 && cs.bytes > 0 {
			// Fully dead: no merge needed, a remove-only compaction entry
			// still wants it out of the view so GC can reach it.
			cands = append(cands, cand{path: path, live: 0})
			continue
		}
		if liveBytes < o.SmallBytes || dead >= o.DeadFraction {
			cands = append(cands, cand{path: path, live: liveBytes})
		}
	}
	if len(cands) < o.MinMerge {
		// A remove-only round needs no merge partner: retiring containers
		// with no live members must not wait for MinMerge, or a lone
		// fully-dead container would linger forever and GC could never
		// reclaim its bytes.
		var deadOnly []cand
		for _, c := range cands {
			if len(by[c.path]) == 0 {
				deadOnly = append(deadOnly, c)
			}
		}
		if len(deadOnly) == 0 {
			l.mu.Unlock()
			return CompactResult{}, nil
		}
		cands = deadOnly
	}
	// Oldest (smallest container seq) first: compaction drains the long
	// tail of tiny early containers before touching recent ones.
	sort.Slice(cands, func(i, j int) bool {
		return containerSeqOf(cands[i].path) < containerSeqOf(cands[j].path)
	})
	if len(cands) > o.MaxMerge {
		cands = cands[:o.MaxMerge]
	}
	victims := make([]string, len(cands))
	planned := make(map[string][]Member, len(cands))
	for i, c := range cands {
		victims[i] = c.path
		planned[c.path] = by[c.path]
	}
	outRel := containerPath(l.nextCtr)
	l.nextCtr++
	l.mu.Unlock()

	// Write (unlocked): read victim bytes, lay members out sorted by
	// (Day, Rel) so a time-range reprocessing scan is one contiguous read.
	type moved struct {
		m    Member
		from string
		data []byte
	}
	var moves []moved
	// got records which planned members were read whole per victim;
	// readErr the first failure. The commit phase decides what a failure
	// means: a victim retired by a racing compaction is dropped from the
	// record, but a still-live victim with unreadable members must stay in
	// the view, or its members would silently vanish.
	got := make(map[string]map[string]bool, len(victims))
	readErr := make(map[string]error, len(victims))
	for _, path := range victims {
		// One ReadFile per victim container, not one per member: slicing
		// every member out of a single blob keeps a merge of an
		// already-large container linear in its size.
		blob, err := l.fsys.ReadFile(filepath.Join(l.root, path))
		if err != nil {
			readErr[path] = err
			continue
		}
		ok := make(map[string]bool, len(planned[path]))
		for _, m := range planned[path] {
			if m.Off < 0 || m.Off+m.Size > int64(len(blob)) {
				if readErr[path] == nil {
					readErr[path] = fmt.Errorf("%w: %s (container %s truncated)", ErrCorrupt, m.Rel, path)
				}
				continue
			}
			data := blob[m.Off : m.Off+m.Size]
			if crc32Sum(data) != m.CRC {
				if readErr[path] == nil {
					readErr[path] = fmt.Errorf("%w: %s", ErrCorrupt, m.Rel)
				}
				continue
			}
			ok[m.Rel] = true
			moves = append(moves, moved{m: m, from: path, data: data})
		}
		got[path] = ok
	}
	sort.Slice(moves, func(i, j int) bool {
		if moves[i].m.Day != moves[j].m.Day {
			return moves[i].m.Day < moves[j].m.Day
		}
		return moves[i].m.Rel < moves[j].m.Rel
	})

	// Commit (locked): re-validate, build the final layout, write, seal.
	l.mu.Lock()
	// Victims must still be live containers (a racing compaction may have
	// removed some), and — the safety half of the re-validation — every
	// member still live and served by a victim must have been read whole.
	// The live set of an immutable container only shrinks between plan and
	// commit, so checking the planned members covers every commit-time one.
	var stillVictims []string
	var skipped []string
	var cause error
	movable := make(map[string]bool, len(victims))
	for _, path := range victims {
		cs := l.ctrs[path]
		if cs == nil || cs.removeSeq != 0 {
			continue // already out of the view: drop from the record
		}
		whole := true
		for _, m := range planned[path] {
			if ref, ok := l.live[m.Rel]; ok && ref.path == path && !got[path][m.Rel] {
				whole = false
				break
			}
		}
		if !whole {
			skipped = append(skipped, path)
			if cause == nil {
				if cause = readErr[path]; cause == nil {
					cause = ErrCorrupt
				}
			}
			continue
		}
		movable[path] = true
		stillVictims = append(stillVictims, path)
	}
	var members []Member
	var blob []byte
	var off int64
	for _, mv := range moves {
		if !movable[mv.from] {
			continue // the victim stays in the view: leave its members home
		}
		ref, ok := l.live[mv.m.Rel]
		if !ok || ref.path != mv.from {
			continue // deleted or superseded since the plan: do not resurrect
		}
		m := mv.m
		m.Off = off
		members = append(members, m)
		blob = append(blob, mv.data...)
		off += int64(len(mv.data))
	}
	var skipErr error
	if len(skipped) > 0 {
		skipErr = fmt.Errorf("lake: compaction left %d container(s) in the view with unreadable live members (%s): %w",
			len(skipped), strings.Join(skipped, ", "), cause)
	}
	if len(stillVictims) == 0 {
		l.mu.Unlock()
		return CompactResult{Skipped: len(skipped)}, skipErr
	}
	rec := &Record{Kind: KindCompact, Removes: stillVictims}
	if len(members) > 0 {
		// The container write happens under the lock: commit-time layout
		// depends on re-validation, and the lake's containers are small
		// enough (bounded by MaxMerge) that this matches the archive
		// tier's seal discipline.
		if err := l.writeFileSync(filepath.Join(l.root, outRel), blob); err != nil {
			l.mu.Unlock()
			_ = l.fsys.Remove(filepath.Join(l.root, outRel))
			return CompactResult{}, err
		}
		rec.Adds = []Container{{Path: outRel, Members: members}}
	}
	if err := l.commit(rec); err != nil {
		l.mu.Unlock()
		if len(members) > 0 {
			_ = l.fsys.Remove(filepath.Join(l.root, outRel))
		}
		return CompactResult{}, err
	}
	seq := l.head
	l.mu.Unlock()
	l.stats.Compactions.Add(1)
	res := CompactResult{Merged: len(stillVictims), Members: len(members), Skipped: len(skipped), Seq: seq, OutBytes: off}
	if len(members) > 0 {
		res.Container = outRel
	}
	return res, skipErr
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// StartCompactor runs Compact + GC on a ticker until ctx is cancelled.
// keepFrom() supplies the GC target each round (e.g. the dm retention
// policy); nil keeps everything up to the head minus nothing — i.e. GC
// runs to the head, still bounded by pins.
func (l *Lake) StartCompactor(ctx context.Context, every time.Duration, opts CompactOptions, keepFrom func() uint64) {
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := l.Compact(opts); err != nil {
					continue
				}
				target := l.Head()
				if keepFrom != nil {
					target = keepFrom()
				}
				_, _ = l.GC(target)
			}
		}
	}()
}

// String renders a compaction result for logs.
func (r CompactResult) String() string {
	if r.Seq == 0 {
		return "compact: no-op"
	}
	s := fmt.Sprintf("compact: commit %d merged %d containers, %d members, %d bytes",
		r.Seq, r.Merged, r.Members, r.OutBytes)
	if r.Skipped > 0 {
		s += fmt.Sprintf(" (%d victims skipped: unreadable live members)", r.Skipped)
	}
	return s
}

package lake

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// journalSeeds builds the deterministic seed corpus for FuzzDecodeJournal:
// well-formed journals exercising every record kind, plus the damage the
// torn-tail logic must classify correctly — truncations at frame and
// payload boundaries, bit flips the CRC must catch, sequence gaps, bad
// magic, and a lying length field.
func journalSeeds() [][]byte {
	mk := func(recs ...*Record) []byte {
		var out []byte
		for i, r := range recs {
			r.Seq = uint64(i + 1)
			r.Time = int64(1000 + i)
			out = append(out, encodeRecord(r)...)
		}
		return out
	}
	full := mk(
		&Record{Kind: KindIngest, Adds: []Container{{
			Path: "containers/c0000000001.ctr",
			Members: []Member{
				{Rel: "raw/d001/u0001", Day: 1, Off: 0, Size: 64, CRC: 0xDEADBEEF},
				{Rel: "raw/d001/u0002", Day: 1, Off: 64, Size: 32, CRC: 0x1234},
			},
		}}},
		&Record{Kind: KindPin, PinSeq: 1, PinToken: "pin-0"},
		&Record{Kind: KindDelete, Tombstones: []string{"raw/d001/u0002"}},
		&Record{Kind: KindCompact,
			Adds:    []Container{{Path: "containers/c0000000002.ctr", Members: []Member{{Rel: "raw/d001/u0001", Day: 1, Size: 64, CRC: 0xDEADBEEF}}}},
			Removes: []string{"containers/c0000000001.ctr"}},
		&Record{Kind: KindUnpin, PinToken: "pin-0"},
		&Record{Kind: KindGC, Horizon: 4, Removes: []string{"containers/c0000000001.ctr"}},
	)
	seeds := [][]byte{
		mk(),
		mk(&Record{Kind: KindIngest, Adds: []Container{{Path: "containers/c0000000001.ctr"}}}),
		full,
	}
	seeds = append(seeds, full[:len(full)-3])  // torn inside the final CRC
	seeds = append(seeds, full[:len(full)/2])  // torn mid-journal
	seeds = append(seeds, append(mk(&Record{Kind: KindDelete, Tombstones: []string{"x"}}), "LJN1\x10"...)) // torn header
	flip := append([]byte(nil), full...)
	flip[len(flip)/4] ^= 0x40 // CRC must catch this
	seeds = append(seeds, flip)
	gap := mk(&Record{Kind: KindDelete, Tombstones: []string{"a"}})
	bad := &Record{Seq: 7, Kind: KindDelete, Tombstones: []string{"b"}}
	seeds = append(seeds, append(gap, encodeRecord(bad)...)) // sequence gap
	seeds = append(seeds, []byte("LJN1"), []byte("XXXX\x00\x00\x00\x00"))
	lying := []byte("LJN1\xff\xff\xff\x7f payload never arrives")
	seeds = append(seeds, lying)
	return seeds
}

// TestGenerateJournalFuzzCorpus materializes the seeds as checked-in
// corpus files (go test fuzz v1 format). Existing files are left alone, so
// the corpus is stable once committed and self-heals if a file goes
// missing.
func TestGenerateJournalFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeJournal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range journalSeeds() {
		path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzDecodeJournal feeds arbitrary bytes to the journal decoder — the
// exact content a torn append, a bit flip, or a hostile file could leave
// in journal.ljn. The invariants: never panic, never over-allocate off a
// lying length field, goodTail always lands on a frame boundary covering
// exactly the returned records, every returned record is strictly
// sequential from 1, and every accepted prefix re-encodes byte-identically
// (decode∘encode is the identity on the accepted region).
func FuzzDecodeJournal(f *testing.F) {
	for _, seed := range journalSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, goodTail, err := DecodeJournal(data)
		if goodTail < 0 || goodTail > int64(len(data)) {
			t.Fatalf("goodTail %d outside [0,%d]", goodTail, len(data))
		}
		var re []byte
		for i, r := range recs {
			if r.Seq != uint64(i+1) {
				t.Fatalf("record %d carries seq %d", i, r.Seq)
			}
			re = append(re, encodeRecord(r)...)
		}
		if int64(len(re)) != goodTail {
			t.Fatalf("re-encoded records span %d bytes, goodTail %d", len(re), goodTail)
		}
		if string(re) != string(data[:goodTail]) {
			t.Fatal("decode∘encode is not the identity on the accepted region")
		}
		// The accepted region must replay cleanly and identically.
		recs2, tail2, err2 := DecodeJournal(re)
		if err2 != nil || tail2 != goodTail || len(recs2) != len(recs) {
			t.Fatalf("replay of accepted region diverged: %d recs tail %d err %v", len(recs2), tail2, err2)
		}
		_ = err
	})
}

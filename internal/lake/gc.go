package lake

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
)

// GC is the only operation that ever deletes container bytes, and its
// safety argument is three clamps on the requested horizon:
//
//	target = min(requested, head)        // can't retire unwritten history
//	target = min(target, min pinned seq) // a pinned view keeps everything
//	                                     // it can read
//	target = max(target, horizon)        // the horizon never retreats
//
// A container is then deletable iff it left the logical view at or before
// the target: 0 < removeSeq ≤ target. Every commit ≥ target — which is
// every commit OpenAt will still accept, and every pinned commit — sees
// only containers with removeSeq == 0 or removeSeq > target, none of which
// are touched. So GC can never delete a container referenced by a live or
// pinned view, by construction rather than by audit.
//
// The GC record (horizon + the container paths it retires) is journaled
// and fsynced BEFORE any file is unlinked. A crash mid-deletion leaves
// journaled-dead containers on disk; Open resumes the sweep, and a sweep
// that fails transiently is retried by the next GC round via the unswept
// set.

// GCResult reports one GC round.
type GCResult struct {
	Seq       uint64 // the GC commit (0 when nothing was done)
	Horizon   uint64
	Deleted   int
	Reclaimed int64
	SweepErrs int
}

// GC advances the horizon toward keepFrom (commits < horizon become
// unopenable) and physically deletes every container no remaining commit
// references. keepFrom is a request, clamped by head, pins, and the
// current horizon.
func (l *Lake) GC(keepFrom uint64) (GCResult, error) {
	l.mu.Lock()
	target := keepFrom
	if target > l.head {
		target = l.head
	}
	for _, pinned := range l.pins {
		if pinned < target {
			target = pinned
		}
	}
	if target < l.horizon {
		target = l.horizon
	}

	var dead []string
	var reclaim int64
	for path, cs := range l.ctrs {
		if cs.gcSeq == 0 && cs.removeSeq != 0 && cs.removeSeq <= target {
			dead = append(dead, path)
			reclaim += cs.bytes
		}
	}
	// Retry containers whose journaled deletion previously failed to
	// sweep, independent of horizon movement.
	retry := make([]string, 0, len(l.unswept))
	for path := range l.unswept {
		retry = append(retry, path)
	}

	if len(dead) == 0 && target == l.horizon {
		l.mu.Unlock()
		// Nothing to journal, but finish any pending sweep.
		res := GCResult{Horizon: target}
		l.sweep(retry, &res)
		return res, nil
	}

	rec := &Record{Kind: KindGC, Horizon: target, Removes: dead}
	if err := l.commit(rec); err != nil {
		l.mu.Unlock()
		return GCResult{}, err
	}
	seq := l.head
	l.mu.Unlock()

	l.stats.GCRuns.Add(1)
	res := GCResult{Seq: seq, Horizon: target, Reclaimed: reclaim}
	l.sweep(append(dead, retry...), &res)
	return res, nil
}

// sweep unlinks journaled-dead container files, tracking failures for
// retry by the next round.
func (l *Lake) sweep(paths []string, res *GCResult) {
	for _, path := range paths {
		err := l.fsys.Remove(filepath.Join(l.root, path))
		l.mu.Lock()
		if err != nil && !errors.Is(err, fs.ErrNotExist) {
			l.unswept[path] = true
			res.SweepErrs++
		} else {
			delete(l.unswept, path)
			res.Deleted++
		}
		l.mu.Unlock()
	}
}

// String renders a GC result for logs.
func (r GCResult) String() string {
	if r.Seq == 0 && r.Deleted == 0 {
		return "gc: no-op"
	}
	return fmt.Sprintf("gc: commit %d horizon %d deleted %d containers (%d bytes, %d sweep errors)",
		r.Seq, r.Horizon, r.Deleted, r.Reclaimed, r.SweepErrs)
}
